package re2xolap

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"re2xolap/internal/rdf"
)

// shardStores partitions the dataset by subject hash into n stores,
// the colocation contract every coordinator topology assumes.
func shardStores(t *testing.T, st *Store, n int) []*Store {
	t.Helper()
	parts := ShardPartitioner{N: n}.Split(st.Triples())
	out := make([]*Store, n)
	for i, ts := range parts {
		s := NewStore()
		if err := s.AddAll(ts); err != nil {
			t.Fatal(err)
		}
		s.Compact()
		out[i] = s
	}
	return out
}

// TestCoordinatorClientOverClients federates in-process shards through
// ShardClients and checks plan classification, result parity with a
// single node, and that the whole synthesis stack runs on top.
func TestCoordinatorClientOverClients(t *testing.T) {
	ctx := context.Background()
	spec := EurostatLike(500)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]Client, 3)
	for i, s := range shardStores(t, st, 3) {
		groups[i] = []Client{NewInProcessClient(s)}
	}
	coord, err := NewCoordinatorClient(ShardClients(groups...), WithPlanCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A cross-subject join takes the bound-join plan and must match the
	// single node byte for byte.
	single := NewInProcessClient(st)
	dim := spec.NS + spec.Dimensions[0].Pred
	q := fmt.Sprintf(
		`SELECT ?o ?lbl WHERE { ?o <%s> ?m . ?m <%s> ?lbl } ORDER BY ?o ?lbl LIMIT 100`,
		dim, rdf.RDFSLabel)
	want, err := single.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, meta, err := QueryX(ctx, coord, Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Plan != "bound_join" {
		t.Fatalf("plan = %q, want bound_join", meta.Plan)
	}
	if len(meta.Shards) != 3 {
		t.Fatalf("%d shard calls, want 3", len(meta.Shards))
	}
	if got.Len() != want.Len() {
		t.Fatalf("federated %d rows, single node %d", got.Len(), want.Len())
	}

	// The coordinator is a Client: bootstrap and synthesize over it.
	sys, err := Bootstrap(ctx, coord, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := sys.Synthesize(ctx, "Country 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates over the federation")
	}
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("empty federated result set")
	}
}

// TestCoordinatorClientOverURLs federates HTTP shard endpoints through
// ShardURLs and the default HTTP dialer.
func TestCoordinatorClientOverURLs(t *testing.T) {
	ctx := context.Background()
	spec := EurostatLike(300)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	stores := shardStores(t, st, 2)
	groups := make([][]string, len(stores))
	for i, s := range stores {
		srv := httptest.NewServer(NewSPARQLServer(s))
		defer srv.Close()
		groups[i] = []string{srv.URL}
	}
	coord, err := NewCoordinatorClient(ShardURLs(groups...))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	single := NewInProcessClient(st)
	obsClass := spec.ObservationClass()
	q := fmt.Sprintf(`SELECT (COUNT(?o) AS ?n) WHERE { ?o a <%s> }`, obsClass)
	want, err := single.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, meta, err := QueryX(ctx, coord, Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Plan != "partial_agg" {
		t.Fatalf("plan = %q, want partial_agg", meta.Plan)
	}
	if got.Len() != 1 || want.Len() != 1 || got.Rows[0][0].Value != want.Rows[0][0].Value {
		t.Fatalf("federated count diverges: got %v, want %v", got.Rows, want.Rows)
	}

	// A spec that is not a URL must be rejected by the default dialer.
	if _, err := NewCoordinatorClient(ShardURLs([]string{"not-a-url"})); err == nil {
		t.Fatal("non-URL spec accepted by HTTP dialer")
	}
}

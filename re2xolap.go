// Package re2xolap is a Go implementation of RE2xOLAP
// ("Example-Driven Exploratory Analytics over Knowledge Graphs",
// EDBT 2023): reverse engineering and interactive refinement of
// SPARQL OLAP queries over statistical knowledge graphs, without the
// user writing any query.
//
// The package ships its entire substrate: an in-memory RDF triple
// store with a SPARQL engine and full-text index, a SPARQL-protocol
// HTTP endpoint, the virtual schema graph bootstrap, the ReOLAP
// synthesis algorithm, and the ExRef refinement suite (disaggregate,
// top-k, percentile, similarity search).
//
// Typical use:
//
//	st := re2xolap.NewStore()
//	st.Load(dataFile) // or datagen, or your own triples
//	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(st), re2xolap.Config{
//		ObservationClass: "http://purl.org/linked-data/cube#Observation",
//	})
//	cands, err := sys.Synthesize(ctx, "Germany", "2014")
//	sess := sys.NewSession()
//	rs, err := sess.Start(ctx, cands[0].Query)
//	opts, err := sess.Options(ctx, re2xolap.Disaggregate)
//	rs, err = sess.Apply(ctx, opts[0])
//
// A remote deployment replaces NewInProcessClient with NewHTTPClient
// pointed at any SPARQL endpoint (including cmd/sparqld).
package re2xolap

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"re2xolap/internal/baseline"
	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/qb"
	"re2xolap/internal/refine"
	"re2xolap/internal/session"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
)

// Core data types, re-exported for public use.
type (
	// Store is the in-memory RDF triple store.
	Store = store.Store
	// Client is a SPARQL query interface (in-process or HTTP).
	Client = endpoint.Client
	// Config describes how to interpret the statistical KG.
	Config = qb.Config
	// Graph is the bootstrapped virtual schema graph.
	Graph = vgraph.Graph
	// Level is one hierarchy level of the virtual schema graph.
	Level = vgraph.Level
	// ExampleTuple is the user's example input ⟨a_1, ..., a_k⟩.
	ExampleTuple = core.ExampleTuple
	// ExampleItem is one component of an example tuple.
	ExampleItem = core.ExampleItem
	// Candidate pairs a synthesized query with its interpretation.
	Candidate = core.Candidate
	// OLAPQuery is the structured analytical query representation.
	OLAPQuery = core.OLAPQuery
	// ResultSet is the decoded output of an executed OLAP query.
	ResultSet = core.ResultSet
	// Tuple is one answer tuple (dimension members + aggregates).
	Tuple = core.Tuple
	// Refinement is one proposed refined query.
	Refinement = refine.Refinement
	// RefinementKind identifies a refinement method.
	RefinementKind = refine.Kind
	// Session drives an interactive exploration (Algorithm 2).
	Session = session.Session
	// DatasetSpec describes a synthetic benchmark dataset.
	DatasetSpec = datagen.Spec
	// SPARQLResults is a raw SPARQL result set.
	SPARQLResults = sparql.Results
	// BaselineResult is the SPARQLByE-style baseline output.
	BaselineResult = baseline.Result

	// Registry is a metrics registry with Prometheus text exposition
	// (see NewRegistry and the WithRegistry option).
	Registry = obs.Registry
	// Trace is a per-query span tree (see NewTrace and WithTraceContext).
	Trace = obs.Trace
	// Span is one node of a Trace.
	Span = obs.Span
	// SlowQueryLog is a structured JSON-lines log of queries slower
	// than a threshold (see NewSlowQueryLog and WithSlowQueryLog).
	SlowQueryLog = obs.SlowLog
	// Request is the extended per-query input of QueryX.
	Request = endpoint.Request
	// QueryOpts carries per-query options (step tag, trace span).
	QueryOpts = endpoint.QueryOpts
	// QueryMeta is the per-query execution metadata QueryX reports.
	QueryMeta = endpoint.QueryMeta
	// QuerierX is the metadata-reporting extension of Client.
	QuerierX = endpoint.QuerierX
	// ClientOption configures the endpoint constructors
	// (NewInProcessClient, NewHTTPClient, NewResilientClient,
	// NewSPARQLServer).
	ClientOption = endpoint.Option
	// ResiliencePolicy configures NewResilientClient.
	ResiliencePolicy = endpoint.Policy
)

// The refinement methods: the four ExRef methods of Section 6 plus the
// clustering refinement from the paper's preliminary prototype.
const (
	Disaggregate = refine.KindDisaggregate
	TopK         = refine.KindTopK
	Percentile   = refine.KindPercentile
	Similarity   = refine.KindSimilarity
	Cluster      = refine.KindCluster
	RollUp       = refine.KindRollUp
)

// ObservationClass is the default qb:Observation class IRI.
const ObservationClass = qb.Observation

// NewStore returns an empty RDF triple store.
func NewStore() *Store { return store.New() }

// NewInProcessClient returns a Client executing queries directly
// against a local store.
func NewInProcessClient(st *Store, opts ...ClientOption) Client {
	return endpoint.NewInProcess(st, opts...)
}

// NewHTTPClient returns a Client speaking the SPARQL protocol with a
// remote endpoint URL.
func NewHTTPClient(url string, opts ...ClientOption) Client {
	return endpoint.NewHTTPClient(url, opts...)
}

// NewResilientClient wraps inner with deadlines, retries with backoff,
// a circuit breaker, and an in-flight limiter (see WithPolicy).
func NewResilientClient(inner Client, opts ...ClientOption) Client {
	return endpoint.NewResilient(inner, opts...)
}

// NewSPARQLServer returns an http.Handler exposing st over the SPARQL
// 1.1 protocol (application/sparql-results+json). Build the full
// operational mux (with /metrics, /healthz, optional pprof) via
// endpoint.NewServer(...).Routes.
func NewSPARQLServer(st *Store, opts ...ClientOption) http.Handler {
	return endpoint.NewServer(st, opts...)
}

// Observability constructors and constructor options, re-exported so
// common deployments never import the internal packages.
var (
	// NewRegistry returns an empty metrics registry.
	NewRegistry = obs.NewRegistry
	// NewTrace starts a named span tree for one query or session turn.
	NewTrace = obs.NewTrace
	// NewSlowQueryLog logs queries slower than threshold as JSON lines
	// to w.
	NewSlowQueryLog = obs.NewSlowLog
	// WithTraceContext installs a span as the ambient trace parent;
	// instrumented clients attach their spans under it.
	WithTraceContext = obs.ContextWith

	// WithTimeout bounds HTTP client requests.
	WithTimeout = endpoint.WithTimeout
	// WithPolicy sets the resilience policy of NewResilientClient.
	WithPolicy = endpoint.WithPolicy
	// WithRegistry attaches a metrics registry to a client or server.
	WithRegistry = endpoint.WithRegistry
	// WithSlowQueryLog attaches a slow-query log to a client or server.
	WithSlowQueryLog = endpoint.WithSlowQueryLog
	// WithWorkers bounds in-process engine parallelism.
	WithWorkers = endpoint.WithWorkers

	// QueryX runs one query through any Client, returning per-query
	// execution metadata alongside the results.
	QueryX = endpoint.QueryX
	// DefaultResiliencePolicy is the production resilience default.
	DefaultResiliencePolicy = endpoint.DefaultPolicy
)

// Keywords builds an example tuple from keyword strings.
func Keywords(kws ...string) ExampleTuple { return core.Keywords(kws...) }

// MemberIRI builds an example item that references a member directly.
func MemberIRI(iri string) ExampleItem { return core.NewMemberIRI(iri) }

// Dataset presets matching the paper's Table 3 schema statistics.
var (
	// EurostatLike is the asylum-applications dataset generator.
	EurostatLike = datagen.EurostatLike
	// ProductionLike is the macro-economic production generator.
	ProductionLike = datagen.ProductionLike
	// DBpediaLike is the creative-works generator with M-to-N
	// hierarchies.
	DBpediaLike = datagen.DBpediaLike
)

// System bundles a bootstrapped RE2xOLAP deployment: the endpoint
// client, the virtual schema graph, and the synthesis engine.
type System struct {
	Client Client
	Graph  *Graph
	Engine *core.Engine
	Config Config
}

// Bootstrap crawls the endpoint and builds the virtual schema graph
// (the paper's one-off offline phase), returning a ready System.
func Bootstrap(ctx context.Context, c Client, cfg Config) (*System, error) {
	g, err := vgraph.Bootstrap(ctx, c, cfg)
	if err != nil {
		return nil, fmt.Errorf("re2xolap: bootstrap: %w", err)
	}
	return &System{
		Client: c,
		Graph:  g,
		Engine: core.NewEngine(c, g, cfg),
		Config: cfg.WithDefaults(),
	}, nil
}

// Instrument attaches a metrics registry to the synthesis engine:
// every endpoint query gets counted and timed under a step label
// explaining which part of the algorithm issued it.
func (s *System) Instrument(reg *Registry) { s.Engine.Instrument(reg) }

// Synthesize reverse-engineers candidate OLAP queries from keyword
// examples (Algorithm 1 / ReOLAP).
func (s *System) Synthesize(ctx context.Context, keywords ...string) ([]Candidate, error) {
	return s.Engine.Synthesize(ctx, Keywords(keywords...))
}

// SynthesizeTuple reverse-engineers candidate queries from a mixed
// example tuple (keywords and member IRIs).
func (s *System) SynthesizeTuple(ctx context.Context, t ExampleTuple) ([]Candidate, error) {
	return s.Engine.Synthesize(ctx, t)
}

// SynthesizeTuples handles multiple example tuples: item i of every
// tuple must resolve at the same level, and every tuple must be
// witnessed by the data.
func (s *System) SynthesizeTuples(ctx context.Context, ts []ExampleTuple) ([]Candidate, error) {
	return s.Engine.SynthesizeAll(ctx, ts)
}

// Execute runs an OLAP query and decodes its results.
func (s *System) Execute(ctx context.Context, q *OLAPQuery) (*ResultSet, error) {
	return s.Engine.Execute(ctx, q)
}

// NewSession starts an interactive exploration over this system.
func (s *System) NewSession() *Session {
	return session.New(s.Engine, s.Graph)
}

// BaselineReverseEngineer runs the SPARQLByE-style baseline on the same
// endpoint, for comparison (Section 7.2 / Figure 10).
func (s *System) BaselineReverseEngineer(ctx context.Context, items []string) (*BaselineResult, error) {
	return baseline.ReverseEngineer(ctx, s.Client, items)
}

// SynthesizeWithNegatives synthesizes from positive examples while
// rejecting interpretations that also cover a negative example (the
// paper's Section 8 extension).
func (s *System) SynthesizeWithNegatives(ctx context.Context, positives, negatives []ExampleTuple) ([]Candidate, error) {
	return s.Engine.SynthesizeWithNegatives(ctx, positives, negatives)
}

// Contrast compares the aggregated measures of two example tuples
// under every interpretation they share (the paper's Section 8
// "contrasting two sets of examples" extension).
func (s *System) Contrast(ctx context.Context, a, b ExampleTuple) ([]core.Contrast, error) {
	return s.Engine.ContrastSets(ctx, a, b)
}

// RankRefinements orders refinements best-first using the simplicity/
// focus heuristic (the paper's Section 8 ranking extension).
func RankRefinements(rs *ResultSet, refs []Refinement) []refine.Scored {
	return refine.Rank(rs, refs)
}

// Profile computes the data-profiling summary (dimension/level/member
// statistics plus per-measure value distributions).
func (s *System) Profile(ctx context.Context) (*core.Profile, error) {
	return s.Engine.Profile(ctx)
}

// Refresh updates the virtual graph's data statistics (observation and
// member counts) after new data was added, without re-crawling the
// schema, and drops the keyword-match cache.
func (s *System) Refresh(ctx context.Context) error {
	s.Engine.InvalidateCache()
	return vgraph.Refresh(ctx, s.Client, s.Config, s.Graph)
}

// WriteSnapshot persists a store in the fast binary snapshot format.
func WriteSnapshot(st *Store, w io.Writer) error { return st.WriteSnapshot(w) }

// ReadSnapshot loads a store from a binary snapshot.
func ReadSnapshot(r io.Reader) (*Store, error) { return store.ReadSnapshot(r) }

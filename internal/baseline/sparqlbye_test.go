package baseline

import (
	"context"
	"strings"
	"testing"

	"re2xolap/internal/testkg"
)

func TestReverseEngineerSingle(t *testing.T) {
	_, c, _ := testkg.BootstrapFixture(t, nil)
	res, err := ReverseEngineer(context.Background(), c, []string{"Asia"})
	if err != nil {
		t.Fatal(err)
	}
	// "asia" matches only the continent node; its only IRI edges are
	// none (continents have no outgoing IRI edges in the fixture), so
	// the label fallback is used.
	if len(res.Fallbacks) != 1 {
		t.Logf("query:\n%s", res.Query)
	}
	if !strings.HasPrefix(res.Query, "SELECT * WHERE") {
		t.Errorf("query = %s", res.Query)
	}
	if strings.Contains(res.Query, "GROUP BY") || strings.Contains(res.Query, "SUM") {
		t.Error("baseline produced aggregates")
	}
}

func TestReverseEngineerCountry(t *testing.T) {
	_, c, _ := testkg.BootstrapFixture(t, nil)
	res, err := ReverseEngineer(context.Background(), c, []string{"Germany"})
	if err != nil {
		t.Fatal(err)
	}
	// Germany's one-hop characterization: inContinent europe.
	found := false
	for _, p := range res.Patterns {
		if strings.HasSuffix(p.Pred, "inContinent") && strings.HasSuffix(p.Obj, "europe") {
			found = true
		}
	}
	if !found {
		t.Errorf("patterns = %v", res.Patterns)
	}
}

func TestReverseEngineerDisconnectedVariables(t *testing.T) {
	// Figure 10's key observation: the two example items produce
	// unconnected variables, never an observation-centered query.
	_, c, _ := testkg.BootstrapFixture(t, nil)
	res, err := ReverseEngineer(context.Background(), c, []string{"Germany", "France"})
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]bool{}
	for _, p := range res.Patterns {
		vars[p.Var] = true
	}
	if len(vars) != 2 {
		t.Errorf("vars = %v, want x0 and x1", vars)
	}
	if strings.Contains(res.Query, "?obs") {
		t.Error("baseline connected entities to observations")
	}
}

func TestReverseEngineerExecutable(t *testing.T) {
	// The derived query must run on the same endpoint and return the
	// matching entities (not aggregates).
	_, c, _ := testkg.BootstrapFixture(t, nil)
	ctx := context.Background()
	res, err := ReverseEngineer(ctx, c, []string{"Germany"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Query(ctx, res.Query)
	if err != nil {
		t.Fatalf("baseline query does not execute: %v\n%s", err, res.Query)
	}
	// All three European countries share inContinent=europe, so the
	// pattern generalizes beyond Germany (that is the point of minimal
	// BGPs: they cover the example, not only the example).
	if out.Len() < 1 {
		t.Errorf("rows = %d", out.Len())
	}
	containsGermany := false
	for _, row := range out.Rows {
		if row[out.Column("x0")].Value == testkg.NS+"de" {
			containsGermany = true
		}
	}
	if !containsGermany {
		t.Error("example entity not covered by its own reverse-engineered query")
	}
}

func TestReverseEngineerErrors(t *testing.T) {
	_, c, _ := testkg.BootstrapFixture(t, nil)
	ctx := context.Background()
	if _, err := ReverseEngineer(ctx, c, nil); err == nil {
		t.Error("empty example accepted")
	}
	if _, err := ReverseEngineer(ctx, c, []string{"atlantis"}); err == nil {
		t.Error("unmatched keyword accepted")
	}
}

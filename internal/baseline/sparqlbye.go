// Package baseline implements a SPARQLByE-style reverse engineering
// baseline (Diaz, Arenas, Benedikt — PVLDB 2016) for the Section 7.2
// comparison: given example values, it derives the minimal basic graph
// pattern covering the matched entities. As the paper's Figure 10
// illustrates, such a baseline characterizes each example entity in
// isolation (one hop), produces no aggregates or grouping, and never
// connects the entities to observations — which is exactly why
// analytical exploration needs ReOLAP instead.
package baseline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
)

// Pattern is one derived triple pattern for an example item:
// ?x<i> <Pred> <Obj>.
type Pattern struct {
	Var  string
	Pred string
	Obj  string
}

// Result is the reverse-engineered minimal BGP.
type Result struct {
	// Patterns per example item, in input order. An item with no
	// shared characterization contributes a label-filter pattern
	// recorded in Fallbacks instead.
	Patterns []Pattern
	// Fallbacks are items characterized only by their matched literal.
	Fallbacks []string
	// Query is the final SELECT * query text.
	Query string
}

// MaxEntitiesPerItem caps the entities considered per example value.
const MaxEntitiesPerItem = 200

// ReverseEngineer derives the minimal one-hop BGP covering the example
// values: for each value it finds the matching entities and keeps the
// (predicate, object) pairs shared by all of them. Variables for
// different items are deliberately left unconnected, reproducing the
// baseline's behavior on multi-hop analytical structures.
func ReverseEngineer(ctx context.Context, c endpoint.Client, items []string) (*Result, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("baseline: empty example")
	}
	res := &Result{}
	var body strings.Builder
	for i, item := range items {
		v := fmt.Sprintf("x%d", i)
		entities, err := matchEntities(ctx, c, item)
		if err != nil {
			return nil, err
		}
		if len(entities) == 0 {
			return nil, fmt.Errorf("baseline: no entity matches %q", item)
		}
		shared, err := sharedPairs(ctx, c, entities)
		if err != nil {
			return nil, err
		}
		if len(shared) == 0 {
			// Fall back to the label restriction itself.
			res.Fallbacks = append(res.Fallbacks, item)
			fmt.Fprintf(&body, "  ?%s ?p%d ?lit%d . FILTER (CONTAINS(LCASE(STR(?lit%d)), %s))\n",
				v, i, i, i, rdf.NewString(strings.ToLower(item)))
			continue
		}
		for _, pr := range shared {
			res.Patterns = append(res.Patterns, Pattern{Var: v, Pred: pr[0], Obj: pr[1]})
			fmt.Fprintf(&body, "  ?%s <%s> <%s> .\n", v, pr[0], pr[1])
		}
	}
	res.Query = "SELECT * WHERE {\n" + body.String() + "}"
	return res, nil
}

func matchEntities(ctx context.Context, c endpoint.Client, keyword string) ([]rdf.Term, error) {
	q := fmt.Sprintf(
		`SELECT DISTINCT ?m WHERE { ?m ?q ?lit . FILTER (ISLITERAL(?lit)) FILTER (CONTAINS(LCASE(STR(?lit)), %s)) FILTER (ISIRI(?m)) }`,
		rdf.NewString(strings.ToLower(keyword)))
	res, err := endpoint.QueryStep(ctx, c, "baseline", q)
	if err != nil {
		return nil, fmt.Errorf("baseline: matching %q: %w", keyword, err)
	}
	var out []rdf.Term
	for _, row := range res.Rows {
		if len(out) >= MaxEntitiesPerItem {
			break
		}
		out = append(out, row[0])
	}
	return out, nil
}

// sharedPairs returns the (predicate, IRI object) pairs common to every
// entity, sorted for determinism.
func sharedPairs(ctx context.Context, c endpoint.Client, entities []rdf.Term) ([][2]string, error) {
	counts := map[[2]string]int{}
	for _, e := range entities {
		q := fmt.Sprintf(`SELECT DISTINCT ?p ?o WHERE { %s ?p ?o . FILTER (ISIRI(?o)) }`, e)
		res, err := endpoint.QueryStep(ctx, c, "baseline", q)
		if err != nil {
			return nil, fmt.Errorf("baseline: describing %s: %w", e, err)
		}
		seen := map[[2]string]bool{}
		for _, row := range res.Rows {
			pr := [2]string{row[0].Value, row[1].Value}
			if !seen[pr] {
				seen[pr] = true
				counts[pr]++
			}
		}
	}
	var out [][2]string
	for pr, n := range counts {
		if n == len(entities) {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, nil
}

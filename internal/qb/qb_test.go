package qb

import "testing"

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.ObservationClass != Observation {
		t.Errorf("class = %q", c.ObservationClass)
	}
	if c.MaxHierarchyDepth != 8 {
		t.Errorf("depth = %d", c.MaxHierarchyDepth)
	}
	custom := Config{ObservationClass: "http://x/Obs", MaxHierarchyDepth: 3}.WithDefaults()
	if custom.ObservationClass != "http://x/Obs" || custom.MaxHierarchyDepth != 3 {
		t.Errorf("custom overridden: %+v", custom)
	}
}

func TestIgnored(t *testing.T) {
	c := Config{IgnorePredicates: []string{"http://x/skip"}}.WithDefaults()
	if !c.Ignored("http://www.w3.org/1999/02/22-rdf-syntax-ns#type") {
		t.Error("rdf:type not ignored")
	}
	if !c.Ignored("http://x/skip") {
		t.Error("configured predicate not ignored")
	}
	if c.Ignored("http://x/keep") {
		t.Error("unconfigured predicate ignored")
	}
}

func TestLocalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://ex.org/path/name", "name"},
		{"http://ex.org/ns#frag", "frag"},
		{"plain", "plain"},
		{"http://ex.org/trailing/", "http://ex.org/trailing/"},
	}
	for _, tt := range tests {
		if got := LocalName(tt.in); got != tt.want {
			t.Errorf("LocalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Package qb defines the statistical-knowledge-graph vocabulary and
// model from Section 3 of the paper: observations, measures,
// dimensions, hierarchy levels, and level attributes, following the RDF
// Data Cube (QB) vocabulary. The only structural assumption, as in the
// paper, is that observations are instances of a known RDF class; all
// multidimensional structure is inferred by the bootstrap crawler in
// internal/vgraph.
package qb

import "strings"

// RDF Data Cube vocabulary IRIs (the W3C QB standard).
const (
	NS = "http://purl.org/linked-data/cube#"

	// Observation is the default observation class, qb:Observation.
	Observation = NS + "Observation"
	// MeasureProperty marks measure predicates.
	MeasureProperty = NS + "MeasureProperty"
	// DimensionProperty marks dimension predicates.
	DimensionProperty = NS + "DimensionProperty"
	// DataSet relates observations to their dataset.
	DataSet = NS + "dataSet"
)

// Config describes how to interpret a statistical KG: the SPARQL
// endpoint knows the data, and the observation class anchors the
// crawl. This mirrors the paper's system bootstrap inputs ("the address
// of the SPARQL endpoint, the list of named graphs to query, and the
// RDF class identifying the observations").
type Config struct {
	// ObservationClass is the RDF class of observation nodes;
	// defaults to qb:Observation.
	ObservationClass string
	// MaxHierarchyDepth bounds the hierarchy crawl; defaults to 8.
	MaxHierarchyDepth int
	// IgnorePredicates are never treated as dimension or measure
	// predicates (rdf:type is always ignored).
	IgnorePredicates []string
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.ObservationClass == "" {
		c.ObservationClass = Observation
	}
	if c.MaxHierarchyDepth == 0 {
		c.MaxHierarchyDepth = 8
	}
	return c
}

// Ignored reports whether p must not be treated as a cube predicate.
func (c Config) Ignored(p string) bool {
	if p == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		return true
	}
	for _, ig := range c.IgnorePredicates {
		if ig == p {
			return true
		}
	}
	return false
}

// LocalName extracts the fragment or last path segment of an IRI, used
// as a fallback display name when no rdfs:label exists.
func LocalName(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

package vgraph

import (
	"context"
	"fmt"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/qb"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

const ex = "http://ex.org/"

// asylumFixture builds a miniature version of the paper's Figure 1 KG:
// observations with origin (country→continent), destination
// (country→continent), refPeriod (month→year), sex (flat), and one
// measure numApplicants. All members carry labels.
func asylumFixture(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	var ts []rdf.Triple
	iri := func(s string) rdf.Term { return rdf.NewIRI(ex + s) }
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(iri(s), iri(p), o))
	}
	label := func(n, l string) { add(n, "label", rdf.NewString(l)) }

	countries := map[string]string{"de": "europe", "fr": "europe", "sy": "asia", "cn": "asia"}
	countryLabels := map[string]string{"de": "Germany", "fr": "France", "sy": "Syria", "cn": "China"}
	for c, cont := range countries {
		add(c, "inContinent", iri(cont))
		label(c, countryLabels[c])
	}
	label("europe", "Europe")
	label("asia", "Asia")
	months := map[string]string{"m2014-01": "y2014", "m2014-02": "y2014", "m2015-01": "y2015"}
	for m, y := range months {
		add(m, "inYear", iri(y))
		label(m, m[1:])
	}
	label("y2014", "2014")
	label("y2015", "2015")
	for _, s := range []string{"male", "female"} {
		label(s, s)
	}

	type obs struct {
		origin, dest, month, sex string
		value                    int64
	}
	data := []obs{
		{"sy", "de", "m2014-01", "male", 100},
		{"sy", "de", "m2014-02", "female", 150},
		{"sy", "fr", "m2014-01", "male", 50},
		{"cn", "de", "m2015-01", "male", 30},
		{"cn", "fr", "m2014-01", "female", 20},
		{"de", "fr", "m2015-01", "male", 5},
	}
	for i, o := range data {
		n := fmt.Sprintf("obs%d", i)
		ts = append(ts, rdf.NewTriple(iri(n), rdf.NewIRI(rdf.RDFType), iri("Observation")))
		add(n, "origin", iri(o.origin))
		add(n, "dest", iri(o.dest))
		add(n, "refPeriod", iri(o.month))
		add(n, "sex", iri(o.sex))
		add(n, "numApplicants", rdf.NewInteger(o.value))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	return st
}

func testConfig() qb.Config {
	return qb.Config{ObservationClass: ex + "Observation"}
}

func bootstrapFixture(t testing.TB) *Graph {
	t.Helper()
	g, err := Bootstrap(context.Background(), endpoint.NewInProcess(asylumFixture(t)), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBootstrapStructure(t *testing.T) {
	g := bootstrapFixture(t)
	st := g.Stats()
	if st.Dimensions != 4 {
		t.Errorf("dimensions = %d, want 4", st.Dimensions)
	}
	if st.Measures != 1 {
		t.Errorf("measures = %d, want 1", st.Measures)
	}
	// Levels: origin, origin/inContinent, dest, dest/inContinent,
	// refPeriod, refPeriod/inYear, sex = 7
	if st.Levels != 7 {
		t.Errorf("levels = %d, want 7\n%s", st.Levels, g)
	}
	// Hierarchies = leaf levels: origin/inContinent, dest/inContinent,
	// refPeriod/inYear, sex = 4
	if st.Hierarchies != 4 {
		t.Errorf("hierarchies = %d, want 4", st.Hierarchies)
	}
	if g.ObservationCount != 6 {
		t.Errorf("observations = %d, want 6", g.ObservationCount)
	}
}

func TestBootstrapLevels(t *testing.T) {
	g := bootstrapFixture(t)
	tests := []struct {
		path    []string
		members int
		depth   int
	}{
		{[]string{ex + "origin"}, 3, 1},
		{[]string{ex + "origin", ex + "inContinent"}, 2, 2},
		{[]string{ex + "dest"}, 2, 1},
		{[]string{ex + "dest", ex + "inContinent"}, 1, 2}, // only Europe is a destination continent
		{[]string{ex + "refPeriod"}, 3, 1},
		{[]string{ex + "refPeriod", ex + "inYear"}, 2, 2},
		{[]string{ex + "sex"}, 2, 1},
	}
	for _, tt := range tests {
		l := g.LevelByPath(tt.path)
		if l == nil {
			t.Errorf("level %v missing", tt.path)
			continue
		}
		if l.MemberCount != tt.members {
			t.Errorf("level %s members = %d, want %d", l, l.MemberCount, tt.members)
		}
		if l.Depth != tt.depth {
			t.Errorf("level %s depth = %d, want %d", l, l.Depth, tt.depth)
		}
		if l.ManyToMany {
			t.Errorf("level %s wrongly flagged M:N", l)
		}
	}
	// Attributes: country level members carry labels.
	origin := g.LevelByPath([]string{ex + "origin"})
	if len(origin.Attributes) != 1 || origin.Attributes[0] != ex+"label" {
		t.Errorf("origin attributes = %v", origin.Attributes)
	}
}

func TestBootstrapParentChild(t *testing.T) {
	g := bootstrapFixture(t)
	base := g.LevelByPath([]string{ex + "origin"})
	coarse := g.LevelByPath([]string{ex + "origin", ex + "inContinent"})
	if coarse.Parent != base {
		t.Error("parent link broken")
	}
	found := false
	for _, c := range base.Children {
		if c == coarse {
			found = true
		}
	}
	if !found {
		t.Error("child link broken")
	}
	if len(g.LevelsOf(ex+"origin")) != 2 {
		t.Errorf("LevelsOf(origin) = %v", g.LevelsOf(ex+"origin"))
	}
}

func TestBootstrapManyToMany(t *testing.T) {
	st := asylumFixture(t)
	// Give Syria a second continent to create an M-to-N step.
	_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+"sy"), rdf.NewIRI(ex+"inContinent"), rdf.NewIRI(ex+"europe")))
	g, err := Bootstrap(context.Background(), endpoint.NewInProcess(st), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := g.LevelByPath([]string{ex + "origin", ex + "inContinent"})
	if !l.ManyToMany {
		t.Error("M:N step not detected")
	}
}

func TestBootstrapCycleHandling(t *testing.T) {
	st := asylumFixture(t)
	// Continent points back to itself through the same predicate.
	_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+"asia"), rdf.NewIRI(ex+"inContinent"), rdf.NewIRI(ex+"asia")))
	g, err := Bootstrap(context.Background(), endpoint.NewInProcess(st), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The repeated predicate must not create an infinite chain.
	for _, l := range g.Levels {
		seen := map[string]bool{}
		for _, p := range l.Path {
			if seen[p] {
				t.Errorf("level %s repeats predicate %s", l, p)
			}
			seen[p] = true
		}
	}
	_ = g
}

func TestBootstrapDepthCap(t *testing.T) {
	st := store.New()
	var ts []rdf.Triple
	iri := func(s string) rdf.Term { return rdf.NewIRI(ex + s) }
	ts = append(ts, rdf.NewTriple(iri("o1"), rdf.NewIRI(rdf.RDFType), iri("Observation")))
	ts = append(ts, rdf.NewTriple(iri("o1"), iri("dim"), iri("n0")))
	ts = append(ts, rdf.NewTriple(iri("o1"), iri("val"), rdf.NewInteger(1)))
	// a deep chain with distinct predicates
	for i := 0; i < 12; i++ {
		ts = append(ts, rdf.NewTriple(iri(fmt.Sprintf("n%d", i)), iri(fmt.Sprintf("up%d", i)), iri(fmt.Sprintf("n%d", i+1))))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxHierarchyDepth = 4
	g, err := Bootstrap(context.Background(), endpoint.NewInProcess(st), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Levels {
		if l.Depth > 4 {
			t.Errorf("level %s exceeds depth cap", l)
		}
	}
}

func TestBootstrapNoObservations(t *testing.T) {
	st := store.New()
	_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+"a"), rdf.NewIRI(ex+"p"), rdf.NewIRI(ex+"b")))
	if _, err := Bootstrap(context.Background(), endpoint.NewInProcess(st), testConfig()); err == nil {
		t.Error("empty observation class accepted")
	}
}

func TestGraphStringAndLookups(t *testing.T) {
	g := bootstrapFixture(t)
	if s := g.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	if g.LevelByKey("nope") != nil {
		t.Error("bogus key found")
	}
	if len(g.BaseLevels()) != 4 {
		t.Errorf("base levels = %d, want 4", len(g.BaseLevels()))
	}
}

func TestRefresh(t *testing.T) {
	st := asylumFixture(t)
	c := endpoint.NewInProcess(st)
	g, err := Bootstrap(context.Background(), c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := g.ObservationCount
	origin := g.LevelByPath([]string{ex + "origin"})
	beforeMembers := origin.MemberCount

	// Add a new observation with a previously-unused origin (se) and a
	// new M-to-N edge, then refresh.
	add := func(s, p, o string) {
		_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+s), rdf.NewIRI(ex+p), rdf.NewIRI(ex+o)))
	}
	add("se", "inContinent", "europe")
	add("obsNew", "origin", "se")
	add("obsNew", "dest", "de")
	add("obsNew", "refPeriod", "m2014-01")
	add("obsNew", "sex", "male")
	_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+"obsNew"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI(ex+"Observation")))
	_ = st.Add(rdf.NewTriple(rdf.NewIRI(ex+"obsNew"), rdf.NewIRI(ex+"numApplicants"), rdf.NewInteger(9)))
	add("sy", "inContinent", "europe") // M-to-N

	if err := Refresh(context.Background(), c, testConfig(), g); err != nil {
		t.Fatal(err)
	}
	if g.ObservationCount != before+1 {
		t.Errorf("observations = %d, want %d", g.ObservationCount, before+1)
	}
	if origin.MemberCount != beforeMembers+1 {
		t.Errorf("origin members = %d, want %d", origin.MemberCount, beforeMembers+1)
	}
	cont := g.LevelByPath([]string{ex + "origin", ex + "inContinent"})
	if !cont.ManyToMany {
		t.Error("new M-to-N step not detected by refresh")
	}
}

func TestRefreshClassMismatch(t *testing.T) {
	_, c, g := fixtureTriple(t)
	cfg := testConfig()
	cfg.ObservationClass = ex + "Other"
	if err := Refresh(context.Background(), c, cfg, g); err == nil {
		t.Error("class mismatch accepted")
	}
}

// fixtureTriple is a small helper returning store, client, and graph.
func fixtureTriple(t *testing.T) (*store.Store, *endpoint.InProcess, *Graph) {
	t.Helper()
	st := asylumFixture(t)
	c := endpoint.NewInProcess(st)
	g, err := Bootstrap(context.Background(), c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st, c, g
}

func TestEstimatedBytes(t *testing.T) {
	st, _, g := fixtureTriple(t)
	if g.EstimatedBytes() <= 0 {
		t.Error("vgraph bytes = 0")
	}
	// The virtual graph must be smaller than the store even on this
	// tiny fixture; the "orders of magnitude" gap appears at scale
	// (vgraph size is independent of the member/observation count),
	// which the Table 3 harness reports.
	if g.EstimatedBytes() >= st.EstimatedBytes() {
		t.Errorf("vgraph %d bytes not < store %d bytes", g.EstimatedBytes(), st.EstimatedBytes())
	}
}

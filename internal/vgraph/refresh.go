package vgraph

import (
	"context"
	"fmt"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/qb"
)

// Refresh updates the data-dependent statistics of an existing virtual
// graph — observation count, per-level member counts, and M-to-N flags
// — without re-discovering the schema. This implements the paper's
// incremental maintenance claim (Section 7.1): "if the schema does not
// change and only new data is added, all the in-memory data structures
// are updated efficiently without the need for re-computation". It
// issues two queries per level instead of the full bootstrap crawl.
func Refresh(ctx context.Context, c endpoint.Client, cfg qb.Config, g *Graph) error {
	cfg = cfg.WithDefaults()
	if cfg.ObservationClass != g.ObservationClass {
		return fmt.Errorf("vgraph: refresh with different observation class (%s vs %s)",
			cfg.ObservationClass, g.ObservationClass)
	}
	n, err := countQuery(ctx, c, "refresh-stats", fmt.Sprintf(
		`SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?o a <%s> . }`, cfg.ObservationClass))
	if err != nil {
		return fmt.Errorf("vgraph: refresh: counting observations: %w", err)
	}
	g.ObservationCount = n
	for _, l := range g.Levels {
		count, err := countQuery(ctx, c, "refresh-stats", fmt.Sprintf(
			`SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?o a <%s> . ?o %s ?m . }`,
			cfg.ObservationClass, pathExpr(l.Path)))
		if err != nil {
			return fmt.Errorf("vgraph: refresh: level %s: %w", l, err)
		}
		l.MemberCount = count
		if l.Depth > 1 && !l.ManyToMany {
			parentPath := pathExpr(l.Path[:len(l.Path)-1])
			last := l.Path[len(l.Path)-1]
			res, err := endpoint.QueryStep(ctx, c, "refresh-stats", fmt.Sprintf(
				`ASK { ?o a <%s> . ?o %s ?f . ?f <%s> ?m1 . ?f <%s> ?m2 . FILTER (?m1 != ?m2) }`,
				cfg.ObservationClass, parentPath, last, last))
			if err != nil {
				return fmt.Errorf("vgraph: refresh: level %s: %w", l, err)
			}
			l.ManyToMany = res.Boolean
		}
	}
	return nil
}

// Package vgraph implements the Virtual Schema Graph of Section 5.2: a
// small in-memory directed graph with one node per hierarchy level per
// dimension (plus the observation root), built once at bootstrap by
// crawling the SPARQL endpoint. It lets query generation and the
// Disaggregate refinement enumerate dimension/level paths without
// touching the triplestore.
package vgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Level is one node of the virtual schema graph: a hierarchy level
// within a dimension, identified by the predicate path that leads from
// an observation to members of this level.
type Level struct {
	// ID indexes the level within Graph.Levels.
	ID int
	// Dimension is the dimension predicate: the first predicate on the
	// path, linking observations to base members.
	Dimension string
	// Path is the full predicate sequence from the observation node to
	// members of this level. len(Path) == Depth.
	Path []string
	// Depth is 1 for base levels (directly attached to observations).
	Depth int
	// Parent is the finer level this one is reached from; nil for base
	// levels (their parent is the observation root).
	Parent *Level
	// Children are the coarser levels reachable from this level's
	// members (roll-up targets).
	Children []*Level
	// MemberCount is the number of distinct members observed at this
	// level during bootstrap.
	MemberCount int
	// Attributes are predicates linking members of this level to
	// literals (the level attributes P_A, e.g. rdfs:label).
	Attributes []string
	// Label is a human-readable name for the level, derived from the
	// last predicate on the path.
	Label string
	// ManyToMany records whether some member at the finer level links
	// to more than one member of this level (M-to-N hierarchy step, as
	// in the paper's DBpedia dataset).
	ManyToMany bool
}

// Key returns the canonical identity of a level: its predicate path.
func (l *Level) Key() string { return strings.Join(l.Path, "\x00") }

// String renders the level as "pred1/pred2" using local names.
func (l *Level) String() string {
	parts := make([]string, len(l.Path))
	for i, p := range l.Path {
		parts[i] = localName(p)
	}
	return strings.Join(parts, "/")
}

func localName(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// Measure describes one measure predicate found on observations.
type Measure struct {
	// Predicate links observations to numeric literal values.
	Predicate string
	// Label is a display name.
	Label string
}

// Graph is the virtual schema graph.
type Graph struct {
	// ObservationClass anchors the graph.
	ObservationClass string
	// ObservationCount is the number of observation instances.
	ObservationCount int
	// Levels holds every level node; base levels first, then coarser
	// levels in discovery order.
	Levels []*Level
	// Measures holds the measure predicates.
	Measures []Measure

	byKey map[string]*Level
}

// LevelByKey returns the level with the given predicate-path key.
func (g *Graph) LevelByKey(key string) *Level { return g.byKey[key] }

// LevelByPath returns the level with the given predicate path.
func (g *Graph) LevelByPath(path []string) *Level {
	return g.byKey[strings.Join(path, "\x00")]
}

// BaseLevels returns the levels directly attached to observations.
func (g *Graph) BaseLevels() []*Level {
	var out []*Level
	for _, l := range g.Levels {
		if l.Depth == 1 {
			out = append(out, l)
		}
	}
	return out
}

// Dimensions returns the distinct dimension predicates in a stable
// order.
func (g *Graph) Dimensions() []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range g.Levels {
		if !seen[l.Dimension] {
			seen[l.Dimension] = true
			out = append(out, l.Dimension)
		}
	}
	sort.Strings(out)
	return out
}

// LevelsOf returns all levels of one dimension, finest first.
func (g *Graph) LevelsOf(dimension string) []*Level {
	var out []*Level
	for _, l := range g.Levels {
		if l.Dimension == dimension {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// HierarchyCount returns the number of hierarchies: maximal root-to-leaf
// paths in the level forest (a level with no children terminates a
// hierarchy).
func (g *Graph) HierarchyCount() int {
	n := 0
	for _, l := range g.Levels {
		if len(l.Children) == 0 {
			n++
		}
	}
	return n
}

// MemberTotal returns the total number of distinct members across all
// levels (the |N_D| statistic of Table 3; members shared between levels
// are counted per level, matching how the bootstrap observes them).
func (g *Graph) MemberTotal() int {
	n := 0
	for _, l := range g.Levels {
		n += l.MemberCount
	}
	return n
}

// Stats summarizes the graph with the Table 3 statistics.
type Stats struct {
	Dimensions  int
	Measures    int
	Hierarchies int
	Levels      int
	Members     int
}

// Stats computes the Table 3 statistics for the graph.
func (g *Graph) Stats() Stats {
	return Stats{
		Dimensions:  len(g.Dimensions()),
		Measures:    len(g.Measures),
		Hierarchies: g.HierarchyCount(),
		Levels:      len(g.Levels),
		Members:     g.MemberTotal(),
	}
}

// addLevel registers a level node, assigning its ID.
func (g *Graph) addLevel(l *Level) *Level {
	if g.byKey == nil {
		g.byKey = map[string]*Level{}
	}
	if existing, ok := g.byKey[l.Key()]; ok {
		return existing
	}
	l.ID = len(g.Levels)
	g.Levels = append(g.Levels, l)
	g.byKey[l.Key()] = l
	return l
}

// String renders a compact description of the schema, e.g. for the CLI
// profile command.
func (g *Graph) String() string {
	var b strings.Builder
	st := g.Stats()
	fmt.Fprintf(&b, "virtual schema graph: %d dimensions, %d measures, %d hierarchies, %d levels, %d members\n",
		st.Dimensions, st.Measures, st.Hierarchies, st.Levels, st.Members)
	for _, dim := range g.Dimensions() {
		fmt.Fprintf(&b, "  dimension %s\n", localName(dim))
		for _, l := range g.LevelsOf(dim) {
			mm := ""
			if l.ManyToMany {
				mm = " [M:N]"
			}
			fmt.Fprintf(&b, "    level %-40s depth=%d members=%d%s\n", l.String(), l.Depth, l.MemberCount, mm)
		}
	}
	for _, m := range g.Measures {
		fmt.Fprintf(&b, "  measure %s\n", localName(m.Predicate))
	}
	return b.String()
}

// EstimatedBytes approximates the in-memory footprint of the virtual
// graph, to compare against the underlying store (the paper's
// "orders of magnitude smaller" claim and Table 3's VGraph column).
func (g *Graph) EstimatedBytes() int64 {
	var n int64
	for _, l := range g.Levels {
		n += 96 // struct overhead
		for _, p := range l.Path {
			n += int64(len(p)) + 16
		}
		for _, a := range l.Attributes {
			n += int64(len(a)) + 16
		}
		n += int64(len(l.Label) + len(l.Dimension))
	}
	for _, m := range g.Measures {
		n += int64(len(m.Predicate)+len(m.Label)) + 32
	}
	return n
}

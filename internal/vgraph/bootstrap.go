package vgraph

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/qb"
	"re2xolap/internal/sparql"
)

// Bootstrap builds the virtual schema graph by crawling the endpoint,
// exactly as in Section 5.2: it enumerates predicates linking
// observations to non-literal nodes (dimension predicates and members),
// then recursively discovers coarser hierarchy levels with a
// depth-first traversal that handles cycles, and records measure
// predicates (numeric literals) and level attributes (other literals).
// Only SPARQL queries are issued; no direct store access.
func Bootstrap(ctx context.Context, c endpoint.Client, cfg qb.Config) (*Graph, error) {
	cfg = cfg.WithDefaults()
	g := &Graph{ObservationClass: cfg.ObservationClass}

	n, err := countQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?o a <%s> . }`, cfg.ObservationClass))
	if err != nil {
		return nil, fmt.Errorf("vgraph: counting observations: %w", err)
	}
	g.ObservationCount = n
	if n == 0 {
		return nil, fmt.Errorf("vgraph: no instances of observation class <%s>", cfg.ObservationClass)
	}

	// Measure predicates: observation → numeric literal.
	measures, err := predicateQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT DISTINCT ?p WHERE { ?o a <%s> . ?o ?p ?v . FILTER (ISNUMERIC(?v)) }`, cfg.ObservationClass))
	if err != nil {
		return nil, fmt.Errorf("vgraph: discovering measures: %w", err)
	}
	for _, p := range measures {
		if cfg.Ignored(p) {
			continue
		}
		g.Measures = append(g.Measures, Measure{Predicate: p, Label: predicateLabel(ctx, c, p)})
	}
	sort.Slice(g.Measures, func(i, j int) bool { return g.Measures[i].Predicate < g.Measures[j].Predicate })

	// Dimension predicates: observation → IRI.
	dims, err := predicateQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT DISTINCT ?p WHERE { ?o a <%s> . ?o ?p ?m . FILTER (ISIRI(?m)) }`, cfg.ObservationClass))
	if err != nil {
		return nil, fmt.Errorf("vgraph: discovering dimensions: %w", err)
	}
	sort.Strings(dims)

	// Depth-first hierarchy discovery from each base level.
	var stack []*Level
	for _, p := range dims {
		if cfg.Ignored(p) {
			continue
		}
		l := g.addLevel(&Level{
			Dimension: p,
			Path:      []string{p},
			Depth:     1,
			Label:     qb.LocalName(p),
		})
		stack = append(stack, l)
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := describeLevel(ctx, c, cfg, l); err != nil {
			return nil, fmt.Errorf("vgraph: describing level %s: %w", l, err)
		}
		if l.Depth >= cfg.MaxHierarchyDepth {
			continue
		}
		children, err := childPredicates(ctx, c, cfg, l)
		if err != nil {
			return nil, fmt.Errorf("vgraph: expanding level %s: %w", l, err)
		}
		for _, q := range children {
			path := append(append([]string(nil), l.Path...), q)
			key := strings.Join(path, "\x00")
			if g.byKey[key] != nil {
				continue // already discovered through another traversal
			}
			child := g.addLevel(&Level{
				Dimension: l.Dimension,
				Path:      path,
				Depth:     l.Depth + 1,
				Parent:    l,
				Label:     qb.LocalName(q),
			})
			l.Children = append(l.Children, child)
			stack = append(stack, child)
		}
	}
	return g, nil
}

// describeLevel fills member count, attributes, and the M-to-N flag.
func describeLevel(ctx context.Context, c endpoint.Client, cfg qb.Config, l *Level) error {
	path := pathExpr(l.Path)
	n, err := countQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?o a <%s> . ?o %s ?m . }`,
		cfg.ObservationClass, path))
	if err != nil {
		return err
	}
	l.MemberCount = n

	l.Label = predicateLabel(ctx, c, l.Path[len(l.Path)-1])

	attrs, err := predicateQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT DISTINCT ?q WHERE { ?o a <%s> . ?o %s ?m . ?m ?q ?lit . FILTER (ISLITERAL(?lit)) }`,
		cfg.ObservationClass, path))
	if err != nil {
		return err
	}
	for _, a := range attrs {
		if !cfg.Ignored(a) {
			l.Attributes = append(l.Attributes, a)
		}
	}
	sort.Strings(l.Attributes)

	if l.Depth > 1 {
		// M-to-N check: does some finer member link to two members here?
		parentPath := pathExpr(l.Path[:len(l.Path)-1])
		last := l.Path[len(l.Path)-1]
		res, err := endpoint.QueryStep(ctx, c, "bootstrap", fmt.Sprintf(
			`ASK { ?o a <%s> . ?o %s ?f . ?f <%s> ?m1 . ?f <%s> ?m2 . FILTER (?m1 != ?m2) }`,
			cfg.ObservationClass, parentPath, last, last))
		if err != nil {
			return err
		}
		l.ManyToMany = res.Boolean
	}
	return nil
}

// childPredicates finds predicates from members of l to other IRIs,
// excluding cycles (predicates already on the path) and ignored
// predicates.
func childPredicates(ctx context.Context, c endpoint.Client, cfg qb.Config, l *Level) ([]string, error) {
	preds, err := predicateQuery(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT DISTINCT ?q WHERE { ?o a <%s> . ?o %s ?m . ?m ?q ?x . FILTER (ISIRI(?x)) }`,
		cfg.ObservationClass, pathExpr(l.Path)))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, q := range preds {
		if cfg.Ignored(q) {
			continue
		}
		onPath := false
		for _, p := range l.Path {
			if p == q {
				onPath = true // cycle: the same predicate repeats
				break
			}
		}
		if !onPath {
			out = append(out, q)
		}
	}
	sort.Strings(out)
	return out, nil
}

// predicateLabel fetches the rdfs:label of a predicate IRI, falling
// back to its local name. The paper uses these in-data annotations to
// present queries in natural language (Section 5.1).
func predicateLabel(ctx context.Context, c endpoint.Client, pred string) string {
	res, err := endpoint.QueryStep(ctx, c, "bootstrap", fmt.Sprintf(
		`SELECT ?l WHERE { <%s> <http://www.w3.org/2000/01/rdf-schema#label> ?l . } LIMIT 1`, pred))
	if err == nil && res.Len() > 0 && sparql.Bound(res.Rows[0][0]) {
		return res.Rows[0][0].Value
	}
	return qb.LocalName(pred)
}

// pathExpr renders a predicate sequence as a SPARQL property path.
func pathExpr(path []string) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = "<" + p + ">"
	}
	return strings.Join(parts, "/")
}

// predicateQuery runs a single-variable SELECT and returns the IRI
// values of the first column.
func predicateQuery(ctx context.Context, c endpoint.Client, step, q string) ([]string, error) {
	res, err := endpoint.QueryStep(ctx, c, step, q)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, row := range res.Rows {
		if sparql.Bound(row[0]) && row[0].IsIRI() {
			out = append(out, row[0].Value)
		}
	}
	return out, nil
}

// countQuery runs a COUNT query and returns the integer result.
func countQuery(ctx context.Context, c endpoint.Client, step, q string) (int, error) {
	res, err := endpoint.QueryStep(ctx, c, step, q)
	if err != nil {
		return 0, err
	}
	if res.Len() == 0 || !sparql.Bound(res.Rows[0][0]) {
		return 0, fmt.Errorf("vgraph: count query returned no value")
	}
	n, ok := res.Rows[0][0].Numeric()
	if !ok {
		return 0, fmt.Errorf("vgraph: count query returned non-numeric %v", res.Rows[0][0])
	}
	return int(n), nil
}

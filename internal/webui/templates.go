package webui

import "html/template"

const baseCSS = `
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; font-size: .9rem; }
th { background: #f3f3f3; }
form.inline { display: inline; }
button { margin: .1rem; }
.error { color: #b00020; font-weight: 600; }
.muted { color: #777; font-size: .85rem; }
ol.history li { margin: .2rem 0; }
pre { background: #f7f7f7; padding: .7rem; overflow-x: auto; font-size: .8rem; }
input[type=text] { width: 28rem; padding: .3rem; }
`

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>RE2xOLAP</title><style>` + baseCSS + `</style></head><body>
<h1>RE2xOLAP — example-driven exploratory analytics</h1>
<p class="muted">{{.Stats.Dimensions}} dimensions · {{.Stats.Hierarchies}} hierarchies ·
{{.Stats.Levels}} levels · {{.Stats.Members}} members —
<a href="/profile">dataset profile</a>{{if .HasCurrent}} · <a href="/view">current exploration</a>{{end}}</p>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
<h2>Start from examples</h2>
<form method="post" action="/example">
  <p><label>Example values (separate with |):<br>
  <input type="text" name="example" placeholder="Germany | 2014"></label></p>
  <p><label>Negative examples (optional):<br>
  <input type="text" name="negatives" placeholder="China"></label></p>
  <button type="submit">Find analytical queries</button>
</form>
<h2>Contrast two example sets</h2>
<form method="post" action="/contrast">
  <p><input type="text" name="a" placeholder="Germany"> vs
  <input type="text" name="b" placeholder="France"></p>
  <button type="submit">Compare</button>
</form>
{{if .Contrasts}}
{{range .Contrasts}}
<h2>Contrast — {{.Query.Description}}</h2>
<table><tr><th>column</th><th>A</th><th>B</th><th>A/B</th></tr>
{{range .Rows}}<tr><td>{{.Column}}</td><td>{{printf "%.1f" .A}}</td><td>{{printf "%.1f" .B}}</td><td>{{printf "%.2f" .Ratio}}</td></tr>{{end}}
</table>
{{end}}
{{end}}
{{if .Candidates}}
<h2>Interpretations</h2>
<table><tr><th></th><th>query</th><th></th></tr>
{{range $i, $c := .Candidates}}
<tr><td>{{$i}}</td><td>{{$c.Query.Description}}</td>
<td><form class="inline" method="post" action="/pick">
<input type="hidden" name="i" value="{{$i}}"><button type="submit">run</button></form></td></tr>
{{end}}
</table>
{{end}}
</body></html>`))

var viewTmpl = template.Must(template.New("view").Parse(`<!DOCTYPE html>
<html><head><title>RE2xOLAP — exploration</title><style>` + baseCSS + `</style></head><body>
<h1>Exploration (step {{.Depth}})</h1>
<p><a href="/">new example</a></p>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
<p>{{.Description}}</p>
<p class="muted">{{.Total}} result tuples · {{.ExampleHits}} matching your example</p>

<h2>Refine</h2>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="disaggregate"><button>disaggregate</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="topk"><button>top-k</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="percentile"><button>percentile</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="similarity"><button>similar</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="cluster"><button>cluster</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="rollup"><button>roll up</button></form>
<form class="inline" method="post" action="/refine"><input type="hidden" name="kind" value="disaggregate"><input type="hidden" name="ranked" value="1"><button>disaggregate (ranked)</button></form>
<form class="inline" method="post" action="/back"><button>◀ back</button></form>

{{if .Options}}
<h2>Proposed {{.OptionKind}} refinements</h2>
<table><tr><th></th><th>refinement</th><th></th></tr>
{{range .Options}}
<tr><td>{{.Index}}</td><td>{{.Why}}</td>
<td><form class="inline" method="post" action="/apply">
<input type="hidden" name="i" value="{{.Index}}"><button type="submit">apply</button></form></td></tr>
{{end}}
</table>
{{end}}

<h2>Results</h2>
<table>
<tr>{{range .Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{if .Truncated}}<p class="muted">showing the first rows of {{.Total}}</p>{{end}}

<h2>Path</h2>
<ol class="history">{{range .History}}<li>{{.}}</li>{{end}}</ol>

<h2>SPARQL</h2>
<pre>{{.SPARQL}}</pre>
</body></html>`))

package webui

// This file is the fleet ops dashboard: a single server-rendered page
// (/fleet) showing topology health, per-shard latency, serve-layer
// cache and admission state, and the per-tenant SLO burn-rate table.
// The handler is decoupled from the shard and serve packages: the
// caller assembles a FleetData snapshot per request (cmd/sparqld does
// this from the coordinator, the serve stack, and the metrics
// registry), so the dashboard renders whatever subset of the system
// exists — a single node shows only its serve and tenant sections.

import (
	"html/template"
	"net/http"
)

// FleetData is one render of the ops dashboard. All fields are plain
// presentation values; zero-value sections are omitted from the page.
type FleetData struct {
	// Mode names the deployment role: "coordinator" or "single".
	Mode string
	// Shards and ReplicaCount describe the topology (coordinator only).
	Shards       int
	ReplicaCount int
	// Epoch is the topology version (bumps on live reloads).
	Epoch int64
	// RefreshSeconds drives the page's auto-refresh meta tag
	// (0 disables).
	RefreshSeconds int

	Replicas []FleetReplicaRow
	Latency  []ShardLatencyRow
	Serve    *ServeStats
	Tenants  []TenantSLORow
	// SLOObjectives names the tracked objectives for the table header.
	SLOObjectives []string
}

// FleetReplicaRow is one replica's health and scrape state.
type FleetReplicaRow struct {
	Shard, Replica int
	Spec           string
	Up, Probed     bool
	// Scrapable/Scraped/Stale/Age describe fleet metrics collection;
	// meaningful only when fleet scraping is on.
	Scrapable bool
	Scraped   bool
	Stale     bool
	Age       string
	Err       string
}

// ShardLatencyRow is one shard's call-latency quantiles as the
// coordinator observed them.
type ShardLatencyRow struct {
	Shard         string
	Queries       int64
	Errors        int64
	P50, P95, P99 string
}

// ServeStats is the serving-stack section: cache effectiveness,
// dedup, and admission pressure.
type ServeStats struct {
	CacheHits     int64
	CacheMisses   int64
	CacheHitRatio string
	Coalesced     int64
	Executions    int64
	QueueDepth    int64
	Sheds         int64
}

// TenantSLORow is one tenant × objective row of the burn-rate table.
type TenantSLORow struct {
	Tenant    string
	Objective string
	// Burn5m/1h/6h are formatted burn rates; Hot flags a row burning
	// above 1.0 in any window (rendered highlighted).
	Burn5m, Burn1h, Burn6h string
	Hot                    bool
	Queries                int64
	Sheds                  int64
	CacheHitRatio          string
}

// NewFleet serves the ops dashboard, calling provider on every
// request for a fresh snapshot.
func NewFleet(provider func() FleetData) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleet" && r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := fleetTmpl.Execute(w, provider()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// fleetTmpl uses html/template: tenant names arrive from request
// headers and scrape errors echo remote responses, so contextual
// escaping is load-bearing here.
var fleetTmpl = template.Must(template.New("fleet").Parse(`<!DOCTYPE html>
<html><head><title>RE2xOLAP — fleet</title>
{{if .RefreshSeconds}}<meta http-equiv="refresh" content="{{.RefreshSeconds}}">{{end}}
<style>` + baseCSS + `
td.ok { color: #0a7d33; font-weight: 600; }
td.bad { color: #b00020; font-weight: 600; }
tr.hot td { background: #fdecea; }
</style></head><body>
<h1>Fleet — {{.Mode}}</h1>
{{if .Shards}}<p class="muted">{{.Shards}} shards · {{.ReplicaCount}} replicas · topology epoch {{.Epoch}}</p>{{end}}

{{if .Replicas}}
<h2>Topology health</h2>
<table>
<tr><th>shard</th><th>replica</th><th>spec</th><th>routing</th><th>scrape</th><th>age</th><th>error</th></tr>
{{range .Replicas}}
<tr><td>{{.Shard}}</td><td>{{.Replica}}</td><td>{{.Spec}}</td>
<td class="{{if .Up}}ok{{else}}bad{{end}}">{{if .Up}}up{{else}}down{{end}}{{if not .Probed}} (unprobed){{end}}</td>
<td>{{if not .Scrapable}}<span class="muted">n/a</span>{{else if .Stale}}<span class="bad">stale</span>{{else}}<span class="ok">fresh</span>{{end}}</td>
<td>{{.Age}}</td><td>{{.Err}}</td></tr>
{{end}}
</table>
{{end}}

{{if .Latency}}
<h2>Per-shard latency (coordinator view)</h2>
<table>
<tr><th>shard</th><th>queries</th><th>errors</th><th>p50</th><th>p95</th><th>p99</th></tr>
{{range .Latency}}
<tr><td>{{.Shard}}</td><td>{{.Queries}}</td><td>{{.Errors}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td></tr>
{{end}}
</table>
{{end}}

{{if .Serve}}
<h2>Serving stack</h2>
<table>
<tr><th>cache hits</th><th>misses</th><th>hit ratio</th><th>coalesced</th><th>executions</th><th>queue depth</th><th>sheds</th></tr>
<tr><td>{{.Serve.CacheHits}}</td><td>{{.Serve.CacheMisses}}</td><td>{{.Serve.CacheHitRatio}}</td>
<td>{{.Serve.Coalesced}}</td><td>{{.Serve.Executions}}</td><td>{{.Serve.QueueDepth}}</td><td>{{.Serve.Sheds}}</td></tr>
</table>
{{end}}

{{if .Tenants}}
<h2>Tenant SLO burn rates</h2>
<p class="muted">objectives: {{range $i, $o := .SLOObjectives}}{{if $i}}, {{end}}{{$o}}{{end}} — burn 1.0 = consuming error budget exactly at the sustainable rate</p>
<table>
<tr><th>tenant</th><th>objective</th><th>burn 5m</th><th>burn 1h</th><th>burn 6h</th><th>queries</th><th>sheds</th><th>cache hit</th></tr>
{{range .Tenants}}
<tr{{if .Hot}} class="hot"{{end}}><td>{{.Tenant}}</td><td>{{.Objective}}</td>
<td>{{.Burn5m}}</td><td>{{.Burn1h}}</td><td>{{.Burn6h}}</td>
<td>{{.Queries}}</td><td>{{.Sheds}}</td><td>{{.CacheHitRatio}}</td></tr>
{{end}}
</table>
{{end}}
</body></html>`))

// Package webui is a minimal server-rendered web interface for the
// RE2xOLAP interactive workflow (Algorithm 2), in the spirit of the
// paper's "fully functional system": the user types example entities
// into a form, picks an interpretation, inspects the aggregate
// results, and clicks through the refinement methods — disaggregate,
// top-k, percentile, similarity, cluster — with ranking and
// backtracking. Pure net/http + html/template, no JavaScript.
package webui

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"re2xolap/internal/core"
	"re2xolap/internal/refine"
	"re2xolap/internal/session"
	"re2xolap/internal/vgraph"
)

// Handler serves the exploration UI.
type Handler struct {
	engine *core.Engine
	graph  *vgraph.Graph
	mux    *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*uiSession
}

// uiSession is the per-browser exploration state.
type uiSession struct {
	sess       *session.Session
	candidates []core.Candidate
	options    []refine.Refinement
	optionKind refine.Kind
	contrasts  []core.Contrast
	lastError  string
}

// New returns the UI handler over a synthesis engine.
func New(engine *core.Engine, g *vgraph.Graph) *Handler {
	h := &Handler{
		engine:   engine,
		graph:    g,
		sessions: map[string]*uiSession{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.home)
	mux.HandleFunc("/example", h.example)
	mux.HandleFunc("/pick", h.pick)
	mux.HandleFunc("/view", h.view)
	mux.HandleFunc("/refine", h.refineOptions)
	mux.HandleFunc("/apply", h.apply)
	mux.HandleFunc("/back", h.back)
	mux.HandleFunc("/contrast", h.contrast)
	mux.HandleFunc("/profile", h.profile)
	h.mux = mux
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

const cookieName = "r2x_session"

// state fetches (or creates) the browser's session.
func (h *Handler) state(w http.ResponseWriter, r *http.Request) *uiSession {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, err := r.Cookie(cookieName); err == nil {
		if s, ok := h.sessions[c.Value]; ok {
			return s
		}
	}
	buf := make([]byte, 16)
	_, _ = rand.Read(buf)
	id := hex.EncodeToString(buf)
	s := &uiSession{sess: session.New(h.engine, h.graph)}
	h.sessions[id] = s
	http.SetCookie(w, &http.Cookie{Name: cookieName, Value: id, Path: "/", HttpOnly: true})
	return s
}

func (h *Handler) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s := h.state(w, r)
	render(w, homeTmpl, h.homeData(s))
}

type homeData struct {
	Stats      vgraph.Stats
	Candidates []core.Candidate
	Error      string
	HasCurrent bool
	Contrasts  []core.Contrast
}

func (h *Handler) homeData(s *uiSession) homeData {
	d := homeData{
		Stats:      h.graph.Stats(),
		Candidates: s.candidates,
		Error:      s.lastError,
		HasCurrent: s.sess.Current() != nil,
		Contrasts:  s.contrasts,
	}
	s.lastError = ""
	return d
}

func (h *Handler) contrast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	a := splitItems(r.FormValue("a"))
	b := splitItems(r.FormValue("b"))
	if len(a) == 0 || len(b) == 0 {
		s.lastError = "provide both example sets to contrast"
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	cs, err := h.engine.ContrastSets(r.Context(), core.Keywords(a...), core.Keywords(b...))
	if err != nil {
		s.lastError = err.Error()
	} else if len(cs) == 0 {
		s.lastError = "no shared interpretation for the two example sets"
	}
	s.contrasts = cs
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (h *Handler) example(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	items := splitItems(r.FormValue("example"))
	if len(items) == 0 {
		s.lastError = "provide at least one example value (separate with |)"
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	var cands []core.Candidate
	var err error
	negatives := splitItems(r.FormValue("negatives"))
	if len(negatives) > 0 {
		var negs []core.ExampleTuple
		for _, n := range negatives {
			negs = append(negs, core.Keywords(n))
		}
		cands, err = h.engine.SynthesizeWithNegatives(r.Context(),
			[]core.ExampleTuple{core.Keywords(items...)}, negs)
	} else {
		cands, err = h.engine.Synthesize(r.Context(), core.Keywords(items...))
	}
	if err != nil {
		s.lastError = err.Error()
	} else if len(cands) == 0 {
		s.lastError = "no valid interpretation; try other examples"
	}
	s.candidates = cands
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (h *Handler) pick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	i, err := strconv.Atoi(r.FormValue("i"))
	if err != nil || i < 0 || i >= len(s.candidates) {
		s.lastError = "pick a listed interpretation"
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	if _, err := s.sess.Start(r.Context(), s.candidates[i].Query); err != nil {
		s.lastError = err.Error()
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	s.options = nil
	http.Redirect(w, r, "/view", http.StatusSeeOther)
}

type viewData struct {
	Description string
	Columns     []string
	Rows        [][]string
	Total       int
	Truncated   bool
	ExampleHits int
	Depth       int
	History     []string
	Options     []optionRow
	OptionKind  string
	Error       string
	SPARQL      string
}

type optionRow struct {
	Index int
	Why   string
	Score string
}

const maxRows = 50

func (h *Handler) view(w http.ResponseWriter, r *http.Request) {
	s := h.state(w, r)
	cur := s.sess.Current()
	if cur == nil {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	d := viewData{
		Description: cur.Query.Description,
		Total:       cur.Results.Len(),
		ExampleHits: len(cur.Results.ExampleTuples()),
		Depth:       s.sess.Depth(),
		Error:       s.lastError,
		OptionKind:  string(s.optionKind),
		SPARQL:      cur.Query.ToSPARQL(),
	}
	s.lastError = ""
	for _, step := range s.sess.History() {
		label := step.Query.Description
		if step.Via.Why != "" {
			label = fmt.Sprintf("[%s] %s", step.Via.Kind, step.Via.Why)
		}
		d.History = append(d.History, label)
	}
	for _, dim := range cur.Query.Dims {
		d.Columns = append(d.Columns, dim.Level.String())
	}
	for _, a := range cur.Query.Aggregates {
		d.Columns = append(d.Columns, a.OutVar)
	}
	for i, t := range cur.Results.Tuples {
		if i >= maxRows {
			d.Truncated = true
			break
		}
		var row []string
		for _, m := range t.Dims {
			row = append(row, shortIRI(m.Value))
		}
		for _, a := range cur.Query.Aggregates {
			row = append(row, strconv.FormatFloat(t.Measures[a.OutVar], 'f', 1, 64))
		}
		d.Rows = append(d.Rows, row)
	}
	for i, opt := range s.options {
		d.Options = append(d.Options, optionRow{Index: i, Why: opt.Why})
	}
	render(w, viewTmpl, d)
}

func (h *Handler) refineOptions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	if s.sess.Current() == nil {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	kind := refine.Kind(r.FormValue("kind"))
	opts, err := s.sess.Options(r.Context(), kind)
	if err != nil {
		s.lastError = err.Error()
		http.Redirect(w, r, "/view", http.StatusSeeOther)
		return
	}
	if r.FormValue("ranked") != "" {
		scored := refine.Rank(s.sess.Current().Results, opts)
		opts = opts[:0]
		for _, sc := range scored {
			opts = append(opts, sc.Refinement)
		}
	}
	if len(opts) == 0 {
		s.lastError = fmt.Sprintf("the %s method offers no refinement here", kind)
	}
	s.options = opts
	s.optionKind = kind
	http.Redirect(w, r, "/view", http.StatusSeeOther)
}

func (h *Handler) apply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	i, err := strconv.Atoi(r.FormValue("i"))
	if err != nil || i < 0 || i >= len(s.options) {
		s.lastError = "apply a listed refinement"
		http.Redirect(w, r, "/view", http.StatusSeeOther)
		return
	}
	if _, err := s.sess.Apply(r.Context(), s.options[i]); err != nil {
		s.lastError = err.Error()
	} else {
		s.options = nil
		s.optionKind = ""
	}
	http.Redirect(w, r, "/view", http.StatusSeeOther)
}

func (h *Handler) back(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := h.state(w, r)
	s.sess.Backtrack()
	s.options = nil
	s.optionKind = ""
	http.Redirect(w, r, "/view", http.StatusSeeOther)
}

func (h *Handler) profile(w http.ResponseWriter, r *http.Request) {
	p, err := h.engine.Profile(contextOf(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, h.graph.String())
	fmt.Fprint(w, p.String())
}

func contextOf(r *http.Request) context.Context { return r.Context() }

func splitItems(s string) []string {
	var out []string
	for _, part := range strings.Split(s, "|") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func shortIRI(v string) string {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

func render(w http.ResponseWriter, t *template.Template, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := t.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

package webui

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"re2xolap/internal/core"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/testkg"
	"re2xolap/internal/vgraph"
)

// uiClient wraps an httptest server with a cookie jar and form helpers.
type uiClient struct {
	t    *testing.T
	srv  *httptest.Server
	http *http.Client
}

func newUIClient(t *testing.T) *uiClient {
	t.Helper()
	st := testkg.Build(t, nil)
	client := endpoint.NewInProcess(st)
	g, err := vgraph.Bootstrap(context.Background(), client, testkg.Config())
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(client, g, testkg.Config())
	srv := httptest.NewServer(New(engine, g))
	t.Cleanup(srv.Close)
	jar := newJar()
	return &uiClient{t: t, srv: srv, http: &http.Client{Jar: jar}}
}

// newJar is a tiny in-memory cookie jar.
func newJar() http.CookieJar {
	return &jar{cookies: map[string][]*http.Cookie{}}
}

type jar struct{ cookies map[string][]*http.Cookie }

func (j *jar) SetCookies(u *url.URL, cs []*http.Cookie) { j.cookies[u.Host] = cs }
func (j *jar) Cookies(u *url.URL) []*http.Cookie        { return j.cookies[u.Host] }

func (c *uiClient) get(path string) string {
	c.t.Helper()
	resp, err := c.http.Get(c.srv.URL + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("GET %s: %s", path, resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

func (c *uiClient) post(path string, form url.Values) string {
	c.t.Helper()
	resp, err := c.http.PostForm(c.srv.URL+path, form)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("POST %s: %s", path, resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

func TestUIFullWorkflow(t *testing.T) {
	c := newUIClient(t)
	home := c.get("/")
	if !strings.Contains(home, "example-driven exploratory analytics") {
		t.Fatalf("home page:\n%s", home)
	}

	// Synthesize from the running example.
	page := c.post("/example", url.Values{"example": {"Asia | Germany"}})
	if !strings.Contains(page, "Return SUM/MIN/MAX/AVG(Num Applicants)") {
		t.Fatalf("candidates missing:\n%s", page)
	}

	// Run the first interpretation.
	page = c.post("/pick", url.Values{"i": {"0"}})
	if !strings.Contains(page, "result tuples") || !strings.Contains(page, "GROUP BY") {
		t.Fatalf("view missing results or SPARQL:\n%s", page)
	}

	// Disaggregate, ranked.
	page = c.post("/refine", url.Values{"kind": {"disaggregate"}, "ranked": {"1"}})
	if !strings.Contains(page, "Proposed disaggregate refinements") {
		t.Fatalf("options missing:\n%s", page)
	}

	// Apply the first option.
	page = c.post("/apply", url.Values{"i": {"0"}})
	if !strings.Contains(page, "step 2") {
		t.Fatalf("apply did not advance:\n%s", page)
	}

	// Top-k options, then backtrack.
	page = c.post("/refine", url.Values{"kind": {"topk"}})
	if !strings.Contains(page, "refinements") {
		t.Fatalf("topk options:\n%s", page)
	}
	page = c.post("/back", nil)
	if !strings.Contains(page, "step 1") {
		t.Fatalf("back did not return:\n%s", page)
	}
}

func TestUINegativeExamples(t *testing.T) {
	c := newUIClient(t)
	page := c.post("/example", url.Values{
		"example":   {"Germany"},
		"negatives": {"China"},
	})
	// Only the destination interpretation survives: one candidate row.
	if strings.Count(page, "run</button>") != 1 {
		t.Fatalf("candidates after negative:\n%s", page)
	}
}

func TestUIErrors(t *testing.T) {
	c := newUIClient(t)
	page := c.post("/example", url.Values{"example": {""}})
	if !strings.Contains(page, "provide at least one example") {
		t.Errorf("empty example not flagged:\n%s", page)
	}
	page = c.post("/example", url.Values{"example": {"atlantis"}})
	if !strings.Contains(page, "no valid interpretation") {
		t.Errorf("unmatched example not flagged:\n%s", page)
	}
	// pick without candidates
	page = c.post("/pick", url.Values{"i": {"0"}})
	if !strings.Contains(page, "pick a listed interpretation") {
		t.Errorf("bad pick not flagged:\n%s", page)
	}
	// view without a session redirects home
	if body := c.get("/view"); !strings.Contains(body, "Start from examples") {
		t.Errorf("view without session did not land home")
	}
	// wrong method
	resp, err := c.http.Get(c.srv.URL + "/apply")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /apply status = %d", resp.StatusCode)
	}
	// unknown path
	resp, err = c.http.Get(c.srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope status = %d", resp.StatusCode)
	}
}

func TestUIProfile(t *testing.T) {
	c := newUIClient(t)
	body := c.get("/profile")
	if !strings.Contains(body, "virtual schema graph") || !strings.Contains(body, "Num Applicants") {
		t.Errorf("profile output:\n%s", body)
	}
}

func TestUISessionsAreIsolated(t *testing.T) {
	cA := newUIClient(t)
	_ = cA.post("/example", url.Values{"example": {"Germany"}})
	// A separate server instance with its own jar must have no
	// candidates; but even on the same server, a different jar gets a
	// fresh session.
	cB := &uiClient{t: t, srv: cA.srv, http: &http.Client{Jar: newJar()}}
	page := cB.post("/pick", url.Values{"i": {"0"}})
	if !strings.Contains(page, "pick a listed interpretation") {
		t.Errorf("session leaked across cookies:\n%s", page)
	}
}

func TestUIContrast(t *testing.T) {
	c := newUIClient(t)
	page := c.post("/contrast", url.Values{"a": {"Germany"}, "b": {"France"}})
	if !strings.Contains(page, "Contrast — ") || !strings.Contains(page, "A/B") {
		t.Fatalf("contrast table missing:\n%s", page)
	}
	// Missing side.
	page = c.post("/contrast", url.Values{"a": {"Germany"}})
	if !strings.Contains(page, "provide both example sets") {
		t.Errorf("missing-side error absent:\n%s", page)
	}
}

package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func decodeString(t *testing.T, src string) []Triple {
	t.Helper()
	ts, err := NewDecoder(strings.NewReader(src)).DecodeAll()
	if err != nil {
		t.Fatalf("DecodeAll(%q): %v", src, err)
	}
	return ts
}

func TestDecodeNTriples(t *testing.T) {
	src := `<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .
<http://ex.org/s> <http://ex.org/q> "hello" .
<http://ex.org/s> <http://ex.org/r> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/s> <http://ex.org/t> "bonjour"@fr .
_:b1 <http://ex.org/p> _:b2 .
`
	ts := decodeString(t, src)
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if ts[0].O != NewIRI("http://ex.org/o") {
		t.Errorf("triple 0 object = %v", ts[0].O)
	}
	if ts[2].O != NewTyped("5", XSDInteger) {
		t.Errorf("triple 2 object = %v", ts[2].O)
	}
	if ts[3].O != NewLangString("bonjour", "fr") {
		t.Errorf("triple 3 object = %v", ts[3].O)
	}
	if !ts[4].S.IsBlank() || !ts[4].O.IsBlank() {
		t.Errorf("triple 4 blanks = %v", ts[4])
	}
}

func TestDecodeTurtlePrefixes(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
@prefix qb: <http://purl.org/linked-data/cube#> .
ex:obs1 a qb:Observation ;
    ex:value 42 ;
    ex:labels "a" , "b" .
`
	ts := decodeString(t, src)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4: %v", len(ts), ts)
	}
	if ts[0].P.Value != RDFType {
		t.Errorf("'a' not expanded: %v", ts[0].P)
	}
	if ts[0].O.Value != "http://purl.org/linked-data/cube#Observation" {
		t.Errorf("prefixed name not expanded: %v", ts[0].O)
	}
	if ts[1].O != NewTyped("42", XSDInteger) {
		t.Errorf("bare integer = %v", ts[1].O)
	}
	if ts[2].O.Value != "a" || ts[3].O.Value != "b" {
		t.Errorf("object list wrong: %v %v", ts[2].O, ts[3].O)
	}
}

func TestDecodeComments(t *testing.T) {
	src := `# leading comment
<http://ex.org/s> <http://ex.org/p> "v" . # trailing comment
# another
`
	ts := decodeString(t, src)
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestDecodeDottedIRIs(t *testing.T) {
	// Dots inside IRIs must not terminate the statement.
	src := `<http://ex.org/v1.0/s.x> <http://ex.org/p.y> <http://ex.org/o.z> .`
	ts := decodeString(t, src)
	if len(ts) != 1 || ts[0].S.Value != "http://ex.org/v1.0/s.x" {
		t.Fatalf("dotted IRI mangled: %v", ts)
	}
}

func TestDecodeDecimalNumbers(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:s ex:p 3.5 .
ex:s ex:q -7 .
ex:s ex:r true .
`
	ts := decodeString(t, src)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3", len(ts))
	}
	if ts[0].O != NewTyped("3.5", XSDDouble) {
		t.Errorf("decimal = %v", ts[0].O)
	}
	if ts[1].O != NewTyped("-7", XSDInteger) {
		t.Errorf("negative int = %v", ts[1].O)
	}
	if ts[2].O != NewTyped("true", XSDBoolean) {
		t.Errorf("boolean = %v", ts[2].O)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> .`,                  // missing object
		`<http://s> .`,                             // missing predicate
		`<http://s> <http://p> ex:o .`,             // unknown prefix
		`<http://s> <http://p> "unterminated .`,    // bad string: consumed till EOF then malformed
		`<http://s> <http://p> "v"^^garbage .`,     // malformed datatype
		`<http://s> <http://p> "a" "b" <http://c>`, // too many terms
	}
	for _, src := range bad {
		if ts, err := NewDecoder(strings.NewReader(src)).DecodeAll(); err == nil {
			t.Errorf("DecodeAll(%q) accepted: %v", src, ts)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewIRI("http://ex.org/o")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewString("tricky \"quote\"\nnewline")),
		NewTriple(NewBlank("b7"), NewIRI("http://ex.org/p"), NewInteger(-3)),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLangString("ciao", "it")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewDouble(0.125)),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, tr := range triples {
		if err := enc.Encode(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).DecodeAll()
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != len(triples) {
		t.Fatalf("got %d triples, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], triples[i])
		}
	}
}

// Property: triples with arbitrary literal objects survive an
// encode→decode round trip.
func TestQuickTripleRoundTrip(t *testing.T) {
	f := func(s, p, o string) bool {
		tr := NewTriple(NewIRI("http://ex.org/"+sanitizeIRI(s)), NewIRI("http://ex.org/"+sanitizeIRI(p)), NewString(o))
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if enc.Encode(tr) != nil || enc.Flush() != nil {
			return false
		}
		got, err := NewDecoder(&buf).DecodeAll()
		return err == nil && len(got) == 1 && got[0] == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeIRI strips characters that are not legal inside IRIs so that
// random strings can be used as IRI suffixes.
func sanitizeIRI(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r != '<' && r != '>' && r != '"' && r != '{' && r != '}' && r != '|' && r != '\\' && r != '^' && r != '`' && r < 0x80 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestParseErrorMessage(t *testing.T) {
	_, err := NewDecoder(strings.NewReader("line1 is bad .")).DecodeAll()
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errorsAs(err, &pe) {
		t.Fatalf("error %T is not *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "line") {
		t.Errorf("message %q lacks line info", pe.Error())
	}
}

func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

// TestDecodeNeverPanics feeds mangled input to the decoder.
func TestDecodeNeverPanics(t *testing.T) {
	base := `@prefix ex: <http://ex.org/> .
ex:s ex:p "v"@en , 3.5 ; ex:q <http://o> .
_:b ex:r true .`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	for cut := 0; cut <= len(base); cut += 2 {
		_, _ = NewDecoder(strings.NewReader(base[:cut])).DecodeAll()
		_, _ = NewDecoder(strings.NewReader(base[cut:])).DecodeAll()
	}
	mangled := []string{
		strings.ReplaceAll(base, "<", ">"),
		strings.ReplaceAll(base, ".", ";"),
		strings.Repeat(`"`, 99),
		"\x00\xff\xfe .",
	}
	for _, src := range mangled {
		_, _ = NewDecoder(strings.NewReader(src)).DecodeAll()
	}
}

func TestDecodeBlankNodePropertyList(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:obs ex:refPeriod [ ex:month 10 ; ex:year 2014 ] ; ex:value 5 .
`
	ts := decodeString(t, src)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4: %v", len(ts), ts)
	}
	// The bracket group introduces one blank node used as the object of
	// refPeriod and the subject of month/year.
	var blank Term
	for _, tr := range ts {
		if tr.P.Value == "http://ex.org/refPeriod" {
			blank = tr.O
		}
	}
	if !blank.IsBlank() {
		t.Fatalf("refPeriod object = %v", blank)
	}
	monthSeen := false
	for _, tr := range ts {
		if tr.P.Value == "http://ex.org/month" {
			monthSeen = true
			if tr.S != blank {
				t.Errorf("month subject = %v, want %v", tr.S, blank)
			}
		}
	}
	if !monthSeen {
		t.Error("nested property missing")
	}
}

func TestDecodeNestedBlankNodes(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:a ex:p [ ex:q [ ex:r ex:b ] ] .
`
	ts := decodeString(t, src)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3: %v", len(ts), ts)
	}
}

func TestDecodeAnonymousSubject(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
[ ex:p ex:o ; ex:q "v" ] .
`
	ts := decodeString(t, src)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2: %v", len(ts), ts)
	}
	if ts[0].S != ts[1].S || !ts[0].S.IsBlank() {
		t.Errorf("shared blank subject broken: %v / %v", ts[0].S, ts[1].S)
	}
}

func TestDecodeLongStrings(t *testing.T) {
	src := "@prefix ex: <http://ex.org/> .\n" +
		"ex:s ex:doc \"\"\"line one\nline \"two\" with quotes.\nline three\"\"\"@en .\n" +
		"ex:s ex:p ex:o .\n"
	ts := decodeString(t, src)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2: %v", len(ts), ts)
	}
	want := "line one\nline \"two\" with quotes.\nline three"
	if ts[0].O != NewLangString(want, "en") {
		t.Errorf("long string = %#v", ts[0].O)
	}
}

func TestDecodeBracketErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> [ <http://q> .`,         // unterminated
		`<http://s> <http://p> [ "lit" <http://o> ] .`, // literal predicate
	}
	for _, src := range bad {
		if ts, err := NewDecoder(strings.NewReader(src)).DecodeAll(); err == nil {
			t.Errorf("DecodeAll(%q) accepted: %v", src, ts)
		}
	}
}

package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d: %s", e.Line, e.Msg)
}

// Decoder parses RDF statements from a stream. It accepts N-Triples and
// the Turtle subset the generators and tests emit: @prefix directives,
// prefixed names, "a" for rdf:type, and ';'/',' predicate/object lists.
type Decoder struct {
	r        *bufio.Reader
	line     int
	prefixes map[string]string
	base     string
	// pending holds triples already expanded from ';'/',' lists.
	pending []Triple
	blankN  int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		r:        bufio.NewReaderSize(r, 64<<10),
		prefixes: map[string]string{},
	}
}

// Decode returns the next triple, or io.EOF when the stream ends.
func (d *Decoder) Decode() (Triple, error) {
	for {
		if len(d.pending) > 0 {
			t := d.pending[0]
			d.pending = d.pending[1:]
			return t, nil
		}
		stmt, err := d.readStatement()
		if err != nil {
			return Triple{}, err
		}
		if stmt == "" {
			continue
		}
		if strings.HasPrefix(stmt, "@prefix") || strings.HasPrefix(stmt, "PREFIX") || strings.HasPrefix(stmt, "prefix") {
			if err := d.parsePrefix(stmt); err != nil {
				return Triple{}, err
			}
			continue
		}
		if strings.HasPrefix(stmt, "@base") || strings.HasPrefix(stmt, "BASE") {
			continue // base IRIs are accepted and ignored
		}
		if err := d.parseTriples(stmt); err != nil {
			return Triple{}, err
		}
	}
}

// DecodeAll reads every remaining triple.
func (d *Decoder) DecodeAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// readStatement accumulates raw input until an unquoted '.' terminator,
// stripping comments. It returns "" for blank statements.
func (d *Decoder) readStatement() (string, error) {
	var b strings.Builder
	inString := false
	inIRI := false
	escaped := false
	for {
		c, err := d.r.ReadByte()
		if err == io.EOF {
			s := strings.TrimSpace(b.String())
			if s == "" {
				return "", io.EOF
			}
			return s, nil
		}
		if err != nil {
			return "", err
		}
		if c == '\n' {
			d.line++
		}
		if inString {
			b.WriteByte(c)
			if escaped {
				escaped = false
			} else if c == '\\' {
				escaped = true
			} else if c == '"' {
				inString = false
			}
			continue
		}
		if inIRI {
			b.WriteByte(c)
			if c == '>' {
				inIRI = false
			}
			continue
		}
		switch c {
		case '<':
			inIRI = true
			b.WriteByte(c)
		case '"':
			// Triple-quoted long strings pass through verbatim until the
			// closing delimiter; tokenize re-escapes them.
			if pk, _ := d.r.Peek(2); len(pk) == 2 && pk[0] == '"' && pk[1] == '"' {
				d.r.Discard(2)
				b.WriteString(`"""`)
				for {
					lc, lerr := d.r.ReadByte()
					if lerr != nil {
						return "", &ParseError{d.line, "unterminated long string"}
					}
					if lc == '\n' {
						d.line++
					}
					b.WriteByte(lc)
					if lc == '"' {
						if pk2, _ := d.r.Peek(2); len(pk2) == 2 && pk2[0] == '"' && pk2[1] == '"' {
							d.r.Discard(2)
							b.WriteString(`""`)
							break
						}
					}
				}
				continue
			}
			inString = true
			b.WriteByte(c)
		case '#':
			// comment to end of line
			for {
				c2, err2 := d.r.ReadByte()
				if err2 != nil || c2 == '\n' {
					if c2 == '\n' {
						d.line++
					}
					break
				}
			}
			b.WriteByte(' ')
		case '.':
			// '.' terminates a statement unless it is part of a number
			// or an IRI; those never appear followed by whitespace/EOL
			// mid-token in our grammar because numbers are quoted
			// literals in N-Triples. Decimal digits in plain Turtle
			// numbers are handled by peeking: a '.' followed by a digit
			// is part of a number.
			if p, _ := d.r.Peek(1); len(p) == 1 && p[0] >= '0' && p[0] <= '9' {
				b.WriteByte(c)
				continue
			}
			s := strings.TrimSpace(b.String())
			return s, nil
		default:
			b.WriteByte(c)
		}
	}
}

func (d *Decoder) parsePrefix(stmt string) error {
	f := strings.Fields(stmt)
	if len(f) < 3 {
		return &ParseError{d.line, "malformed @prefix"}
	}
	name := strings.TrimSuffix(f[1], ":")
	iri := strings.Trim(f[2], "<>")
	d.prefixes[name] = iri
	return nil
}

// parseTriples expands one Turtle statement (which may contain ';' and
// ',' lists and nested [ ... ] blank-node property lists) into
// d.pending.
func (d *Decoder) parseTriples(stmt string) error {
	toks, err := tokenize(stmt)
	if err != nil {
		return &ParseError{d.line, err.Error()}
	}
	if len(toks) < 3 && !(len(toks) >= 2 && toks[0] == "[") {
		return &ParseError{d.line, fmt.Sprintf("statement with %d terms", len(toks))}
	}
	tp := &stmtParser{d: d, toks: toks}
	subj, err := tp.parseTerm()
	if err != nil {
		return &ParseError{d.line, err.Error()}
	}
	// A bare "[ ... ]" statement is complete after the bracket group.
	if tp.i < len(tp.toks) {
		if err := tp.parsePredicateObjectList(subj, false); err != nil {
			return &ParseError{d.line, err.Error()}
		}
	}
	if tp.i != len(tp.toks) {
		return &ParseError{d.line, fmt.Sprintf("unexpected token %q", tp.toks[tp.i])}
	}
	return nil
}

// stmtParser walks one tokenized statement recursively.
type stmtParser struct {
	d    *Decoder
	toks []string
	i    int
}

// parseTerm resolves the next token into a term; '[' starts an
// anonymous blank node whose property list is parsed in place.
func (tp *stmtParser) parseTerm() (Term, error) {
	if tp.i >= len(tp.toks) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	tok := tp.toks[tp.i]
	if tok == "[" {
		tp.i++
		tp.d.blankN++
		node := NewBlank(fmt.Sprintf("anon%d", tp.d.blankN))
		if tp.i < len(tp.toks) && tp.toks[tp.i] != "]" {
			if err := tp.parsePredicateObjectList(node, true); err != nil {
				return Term{}, err
			}
		}
		if tp.i >= len(tp.toks) || tp.toks[tp.i] != "]" {
			return Term{}, fmt.Errorf("unterminated [ ... ] block")
		}
		tp.i++
		return node, nil
	}
	tp.i++
	return tp.d.resolve(tok)
}

// parsePredicateObjectList parses "pred obj (, obj)* (; pred obj ...)*"
// emitting triples for subj. Inside brackets it stops at ']'.
func (tp *stmtParser) parsePredicateObjectList(subj Term, inBracket bool) error {
	for {
		pred, err := tp.parseTerm()
		if err != nil {
			return err
		}
		if pred.Kind != TermIRI {
			return fmt.Errorf("predicate %s is not an IRI", pred)
		}
		for {
			obj, err := tp.parseTerm()
			if err != nil {
				return err
			}
			tp.d.pending = append(tp.d.pending, Triple{S: subj, P: pred, O: obj})
			if tp.i < len(tp.toks) && tp.toks[tp.i] == "," {
				tp.i++
				continue
			}
			break
		}
		if tp.i < len(tp.toks) && tp.toks[tp.i] == ";" {
			tp.i++
			// trailing ';' before '.' or ']'
			if tp.i == len(tp.toks) || (inBracket && tp.toks[tp.i] == "]") {
				return nil
			}
			continue
		}
		return nil
	}
}

// tokenize splits a statement into term tokens plus ';' and ','
// punctuation tokens. Strings keep their quotes and suffixes
// (@lang / ^^<dt>) attached.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	n := len(s)
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ';' || c == ',' || c == '[' || c == ']':
			toks = append(toks, string(c))
			i++
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("unterminated IRI")
			}
			toks = append(toks, s[i:i+j+1])
			i += j + 1
		case c == '"':
			if i+2 < n && s[i+1] == '"' && s[i+2] == '"' {
				// Long string: find the closing triple quote and re-emit
				// as a standard escaped token.
				end := strings.Index(s[i+3:], `"""`)
				if end < 0 {
					return nil, fmt.Errorf("unterminated long string")
				}
				content := s[i+3 : i+3+end]
				j := i + 3 + end + 3
				// attach suffix below using the shared logic: rebuild a
				// normal token and continue scanning from j.
				tok := `"` + escapeLiteral(content) + `"`
				if j < n && s[j] == '@' {
					k := j + 1
					for k < n && (isAlnum(s[k]) || s[k] == '-') {
						k++
					}
					tok += s[j:k]
					j = k
				} else if j+1 < n && s[j] == '^' && s[j+1] == '^' {
					k := j + 2
					if k < n && s[k] == '<' {
						e := strings.IndexByte(s[k:], '>')
						if e < 0 {
							return nil, fmt.Errorf("unterminated datatype IRI")
						}
						k += e + 1
					}
					tok += s[j:k]
					j = k
				}
				toks = append(toks, tok)
				i = j
				continue
			}
			j := i + 1
			for j < n {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string")
			}
			j++ // past closing quote
			// attach @lang or ^^<dt>
			if j < n && s[j] == '@' {
				k := j + 1
				for k < n && (isAlnum(s[k]) || s[k] == '-') {
					k++
				}
				j = k
			} else if j+1 < n && s[j] == '^' && s[j+1] == '^' {
				j += 2
				if j < n && s[j] == '<' {
					k := strings.IndexByte(s[j:], '>')
					if k < 0 {
						return nil, fmt.Errorf("unterminated datatype IRI")
					}
					j += k + 1
				} else {
					for j < n && !isDelim(s[j]) {
						j++
					}
				}
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < n && !isDelim(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' || c == ',' || c == '[' || c == ']'
}

// resolve converts one token into a Term, expanding prefixed names.
func (d *Decoder) resolve(tok string) (Term, error) {
	switch {
	case tok == "a":
		return NewIRI(RDFType), nil
	case strings.HasPrefix(tok, "<"):
		return NewIRI(strings.Trim(tok, "<>")), nil
	case strings.HasPrefix(tok, "_:"):
		return NewBlank(tok[2:]), nil
	case strings.HasPrefix(tok, "\""):
		return parseLiteralToken(tok)
	default:
		// number, boolean, or prefixed name
		if tok == "true" || tok == "false" {
			return NewTyped(tok, XSDBoolean), nil
		}
		if isNumberToken(tok) {
			if strings.ContainsAny(tok, ".eE") {
				return NewTyped(tok, XSDDouble), nil
			}
			return NewTyped(tok, XSDInteger), nil
		}
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return Term{}, fmt.Errorf("unrecognized token %q", tok)
		}
		prefix, local := tok[:colon], tok[colon+1:]
		base, ok := d.prefixes[prefix]
		if !ok {
			return Term{}, fmt.Errorf("unknown prefix %q", prefix)
		}
		return NewIRI(base + local), nil
	}
}

func isNumberToken(tok string) bool {
	if tok == "" {
		return false
	}
	i := 0
	if tok[0] == '+' || tok[0] == '-' {
		i = 1
	}
	digits := false
	for ; i < len(tok); i++ {
		c := tok[i]
		if c >= '0' && c <= '9' {
			digits = true
			continue
		}
		if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			continue
		}
		return false
	}
	return digits
}

func parseLiteralToken(tok string) (Term, error) {
	// find closing quote
	j := 1
	for j < len(tok) {
		if tok[j] == '\\' {
			j += 2
			continue
		}
		if tok[j] == '"' {
			break
		}
		j++
	}
	if j >= len(tok) {
		return Term{}, fmt.Errorf("unterminated literal %q", tok)
	}
	val := unescapeLiteral(tok[1:j])
	rest := tok[j+1:]
	switch {
	case rest == "":
		return NewString(val), nil
	case strings.HasPrefix(rest, "@"):
		return NewLangString(val, rest[1:]), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return NewTyped(val, rest[3:len(rest)-1]), nil
	default:
		return Term{}, fmt.Errorf("malformed literal suffix %q", rest)
	}
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Encoder writes triples in N-Triples format.
type Encoder struct {
	w *bufio.Writer
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 64<<10)}
}

// Encode writes one triple.
func (e *Encoder) Encode(t Triple) error {
	if _, err := e.w.WriteString(t.String()); err != nil {
		return err
	}
	return e.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (e *Encoder) Flush() error { return e.w.Flush() }

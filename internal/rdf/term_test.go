package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://ex.org/a"), TermIRI, "<http://ex.org/a>"},
		{"blank", NewBlank("b0"), TermBlank, "_:b0"},
		{"string", NewString("hi"), TermLiteral, `"hi"`},
		{"lang", NewLangString("hi", "en"), TermLiteral, `"hi"@en`},
		{"typed", NewTyped("5", XSDInteger), TermLiteral, `"5"^^<` + XSDInteger + `>`},
		{"int", NewInteger(-42), TermLiteral, `"-42"^^<` + XSDInteger + `>`},
		{"double", NewDouble(2.5), TermLiteral, `"2.5"^^<` + XSDDouble + `>`},
		{"bool", NewBoolean(true), TermLiteral, `"true"^^<` + XSDBoolean + `>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.term.Kind != tt.kind {
				t.Errorf("kind = %v, want %v", tt.term.Kind, tt.kind)
			}
			if got := tt.term.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	iri := NewIRI("http://ex.org/a")
	if !iri.IsIRI() || iri.IsBlank() || iri.IsLiteral() {
		t.Errorf("IRI predicates wrong: %v %v %v", iri.IsIRI(), iri.IsBlank(), iri.IsLiteral())
	}
	b := NewBlank("x")
	if b.IsIRI() || !b.IsBlank() || b.IsLiteral() {
		t.Error("blank predicates wrong")
	}
	l := NewString("x")
	if l.IsIRI() || l.IsBlank() || !l.IsLiteral() {
		t.Error("literal predicates wrong")
	}
}

func TestNumeric(t *testing.T) {
	tests := []struct {
		term Term
		want float64
		ok   bool
	}{
		{NewInteger(7), 7, true},
		{NewDouble(1.5), 1.5, true},
		{NewTyped("3.25", XSDDecimal), 3.25, true},
		{NewString("7"), 0, false},
		{NewIRI("http://7"), 0, false},
		{NewTyped("abc", XSDInteger), 0, false},
	}
	for _, tt := range tests {
		got, ok := tt.term.Numeric()
		if got != tt.want || ok != tt.ok {
			t.Errorf("%s.Numeric() = %v,%v want %v,%v", tt.term, got, ok, tt.want, tt.ok)
		}
	}
}

func TestLiteralEscaping(t *testing.T) {
	raw := "line1\nline2\t\"quoted\" back\\slash"
	term := NewString(raw)
	s := term.String()
	if strings.Contains(s, "\n") {
		t.Errorf("String() contains raw newline: %q", s)
	}
	got, err := parseLiteralToken(s)
	if err != nil {
		t.Fatalf("parseLiteralToken(%q): %v", s, err)
	}
	if got.Value != raw {
		t.Errorf("round trip = %q, want %q", got.Value, raw)
	}
}

func TestTripleValidate(t *testing.T) {
	good := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewString("o"))
	if err := good.Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	bad := []Triple{
		NewTriple(NewString("s"), NewIRI("http://p"), NewString("o")),
		NewTriple(NewIRI("http://s"), NewString("p"), NewString("o")),
		NewTriple(NewIRI("http://s"), NewBlank("p"), NewString("o")),
		NewTriple(NewIRI(""), NewIRI("http://p"), NewString("o")),
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad triple %d accepted", i)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewInteger(3))
	want := `<http://s> <http://p> "3"^^<` + XSDInteger + `> .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: any string literal survives a String()→parse round trip.
func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		term := NewString(s)
		got, err := parseLiteralToken(term.String())
		return err == nil && got.Value == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

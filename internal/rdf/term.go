// Package rdf implements the RDF data model used throughout the
// repository: terms (IRIs, literals, blank nodes), triples, and
// parsers/serializers for the N-Triples and a practical Turtle subset.
//
// The model follows the paper's Definition 3.1: an RDF graph is a set of
// <s p o> triples where subjects are IRIs or blank nodes, predicates are
// IRIs, and objects are IRIs, blank nodes, or literals.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The three RDF term kinds.
const (
	TermIRI TermKind = iota
	TermBlank
	TermLiteral
)

// Well-known datatype IRIs used by the store and the SPARQL engine.
const (
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDGYear    = "http://www.w3.org/2001/XMLSchema#gYear"

	// RDFType is the rdf:type predicate, abbreviated "a" in Turtle and
	// SPARQL.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// RDFSLabel is the standard human-readable label predicate.
	RDFSLabel = "http://www.w3.org/2000/01/rdf-schema#label"
)

// Term is a single RDF term. The zero value is the empty IRI, which is
// not a valid term; use the constructors below.
//
// For IRIs, Value holds the IRI string. For blank nodes, Value holds the
// local identifier (without the "_:" prefix). For literals, Value holds
// the lexical form, Datatype the datatype IRI (empty means xsd:string),
// and Lang the optional language tag.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: TermIRI, Value: iri} }

// NewBlank returns a blank-node term with the given local name.
func NewBlank(id string) Term { return Term{Kind: TermBlank, Value: id} }

// NewString returns a plain string literal.
func NewString(s string) Term { return Term{Kind: TermLiteral, Value: s} }

// NewLangString returns a language-tagged string literal.
func NewLangString(s, lang string) Term {
	return Term{Kind: TermLiteral, Value: s, Lang: lang}
}

// NewTyped returns a literal with an explicit datatype IRI.
func NewTyped(lexical, datatype string) Term {
	return Term{Kind: TermLiteral, Value: lexical, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: TermLiteral, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: TermLiteral, Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return Term{Kind: TermLiteral, Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == TermIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == TermBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == TermLiteral }

// IsNumeric reports whether the term is a literal with a numeric XSD
// datatype.
func (t Term) IsNumeric() bool {
	if t.Kind != TermLiteral {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble:
		return true
	}
	return false
}

// Numeric returns the term's numeric value. The second result reports
// whether the term is a numeric literal with a parseable lexical form.
func (t Term) Numeric() (float64, bool) {
	if !t.IsNumeric() {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Equal reports whether two terms are identical (same kind, value,
// datatype, and language tag).
func (t Term) Equal(u Term) bool { return t == u }

// String renders the term in N-Triples syntax. IRIs are wrapped in angle
// brackets, blank nodes prefixed with "_:", and literals quoted with
// escaping plus their datatype or language tag.
func (t Term) String() string {
	switch t.Kind {
	case TermIRI:
		return "<" + t.Value + ">"
	case TermBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is a single RDF statement <s p o>.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Validate reports an error if the triple violates the RDF model:
// literal subjects, non-IRI predicates, or empty term values.
func (t Triple) Validate() error {
	if t.S.Kind == TermLiteral {
		return fmt.Errorf("rdf: literal subject %s", t.S)
	}
	if t.P.Kind != TermIRI {
		return fmt.Errorf("rdf: non-IRI predicate %s", t.P)
	}
	if t.S.Value == "" || t.P.Value == "" {
		return fmt.Errorf("rdf: empty term in triple %s", t)
	}
	return nil
}

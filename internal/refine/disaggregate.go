package refine

import (
	"fmt"
	"strings"

	"re2xolap/internal/core"
	"re2xolap/internal/vgraph"
)

// Disaggregate solves Problem 2a: it enumerates, purely over the
// virtual schema graph (no triplestore access, O(|L̄|)), the levels
// that can be added to the query to produce results at a finer
// granularity. A level qualifies if its dimension is not grouped yet
// (a new drill-down dimension), or if it is strictly finer than the
// level currently grouped for its dimension (drill-down within the
// dimension); coarser levels are discarded because they would
// aggregate upward instead of disaggregating. The existing grouping
// columns are kept, so every refined result still subsumes the user
// example (T_E ⊑ T_r).
func Disaggregate(g *vgraph.Graph, q *core.OLAPQuery) []Refinement {
	var out []Refinement
	for _, l := range g.Levels {
		if q.HasLevel(l) {
			continue
		}
		di := q.DimOfDimension(l.Dimension)
		if di >= 0 {
			existing := q.Dims[di].Level
			if !strictlyFiner(l, existing) {
				continue
			}
		}
		nq := q.Clone()
		nq.AddDim(l)
		nq.Description = nq.Describe()
		why := fmt.Sprintf("disaggregate by %q", levelPath(l))
		if di >= 0 {
			why = fmt.Sprintf("drill down %q to the finer level %q", levelPath(q.Dims[di].Level), levelPath(l))
		}
		out = append(out, Refinement{Kind: KindDisaggregate, Query: nq, Why: why})
	}
	return out
}

// strictlyFiner reports whether candidate is a strict ancestor of
// existing on the same hierarchy path, i.e. a finer granularity of the
// same data (country is finer than country/continent).
func strictlyFiner(candidate, existing *vgraph.Level) bool {
	if len(candidate.Path) >= len(existing.Path) {
		return false
	}
	for i, p := range candidate.Path {
		if existing.Path[i] != p {
			return false
		}
	}
	return true
}

// levelPath renders a level as a human-readable hierarchy path using
// the labels collected at bootstrap.
func levelPath(l *vgraph.Level) string {
	var labels []string
	for cur := l; cur != nil; cur = cur.Parent {
		labels = append([]string{cur.Label}, labels...)
	}
	return strings.Join(labels, " / ")
}

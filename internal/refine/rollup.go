package refine

import (
	"fmt"

	"re2xolap/internal/core"
	"re2xolap/internal/vgraph"
)

// RollUp is the inverse of Disaggregate (Section 4.2 names both
// drill-down and roll-up): it aggregates the current results upward by
// either dropping a previously-added dimension or replacing a
// dimension's level with a coarser one on the same hierarchy path.
// Dimensions anchored by the user example are never dropped or
// coarsened — doing so would remove the example member from the
// results and break the T_E ⊑ T_r invariant every refinement keeps.
func RollUp(g *vgraph.Graph, q *core.OLAPQuery) []Refinement {
	var out []Refinement
	for di, d := range q.Dims {
		if d.Example != nil {
			continue // anchored: rolling up would lose the example
		}
		// Option (a): drop the dimension entirely, re-aggregating over
		// it — but only if at least one dimension remains.
		if len(q.Dims) > 1 {
			nq := q.Clone()
			if ok := removeDim(nq, di); ok {
				nq.Description = nq.Describe()
				out = append(out, Refinement{
					Kind:  KindRollUp,
					Query: nq,
					Why:   fmt.Sprintf("roll up: aggregate away %q", levelPath(d.Level)),
				})
			}
		}
		// Option (b): coarsen to each child (coarser) level on the same
		// hierarchy path.
		for _, coarser := range coarserLevels(g, d.Level) {
			if q.HasLevel(coarser) {
				continue
			}
			nq := q.Clone()
			nq.Dims[di].Level = coarser
			nq.Dims[di].Example = nil
			nq.Description = nq.Describe()
			out = append(out, Refinement{
				Kind:  KindRollUp,
				Query: nq,
				Why: fmt.Sprintf("roll up %q to the coarser level %q",
					levelPath(d.Level), levelPath(coarser)),
			})
		}
	}
	return out
}

// removeDim deletes dimension di from the query, dropping any member
// filters that referenced it (their combinations no longer apply). It
// reports false when a DimValuesFilter spans this dimension together
// with an anchored one, in which case dropping the filter would also
// drop the example restriction semantics.
func removeDim(q *core.OLAPQuery, di int) bool {
	var filters []core.DimValuesFilter
	for _, f := range q.DimFilters {
		uses := false
		for _, idx := range f.DimIdx {
			if idx == di {
				uses = true
				break
			}
		}
		if uses {
			// The filter pins member combinations that include this
			// dimension; removing the dimension invalidates it. Keep the
			// roll-up simple: drop the filter entirely.
			continue
		}
		// Reindex references past the removed dimension.
		nf := f
		nf.DimIdx = append([]int(nil), f.DimIdx...)
		for i, idx := range nf.DimIdx {
			if idx > di {
				nf.DimIdx[i] = idx - 1
			}
		}
		filters = append(filters, nf)
	}
	q.DimFilters = filters
	q.Dims = append(q.Dims[:di], q.Dims[di+1:]...)
	return true
}

// coarserLevels returns the levels reachable upward from l (its
// children in the virtual graph point to coarser levels).
func coarserLevels(g *vgraph.Graph, l *vgraph.Level) []*vgraph.Level {
	current := g.LevelByKey(l.Key())
	if current == nil {
		return nil
	}
	var out []*vgraph.Level
	var walk func(lv *vgraph.Level)
	walk = func(lv *vgraph.Level) {
		for _, c := range lv.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(current)
	return out
}

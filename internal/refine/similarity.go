package refine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"re2xolap/internal/core"
	"re2xolap/internal/rdf"
)

// DefaultSimilarK is the number of most-similar member combinations a
// similarity refinement keeps.
const DefaultSimilarK = 5

// Similarity solves Problem 2c following Figure 5: the dimensions
// matching the user example identify "items"; the remaining (refined-in)
// dimensions identify feature coordinates; each item's feature vector
// holds the measure value per feature combination (zero when absent).
// The refinement keeps the k items whose vectors are most
// cosine-similar to the example item's vector, restricting the query
// with a VALUES filter over those member combinations. One refinement
// is produced per aggregate column.
func Similarity(rs *core.ResultSet, k int) []Refinement {
	if k <= 0 {
		k = DefaultSimilarK
	}
	q := rs.Query
	var itemDims, featureDims []int
	for i, d := range q.Dims {
		if d.Example != nil {
			itemDims = append(itemDims, i)
		} else {
			featureDims = append(featureDims, i)
		}
	}
	if len(itemDims) == 0 || len(featureDims) == 0 {
		// Without added dimensions there are no features to compare on;
		// without example dimensions there is no anchor item.
		return nil
	}
	var out []Refinement
	for _, agg := range q.Aggregates {
		if r, ok := similarityOne(rs, itemDims, featureDims, agg.OutVar, k); ok {
			out = append(out, r)
		}
	}
	return out
}

func similarityOne(rs *core.ResultSet, itemDims, featureDims []int, col string, k int) (Refinement, bool) {
	q := rs.Query
	key := func(t core.Tuple, dims []int) string {
		parts := make([]string, len(dims))
		for i, d := range dims {
			parts[i] = t.Dims[d].String()
		}
		return strings.Join(parts, "\x00")
	}
	// Collect feature coordinates and item vectors.
	featIdx := map[string]int{}
	type item struct {
		members []rdf.Term
		vec     map[int]float64
	}
	items := map[string]*item{}
	var order []string
	for _, t := range rs.Tuples {
		fk := key(t, featureDims)
		if _, ok := featIdx[fk]; !ok {
			featIdx[fk] = len(featIdx)
		}
		ik := key(t, itemDims)
		it, ok := items[ik]
		if !ok {
			members := make([]rdf.Term, len(itemDims))
			for i, d := range itemDims {
				members[i] = t.Dims[d]
			}
			it = &item{members: members, vec: map[int]float64{}}
			items[ik] = it
			order = append(order, ik)
		}
		it.vec[featIdx[fk]] += t.Measures[col]
	}
	// The example item's vector anchors the similarity.
	exampleMembers := make([]rdf.Term, len(itemDims))
	for i, d := range itemDims {
		exampleMembers[i] = *q.Dims[d].Example
	}
	exKey := func() string {
		parts := make([]string, len(exampleMembers))
		for i, m := range exampleMembers {
			parts[i] = m.String()
		}
		return strings.Join(parts, "\x00")
	}()
	ex, ok := items[exKey]
	if !ok {
		return Refinement{}, false
	}
	type scored struct {
		key string
		sim float64
	}
	var scores []scored
	for _, ik := range order {
		if ik == exKey {
			continue
		}
		scores = append(scores, scored{key: ik, sim: cosine(ex.vec, items[ik].vec)})
	}
	if len(scores) == 0 {
		return Refinement{}, false
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].sim > scores[j].sim })
	if len(scores) > k {
		scores = scores[:k]
	}
	rows := [][]rdf.Term{exampleMembers}
	var names []string
	for _, s := range scores {
		rows = append(rows, items[s.key].members)
		names = append(names, displayMembers(items[s.key].members))
	}
	nq := q.Clone()
	why := fmt.Sprintf("the %d member combinations most similar to %s by %s: %s",
		len(scores), displayMembers(exampleMembers), col, strings.Join(names, "; "))
	nq.DimFilters = append(nq.DimFilters, core.DimValuesFilter{
		DimIdx: append([]int(nil), itemDims...),
		Rows:   rows,
		Why:    why,
	})
	nq.Description = nq.Describe()
	return Refinement{Kind: KindSimilarity, Query: nq, Why: why}, true
}

// cosine computes cosine similarity between sparse vectors.
func cosine(a, b map[int]float64) float64 {
	var dot, na, nb float64
	for i, va := range a {
		na += va * va
		if vb, ok := b[i]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func displayMembers(ms []rdf.Term) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		v := m.Value
		if j := strings.LastIndexAny(v, "/#"); j >= 0 && j+1 < len(v) {
			v = v[j+1:]
		}
		parts[i] = v
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

package refine

import (
	"fmt"
	"math"
	"sort"

	"re2xolap/internal/core"
)

// Cluster is the clustering-based refinement the paper's preliminary
// prototype offered (Section 7.2, after [48]) before the user study
// replaced it with the simpler top-k: a 1-D k-means over the aggregate
// values of each column; the refinement restricts the query to the
// value range of the cluster containing the user example. The study
// found users could not follow complex clustering conditions — this
// implementation exists so the comparison can be reproduced, and its
// Why string shows how much harder the condition is to explain.
func Cluster(rs *core.ResultSet, k int) []Refinement {
	if k < 2 {
		k = 3
	}
	if len(rs.Tuples) < k {
		return nil
	}
	var out []Refinement
	for _, agg := range rs.Query.Aggregates {
		if r, ok := clusterOne(rs, agg.OutVar, k); ok {
			out = append(out, r)
		}
	}
	return out
}

func clusterOne(rs *core.ResultSet, col string, k int) (Refinement, bool) {
	values := make([]float64, len(rs.Tuples))
	for i, t := range rs.Tuples {
		values[i] = t.Measures[col]
	}
	assign, centers := kmeans1D(values, k)
	// Find the cluster of the first example-matching tuple.
	cluster := -1
	for i, t := range rs.Tuples {
		if rs.MatchesExample(t) {
			cluster = assign[i]
			break
		}
	}
	if cluster < 0 {
		return Refinement{}, false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for i, c := range assign {
		if c != cluster {
			continue
		}
		n++
		if values[i] < lo {
			lo = values[i]
		}
		if values[i] > hi {
			hi = values[i]
		}
	}
	if n == len(rs.Tuples) {
		return Refinement{}, false // no restriction
	}
	nq := rs.Query.Clone()
	why := fmt.Sprintf(
		"the k-means cluster (k=%d, centroid %.1f) of %s containing the example: %d tuples with values in [%.1f, %.1f]",
		k, centers[cluster], col, n, lo, hi)
	nq.Having = append(nq.Having,
		core.MeasureFilter{Col: col, Op: ">=", Value: lo, Why: why},
		core.MeasureFilter{Col: col, Op: "<=", Value: hi, Why: why},
	)
	nq.Description = nq.Describe()
	return Refinement{Kind: KindCluster, Query: nq, Why: why}, true
}

// kmeans1D runs k-means on scalar values with deterministic
// quantile-based initialization, returning the assignment and the
// final centroids.
func kmeans1D(values []float64, k int) ([]int, []float64) {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = sorted[(i*2+1)*len(sorted)/(2*k)]
	}
	assign := make([]int, len(values))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, v := range values {
			best, bestDist := 0, math.Abs(v-centers[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(v - centers[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
	}
	return assign, centers
}

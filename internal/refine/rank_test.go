package refine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"re2xolap/internal/core"
	"re2xolap/internal/rdf"
	"re2xolap/internal/vgraph"
)

func TestRankOrdersSubsetsByFocus(t *testing.T) {
	e, _, q, rs := destQuery(t)
	_ = e
	refs := append(TopK(rs), Percentile(rs)...)
	if len(refs) < 2 {
		t.Fatalf("refs = %d", len(refs))
	}
	scored := Rank(rs, refs)
	if len(scored) != len(refs) {
		t.Fatalf("scored = %d, want %d", len(scored), len(refs))
	}
	for i := 1; i < len(scored); i++ {
		if scored[i-1].Score < scored[i].Score {
			t.Errorf("not sorted: %v then %v", scored[i-1].Score, scored[i].Score)
		}
	}
	for _, s := range scored {
		if s.Score < 0 || s.Score > 1 {
			t.Errorf("score %v out of range for %s", s.Score, s.Why)
		}
	}
	_ = q
}

func TestRankPrefersModerateDisaggregation(t *testing.T) {
	_, g, q, rs := destQuery(t)
	refs := Disaggregate(g, q)
	scored := Rank(rs, refs)
	// The level with the smallest member count should not rank below a
	// much larger one (log penalty on fan-out).
	var bestMembers, worstMembers int
	for i, s := range scored {
		added := s.Query.Dims[len(s.Query.Dims)-1]
		if i == 0 {
			bestMembers = added.Level.MemberCount
		}
		if i == len(scored)-1 {
			worstMembers = added.Level.MemberCount
		}
	}
	if bestMembers > worstMembers {
		t.Errorf("ranking prefers larger fan-out: best=%d worst=%d", bestMembers, worstMembers)
	}
}

func TestRankDeterministic(t *testing.T) {
	_, g, q, rs := destQuery(t)
	refs := append(Disaggregate(g, q), TopK(rs)...)
	a := Rank(rs, refs)
	// Shuffle the input; ranking must be stable in content.
	shuffled := append([]Refinement(nil), refs...)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := Rank(rs, shuffled)
	for i := range a {
		if a[i].Why != b[i].Why {
			t.Fatalf("rank %d differs: %q vs %q", i, a[i].Why, b[i].Why)
		}
	}
}

func TestKeptFractionExact(t *testing.T) {
	e, _, _, rs := destQuery(t)
	ctx := context.Background()
	refs := TopK(rs)
	for _, r := range refs {
		f := keptFraction(rs, r.Query)
		rs2, err := e.Execute(ctx, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(rs2.Len()) / float64(rs.Len())
		if f != got {
			t.Errorf("keptFraction = %v, executed = %v (%s)", f, got, r.Why)
		}
	}
}

// Property: satisfies() is consistent with Go comparisons.
func TestQuickSatisfies(t *testing.T) {
	f := func(v, th float64) bool {
		return satisfies(v, "<", th) == (v < th) &&
			satisfies(v, "<=", th) == (v <= th) &&
			satisfies(v, ">", th) == (v > th) &&
			satisfies(v, ">=", th) == (v >= th) &&
			satisfies(v, "=", th) == (v == th)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInValues(t *testing.T) {
	de := rdf.NewIRI("http://x/de")
	fr := rdf.NewIRI("http://x/fr")
	tup := core.Tuple{Dims: []rdf.Term{de, fr}}
	f := core.DimValuesFilter{DimIdx: []int{0}, Rows: [][]rdf.Term{{de}}}
	if !inValues(tup, f) {
		t.Error("matching row rejected")
	}
	f2 := core.DimValuesFilter{DimIdx: []int{0}, Rows: [][]rdf.Term{{fr}}}
	if inValues(tup, f2) {
		t.Error("non-matching row accepted")
	}
	f3 := core.DimValuesFilter{DimIdx: []int{5}, Rows: [][]rdf.Term{{de}}}
	if inValues(tup, f3) {
		t.Error("out-of-range dim accepted")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	_, _, q, rs := destQuery(t)
	// A refinement that keeps everything scores low but nonzero.
	noop := Refinement{Kind: KindTopK, Query: q.Clone(), Why: "noop"}
	if s := score(rs, noop); s != 0.05 {
		t.Errorf("no-reduction score = %v, want 0.05", s)
	}
	// Disaggregation score falls with member count.
	mk := func(members int) Refinement {
		nq := q.Clone()
		nq.Dims = append(nq.Dims, core.DimRef{Level: &vgraph.Level{MemberCount: members}, Var: "x"})
		return Refinement{Kind: KindDisaggregate, Query: nq}
	}
	if score(rs, mk(5)) <= score(rs, mk(5000)) {
		t.Error("larger fan-out not penalized")
	}
}

// Property: for synthetic result sets, every TopK refinement keeps the
// example tuple and its threshold excludes at least one tuple.
func TestQuickTopKInvariant(t *testing.T) {
	_, _, q, _ := destQuery(t)
	sumCol := ""
	for _, a := range q.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	f := func(vals []uint16, exampleIdx uint8) bool {
		if len(vals) < 3 {
			return true
		}
		if len(vals) > 40 {
			vals = vals[:40]
		}
		rs := &core.ResultSet{Query: q.Clone()}
		ei := int(exampleIdx) % len(vals)
		for i, v := range vals {
			member := rdf.NewIRI(fmt.Sprintf("http://m/%d", i))
			if i == ei {
				member = *q.Dims[0].Example
			}
			rs.Tuples = append(rs.Tuples, core.Tuple{
				Dims:     []rdf.Term{member},
				Measures: map[string]float64{sumCol: float64(v)},
			})
		}
		for _, r := range TopK(rs) {
			kept, excluded := 0, 0
			for _, tp := range rs.Tuples {
				ok := true
				for _, h := range r.Query.Having {
					if h.Col != sumCol {
						ok = false // only the sum column exists here
						break
					}
					v := tp.Measures[h.Col]
					switch h.Op {
					case ">":
						ok = ok && v > h.Value
					case "<":
						ok = ok && v < h.Value
					}
				}
				if !ok {
					excluded++
					continue
				}
				kept++
			}
			if r.Why == "" {
				return false
			}
			// Only check refinements on the sum column (others use
			// measures this synthetic set doesn't fill consistently).
			if len(r.Query.Having) == 1 && r.Query.Having[0].Col == sumCol {
				if excluded == 0 {
					return false // a top-k must cut something
				}
				// The example tuple must survive the filter.
				h := r.Query.Having[0]
				ev := rs.Tuples[ei].Measures[sumCol]
				if h.Op == ">" && !(ev > h.Value) {
					return false
				}
				if h.Op == "<" && !(ev < h.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: percentileValue is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []uint16, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		sorted := make([]float64, len(vals))
		for i, v := range vals {
			sorted[i] = float64(v)
		}
		sort.Float64s(sorted)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return percentileValue(sorted, pa) <= percentileValue(sorted, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package refine

import (
	"fmt"
	"sort"

	"re2xolap/internal/core"
)

// TopK solves Problem 2b with the top-k strategy of Section 6.2: for
// every aggregate column and both orderings, it sorts the result
// tuples, walks the ordering until the last example-matching tuple
// before a non-matching one, and derives a value threshold that keeps
// the example inside the top-k while cutting the rest. It produces at
// most two refinements (ascending and descending) per aggregate
// column, matching Figure 9b's fixed refinement count.
func TopK(rs *core.ResultSet) []Refinement {
	var out []Refinement
	q := rs.Query
	for _, agg := range q.Aggregates {
		for _, desc := range []bool{true, false} {
			r, ok := topKOne(rs, agg.OutVar, desc)
			if ok {
				out = append(out, r)
			}
		}
	}
	return out
}

func topKOne(rs *core.ResultSet, col string, desc bool) (Refinement, bool) {
	idx := make([]int, len(rs.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va := rs.Tuples[idx[a]].Measures[col]
		vb := rs.Tuples[idx[b]].Measures[col]
		if desc {
			return va > vb
		}
		return va < vb
	})
	// Find the cut: the first example tuple followed by a non-example
	// tuple. Everything up to and including it is the top-k.
	cut := -1
	for i, ti := range idx {
		if !rs.MatchesExample(rs.Tuples[ti]) {
			continue
		}
		if i+1 < len(idx) && !rs.MatchesExample(rs.Tuples[idx[i+1]]) {
			cut = i
			break
		}
	}
	if cut < 0 {
		// No example in the results, or no non-matching tuple after it:
		// there is nothing meaningful to cut.
		return Refinement{}, false
	}
	threshold := rs.Tuples[idx[cut+1]].Measures[col]
	kept := rs.Tuples[idx[cut]].Measures[col]
	if threshold == kept {
		// Tie between the last kept tuple and the first excluded one: a
		// pure value filter cannot separate them.
		return Refinement{}, false
	}
	op := ">"
	dir := "descending"
	if !desc {
		op = "<"
		dir = "ascending"
	}
	k := cut + 1
	nq := rs.Query.Clone()
	why := fmt.Sprintf("top-%d tuples by %s (%s)", k, col, dir)
	nq.Having = append(nq.Having, core.MeasureFilter{Col: col, Op: op, Value: threshold, Why: why})
	nq.Description = nq.Describe()
	return Refinement{Kind: KindTopK, Query: nq, Why: why}, true
}

// percentileRanks are the cut points used by the percentile strategy.
var percentileRanks = []float64{25, 50, 75, 90}

// Percentile solves Problem 2b with the percentile strategy of Section
// 6.2: for every aggregate column it computes the 25/50/75/90th
// percentile values, splits the value range into intervals, and emits
// one refinement for each interval that contains a tuple matching the
// user example. The number of refinements therefore varies with how
// the example's values cluster (Figure 9b).
func Percentile(rs *core.ResultSet) []Refinement {
	var out []Refinement
	if len(rs.Tuples) == 0 {
		return nil
	}
	q := rs.Query
	for _, agg := range q.Aggregates {
		out = append(out, percentileOne(rs, agg.OutVar)...)
	}
	return out
}

func percentileOne(rs *core.ResultSet, col string) []Refinement {
	values := make([]float64, len(rs.Tuples))
	for i, t := range rs.Tuples {
		values[i] = t.Measures[col]
	}
	sort.Float64s(values)
	cuts := make([]float64, len(percentileRanks))
	for i, p := range percentileRanks {
		cuts[i] = percentileValue(values, p)
	}
	// Intervals: (-inf, c0], (c0, c1], ..., (c3, +inf).
	type interval struct {
		lo, hi       float64
		hasLo, hasHi bool
		name         string
	}
	var ivs []interval
	ivs = append(ivs, interval{hi: cuts[0], hasHi: true, name: fmt.Sprintf("below the %.0fth percentile", percentileRanks[0])})
	for i := 1; i < len(cuts); i++ {
		ivs = append(ivs, interval{
			lo: cuts[i-1], hasLo: true, hi: cuts[i], hasHi: true,
			name: fmt.Sprintf("between the %.0fth and %.0fth percentile", percentileRanks[i-1], percentileRanks[i]),
		})
	}
	ivs = append(ivs, interval{lo: cuts[len(cuts)-1], hasLo: true, name: fmt.Sprintf("above the %.0fth percentile", percentileRanks[len(percentileRanks)-1])})

	var out []Refinement
	for _, iv := range ivs {
		hasExample := false
		for _, t := range rs.Tuples {
			if !rs.MatchesExample(t) {
				continue
			}
			v := t.Measures[col]
			if (!iv.hasLo || v > iv.lo) && (!iv.hasHi || v <= iv.hi) {
				hasExample = true
				break
			}
		}
		if !hasExample {
			continue
		}
		nq := rs.Query.Clone()
		why := fmt.Sprintf("%s of %s", iv.name, col)
		if iv.hasLo {
			nq.Having = append(nq.Having, core.MeasureFilter{Col: col, Op: ">", Value: iv.lo, Why: why})
		}
		if iv.hasHi {
			nq.Having = append(nq.Having, core.MeasureFilter{Col: col, Op: "<=", Value: iv.hi, Why: why})
		}
		nq.Description = nq.Describe()
		out = append(out, Refinement{Kind: KindPercentile, Query: nq, Why: why})
	}
	return out
}

// percentileValue returns the p-th percentile of sorted values using
// nearest-rank interpolation.
func percentileValue(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

package refine

import (
	"context"
	"strings"
	"testing"

	"re2xolap/internal/core"
	"re2xolap/internal/rdf"
	"re2xolap/internal/testkg"
	"re2xolap/internal/vgraph"
)

// destQuery synthesizes the "Germany as destination" query from the
// fixture and returns the engine, graph, query, and its results.
func destQuery(t *testing.T) (*core.Engine, *vgraph.Graph, *core.OLAPQuery, *core.ResultSet) {
	t.Helper()
	_, c, g := testkg.BootstrapFixture(t, nil)
	e := core.NewEngine(c, g, testkg.Config())
	ctx := context.Background()
	cands, err := e.Synthesize(ctx, core.Keywords("Germany"))
	if err != nil {
		t.Fatal(err)
	}
	var q *core.OLAPQuery
	for _, cand := range cands {
		if cand.Query.Dims[0].Level.String() == "dest" {
			q = cand.Query
		}
	}
	if q == nil {
		t.Fatal("destination interpretation missing")
	}
	rs, err := e.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	return e, g, q, rs
}

func sumCol(q *core.OLAPQuery) string {
	for _, a := range q.Aggregates {
		if a.Func == "SUM" {
			return a.OutVar
		}
	}
	return ""
}

func TestDisaggregateCandidates(t *testing.T) {
	_, g, q, _ := destQuery(t)
	refs := Disaggregate(g, q)
	// Levels: origin, origin/inContinent, refPeriod, refPeriod/inYear,
	// sex are addable; dest is present; dest/inContinent is coarser and
	// must be discarded.
	if len(refs) != 5 {
		for _, r := range refs {
			t.Logf("ref: %s", r.Why)
		}
		t.Fatalf("refinements = %d, want 5", len(refs))
	}
	for _, r := range refs {
		if r.Kind != KindDisaggregate {
			t.Errorf("kind = %s", r.Kind)
		}
		if len(r.Query.Dims) != len(q.Dims)+1 {
			t.Errorf("dims = %d, want %d", len(r.Query.Dims), len(q.Dims)+1)
		}
		if strings.Contains(r.Why, "dest / In Continent") {
			t.Errorf("coarser level proposed: %s", r.Why)
		}
		// The original example anchor must survive.
		if r.Query.Dims[0].Example == nil {
			t.Error("example anchor lost")
		}
	}
}

func TestDisaggregateDrillDownWithinDimension(t *testing.T) {
	// Build a query grouped at origin/inContinent, then check that the
	// finer origin level is proposed as a drill-down.
	_, c, g := testkg.BootstrapFixture(t, nil)
	e := core.NewEngine(c, g, testkg.Config())
	cands, err := e.Synthesize(context.Background(), core.Keywords("Asia"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates for Asia")
	}
	q := cands[0].Query
	if q.Dims[0].Level.String() != "origin/inContinent" {
		t.Fatalf("unexpected level %s", q.Dims[0].Level)
	}
	refs := Disaggregate(g, q)
	found := false
	for _, r := range refs {
		if strings.Contains(r.Why, "drill down") {
			found = true
			if len(r.Query.Dims) != 2 {
				t.Errorf("drill-down dims = %d", len(r.Query.Dims))
			}
		}
	}
	if !found {
		t.Error("within-dimension drill-down not proposed")
	}
}

func TestDisaggregatedQueryExecutes(t *testing.T) {
	e, g, q, rs := destQuery(t)
	refs := Disaggregate(g, q)
	for _, r := range refs {
		rs2, err := e.Execute(context.Background(), r.Query)
		if err != nil {
			t.Fatalf("refined query failed: %v\n%s", err, r.Query.ToSPARQL())
		}
		// Disaggregation cannot shrink below the original group count
		// and must keep the example.
		if rs2.Len() < rs.Len() {
			t.Errorf("refined result smaller: %d < %d (%s)", rs2.Len(), rs.Len(), r.Why)
		}
		if len(rs2.ExampleTuples()) == 0 {
			t.Errorf("example lost after %s", r.Why)
		}
	}
}

func TestTopK(t *testing.T) {
	e, _, q, rs := destQuery(t)
	refs := TopK(rs)
	if len(refs) == 0 {
		t.Fatal("no top-k refinements")
	}
	col := sumCol(q)
	var descRef *Refinement
	for i := range refs {
		if refs[i].Kind != KindTopK {
			t.Errorf("kind = %s", refs[i].Kind)
		}
		if strings.Contains(refs[i].Why, col) && strings.Contains(refs[i].Why, "descending") {
			descRef = &refs[i]
		}
	}
	if descRef == nil {
		t.Fatal("no descending sum refinement")
	}
	// Germany has the highest total (488), so descending top-k keeps
	// only Germany (top-1 above threshold 133).
	if !strings.Contains(descRef.Why, "top-1") {
		t.Errorf("why = %s, want top-1", descRef.Why)
	}
	rs2, err := e.Execute(context.Background(), descRef.Query)
	if err != nil {
		t.Fatalf("top-k query failed: %v\n%s", err, descRef.Query.ToSPARQL())
	}
	if rs2.Len() != 1 {
		t.Fatalf("top-k rows = %d, want 1\n%s", rs2.Len(), descRef.Query.ToSPARQL())
	}
	if rs2.Tuples[0].Dims[0] != testkg.IRI("de") {
		t.Errorf("kept tuple = %v", rs2.Tuples[0].Dims)
	}
	if len(rs2.ExampleTuples()) != 1 {
		t.Error("example lost in top-k refinement")
	}
}

func TestTopKNoExampleNoRefinement(t *testing.T) {
	_, _, _, rs := destQuery(t)
	// Strip the example anchors: no refinements possible.
	q2 := rs.Query.Clone()
	for i := range q2.Dims {
		q2.Dims[i].Example = nil
	}
	rs2 := &core.ResultSet{Query: q2, Tuples: rs.Tuples}
	// With no anchors every tuple "matches", so there is never a
	// matching tuple followed by a non-matching one... every tuple
	// matches: cut never happens.
	if refs := TopK(rs2); len(refs) != 0 {
		t.Errorf("refinements without example = %d, want 0", len(refs))
	}
}

func TestPercentile(t *testing.T) {
	e, _, q, rs := destQuery(t)
	refs := Percentile(rs)
	if len(refs) == 0 {
		t.Fatal("no percentile refinements")
	}
	col := sumCol(q)
	for _, r := range refs {
		if r.Kind != KindPercentile {
			t.Errorf("kind = %s", r.Kind)
		}
		rs2, err := e.Execute(context.Background(), r.Query)
		if err != nil {
			t.Fatalf("percentile query failed: %v\n%s", err, r.Query.ToSPARQL())
		}
		if len(rs2.ExampleTuples()) == 0 {
			t.Errorf("example lost in %s", r.Why)
		}
		if rs2.Len() >= rs.Len() && len(r.Query.Having) > 0 {
			// Germany is the maximum, so its interval (above 90th) is a
			// strict subset.
			if strings.Contains(r.Why, col) && strings.Contains(r.Why, "above") && rs2.Len() == rs.Len() {
				t.Errorf("percentile did not restrict: %s", r.Why)
			}
		}
	}
}

func TestPercentileEmptyResults(t *testing.T) {
	_, _, q, _ := destQuery(t)
	empty := &core.ResultSet{Query: q}
	if refs := Percentile(empty); len(refs) != 0 {
		t.Errorf("refinements on empty = %d", len(refs))
	}
}

func TestSimilarity(t *testing.T) {
	e, g, q, _ := destQuery(t)
	ctx := context.Background()
	// Add the year dimension so there are features to compare on.
	var q2 *core.OLAPQuery
	for _, r := range Disaggregate(g, q) {
		for _, d := range r.Query.Dims {
			if d.Level.String() == "refPeriod/inYear" {
				q2 = r.Query
			}
		}
	}
	if q2 == nil {
		t.Fatal("year disaggregation missing")
	}
	rs2, err := e.Execute(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	refs := Similarity(rs2, 1)
	if len(refs) == 0 {
		t.Fatal("no similarity refinements")
	}
	var sumRef *Refinement
	for i := range refs {
		if refs[i].Kind != KindSimilarity {
			t.Errorf("kind = %s", refs[i].Kind)
		}
		if strings.Contains(refs[i].Why, sumCol(q2)) {
			sumRef = &refs[i]
		}
	}
	if sumRef == nil {
		t.Fatal("no sum-based similarity refinement")
	}
	// Sweden's per-year profile (73, 60) is directionally closest to
	// Germany's (258, 230); France (70, 5) is skewed. Top-1 = Sweden.
	if !strings.Contains(sumRef.Why, "se") {
		t.Errorf("most similar should be Sweden: %s", sumRef.Why)
	}
	rs3, err := e.Execute(ctx, sumRef.Query)
	if err != nil {
		t.Fatalf("similarity query failed: %v\n%s", err, sumRef.Query.ToSPARQL())
	}
	// Only Germany and Sweden remain, each with 2 year groups.
	dests := map[string]bool{}
	for _, tp := range rs3.Tuples {
		dests[tp.Dims[0].Value] = true
	}
	if len(dests) != 2 || !dests[testkg.NS+"de"] || !dests[testkg.NS+"se"] {
		t.Errorf("remaining destinations = %v", dests)
	}
	if len(rs3.ExampleTuples()) == 0 {
		t.Error("example lost in similarity refinement")
	}
}

func TestSimilarityNeedsFeatures(t *testing.T) {
	_, _, _, rs := destQuery(t)
	// Query has only the example dimension: no features → no refinement.
	if refs := Similarity(rs, 3); len(refs) != 0 {
		t.Errorf("refinements without features = %d", len(refs))
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		a, b map[int]float64
		want float64
	}{
		{map[int]float64{0: 1}, map[int]float64{0: 1}, 1},
		{map[int]float64{0: 1}, map[int]float64{1: 1}, 0},
		{map[int]float64{0: 1, 1: 0}, map[int]float64{0: 2, 1: 0}, 1},
		{map[int]float64{}, map[int]float64{0: 1}, 0},
	}
	for i, tt := range tests {
		got := cosine(tt.a, tt.b)
		if got < tt.want-1e-9 || got > tt.want+1e-9 {
			t.Errorf("case %d: cosine = %v, want %v", i, got, tt.want)
		}
	}
}

func TestPercentileValue(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {75, 40},
	}
	for _, tt := range tests {
		if got := percentileValue(vals, tt.p); got != tt.want {
			t.Errorf("percentile %v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := percentileValue(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestStrictlyFiner(t *testing.T) {
	base := &vgraph.Level{Path: []string{"a"}}
	coarse := &vgraph.Level{Path: []string{"a", "b"}}
	other := &vgraph.Level{Path: []string{"c", "b"}}
	if !strictlyFiner(base, coarse) {
		t.Error("base should be finer than coarse")
	}
	if strictlyFiner(coarse, base) {
		t.Error("coarse is not finer than base")
	}
	if strictlyFiner(base, base) {
		t.Error("level is not finer than itself")
	}
	if strictlyFiner(other, coarse) {
		t.Error("different hierarchy cannot be finer")
	}
}

func TestCluster(t *testing.T) {
	e, _, q, rs := destQuery(t)
	refs := Cluster(rs, 2)
	if len(refs) == 0 {
		t.Fatal("no cluster refinements")
	}
	for _, r := range refs {
		if r.Kind != KindCluster {
			t.Errorf("kind = %s", r.Kind)
		}
		rs2, err := e.Execute(context.Background(), r.Query)
		if err != nil {
			t.Fatalf("cluster query failed: %v\n%s", err, r.Query.ToSPARQL())
		}
		if len(rs2.ExampleTuples()) == 0 {
			t.Errorf("example lost in %s", r.Why)
		}
		if rs2.Len() >= rs.Len() {
			t.Errorf("cluster did not restrict: %d >= %d (%s)", rs2.Len(), rs.Len(), r.Why)
		}
	}
	_ = q
}

func TestClusterTooFewTuples(t *testing.T) {
	_, _, _, rs := destQuery(t)
	if refs := Cluster(rs, 10); refs != nil { // only 3 tuples
		t.Errorf("refinements = %v", refs)
	}
}

func TestKMeans1D(t *testing.T) {
	values := []float64{1, 2, 3, 100, 101, 102}
	assign, centers := kmeans1D(values, 2)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("low cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("high cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Error("clusters merged")
	}
	lo, hi := centers[assign[0]], centers[assign[3]]
	if lo > 3 || hi < 100 {
		t.Errorf("centers = %v", centers)
	}
}

func TestRollUp(t *testing.T) {
	e, g, q, _ := destQuery(t)
	ctx := context.Background()

	// On the initial query (only the anchored dest dim), nothing can
	// roll up.
	if refs := RollUp(g, q); len(refs) != 0 {
		t.Errorf("rollup on anchored-only query = %d refinements", len(refs))
	}

	// Add the refPeriod month level, then roll up.
	var q2 *core.OLAPQuery
	for _, r := range Disaggregate(g, q) {
		for _, d := range r.Query.Dims {
			if d.Level.String() == "refPeriod" {
				q2 = r.Query
			}
		}
	}
	if q2 == nil {
		t.Fatal("refPeriod disaggregation missing")
	}
	refs := RollUp(g, q2)
	// Expected: drop refPeriod entirely, or coarsen month → year.
	if len(refs) != 2 {
		for _, r := range refs {
			t.Logf("ref: %s", r.Why)
		}
		t.Fatalf("rollup refinements = %d, want 2", len(refs))
	}
	rs2, err := e.Execute(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if r.Kind != KindRollUp {
			t.Errorf("kind = %s", r.Kind)
		}
		rs3, err := e.Execute(ctx, r.Query)
		if err != nil {
			t.Fatalf("rollup failed: %v\n%s", err, r.Query.ToSPARQL())
		}
		if rs3.Len() > rs2.Len() {
			t.Errorf("rollup grew results: %d > %d (%s)", rs3.Len(), rs2.Len(), r.Why)
		}
		if len(rs3.ExampleTuples()) == 0 {
			t.Errorf("example lost in %s", r.Why)
		}
	}
}

func TestRollUpReindexesFilters(t *testing.T) {
	e, g, q, _ := destQuery(t)
	ctx := context.Background()
	// dest (anchored) + refPeriod + sex, with a VALUES filter on sex.
	var q2 *core.OLAPQuery
	for _, r := range Disaggregate(g, q) {
		for _, d := range r.Query.Dims {
			if d.Level.String() == "refPeriod" {
				q2 = r.Query
			}
		}
	}
	var q3 *core.OLAPQuery
	for _, r := range Disaggregate(g, q2) {
		for _, d := range r.Query.Dims {
			if d.Level.String() == "sex" {
				q3 = r.Query
			}
		}
	}
	if q3 == nil {
		t.Fatal("sex disaggregation missing")
	}
	q3.DimFilters = append(q3.DimFilters, core.DimValuesFilter{
		DimIdx: []int{2}, // the sex dimension
		Rows:   [][]rdf.Term{{testkg.IRI("male")}},
	})
	refs := RollUp(g, q3)
	// Rolling up refPeriod (index 1) must keep the sex filter working
	// (reindexed to 1).
	for _, r := range refs {
		if r.Why == `roll up: aggregate away "Reference Period"` {
			if len(r.Query.DimFilters) != 1 || r.Query.DimFilters[0].DimIdx[0] != 1 {
				t.Fatalf("filter not reindexed: %+v", r.Query.DimFilters)
			}
			rs, err := e.Execute(ctx, r.Query)
			if err != nil {
				t.Fatalf("reindexed query failed: %v", err)
			}
			for _, tp := range rs.Tuples {
				if tp.Dims[1] != testkg.IRI("male") {
					t.Errorf("filter lost: %v", tp.Dims)
				}
			}
			return
		}
	}
	t.Fatal("aggregate-away refPeriod refinement missing")
}

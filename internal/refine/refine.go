// Package refine implements ExRef, the example-driven query refinement
// suite of Section 6: Disaggregate (Problem 2a, a drill-down),
// Top-K and Percentile subsetting (Problem 2b, dice on aggregate
// values), and Similarity search (Problem 2c, dice on members similar
// to the example). Every refinement clones the input query, carries a
// human-readable explanation (the paper's explainability criterion),
// and keeps the user's example in the refined result set.
package refine

import (
	"fmt"

	"re2xolap/internal/core"
)

// Kind identifies a refinement method.
type Kind string

// The four ExRef refinement kinds (Algorithm 2's ExRef set), plus the
// clustering refinement from the paper's preliminary prototype
// (Section 7.2).
const (
	KindDisaggregate Kind = "disaggregate"
	KindTopK         Kind = "topk"
	KindPercentile   Kind = "percentile"
	KindSimilarity   Kind = "similarity"
	KindCluster      Kind = "cluster"
	KindRollUp       Kind = "rollup"
)

// Refinement is one proposed refined query.
type Refinement struct {
	Kind  Kind
	Query *core.OLAPQuery
	// Why explains the refinement to the user in one sentence.
	Why string
}

// String renders the refinement for display.
func (r Refinement) String() string {
	return fmt.Sprintf("[%s] %s", r.Kind, r.Why)
}

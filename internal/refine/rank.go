package refine

import (
	"math"
	"sort"

	"re2xolap/internal/core"
)

// The paper's Section 8 calls for "a method for ranking the suggested
// query reformulations to help the user prioritize among them" when
// many refinements are produced. Rank implements a deterministic
// heuristic ranking built on the paper's two solution criteria
// (simplicity and explainability) plus focus:
//
//   - Subset refinements (top-k, percentile, similarity) are scored by
//     the fraction of the current tuples they keep, computed exactly
//     against the current result set; the sweet spot is a focused but
//     non-trivial subset (around 20% kept), per the user study's
//     preference for small inspectable groups.
//   - Disaggregations are scored by the granularity of the added
//     level: moderate fan-out beats exploding the result set.
//   - Refinements with fewer added conditions (simplicity) win ties.

// Scored pairs a refinement with its ranking score in [0, 1].
type Scored struct {
	Refinement
	Score float64
}

// targetKeptFraction is the kept-fraction a subset refinement is
// rewarded for approaching.
const targetKeptFraction = 0.2

// Rank scores the refinements against the current result set and
// returns them ordered best-first. The ordering is deterministic:
// ties break on fewer added conditions, then on the Why text.
func Rank(rs *core.ResultSet, refs []Refinement) []Scored {
	out := make([]Scored, 0, len(refs))
	for _, r := range refs {
		out = append(out, Scored{Refinement: r, Score: score(rs, r)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		ci, cj := conditionCount(out[i].Query), conditionCount(out[j].Query)
		if ci != cj {
			return ci < cj
		}
		return out[i].Why < out[j].Why
	})
	return out
}

func conditionCount(q *core.OLAPQuery) int {
	return len(q.Having) + len(q.DimFilters)
}

func score(rs *core.ResultSet, r Refinement) float64 {
	if r.Kind == KindDisaggregate {
		// The added dimension is the last one; moderate member counts
		// are preferred (1 is a no-op, 10^5 floods the user).
		added := r.Query.Dims[len(r.Query.Dims)-1]
		g := float64(added.Level.MemberCount)
		if g < 1 {
			g = 1
		}
		return 1 / (1 + math.Log2(1+g)/4)
	}
	f := keptFraction(rs, r.Query)
	switch {
	case f <= 0:
		return 0 // would lose everything (should not happen: example kept)
	case f >= 1:
		return 0.05 // no reduction: least useful subset
	}
	// Peak at targetKeptFraction, linear falloff on both sides.
	if f <= targetKeptFraction {
		return f / targetKeptFraction
	}
	return 1 - (f-targetKeptFraction)/(1-targetKeptFraction)
}

// keptFraction computes, against the current tuples, the fraction the
// refined query's extra conditions would keep. The refined query has
// the same dimensions as the result set for every subset refinement,
// so the check is exact.
func keptFraction(rs *core.ResultSet, q *core.OLAPQuery) float64 {
	if len(rs.Tuples) == 0 {
		return 1
	}
	if len(q.Dims) != len(rs.Query.Dims) {
		return 1
	}
	baseHaving := len(rs.Query.Having)
	baseFilters := len(rs.Query.DimFilters)
	kept := 0
	for _, t := range rs.Tuples {
		ok := true
		for _, h := range q.Having[baseHaving:] {
			if !satisfies(t.Measures[h.Col], h.Op, h.Value) {
				ok = false
				break
			}
		}
		if ok {
			for _, f := range q.DimFilters[baseFilters:] {
				if !inValues(t, f) {
					ok = false
					break
				}
			}
		}
		if ok {
			kept++
		}
	}
	return float64(kept) / float64(len(rs.Tuples))
}

func satisfies(v float64, op string, threshold float64) bool {
	switch op {
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "=":
		return v == threshold
	}
	return false
}

func inValues(t core.Tuple, f core.DimValuesFilter) bool {
	for _, row := range f.Rows {
		match := true
		for i, di := range f.DimIdx {
			if di >= len(t.Dims) || t.Dims[di] != row[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Package corpus holds the shared determinism test corpus: a fully
// deterministic dataset plus the 33-query suite covering every query
// shape and federation plan class. The shard determinism tests and the
// serve-layer cache tests both run it — the contract is that any
// serving configuration (shard count, replica failover, result cache
// on or off, cold or warm) returns byte-identical answers over this
// corpus.
package corpus

import (
	"fmt"

	"re2xolap/internal/datagen"
	"re2xolap/internal/rdf"
)

// Triples is the determinism-suite dataset: a handcrafted graph
// exercising every query shape (star BGPs, cross-subject joins, a
// transitive chain, text filters) plus a seeded datagen corpus so the
// aggregate queries run over realistically skewed data. Fully
// deterministic: the handcrafted part is literal and datagen is
// seeded.
func Triples() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.Triple{S: iri(s), P: iri(p), O: o})
	}
	// Regions in a two-level hierarchy (cross-subject join target).
	for i := 0; i < 4; i++ {
		r := fmt.Sprintf("r%d", i)
		c := "cA"
		if i >= 2 {
			c = "cB"
		}
		add(r, "partOf", iri(c))
		add(r, "label", rdf.NewString(fmt.Sprintf("region %d", i)))
	}
	// Observations: distinct values so ORDER BY is a total order.
	for i := 0; i < 12; i++ {
		s := fmt.Sprintf("obs%d", i)
		add(s, "region", iri(fmt.Sprintf("r%d", i%4)))
		if i != 7 { // one observation misses its value
			add(s, "value", rdf.NewInteger(int64(100+i*7)))
		}
		label := fmt.Sprintf("obs %d", i)
		if i%5 == 0 {
			label += " special"
		}
		add(s, "label", rdf.NewString(label))
	}
	// A knows-chain for the transitive-closure query.
	add("p0", "knows", iri("p1"))
	add("p1", "knows", iri("p2"))
	add("p2", "knows", iri("p3"))
	add("p1", "knows", iri("p3"))
	// Seeded synthetic corpus for scale and skew.
	datagen.EurostatLike(150).Generate(func(t rdf.Triple) { ts = append(ts, t) })
	return ts
}

// Query is one determinism-suite entry. EngineCompare selects how a
// federated answer is checked against the single-node engine: "exact"
// (same rows, same order), "set" (same rows, any order — for queries
// whose order the language leaves unspecified), "skip" (a coordinator
// legitimately picks a different representative: SAMPLE, GROUP_CONCAT,
// bare LIMIT without a total order).
type Query struct {
	Name          string
	Query         string
	EngineCompare string
}

// Queries is the full 33-query determinism corpus: ORDER BY+LIMIT,
// DISTINCT, HAVING, each aggregate, plus every fallback-triggering
// shape.
func Queries() []Query {
	return []Query{
		{"star-order-limit-offset",
			`SELECT ?s ?v WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } ORDER BY DESC(?v) LIMIT 5 OFFSET 2`,
			"exact"},
		{"star-order-asc",
			`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ASC(?v)`,
			"exact"},
		{"distinct",
			`SELECT DISTINCT ?r WHERE { ?s <http://t/region> ?r }`,
			"set"},
		{"bare-limit",
			`SELECT ?s WHERE { ?s <http://t/region> ?r } LIMIT 3`,
			"skip"}, // no total order: any 3 rows are a correct answer
		{"count-group",
			`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r`,
			"set"},
		{"count-star-group",
			`SELECT ?r (COUNT(*) AS ?n) WHERE { ?s <http://t/region> ?r } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"sum-avg",
			`SELECT ?r (SUM(?v) AS ?t) (AVG(?v) AS ?a) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"min-max",
			`SELECT ?r (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"global-agg",
			`SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?t) WHERE { ?s <http://t/value> ?v }`,
			"exact"},
		{"global-agg-empty",
			`SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://t/nosuch> ?v }`,
			"exact"},
		{"having",
			`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r HAVING (COUNT(?v) >= 3) ORDER BY ?r`,
			"exact"},
		{"agg-expr-projection",
			`SELECT ?r ((SUM(?v) + COUNT(?v)) AS ?mix) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"sample",
			`SELECT ?r (SAMPLE(?v) AS ?any) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"skip"}, // coordinator's canonical sample may differ from the engine's
		{"group-concat-gather",
			`SELECT ?r (GROUP_CONCAT(?v) AS ?all) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			// Concatenation order is implementation-defined (row order),
			// and the gather store's canonical load order differs from
			// the original store's insert order — topologies agree with
			// each other, not with the engine's element order.
			"skip"},
		{"count-distinct-gather",
			`SELECT ?r (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"union",
			`SELECT ?s WHERE { { ?s <http://t/region> <http://t/r0> } UNION { ?s <http://t/region> <http://t/r1> } } ORDER BY ?s`,
			"exact"},
		{"optional",
			`SELECT ?s ?v WHERE { ?s <http://t/region> ?r . OPTIONAL { ?s <http://t/value> ?v } } ORDER BY ?s`,
			"exact"},
		{"filter-contains",
			`SELECT ?s WHERE { ?s <http://t/label> ?l . FILTER (CONTAINS(LCASE(STR(?l)), "special")) } ORDER BY ?s`,
			"exact"},
		{"filter-not-exists",
			`SELECT ?s WHERE { ?s <http://t/region> ?r . FILTER NOT EXISTS { ?s <http://t/value> ?v } } ORDER BY ?s`,
			"exact"},
		{"closure-gather",
			`SELECT ?b WHERE { <http://t/p0> <http://t/knows>+ ?b } ORDER BY ?b`,
			"exact"},
		{"join-bound",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
			"exact"},
		{"join-bound-chain",
			`SELECT ?a ?c ?d WHERE { ?a <http://t/knows> ?b . ?b <http://t/knows> ?c . ?c <http://t/knows> ?d } ORDER BY ?a ?c ?d`,
			"exact"},
		{"join-bound-pushed-filter",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c . FILTER(?c = <http://t/cA>) } ORDER BY ?s`,
			"exact"},
		{"join-bound-residual-filter",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c . FILTER(?s != ?c) } ORDER BY ?s`,
			"exact"},
		{"join-bound-distinct",
			`SELECT DISTINCT ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c }`,
			"set"},
		{"join-bound-expr-projection",
			`SELECT ?s (STR(?c) AS ?cs) WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
			"exact"},
		{"join-bound-empty",
			`SELECT ?s ?x WHERE { ?s <http://t/region> ?r . ?r <http://t/nosuch> ?x } ORDER BY ?s`,
			"exact"},
		{"join-bound-ask",
			`ASK { ?a <http://t/knows> ?b . ?b <http://t/knows> ?c }`,
			"exact"},
		{"values",
			`SELECT ?s ?v WHERE { VALUES ?r { <http://t/r0> <http://t/r2> } ?s <http://t/region> ?r . ?s <http://t/value> ?v } ORDER BY ?s`,
			"exact"},
		{"subselect-gather",
			`SELECT ?s ?v WHERE { { SELECT ?s WHERE { ?s <http://t/region> <http://t/r1> } } ?s <http://t/value> ?v } ORDER BY ?s`,
			"exact"},
		{"ask-true",
			`ASK { ?s <http://t/region> <http://t/r2> }`,
			"exact"},
		{"ask-false",
			`ASK { ?s <http://t/region> <http://t/r9> }`,
			"exact"},
		{"mixed-dataset-agg",
			`SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p`,
			"exact"},
	}
}

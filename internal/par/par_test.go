package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var counts [n]atomic.Int32
		if err := Do(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := Do(8, 64, func(i int) error {
		switch i {
		case 40:
			return errB
		case 12:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("Do over zero items: %v", err)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, workers int
		want       [][2]int
	}{
		{0, 4, nil},
		{3, 1, [][2]int{{0, 3}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, [][2]int{{0, 4}, {4, 8}, {8, 10}}},
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.workers)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
			}
		}
		// The chunks must exactly tile [0, n).
		prev := 0
		for _, ch := range got {
			if ch[0] != prev || ch[1] <= ch[0] {
				t.Fatalf("Chunks(%d,%d): bad tiling %v", c.n, c.workers, got)
			}
			prev = ch[1]
		}
		if prev != c.n {
			t.Fatalf("Chunks(%d,%d): covers [0,%d), want [0,%d)", c.n, c.workers, prev, c.n)
		}
	}
}

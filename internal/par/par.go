// Package par provides the small bounded-worker-pool primitives shared
// by the parallel query pipeline: the SPARQL executor fans row chunks
// out over one, synthesis validates interpretation combinations over
// another. The helpers are deliberately deterministic-friendly — work
// items are indexed, results land in caller-owned slots, and the first
// error *by index* (not by wall-clock) wins — so callers can merge
// partial results in input order and reproduce sequential output
// byte for byte.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// active counts worker goroutines currently running across every Do
// call in the process; Active exposes it so the observability layer
// can publish pool occupancy as a gauge. The sequential inline path
// (workers <= 1) runs on the caller's goroutine and is not counted.
var active atomic.Int64

// Active returns the number of pool worker goroutines currently
// running process-wide.
func Active() int64 { return active.Load() }

// Workers resolves a worker-count setting: n > 0 is taken as-is, and
// anything else means GOMAXPROCS (the "use the machine" default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(0), fn(1), …, fn(n-1) on at most workers goroutines and
// returns the error from the lowest index that failed, or nil. Every
// index is invoked exactly once regardless of other indexes' errors;
// callers that want early abort should latch their own flag inside fn
// (see core.SynthesizeAll). With workers <= 1 the calls run inline on
// the caller's goroutine, in index order, which is the sequential
// debugging path.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			active.Add(1)
			defer active.Add(-1)
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks splits the half-open range [0, n) into at most workers
// contiguous chunks of near-equal size and reports each as a [lo, hi)
// pair. It never returns empty chunks; with n == 0 it returns nil.
func Chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// TestSingleFlight32 is the acceptance test: 32 concurrent identical
// queries execute the engine exactly once; the other 31 coalesce onto
// that execution and every answer is byte-identical.
func TestSingleFlight32(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 200 * time.Millisecond})
	inner := &countingClient{inner: fault}
	reg := obs.NewRegistry()
	s := New(inner, WithRegistry(reg)) // no cache: dedup alone must carry this
	ctx := context.Background()

	const n = 32
	type answer struct {
		res  *sparql.Results
		meta endpoint.QueryMeta
		err  error
	}
	answers := make([]answer, n)
	var wg sync.WaitGroup

	// The leader goes first and is held in flight by the injected
	// latency; the 31 duplicates arrive while it runs.
	leaderIn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderIn)
		res, meta, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
		answers[0] = answer{res, meta, err}
	}()
	<-leaderIn
	time.Sleep(50 * time.Millisecond)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, meta, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
			answers[i] = answer{res, meta, err}
		}(i)
	}
	wg.Wait()

	if got := inner.n.Load(); got != 1 {
		t.Fatalf("engine executed %d times, want exactly 1", got)
	}
	first := encode(t, answers[0].res)
	var coalesced int
	for i, a := range answers {
		if a.err != nil {
			t.Fatalf("request %d: %v", i, a.err)
		}
		if a.meta.Coalesced {
			coalesced++
		}
		if !bytes.Equal(encode(t, a.res), first) {
			t.Errorf("request %d answer diverges from the leader's", i)
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d requests coalesced, want %d", coalesced, n-1)
	}
	if v := reg.Counter("re2xolap_serve_coalesced_total", "").Value(); v != n-1 {
		t.Errorf("coalesced counter = %d, want %d", v, n-1)
	}
	if v := reg.Counter("re2xolap_serve_executions_total", "").Value(); v != 1 {
		t.Errorf("executions counter = %d, want 1", v)
	}
}

// TestSingleFlightDistinctQueriesDoNotCoalesce: dedup keys on the
// canonical query, so different queries run independently.
func TestSingleFlightDistinctQueriesDoNotCoalesce(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 50 * time.Millisecond})
	inner := &countingClient{inner: fault}
	s := New(inner)
	ctx := context.Background()

	var wg sync.WaitGroup
	queries := []string{
		`SELECT ?v WHERE { <http://t/s0> <http://t/value> ?v }`,
		`SELECT ?v WHERE { <http://t/s1> <http://t/value> ?v }`,
	}
	for _, q := range queries {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			if _, meta, err := s.QueryX(ctx, endpoint.Request{Query: q}); err != nil {
				t.Error(err)
			} else if meta.Coalesced {
				t.Error("distinct query was coalesced")
			}
		}(q)
	}
	wg.Wait()
	if got := inner.n.Load(); got != 2 {
		t.Errorf("engine executed %d times, want 2", got)
	}
}

// TestSingleFlightDuplicateHonorsOwnContext: a duplicate whose context
// expires abandons the wait with its own context error; the leader is
// unaffected.
func TestSingleFlightDuplicateHonorsOwnContext(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 200 * time.Millisecond})
	s := New(fault)
	ctx := context.Background()

	leaderIn := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		close(leaderIn)
		_, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
		leaderDone <- err
	}()
	<-leaderIn
	time.Sleep(30 * time.Millisecond)

	dupCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	_, _, err := s.QueryX(dupCtx, endpoint.Request{Query: valueQuery})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("abandoning duplicate: got %v, want deadline exceeded", err)
	}
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed after duplicate abandoned: %v", err)
	}
}

package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// iri abbreviates test IRIs.
func iri(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

// newTestStore builds a small deterministic store.
func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i := 0; i < 6; i++ {
		if err := st.Add(rdf.Triple{
			S: iri(fmt.Sprintf("s%d", i)), P: iri("value"), O: rdf.NewInteger(int64(i * 10)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

const valueQuery = `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`

// countingClient counts how many queries reach the inner client —
// the "engine executions" oracle for cache and single-flight tests.
type countingClient struct {
	inner endpoint.Client
	n     atomic.Int64
}

func (c *countingClient) Query(ctx context.Context, q string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, endpoint.Request{Query: q})
	return res, err
}

func (c *countingClient) QueryX(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	c.n.Add(1)
	return endpoint.QueryX(ctx, c.inner, req)
}

func (c *countingClient) Unwrap() endpoint.Client { return c.inner }

// encode serializes a result set the way the HTTP layer would.
func encode(t *testing.T, res *sparql.Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := endpoint.EncodeResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCacheHitByteIdentical(t *testing.T) {
	st := newTestStore(t)
	inner := &countingClient{inner: endpoint.NewInProcess(st)}
	reg := obs.NewRegistry()
	s := New(inner, WithResultCache(16), WithRegistry(reg))
	ctx := context.Background()

	res1, meta1, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if meta1.CacheHit {
		t.Error("cold query reported a cache hit")
	}
	res2, meta2, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.CacheHit {
		t.Error("warm query did not report a cache hit")
	}
	if got, want := encode(t, res2), encode(t, res1); !bytes.Equal(got, want) {
		t.Errorf("cached answer not byte-identical:\n%s\nvs\n%s", got, want)
	}
	if n := inner.n.Load(); n != 1 {
		t.Errorf("inner client executed %d times, want 1", n)
	}
	if v := reg.Counter("re2xolap_result_cache_hits_total", "").Value(); v != 1 {
		t.Errorf("hits counter = %d, want 1", v)
	}
	if v := reg.Counter("re2xolap_result_cache_misses_total", "").Value(); v != 1 {
		t.Errorf("misses counter = %d, want 1", v)
	}
	if meta2.Generation == 0 || meta2.Generation != meta1.Generation {
		t.Errorf("generation not propagated: cold %d, warm %d", meta1.Generation, meta2.Generation)
	}
}

// TestCanonicalVariantsShareEntry: formatting variants of the same
// query hit one cache entry (the key is the canonical print).
func TestCanonicalVariantsShareEntry(t *testing.T) {
	st := newTestStore(t)
	inner := &countingClient{inner: endpoint.NewInProcess(st)}
	s := New(inner, WithResultCache(16))
	ctx := context.Background()

	variant := "SELECT  ?s   ?v\nWHERE {\n  ?s <http://t/value> ?v\n}\nORDER BY ?s"
	res1, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	res2, meta2, err := s.QueryX(ctx, endpoint.Request{Query: variant})
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.CacheHit {
		t.Error("whitespace variant missed the cache")
	}
	if !bytes.Equal(encode(t, res1), encode(t, res2)) {
		t.Error("variant answer differs from original")
	}
	if n := inner.n.Load(); n != 1 {
		t.Errorf("inner client executed %d times, want 1", n)
	}
}

// TestGenerationInvalidation: a mutation between queries must yield a
// fresh answer, not the cached stale one.
func TestGenerationInvalidation(t *testing.T) {
	st := newTestStore(t)
	inner := &countingClient{inner: endpoint.NewInProcess(st)}
	s := New(inner, WithResultCache(16))
	ctx := context.Background()

	res1, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(rdf.Triple{S: iri("s9"), P: iri("value"), O: rdf.NewInteger(999)}); err != nil {
		t.Fatal(err)
	}
	res2, meta2, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if meta2.CacheHit {
		t.Error("query after mutation served from cache")
	}
	if res2.Len() != res1.Len()+1 {
		t.Errorf("post-mutation rows = %d, want %d", res2.Len(), res1.Len()+1)
	}
	if n := inner.n.Load(); n != 2 {
		t.Errorf("inner client executed %d times, want 2", n)
	}
	// And the fresh answer is itself cached under the new generation.
	_, meta3, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !meta3.CacheHit {
		t.Error("post-mutation answer was not re-cached")
	}
}

// TestProfileAndUnparseableBypassCache: profile requests and queries
// that fail to parse must always reach the inner client.
func TestProfileAndUnparseableBypassCache(t *testing.T) {
	st := newTestStore(t)
	inner := &countingClient{inner: endpoint.NewInProcess(st)}
	s := New(inner, WithResultCache(16))
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		_, meta, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery, Opts: endpoint.QueryOpts{Profile: true}})
		if err != nil {
			t.Fatal(err)
		}
		if meta.CacheHit {
			t.Error("profile request served from cache")
		}
		if meta.Profile == nil {
			t.Error("profile request lost its profile")
		}
	}
	if n := inner.n.Load(); n != 2 {
		t.Errorf("profile requests executed %d times, want 2", n)
	}

	if _, _, err := s.QueryX(ctx, endpoint.Request{Query: "NOT SPARQL AT ALL"}); err == nil {
		t.Error("unparseable query did not error")
	}
	if _, _, err := s.QueryX(ctx, endpoint.Request{Query: "NOT SPARQL AT ALL"}); err == nil {
		t.Error("unparseable query did not error on repeat")
	}
	if n := inner.n.Load(); n != 4 {
		t.Errorf("executions after unparseable queries = %d, want 4", n)
	}
}

// TestErrorsNotCached: a failing execution leaves no cache entry.
func TestErrorsNotCached(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Down: true})
	inner := &countingClient{inner: fault}
	s := New(inner, WithResultCache(16))
	ctx := context.Background()

	if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err == nil {
		t.Fatal("down backend did not error")
	}
	fault.SetDown(false)
	_, meta, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	if err != nil {
		t.Fatal(err)
	}
	if meta.CacheHit {
		t.Error("recovered query hit a cache entry left by a failure")
	}
	if n := inner.n.Load(); n != 2 {
		t.Errorf("inner client executed %d times, want 2", n)
	}
}

// TestCacheEviction: the cache stays within its bound and counts
// evictions.
func TestCacheEviction(t *testing.T) {
	st := newTestStore(t)
	reg := obs.NewRegistry()
	s := New(endpoint.NewInProcess(st), WithResultCache(2), WithRegistry(reg))
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		q := fmt.Sprintf(`SELECT ?v WHERE { <http://t/s%d> <http://t/value> ?v }`, i)
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.cache.len(); n != 2 {
		t.Errorf("cache occupancy = %d, want 2", n)
	}
	if v := reg.Counter("re2xolap_result_cache_evictions_total", "").Value(); v != 2 {
		t.Errorf("evictions counter = %d, want 2", v)
	}
}

// TestHTTPEndToEnd: the stack behind a real endpoint.Server — cache
// state surfaces in the X-Re2xolap-Cache header and bodies stay
// byte-identical.
func TestHTTPEndToEnd(t *testing.T) {
	st := newTestStore(t)
	stack := New(endpoint.NewInProcess(st), WithResultCache(16))
	srv := httptest.NewServer(endpoint.NewClientServer(stack))
	defer srv.Close()

	get := func() (string, []byte) {
		resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(valueQuery))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get(endpoint.GenerationHeader) == "" {
			t.Error("missing generation header")
		}
		return resp.Header.Get(endpoint.CacheHeader), body
	}

	state1, body1 := get()
	if state1 != "" {
		t.Errorf("cold response cache header = %q, want empty", state1)
	}
	state2, body2 := get()
	if state2 != "hit" {
		t.Errorf("warm response cache header = %q, want %q", state2, "hit")
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("HTTP bodies differ:\n%s\nvs\n%s", body1, body2)
	}
}

// TestHTTPShedding: an overloaded stack surfaces as 429 + Retry-After.
func TestHTTPShedding(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 300 * time.Millisecond})
	stack := New(fault,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 1}),
		WithoutSingleFlight())
	srv := httptest.NewServer(endpoint.NewClientServer(stack))
	defer srv.Close()

	// Distinct queries so single-flight semantics could never mask the
	// load; 6 concurrent requests against 1 slot + 1 queue spot.
	const n = 6
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT ?v WHERE { <http://t/s%d> <http://t/value> ?v }`, i)
			resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under load")
	}
	if shed == 0 {
		t.Errorf("no request was shed (codes %v)", codes)
	}
}

// TestTenantHeaderIsolation: tenants get independent admission
// budgets, keyed off the configured header.
func TestTenantHeaderIsolation(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{})
	stack := New(fault,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 1}),
		WithoutSingleFlight())
	srv := httptest.NewServer(endpoint.NewClientServer(stack, endpoint.WithTenantHeader("X-Tenant")))
	defer srv.Close()

	// Saturate tenant A: one slow query holds its only slot, one more
	// fills its queue.
	fault.SetLatency(400 * time.Millisecond)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT ?v WHERE { <http://t/s%d> <http://t/value> ?v }`, i)
			req, _ := http.NewRequest("GET", srv.URL+"/sparql?query="+url.QueryEscape(q), nil)
			req.Header.Set("X-Tenant", "a")
			if i == 0 {
				close(release)
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	<-release
	time.Sleep(50 * time.Millisecond) // let tenant A saturate

	// Tenant B must be admitted immediately despite A's full queue.
	fault.SetLatency(-1)
	req, _ := http.NewRequest("GET", srv.URL+"/sparql?query="+url.QueryEscape(valueQuery), nil)
	req.Header.Set("X-Tenant", "b")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tenant b status %d, want 200", resp.StatusCode)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("tenant b waited %s behind tenant a's queue", d)
	}
	wg.Wait()
}

// TestQueueWaitReported: a request that queued reports its wait in
// QueryMeta.
func TestQueueWaitReported(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 150 * time.Millisecond})
	s := New(fault,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 4}),
		WithoutSingleFlight())
	ctx := context.Background()

	started := make(chan struct{})
	go func() {
		close(started)
		s.QueryX(ctx, endpoint.Request{Query: valueQuery})
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // the slot is now held
	q2 := `SELECT ?v WHERE { <http://t/s1> <http://t/value> ?v }`
	_, meta, err := s.QueryX(ctx, endpoint.Request{Query: q2})
	if err != nil {
		t.Fatal(err)
	}
	if meta.QueueWait <= 0 {
		t.Errorf("queued request reports QueueWait = %s, want > 0", meta.QueueWait)
	}
}

// TestAdmissionQueueFullShed: requests beyond the queue budget fail
// fast with the overload taxonomy class.
func TestAdmissionQueueFullShed(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 300 * time.Millisecond})
	reg := obs.NewRegistry()
	s := New(fault,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 1}),
		WithoutSingleFlight(), WithRegistry(reg))
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT ?v WHERE { <http://t/s%d> <http://t/value> ?v }`, i%6)
			_, _, errs[i] = s.QueryX(ctx, endpoint.Request{Query: q})
		}(i)
	}
	wg.Wait()
	var shed int
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, endpoint.ErrOverloaded) {
			t.Errorf("shed error lacks ErrOverloaded: %v", err)
		}
		if !errors.Is(err, endpoint.ErrRetryable) {
			t.Errorf("shed error lacks ErrRetryable: %v", err)
		}
		if !strings.Contains(err.Error(), "queue full") {
			t.Errorf("unexpected shed reason: %v", err)
		}
		shed++
	}
	if shed == 0 {
		t.Error("no request was shed")
	}
	if v := reg.Counter("re2xolap_serve_shed_total", "", obs.L("reason", "queue_full"), obs.L("tenant", "default")).Value(); v != int64(shed) {
		t.Errorf("shed counter = %d, want %d", v, shed)
	}
}

// TestAdmissionDeadlineShed: a queued request whose deadline the
// service-time EWMA predicts it cannot meet is rejected immediately
// instead of timing out in the queue.
func TestAdmissionDeadlineShed(t *testing.T) {
	st := newTestStore(t)
	fault := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Latency: 150 * time.Millisecond})
	s := New(fault,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 8}),
		WithoutSingleFlight())
	ctx := context.Background()

	// Warm the EWMA with one solo query (~150ms service time).
	if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err != nil {
		t.Fatal(err)
	}

	// Hold the only slot...
	started := make(chan struct{})
	go func() {
		close(started)
		s.QueryX(ctx, endpoint.Request{Query: `SELECT ?v WHERE { <http://t/s1> <http://t/value> ?v }`})
	}()
	<-started
	time.Sleep(30 * time.Millisecond)

	// ...then ask with a deadline far below the predicted ~150ms wait.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := s.QueryX(shortCtx, endpoint.Request{Query: `SELECT ?v WHERE { <http://t/s2> <http://t/value> ?v }`})
	if !errors.Is(err, endpoint.ErrOverloaded) {
		t.Fatalf("want deadline shed (ErrOverloaded), got %v", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("unexpected shed reason: %v", err)
	}
	// The point of predictive shedding: the rejection is immediate,
	// not after burning the 20ms budget in the queue.
	if d := time.Since(start); d > 15*time.Millisecond {
		t.Errorf("deadline shed took %s, want immediate", d)
	}
}

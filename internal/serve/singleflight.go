package serve

import (
	"context"
	"sync"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
)

// flightCall is one in-flight execution duplicates attach to.
type flightCall struct {
	done chan struct{} // closed when the leader finishes
	res  *sparql.Results
	meta endpoint.QueryMeta
	err  error
}

// flightGroup coalesces concurrent identical work: the first caller
// for a key becomes the leader and executes; callers arriving while
// the leader is in flight wait for its answer instead of executing
// again. There is no cross-call memory — once the leader finishes and
// the call is forgotten, the next caller leads a fresh execution (the
// result cache, not the flight group, carries answers across time).
// Hand-rolled because the module has no dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do runs fn under key, coalescing concurrent duplicates. The second
// return reports whether this caller led the execution (false = it
// received the leader's shared answer). A duplicate whose own context
// ends first abandons the wait and returns the context error; the
// leader is unaffected.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*sparql.Results, endpoint.QueryMeta, error)) (*sparql.Results, endpoint.QueryMeta, bool, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.meta, false, c.err
		case <-ctx.Done():
			return nil, endpoint.QueryMeta{}, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.meta, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.meta, true, c.err
}

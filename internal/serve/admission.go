package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
)

// AdmissionConfig tunes per-tenant admission control. The zero value
// of a field takes its documented default; a zero-value config as a
// whole is usable.
type AdmissionConfig struct {
	// MaxConcurrent bounds concurrently executing queries per tenant;
	// <= 0 means DefaultMaxConcurrent.
	MaxConcurrent int
	// QueueBudget bounds how many requests per tenant may wait for an
	// execution slot; a request arriving to a full queue is shed
	// immediately (reason "queue_full"). <= 0 means DefaultQueueBudget.
	QueueBudget int
	// DefaultTenant buckets requests that carry no tenant identity;
	// "" means "default".
	DefaultTenant string
}

// Admission defaults.
const (
	DefaultMaxConcurrent = 16
	DefaultQueueBudget   = 64
)

// ewmaAlpha weights the newest service-time sample in the per-tenant
// moving average the deadline-aware shedder predicts queue wait from.
const ewmaAlpha = 0.2

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	sem    chan struct{} // buffered; a token = one execution slot
	queued atomic.Int64  // callers blocked waiting for a slot
	// ewmaNanos is the smoothed per-query service time; 0 until the
	// first sample lands (the shedder then cannot predict and admits).
	ewmaNanos atomic.Int64
}

// admission implements per-tenant concurrency limits, bounded FIFO
// queueing, and deadline-aware shedding. Shed requests fail with
// endpoint.ErrOverloaded (retryable; the HTTP server maps it to
// 429 + Retry-After) without consuming an execution slot.
type admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	tenants map[string]*tenantState

	// sheds counts rejections across tenants and reasons (the
	// dashboard's aggregate; per-reason/tenant breakdown lives in the
	// registry counters).
	sheds atomic.Int64

	m *metrics
}

func newAdmission(cfg AdmissionConfig, m *metrics) *admission {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.QueueBudget <= 0 {
		cfg.QueueBudget = DefaultQueueBudget
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	return &admission{cfg: cfg, tenants: make(map[string]*tenantState), m: m}
}

// state returns (lazily creating) the tenant's bookkeeping.
func (a *admission) state(tenant string) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts, ok := a.tenants[tenant]
	if !ok {
		ts = &tenantState{sem: make(chan struct{}, a.cfg.MaxConcurrent)}
		a.tenants[tenant] = ts
	}
	return ts
}

// queueDepth sums queued callers across tenants (the exported gauge).
func (a *admission) queueDepth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, ts := range a.tenants {
		n += ts.queued.Load()
	}
	return n
}

// acquire admits one request for the tenant from ctx, blocking in the
// tenant's FIFO queue when all execution slots are busy. It returns
// the time spent queued. Shedding happens in two places, both before
// any waiting that cannot pay off: when the queue is at its budget
// ("queue_full"), and when the service-time EWMA predicts the queue
// wait alone would exceed the request's deadline ("deadline" — reject
// now so the caller can retry elsewhere instead of timing out here).
func (a *admission) acquire(ctx context.Context) (release func(), queueWait time.Duration, err error) {
	tenant := endpoint.TenantFrom(ctx)
	if tenant == "" {
		tenant = a.cfg.DefaultTenant
	}
	ts := a.state(tenant)

	done := func() func() {
		start := time.Now()
		return func() {
			// Service time feeds the EWMA the shedder predicts with.
			sample := time.Since(start).Nanoseconds()
			for {
				old := ts.ewmaNanos.Load()
				var next int64
				if old == 0 {
					next = sample
				} else {
					next = old + int64(ewmaAlpha*float64(sample-old))
				}
				if ts.ewmaNanos.CompareAndSwap(old, next) {
					break
				}
			}
			<-ts.sem
		}
	}

	// Fast path: a free slot means no queueing and no shedding.
	select {
	case ts.sem <- struct{}{}:
		return done(), 0, nil
	default:
	}

	queued := ts.queued.Add(1)
	defer ts.queued.Add(-1)
	if queued > int64(a.cfg.QueueBudget) {
		a.sheds.Add(1)
		a.m.shed("queue_full", tenant)
		return nil, 0, endpoint.MarkOverloaded(fmt.Errorf(
			"serve: tenant %q queue full (%d waiting, budget %d)", tenant, queued-1, a.cfg.QueueBudget))
	}
	if deadline, ok := ctx.Deadline(); ok {
		if ewma := ts.ewmaNanos.Load(); ewma > 0 {
			// Everyone ahead (queued-1 callers plus MaxConcurrent
			// executors) must finish before this request runs; slots
			// drain in parallel, so the predicted wait is the queue
			// position in units of full drain rounds.
			rounds := (queued + int64(a.cfg.MaxConcurrent) - 1) / int64(a.cfg.MaxConcurrent)
			predicted := time.Duration(ewma * rounds)
			if remaining := time.Until(deadline); predicted > remaining {
				a.sheds.Add(1)
				a.m.shed("deadline", tenant)
				return nil, 0, endpoint.MarkOverloaded(fmt.Errorf(
					"serve: tenant %q predicted queue wait %s exceeds deadline budget %s",
					tenant, predicted.Round(time.Millisecond), remaining.Round(time.Millisecond)))
			}
		}
	}

	wait := time.Now()
	select {
	case ts.sem <- struct{}{}:
		queueWait = time.Since(wait)
		a.m.observeQueueWait(queueWait, tenant)
		return done(), queueWait, nil
	case <-ctx.Done():
		return nil, time.Since(wait), ctx.Err()
	}
}

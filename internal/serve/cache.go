package serve

import (
	"container/list"
	"strconv"
	"sync"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
)

// lru is a bounded least-recently-used map. It is the storage behind
// both the result cache and the canonical-text memo. Safe for
// concurrent use.
type lru struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

// lruEntry is one occupant: the key rides along so eviction can delete
// the map slot.
type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lru {
	if max <= 0 {
		max = 1
	}
	return &lru{max: max, m: make(map[string]*list.Element), l: list.New()}
}

// get returns the value and refreshes recency.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// put inserts or refreshes key and returns how many entries were
// evicted to stay within the bound (0 or 1).
func (c *lru) put(key string, val any) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry).val = val
		c.l.MoveToFront(e)
		return 0
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, val: val})
	if c.l.Len() <= c.max {
		return 0
	}
	oldest := c.l.Back()
	c.l.Remove(oldest)
	delete(c.m, oldest.Value.(*lruEntry).key)
	return 1
}

// len returns the current occupancy.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

// cachedAnswer is one result-cache occupant: the shared (immutable by
// contract) result set plus the execution metadata template hits are
// derived from. The same pointer serves every hit, which is what makes
// cached answers byte-identical to the original execution.
type cachedAnswer struct {
	res  *sparql.Results
	meta endpoint.QueryMeta
}

// cacheKey builds the result-cache key: canonical query text scoped by
// the store generation, so a mutation (which advances the generation)
// orphans every entry cached under the old one — natural invalidation
// with no cross-process coordination. Orphaned entries age out of the
// LRU.
func cacheKey(canonical string, gen uint64) string {
	return strconv.FormatUint(gen, 36) + "\x00" + canonical
}

package serve

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"re2xolap/internal/corpus"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/shard"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// encodeAny serializes like the protocol layer: SPARQL JSON for
// SELECT/ASK, N-Triples for CONSTRUCT.
func encodeAny(t *testing.T, res *sparql.Results) []byte {
	t.Helper()
	if res.IsConstruct {
		var buf bytes.Buffer
		for _, tr := range res.Triples {
			fmt.Fprintf(&buf, "%s %s %s .\n", tr.S, tr.P, tr.O)
		}
		return buf.Bytes()
	}
	return encode(t, res)
}

// corpusBackends builds the two acceptance topologies over the shared
// determinism dataset: a single in-process node and a 3-shard
// coordinator.
func corpusBackends(t *testing.T) map[string]func() endpoint.Client {
	t.Helper()
	ts := corpus.Triples()
	return map[string]func() endpoint.Client{
		"1-node": func() endpoint.Client {
			st := store.New()
			if err := st.AddAll(ts); err != nil {
				t.Fatal(err)
			}
			return endpoint.NewInProcess(st)
		},
		"3-shard": func() endpoint.Client {
			parts := shard.Partitioner{N: 3}.Split(ts)
			backends := make([]endpoint.Client, 3)
			for i := range backends {
				st := store.New()
				if err := st.AddAll(parts[i]); err != nil {
					t.Fatal(err)
				}
				backends[i] = endpoint.NewInProcess(st)
			}
			c, err := shard.New(backends, shard.WithConfig(shard.Config{}))
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
}

// TestCorpusCacheByteIdentical is the cache acceptance test: over the
// full 33-query determinism corpus, on both a single node and a
// 3-shard topology, the cached stack's cold answer, its warm (cache
// hit) answer, and the uncached baseline are byte-identical.
func TestCorpusCacheByteIdentical(t *testing.T) {
	ctx := context.Background()
	for topo, mk := range corpusBackends(t) {
		t.Run(topo, func(t *testing.T) {
			baseline := mk()
			stack := New(mk(), WithResultCache(64))
			for _, cq := range corpus.Queries() {
				t.Run(cq.Name, func(t *testing.T) {
					want, _, err := endpoint.QueryX(ctx, baseline, endpoint.Request{Query: cq.Query})
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					cold, coldMeta, err := stack.QueryX(ctx, endpoint.Request{Query: cq.Query})
					if err != nil {
						t.Fatalf("cold: %v", err)
					}
					if coldMeta.CacheHit {
						t.Error("cold run reported a cache hit")
					}
					warm, warmMeta, err := stack.QueryX(ctx, endpoint.Request{Query: cq.Query})
					if err != nil {
						t.Fatalf("warm: %v", err)
					}
					if !warmMeta.CacheHit {
						t.Error("warm run missed the cache")
					}
					wantB := encodeAny(t, want)
					if coldB := encodeAny(t, cold); !bytes.Equal(coldB, wantB) {
						t.Errorf("cold answer diverges from uncached baseline:\n%s\nvs\n%s", coldB, wantB)
					}
					if warmB := encodeAny(t, warm); !bytes.Equal(warmB, wantB) {
						t.Errorf("warm answer diverges from uncached baseline:\n%s\nvs\n%s", warmB, wantB)
					}
				})
			}
		})
	}
}

// TestCorpusInvalidationAcrossTopologies: a mutation on any backing
// store must invalidate the whole corpus's cached answers — the
// single-node stack sees the store generation, the shard stack the
// coordinator's composed token.
func TestCorpusInvalidationAcrossTopologies(t *testing.T) {
	ctx := context.Background()
	probe := rdf.Triple{
		S: rdf.NewIRI("http://t/obs0"), P: rdf.NewIRI("http://t/region"), O: rdf.NewIRI("http://t/r3"),
	}
	query := `SELECT ?r WHERE { <http://t/obs0> <http://t/region> ?r } ORDER BY ?r`

	ts := corpus.Triples()

	t.Run("1-node", func(t *testing.T) {
		st := store.New()
		if err := st.AddAll(ts); err != nil {
			t.Fatal(err)
		}
		stack := New(endpoint.NewInProcess(st), WithResultCache(64))
		res1, _, err := stack.QueryX(ctx, endpoint.Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(probe); err != nil {
			t.Fatal(err)
		}
		res2, meta2, err := stack.QueryX(ctx, endpoint.Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if meta2.CacheHit {
			t.Error("post-mutation query served from cache")
		}
		if res2.Len() != res1.Len()+1 {
			t.Errorf("post-mutation rows = %d, want %d", res2.Len(), res1.Len()+1)
		}
	})

	t.Run("3-shard", func(t *testing.T) {
		parts := shard.Partitioner{N: 3}.Split(ts)
		stores := make([]*store.Store, 3)
		backends := make([]endpoint.Client, 3)
		for i := range backends {
			stores[i] = store.New()
			if err := stores[i].AddAll(parts[i]); err != nil {
				t.Fatal(err)
			}
			backends[i] = endpoint.NewInProcess(stores[i])
		}
		coord, err := shard.New(backends, shard.WithConfig(shard.Config{}))
		if err != nil {
			t.Fatal(err)
		}
		stack := New(coord, WithResultCache(64))
		res1, _, err := stack.QueryX(ctx, endpoint.Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		// Mutate whichever shard owns the probe subject — the
		// partitioner routes by subject, so add it everywhere it
		// belongs via the same partitioner.
		probeShard := shard.Partitioner{N: 3}.Shard(probe.S)
		if err := stores[probeShard].Add(probe); err != nil {
			t.Fatal(err)
		}
		res2, meta2, err := stack.QueryX(ctx, endpoint.Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if meta2.CacheHit {
			t.Error("post-mutation query served from cache (coordinator generation did not move)")
		}
		if res2.Len() != res1.Len()+1 {
			t.Errorf("post-mutation rows = %d, want %d", res2.Len(), res1.Len()+1)
		}
	})
}

package serve

import (
	"time"

	"re2xolap/internal/obs"
)

// shedReasons is the label vocabulary of the shed counter.
var shedReasons = [...]string{"queue_full", "deadline"}

// metrics is the serve stack's registry series, created once at
// construction. A nil *metrics (registry absent) disables everything
// through the obs nil fast path — every method is nil-safe.
type metrics struct {
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	coalesced      *obs.Counter
	executions     *obs.Counter
	queueWait      *obs.Histogram
	sheds          map[string]*obs.Counter // by reason
}

// newMetrics registers the serve series. The occupancy and queue-depth
// gauges sample the stack directly at exposition time, so they are
// registered by the Stack after construction (it owns the sampled
// state).
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		cacheHits: reg.Counter("re2xolap_result_cache_hits_total",
			"Queries answered from the result cache without executing."),
		cacheMisses: reg.Counter("re2xolap_result_cache_misses_total",
			"Cache-eligible queries that were not in the result cache."),
		cacheEvictions: reg.Counter("re2xolap_result_cache_evictions_total",
			"Result-cache entries evicted to stay within the size bound."),
		coalesced: reg.Counter("re2xolap_serve_coalesced_total",
			"Requests deduplicated onto a concurrent identical execution."),
		executions: reg.Counter("re2xolap_serve_executions_total",
			"Queries the serve stack actually forwarded to the inner client."),
		queueWait: reg.Histogram("re2xolap_serve_queue_wait_seconds",
			"Time admitted requests spent queued for an execution slot.", nil),
		sheds: make(map[string]*obs.Counter, len(shedReasons)),
	}
	for _, reason := range shedReasons {
		m.sheds[reason] = reg.Counter("re2xolap_serve_shed_total",
			"Requests rejected by admission control, by reason.", obs.L("reason", reason))
	}
	return m
}

func (m *metrics) hit() {
	if m != nil {
		m.cacheHits.Inc()
	}
}

func (m *metrics) miss() {
	if m != nil {
		m.cacheMisses.Inc()
	}
}

func (m *metrics) evicted(n int) {
	if m != nil && n > 0 {
		m.cacheEvictions.Add(int64(n))
	}
}

func (m *metrics) coalesce() {
	if m != nil {
		m.coalesced.Inc()
	}
}

func (m *metrics) execute() {
	if m != nil {
		m.executions.Inc()
	}
}

func (m *metrics) observeQueueWait(d time.Duration) {
	if m != nil {
		m.queueWait.ObserveDuration(d)
	}
}

func (m *metrics) shed(reason string) {
	if m != nil {
		m.sheds[reason].Inc()
	}
}

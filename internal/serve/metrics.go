package serve

import (
	"time"

	"re2xolap/internal/obs"
)

// shedReasons is the label vocabulary of the shed counter's reason
// dimension.
var shedReasons = [...]string{"queue_full", "deadline"}

// metrics is the serve stack's registry series, created once at
// construction. A nil *metrics (registry absent) disables everything
// through the obs nil fast path — every method is nil-safe. The
// tenant-labeled series (sheds, queue wait) are created lazily per
// tenant through the registry (which dedupes by name+labels); the
// shared interner bounds their cardinality.
type metrics struct {
	reg   *obs.Registry
	names *tenantNames

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	coalesced      *obs.Counter
	executions     *obs.Counter
}

// newMetrics registers the serve series. The occupancy and queue-depth
// gauges sample the stack directly at exposition time, so they are
// registered by the Stack after construction (it owns the sampled
// state). names is the tenant interner shared with the SLO tracker.
func newMetrics(reg *obs.Registry, names *tenantNames) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		reg:   reg,
		names: names,
		cacheHits: reg.Counter("re2xolap_result_cache_hits_total",
			"Queries answered from the result cache without executing."),
		cacheMisses: reg.Counter("re2xolap_result_cache_misses_total",
			"Cache-eligible queries that were not in the result cache."),
		cacheEvictions: reg.Counter("re2xolap_result_cache_evictions_total",
			"Result-cache entries evicted to stay within the size bound."),
		coalesced: reg.Counter("re2xolap_serve_coalesced_total",
			"Requests deduplicated onto a concurrent identical execution."),
		executions: reg.Counter("re2xolap_serve_executions_total",
			"Queries the serve stack actually forwarded to the inner client."),
	}
	return m
}

func (m *metrics) hit() {
	if m != nil {
		m.cacheHits.Inc()
	}
}

func (m *metrics) miss() {
	if m != nil {
		m.cacheMisses.Inc()
	}
}

func (m *metrics) evicted(n int) {
	if m != nil && n > 0 {
		m.cacheEvictions.Add(int64(n))
	}
}

func (m *metrics) coalesce() {
	if m != nil {
		m.coalesced.Inc()
	}
}

func (m *metrics) execute() {
	if m != nil {
		m.executions.Inc()
	}
}

// observeQueueWait records one admitted request's queue time on the
// tenant's wait histogram. This runs only on the slow (queued) path,
// so the registry lookup (a map read after the first call per tenant)
// is off the fast path.
func (m *metrics) observeQueueWait(d time.Duration, tenant string) {
	if m != nil {
		m.reg.Histogram("re2xolap_serve_queue_wait_seconds",
			"Time admitted requests spent queued for an execution slot, by tenant.", nil,
			obs.L("tenant", m.names.intern(tenant))).ObserveDuration(d)
	}
}

// shed counts one admission rejection, attributed to reason and
// tenant (reason ∈ shedReasons; tenant is interned to the bounded
// label set).
func (m *metrics) shed(reason, tenant string) {
	if m != nil {
		m.reg.Counter("re2xolap_serve_shed_total",
			"Requests rejected by admission control, by reason and tenant.",
			obs.L("reason", reason), obs.L("tenant", m.names.intern(tenant))).Inc()
	}
}

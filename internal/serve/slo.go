package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"re2xolap/internal/obs"
)

// SLO defaults.
const (
	// DefaultMaxTenants bounds the tenant label cardinality shared by
	// the SLO tracker and the tenant-labeled admission metrics; tenants
	// past the bound are folded into OverflowTenant.
	DefaultMaxTenants = 64
	// OverflowTenant absorbs tenants beyond the cardinality bound.
	OverflowTenant = "other"
)

// maxBurnBudgetFloor keeps burn rates finite (and JSON-encodable) for
// degenerate objectives with a zero error budget (target = 100%).
const maxBurnBudgetFloor = 1e-9

// Objective is one service-level objective: either a latency
// objective ("p99<250ms": 99% of requests complete within 250ms) or
// an error-rate objective ("err<1%": at most 1% of requests fail).
type Objective struct {
	// Name is the canonical spelling, e.g. "p99<250ms" or "err<1%";
	// it is the `objective` label on the burn-rate gauges.
	Name string
	// Latency is the per-request threshold for latency objectives;
	// zero marks an error-rate objective.
	Latency time.Duration
	// Target is the good-event fraction the objective demands, in
	// (0, 1): 0.99 for "p99<250ms", 0.99 for "err<1%".
	Target float64
}

// Kind reports "latency" or "error_rate".
func (o Objective) Kind() string {
	if o.Latency > 0 {
		return "latency"
	}
	return "error_rate"
}

// bad classifies one request outcome against the objective. Errors
// (including sheds) are bad events for every objective; latency
// objectives additionally count slow successes.
func (o Objective) bad(out Outcome) bool {
	if out.Err != nil {
		return true
	}
	return o.Latency > 0 && out.Wall > o.Latency
}

// ParseSLO parses a comma-separated objective list in the -slo flag
// syntax: latency terms "p<quantile><<duration>" (e.g. "p99<250ms",
// "p95<1s") and error-rate terms "err<<percent>%" (e.g. "err<1%",
// "err<0.5%").
func ParseSLO(s string) ([]Objective, error) {
	var out []Objective
	seen := make(map[string]bool)
	for _, term := range strings.Split(s, ",") {
		term = strings.ToLower(strings.TrimSpace(term))
		if term == "" {
			continue
		}
		left, right, ok := strings.Cut(term, "<")
		if !ok {
			return nil, fmt.Errorf("slo: term %q: want <objective><<threshold>", term)
		}
		obj := Objective{Name: left + "<" + right}
		switch {
		case left == "err":
			if !strings.HasSuffix(right, "%") {
				return nil, fmt.Errorf("slo: term %q: error-rate threshold must end in %%", term)
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(right, "%"), 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("slo: term %q: error rate must be a percent in (0, 100)", term)
			}
			obj.Target = 1 - pct/100
		case strings.HasPrefix(left, "p"):
			q, err := strconv.ParseFloat(left[1:], 64)
			if err != nil || q <= 0 || q >= 100 {
				return nil, fmt.Errorf("slo: term %q: quantile must be in (0, 100)", term)
			}
			d, err := time.ParseDuration(right)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo: term %q: bad latency threshold %q", term, right)
			}
			obj.Latency = d
			obj.Target = q / 100
		default:
			return nil, fmt.Errorf("slo: term %q: want pNN<duration or err<percent%%", term)
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
		seen[obj.Name] = true
		out = append(out, obj)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: no objectives in %q", s)
	}
	return out, nil
}

// SLOConfig configures per-tenant SLO tracking.
type SLOConfig struct {
	// Objectives to track; required (use ParseSLO for flag syntax).
	Objectives []Objective
	// MaxTenants bounds tenant cardinality across the burn-rate gauges
	// and the tenant-labeled admission metrics; <= 0 means
	// DefaultMaxTenants. The bound counts distinct tenants ever seen;
	// later tenants fold into OverflowTenant.
	MaxTenants int
}

// sloWindowSpec is one sliding window: n ring slots of bucket width.
// Multi-window burn rates follow the standard SRE practice: the short
// window answers "are we burning budget right now", the long windows
// answer "have we burned too much to ignore".
type sloWindowSpec struct {
	name   string
	bucket time.Duration
	n      int
}

// sloWindows are the tracked windows: 5m (30×10s), 1h (60×1m),
// 6h (72×5m).
var sloWindows = [...]sloWindowSpec{
	{"5m", 10 * time.Second, 30},
	{"1h", time.Minute, 60},
	{"6h", 5 * time.Minute, 72},
}

// sloSlot is one ring bucket: totals for one bucket-width time span.
// epoch is the absolute bucket index the slot currently holds (-1 =
// never written); a slot whose epoch has fallen out of the window is
// dead weight ignored by reads and recycled by the next write.
type sloSlot struct {
	epoch int64
	total int64
	bad   []int64 // by objective index
}

// sloWindow is one tenant × window ring.
type sloWindow struct {
	slots []sloSlot
}

// tenantSLO is one tenant's tracking state: the window rings plus
// cumulative attribution counters. One mutex per tenant keeps Record
// contention per-tenant, not global.
type tenantSLO struct {
	mu        sync.Mutex
	wins      [len(sloWindows)]sloWindow
	queries   int64
	errors    int64
	cacheHits int64
	coalesced int64
	sheds     int64
}

// Outcome is one request's result as seen at the top of the serving
// stack, the unit the SLO tracker records.
type Outcome struct {
	Wall      time.Duration
	Err       error
	CacheHit  bool
	Coalesced bool
	Shed      bool
}

// tenantNames is the bounded tenant interner shared by the SLO
// tracker and the tenant-labeled admission metrics, so both fold the
// same overflow tenants the same way and total label cardinality
// stays bounded no matter what tenant strings clients send.
type tenantNames struct {
	mu    sync.RWMutex
	max   int
	known map[string]struct{}
}

func newTenantNames(max int) *tenantNames {
	if max <= 0 {
		max = DefaultMaxTenants
	}
	return &tenantNames{max: max, known: make(map[string]struct{}, 8)}
}

// intern returns name if it is within the cardinality bound (claiming
// a slot on first sight), else OverflowTenant. The steady state (name
// already known) takes only the read lock.
func (n *tenantNames) intern(name string) string {
	if name == "" || name == OverflowTenant {
		return OverflowTenant
	}
	n.mu.RLock()
	_, ok := n.known[name]
	n.mu.RUnlock()
	if ok {
		return name
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.known[name]; ok {
		return name
	}
	if len(n.known) >= n.max {
		return OverflowTenant
	}
	n.known[name] = struct{}{}
	return name
}

// Tracker maintains per-tenant sliding-window SLIs and exposes
// multi-window burn rates as gauges
// (re2xolap_slo_burn_rate{tenant,objective,window}) plus a JSON
// report for /debug/slo. A burn rate of 1.0 means the tenant is
// consuming error budget exactly at the objective's sustainable rate;
// above 1 the budget is burning faster than the objective allows.
type Tracker struct {
	objectives []Objective
	reg        *obs.Registry
	names      *tenantNames
	now        func() time.Time

	mu      sync.RWMutex
	tenants map[string]*tenantSLO
}

// newTracker builds the tracker; names is the interner shared with
// the serve metrics (never nil here — the Stack builds it first).
func newTracker(cfg SLOConfig, reg *obs.Registry, names *tenantNames) *Tracker {
	return &Tracker{
		objectives: cfg.Objectives,
		reg:        reg,
		names:      names,
		now:        time.Now,
		tenants:    make(map[string]*tenantSLO),
	}
}

// Objectives returns the tracked objectives.
func (t *Tracker) Objectives() []Objective { return t.objectives }

// tenant returns (lazily creating) one tenant's state; creation
// registers the tenant's burn-rate gauges. The steady state (tenant
// already tracked) takes only the read lock.
func (t *Tracker) tenant(name string) *tenantSLO {
	t.mu.RLock()
	ts, ok := t.tenants[name]
	t.mu.RUnlock()
	if ok {
		return ts
	}
	t.mu.Lock()
	ts, ok = t.tenants[name]
	if !ok {
		ts = &tenantSLO{}
		for wi := range ts.wins {
			slots := make([]sloSlot, sloWindows[wi].n)
			for si := range slots {
				slots[si] = sloSlot{epoch: -1, bad: make([]int64, len(t.objectives))}
			}
			ts.wins[wi].slots = slots
		}
		t.tenants[name] = ts
	}
	t.mu.Unlock()
	if !ok && t.reg != nil {
		for oi, obj := range t.objectives {
			for wi, win := range sloWindows {
				oi, wi, ts := oi, wi, ts
				t.reg.GaugeFunc("re2xolap_slo_burn_rate",
					"Error-budget burn rate by tenant, objective, and window (1.0 = burning exactly at the sustainable rate).",
					func() float64 { return t.burn(ts, oi, wi) },
					obs.L("tenant", name), obs.L("objective", obj.Name), obs.L("window", win.name))
			}
		}
	}
	return ts
}

// Record folds one request outcome into the tenant's windows. The
// tenant string is raw (pre-interning); bounded cardinality is
// enforced here.
func (t *Tracker) Record(tenant string, out Outcome) {
	if t == nil {
		return
	}
	ts := t.tenant(t.names.intern(tenant))
	nowNs := t.now().UnixNano()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.queries++
	if out.Err != nil {
		ts.errors++
	}
	if out.CacheHit {
		ts.cacheHits++
	}
	if out.Coalesced {
		ts.coalesced++
	}
	if out.Shed {
		ts.sheds++
	}
	for wi := range ts.wins {
		spec := &sloWindows[wi]
		idx := nowNs / int64(spec.bucket)
		slot := &ts.wins[wi].slots[idx%int64(spec.n)]
		if slot.epoch != idx {
			slot.epoch, slot.total = idx, 0
			for oi := range slot.bad {
				slot.bad[oi] = 0
			}
		}
		slot.total++
		for oi := range t.objectives {
			if t.objectives[oi].bad(out) {
				slot.bad[oi]++
			}
		}
	}
}

// windowCounts sums one window's in-range slots; caller holds ts.mu.
func (t *Tracker) windowCounts(ts *tenantSLO, wi int, nowNs int64) (total int64, bad []int64) {
	spec := &sloWindows[wi]
	idx := nowNs / int64(spec.bucket)
	bad = make([]int64, len(t.objectives))
	for si := range ts.wins[wi].slots {
		slot := &ts.wins[wi].slots[si]
		if slot.epoch < 0 || idx-slot.epoch >= int64(spec.n) {
			continue
		}
		total += slot.total
		for oi := range bad {
			bad[oi] += slot.bad[oi]
		}
	}
	return total, bad
}

// burn computes one tenant × objective × window burn rate at gauge
// sample time: (bad fraction) / (error budget). Zero traffic in the
// window reads as zero burn.
func (t *Tracker) burn(ts *tenantSLO, oi, wi int) float64 {
	nowNs := t.now().UnixNano()
	ts.mu.Lock()
	total, bad := t.windowCounts(ts, wi, nowNs)
	ts.mu.Unlock()
	if total == 0 {
		return 0
	}
	budget := 1 - t.objectives[oi].Target
	if budget < maxBurnBudgetFloor {
		budget = maxBurnBudgetFloor
	}
	return (float64(bad[oi]) / float64(total)) / budget
}

// SLOObjectiveInfo describes one configured objective in the report.
type SLOObjectiveInfo struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"` // "latency" | "error_rate"
	Target    float64 `json:"target"`
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// SLOObjectiveReport is one objective's standing within one window.
type SLOObjectiveReport struct {
	Bad       int64   `json:"bad"`
	GoodRatio float64 `json:"good_ratio"`
	BurnRate  float64 `json:"burn_rate"`
}

// SLOWindowReport is one tenant × window slice of the report.
type SLOWindowReport struct {
	Total      int64                          `json:"total"`
	Objectives map[string]*SLOObjectiveReport `json:"objectives"`
}

// SLOTenantReport is one tenant's standing: cumulative attribution
// counters plus per-window objective status.
type SLOTenantReport struct {
	Queries       int64                       `json:"queries"`
	Errors        int64                       `json:"errors"`
	CacheHits     int64                       `json:"cache_hits"`
	Coalesced     int64                       `json:"coalesced"`
	Sheds         int64                       `json:"sheds"`
	CacheHitRatio float64                     `json:"cache_hit_ratio"`
	Windows       map[string]*SLOWindowReport `json:"windows"`
}

// SLOReport is the /debug/slo document.
type SLOReport struct {
	Objectives []SLOObjectiveInfo          `json:"objectives"`
	Windows    []string                    `json:"windows"`
	Tenants    map[string]*SLOTenantReport `json:"tenants"`
}

// Report assembles the current standing of every tenant.
func (t *Tracker) Report() SLOReport {
	rep := SLOReport{Tenants: make(map[string]*SLOTenantReport)}
	for _, obj := range t.objectives {
		info := SLOObjectiveInfo{Name: obj.Name, Kind: obj.Kind(), Target: obj.Target}
		if obj.Latency > 0 {
			info.LatencyMS = float64(obj.Latency) / float64(time.Millisecond)
		}
		rep.Objectives = append(rep.Objectives, info)
	}
	for _, w := range sloWindows {
		rep.Windows = append(rep.Windows, w.name)
	}
	t.mu.Lock()
	tenants := make(map[string]*tenantSLO, len(t.tenants))
	for name, ts := range t.tenants {
		tenants[name] = ts
	}
	t.mu.Unlock()
	nowNs := t.now().UnixNano()
	for name, ts := range tenants {
		ts.mu.Lock()
		tr := &SLOTenantReport{
			Queries: ts.queries, Errors: ts.errors,
			CacheHits: ts.cacheHits, Coalesced: ts.coalesced, Sheds: ts.sheds,
			Windows: make(map[string]*SLOWindowReport, len(sloWindows)),
		}
		if ts.queries > 0 {
			tr.CacheHitRatio = float64(ts.cacheHits) / float64(ts.queries)
		}
		for wi, spec := range sloWindows {
			total, bad := t.windowCounts(ts, wi, nowNs)
			wr := &SLOWindowReport{Total: total, Objectives: make(map[string]*SLOObjectiveReport, len(t.objectives))}
			for oi, obj := range t.objectives {
				or := &SLOObjectiveReport{Bad: bad[oi], GoodRatio: 1}
				if total > 0 {
					or.GoodRatio = float64(total-bad[oi]) / float64(total)
					budget := 1 - obj.Target
					if budget < maxBurnBudgetFloor {
						budget = maxBurnBudgetFloor
					}
					or.BurnRate = (float64(bad[oi]) / float64(total)) / budget
				}
				wr.Objectives[obj.Name] = or
			}
			tr.Windows[spec.name] = wr
		}
		ts.mu.Unlock()
		rep.Tenants[name] = tr
	}
	return rep
}

// Tenants lists tracked tenants, sorted (for deterministic dashboards).
func (t *Tracker) Tenants() []string {
	t.mu.Lock()
	out := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		out = append(out, name)
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// Handler serves the JSON report at /debug/slo.
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Report())
	})
}

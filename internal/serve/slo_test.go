package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/store"
)

func TestParseSLO(t *testing.T) {
	objs, err := ParseSLO("p99<250ms, err<1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objectives = %+v, want 2", objs)
	}
	if objs[0].Name != "p99<250ms" || objs[0].Latency != 250*time.Millisecond ||
		objs[0].Target != 0.99 || objs[0].Kind() != "latency" {
		t.Errorf("latency objective = %+v", objs[0])
	}
	if objs[1].Name != "err<1%" || objs[1].Latency != 0 ||
		objs[1].Target != 0.99 || objs[1].Kind() != "error_rate" {
		t.Errorf("error objective = %+v", objs[1])
	}

	if objs, err := ParseSLO("p50<1s"); err != nil || objs[0].Target != 0.5 {
		t.Errorf("p50<1s = %+v, %v", objs, err)
	}
	if objs, err := ParseSLO("err<0.5%"); err != nil || objs[0].Target != 0.995 {
		t.Errorf("err<0.5%% = %+v, %v", objs, err)
	}

	for _, bad := range []string{
		"", "p99", "p99<", "p99<fast", "p0<1s", "p100<1s", "pxx<1s",
		"err<1", "err<0%", "err<100%", "err<x%", "lat<1s",
		"p99<250ms,p99<250ms", // duplicate
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted, want error", bad)
		}
	}
}

// fakeClock is an injectable, movable clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

// newTestTracker builds a tracker with an injected clock.
func newTestTracker(t *testing.T, slo string, maxTenants int, reg *obs.Registry) (*Tracker, *fakeClock) {
	t.Helper()
	objs, err := ParseSLO(slo)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(SLOConfig{Objectives: objs, MaxTenants: maxTenants}, reg, newTenantNames(maxTenants))
	clk := newFakeClock()
	tr.now = clk.now
	return tr, clk
}

// TestSLOWindowDecay: bad events age out of the 5m window while the
// 1h and 6h windows still remember them.
func TestSLOWindowDecay(t *testing.T) {
	tr, clk := newTestTracker(t, "err<10%", 0, nil)

	// 8 good + 2 bad in the first minute → 20% errors, burn 2.0.
	for i := 0; i < 8; i++ {
		tr.Record("acme", Outcome{Wall: time.Millisecond})
	}
	tr.Record("acme", Outcome{Err: errors.New("boom")})
	tr.Record("acme", Outcome{Err: errors.New("boom")})

	rep := tr.Report()
	w5 := rep.Tenants["acme"].Windows["5m"].Objectives["err<10%"]
	if w5.Bad != 2 || math.Abs(w5.BurnRate-2.0) > 1e-9 {
		t.Fatalf("5m before decay = %+v, want bad=2 burn=2.0", w5)
	}

	// 10 minutes later the 5m window has slid past everything; one
	// fresh good request keeps it non-empty so the ratio is defined.
	clk.advance(10 * time.Minute)
	tr.Record("acme", Outcome{Wall: time.Millisecond})
	rep = tr.Report()
	ten := rep.Tenants["acme"]
	if w := ten.Windows["5m"].Objectives["err<10%"]; w.Bad != 0 || w.BurnRate != 0 {
		t.Errorf("5m after decay = %+v, want bad=0 burn=0", w)
	}
	if w := ten.Windows["1h"].Objectives["err<10%"]; w.Bad != 2 {
		t.Errorf("1h after decay = %+v, want bad=2 retained", w)
	}
	if w := ten.Windows["6h"].Objectives["err<10%"]; w.Bad != 2 {
		t.Errorf("6h after decay = %+v, want bad=2 retained", w)
	}
	if ten.Windows["1h"].Total != 11 {
		t.Errorf("1h total = %d, want 11", ten.Windows["1h"].Total)
	}

	// 7 hours later even the 6h window is clean.
	clk.advance(7 * time.Hour)
	tr.Record("acme", Outcome{Wall: time.Millisecond})
	rep = tr.Report()
	if w := rep.Tenants["acme"].Windows["6h"]; w.Total != 1 || w.Objectives["err<10%"].Bad != 0 {
		t.Errorf("6h after full decay = %+v, want total=1 bad=0", w)
	}
	// Cumulative counters never decay.
	if rep.Tenants["acme"].Queries != 12 || rep.Tenants["acme"].Errors != 2 {
		t.Errorf("cumulative = %+v", rep.Tenants["acme"])
	}
}

// TestSLOTenantOverflow: tenants past the cardinality bound fold into
// the overflow bucket — in the tracker and on the shared interner.
func TestSLOTenantOverflow(t *testing.T) {
	tr, _ := newTestTracker(t, "err<1%", 2, nil)
	for _, tenant := range []string{"t1", "t2", "t3", "t4", "t1"} {
		tr.Record(tenant, Outcome{Wall: time.Millisecond})
	}
	got := tr.Tenants()
	want := []string{OverflowTenant, "t1", "t2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("tenants = %v, want %v", got, want)
	}
	rep := tr.Report()
	if rep.Tenants[OverflowTenant].Queries != 2 {
		t.Errorf("overflow queries = %d, want 2 (t3+t4)", rep.Tenants[OverflowTenant].Queries)
	}
	if rep.Tenants["t1"].Queries != 2 {
		t.Errorf("t1 queries = %d, want 2", rep.Tenants["t1"].Queries)
	}

	// The interner is shared state: empty names fold too.
	names := newTenantNames(1)
	if names.intern("a") != "a" || names.intern("b") != OverflowTenant ||
		names.intern("a") != "a" || names.intern("") != OverflowTenant {
		t.Error("interner bound not enforced")
	}
}

// sloStack builds a Stack over a fault-injectable in-process engine
// with SLO tracking on and an injectable clock.
func sloStack(t *testing.T, reg *obs.Registry, opts ...Option) (*Stack, *endpoint.FaultClient, *fakeClock) {
	t.Helper()
	fc := endpoint.NewFault(endpoint.NewInProcess(newTestStore(t)), endpoint.FaultConfig{})
	objs, err := ParseSLO("p99<50ms,err<1%")
	if err != nil {
		t.Fatal(err)
	}
	s := New(fc, append([]Option{WithRegistry(reg), WithSLO(SLOConfig{Objectives: objs})}, opts...)...)
	clk := newFakeClock()
	s.slo.now = clk.now
	return s, fc, clk
}

// TestSLOBurnAndRecover is the acceptance scenario: per-tenant burn
// rates move when a latency fault is injected under the stack and
// recover once the fault clears and the window slides.
func TestSLOBurnAndRecover(t *testing.T) {
	reg := obs.NewRegistry()
	s, fc, clk := sloStack(t, reg, WithoutSingleFlight())
	ctx := endpoint.ContextWithTenant(context.Background(), "acme")

	// Healthy phase: everything is fast, burn stays at zero.
	for i := 0; i < 5; i++ {
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err != nil {
			t.Fatal(err)
		}
	}
	burn := func(window string) float64 {
		rep := s.SLO().Report()
		ten := rep.Tenants["acme"]
		if ten == nil {
			t.Fatalf("tenant missing from report: %+v", rep.Tenants)
		}
		return ten.Windows[window].Objectives["p99<50ms"].BurnRate
	}
	if b := burn("5m"); b != 0 {
		t.Fatalf("healthy burn = %v, want 0", b)
	}

	// Induced latency fault: every request now exceeds the 50ms
	// threshold, so the p99<50ms burn must shoot far above 1 (the
	// budget is 1%, so all-bad traffic burns at ~100x).
	fc.SetLatency(60 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err != nil {
			t.Fatal(err)
		}
	}
	if b := burn("5m"); b < 10 {
		t.Fatalf("burn under latency fault = %v, want >= 10", b)
	}
	// The error-rate objective is unaffected: slow is not failed.
	rep := s.SLO().Report()
	if b := rep.Tenants["acme"].Windows["5m"].Objectives["err<1%"].BurnRate; b != 0 {
		t.Errorf("err burn under latency fault = %v, want 0", b)
	}

	// Burn gauges are exported through the registry.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := snap.Value("re2xolap_slo_burn_rate",
		obs.L("objective", "p99<50ms"), obs.L("tenant", "acme"), obs.L("window", "5m"))
	if !ok || v < 10 {
		t.Errorf("burn gauge = %v ok=%v, want >= 10\n%s", v, ok, buf.String())
	}

	// Fault clears; six minutes later the 5m window has slid past the
	// bad phase and fresh traffic reads healthy again.
	fc.SetLatency(0)
	clk.advance(6 * time.Minute)
	for i := 0; i < 5; i++ {
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err != nil {
			t.Fatal(err)
		}
	}
	if b := burn("5m"); b != 0 {
		t.Errorf("burn after recovery = %v, want 0", b)
	}
	if b := burn("1h"); b < 10 {
		t.Errorf("1h burn = %v, want >= 10 (long window remembers the incident)", b)
	}
}

// TestSLOHandlerAndAttribution: /debug/slo serves the JSON report and
// cache hits are attributed to the tenant that made them.
func TestSLOHandlerAndAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, _ := sloStack(t, reg, WithResultCache(8))
	ctx := endpoint.ContextWithTenant(context.Background(), "acme")
	for i := 0; i < 3; i++ {
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	s.SLO().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("handler status=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("report does not decode: %v\n%s", err, rec.Body.String())
	}
	ten := rep.Tenants["acme"]
	if ten == nil {
		t.Fatalf("tenant missing:\n%s", rec.Body.String())
	}
	if ten.Queries != 3 || ten.CacheHits != 2 {
		t.Errorf("attribution = %+v, want 3 queries / 2 cache hits", ten)
	}
	if r := ten.CacheHitRatio; r < 0.66 || r > 0.67 {
		t.Errorf("cache hit ratio = %v, want ~2/3", r)
	}
	if len(rep.Objectives) != 2 || len(rep.Windows) != 3 {
		t.Errorf("report shape = %d objectives, %d windows", len(rep.Objectives), len(rep.Windows))
	}
}

// TestSLOShedAttribution: shed requests count as bad events and as
// per-tenant sheds, and the shed counter carries the tenant label.
func TestSLOShedAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	s, fc, _ := sloStack(t, reg,
		WithoutSingleFlight(),
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueBudget: 1}))
	ctx := endpoint.ContextWithTenant(context.Background(), "acme")

	// Hold the only slot with a slow request, fill the queue with a
	// second, then overflow with more.
	fc.SetLatency(200 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			_, _, _ = s.QueryX(ctx, endpoint.Request{Query: valueQuery})
		}()
	}
	time.Sleep(50 * time.Millisecond) // let them occupy slot + queue
	var sheds int
	for i := 0; i < 4; i++ {
		if _, _, err := s.QueryX(ctx, endpoint.Request{Query: valueQuery}); errors.Is(err, endpoint.ErrOverloaded) {
			sheds++
		}
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatal("no request was shed")
	}
	rep := s.SLO().Report()
	if got := rep.Tenants["acme"].Sheds; got != int64(sheds) {
		t.Errorf("tenant sheds = %d, want %d", got, sheds)
	}
	if v := reg.Counter("re2xolap_serve_shed_total", "",
		obs.L("reason", "queue_full"), obs.L("tenant", "acme")).Value(); v != int64(sheds) {
		t.Errorf("labeled shed counter = %d, want %d", v, sheds)
	}
}

// BenchmarkStackQueryX measures the serving fast path with SLO
// tracking off vs on — the acceptance bound is <2% overhead.
func BenchmarkStackQueryX(b *testing.B) {
	st := store.New()
	run := func(b *testing.B, opts ...Option) {
		inner := endpoint.NewInProcess(st)
		s := New(inner, append([]Option{WithResultCache(64)}, opts...)...)
		ctx := endpoint.ContextWithTenant(context.Background(), "bench")
		req := endpoint.Request{Query: valueQuery}
		if _, _, err := s.QueryX(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.QueryX(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("slo=off", func(b *testing.B) { run(b) })
	b.Run("slo=on", func(b *testing.B) {
		objs, err := ParseSLO("p99<250ms,err<1%")
		if err != nil {
			b.Fatal(err)
		}
		run(b, WithSLO(SLOConfig{Objectives: objs}))
	})
}

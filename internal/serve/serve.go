// Package serve is the serving stack: a wrapper around any
// endpoint.Client that adds a bounded result cache, single-flight
// deduplication of concurrent identical queries, and per-tenant
// admission control. It sits between the protocol boundary
// (endpoint.Server) and whatever executes queries — a local engine, a
// resilient remote client, or a shard coordinator — and guarantees
// that every answer it serves is byte-identical to what the wrapped
// client would have returned.
//
// The cache key is the canonical query text (parse → print, so
// whitespace and formatting variants share an entry) scoped by the
// backing data's generation token. Mutations advance the generation,
// which orphans all entries cached under the old one — invalidation
// is a key change, not a scan. Stale entries age out of the LRU.
package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// canonMemoSize bounds the canonical-text memo (query text → parsed
// canonical form). It is a parse-cost optimization, not a correctness
// structure, so the bound is fixed rather than configurable.
const canonMemoSize = 4096

// config is the merged options bag.
type config struct {
	cacheSize int
	admission *AdmissionConfig
	slo       *SLOConfig
	reg       *obs.Registry
	genFn     func() uint64
	noFlight  bool
}

// Option configures a Stack.
type Option func(*config)

// WithResultCache enables the result cache with room for n answers
// (n <= 0 leaves it disabled).
func WithResultCache(n int) Option {
	return func(c *config) { c.cacheSize = n }
}

// WithAdmission enables per-tenant admission control.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(c *config) { c.admission = &cfg }
}

// WithSLO enables per-tenant SLI/SLO tracking: every request outcome
// is folded into sliding 5m/1h/6h windows keyed by tenant, with
// multi-window burn-rate gauges
// (re2xolap_slo_burn_rate{tenant,objective,window}, via WithRegistry)
// and a JSON report at SLO().Handler() (/debug/slo). Tenant label
// cardinality is bounded (SLOConfig.MaxTenants, overflow folds into
// OverflowTenant), shared with the tenant-labeled admission metrics.
func WithSLO(cfg SLOConfig) Option {
	return func(c *config) { c.slo = &cfg }
}

// WithRegistry exports the serve metrics (cache hit/miss/evict,
// coalesce, executions, queue depth and wait, sheds) through reg.
func WithRegistry(reg *obs.Registry) Option {
	return func(c *config) { c.reg = reg }
}

// WithGenerationFunc overrides how the stack learns the backing data's
// generation token, for inner clients that cannot report one
// themselves. Without it the stack asks the inner client
// (endpoint.GenerationOf) and falls back to the last generation
// observed in query metadata.
func WithGenerationFunc(fn func() uint64) Option {
	return func(c *config) { c.genFn = fn }
}

// WithoutSingleFlight disables deduplication of concurrent identical
// queries (on by default), for callers that need every request to
// reach the inner client.
func WithoutSingleFlight() Option {
	return func(c *config) { c.noFlight = true }
}

// Stack wraps an inner client in the serving pipeline:
//
//	canonicalize → cache lookup → single-flight → admission → inner
//
// Profile requests and unparseable queries bypass cache and
// deduplication (both need a real execution / the inner client's real
// error) but still pass admission. Stack implements
// endpoint.QuerierX; cache hits and coalesced answers are flagged in
// QueryMeta (CacheHit, Coalesced) so they are visible in the slow
// log, the /debug/queries ring, and HTTP response headers.
type Stack struct {
	inner  endpoint.Client
	cache  *lru // nil = cache disabled
	canon  *lru // query text → canonical form ("" memoizes a parse failure)
	flight *flightGroup
	adm    *admission // nil = admission disabled
	m      *metrics
	slo    *Tracker // nil = SLO tracking disabled
	genFn  func() uint64
	// defaultTenant buckets requests without a tenant identity for SLO
	// attribution (mirrors AdmissionConfig.DefaultTenant).
	defaultTenant string
	// lastGen is the generation fallback for inner clients that report
	// one in query metadata but cannot be asked directly (remote HTTP
	// backends): the stack tracks the latest observed token.
	lastGen atomic.Uint64
}

// New wraps inner in a serving stack. With no options the stack is a
// pass-through plus single-flight deduplication.
func New(inner endpoint.Client, opts ...Option) *Stack {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	maxTenants := 0
	if cfg.slo != nil {
		maxTenants = cfg.slo.MaxTenants
	}
	names := newTenantNames(maxTenants)
	s := &Stack{
		inner:         inner,
		canon:         newLRU(canonMemoSize),
		m:             newMetrics(cfg.reg, names),
		genFn:         cfg.genFn,
		defaultTenant: "default",
	}
	if cfg.admission != nil && cfg.admission.DefaultTenant != "" {
		s.defaultTenant = cfg.admission.DefaultTenant
	}
	if cfg.slo != nil {
		s.slo = newTracker(*cfg.slo, cfg.reg, names)
	}
	if cfg.cacheSize > 0 {
		s.cache = newLRU(cfg.cacheSize)
		cfg.reg.GaugeFunc("re2xolap_result_cache_entries",
			"Result-cache occupancy.", func() float64 { return float64(s.cache.len()) })
	}
	if !cfg.noFlight {
		s.flight = newFlightGroup()
	}
	if cfg.admission != nil {
		s.adm = newAdmission(*cfg.admission, s.m)
		cfg.reg.GaugeFunc("re2xolap_serve_queue_depth",
			"Requests queued in admission control across tenants.",
			func() float64 { return float64(s.adm.queueDepth()) })
	}
	return s
}

// Unwrap exposes the wrapped client (endpoint.Unwrapper), so
// generation and capability probes see through the stack.
func (s *Stack) Unwrap() endpoint.Client { return s.inner }

// Query implements endpoint.Client.
func (s *Stack) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := s.QueryX(ctx, endpoint.Request{Query: query})
	return res, err
}

// QueryX implements endpoint.QuerierX: the full serving pipeline,
// with every outcome — cache hits, coalesced answers, sheds, and real
// executions alike — recorded against the tenant's SLIs when SLO
// tracking is on. This is the single recording choke point, so the
// SLI denominators match what clients actually experienced.
func (s *Stack) QueryX(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	if s.slo == nil {
		return s.queryX(ctx, req)
	}
	start := time.Now()
	res, meta, err := s.queryX(ctx, req)
	s.slo.Record(s.tenantOf(ctx), Outcome{
		// Wall is measured here, not taken from meta: the SLI is the
		// latency this caller observed, including any decorator time the
		// inner chain does not self-report.
		Wall:      time.Since(start),
		Err:       err,
		CacheHit:  meta.CacheHit,
		Coalesced: meta.Coalesced,
		Shed:      errors.Is(err, endpoint.ErrOverloaded),
	})
	return res, meta, err
}

// SLO exposes the tracker (nil without WithSLO) for mounting
// /debug/slo and feeding the ops dashboard.
func (s *Stack) SLO() *Tracker { return s.slo }

// tenantOf resolves the request's tenant for SLO attribution.
func (s *Stack) tenantOf(ctx context.Context) string {
	if t := endpoint.TenantFrom(ctx); t != "" {
		return t
	}
	return s.defaultTenant
}

// queryX is the serving pipeline body.
func (s *Stack) queryX(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	start := time.Now()

	// Profile requests need a real execution (the profile is a side
	// effect of running), and unparseable queries need the inner
	// client's real error; both bypass cache and dedup but not
	// admission.
	if req.Opts.Profile {
		return s.execute(ctx, req)
	}
	canonical, ok := s.canonical(req.Query)
	if !ok {
		return s.execute(ctx, req)
	}

	key := cacheKey(canonical, s.generation())
	if s.cache != nil {
		if v, hit := s.cache.get(key); hit {
			s.m.hit()
			ans := v.(*cachedAnswer)
			meta := s.derivedMeta(ans.meta, req, start)
			meta.CacheHit = true
			return ans.res, meta, nil
		}
		s.m.miss()
	}

	if s.flight == nil {
		res, meta, err := s.execute(ctx, req)
		s.store(key, res, meta, err)
		return res, meta, err
	}
	res, meta, led, err := s.flight.do(ctx, key, func() (*sparql.Results, endpoint.QueryMeta, error) {
		r, m, e := s.execute(ctx, req)
		s.store(key, r, m, e)
		return r, m, e
	})
	if !led {
		s.m.coalesce()
		meta = s.derivedMeta(meta, req, start)
		meta.Coalesced = true
	}
	return res, meta, err
}

// execute is the non-shared tail of the pipeline: admission, then the
// inner client. Every path that reaches the inner client goes through
// here.
func (s *Stack) execute(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	var queueWait time.Duration
	if s.adm != nil {
		release, wait, err := s.adm.acquire(ctx)
		if err != nil {
			return nil, endpoint.QueryMeta{Source: "serve", Step: req.Opts.Step, Wall: wait, QueueWait: wait}, err
		}
		queueWait = wait
		defer release()
	}
	s.m.execute()
	res, meta, err := endpoint.QueryX(ctx, s.inner, req)
	meta.QueueWait = queueWait
	meta.Wall += queueWait
	if meta.Generation != 0 {
		s.lastGen.Store(meta.Generation)
	}
	return res, meta, err
}

// derivedMeta adapts an execution's metadata to a request that did not
// execute (cache hit or coalesced duplicate): the engine-side fields
// describe the shared execution, while wall time, queue wait, and the
// step tag are this request's own.
func (s *Stack) derivedMeta(from endpoint.QueryMeta, req endpoint.Request, start time.Time) endpoint.QueryMeta {
	meta := from
	meta.Step = req.Opts.Step
	meta.Wall = time.Since(start)
	meta.QueueWait = 0
	meta.CacheHit = false
	meta.Coalesced = false
	return meta
}

// canonical parses query and prints it back in canonical form,
// memoized. ok=false means the query does not parse here (the memo
// remembers failures too, as ""); the caller falls through to the
// inner client for the authoritative error.
func (s *Stack) canonical(query string) (string, bool) {
	if v, ok := s.canon.get(query); ok {
		c := v.(string)
		return c, c != ""
	}
	q, err := sparql.Parse(query)
	if err != nil {
		s.canon.put(query, "")
		return "", false
	}
	c := q.String()
	s.canon.put(query, c)
	return c, true
}

// generation returns the current data-version token: the explicit
// override if configured, a live probe of the inner client chain if it
// exposes one, else the last token observed in query metadata (zero
// until the first answer — all pre-first-answer requests share the
// zero-generation key space, which is safe because the first observed
// token moves every later request off it).
func (s *Stack) generation() uint64 {
	if s.genFn != nil {
		return s.genFn()
	}
	if g, ok := endpoint.GenerationOf(s.inner); ok {
		return g
	}
	return s.lastGen.Load()
}

// StackStats is a point-in-time summary of the stack for dashboards.
// Counter fields are zero when the stack was built without a registry
// (they live in the metrics series); QueueDepth, CacheEntries, and
// Sheds are tracked by the stack itself and always live.
type StackStats struct {
	CacheEntries int64
	CacheHits    int64
	CacheMisses  int64
	Coalesced    int64
	Executions   int64
	QueueDepth   int64
	Sheds        int64
}

// Stats samples the stack's current counters.
func (s *Stack) Stats() StackStats {
	var st StackStats
	if s.cache != nil {
		st.CacheEntries = int64(s.cache.len())
	}
	if s.m != nil {
		st.CacheHits = s.m.cacheHits.Value()
		st.CacheMisses = s.m.cacheMisses.Value()
		st.Coalesced = s.m.coalesced.Value()
		st.Executions = s.m.executions.Value()
	}
	if s.adm != nil {
		st.QueueDepth = s.adm.queueDepth()
		st.Sheds = s.adm.sheds.Load()
	}
	return st
}

// store caches a completed execution. Errors, nil results, and
// incomplete (degraded-mode) answers are never cached — a cache must
// not pin a partial answer past the moment the failed shard recovers.
func (s *Stack) store(key string, res *sparql.Results, meta endpoint.QueryMeta, err error) {
	if s.cache == nil || err != nil || res == nil || meta.Incomplete {
		return
	}
	s.m.evicted(s.cache.put(key, &cachedAnswer{res: res, meta: meta}))
}

package sparql

import (
	"fmt"
	"strings"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// distTestTriples is a small corpus with a skewed group structure so
// partial merging is exercised: three subjects per region, integer
// measures, one subject with a missing measure.
func distTestTriples() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.Triple{S: iri(s), P: iri(p), O: o})
	}
	for i := 0; i < 9; i++ {
		subj := fmt.Sprintf("obs%d", i)
		region := fmt.Sprintf("r%d", i%3)
		add(subj, "region", iri(region))
		if i != 4 { // obs4 has no value: exercises unbound handling
			add(subj, "value", rdf.NewInteger(int64(10+i*i)))
		}
		add(subj, "label", rdf.NewString(fmt.Sprintf("obs %d", i)))
	}
	return ts
}

// splitStores partitions triples across n stores by a subject-count
// round robin (any deterministic split works for these tests).
func splitStores(t *testing.T, ts []rdf.Triple, n int) []*store.Store {
	t.Helper()
	sts := make([]*store.Store, n)
	for i := range sts {
		sts[i] = store.New()
	}
	for _, tr := range ts {
		i := int(tr.S.Value[len(tr.S.Value)-1]-'0') % n
		if err := sts[i].Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return sts
}

// runPartialPlan executes the plan's shard query on each store and
// merges, returning the finalized (pre-MergeFinalize) results.
func runPartialPlan(t *testing.T, p *PartialAggPlan, sts []*store.Store) *Results {
	t.Helper()
	var shardRes []*Results
	for _, st := range sts {
		r, err := NewEngine(st).Query(p.ShardQuery())
		if err != nil {
			t.Fatalf("shard query: %v", err)
		}
		shardRes = append(shardRes, r)
	}
	res, err := p.Merge(shardRes)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return res
}

// rowStrings renders rows for comparison.
func rowStrings(res *Results) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, t := range r {
			if Bound(t) {
				parts[j] = t.String()
			}
		}
		out[i] = strings.Join(parts, " | ")
	}
	return out
}

// TestPartialAggregationMatchesSingleNode runs decomposable aggregate
// queries through the shard-rewrite path over 1..4-way splits and
// checks the merged result equals the single-node result (after
// canonical ordering on both sides, since group order differs).
func TestPartialAggregationMatchesSingleNode(t *testing.T) {
	ts := distTestTriples()
	single := store.New()
	if err := single.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`,
		`SELECT ?r (COUNT(*) AS ?n) WHERE { ?s <http://x/region> ?r } GROUP BY ?r`,
		`SELECT ?r (SUM(?v) AS ?t) (AVG(?v) AS ?a) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`,
		`SELECT ?r (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`,
		`SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?t) WHERE { ?s <http://x/value> ?v }`,
		`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r HAVING (COUNT(?v) > 2)`,
		`SELECT ?r ((SUM(?v) + COUNT(?v)) AS ?mix) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`,
		// Empty result: no subject matches this predicate.
		`SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://x/nope> ?v }`,
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		p, ok := PlanPartialAggregation(q)
		if !ok {
			t.Fatalf("expected decomposable: %s", qs)
		}
		want, err := NewEngine(single).QueryString(qs)
		if err != nil {
			t.Fatal(err)
		}
		MergeFinalize(q, want) // canonicalize the single-node order too
		for _, n := range []int{1, 2, 3, 4} {
			got := runPartialPlan(t, p, splitStores(t, ts, n))
			MergeFinalize(q, got)
			g, w := rowStrings(got), rowStrings(want)
			if fmt.Sprint(g) != fmt.Sprint(w) {
				t.Errorf("%s\n%d shards:\n got %v\nwant %v", qs, n, g, w)
			}
		}
	}
}

// TestPartialAggregationSampleDeterministic checks SAMPLE merges to
// the same value on every topology (the canonical least member), even
// though it may differ from the sequential engine's choice.
func TestPartialAggregationSampleDeterministic(t *testing.T) {
	ts := distTestTriples()
	qs := `SELECT ?r (SAMPLE(?v) AS ?any) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`
	q, err := Parse(qs)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := PlanPartialAggregation(q)
	if !ok {
		t.Fatal("expected decomposable")
	}
	var first []string
	for _, n := range []int{1, 2, 3, 4} {
		got := runPartialPlan(t, p, splitStores(t, ts, n))
		MergeFinalize(q, got)
		rs := rowStrings(got)
		if first == nil {
			first = rs
			continue
		}
		if fmt.Sprint(rs) != fmt.Sprint(first) {
			t.Errorf("%d shards: got %v, want %v", n, rs, first)
		}
	}
}

// TestPlanPartialAggregationRejects lists the shapes that must fall
// back to the gather path.
func TestPlanPartialAggregationRejects(t *testing.T) {
	reject := []string{
		// DISTINCT aggregate needs a global dedup set.
		`SELECT (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s <http://x/value> ?v }`,
		// GROUP_CONCAT order is per-shard row order.
		`SELECT ?r (GROUP_CONCAT(?v) AS ?all) WHERE { ?s <http://x/region> ?r . ?s <http://x/value> ?v } GROUP BY ?r`,
		// Plain var outside GROUP BY: representative-row dependent.
		`SELECT ?s (COUNT(?v) AS ?n) WHERE { ?s <http://x/value> ?v } GROUP BY ?r`,
		// Non-aggregate query.
		`SELECT ?s WHERE { ?s <http://x/value> ?v }`,
		// ASK is not a projection.
		`ASK { ?s <http://x/value> ?v }`,
	}
	for _, qs := range reject {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		if _, ok := PlanPartialAggregation(q); ok {
			t.Errorf("expected non-decomposable: %s", qs)
		}
	}
}

// TestMergeFinalizeCanonicalOrder checks the canonical tie-break: rows
// equal under ORDER BY keys land in term-serialization order, and the
// full modifier stack (DISTINCT, OFFSET, LIMIT) applies on top.
func TestMergeFinalizeCanonicalOrder(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	mk := func(rows ...[]rdf.Term) *Results {
		return &Results{Vars: []string{"a", "b"}, Rows: rows}
	}
	q, err := Parse(`SELECT ?a ?b WHERE { ?a <http://x/p> ?b } ORDER BY ?a`)
	if err != nil {
		t.Fatal(err)
	}
	res := mk(
		[]rdf.Term{iri("k1"), iri("z")},
		[]rdf.Term{iri("k2"), iri("m")},
		[]rdf.Term{iri("k1"), iri("a")},
		[]rdf.Term{iri("k1"), iri("a")}, // duplicate
	)
	MergeFinalize(q, res)
	got := rowStrings(res)
	want := []string{
		"<http://x/k1> | <http://x/a>",
		"<http://x/k1> | <http://x/a>",
		"<http://x/k1> | <http://x/z>",
		"<http://x/k2> | <http://x/m>",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order: got %v, want %v", got, want)
	}

	// DISTINCT + OFFSET + LIMIT on an unordered query: canonical key
	// is the entire sort.
	q2, err := Parse(`SELECT DISTINCT ?a ?b WHERE { ?a <http://x/p> ?b } OFFSET 1 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	res2 := mk(
		[]rdf.Term{iri("k2"), iri("m")},
		[]rdf.Term{iri("k1"), iri("z")},
		[]rdf.Term{iri("k1"), iri("z")},
		[]rdf.Term{iri("k1"), iri("a")},
	)
	MergeFinalize(q2, res2)
	got2 := rowStrings(res2)
	want2 := []string{"<http://x/k1> | <http://x/z>"}
	if fmt.Sprint(got2) != fmt.Sprint(want2) {
		t.Fatalf("distinct/offset/limit: got %v, want %v", got2, want2)
	}
}

package sparql

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
)

// Parse parses a SPARQL SELECT or ASK query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks     []token
	i        int
	prefixes map[string]string
	pathN    int
	aggN     int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }
func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{p.cur().pos, fmt.Sprintf(format, args...)}
}

// keyword reports whether the current token is the given bare keyword
// (case-insensitive).
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) punct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.punct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

// prefixesCopy snapshots the prologue for nested queries.
func (p *parser) prefixesCopy() map[string]string {
	out := make(map[string]string, len(p.prefixes))
	for k, v := range p.prefixes {
		out[k] = v
	}
	return out
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: map[string]string{}}
	// prologue
	for p.acceptKeyword("PREFIX") {
		t := p.cur()
		if t.kind != tokPName {
			return nil, p.errf("expected prefixed name after PREFIX")
		}
		name := strings.TrimSuffix(t.text, ":")
		p.advance()
		if p.cur().kind != tokIRI {
			return nil, p.errf("expected IRI in PREFIX")
		}
		p.prefixes[name] = p.cur().text
		q.Prefixes[name] = p.cur().text
		p.advance()
	}
	switch {
	case p.acceptKeyword("SELECT"):
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Ask = true
	case p.acceptKeyword("CONSTRUCT"):
		tmpl, err := p.parseConstructTemplate()
		if err != nil {
			return nil, err
		}
		q.Construct = tmpl
	default:
		return nil, p.errf("expected SELECT, ASK, or CONSTRUCT, got %q", p.cur().text)
	}
	p.acceptKeyword("WHERE")
	where, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = where
	if err := p.parseSolutionModifiers(q); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) parseSelectClause(q *Query) error {
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else {
		p.acceptKeyword("REDUCED")
	}
	if p.acceptPunct("*") {
		q.Star = true
		return nil
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokVar:
			q.Select = append(q.Select, SelectItem{Var: t.text})
			p.advance()
		case p.punct("("):
			p.advance()
			expr, err := p.parseExpr()
			if err != nil {
				return err
			}
			if !p.acceptKeyword("AS") {
				return p.errf("expected AS in projection expression")
			}
			if p.cur().kind != tokVar {
				return p.errf("expected variable after AS")
			}
			q.Select = append(q.Select, SelectItem{Var: p.cur().text, Expr: expr})
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		case t.kind == tokKeyword && isAggregateName(t.text):
			// bare aggregate without AS: auto-name the column.
			expr, err := p.parsePrimary()
			if err != nil {
				return err
			}
			agg, ok := expr.(AggExpr)
			if !ok {
				return p.errf("expected aggregate call")
			}
			name := autoAggName(agg, p.aggN)
			p.aggN++
			q.Select = append(q.Select, SelectItem{Var: name, Expr: agg})
		default:
			if len(q.Select) == 0 {
				return p.errf("empty SELECT clause")
			}
			return nil
		}
	}
}

func isAggregateName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}

// autoAggName names a bare aggregate projection, e.g. SUM(?obsValue)
// becomes "sum_obsValue".
func autoAggName(a AggExpr, n int) string {
	base := strings.ToLower(a.Fn)
	if v, ok := a.Arg.(VarExpr); ok {
		return base + "_" + v.Name
	}
	return fmt.Sprintf("%s_%d", base, n)
}

func (p *parser) parseSolutionModifiers(q *Query) error {
	for {
		switch {
		case p.acceptKeyword("GROUP"):
			if !p.acceptKeyword("BY") {
				return p.errf("expected BY after GROUP")
			}
			for p.cur().kind == tokVar {
				q.GroupBy = append(q.GroupBy, p.cur().text)
				p.advance()
			}
			if len(q.GroupBy) == 0 {
				return p.errf("empty GROUP BY")
			}
		case p.acceptKeyword("HAVING"):
			for p.punct("(") {
				p.advance()
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.Having = append(q.Having, e)
			}
			if len(q.Having) == 0 {
				return p.errf("empty HAVING")
			}
		case p.acceptKeyword("ORDER"):
			if !p.acceptKeyword("BY") {
				return p.errf("expected BY after ORDER")
			}
			parsing := true
			for parsing {
				var key OrderKey
				switch {
				case p.acceptKeyword("DESC"):
					key.Desc = true
					if err := p.expectPunct("("); err != nil {
						return err
					}
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					key.Expr = e
					if err := p.expectPunct(")"); err != nil {
						return err
					}
				case p.acceptKeyword("ASC"):
					if err := p.expectPunct("("); err != nil {
						return err
					}
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					key.Expr = e
					if err := p.expectPunct(")"); err != nil {
						return err
					}
				case p.cur().kind == tokVar:
					key.Expr = VarExpr{Name: p.cur().text}
					p.advance()
				case p.cur().kind == tokKeyword && isAggregateName(p.cur().text):
					e, err := p.parsePrimary()
					if err != nil {
						return err
					}
					key.Expr = e
				default:
					if len(q.OrderBy) == 0 {
						return p.errf("empty ORDER BY")
					}
					parsing = false
				}
				if parsing {
					q.OrderBy = append(q.OrderBy, key)
				}
			}
		case p.acceptKeyword("LIMIT"):
			if p.cur().kind != tokNumber {
				return p.errf("expected number after LIMIT")
			}
			var n int
			fmt.Sscanf(p.cur().text, "%d", &n)
			q.Limit = n
			p.advance()
		case p.acceptKeyword("OFFSET"):
			if p.cur().kind != tokNumber {
				return p.errf("expected number after OFFSET")
			}
			var n int
			fmt.Sscanf(p.cur().text, "%d", &n)
			q.Offset = n
			p.advance()
		default:
			return nil
		}
	}
}

func (p *parser) parseGroupGraphPattern() ([]PatternElement, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var elems []PatternElement
	for {
		switch {
		case p.acceptPunct("}"):
			return elems, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.acceptKeyword("FILTER"):
			e, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			elems = append(elems, FilterElement{Expr: e})
			p.acceptPunct(".")
		case p.acceptKeyword("BIND"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AS") {
				return nil, p.errf("expected AS in BIND")
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("expected variable after AS")
			}
			be := BindElement{Expr: e, Var: p.cur().text}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			elems = append(elems, be)
			p.acceptPunct(".")
		case p.acceptKeyword("VALUES"):
			v, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
			p.acceptPunct(".")
		case p.acceptKeyword("OPTIONAL"):
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			opt := OptionalElement{}
			for _, el := range inner {
				switch x := el.(type) {
				case TriplePattern:
					opt.Patterns = append(opt.Patterns, x)
				case FilterElement:
					opt.Filters = append(opt.Filters, x.Expr)
				default:
					return nil, p.errf("unsupported element inside OPTIONAL")
				}
			}
			elems = append(elems, opt)
			p.acceptPunct(".")
		case p.punct("{"):
			// Lookahead: a nested SELECT is a subquery, not a UNION
			// branch.
			if p.toks[p.i+1].kind == tokKeyword && strings.EqualFold(p.toks[p.i+1].text, "SELECT") {
				p.advance() // '{'
				sub := &Query{Limit: -1, Prefixes: p.prefixesCopy()}
				if !p.acceptKeyword("SELECT") {
					return nil, p.errf("expected SELECT")
				}
				if err := p.parseSelectClause(sub); err != nil {
					return nil, err
				}
				p.acceptKeyword("WHERE")
				where, err := p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				sub.Where = where
				if err := p.parseSolutionModifiers(sub); err != nil {
					return nil, err
				}
				if err := p.expectPunct("}"); err != nil {
					return nil, err
				}
				elems = append(elems, SubSelectElement{Query: sub})
				p.acceptPunct(".")
				continue
			}
			branch, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			u := UnionElement{Branches: [][]PatternElement{branch}}
			for p.acceptKeyword("UNION") {
				branch, err = p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				u.Branches = append(u.Branches, branch)
			}
			if len(u.Branches) == 1 {
				// A plain nested group: splice its elements in.
				elems = append(elems, u.Branches[0]...)
			} else {
				for _, br := range u.Branches {
					for _, el := range br {
						switch el.(type) {
						case TriplePattern, FilterElement:
						default:
							return nil, p.errf("unsupported element inside UNION branch")
						}
					}
				}
				elems = append(elems, u)
			}
			p.acceptPunct(".")
		case p.keyword("GRAPH") || p.keyword("MINUS") || p.keyword("SERVICE"):
			return nil, p.errf("unsupported SPARQL feature %q", p.cur().text)
		default:
			pats, err := p.parseTriplesSameSubject()
			if err != nil {
				return nil, err
			}
			elems = append(elems, pats...)
			p.acceptPunct(".")
		}
	}
}

// parseConstructTemplate parses the CONSTRUCT { ... } template: plain
// triple patterns only (no paths, filters, or nested groups).
func (p *parser) parseConstructTemplate() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	tmpl := []TriplePattern{}
	for !p.acceptPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated CONSTRUCT template")
		}
		pats, err := p.parseTriplesSameSubject()
		if err != nil {
			return nil, err
		}
		for _, el := range pats {
			tp, ok := el.(TriplePattern)
			if !ok {
				return nil, p.errf("property paths not allowed in CONSTRUCT templates")
			}
			// Sequence paths expand into chains over internal variables,
			// which can never be bound in a template.
			for _, n := range []Node{tp.S, tp.P, tp.O} {
				if n.IsVar && strings.HasPrefix(n.Var, internalVarPrefix) {
					return nil, p.errf("property paths not allowed in CONSTRUCT templates")
				}
			}
			tmpl = append(tmpl, tp)
		}
		p.acceptPunct(".")
	}
	return tmpl, nil
}

// parseConstraint parses either a bracketed expression or a bare
// function call, as allowed after FILTER.
func (p *parser) parseConstraint() (Expr, error) {
	if p.punct("(") {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return p.parsePrimary()
}

func (p *parser) parseValues() (ValuesElement, error) {
	v := ValuesElement{}
	multi := p.acceptPunct("(")
	for p.cur().kind == tokVar {
		v.Vars = append(v.Vars, p.cur().text)
		p.advance()
	}
	if multi {
		if err := p.expectPunct(")"); err != nil {
			return v, err
		}
	}
	if len(v.Vars) == 0 {
		return v, p.errf("VALUES with no variables")
	}
	if err := p.expectPunct("{"); err != nil {
		return v, err
	}
	for !p.acceptPunct("}") {
		if p.cur().kind == tokEOF {
			return v, p.errf("unterminated VALUES block")
		}
		var row []*rdf.Term
		if multi {
			if err := p.expectPunct("("); err != nil {
				return v, err
			}
			for !p.acceptPunct(")") {
				t, err := p.parseDataTerm()
				if err != nil {
					return v, err
				}
				row = append(row, t)
			}
		} else {
			t, err := p.parseDataTerm()
			if err != nil {
				return v, err
			}
			row = append(row, t)
		}
		if len(row) != len(v.Vars) {
			return v, p.errf("VALUES row has %d terms, want %d", len(row), len(v.Vars))
		}
		v.Rows = append(v.Rows, row)
	}
	return v, nil
}

// parseDataTerm parses a concrete term (or UNDEF) inside VALUES.
func (p *parser) parseDataTerm() (*rdf.Term, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && strings.EqualFold(t.text, "UNDEF"):
		p.advance()
		return nil, nil
	default:
		term, err := p.parseTermToken()
		if err != nil {
			return nil, err
		}
		return &term, nil
	}
}

// parseTermToken parses one concrete RDF term.
func (p *parser) parseTermToken() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIRI:
		p.advance()
		return rdf.NewIRI(t.text), nil
	case tokPName:
		p.advance()
		return p.expandPName(t)
	case tokString:
		p.advance()
		switch {
		case t.lang != "":
			return rdf.NewLangString(t.text, t.lang), nil
		case t.dtype != "":
			return rdf.NewTyped(t.text, t.dtype), nil
		default:
			return rdf.NewString(t.text), nil
		}
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			return rdf.NewTyped(t.text, rdf.XSDDouble), nil
		}
		return rdf.NewTyped(t.text, rdf.XSDInteger), nil
	case tokKeyword:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.advance()
			return rdf.NewBoolean(true), nil
		case strings.EqualFold(t.text, "false"):
			p.advance()
			return rdf.NewBoolean(false), nil
		}
	}
	return rdf.Term{}, p.errf("expected RDF term, got %q", t.text)
}

func (p *parser) expandPName(t token) (rdf.Term, error) {
	colon := strings.IndexByte(t.text, ':')
	prefix, local := t.text[:colon], t.text[colon+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, &SyntaxError{t.pos, fmt.Sprintf("unknown prefix %q", prefix)}
	}
	return rdf.NewIRI(base + local), nil
}

// parseNode parses a subject/object position: variable, term, or blank
// node.
func (p *parser) parseNode() (Node, error) {
	t := p.cur()
	if t.kind == tokVar {
		p.advance()
		return NewVarNode(t.text), nil
	}
	if t.kind == tokKeyword && strings.HasPrefix(t.text, "_") {
		// unlikely; blank nodes arrive as keyword '_' + pname — not
		// supported in queries we accept.
		return Node{}, p.errf("blank nodes not supported in query patterns")
	}
	term, err := p.parseTermToken()
	if err != nil {
		return Node{}, err
	}
	return NewTermNode(term), nil
}

// pathStep is one step of a sequence property path.
type pathStep struct {
	pred    Node
	inverse bool
	// closure is 0 (none), '+' (one or more), or '*' (zero or more).
	closure byte
}

// parsePath parses a property path: step ('/' step)*, where each step
// is an optionally inverted IRI, 'a', or a variable (single-step only).
func (p *parser) parsePath() ([]pathStep, error) {
	var steps []pathStep
	for {
		var st pathStep
		if p.acceptPunct("^") {
			st.inverse = true
		}
		t := p.cur()
		switch {
		case t.kind == tokVar:
			p.advance()
			st.pred = NewVarNode(t.text)
		case t.kind == tokKeyword && t.text == "a":
			p.advance()
			st.pred = NewTermNode(rdf.NewIRI(rdf.RDFType))
		case t.kind == tokIRI:
			p.advance()
			st.pred = NewTermNode(rdf.NewIRI(t.text))
		case t.kind == tokPName:
			p.advance()
			term, err := p.expandPName(t)
			if err != nil {
				return nil, err
			}
			st.pred = NewTermNode(term)
		default:
			return nil, p.errf("expected predicate, got %q", t.text)
		}
		if p.punct("+") || p.punct("*") {
			if st.pred.IsVar {
				return nil, p.errf("closure over a variable predicate")
			}
			st.closure = p.cur().text[0]
			p.advance()
		}
		steps = append(steps, st)
		if !p.acceptPunct("/") {
			return steps, nil
		}
	}
}

// parseTriplesSameSubject parses one subject with its predicate-object
// lists, expanding property paths into fresh-variable chains.
func (p *parser) parseTriplesSameSubject() ([]PatternElement, error) {
	subj, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	var out []PatternElement
	for {
		steps, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if len(steps) > 1 {
			for _, st := range steps {
				if st.pred.IsVar {
					return nil, p.errf("variable predicates not allowed in sequence paths")
				}
			}
		}
		for {
			obj, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			out = append(out, p.expandPath(subj, steps, obj)...)
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			return out, nil
		}
		// allow trailing ';' before '.' or '}'
		if p.punct(".") || p.punct("}") {
			return out, nil
		}
	}
}

// expandPath turns subj —steps→ obj into a chain of simple triple (or
// closure) patterns over fresh internal variables.
func (p *parser) expandPath(subj Node, steps []pathStep, obj Node) []PatternElement {
	out := make([]PatternElement, 0, len(steps))
	cur := subj
	for i, st := range steps {
		var next Node
		if i == len(steps)-1 {
			next = obj
		} else {
			next = NewVarNode(fmt.Sprintf("%s%d", internalVarPrefix, p.pathN))
			p.pathN++
		}
		s, o := cur, next
		if st.inverse {
			s, o = o, s
		}
		if st.closure != 0 {
			out = append(out, ClosurePattern{S: s, O: o, Pred: st.pred.Term, MinZero: st.closure == '*'})
		} else {
			out = append(out, TriplePattern{S: s, P: st.pred, O: o})
		}
		cur = next
	}
	return out
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.punct(op) {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	not := false
	if p.keyword("NOT") {
		// lookahead for IN
		save := p.i
		p.advance()
		if !p.keyword("IN") {
			p.i = save
			return l, nil
		}
		not = true
	}
	if p.acceptKeyword("IN") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []Expr
		for !p.acceptPunct(")") {
			if len(list) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
		return InExpr{E: l, List: list, Not: not}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptPunct("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.acceptPunct("!"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "!", E: e}, nil
	case p.acceptPunct("-"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", E: e}, nil
	case p.acceptPunct("+"):
		return p.parseUnary()
	}
	return p.parsePrimary()
}

// builtinFuncs is the set of supported non-aggregate builtins.
var builtinFuncs = map[string]int{ // name → arity (-1 = variadic)
	"STR": 1, "LCASE": 1, "UCASE": 1, "STRLEN": 1,
	"CONTAINS": 2, "STRSTARTS": 2, "STRENDS": 2,
	"REGEX": -1, "BOUND": 1, "ABS": 1, "ROUND": 1, "FLOOR": 1, "CEIL": 1,
	"CONCAT": -1, "STRBEFORE": 2, "STRAFTER": 2, "REPLACE": -1, "SUBSTR": -1,
	"ISIRI": 1, "ISURI": 1, "ISLITERAL": 1, "ISNUMERIC": 1, "ISBLANK": 1,
	"LANG": 1, "DATATYPE": 1, "COALESCE": -1, "IF": 3,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case p.punct("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case t.kind == tokVar:
		p.advance()
		return VarExpr{Name: t.text}, nil
	case t.kind == tokKeyword && isAggregateName(t.text):
		return p.parseAggregate()
	case t.kind == tokKeyword && (strings.EqualFold(t.text, "EXISTS") || strings.EqualFold(t.text, "NOT")):
		not := false
		if p.acceptKeyword("NOT") {
			not = true
		}
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errf("expected EXISTS")
		}
		group, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		ee := ExistsExpr{Not: not}
		for _, el := range group {
			switch x := el.(type) {
			case TriplePattern:
				ee.Patterns = append(ee.Patterns, x)
			case FilterElement:
				ee.Filters = append(ee.Filters, x.Expr)
			default:
				return nil, p.errf("unsupported element inside EXISTS")
			}
		}
		return ee, nil
	case t.kind == tokKeyword:
		upper := strings.ToUpper(t.text)
		if arity, ok := builtinFuncs[upper]; ok {
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var args []Expr
			for !p.acceptPunct(")") {
				if len(args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if arity >= 0 && len(args) != arity {
				return nil, p.errf("%s expects %d arguments, got %d", upper, arity, len(args))
			}
			return FuncExpr{Name: upper, Args: args}, nil
		}
		// true/false or a bare prefixed name fall through to term.
		term, err := p.parseTermToken()
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: term}, nil
	default:
		term, err := p.parseTermToken()
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: term}, nil
	}
}

func (p *parser) parseAggregate() (Expr, error) {
	fn := strings.ToUpper(p.cur().text)
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := AggExpr{Fn: fn}
	if p.acceptKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.acceptPunct("*") {
		if fn != "COUNT" {
			return nil, p.errf("* argument only valid for COUNT")
		}
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if p.acceptPunct(";") {
		if !p.acceptKeyword("SEPARATOR") {
			return nil, p.errf("expected SEPARATOR")
		}
		if !p.acceptPunct("=") {
			return nil, p.errf("expected '=' after SEPARATOR")
		}
		if p.cur().kind != tokString {
			return nil, p.errf("expected string separator")
		}
		agg.Sep = p.cur().text
		p.advance()
	}
	return agg, p.expectPunct(")")
}

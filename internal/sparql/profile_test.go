package sparql

import (
	"context"
	"strings"
	"testing"
)

// profileText flattens a one-column "plan" Results into text.
func profileText(t *testing.T, res *Results) string {
	t.Helper()
	if len(res.Vars) != 1 || res.Vars[0] != "plan" {
		t.Fatalf("explain results vars = %v, want [plan]", res.Vars)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Value)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainPrefixRouting checks QueryString recognizes the EXPLAIN
// and EXPLAIN ANALYZE prefixes and returns the plan (or profile) as a
// one-column result set, so it travels through every client and
// serialization unchanged.
func TestExplainPrefixRouting(t *testing.T) {
	eng := NewEngine(testStore(t))
	query := `SELECT ?c (SUM(?v) AS ?s) WHERE { ?o <http://ex.org/origin> ?c . ?o <http://ex.org/value> ?v } GROUP BY ?c`

	res, err := eng.QueryString("EXPLAIN " + query)
	if err != nil {
		t.Fatal(err)
	}
	txt := profileText(t, res)
	if !strings.Contains(txt, "scan") && !strings.Contains(txt, "join") {
		t.Errorf("EXPLAIN output has no plan operators:\n%s", txt)
	}
	if strings.Contains(txt, "wall=") {
		t.Errorf("plain EXPLAIN should not execute:\n%s", txt)
	}

	res, err = eng.QueryString("explain analyze " + query) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	txt = profileText(t, res)
	for _, want := range []string{"EXPLAIN ANALYZE", "rows=", "wall=", "phases:", "aggregate"} {
		if !strings.Contains(txt, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, txt)
		}
	}

	// The prefix must not shadow real queries or break error reporting.
	if _, err := eng.QueryString("EXPLAIN NOT SPARQL"); err == nil {
		t.Error("EXPLAIN of a bad query did not error")
	}
	if _, err := eng.QueryString(query); err != nil {
		t.Errorf("plain query broken by prefix routing: %v", err)
	}
}

// TestProfileRowCounts checks the actual row counts in the profile are
// consistent: the root matches the final result cardinality and every
// scan carries an estimate for the delta report.
func TestProfileRowCounts(t *testing.T) {
	eng := NewEngine(testStore(t))
	query := `SELECT ?o ?c WHERE { ?o <http://ex.org/origin> ?c . ?o <http://ex.org/value> ?v } ORDER BY ?o`
	res, p, err := eng.Profile(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.RowsOut != res.Len() {
		t.Errorf("root rows = %d, result rows = %d", p.Root.RowsOut, res.Len())
	}
	if p.Root.Wall <= 0 {
		t.Error("root wall time not recorded")
	}
	deltas := p.Deltas()
	if len(deltas) == 0 {
		t.Fatal("no cardinality deltas (no estimated operators?)")
	}
	for _, d := range deltas {
		if d.Est < 0 {
			t.Errorf("delta for %s %s has no estimate", d.Op, d.Detail)
		}
	}
	// The first scan's actual output is bounded by the store's matching
	// triples: six origin triples in the fixture.
	var scan *ProfileNode
	var find func(n *ProfileNode)
	find = func(n *ProfileNode) {
		if scan == nil && (n.Op == "scan" || n.Op == "index join") {
			scan = n
		}
		for _, c := range n.Children {
			find(c)
		}
	}
	find(p.Root)
	if scan == nil {
		t.Fatal("no scan node in profile tree")
	}
	if scan.Est != 6 {
		t.Errorf("first scan estimate = %d, want 6 (origin triples)", scan.Est)
	}
	if scan.RowsOut != 6 {
		t.Errorf("first scan rows out = %d, want 6", scan.RowsOut)
	}
}

// TestProfileMatchesBare checks profiling is pure observation: the
// result text is identical with and without the profiler, across
// query shapes that exercise every hooked operator.
func TestProfileMatchesBare(t *testing.T) {
	eng := NewEngine(testStore(t))
	ctx := context.Background()
	for _, query := range []string{
		`SELECT ?o ?c WHERE { ?o <http://ex.org/origin> ?c } ORDER BY ?o ?c`,
		`SELECT ?c (SUM(?v) AS ?s) WHERE { ?o <http://ex.org/origin> ?c . ?o <http://ex.org/value> ?v } GROUP BY ?c ORDER BY ?c`,
		`SELECT DISTINCT ?c WHERE { { ?o <http://ex.org/origin> ?c } UNION { ?o <http://ex.org/dest> ?c } }`,
		`SELECT ?c ?l WHERE { ?o <http://ex.org/origin> ?c OPTIONAL { ?c <http://ex.org/label> ?l } } ORDER BY ?c ?l`,
		`SELECT ?o WHERE { ?o <http://ex.org/value> ?v FILTER(?v > 100) } ORDER BY ?o`,
		`ASK { ?o <http://ex.org/origin> <http://ex.org/sy> }`,
		`CONSTRUCT { ?c <http://v/from> ?o } WHERE { ?o <http://ex.org/origin> ?c }`,
	} {
		bare, err := eng.QueryString(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		profiled, p, err := eng.Profile(ctx, query)
		if err != nil {
			t.Fatalf("%s: profiled: %v", query, err)
		}
		if bare.String() != profiled.String() {
			t.Errorf("profiled results diverge for %s:\n%s\nvs\n%s", query, profiled, bare)
		}
		if p == nil || len(p.Root.Children) == 0 {
			t.Errorf("%s: empty profile tree", query)
		}
	}
}

package sparql

import (
	"sync"

	"re2xolap/internal/par"
)

// ExecOptions configures the executor's intra-query parallelism. The
// zero value means "use the machine": worker count defaults to
// GOMAXPROCS. Setting Workers to 1 selects the fully sequential
// executor, which is the debugging baseline — parallel and sequential
// execution produce identical Results.
type ExecOptions struct {
	// Workers bounds the goroutines a single query may fan out to.
	// 0 means GOMAXPROCS; 1 disables parallelism.
	Workers int
	// ParallelThreshold is the minimum number of seed rows a join or
	// filter stage needs before it is chunked across workers; smaller
	// inputs run sequentially (fan-out overhead would dominate).
	// 0 means DefaultParallelThreshold.
	ParallelThreshold int
	// AggShards is the number of partial-aggregation shards used by
	// parallel GROUP BY. 0 means the worker count.
	AggShards int
}

// DefaultParallelThreshold is the seed-row count below which a stage
// stays sequential.
const DefaultParallelThreshold = 64

func (o ExecOptions) workers() int { return par.Workers(o.Workers) }

func (o ExecOptions) threshold() int {
	if o.ParallelThreshold > 0 {
		return o.ParallelThreshold
	}
	return DefaultParallelThreshold
}

func (o ExecOptions) shards() int {
	if o.AggShards > 0 {
		return o.AggShards
	}
	return o.workers()
}

// parallel reports whether a stage over n input rows should fan out.
func (ex *executor) parallel(n int) bool {
	return ex.workers > 1 && n >= ex.threshold
}

// clone returns an executor that shares this executor's engine, store
// view, dictionary, context, and cancellation latch, but owns its
// mutable per-evaluation state (slot table, solution budget, tick
// counter). Worker goroutines run on clones so that state mutated
// mid-evaluation — EXISTS temporarily overriding the limit, fresh
// variables registered by nested groups — never races across workers.
// Clones are sequential (workers=1): fan-out happens at one level only.
func (ex *executor) clone() *executor {
	slots := make(map[string]int, len(ex.slots))
	for k, v := range ex.slots {
		slots[k] = v
	}
	return &executor{
		eng:       ex.eng,
		view:      ex.view,
		dict:      ex.dict,
		slots:     slots,
		varSeq:    append([]string(nil), ex.varSeq...),
		limit:     ex.limit,
		ctx:       ex.ctx,
		dead:      ex.dead,
		workers:   1,
		threshold: ex.threshold,
	}
}

// runRowChunks partitions rows into one contiguous chunk per worker,
// runs fn over the chunks concurrently (each on a cloned executor),
// and concatenates the chunk outputs in input order. Because chunks
// are contiguous and merged in order, the result is byte-identical to
// running fn over the whole input sequentially, provided fn itself is
// order-preserving per chunk (all executor stages are). The first
// error by chunk order wins; the shared cancellation latch makes the
// remaining workers drain promptly.
func (ex *executor) runRowChunks(rows []row, fn func(w *executor, chunk []row) ([]row, error)) ([]row, error) {
	chunks := par.Chunks(len(rows), ex.workers)
	if len(chunks) <= 1 {
		return fn(ex, rows)
	}
	outs := make([][]row, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for i, c := range chunks {
		go func(i int, lo, hi int) {
			defer wg.Done()
			w := ex.clone()
			outs[i], errs[i] = fn(w, rows[lo:hi])
			if errs[i] != nil {
				// Latch so sibling workers stop scanning; the error is
				// propagated below, so the latch can't silently truncate
				// results.
				ex.dead.Store(true)
			}
		}(i, c[0], c[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The latch may also have been set by a context check in a worker;
	// surface the context error rather than merging partial chunks.
	if err := ex.ctxErr(); err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]row, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}

// runIndexed runs fn for every index in [0, n), partitioned into
// contiguous chunks over the worker pool, each chunk on a cloned
// executor. fn must only write to index-addressed state (no shared
// appends). wide says whether fan-out is worthwhile (callers gate on
// the row threshold for cheap per-item work, or on item count alone
// when each item is expensive); when false, fn runs inline on this
// executor.
func (ex *executor) runIndexed(n int, wide bool, fn func(w *executor, i int)) {
	chunks := par.Chunks(n, ex.workers)
	if !wide || ex.workers <= 1 || len(chunks) <= 1 {
		for i := 0; i < n; i++ {
			fn(ex, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for _, c := range chunks {
		go func(lo, hi int) {
			defer wg.Done()
			w := ex.clone()
			for i := lo; i < hi; i++ {
				fn(w, i)
			}
		}(c[0], c[1])
	}
	wg.Wait()
}

// joinDFSPar is the parallel form of the short-circuit DFS join. A
// depth-first search explores one path at a time and so exposes no
// concurrency; instead the first pattern is expanded breadth-first
// into a frontier of depth-1 rows, the frontier is chunked over the
// workers, and each worker runs the remaining DFS with the full
// solution budget. Concatenating the worker outputs in chunk order and
// truncating to the budget reproduces the sequential output exactly:
// the sequential result is the first ex.limit solutions in frontier
// order, each worker emits its chunk's solutions in that same order,
// and a worker's own budget can only cut solutions that lie beyond
// position ex.limit of the concatenation. The trade-off is that the
// whole depth-1 frontier is materialized even if the budget would have
// been reached early — acceptable because the planner puts the most
// selective pattern first, making the frontier the smallest available.
func (ex *executor) joinDFSPar(seed []row, plan *dfsPlan) ([]row, error) {
	var frontier []row
	seedFilters := plan.filtersAt(-1)
	depth0 := plan.filtersAt(0)
	for _, r := range seed {
		if err := ex.ctxErr(); err != nil {
			return nil, err
		}
		r = ex.extendOne(r)
		ok := true
		for _, f := range seedFilters {
			keep, err := evalBool(f, rowBinding{ex: ex, r: r})
			if err != nil || !keep {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, nr := range ex.matchOne(r, plan.order[0]) {
			keepRow := true
			for _, f := range depth0 {
				keep, err := evalBool(f, rowBinding{ex: ex, r: nr})
				if err != nil || !keep {
					keepRow = false
					break
				}
			}
			if keepRow {
				frontier = append(frontier, nr)
			}
		}
	}
	out, err := ex.runRowChunks(frontier, func(w *executor, chunk []row) ([]row, error) {
		return w.runDFS(chunk, plan, 1)
	})
	if err != nil {
		return nil, err
	}
	if ex.limit > 0 && len(out) > ex.limit {
		out = out[:ex.limit]
	}
	return out, nil
}

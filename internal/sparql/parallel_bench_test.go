package sparql

import (
	"context"
	"fmt"
	"testing"

	"re2xolap/internal/datagen"
	"re2xolap/internal/obs"
	"re2xolap/internal/store"
)

// benchEngines builds one store and a sequential + parallel engine over
// it; the b.Run pairs below expose the executor overhead/speedup for
// each pipeline stage.
func benchStore(b *testing.B, obs int) (*store.Store, datagen.Spec) {
	b.Helper()
	spec := datagen.EurostatLike(obs)
	st, err := spec.BuildStore()
	if err != nil {
		b.Fatal(err)
	}
	return st, spec
}

func benchQuery(b *testing.B, st *store.Store, workers int, query string) {
	b.Helper()
	eng := NewEngine(st)
	eng.Exec.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryString(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPJoin(b *testing.B) {
	st, spec := benchStore(b, 5000)
	q := fmt.Sprintf(
		`SELECT ?o ?m ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?v . } ORDER BY ?o LIMIT 1000`,
		spec.ObservationClass(), spec.NS+spec.Dimensions[0].Pred, spec.NS+spec.Measures[0].Pred)
	b.Run("seq", func(b *testing.B) { benchQuery(b, st, 1, q) })
	b.Run("par", func(b *testing.B) { benchQuery(b, st, 0, q) })
}

// BenchmarkBGPJoinObserved measures the observability overhead on the
// BGP-join workload through the string entry point the protocol layer
// uses: "nil" is the uninstrumented engine (must match the plain
// bench), "metrics" has a live registry recording phase histograms.
// The acceptance bar is <2% overhead with metrics on, ~0% with nil.
func BenchmarkBGPJoinObserved(b *testing.B) {
	st, spec := benchStore(b, 5000)
	q := fmt.Sprintf(
		`SELECT ?o ?m ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?v . } ORDER BY ?o LIMIT 1000`,
		spec.ObservationClass(), spec.NS+spec.Dimensions[0].Pred, spec.NS+spec.Measures[0].Pred)
	run := func(b *testing.B, reg *obs.Registry) {
		eng := NewEngine(st)
		eng.Exec.Workers = 1
		eng.Instrument(reg)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QueryStringContext(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("metrics", func(b *testing.B) { run(b, obs.NewRegistry()) })
	// The runtime profiler's enabled cost, for comparison; its disabled
	// cost is already inside "nil" (one nil check per operator).
	b.Run("profiled", func(b *testing.B) {
		eng := NewEngine(st)
		eng.Exec.Workers = 1
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Profile(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGroupBy(b *testing.B) {
	st, spec := benchStore(b, 5000)
	q := fmt.Sprintf(
		`SELECT ?m (COUNT(?o) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY ?m`,
		spec.NS+spec.Dimensions[0].Pred, spec.NS+spec.Measures[0].Pred)
	b.Run("seq", func(b *testing.B) { benchQuery(b, st, 1, q) })
	b.Run("par", func(b *testing.B) { benchQuery(b, st, 0, q) })
}

func BenchmarkUnion(b *testing.B) {
	st, spec := benchStore(b, 5000)
	q := fmt.Sprintf(
		`SELECT ?x WHERE { { ?o <%s> ?x . } UNION { ?o <%s> ?x . } } LIMIT 2000`,
		spec.NS+spec.Dimensions[0].Pred, spec.NS+spec.Dimensions[1].Pred)
	b.Run("seq", func(b *testing.B) { benchQuery(b, st, 1, q) })
	b.Run("par", func(b *testing.B) { benchQuery(b, st, 0, q) })
}

package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// Engine executes parsed queries against a store. An Engine is safe
// for concurrent use: each query takes an immutable store view at
// start (snapshot isolation) and keeps all mutable evaluation state in
// a per-query executor.
type Engine struct {
	st *store.Store
	// Exec configures intra-query parallelism; the zero value means
	// GOMAXPROCS workers (see ExecOptions). Set Exec.Workers = 1 for
	// the sequential debugging baseline.
	Exec ExecOptions
	// DisableTextIndex turns off the full-text rewrite of keyword
	// filters (used by the ablation benchmarks).
	DisableTextIndex bool
	// DisableJoinOrdering makes the executor join patterns in syntactic
	// order (used by the ablation benchmarks).
	DisableJoinOrdering bool

	// metrics holds the pre-registered observability series; nil until
	// Instrument is called. The query path checks this one pointer to
	// decide between the timed and the bare execution paths.
	metrics *engineMetrics
}

// NewEngine returns an engine over st.
func NewEngine(st *store.Store) *Engine { return &Engine{st: st} }

// Store returns the engine's backing store, letting serving layers
// reach store-level facts (e.g. the mutation generation counter)
// without holding a second reference.
func (e *Engine) Store() *store.Store { return e.st }

// QueryString parses and executes src. An EXPLAIN or EXPLAIN ANALYZE
// prefix returns the static plan or the runtime profile as a one-column
// result set instead of executing normally.
func (e *Engine) QueryString(src string) (*Results, error) {
	if rest, analyze, ok := explainPrefix(src); ok {
		return e.runExplain(context.Background(), rest, analyze)
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Query(q)
}

// QueryStringContext parses and executes src under ctx: cancellation
// or deadline expiry aborts the join mid-flight. When the engine is
// instrumented (Instrument) or ctx carries a trace span, execution is
// routed through the timed path so phase metrics and spans are
// recorded; otherwise this is the zero-overhead path.
func (e *Engine) QueryStringContext(ctx context.Context, src string) (*Results, error) {
	if rest, analyze, ok := explainPrefix(src); ok {
		return e.runExplain(ctx, rest, analyze)
	}
	if e.metrics != nil || obs.SpanFrom(ctx) != nil {
		res, _, err := e.QueryStringTimed(ctx, src)
		return res, err
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.QueryContext(ctx, q)
}

// Query executes a parsed query without cancellation.
func (e *Engine) Query(q *Query) (*Results, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext executes a parsed query, aborting with ctx.Err() when
// the context is cancelled. Cancellation is checked every few thousand
// row extensions, so long-running analytical joins stop promptly (the
// paper's evaluation relies on endpoint timeouts for the similarity
// blow-up cases).
func (e *Engine) QueryContext(ctx context.Context, q *Query) (*Results, error) {
	return e.queryWithView(ctx, q, e.st.View())
}

// queryWithView executes q against an already-taken store view, so
// subqueries share the outer query's snapshot.
func (e *Engine) queryWithView(ctx context.Context, q *Query, view *store.View) (*Results, error) {
	return e.queryPhased(ctx, q, view, nil, nil)
}

// queryPhased is queryWithView with optional phase accounting and
// operator profiling: when pt is non-nil the plan/join/aggregate/sort
// wall times and the result row count are recorded into it; when prof
// is non-nil every operator additionally records a ProfileNode. pt ==
// nil, prof == nil (the default path, and all subqueries) takes no
// timestamps at all, keeping the uninstrumented hot path
// byte-identical to the pre-observability engine.
func (e *Engine) queryPhased(ctx context.Context, q *Query, view *store.View, pt *PhaseTimings, prof *profiler) (*Results, error) {
	var mark time.Time
	if pt != nil {
		mark = time.Now()
	}
	ex := &executor{
		eng: e, view: view, dict: view.Dict(),
		slots: map[string]int{}, ctx: ctx,
		workers: e.Exec.workers(), threshold: e.Exec.threshold(),
		dead: new(atomic.Bool), prof: prof,
	}
	// Short-circuit budget: ASK and plain LIMIT queries stop the join
	// as soon as enough full solutions exist, so their cost does not
	// grow with the number of matching observations (mirroring a real
	// triplestore's early-exit ASK).
	switch {
	case q.Ask:
		ex.limit = 1
	case !q.IsAggregate() && !q.Distinct && len(q.OrderBy) == 0 && q.Limit >= 0:
		ex.limit = q.Limit + q.Offset
	}
	if pt != nil {
		now := time.Now()
		pt.Plan = now.Sub(mark)
		mark = now
	}
	rows, err := ex.evalWhere(q.Where)
	if pt != nil {
		pt.Join = time.Since(mark)
	}
	if err != nil {
		return nil, err
	}
	if err := ex.ctx.Err(); err != nil {
		return nil, err
	}
	if q.Ask {
		return &Results{IsAsk: true, Boolean: len(rows) > 0}, nil
	}
	if q.Construct != nil {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("construct", fmt.Sprintf("%d template triples", len(q.Construct)), len(rows))
		}
		res, cerr := ex.construct(q, rows)
		if res != nil {
			ex.profClose(pn, len(res.Triples))
		} else {
			ex.profClose(pn, 0)
		}
		return res, cerr
	}
	if pt != nil {
		mark = time.Now()
	}
	var res *Results
	var pn *ProfileNode
	if q.IsAggregate() {
		if ex.prof != nil {
			pn = ex.prof.open("aggregate", aggregateDetail(q), len(rows))
			if ex.parallel(len(rows)) {
				pn.Workers = e.Exec.shards()
			}
		}
		res, err = ex.aggregate(q, rows)
	} else {
		if ex.prof != nil {
			pn = ex.prof.open("project", "", len(rows))
			if ex.parallel(len(rows)) {
				pn.Workers = ex.workers
			}
		}
		res, err = ex.project(q, rows)
	}
	if res != nil {
		ex.profClose(pn, len(res.Rows))
	} else {
		ex.profClose(pn, 0)
	}
	if pt != nil {
		now := time.Now()
		pt.Aggregate = now.Sub(mark)
		mark = now
	}
	if err != nil {
		return nil, err
	}
	var mn *ProfileNode
	if ex.prof != nil {
		mn = ex.prof.open("modifiers", modifierDetail(q), len(res.Rows))
	}
	if err := applyModifiers(q, res); err != nil {
		return nil, err
	}
	ex.profClose(mn, len(res.Rows))
	if pt != nil {
		pt.Sort = time.Since(mark)
	}
	return res, nil
}

// executor holds per-query state: the variable slot table and the
// binding rows. Parallel stages run on clones (see clone) that share
// the view, context, and cancellation latch but own everything
// mutable.
type executor struct {
	eng    *Engine
	view   *store.View
	dict   *store.Dict
	slots  map[string]int
	varSeq []string // slot → name, in first-seen order
	// limit > 0 enables the short-circuit DFS join: evaluation stops
	// once that many full solutions exist.
	limit int
	// workers/threshold are the resolved parallelism settings for this
	// query; clones run with workers = 1.
	workers   int
	threshold int
	// ctx cancels long joins; ticks counts row extensions between
	// cancellation checks; dead latches the first observed
	// cancellation so every later check aborts immediately (the tick
	// boundary may land deep in a scan callback whose caller discards
	// errors — without the latch the rest of the query keeps running).
	// The latch is shared by all clones of one query, so a cancel seen
	// by any worker drains the whole pool promptly.
	ctx   context.Context
	ticks int
	dead  *atomic.Bool
	// prof collects the per-operator profile when non-nil; nil (the
	// default, and every worker clone) is the disabled state, costing
	// one pointer check per operator.
	prof *profiler
}

// cancelCheckInterval is how many row extensions pass between context
// checks.
const cancelCheckInterval = 8192

// cancelled reports whether the query's context has been cancelled,
// checking at most every cancelCheckInterval calls.
func (ex *executor) cancelled() bool {
	if ex.dead.Load() {
		return true
	}
	if ex.ctx == nil {
		return false
	}
	ex.ticks++
	if ex.ticks%cancelCheckInterval != 0 {
		return false
	}
	if ex.ctx.Err() != nil {
		ex.dead.Store(true)
		return true
	}
	return false
}

// ctxErr is the unconditional form of cancelled, for loop boundaries
// where the per-iteration cost is already large.
func (ex *executor) ctxErr() error {
	if ex.ctx == nil {
		return nil
	}
	return ex.ctx.Err()
}

func (ex *executor) slot(name string) int {
	if s, ok := ex.slots[name]; ok {
		return s
	}
	s := len(ex.varSeq)
	ex.slots[name] = s
	ex.varSeq = append(ex.varSeq, name)
	return s
}

// row is a partial solution: one term ID per slot, 0 = unbound.
type row []store.ID

func (ex *executor) extendRows(rows []row) []row {
	n := len(ex.varSeq)
	for i, r := range rows {
		for len(r) < n {
			r = append(r, 0)
		}
		rows[i] = r
	}
	return rows
}

// evalWhere evaluates the WHERE clause and returns binding rows.
func (ex *executor) evalWhere(elems []PatternElement) ([]row, error) {
	var patterns []TriplePattern
	var filters []Expr
	var values []ValuesElement
	var optionals []OptionalElement
	var unions []UnionElement
	var closures []ClosurePattern
	var subs []SubSelectElement
	var binds []BindElement
	for _, el := range elems {
		switch x := el.(type) {
		case TriplePattern:
			patterns = append(patterns, x)
		case FilterElement:
			filters = append(filters, x.Expr)
		case ValuesElement:
			values = append(values, x)
		case OptionalElement:
			optionals = append(optionals, x)
		case UnionElement:
			unions = append(unions, x)
		case ClosurePattern:
			closures = append(closures, x)
		case SubSelectElement:
			subs = append(subs, x)
		case BindElement:
			binds = append(binds, x)
		}
	}
	// Pre-register pattern variables so slots are stable.
	for _, tp := range patterns {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar {
				ex.slot(n.Var)
			}
		}
	}
	rows := []row{make(row, len(ex.varSeq))}
	// Subqueries run first: their solutions seed the join like VALUES.
	for _, sub := range subs {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("subquery", sub.Query.String(), len(rows))
		}
		var err error
		rows, err = ex.joinSubSelect(rows, sub)
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
	}
	// VALUES blocks join first: they are small and selective.
	for _, v := range values {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("values", strings.Join(v.Vars, ", "), len(rows))
		}
		var err error
		rows, err = ex.joinValues(rows, v)
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
	}
	// Full-text rewrite: keyword filters become candidate-set joins.
	if !ex.eng.DisableTextIndex {
		for _, f := range filters {
			if v, kw, ok := textConstraint(f); ok {
				ids := ex.view.TextSearch(kw)
				var pn *ProfileNode
				if ex.prof != nil {
					pn = ex.prof.open("text-seed", fmt.Sprintf("?%s ~ %q", v, kw), len(rows))
					pn.Est = int64(len(ids))
				}
				rows = ex.joinCandidates(rows, v, ids)
				ex.profClose(pn, len(rows))
			}
		}
	}
	var err error
	if ex.limit > 0 && len(optionals) == 0 && len(unions) == 0 && len(closures) == 0 && len(subs) == 0 && len(binds) == 0 {
		if ex.prof == nil {
			return ex.joinDFS(rows, patterns, filters)
		}
		// The DFS interleaves all patterns and filters per solution path,
		// so it profiles as one operator.
		pn := ex.prof.open("dfs", fmt.Sprintf("%d patterns, budget %d", len(patterns), ex.limit), len(rows))
		if ex.workers > 1 && ex.limit != 1 && len(patterns) > 0 {
			pn.Workers = ex.workers
		}
		out, derr := ex.joinDFS(rows, patterns, filters)
		ex.profClose(pn, len(out))
		return out, derr
	}
	rows, err = ex.joinPatterns(rows, patterns, filters)
	if err != nil {
		return nil, err
	}
	for _, cp := range closures {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("closure", cp.String(), len(rows))
		}
		rows, err = ex.joinClosure(rows, cp)
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
	}
	for _, u := range unions {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("union", fmt.Sprintf("%d branches", len(u.Branches)), len(rows))
			if ex.workers > 1 && len(u.Branches) > 1 {
				pn.Workers = ex.workers
			}
		}
		// Branch evaluation re-enters joinPatterns; suppress nested
		// profiling so the union reports as one operator whether its
		// branches ran sequentially or on clones.
		saved := ex.prof
		ex.prof = nil
		rows, err = ex.joinUnion(rows, u)
		ex.prof = saved
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
	}
	for _, opt := range optionals {
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("optional", fmt.Sprintf("%d patterns", len(opt.Patterns)), len(rows))
		}
		// The left-join re-enters joinPatterns once per input row;
		// suppress nested profiling for the same reason as UNION.
		saved := ex.prof
		ex.prof = nil
		rows, err = ex.joinOptional(rows, opt)
		ex.prof = saved
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
	}
	// BIND assignments compute per-row values once all patterns are
	// joined. A failed or unbound expression leaves the variable unbound
	// (SPARQL semantics).
	var bindNode *ProfileNode
	if ex.prof != nil && len(binds) > 0 {
		names := make([]string, len(binds))
		for i, be := range binds {
			names[i] = "?" + be.Var
		}
		bindNode = ex.prof.open("bind", strings.Join(names, ", "), len(rows))
	}
	for _, be := range binds {
		slot := ex.slot(be.Var)
		rows = ex.extendRows(rows)
		for i, r := range rows {
			v, err := evalExpr(be.Expr, rowBinding{ex: ex, r: r})
			if err != nil || !v.Bound {
				continue
			}
			if r[slot] != 0 {
				continue // already bound: BIND does not overwrite
			}
			nr := append(row(nil), r...)
			nr[slot] = ex.dict.Encode(v.Term)
			rows[i] = nr
		}
	}
	ex.profClose(bindNode, len(rows))
	// Any filters not consumed during the pattern join run now
	// (joinPatterns marks consumed filters by nil-ing them).
	for _, f := range filters {
		if f == nil {
			continue
		}
		var pn *ProfileNode
		if ex.prof != nil {
			pn = ex.prof.open("filter", fmt.Sprint(f), len(rows))
			if ex.parallel(len(rows)) {
				pn.Workers = ex.workers
			}
		}
		rows = ex.applyFilter(rows, f)
		ex.profClose(pn, len(rows))
	}
	return rows, nil
}

// textConstraint recognizes CONTAINS(LCASE(STR(?v)), "kw"),
// CONTAINS(STR(?v), "kw"), and CONTAINS(?v, "kw") filter shapes.
func textConstraint(e Expr) (string, string, bool) {
	f, ok := e.(FuncExpr)
	if !ok || f.Name != "CONTAINS" || len(f.Args) != 2 {
		return "", "", false
	}
	c, ok := f.Args[1].(ConstExpr)
	if !ok || !c.Term.IsLiteral() {
		return "", "", false
	}
	arg := f.Args[0]
	for {
		if inner, ok := arg.(FuncExpr); ok && len(inner.Args) == 1 && (inner.Name == "LCASE" || inner.Name == "STR" || inner.Name == "UCASE") {
			arg = inner.Args[0]
			continue
		}
		break
	}
	v, ok := arg.(VarExpr)
	if !ok {
		return "", "", false
	}
	return v.Name, c.Term.Value, true
}

// joinCandidates restricts (or seeds) a variable with an explicit
// candidate ID set.
func (ex *executor) joinCandidates(rows []row, varName string, ids []store.ID) []row {
	slot := ex.slot(varName)
	rows = ex.extendRows(rows)
	inSet := make(map[store.ID]struct{}, len(ids))
	for _, id := range ids {
		inSet[id] = struct{}{}
	}
	var out []row
	for _, r := range rows {
		if r[slot] != 0 {
			if _, ok := inSet[r[slot]]; ok {
				out = append(out, r)
			}
			continue
		}
		for _, id := range ids {
			nr := append(row(nil), r...)
			nr[slot] = id
			out = append(out, nr)
		}
	}
	return out
}

func (ex *executor) joinValues(rows []row, v ValuesElement) ([]row, error) {
	slots := make([]int, len(v.Vars))
	for i, name := range v.Vars {
		slots[i] = ex.slot(name)
	}
	rows = ex.extendRows(rows)
	var out []row
	for _, r := range rows {
		for _, dataRow := range v.Rows {
			nr := append(row(nil), r...)
			ok := true
			for i, term := range dataRow {
				if term == nil {
					continue // UNDEF leaves the var as-is
				}
				id := ex.dict.Encode(*term)
				if nr[slots[i]] != 0 && nr[slots[i]] != id {
					ok = false
					break
				}
				nr[slots[i]] = id
			}
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out, nil
}

// joinPatterns joins all patterns into rows using greedy selectivity
// ordering, applying filters as soon as their variables are bound.
// Consumed filters are set to nil in the filters slice.
func (ex *executor) joinPatterns(rows []row, patterns []TriplePattern, filters []Expr) ([]row, error) {
	remaining := make([]TriplePattern, len(patterns))
	copy(remaining, patterns)
	boundVars := map[string]bool{}
	// Vars bound by VALUES/text seeding: a var is bound if any row
	// binds it. (All rows bind the same slots at this point.)
	if len(rows) > 0 {
		for name, s := range ex.slots {
			if s < len(rows[0]) && rows[0][s] != 0 {
				boundVars[name] = true
			}
		}
	}
	applyReady := func() {
		for i, f := range filters {
			if f == nil {
				continue
			}
			if containsAggregate(f) {
				continue
			}
			ready := true
			for _, v := range exprVars(f, nil) {
				if !boundVars[v] {
					ready = false
					break
				}
			}
			if ready {
				var pn *ProfileNode
				if ex.prof != nil {
					pn = ex.prof.open("filter", fmt.Sprint(f), len(rows))
					if ex.parallel(len(rows)) {
						pn.Workers = ex.workers
					}
				}
				rows = ex.applyFilter(rows, f)
				ex.profClose(pn, len(rows))
				filters[i] = nil
			}
		}
	}
	applyReady()
	for len(remaining) > 0 {
		idx := 0
		if !ex.eng.DisableJoinOrdering {
			idx = ex.cheapestPattern(remaining, boundVars)
		}
		tp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		var pn *ProfileNode
		if ex.prof != nil {
			op := "scan"
			for _, n := range []Node{tp.S, tp.P, tp.O} {
				if n.IsVar && boundVars[n.Var] {
					op = "index join"
					break
				}
			}
			pn = ex.prof.open(op, fmt.Sprint(tp), len(rows))
			pn.Est = int64(ex.view.MatchCount(ex.constID(tp.S), ex.constID(tp.P), ex.constID(tp.O)))
			if ex.parallel(len(rows)) {
				pn.Workers = ex.workers
			}
		}
		var err error
		rows, err = ex.joinPattern(rows, tp)
		ex.profClose(pn, len(rows))
		if err != nil {
			return nil, err
		}
		if ex.ctx != nil {
			if err := ex.ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar {
				boundVars[n.Var] = true
			}
		}
		applyReady()
		if len(rows) == 0 {
			return rows, nil
		}
	}
	return rows, nil
}

// cheapestPattern estimates each pattern's cost and returns the index
// of the cheapest. Constant positions use exact index counts; positions
// holding an already-bound variable divide the estimate since the join
// will be index-driven per row. Patterns sharing a bound variable are
// always preferred over disconnected ones — joining a disconnected
// pattern is a cartesian product, which dwarfs any per-pattern count
// difference. (Disconnected remains possible when the query itself is
// a product of independent components.)
func (ex *executor) cheapestPattern(patterns []TriplePattern, bound map[string]bool) int {
	anyBound := len(bound) > 0
	best, bestCost, bestConnected := 0, -1, false
	for i, tp := range patterns {
		s, p, o := ex.constID(tp.S), ex.constID(tp.P), ex.constID(tp.O)
		cost := ex.view.MatchCount(s, p, o)
		div := 1
		connected := !anyBound
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar && bound[n.Var] {
				div *= 16
				connected = true
			}
		}
		cost = cost/div + 1
		better := false
		switch {
		case bestCost < 0:
			better = true
		case connected != bestConnected:
			better = connected
		default:
			better = cost < bestCost
		}
		if better {
			best, bestCost, bestConnected = i, cost, connected
		}
	}
	return best
}

// constID returns the dictionary ID of a constant node, or 0 for
// variables and unknown terms.
func (ex *executor) constID(n Node) store.ID {
	if n.IsVar {
		return 0
	}
	id, _ := ex.dict.Lookup(n.Term)
	return id
}

// joinPattern extends each row with all matches of tp. With enough
// input rows it fans the scan out over the worker pool: chunks are
// contiguous and merged in order, so the output is identical to the
// sequential scan.
func (ex *executor) joinPattern(rows []row, tp TriplePattern) ([]row, error) {
	// Register pattern variables on this executor before any fan-out so
	// the parent and every worker clone agree on slot numbering.
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar {
			ex.slot(n.Var)
		}
	}
	if ex.parallel(len(rows)) {
		return ex.runRowChunks(rows, func(w *executor, chunk []row) ([]row, error) {
			return w.joinPatternSeq(chunk, tp)
		})
	}
	return ex.joinPatternSeq(rows, tp)
}

// joinPatternSeq is the single-goroutine scan loop behind joinPattern.
func (ex *executor) joinPatternSeq(rows []row, tp TriplePattern) ([]row, error) {
	type pos struct {
		slot  int // variable slot, -1 for constants
		id    store.ID
		known bool // constant exists in the dictionary
	}
	mk := func(n Node) pos {
		if n.IsVar {
			return pos{slot: ex.slot(n.Var)}
		}
		id, ok := ex.dict.Lookup(n.Term)
		return pos{slot: -1, id: id, known: ok}
	}
	ps, pp, po := mk(tp.S), mk(tp.P), mk(tp.O)
	if ps.slot < 0 && !ps.known || pp.slot < 0 && !pp.known || po.slot < 0 && !po.known {
		return nil, nil // constant term absent from the data: no matches
	}
	rows = ex.extendRows(rows)
	var out []row
	// A cancelled scan must also stop the loop over the input rows —
	// on a cartesian product that loop alone can run for minutes.
	stopped := false
	for _, r := range rows {
		if stopped || ex.cancelled() {
			return nil, ex.ctxErr()
		}
		get := func(p pos) store.ID {
			if p.slot < 0 {
				return p.id
			}
			return r[p.slot]
		}
		sID, pID, oID := get(ps), get(pp), get(po)
		ex.view.Match(sID, pID, oID, func(ts, tp2, to store.ID) bool {
			if ex.cancelled() {
				stopped = true
				return false
			}
			// repeated variable within the pattern (e.g. ?x ?p ?x)
			if ps.slot >= 0 && ps.slot == po.slot && ts != to {
				return true
			}
			nr := append(row(nil), r...)
			if ps.slot >= 0 {
				if nr[ps.slot] != 0 && nr[ps.slot] != ts {
					return true
				}
				nr[ps.slot] = ts
			}
			if pp.slot >= 0 {
				if nr[pp.slot] != 0 && nr[pp.slot] != tp2 {
					return true
				}
				nr[pp.slot] = tp2
			}
			if po.slot >= 0 {
				if nr[po.slot] != 0 && nr[po.slot] != to {
					return true
				}
				nr[po.slot] = to
			}
			out = append(out, nr)
			return true
		})
	}
	if stopped {
		return nil, ex.ctxErr()
	}
	return out, nil
}

// joinDFS is the short-circuit join used when a solution budget is
// set (ASK, plain LIMIT queries): patterns are ordered once with the
// greedy heuristic, then solutions are produced one at a time by
// depth-first backtracking, applying each filter at the first depth
// where its variables are bound, and stopping at ex.limit solutions.
// With more than one worker and a budget above one, the search runs in
// parallel over a depth-1 frontier (see joinDFSPar).
func (ex *executor) joinDFS(seed []row, patterns []TriplePattern, filters []Expr) ([]row, error) {
	plan := ex.planDFS(seed, patterns, filters)
	// ASK and EXISTS (budget 1) stay sequential: the expected work is a
	// single path, and widening the frontier would be pure speculation.
	if ex.workers > 1 && ex.limit != 1 && len(plan.order) > 0 {
		return ex.joinDFSPar(seed, plan)
	}
	return ex.runDFS(seed, plan, 0)
}

// schedFilter is a filter pinned to the first DFS depth where its
// variables are all bound; depth -1 means before any pattern join.
type schedFilter struct {
	expr  Expr
	depth int
}

// dfsPlan is the static part of a short-circuit DFS join: the greedy
// pattern order and the filter schedule. A plan is immutable once
// built, so worker clones share it.
type dfsPlan struct {
	order []TriplePattern
	sched []schedFilter
}

func (p *dfsPlan) filtersAt(depth int) []Expr {
	var out []Expr
	for _, sf := range p.sched {
		if sf.depth == depth {
			out = append(out, sf.expr)
		}
	}
	return out
}

// planDFS computes the greedy pattern order (simulating bound
// variables) and schedules each filter at the first depth where it is
// evaluable.
func (ex *executor) planDFS(seed []row, patterns []TriplePattern, filters []Expr) *dfsPlan {
	bound := map[string]bool{}
	if len(seed) > 0 {
		for name, s := range ex.slots {
			if s < len(seed[0]) && seed[0][s] != 0 {
				bound[name] = true
			}
		}
	}
	order := make([]TriplePattern, 0, len(patterns))
	remaining := append([]TriplePattern(nil), patterns...)
	for len(remaining) > 0 {
		idx := 0
		if !ex.eng.DisableJoinOrdering {
			idx = ex.cheapestPattern(remaining, bound)
		}
		tp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		order = append(order, tp)
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar {
				bound[n.Var] = true
			}
		}
	}
	p := &dfsPlan{order: order}
	for _, f := range filters {
		if f == nil || containsAggregate(f) {
			continue
		}
		vars := exprVars(f, nil)
		depth := -1
		for i := range order {
			covered := true
			for _, v := range vars {
				if !ex.varCoveredBy(v, seed, order[:i+1]) {
					covered = false
					break
				}
			}
			if covered {
				depth = i
				break
			}
			if i == len(order)-1 {
				depth = i // evaluate at the end; unbound vars error out
			}
		}
		if len(order) == 0 {
			depth = -1
		}
		p.sched = append(p.sched, schedFilter{expr: f, depth: depth})
	}
	return p
}

// runDFS runs the depth-first join over the seed rows, honouring
// ex.limit. With fromDepth 0 the seed rows are padded and seed filters
// applied; with a positive fromDepth the rows are assumed to be
// already-filtered frontier rows from that depth (parallel workers).
func (ex *executor) runDFS(seed []row, plan *dfsPlan, fromDepth int) ([]row, error) {
	var out []row
	// The DFS explores an unbounded search space before reaching its
	// solution budget; honour cancellation inside the recursion too.
	cancelled := false
	var rec func(r row, depth int) bool
	rec = func(r row, depth int) bool {
		if ex.cancelled() {
			cancelled = true
			return false
		}
		if depth == len(plan.order) {
			out = append(out, r)
			return len(out) < ex.limit
		}
		cont := true
		for _, nr := range ex.matchOne(r, plan.order[depth]) {
			ok := true
			for _, f := range plan.filtersAt(depth) {
				keep, err := evalBool(f, rowBinding{ex: ex, r: nr})
				if err != nil || !keep {
					ok = false
					break
				}
			}
			if ok && !rec(nr, depth+1) {
				cont = false
				break
			}
		}
		return cont
	}
	seedFilters := plan.filtersAt(-1)
	for _, r := range seed {
		if fromDepth > 0 {
			if !rec(r, fromDepth) {
				break
			}
			continue
		}
		r = ex.extendOne(r)
		ok := true
		for _, f := range seedFilters {
			keep, err := evalBool(f, rowBinding{ex: ex, r: r})
			if err != nil || !keep {
				ok = false
				break
			}
		}
		if ok && !rec(r, 0) {
			break
		}
	}
	if cancelled {
		return nil, ex.ctxErr()
	}
	return out, nil
}

// varCoveredBy reports whether the variable is bound by the seed rows
// or by any of the given patterns.
func (ex *executor) varCoveredBy(name string, seed []row, patterns []TriplePattern) bool {
	if s, ok := ex.slots[name]; ok && len(seed) > 0 && s < len(seed[0]) && seed[0][s] != 0 {
		return true
	}
	for _, tp := range patterns {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar && n.Var == name {
				return true
			}
		}
	}
	return false
}

// extendOne pads a single row to the current slot count.
func (ex *executor) extendOne(r row) row {
	for len(r) < len(ex.varSeq) {
		r = append(r, 0)
	}
	return r
}

// matchOne returns the extensions of one row by one pattern (the
// single-row version of joinPattern).
func (ex *executor) matchOne(r row, tp TriplePattern) []row {
	rows, _ := ex.joinPattern([]row{ex.extendOne(r)}, tp)
	return rows
}

// joinSubSelect evaluates a nested SELECT with a fresh executor and
// joins its solutions with the current rows on shared variables. The
// subquery inherits the outer query's context so deadlines reach it.
func (ex *executor) joinSubSelect(rows []row, sub SubSelectElement) ([]row, error) {
	ctx := ex.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := ex.eng.queryWithView(ctx, sub.Query, ex.view)
	if err != nil {
		return nil, fmt.Errorf("subquery: %w", err)
	}
	slots := make([]int, len(res.Vars))
	for i, v := range res.Vars {
		slots[i] = ex.slot(v)
	}
	rows = ex.extendRows(rows)
	var out []row
	for _, r := range rows {
		for _, srow := range res.Rows {
			nr := append(row(nil), r...)
			ok := true
			for i, t := range srow {
				if !Bound(t) {
					continue
				}
				id := ex.dict.Encode(t)
				if nr[slots[i]] != 0 && nr[slots[i]] != id {
					ok = false
					break
				}
				nr[slots[i]] = id
			}
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out, nil
}

// joinClosure joins a transitive path pattern S <p>+/<p>* O. Bound
// endpoints drive a breadth-first closure over the predicate; with
// both endpoints unbound, the closure is computed from every subject
// carrying the predicate.
func (ex *executor) joinClosure(rows []row, cp ClosurePattern) ([]row, error) {
	pid, ok := ex.dict.Lookup(cp.Pred)
	if !ok {
		if cp.MinZero {
			// Zero-length paths still hold: S = O.
			return ex.joinZeroLength(rows, cp), nil
		}
		return nil, nil
	}
	sPos, oPos := -1, -1
	if cp.S.IsVar {
		sPos = ex.slot(cp.S.Var)
	}
	if cp.O.IsVar {
		oPos = ex.slot(cp.O.Var)
	}
	rows = ex.extendRows(rows)
	constID := func(n Node) store.ID {
		if n.IsVar {
			return 0
		}
		id, _ := ex.dict.Lookup(n.Term)
		return id
	}
	var out []row
	for _, r := range rows {
		// Closure expansion over a dense predicate can dominate the
		// query; honour a server-side timeout between rows too.
		if err := ex.ctxErr(); err != nil {
			return nil, err
		}
		get := func(pos int, n Node) store.ID {
			if pos >= 0 {
				return r[pos]
			}
			return constID(n)
		}
		sID, oID := get(sPos, cp.S), get(oPos, cp.O)
		switch {
		case sID != 0:
			targets := ex.closureFrom(sID, pid, true, cp.MinZero)
			for _, t := range targets {
				if oID != 0 {
					if t == oID {
						out = append(out, r)
						break
					}
					continue
				}
				nr := append(row(nil), r...)
				nr[oPos] = t
				out = append(out, nr)
			}
		case oID != 0:
			sources := ex.closureFrom(oID, pid, false, cp.MinZero)
			for _, src := range sources {
				nr := append(row(nil), r...)
				nr[sPos] = src
				out = append(out, nr)
			}
		default:
			// Both unbound: start from every distinct subject of pid.
			seen := map[store.ID]bool{}
			ex.view.Match(0, pid, 0, func(sub, _, _ store.ID) bool {
				seen[sub] = true
				return true
			})
			for sub := range seen {
				for _, t := range ex.closureFrom(sub, pid, true, cp.MinZero) {
					nr := append(row(nil), r...)
					nr[sPos] = sub
					nr[oPos] = t
					out = append(out, nr)
				}
			}
		}
	}
	return out, nil
}

// joinZeroLength handles <p>* when p has no edges at all: S = O.
func (ex *executor) joinZeroLength(rows []row, cp ClosurePattern) []row {
	if !cp.S.IsVar && !cp.O.IsVar {
		if cp.S.Term == cp.O.Term {
			return rows
		}
		return nil
	}
	// Binding an unconstrained S = O pair to "every term" is
	// unbounded; restrict to rows where at least one side is bound.
	sPos, oPos := -1, -1
	if cp.S.IsVar {
		sPos = ex.slot(cp.S.Var)
	}
	if cp.O.IsVar {
		oPos = ex.slot(cp.O.Var)
	}
	rows = ex.extendRows(rows)
	var out []row
	for _, r := range rows {
		var sID, oID store.ID
		if sPos >= 0 {
			sID = r[sPos]
		} else {
			sID, _ = ex.dict.Lookup(cp.S.Term)
		}
		if oPos >= 0 {
			oID = r[oPos]
		} else {
			oID, _ = ex.dict.Lookup(cp.O.Term)
		}
		switch {
		case sID != 0 && oID != 0:
			if sID == oID {
				out = append(out, r)
			}
		case sID != 0:
			nr := append(row(nil), r...)
			nr[oPos] = sID
			out = append(out, nr)
		case oID != 0:
			nr := append(row(nil), r...)
			nr[sPos] = oID
			out = append(out, nr)
		}
	}
	return out
}

// closureFrom computes the forward (or backward) transitive closure of
// pid starting at id, optionally including the start node (MinZero).
func (ex *executor) closureFrom(id store.ID, pid store.ID, forward, includeStart bool) []store.ID {
	// visited dedupes expansion; emitted dedupes output. They differ
	// only for the start node, which belongs to the output when it is
	// re-reached through a cycle (c1 <p>+ c1) or when includeStart.
	visited := map[store.ID]bool{id: true}
	emitted := map[store.ID]bool{}
	frontier := []store.ID{id}
	var out []store.ID
	if includeStart {
		emitted[id] = true
		out = append(out, id)
	}
	for len(frontier) > 0 {
		// The BFS can touch the whole graph; stop expanding promptly
		// once the query's deadline or cancellation hits. The partial
		// closure is discarded by the caller's ctx check.
		if ex.ctxErr() != nil {
			return out
		}
		next := frontier[:0:0]
		for _, cur := range frontier {
			visit := func(n store.ID) bool {
				if ex.cancelled() {
					return false
				}
				if !emitted[n] {
					emitted[n] = true
					out = append(out, n)
				}
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
				}
				return true
			}
			if forward {
				ex.view.Match(cur, pid, 0, func(_, _, o store.ID) bool {
					return visit(o)
				})
			} else {
				ex.view.Match(0, pid, cur, func(s, _, _ store.ID) bool {
					return visit(s)
				})
			}
		}
		frontier = next
	}
	return out
}

// joinUnion joins the current rows with the union of the branches:
// each branch is evaluated as an inner join seeded with the current
// rows, and the branch results are concatenated.
func (ex *executor) joinUnion(rows []row, u UnionElement) ([]row, error) {
	// Pre-register branch variables so all branches share slots.
	for _, br := range u.Branches {
		for _, el := range br {
			if tp, ok := el.(TriplePattern); ok {
				for _, n := range []Node{tp.S, tp.P, tp.O} {
					if n.IsVar {
						ex.slot(n.Var)
					}
				}
			}
		}
	}
	rows = ex.extendRows(rows)
	branch := func(w *executor, br []PatternElement) ([]row, error) {
		var patterns []TriplePattern
		var filters []Expr
		for _, el := range br {
			switch x := el.(type) {
			case TriplePattern:
				patterns = append(patterns, x)
			case FilterElement:
				filters = append(filters, x.Expr)
			}
		}
		seed := make([]row, len(rows))
		for i, r := range rows {
			seed[i] = append(row(nil), r...)
		}
		joined, err := w.joinPatterns(seed, patterns, filters)
		if err != nil {
			return nil, err
		}
		for _, f := range filters {
			if f != nil {
				joined = w.applyFilter(joined, f)
			}
		}
		return joined, nil
	}
	// Branches are independent inner joins over the same seed, so they
	// run concurrently (each on a clone); concatenating the branch
	// results in branch order reproduces the sequential output exactly.
	if ex.workers > 1 && len(u.Branches) > 1 {
		outs := make([][]row, len(u.Branches))
		err := par.Do(ex.workers, len(u.Branches), func(i int) error {
			berr := error(nil)
			outs[i], berr = branch(ex.clone(), u.Branches[i])
			if berr != nil {
				ex.dead.Store(true)
			}
			return berr
		})
		if err != nil {
			return nil, err
		}
		if err := ex.ctxErr(); err != nil {
			return nil, err
		}
		var out []row
		for _, o := range outs {
			out = append(out, o...)
		}
		return ex.extendRows(out), nil
	}
	var out []row
	for _, br := range u.Branches {
		joined, err := branch(ex, br)
		if err != nil {
			return nil, err
		}
		out = append(out, joined...)
	}
	return ex.extendRows(out), nil
}

// joinOptional left-joins an OPTIONAL block.
func (ex *executor) joinOptional(rows []row, opt OptionalElement) ([]row, error) {
	for _, tp := range opt.Patterns {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar {
				ex.slot(n.Var)
			}
		}
	}
	rows = ex.extendRows(rows)
	var out []row
	for _, r := range rows {
		sub := []row{append(row(nil), r...)}
		filters := append([]Expr(nil), opt.Filters...)
		sub, err := ex.joinPatterns(sub, opt.Patterns, filters)
		if err != nil {
			return nil, err
		}
		for _, f := range filters {
			if f != nil {
				sub = ex.applyFilter(sub, f)
			}
		}
		if len(sub) == 0 {
			out = append(out, r)
		} else {
			out = append(out, sub...)
		}
	}
	return out, nil
}

// rowBinding adapts a row to the expression binding interface.
type rowBinding struct {
	ex *executor
	r  row
}

// exists evaluates an EXISTS sub-group correlated with this row: the
// inner patterns are joined seeded with the current bindings, stopping
// at the first solution.
func (b rowBinding) exists(e ExistsExpr) bool {
	ex := b.ex
	saved := ex.limit
	ex.limit = 1
	defer func() { ex.limit = saved }()
	seed := []row{append(row(nil), b.r...)}
	filters := append([]Expr(nil), e.Filters...)
	rows, err := ex.joinDFS(seed, e.Patterns, filters)
	return err == nil && len(rows) > 0
}

func (b rowBinding) value(name string) Value {
	s, ok := b.ex.slots[name]
	if !ok || s >= len(b.r) || b.r[s] == 0 {
		return Value{}
	}
	return boundValue(b.ex.dict.Decode(b.r[s]))
}

// applyFilter keeps the rows satisfying f. Large inputs are filtered
// in parallel chunks; since chunks are contiguous and merged in order,
// the surviving rows keep their input order either way.
func (ex *executor) applyFilter(rows []row, f Expr) []row {
	if ex.parallel(len(rows)) {
		out, err := ex.runRowChunks(rows, func(w *executor, chunk []row) ([]row, error) {
			return w.applyFilterSeq(chunk, f), nil
		})
		if err != nil {
			// Only a context error can land here; drop the rows and let
			// the caller's context check surface it.
			return nil
		}
		return out
	}
	return ex.applyFilterSeq(rows, f)
}

func (ex *executor) applyFilterSeq(rows []row, f Expr) []row {
	out := rows[:0]
	for _, r := range rows {
		keep, err := evalBool(f, rowBinding{ex: ex, r: r})
		if err == nil && keep {
			out = append(out, r)
		}
	}
	return out
}

// project builds the result set for a non-aggregate query.
func (ex *executor) project(q *Query, rows []row) (*Results, error) {
	items := q.Select
	if q.Star {
		items = nil
		for _, name := range ex.varSeq {
			if !strings.HasPrefix(name, internalVarPrefix) {
				items = append(items, SelectItem{Var: name})
			}
		}
	}
	res := &Results{}
	for _, it := range items {
		res.Vars = append(res.Vars, it.Var)
	}
	// Rendering decodes one term per output cell; with many rows it
	// fans out over the workers, each writing its own index range.
	res.Rows = make([][]rdf.Term, len(rows))
	ex.runIndexed(len(rows), ex.parallel(len(rows)), func(w *executor, ri int) {
		b := rowBinding{ex: w, r: rows[ri]}
		line := make([]rdf.Term, len(items))
		for i, it := range items {
			if it.Expr == nil {
				if v := b.value(it.Var); v.Bound {
					line[i] = v.Term
				}
			} else {
				if v, err := evalExpr(it.Expr, b); err == nil && v.Bound {
					line[i] = v.Term
				}
			}
		}
		res.Rows[ri] = line
	})
	if err := ex.ctxErr(); err != nil {
		return nil, err
	}
	return res, nil
}

// construct instantiates the CONSTRUCT template once per solution,
// skipping instantiations with unbound variables or invalid triples,
// and deduplicating the output graph.
func (ex *executor) construct(q *Query, rows []row) (*Results, error) {
	res := &Results{IsConstruct: true}
	seen := map[rdf.Triple]bool{}
	emit := func(t rdf.Triple) {
		if t.Validate() != nil || seen[t] {
			return
		}
		seen[t] = true
		res.Triples = append(res.Triples, t)
	}
	resolve := func(n Node, b rowBinding) (rdf.Term, bool) {
		if !n.IsVar {
			return n.Term, true
		}
		v := b.value(n.Var)
		return v.Term, v.Bound
	}
	for _, r := range rows {
		b := rowBinding{ex: ex, r: r}
		for _, tp := range q.Construct {
			s, ok1 := resolve(tp.S, b)
			p, ok2 := resolve(tp.P, b)
			o, ok3 := resolve(tp.O, b)
			if ok1 && ok2 && ok3 {
				emit(rdf.Triple{S: s, P: p, O: o})
			}
		}
	}
	// Respect LIMIT/OFFSET on the constructed graph.
	if q.Offset > 0 {
		if q.Offset >= len(res.Triples) {
			res.Triples = nil
		} else {
			res.Triples = res.Triples[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Triples) {
		res.Triples = res.Triples[:q.Limit]
	}
	return res, nil
}

// group holds per-group aggregation state.
type group struct {
	rep  row // representative row (first member) for key vars
	rows []row
}

// aggGroup is one finished group: its representative row (for GROUP BY
// key variables) and the precomputed value of every aggregate.
type aggGroup struct {
	rep  row
	vals []Value
}

// groupKey renders a row's GROUP BY key slots into a map key.
func groupKey(r row, keySlots []int) string {
	var kb strings.Builder
	for _, s := range keySlots {
		fmt.Fprintf(&kb, "%d,", r[s])
	}
	return kb.String()
}

// collectAggs gathers every distinct aggregate expression used in the
// projection, HAVING, or ORDER BY, with an index by rendered form.
func collectAggs(q *Query) ([]AggExpr, map[string]int) {
	var aggs []AggExpr
	idx := map[string]int{}
	collect := func(e Expr) {
		walkAggregates(e, func(a AggExpr) {
			if _, dup := idx[a.String()]; !dup {
				idx[a.String()] = len(aggs)
				aggs = append(aggs, a)
			}
		})
	}
	for _, it := range q.Select {
		if it.Expr != nil {
			collect(it.Expr)
		}
	}
	for _, h := range q.Having {
		collect(h)
	}
	for _, o := range q.OrderBy {
		collect(o.Expr)
	}
	return aggs, idx
}

// aggregate builds the result set for a GROUP BY / aggregate query.
// Two parallel plans exist: when every aggregate is partial-mergeable
// (non-DISTINCT), the input rows are sharded and each shard folds its
// rows into per-group partial states that merge exactly (sharded
// partial aggregation); otherwise groups are built by sharded
// grouping and each group is evaluated sequentially, with groups
// spread over the workers. Both plans reproduce the sequential output
// exactly: shards are contiguous row ranges merged in order, so group
// first-appearance order and within-group row order are preserved.
func (ex *executor) aggregate(q *Query, rows []row) (*Results, error) {
	keySlots := make([]int, len(q.GroupBy))
	for i, v := range q.GroupBy {
		keySlots[i] = ex.slot(v)
	}
	rows = ex.extendRows(rows)
	aggs, aggIdx := collectAggs(q)

	var ags []aggGroup
	if ex.parallel(len(rows)) && mergeableAggs(aggs) {
		var err error
		ags, err = ex.aggregateSharded(rows, keySlots, aggs)
		if err != nil {
			return nil, err
		}
	} else {
		order, groups, err := ex.buildGroups(rows, keySlots)
		if err != nil {
			return nil, err
		}
		// A query with aggregates but no GROUP BY over zero rows yields
		// one empty group (COUNT = 0).
		if len(order) == 0 && len(q.GroupBy) == 0 {
			groups[""] = &group{rep: make(row, len(ex.varSeq))}
			order = append(order, "")
		}
		ags = make([]aggGroup, len(order))
		// Each group evaluates independently; with several groups the
		// per-group work (DISTINCT sets, expression evaluation per row)
		// spreads over the workers even below the row threshold.
		ex.runIndexed(len(order), ex.workers > 1 && len(order) > 1, func(w *executor, i int) {
			g := groups[order[i]]
			vals := make([]Value, len(aggs))
			for ai, a := range aggs {
				vals[ai] = w.computeAggregate(a, g)
			}
			ags[i] = aggGroup{rep: g.rep, vals: vals}
		})
	}
	if err := ex.ctxErr(); err != nil {
		// computeAggregate bails out mid-group on cancellation; do not
		// emit rows built from partial aggregates.
		return nil, err
	}

	res := &Results{}
	for _, it := range q.Select {
		res.Vars = append(res.Vars, it.Var)
	}
	for _, ag := range ags {
		if err := ex.ctxErr(); err != nil {
			return nil, err
		}
		gb := groupBinding{ex: ex, rep: ag.rep, aggVals: ag.vals, aggIdx: aggIdx}
		// HAVING
		keep := true
		for _, h := range q.Having {
			ok, err := evalBool(substituteAggregates(h, gb), gb)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		line := make([]rdf.Term, len(q.Select))
		for i, it := range q.Select {
			var v Value
			if it.Expr == nil {
				v = gb.value(it.Var)
			} else {
				var err error
				v, err = evalExpr(substituteAggregates(it.Expr, gb), gb)
				if err != nil {
					v = Value{}
				}
			}
			if v.Bound {
				line[i] = v.Term
			}
		}
		res.Rows = append(res.Rows, line)
	}
	return res, nil
}

// buildGroups partitions rows into GROUP BY groups, preserving
// first-appearance group order and within-group row order. Large
// inputs shard the grouping over the workers and merge the shard
// tables in shard order, which reproduces the sequential order exactly
// because shards are contiguous row ranges.
func (ex *executor) buildGroups(rows []row, keySlots []int) ([]string, map[string]*group, error) {
	if !ex.parallel(len(rows)) {
		return ex.buildGroupsSeq(rows, keySlots)
	}
	chunks := par.Chunks(len(rows), ex.eng.Exec.shards())
	type shard struct {
		order  []string
		groups map[string]*group
	}
	shards := make([]shard, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for i, c := range chunks {
		go func(i, lo, hi int) {
			defer wg.Done()
			w := ex.clone()
			order, groups, _ := w.buildGroupsSeq(rows[lo:hi], keySlots)
			shards[i] = shard{order: order, groups: groups}
		}(i, c[0], c[1])
	}
	wg.Wait()
	if err := ex.ctxErr(); err != nil {
		return nil, nil, err
	}
	merged := map[string]*group{}
	var order []string
	for _, sh := range shards {
		for _, k := range sh.order {
			src := sh.groups[k]
			dst, ok := merged[k]
			if !ok {
				merged[k] = src
				order = append(order, k)
				continue
			}
			dst.rows = append(dst.rows, src.rows...)
		}
	}
	return order, merged, nil
}

func (ex *executor) buildGroupsSeq(rows []row, keySlots []int) ([]string, map[string]*group, error) {
	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		if ex.cancelled() {
			return nil, nil, ex.ctxErr()
		}
		k := groupKey(r, keySlots)
		g, ok := groups[k]
		if !ok {
			g = &group{rep: r}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	return order, groups, nil
}

// groupBinding resolves group-by variables from the representative row
// and aggregates from the precomputed values.
type groupBinding struct {
	ex      *executor
	rep     row
	aggVals []Value
	aggIdx  map[string]int
}

func (b groupBinding) value(name string) Value {
	s, ok := b.ex.slots[name]
	if !ok || s >= len(b.rep) || b.rep[s] == 0 {
		return Value{}
	}
	return boundValue(b.ex.dict.Decode(b.rep[s]))
}

// substituteAggregates replaces AggExpr nodes with constants from the
// group's precomputed values so evalExpr never sees an aggregate.
func substituteAggregates(e Expr, b groupBinding) Expr {
	switch x := e.(type) {
	case AggExpr:
		idx, ok := b.aggIdx[x.String()]
		if !ok || !b.aggVals[idx].Bound {
			// Unbound aggregate: substitute an always-erroring marker by
			// referencing an unbound variable.
			return VarExpr{Name: internalVarPrefix + "_unboundagg"}
		}
		return ConstExpr{Term: b.aggVals[idx].Term}
	case BinaryExpr:
		return BinaryExpr{Op: x.Op, L: substituteAggregates(x.L, b), R: substituteAggregates(x.R, b)}
	case UnaryExpr:
		return UnaryExpr{Op: x.Op, E: substituteAggregates(x.E, b)}
	case InExpr:
		list := make([]Expr, len(x.List))
		for i, y := range x.List {
			list[i] = substituteAggregates(y, b)
		}
		return InExpr{E: substituteAggregates(x.E, b), List: list, Not: x.Not}
	case FuncExpr:
		args := make([]Expr, len(x.Args))
		for i, y := range x.Args {
			args[i] = substituteAggregates(y, b)
		}
		return FuncExpr{Name: x.Name, Args: args}
	}
	return e
}

func walkAggregates(e Expr, fn func(AggExpr)) {
	switch x := e.(type) {
	case AggExpr:
		fn(x)
	case BinaryExpr:
		walkAggregates(x.L, fn)
		walkAggregates(x.R, fn)
	case UnaryExpr:
		walkAggregates(x.E, fn)
	case InExpr:
		walkAggregates(x.E, fn)
		for _, y := range x.List {
			walkAggregates(y, fn)
		}
	case FuncExpr:
		for _, y := range x.Args {
			walkAggregates(y, fn)
		}
	}
}

// computeAggregate evaluates one aggregate over a group.
func (ex *executor) computeAggregate(a AggExpr, g *group) Value {
	distinctSeen := map[rdf.Term]struct{}{}
	isDup := func(t rdf.Term) bool {
		if !a.Distinct {
			return false
		}
		if _, dup := distinctSeen[t]; dup {
			return true
		}
		distinctSeen[t] = struct{}{}
		return false
	}
	switch a.Fn {
	case "COUNT":
		n := 0
		for _, r := range g.rows {
			if ex.cancelled() {
				break
			}
			if a.Arg == nil {
				if a.Distinct {
					// COUNT(DISTINCT *) — treat the whole row as the key.
					t := rdf.NewString(fmt.Sprint(r))
					if isDup(t) {
						continue
					}
				}
				n++
				continue
			}
			v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
			if err != nil || !v.Bound || isDup(v.Term) {
				continue
			}
			n++
		}
		return numValue(float64(n))
	case "SUM", "AVG":
		sum, cnt := 0.0, 0
		for _, r := range g.rows {
			if ex.cancelled() {
				break
			}
			v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
			if err != nil || !v.Bound || isDup(v.Term) {
				continue
			}
			n, err := v.numeric()
			if err != nil {
				continue
			}
			sum += n
			cnt++
		}
		if a.Fn == "SUM" {
			return numValue(sum)
		}
		if cnt == 0 {
			return Value{}
		}
		return numValue(sum / float64(cnt))
	case "MIN", "MAX":
		var best Value
		for _, r := range g.rows {
			if ex.cancelled() {
				break
			}
			v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
			if err != nil || !v.Bound {
				continue
			}
			if !best.Bound {
				best = v
				continue
			}
			if a.Fn == "MIN" && orderLess(v, best) || a.Fn == "MAX" && orderLess(best, v) {
				best = v
			}
		}
		return best
	case "SAMPLE":
		for _, r := range g.rows {
			v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
			if err == nil && v.Bound {
				return v
			}
		}
		return Value{}
	case "GROUP_CONCAT":
		sep := a.Sep
		if sep == "" {
			sep = " "
		}
		var parts []string
		for _, r := range g.rows {
			v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
			if err != nil || !v.Bound || isDup(v.Term) {
				continue
			}
			parts = append(parts, v.Term.Value)
		}
		return boundValue(rdf.NewString(strings.Join(parts, sep)))
	}
	return Value{}
}

// outBinding resolves variables from a projected output row, used by
// ORDER BY and DISTINCT.
type outBinding struct {
	vars []string
	row  []rdf.Term
}

func (b outBinding) value(name string) Value {
	for i, v := range b.vars {
		if v == name && Bound(b.row[i]) {
			return boundValue(b.row[i])
		}
	}
	return Value{}
}

// applyModifiers applies ORDER BY, DISTINCT, OFFSET, and LIMIT to a
// materialized result set.
func applyModifiers(q *Query, res *Results) error {
	if len(q.OrderBy) > 0 {
		type keyed struct {
			row  []rdf.Term
			keys []Value
		}
		ks := make([]keyed, len(res.Rows))
		for i, r := range res.Rows {
			b := outBinding{vars: res.Vars, row: r}
			keys := make([]Value, len(q.OrderBy))
			for j, o := range q.OrderBy {
				v, err := evalExpr(o.Expr, b)
				if err == nil {
					keys[j] = v
				}
			}
			ks[i] = keyed{row: r, keys: keys}
		}
		sort.SliceStable(ks, func(i, j int) bool {
			for k, o := range q.OrderBy {
				a, b := ks[i].keys[k], ks[j].keys[k]
				if orderLess(a, b) {
					return !o.Desc
				}
				if orderLess(b, a) {
					return o.Desc
				}
			}
			return false
		})
		for i := range ks {
			res.Rows[i] = ks[i].row
		}
	}
	if q.Distinct {
		seen := map[string]struct{}{}
		out := res.Rows[:0]
		for _, r := range res.Rows {
			var kb strings.Builder
			for _, t := range r {
				kb.WriteString(t.String())
				kb.WriteByte('\x00')
			}
			k := kb.String()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
		res.Rows = out
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	return nil
}

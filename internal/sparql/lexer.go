package sparql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF    tokenKind = iota
	tokIRI              // <...>
	tokPName            // prefix:local or prefix:
	tokVar              // ?x or $x
	tokString           // "..." with optional @lang or ^^<dt>
	tokNumber
	tokKeyword // bare word: SELECT, WHERE, a, true, ...
	tokPunct   // { } ( ) . , ; * / + - = ! < > <= >= != && || ^
)

type token struct {
	kind tokenKind
	text string
	// lang / datatype for string tokens
	lang, dtype string
	pos         int
}

// SyntaxError reports a SPARQL syntax error with byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '<':
		// IRI if a '>' occurs before whitespace; otherwise comparison.
		if end := l.iriEnd(); end > 0 {
			iri := l.src[l.pos+1 : end]
			l.pos = end + 1
			return token{kind: tokIRI, text: iri, pos: start}, nil
		}
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokPunct, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokPunct, text: "<", pos: start}, nil
	case c == '?' || c == '$':
		l.pos++
		name := l.readName()
		if name == "" {
			return token{}, &SyntaxError{start, "empty variable name"}
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '"' || c == '\'':
		return l.readString(c)
	case c >= '0' && c <= '9' || (c == '.' && l.digitAt(1)) ||
		((c == '+' || c == '-') && l.digitAt(1)):
		return l.readNumber()
	case c == '{' || c == '}' || c == '(' || c == ')' || c == '.' || c == ',' || c == ';' || c == '*' || c == '/' || c == '+' || c == '-' || c == '=' || c == '^':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	case c == '!':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokPunct, text: "!=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokPunct, text: "!", pos: start}, nil
	case c == '>':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokPunct, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokPunct, text: ">", pos: start}, nil
	case c == '&':
		if l.peekAt(1) == '&' {
			l.pos += 2
			return token{kind: tokPunct, text: "&&", pos: start}, nil
		}
		return token{}, &SyntaxError{start, "single '&'"}
	case c == '|':
		if l.peekAt(1) == '|' {
			l.pos += 2
			return token{kind: tokPunct, text: "||", pos: start}, nil
		}
		return token{}, &SyntaxError{start, "single '|' (alternative paths unsupported)"}
	default:
		word := l.readName()
		if word == "" {
			return token{}, &SyntaxError{start, fmt.Sprintf("unexpected character %q", c)}
		}
		// prefixed name?
		if l.pos < len(l.src) && l.src[l.pos] == ':' {
			l.pos++
			local := l.readName()
			return token{kind: tokPName, text: word + ":" + local, pos: start}, nil
		}
		return token{kind: tokKeyword, text: word, pos: start}, nil
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

// iriEnd returns the index of the closing '>' if the text starting at
// l.pos looks like an IRIREF (no whitespace before '>'), else -1.
func (l *lexer) iriEnd() int {
	for i := l.pos + 1; i < len(l.src); i++ {
		switch l.src[i] {
		case '>':
			return i
		case ' ', '\t', '\n', '\r', '<', '"':
			return -1
		}
	}
	return -1
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) digitAt(off int) bool {
	c := l.peekAt(off)
	return c >= '0' && c <= '9'
}

func (l *lexer) readName() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c >= 0x80 {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) readString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(l.src[l.pos])
			default:
				b.WriteByte('\\')
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == quote {
			l.pos++
			tok := token{kind: tokString, text: b.String(), pos: start}
			// optional @lang
			if l.pos < len(l.src) && l.src[l.pos] == '@' {
				l.pos++
				tok.lang = l.readName()
			} else if l.pos+1 < len(l.src) && l.src[l.pos] == '^' && l.src[l.pos+1] == '^' {
				l.pos += 2
				if l.pos < len(l.src) && l.src[l.pos] == '<' {
					if end := l.iriEnd(); end > 0 {
						tok.dtype = l.src[l.pos+1 : end]
						l.pos = end + 1
					} else {
						return token{}, &SyntaxError{l.pos, "malformed datatype IRI"}
					}
				} else {
					return token{}, &SyntaxError{l.pos, "expected <IRI> after ^^"}
				}
			}
			return tok, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, &SyntaxError{start, "unterminated string"}
}

func (l *lexer) readNumber() (token, error) {
	start := l.pos
	if c := l.src[l.pos]; c == '+' || c == '-' {
		l.pos++
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp && l.digitAt(1):
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if n := l.peekAt(0); n == '+' || n == '-' {
				l.pos++
			}
		default:
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// testStore builds a small statistical-KG-shaped store:
//
//	obs{i} --origin--> country --inContinent--> continent
//	obs{i} --dest----> country
//	obs{i} --value---> number
//	country --label--> "Name"
func testStore(t testing.TB) *store.Store {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(ex(s), ex(p), o))
	}
	countries := map[string]string{
		"de": "Europe", "fr": "Europe", "sy": "Asia", "cn": "Asia",
	}
	labels := map[string]string{
		"de": "Germany", "fr": "France", "sy": "Syria", "cn": "China",
		"Europe": "Europe", "Asia": "Asia",
	}
	for c, cont := range countries {
		add(c, "inContinent", ex(cont))
	}
	for n, l := range labels {
		add(n, "label", rdf.NewString(l))
	}
	type obs struct {
		origin, dest string
		value        int64
	}
	data := []obs{
		{"sy", "de", 300}, {"sy", "fr", 200}, {"cn", "de", 100},
		{"cn", "fr", 50}, {"sy", "de", 250}, {"de", "fr", 10},
	}
	for i, o := range data {
		name := fmt.Sprintf("obs%d", i)
		add(name, "origin", ex(o.origin))
		add(name, "dest", ex(o.dest))
		add(name, "value", rdf.NewInteger(o.value))
		add(name, "type", ex("Observation"))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	return st
}

func runQuery(t testing.TB, st *store.Store, src string) *Results {
	t.Helper()
	res, err := NewEngine(st).QueryString(src)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, src)
	}
	return res
}

func sortedColumn(res *Results, name string) []string {
	col := res.Column(name)
	var out []string
	for _, r := range res.Rows {
		if Bound(r[col]) {
			out = append(out, r[col].Value)
		} else {
			out = append(out, "<unbound>")
		}
	}
	sort.Strings(out)
	return out
}

func TestExecSimpleBGP(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?c WHERE { ?c <http://ex.org/inContinent> <http://ex.org/Asia> . }`)
	got := sortedColumn(res, "c")
	want := []string{"http://ex.org/cn", "http://ex.org/sy"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExecJoin(t *testing.T) {
	st := testStore(t)
	// observations originating from Asia
	res := runQuery(t, st, `SELECT ?obs WHERE {
		?obs <http://ex.org/origin> ?c .
		?c <http://ex.org/inContinent> <http://ex.org/Asia> .
	}`)
	if res.Len() != 5 {
		t.Errorf("got %d rows, want 5\n%s", res.Len(), res)
	}
}

func TestExecPropertyPath(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT DISTINCT ?cont WHERE {
		?obs <http://ex.org/origin>/<http://ex.org/inContinent> ?cont .
	}`)
	got := sortedColumn(res, "cont")
	want := []string{"http://ex.org/Asia", "http://ex.org/Europe"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExecGroupBySum(t *testing.T) {
	st := testStore(t)
	// Figure 2 analogue: total per continent of origin and destination country
	res := runQuery(t, st, `SELECT ?cont ?dest (SUM(?v) AS ?total) WHERE {
		?obs <http://ex.org/origin>/<http://ex.org/inContinent> ?cont .
		?obs <http://ex.org/dest> ?dest .
		?obs <http://ex.org/value> ?v .
	} GROUP BY ?cont ?dest`)
	want := map[string]float64{
		"http://ex.org/Asia|http://ex.org/de":   650, // 300+250+100
		"http://ex.org/Asia|http://ex.org/fr":   250, // 200+50
		"http://ex.org/Europe|http://ex.org/fr": 10,
	}
	if res.Len() != len(want) {
		t.Fatalf("got %d groups, want %d\n%s", res.Len(), len(want), res)
	}
	ci, di, ti := res.Column("cont"), res.Column("dest"), res.Column("total")
	for _, r := range res.Rows {
		key := r[ci].Value + "|" + r[di].Value
		n, ok := r[ti].Numeric()
		if !ok {
			t.Fatalf("total not numeric: %v", r[ti])
		}
		if want[key] != n {
			t.Errorf("group %s = %v, want %v", key, n, want[key])
		}
	}
}

func TestExecAggregatesAll(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (COUNT(?v) AS ?c) WHERE {
		?obs <http://ex.org/value> ?v .
	}`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	get := func(name string) float64 {
		n, ok := res.Rows[0][res.Column(name)].Numeric()
		if !ok {
			t.Fatalf("%s not numeric", name)
		}
		return n
	}
	if get("s") != 910 || get("c") != 6 || get("mn") != 10 || get("mx") != 300 {
		t.Errorf("aggregates: sum=%v count=%v min=%v max=%v", get("s"), get("c"), get("mn"), get("mx"))
	}
	if av := get("a"); av < 151 || av > 152 {
		t.Errorf("avg = %v", av)
	}
}

func TestExecCountDistinct(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?obs <http://ex.org/origin> ?c . }`)
	if n, _ := res.Rows[0][0].Numeric(); n != 3 {
		t.Errorf("count distinct = %v, want 3", n)
	}
}

func TestExecEmptyAggregate(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT (COUNT(?x) AS ?n) (SUM(?x) AS ?s) WHERE { ?x <http://ex.org/nosuch> ?y . }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if n, _ := res.Rows[0][0].Numeric(); n != 0 {
		t.Errorf("count over empty = %v", res.Rows[0][0])
	}
}

func TestExecHaving(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?dest (SUM(?v) AS ?total) WHERE {
		?obs <http://ex.org/dest> ?dest .
		?obs <http://ex.org/value> ?v .
	} GROUP BY ?dest HAVING ((SUM(?v)) > 300)`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", res.Len(), res)
	}
	if res.Rows[0][0].Value != "http://ex.org/de" {
		t.Errorf("kept group = %v", res.Rows[0][0])
	}
}

func TestExecFilterComparisons(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?obs WHERE {
		?obs <http://ex.org/value> ?v .
		FILTER (?v >= 100 && ?v < 300)
	}`)
	if res.Len() != 3 { // 300 excluded; 200,100,250
		t.Errorf("rows = %d, want 3\n%s", res.Len(), res)
	}
}

func TestExecFilterIn(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?obs WHERE {
		?obs <http://ex.org/origin> ?c .
		FILTER (?c IN (<http://ex.org/sy>, <http://ex.org/de>))
	}`)
	if res.Len() != 4 {
		t.Errorf("rows = %d, want 4", res.Len())
	}
}

func TestExecTextFilter(t *testing.T) {
	st := testStore(t)
	for _, disable := range []bool{false, true} {
		eng := NewEngine(st)
		eng.DisableTextIndex = disable
		res, err := eng.QueryString(`SELECT ?e WHERE {
			?e <http://ex.org/label> ?l .
			FILTER (CONTAINS(LCASE(STR(?l)), "germany"))
		}`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 || res.Rows[0][0].Value != "http://ex.org/de" {
			t.Errorf("disable=%v: rows = %v", disable, res.Rows)
		}
	}
}

func TestExecValuesJoin(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?obs WHERE {
		VALUES ?c { <http://ex.org/sy> }
		?obs <http://ex.org/origin> ?c .
	}`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

func TestExecOptional(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	_ = st.AddAll([]rdf.Triple{
		rdf.NewTriple(ex("a"), ex("p"), ex("x")),
		rdf.NewTriple(ex("b"), ex("p"), ex("y")),
		rdf.NewTriple(ex("a"), ex("label"), rdf.NewString("A")),
	})
	res := runQuery(t, st, `SELECT ?s ?l WHERE {
		?s <http://ex.org/p> ?o .
		OPTIONAL { ?s <http://ex.org/label> ?l . }
	}`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	li := res.Column("l")
	boundCount := 0
	for _, r := range res.Rows {
		if Bound(r[li]) {
			boundCount++
			if r[li].Value != "A" {
				t.Errorf("label = %v", r[li])
			}
		}
	}
	if boundCount != 1 {
		t.Errorf("bound labels = %d, want 1", boundCount)
	}
}

func TestExecOrderLimitOffset(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?obs ?v WHERE {
		?obs <http://ex.org/value> ?v .
	} ORDER BY DESC(?v) LIMIT 2`)
	vi := res.Column("v")
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	v0, _ := res.Rows[0][vi].Numeric()
	v1, _ := res.Rows[1][vi].Numeric()
	if v0 != 300 || v1 != 250 {
		t.Errorf("top2 = %v, %v", v0, v1)
	}
	res2 := runQuery(t, st, `SELECT ?v WHERE { ?obs <http://ex.org/value> ?v . } ORDER BY ?v OFFSET 4`)
	if res2.Len() != 2 {
		t.Errorf("offset rows = %d, want 2", res2.Len())
	}
}

func TestExecDistinct(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT DISTINCT ?dest WHERE { ?obs <http://ex.org/dest> ?dest . }`)
	if res.Len() != 2 {
		t.Errorf("distinct rows = %d, want 2", res.Len())
	}
}

func TestExecAsk(t *testing.T) {
	st := testStore(t)
	yes := runQuery(t, st, `ASK { ?obs <http://ex.org/origin> <http://ex.org/sy> . }`)
	if !yes.IsAsk || !yes.Boolean {
		t.Errorf("ASK true case = %+v", yes)
	}
	no := runQuery(t, st, `ASK { ?obs <http://ex.org/origin> <http://ex.org/unknown> . }`)
	if no.Boolean {
		t.Error("ASK false case returned true")
	}
}

func TestExecVariablePredicate(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT DISTINCT ?p WHERE { <http://ex.org/obs0> ?p ?o . }`)
	if res.Len() != 4 {
		t.Errorf("predicates = %d, want 4\n%s", res.Len(), res)
	}
}

func TestExecSelectStarHidesPathVars(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT * WHERE { ?obs <http://ex.org/origin>/<http://ex.org/inContinent> ?c . }`)
	for _, v := range res.Vars {
		if v != "obs" && v != "c" {
			t.Errorf("internal var leaked: %v", res.Vars)
		}
	}
}

func TestExecUnknownConstantYieldsEmpty(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?s WHERE { ?s <http://ex.org/origin> <http://nowhere/z> . }`)
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
}

func TestExecRepeatedVariable(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	_ = st.AddAll([]rdf.Triple{
		rdf.NewTriple(ex("a"), ex("p"), ex("a")), // self loop
		rdf.NewTriple(ex("a"), ex("p"), ex("b")),
	})
	res := runQuery(t, st, `SELECT ?x WHERE { ?x <http://ex.org/p> ?x . }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://ex.org/a" {
		t.Errorf("self loop rows = %v", res.Rows)
	}
}

func TestExecJoinOrderingAblation(t *testing.T) {
	st := testStore(t)
	for _, disable := range []bool{false, true} {
		eng := NewEngine(st)
		eng.DisableJoinOrdering = disable
		res, err := eng.QueryString(`SELECT ?cont ?dest (SUM(?v) AS ?total) WHERE {
			?obs <http://ex.org/origin>/<http://ex.org/inContinent> ?cont .
			?obs <http://ex.org/dest> ?dest .
			?obs <http://ex.org/value> ?v .
		} GROUP BY ?cont ?dest`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 3 {
			t.Errorf("disable=%v: groups = %d, want 3", disable, res.Len())
		}
	}
}

func TestExecGroupConcatAndSample(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?c (GROUP_CONCAT(DISTINCT ?dest; SEPARATOR=",") AS ?ds) (SAMPLE(?dest) AS ?one) WHERE {
		?obs <http://ex.org/origin> ?c .
		?obs <http://ex.org/dest> ?dest .
	} GROUP BY ?c`)
	if res.Len() != 3 {
		t.Fatalf("groups = %d\n%s", res.Len(), res)
	}
	di := res.Column("ds")
	for _, r := range res.Rows {
		if !Bound(r[di]) || r[di].Value == "" {
			t.Errorf("group_concat empty: %v", r)
		}
	}
}

// TestExecAvoidsCartesianProducts is a regression test for the join
// planner: a small disconnected pattern must not be joined before the
// chain connecting it, which would build a cross product.
func TestExecAvoidsCartesianProducts(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	// 500 observations → member chain a→b; only 3 c-values overall.
	for i := 0; i < 500; i++ {
		o := ex(fmt.Sprintf("o%d", i))
		a := ex(fmt.Sprintf("a%d", i%50))
		ts = append(ts,
			rdf.NewTriple(o, ex("p"), a),
			rdf.NewTriple(a, ex("q"), ex(fmt.Sprintf("b%d", i%7))),
		)
	}
	for i := 0; i < 3; i++ {
		ts = append(ts, rdf.NewTriple(ex(fmt.Sprintf("b%d", i)), ex("r"), ex(fmt.Sprintf("c%d", i))))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	res := runQuery(t, st, `SELECT DISTINCT ?c WHERE {
		?o <http://ex.org/p> ?a .
		?a <http://ex.org/q> ?b .
		?b <http://ex.org/r> ?c .
	}`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

// TestExecDisconnectedProduct checks that genuinely disconnected
// components still produce the cartesian product.
func TestExecDisconnectedProduct(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	_ = st.AddAll([]rdf.Triple{
		rdf.NewTriple(ex("a1"), ex("p"), ex("x")),
		rdf.NewTriple(ex("a2"), ex("p"), ex("x")),
		rdf.NewTriple(ex("b1"), ex("q"), ex("y")),
		rdf.NewTriple(ex("b2"), ex("q"), ex("y")),
		rdf.NewTriple(ex("b3"), ex("q"), ex("y")),
	})
	res := runQuery(t, st, `SELECT ?a ?b WHERE {
		?a <http://ex.org/p> <http://ex.org/x> .
		?b <http://ex.org/q> <http://ex.org/y> .
	}`)
	if res.Len() != 6 {
		t.Errorf("rows = %d, want 6 (2×3 product)", res.Len())
	}
}

func TestExecUnion(t *testing.T) {
	st := testStore(t)
	// Countries that are origins OR destinations.
	res := runQuery(t, st, `SELECT DISTINCT ?c WHERE {
		{ ?o <http://ex.org/origin> ?c . } UNION { ?o <http://ex.org/dest> ?c . }
	}`)
	if res.Len() != 4 { // sy, cn, de, fr
		t.Errorf("rows = %d, want 4\n%s", res.Len(), res)
	}
}

func TestExecUnionWithJoin(t *testing.T) {
	st := testStore(t)
	// Union joined against an outer pattern: continents of countries
	// reached either as origin or destination.
	res := runQuery(t, st, `SELECT DISTINCT ?cont WHERE {
		?c <http://ex.org/inContinent> ?cont .
		{ ?o <http://ex.org/origin> ?c . FILTER (?c != <http://ex.org/de>) }
		UNION
		{ ?o <http://ex.org/dest> ?c . }
	}`)
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2\n%s", res.Len(), res)
	}
}

func TestExecNestedGroupSplice(t *testing.T) {
	st := testStore(t)
	// A plain nested group without UNION is spliced into the parent.
	res := runQuery(t, st, `SELECT ?c WHERE { { ?c <http://ex.org/inContinent> <http://ex.org/Asia> . } }`)
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestExecStringBuiltins(t *testing.T) {
	st := testStore(t)
	tests := []struct {
		expr string
		want string
	}{
		{`CONCAT("a", "b", "c")`, "abc"},
		{`STRBEFORE("hello-world", "-")`, "hello"},
		{`STRAFTER("hello-world", "-")`, "world"},
		{`STRAFTER("hello", "x")`, ""},
		{`REPLACE("banana", "na", "NA")`, "baNANA"},
		{`SUBSTR("hello", 2)`, "ello"},
		{`SUBSTR("hello", 2, 3)`, "ell"},
		{`SUBSTR("hello", 1, 99)`, "hello"},
	}
	for _, tt := range tests {
		res := runQuery(t, st, `SELECT (`+tt.expr+` AS ?x) WHERE { ?s <http://ex.org/value> ?v . } LIMIT 1`)
		if res.Len() != 1 {
			t.Fatalf("%s: rows = %d", tt.expr, res.Len())
		}
		if got := res.Rows[0][0].Value; got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

// closureStore builds a genre tree: g1→g2→g3→root, g4→g3, plus a cycle
// c1→c2→c1.
func closureStore(t testing.TB) *store.Store {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	_ = st.AddAll([]rdf.Triple{
		rdf.NewTriple(ex("g1"), ex("parent"), ex("g2")),
		rdf.NewTriple(ex("g2"), ex("parent"), ex("g3")),
		rdf.NewTriple(ex("g3"), ex("parent"), ex("root")),
		rdf.NewTriple(ex("g4"), ex("parent"), ex("g3")),
		rdf.NewTriple(ex("c1"), ex("parent"), ex("c2")),
		rdf.NewTriple(ex("c2"), ex("parent"), ex("c1")),
	})
	return st
}

func TestExecClosurePlus(t *testing.T) {
	st := closureStore(t)
	res := runQuery(t, st, `SELECT ?a WHERE { <http://ex.org/g1> <http://ex.org/parent>+ ?a . }`)
	got := sortedColumn(res, "a")
	want := []string{"http://ex.org/g2", "http://ex.org/g3", "http://ex.org/root"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExecClosureStar(t *testing.T) {
	st := closureStore(t)
	res := runQuery(t, st, `SELECT ?a WHERE { <http://ex.org/g1> <http://ex.org/parent>* ?a . }`)
	if res.Len() != 4 { // includes g1 itself
		t.Errorf("rows = %d, want 4\n%s", res.Len(), res)
	}
}

func TestExecClosureBackward(t *testing.T) {
	st := closureStore(t)
	// Everything that reaches root transitively.
	res := runQuery(t, st, `SELECT ?a WHERE { ?a <http://ex.org/parent>+ <http://ex.org/root> . }`)
	got := sortedColumn(res, "a")
	want := []string{"http://ex.org/g1", "http://ex.org/g2", "http://ex.org/g3", "http://ex.org/g4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExecClosureCycle(t *testing.T) {
	st := closureStore(t)
	// The cycle must terminate and include both nodes.
	res := runQuery(t, st, `SELECT ?a WHERE { <http://ex.org/c1> <http://ex.org/parent>+ ?a . }`)
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2 (c2, c1)\n%s", res.Len(), res)
	}
}

func TestExecClosureBothBound(t *testing.T) {
	st := closureStore(t)
	yes := runQuery(t, st, `ASK { <http://ex.org/g1> <http://ex.org/parent>+ <http://ex.org/root> . }`)
	if !yes.Boolean {
		t.Error("g1 →+ root should hold")
	}
	no := runQuery(t, st, `ASK { <http://ex.org/root> <http://ex.org/parent>+ <http://ex.org/g1> . }`)
	if no.Boolean {
		t.Error("root →+ g1 should not hold")
	}
}

func TestExecClosureInSequence(t *testing.T) {
	st := testStore(t)
	// Mixing a plain step with a closure: origin then inContinent+ (one
	// level here, so same as inContinent).
	res := runQuery(t, st, `SELECT DISTINCT ?c WHERE { ?o <http://ex.org/origin>/<http://ex.org/inContinent>+ ?c . }`)
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2\n%s", res.Len(), res)
	}
}

func TestExecClosureJoinWithBoundVar(t *testing.T) {
	st := closureStore(t)
	// ?a is bound by a preceding pattern, then closed over.
	res := runQuery(t, st, `SELECT ?a ?b WHERE {
		?a <http://ex.org/parent> <http://ex.org/g3> .
		?a <http://ex.org/parent>+ ?b .
	}`)
	// a ∈ {g2, g4}; closures: g2→{g3,root}, g4→{g3,root} → 4 rows.
	if res.Len() != 4 {
		t.Errorf("rows = %d, want 4\n%s", res.Len(), res)
	}
}

func TestExecClosureUnknownPredicate(t *testing.T) {
	st := closureStore(t)
	res := runQuery(t, st, `SELECT ?a WHERE { <http://ex.org/g1> <http://ex.org/nosuch>+ ?a . }`)
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
	star := runQuery(t, st, `SELECT ?a WHERE { <http://ex.org/g1> <http://ex.org/nosuch>* ?a . }`)
	if star.Len() != 1 { // zero-length path: a = g1
		t.Errorf("star rows = %d, want 1\n%s", star.Len(), star)
	}
}

func TestExecConstruct(t *testing.T) {
	st := testStore(t)
	// Materialize a flattened view: observation → continent of origin.
	res := runQuery(t, st, `CONSTRUCT {
		?o <http://view/origin_continent> ?cont .
	} WHERE {
		?o <http://ex.org/origin>/<http://ex.org/inContinent> ?cont .
	}`)
	if !res.IsConstruct {
		t.Fatal("not a construct result")
	}
	if len(res.Triples) != 6 {
		t.Fatalf("triples = %d, want 6\n%s", len(res.Triples), res)
	}
	for _, tr := range res.Triples {
		if tr.P.Value != "http://view/origin_continent" {
			t.Errorf("predicate = %v", tr.P)
		}
	}
	// The view is loadable into a fresh store.
	st2 := store.New()
	if err := st2.AddAll(res.Triples); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 6 {
		t.Errorf("materialized store = %d triples", st2.Len())
	}
}

func TestExecConstructDedupAndUnbound(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `CONSTRUCT {
		?c <http://view/usedAsOrigin> <http://view/yes> .
		?c <http://view/label> ?l .
	} WHERE {
		?o <http://ex.org/origin> ?c .
		OPTIONAL { ?c <http://ex.org/missing> ?l . }
	}`)
	// ?l is never bound: only the first template triple instantiates,
	// deduplicated across the 3 distinct origins.
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %d, want 3\n%s", len(res.Triples), res)
	}
}

func TestExecConstructLimit(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `CONSTRUCT { ?o <http://v/p> ?c . } WHERE { ?o <http://ex.org/origin> ?c . } LIMIT 2`)
	if len(res.Triples) != 2 {
		t.Errorf("triples = %d, want 2", len(res.Triples))
	}
}

func TestExecFilterExists(t *testing.T) {
	st := testStore(t)
	// Origin countries that have a continent link (all of them do).
	res := runQuery(t, st, `SELECT DISTINCT ?c WHERE {
		?o <http://ex.org/origin> ?c .
		FILTER EXISTS { ?c <http://ex.org/inContinent> ?x . }
	}`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3\n%s", res.Len(), res)
	}
}

func TestExecFilterNotExistsCorrelated(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	_ = st.AddAll([]rdf.Triple{
		rdf.NewTriple(ex("o1"), ex("dim"), ex("a")),
		rdf.NewTriple(ex("o2"), ex("dim"), ex("b")),
		rdf.NewTriple(ex("a"), ex("up"), ex("top")), // only a has a parent
	})
	// Members without a parent — the correlation on ?c is essential:
	// uncorrelated evaluation would drop both or keep both.
	res := runQuery(t, st, `SELECT ?c WHERE {
		?o <http://ex.org/dim> ?c .
		FILTER NOT EXISTS { ?c <http://ex.org/up> ?p . }
	}`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://ex.org/b" {
		t.Errorf("rows = %v", res.Rows)
	}
	// And the positive case.
	res2 := runQuery(t, st, `SELECT ?c WHERE {
		?o <http://ex.org/dim> ?c .
		FILTER EXISTS { ?c <http://ex.org/up> ?p . }
	}`)
	if res2.Len() != 1 || res2.Rows[0][0].Value != "http://ex.org/a" {
		t.Errorf("exists rows = %v", res2.Rows)
	}
}

func TestExecExistsWithInnerFilter(t *testing.T) {
	st := testStore(t)
	// Destinations that received at least one large shipment.
	res := runQuery(t, st, `SELECT DISTINCT ?d WHERE {
		?o <http://ex.org/dest> ?d .
		FILTER EXISTS { ?o2 <http://ex.org/dest> ?d . ?o2 <http://ex.org/value> ?v . FILTER (?v >= 250) }
	}`)
	// values: de gets 300,100,250 (≥250 twice); fr gets 200,50,10 → only de.
	if res.Len() != 1 || res.Rows[0][0].Value != "http://ex.org/de" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestParseExistsRoundTrip(t *testing.T) {
	q := mustParse(t, `SELECT ?c WHERE { ?o <http://p> ?c . FILTER NOT EXISTS { ?c <http://up> ?x . FILTER (?x != <http://y>) } }`)
	ser := q.String()
	if _, err := Parse(ser); err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, ser)
	}
}

func TestExecSubSelect(t *testing.T) {
	st := testStore(t)
	// Average of per-destination sums: classic nested aggregation.
	res := runQuery(t, st, `SELECT (AVG(?total) AS ?avgTotal) WHERE {
		{ SELECT ?d (SUM(?v) AS ?total) WHERE {
			?o <http://ex.org/dest> ?d .
			?o <http://ex.org/value> ?v .
		} GROUP BY ?d }
	}`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	// sums: de=650, fr=260 → avg 455
	if n, _ := res.Rows[0][0].Numeric(); n != 455 {
		t.Errorf("avg of sums = %v, want 455", n)
	}
}

func TestExecSubSelectJoinsOuter(t *testing.T) {
	st := testStore(t)
	// Join the subquery's destination totals back to continents.
	res := runQuery(t, st, `SELECT ?d ?total WHERE {
		{ SELECT ?d (SUM(?v) AS ?total) WHERE {
			?o <http://ex.org/dest> ?d .
			?o <http://ex.org/value> ?v .
		} GROUP BY ?d }
		?d <http://ex.org/inContinent> <http://ex.org/Europe> .
	}`)
	if res.Len() != 2 { // de and fr are both European
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	totals := map[string]float64{}
	for _, r := range res.Rows {
		n, _ := r[1].Numeric()
		totals[r[0].Value] = n
	}
	if totals["http://ex.org/de"] != 650 || totals["http://ex.org/fr"] != 260 {
		t.Errorf("totals = %v", totals)
	}
}

func TestExecSubSelectWithLimit(t *testing.T) {
	st := testStore(t)
	// Top-1 destination by total, joined to its continent.
	res := runQuery(t, st, `SELECT ?d ?cont WHERE {
		{ SELECT ?d (SUM(?v) AS ?total) WHERE {
			?o <http://ex.org/dest> ?d . ?o <http://ex.org/value> ?v .
		} GROUP BY ?d ORDER BY DESC(?total) LIMIT 1 }
		?d <http://ex.org/inContinent> ?cont .
	}`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://ex.org/de" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	st := testStore(t)
	eng := NewEngine(st)
	out, err := eng.ExplainString(`SELECT ?cont (SUM(?v) AS ?s) WHERE {
		?o a <http://ex.org/Observation> .
		?o <http://ex.org/origin>/<http://ex.org/inContinent> ?cont .
		?o <http://ex.org/value> ?v .
		FILTER (?v > 10)
	} GROUP BY ?cont ORDER BY DESC(?s) LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT with grouping",
		"1. ", "index join", "~6 index entries",
		"filter: ", "ORDER BY", "LIMIT 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// The first joined pattern must be a seed scan; the rest joins.
	if strings.Index(out, "seed scan") > strings.Index(out, "index join") {
		t.Errorf("ordering wrong:\n%s", out)
	}
	// A syntax error propagates.
	if _, err := eng.ExplainString("NOT SPARQL"); err == nil {
		t.Error("bad query explained")
	}
}

func TestExplainAskAndConstruct(t *testing.T) {
	st := testStore(t)
	eng := NewEngine(st)
	out, _ := eng.ExplainString(`ASK { ?s <http://ex.org/origin> ?c . }`)
	if !strings.Contains(out, "short-circuit") {
		t.Errorf("ask explain:\n%s", out)
	}
	out, _ = eng.ExplainString(`CONSTRUCT { ?s <http://v/p> ?c . } WHERE { ?s <http://ex.org/origin> ?c . }`)
	if !strings.Contains(out, "CONSTRUCT (1 template triples)") {
		t.Errorf("construct explain:\n%s", out)
	}
}

func TestExecBind(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?o ?double WHERE {
		?o <http://ex.org/value> ?v .
		BIND (?v * 2 AS ?double)
		FILTER (?double >= 400)
	}`)
	if res.Len() != 2 { // 300*2=600, 250*2=500, 200*2=400 → 3? values: 300,200,100,50,250,10 → ≥400: 600,500,400 = 3
		t.Logf("rows:\n%s", res)
	}
	di := res.Column("double")
	for _, r := range res.Rows {
		n, ok := r[di].Numeric()
		if !ok || n < 400 {
			t.Errorf("double = %v", r[di])
		}
	}
}

func TestExecBindString(t *testing.T) {
	st := testStore(t)
	res := runQuery(t, st, `SELECT ?c ?tag WHERE {
		?c <http://ex.org/inContinent> <http://ex.org/Asia> .
		BIND (CONCAT("country:", STR(?c)) AS ?tag)
	}`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	ti := res.Column("tag")
	for _, r := range res.Rows {
		if !strings.HasPrefix(r[ti].Value, "country:http://ex.org/") {
			t.Errorf("tag = %v", r[ti])
		}
	}
}

func TestExecAggregateArithmetic(t *testing.T) {
	st := testStore(t)
	// Ratio of two aggregates in one projection expression.
	res := runQuery(t, st, `SELECT ?d (SUM(?v) / COUNT(?v) AS ?mean) WHERE {
		?o <http://ex.org/dest> ?d .
		?o <http://ex.org/value> ?v .
	} GROUP BY ?d`)
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	means := map[string]float64{}
	for _, r := range res.Rows {
		n, _ := r[1].Numeric()
		means[r[0].Value] = n
	}
	// de: (300+100+250)/3 = 216.66..; fr: (200+50+10)/3 = 86.66..
	if m := means["http://ex.org/de"]; m < 216 || m > 217 {
		t.Errorf("de mean = %v", m)
	}
	if m := means["http://ex.org/fr"]; m < 86 || m > 87 {
		t.Errorf("fr mean = %v", m)
	}
}

func TestExecContextCancellation(t *testing.T) {
	// A store large enough that the cross-product query does real work.
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	for i := 0; i < 700; i++ {
		ts = append(ts,
			rdf.NewTriple(ex(fmt.Sprintf("a%d", i)), ex("p"), ex(fmt.Sprintf("x%d", i%50))),
			rdf.NewTriple(ex(fmt.Sprintf("b%d", i)), ex("q"), ex(fmt.Sprintf("y%d", i%50))),
		)
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	// Already-cancelled context: the heavy product query must abort.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryStringContext(ctx, `SELECT (COUNT(*) AS ?n) WHERE {
		?a <http://ex.org/p> ?x .
		?b <http://ex.org/q> ?y .
	}`)
	if err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The same query succeeds with a live context.
	res, err := eng.QueryStringContext(context.Background(), `SELECT (COUNT(*) AS ?n) WHERE {
		?a <http://ex.org/p> ?x .
		?b <http://ex.org/q> ?y .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].Numeric(); n != 490000 {
		t.Errorf("count = %v, want 490000", n)
	}
}

func TestExecDeadline(t *testing.T) {
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	for i := 0; i < 2000; i++ {
		ts = append(ts, rdf.NewTriple(ex(fmt.Sprintf("a%d", i)), ex("p"), ex(fmt.Sprintf("x%d", i%10))))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := eng.QueryStringContext(ctx, `SELECT (COUNT(*) AS ?n) WHERE {
		?a <http://ex.org/p> ?x . ?b <http://ex.org/p> ?y . ?c <http://ex.org/p> ?z .
	}`); err == nil {
		t.Fatal("deadline-expired query succeeded")
	}
}

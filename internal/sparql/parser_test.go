package sparql

import (
	"strings"
	"testing"

	"re2xolap/internal/rdf"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func patterns(q *Query) []TriplePattern {
	var out []TriplePattern
	for _, el := range q.Where {
		if tp, ok := el.(TriplePattern); ok {
			out = append(out, tp)
		}
	}
	return out
}

func TestParseBasicSelect(t *testing.T) {
	q := mustParse(t, `SELECT ?s ?o WHERE { ?s <http://ex.org/p> ?o . }`)
	if q.Ask || q.Distinct || q.Star {
		t.Error("unexpected flags")
	}
	if len(q.Select) != 2 || q.Select[0].Var != "s" || q.Select[1].Var != "o" {
		t.Errorf("Select = %v", q.Select)
	}
	ps := patterns(q)
	if len(ps) != 1 {
		t.Fatalf("patterns = %v", ps)
	}
	if !ps[0].S.IsVar || ps[0].P.Term.Value != "http://ex.org/p" || !ps[0].O.IsVar {
		t.Errorf("pattern = %v", ps[0])
	}
}

func TestParsePrefixes(t *testing.T) {
	q := mustParse(t, `PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:p ex:o . ?s a ex:Class . }`)
	ps := patterns(q)
	if ps[0].P.Term.Value != "http://ex.org/p" {
		t.Errorf("prefixed predicate = %v", ps[0].P)
	}
	if ps[1].P.Term.Value != rdf.RDFType {
		t.Errorf("'a' predicate = %v", ps[1].P)
	}
	if ps[1].O.Term.Value != "http://ex.org/Class" {
		t.Errorf("class = %v", ps[1].O)
	}
}

func TestParsePropertyPath(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?obs <http://a>/<http://b>/<http://c> ?x . }`)
	ps := patterns(q)
	if len(ps) != 3 {
		t.Fatalf("path expanded to %d patterns, want 3", len(ps))
	}
	if !strings.HasPrefix(ps[0].O.Var, internalVarPrefix) {
		t.Errorf("intermediate var = %q", ps[0].O.Var)
	}
	if ps[0].O.Var != ps[1].S.Var || ps[1].O.Var != ps[2].S.Var {
		t.Error("path chain broken")
	}
	if ps[2].O.Var != "x" {
		t.Errorf("final object = %v", ps[2].O)
	}
}

func TestParseInversePath(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?m ^<http://p> ?x . }`)
	ps := patterns(q)
	if len(ps) != 1 {
		t.Fatalf("patterns = %v", ps)
	}
	// inverse: ?x <http://p> ?m
	if ps[0].S.Var != "x" || ps[0].O.Var != "m" {
		t.Errorf("inverse not swapped: %v", ps[0])
	}
}

func TestParseSemicolonComma(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s <http://p> ?a , ?b ; <http://q> ?c . }`)
	ps := patterns(q)
	if len(ps) != 3 {
		t.Fatalf("got %d patterns, want 3: %v", len(ps), ps)
	}
	for _, tp := range ps {
		if tp.S.Var != "s" {
			t.Errorf("subject not shared: %v", tp)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `SELECT ?d (SUM(?v) AS ?total) (COUNT(*) AS ?n) WHERE { ?o <http://dim> ?d . ?o <http://m> ?v . } GROUP BY ?d HAVING ((SUM(?v)) > 10) ORDER BY DESC(?total) LIMIT 5 OFFSET 2`)
	if !q.IsAggregate() {
		t.Fatal("IsAggregate = false")
	}
	if len(q.Select) != 3 || q.Select[1].Var != "total" {
		t.Errorf("Select = %v", q.Select)
	}
	agg, ok := q.Select[1].Expr.(AggExpr)
	if !ok || agg.Fn != "SUM" {
		t.Errorf("agg = %v", q.Select[1].Expr)
	}
	if _, ok := q.Select[2].Expr.(AggExpr); !ok {
		t.Errorf("count = %v", q.Select[2].Expr)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "d" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Having) != 1 {
		t.Errorf("Having = %v", q.Having)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 5 || q.Offset != 2 {
		t.Errorf("Limit/Offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseBareAggregate(t *testing.T) {
	// Paper Figure 2 style: SELECT ?origin ?dest SUM(?obsValue)
	q := mustParse(t, `SELECT ?origin ?dest SUM(?obsValue) WHERE {
		?obs <http://co>/<http://ic> ?origin .
		?obs <http://cd> ?dest .
		?obs <http://num> ?obsValue .
	} GROUP BY ?origin ?dest`)
	if len(q.Select) != 3 {
		t.Fatalf("Select = %v", q.Select)
	}
	if q.Select[2].Var != "sum_obsValue" {
		t.Errorf("auto agg name = %q", q.Select[2].Var)
	}
	if len(patterns(q)) != 4 { // path expands to 2
		t.Errorf("patterns = %v", patterns(q))
	}
}

func TestParseFilters(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		?s <http://p> ?v .
		FILTER (?v > 10 && ?v <= 20 || ?v = 99)
		FILTER (CONTAINS(LCASE(STR(?s)), "abc"))
		FILTER (?v IN (1, 2, 3))
		FILTER (?v NOT IN (4, 5))
	}`)
	var filters []Expr
	for _, el := range q.Where {
		if f, ok := el.(FilterElement); ok {
			filters = append(filters, f.Expr)
		}
	}
	if len(filters) != 4 {
		t.Fatalf("filters = %v", filters)
	}
	v, kw, ok := textConstraint(filters[1])
	if !ok || v != "s" || kw != "abc" {
		t.Errorf("textConstraint = %q %q %v", v, kw, ok)
	}
	in, ok := filters[2].(InExpr)
	if !ok || in.Not || len(in.List) != 3 {
		t.Errorf("in = %v", filters[2])
	}
	notIn, ok := filters[3].(InExpr)
	if !ok || !notIn.Not {
		t.Errorf("not in = %v", filters[3])
	}
}

func TestParseValues(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE {
		VALUES ?x { <http://a> <http://b> }
		VALUES (?y ?z) { (<http://c> "lit") (UNDEF 5) }
		?x <http://p> ?y .
	}`)
	var vals []ValuesElement
	for _, el := range q.Where {
		if v, ok := el.(ValuesElement); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	if len(vals[0].Rows) != 2 || vals[0].Rows[0][0].Value != "http://a" {
		t.Errorf("values[0] = %+v", vals[0])
	}
	if vals[1].Rows[1][0] != nil {
		t.Error("UNDEF not nil")
	}
	if vals[1].Rows[1][1].Value != "5" {
		t.Errorf("numeric value = %v", vals[1].Rows[1][1])
	}
}

func TestParseOptional(t *testing.T) {
	q := mustParse(t, `SELECT ?s ?l WHERE {
		?s <http://p> ?o .
		OPTIONAL { ?s <http://label> ?l . FILTER (STRLEN(?l) > 0) }
	}`)
	var opts []OptionalElement
	for _, el := range q.Where {
		if o, ok := el.(OptionalElement); ok {
			opts = append(opts, o)
		}
	}
	if len(opts) != 1 || len(opts[0].Patterns) != 1 || len(opts[0].Filters) != 1 {
		t.Fatalf("optional = %+v", opts)
	}
}

func TestParseAsk(t *testing.T) {
	q := mustParse(t, `ASK { ?s <http://p> <http://o> . }`)
	if !q.Ask {
		t.Error("Ask = false")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?s ?p ?o }`,
		`SELECT ?s { ?s ?p }`,
		`SELECT ?s WHERE { ?s ?p ?o`,
		`SELECT ?s WHERE { ?s ?p ?o . } GROUP BY`,
		`SELECT ?s WHERE { ?s ex:p ?o . }`,     // unknown prefix
		`SELECT ?s WHERE { ?s ?p ?o . } UNION`, // trailing junk
		`SELECT ?s WHERE { { ?s ?p ?o } UNION { OPTIONAL { ?s ?p ?o } } }`,
		`SELECT (SUM(?v) AS) WHERE { ?s ?p ?v }`,
		`INSERT DATA { <http://a> <http://b> <http://c> }`,
		`SELECT (AVG(*) AS ?x) WHERE { ?s ?p ?o }`,
	}
	for _, src := range bad {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted: %v", src, q)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT ?origin ?dest (SUM(?v) AS ?sum_v) WHERE { ?obs <http://co> ?origin . ?obs <http://cd> ?dest . ?obs <http://m> ?v . } GROUP BY ?origin ?dest`,
		`SELECT DISTINCT ?s WHERE { ?s <http://p> "x"@en . FILTER (?s != <http://a>) } LIMIT 3`,
		`ASK { <http://s> <http://p> ?o . }`,
		`SELECT ?s WHERE { ?s <http://p> ?v . } ORDER BY DESC(?v) LIMIT 10 OFFSET 5`,
		`SELECT ?s ?l WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://l> ?l . } }`,
		`SELECT ?x WHERE { VALUES (?x) { (<http://a>) (UNDEF) } }`,
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		ser := q1.String()
		q2, err := Parse(ser)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nserialized: %s", src, err, ser)
			continue
		}
		if q2.String() != ser {
			t.Errorf("serialization not stable:\n1st: %s\n2nd: %s", ser, q2.String())
		}
	}
}

func TestParseTypedAndLangLiterals(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		?s <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?s <http://q> "hi"@en .
		?s <http://r> 3.5 .
		?s <http://t> true .
	}`)
	ps := patterns(q)
	if ps[0].O.Term != rdf.NewTyped("5", rdf.XSDInteger) {
		t.Errorf("typed = %v", ps[0].O.Term)
	}
	if ps[1].O.Term != rdf.NewLangString("hi", "en") {
		t.Errorf("lang = %v", ps[1].O.Term)
	}
	if ps[2].O.Term != rdf.NewTyped("3.5", rdf.XSDDouble) {
		t.Errorf("double = %v", ps[2].O.Term)
	}
	if ps[3].O.Term != rdf.NewBoolean(true) {
		t.Errorf("bool = %v", ps[3].O.Term)
	}
}

// TestParseNeverPanics feeds mangled fragments of valid queries to the
// parser; any outcome except a panic is acceptable.
func TestParseNeverPanics(t *testing.T) {
	base := `PREFIX ex: <http://ex.org/> SELECT ?a (SUM(?v) AS ?s) WHERE { ?a ex:p/ex:q ?b . FILTER (?v > 10 && CONTAINS(STR(?b), "x")) VALUES ?a { ex:m } OPTIONAL { ?a ex:l ?l . } { ?a ex:r ?c } UNION { ?a ex:t ?c } } GROUP BY ?a HAVING ((SUM(?v)) < 5) ORDER BY DESC(?s) LIMIT 3 OFFSET 1`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for cut := 0; cut <= len(base); cut += 3 {
		_, _ = Parse(base[:cut])
		_, _ = Parse(base[cut:])
	}
	mangled := []string{
		strings.ReplaceAll(base, "{", "}"),
		strings.ReplaceAll(base, "?", "$"),
		strings.ReplaceAll(base, "(", ""),
		strings.ReplaceAll(base, "<", ""),
		strings.Repeat("(", 500),
		strings.Repeat("{ ?a ?b ?c . ", 100),
		"\x00\x01\x02",
		`SELECT ?x WHERE { ?x <http://p> "unterminated`,
	}
	for _, src := range mangled {
		_, _ = Parse(src)
	}
}

func TestParseConstruct(t *testing.T) {
	q := mustParse(t, `PREFIX v: <http://v/>
CONSTRUCT { ?e a v:Obs . ?e v:dim ?d . } WHERE { ?e <http://p> ?d . }`)
	if q.Construct == nil || len(q.Construct) != 2 {
		t.Fatalf("template = %v", q.Construct)
	}
	if q.Construct[0].P.Term.Value != rdf.RDFType {
		t.Errorf("template 'a' not expanded: %v", q.Construct[0].P)
	}
	// Serialization round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, q.String())
	}
	if len(q2.Construct) != 2 {
		t.Errorf("round trip template = %v", q2.Construct)
	}
}

func TestParseConstructErrors(t *testing.T) {
	bad := []string{
		`CONSTRUCT { ?e <http://a>/<http://b> ?d } WHERE { ?e ?p ?d }`, // path in template
		`CONSTRUCT { ?e <http://a> ?d WHERE { ?e ?p ?d }`,              // unterminated
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

package sparql

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
)

// Results is a SPARQL result set. For ASK queries only Boolean is
// meaningful; for CONSTRUCT queries only Triples. An unbound cell is
// the zero rdf.Term; use Bound to test.
type Results struct {
	Vars    []string
	Rows    [][]rdf.Term
	IsAsk   bool
	Boolean bool
	// Triples holds the CONSTRUCT output (nil for SELECT/ASK).
	Triples []rdf.Triple
	// IsConstruct marks a CONSTRUCT result.
	IsConstruct bool
}

// Bound reports whether a result cell holds a value.
func Bound(t rdf.Term) bool { return t != (rdf.Term{}) }

// Len returns the number of result rows.
func (r *Results) Len() int { return len(r.Rows) }

// Column returns the index of the named variable, or -1.
func (r *Results) Column(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// String renders the results as an aligned text table, suitable for CLI
// display.
func (r *Results) String() string {
	if r.IsAsk {
		return fmt.Sprintf("ASK => %v", r.Boolean)
	}
	if r.IsConstruct {
		var b strings.Builder
		for _, t := range r.Triples {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	widths := make([]int, len(r.Vars))
	cells := make([][]string, 0, len(r.Rows)+1)
	head := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		head[i] = "?" + v
		widths[i] = len(head[i])
	}
	cells = append(cells, head)
	for _, row := range r.Rows {
		line := make([]string, len(r.Vars))
		for i, t := range row {
			s := ""
			if Bound(t) {
				if t.IsLiteral() {
					s = t.Value
				} else {
					s = t.String()
				}
			}
			line[i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells = append(cells, line)
	}
	var b strings.Builder
	for rowIdx, line := range cells {
		for i, s := range line {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
		if rowIdx == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("-+-")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"re2xolap/internal/rdf"
)

// Distributed-execution support: the helpers internal/shard needs to
// merge per-shard partial results into one canonical result set.
//
// The coordinator's determinism contract is *topology independence*:
// for a fixed dataset, the merged result is a pure function of the
// query and the union of the shards' triples, regardless of how many
// shards the data is split across. A single store has a natural row
// order (its join emission order); a federation does not, so wherever
// the language leaves order unspecified the coordinator imposes a
// canonical one (see MergeFinalize). Everything here lives in package
// sparql because it reuses the executor's value semantics — orderLess,
// numValue, expression evaluation — which is exactly what makes the
// merged output byte-compatible with a 1-shard topology.

// CanonicalRowKey serializes a result row into a byte-comparable key.
// It is the tie-break (and, absent ORDER BY, the entire sort key) the
// coordinator uses to give merged results a deterministic order.
func CanonicalRowKey(row []rdf.Term) string {
	var b strings.Builder
	for _, t := range row {
		if Bound(t) {
			b.WriteString(t.String())
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

// MergeFinalize applies the query's solution modifiers to a merged,
// cross-shard result set: rows are sorted by the ORDER BY keys with
// CanonicalRowKey as the final tie-break (or by the canonical key
// alone when the query has no ORDER BY), then DISTINCT, OFFSET, and
// LIMIT apply exactly as in the sequential engine.
//
// The canonical tie-break is what makes a scatter-gather merge
// deterministic: a stable sort (the engine's choice) would leave ties
// in arrival order, which depends on the shard topology.
func MergeFinalize(q *Query, res *Results) {
	if res.IsAsk || res.IsConstruct {
		return
	}
	type keyed struct {
		row   []rdf.Term
		keys  []Value
		canon string
	}
	ks := make([]keyed, len(res.Rows))
	for i, r := range res.Rows {
		k := keyed{row: r, canon: CanonicalRowKey(r)}
		if len(q.OrderBy) > 0 {
			b := outBinding{vars: res.Vars, row: r}
			k.keys = make([]Value, len(q.OrderBy))
			for j, o := range q.OrderBy {
				v, err := evalExpr(o.Expr, b)
				if err == nil {
					k.keys[j] = v
				}
			}
		}
		ks[i] = k
	}
	sort.Slice(ks, func(i, j int) bool {
		for k, o := range q.OrderBy {
			a, b := ks[i].keys[k], ks[j].keys[k]
			if orderLess(a, b) {
				return !o.Desc
			}
			if orderLess(b, a) {
				return o.Desc
			}
		}
		return ks[i].canon < ks[j].canon
	})
	for i := range ks {
		res.Rows[i] = ks[i].row
	}
	if q.Distinct {
		seen := map[string]struct{}{}
		out := res.Rows[:0]
		for i, r := range res.Rows {
			k := ks[i].canon
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
		res.Rows = out
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
}

// distAggKind is how one aggregate decomposes into shard-side columns.
type distAggKind int

const (
	distCount  distAggKind = iota // one COUNT column; partials add
	distSum                       // one SUM column; partials add
	distAvg                       // SUM + COUNT columns; add pairwise, divide at the end
	distMin                       // one MIN column; keep the orderLess-least
	distMax                       // one MAX column; keep the orderLess-greatest
	distSample                    // pushed down as MIN: the canonical sample
)

// distAgg is the merge plan for one original aggregate.
type distAgg struct {
	orig AggExpr
	kind distAggKind
	// col/col2 are the shard-result column names carrying the partial
	// state (col2 is the AVG count column).
	col, col2 string
}

// partialColPrefix names the synthetic shard-query columns. It shares
// the engine's internal-variable namespace conventions but must not
// collide with internalVarPrefix ("_path"), which SELECT * excludes.
const partialColPrefix = "_sg"

// PartialAggPlan is a decomposed GROUP BY query: ShardQuery pushes
// partial aggregation down to each shard, Merge combines the shards'
// partial states and finalizes HAVING and the projection. The caller
// applies MergeFinalize afterwards.
type PartialAggPlan struct {
	orig    *Query
	shard   *Query
	aggs    []AggExpr
	aggIdx  map[string]int
	daggs   []distAgg
	keyVars []string
}

// ShardQuery returns the rewritten per-shard query. Callers must not
// mutate it.
func (p *PartialAggPlan) ShardQuery() *Query { return p.shard }

// PlanPartialAggregation decomposes an aggregate query into per-shard
// partial aggregation plus a coordinator merge. It reports ok = false
// for shapes whose partial states do not merge exactly (or not
// deterministically across topologies):
//
//   - any DISTINCT aggregate (needs a global dedup set),
//   - GROUP_CONCAT (concatenation order depends on per-shard row
//     order, which varies with the topology),
//   - plain variables projected (or used in HAVING/ORDER BY
//     expressions) without appearing in GROUP BY — the engine
//     resolves them from a representative row, which is
//     topology-dependent.
//
// SAMPLE is decomposed as MIN: the language lets SAMPLE return any
// group member, and the least member is the only choice every
// topology agrees on. AVG decomposes into (SUM, COUNT) pairs; for a
// group mixing numeric and non-numeric values the pushed-down COUNT
// counts bound rather than numeric-valid values, which can deviate
// from the sequential AVG (the gather fallback is exact).
func PlanPartialAggregation(q *Query) (*PartialAggPlan, bool) {
	if q.Ask || q.Construct != nil || !q.IsAggregate() || q.Star {
		return nil, false
	}
	aggs, aggIdx := collectAggs(q)
	for _, a := range aggs {
		if a.Distinct || a.Fn == "GROUP_CONCAT" {
			return nil, false
		}
		switch a.Fn {
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE":
		default:
			return nil, false
		}
	}
	inGroupBy := map[string]bool{}
	for _, v := range q.GroupBy {
		inGroupBy[v] = true
	}
	// Every non-aggregated variable reaching the output must be a
	// GROUP BY key, or its value would come from a topology-dependent
	// representative row.
	check := func(e Expr) bool {
		for _, v := range nonAggVars(e, nil) {
			if !inGroupBy[v] {
				return false
			}
		}
		return true
	}
	for _, it := range q.Select {
		if it.Expr == nil {
			if !inGroupBy[it.Var] {
				return nil, false
			}
		} else if !check(it.Expr) {
			return nil, false
		}
	}
	for _, h := range q.Having {
		if !check(h) {
			return nil, false
		}
	}
	for _, o := range q.OrderBy {
		// ORDER BY may also reference projection aliases, which are
		// resolved over the output row; only reject free variables.
		for _, v := range nonAggVars(o.Expr, nil) {
			if !inGroupBy[v] && !selectsVar(q, v) {
				return nil, false
			}
		}
	}

	p := &PartialAggPlan{orig: q, aggs: aggs, aggIdx: aggIdx, keyVars: q.GroupBy}
	shard := &Query{
		Where:   q.Where,
		GroupBy: q.GroupBy,
		Limit:   -1,
	}
	for _, v := range q.GroupBy {
		shard.Select = append(shard.Select, SelectItem{Var: v})
	}
	for i, a := range aggs {
		col := func(suffix string) string {
			return fmt.Sprintf("%s%d_%s", partialColPrefix, i, suffix)
		}
		var d distAgg
		d.orig = a
		switch a.Fn {
		case "COUNT":
			d.kind = distCount
			d.col = col("n")
			shard.Select = append(shard.Select, SelectItem{Var: d.col, Expr: a})
		case "SUM":
			d.kind = distSum
			d.col = col("sum")
			shard.Select = append(shard.Select, SelectItem{Var: d.col, Expr: a})
		case "AVG":
			d.kind = distAvg
			d.col = col("sum")
			d.col2 = col("cnt")
			shard.Select = append(shard.Select,
				SelectItem{Var: d.col, Expr: AggExpr{Fn: "SUM", Arg: a.Arg}},
				SelectItem{Var: d.col2, Expr: AggExpr{Fn: "COUNT", Arg: a.Arg}})
		case "MIN":
			d.kind = distMin
			d.col = col("min")
			shard.Select = append(shard.Select, SelectItem{Var: d.col, Expr: a})
		case "MAX":
			d.kind = distMax
			d.col = col("max")
			shard.Select = append(shard.Select, SelectItem{Var: d.col, Expr: a})
		case "SAMPLE":
			d.kind = distSample
			d.col = col("smp")
			shard.Select = append(shard.Select, SelectItem{Var: d.col, Expr: AggExpr{Fn: "MIN", Arg: a.Arg}})
		}
		p.daggs = append(p.daggs, d)
	}
	p.shard = shard
	return p, true
}

// selectsVar reports whether the query projects a column named v.
func selectsVar(q *Query, v string) bool {
	for _, it := range q.Select {
		if it.Var == v {
			return true
		}
	}
	return false
}

// nonAggVars collects the variables of e that occur outside aggregate
// arguments (aggregate-internal variables are consumed per shard).
func nonAggVars(e Expr, dst []string) []string {
	switch x := e.(type) {
	case AggExpr:
		return dst
	case VarExpr:
		return append(dst, x.Name)
	case BinaryExpr:
		return nonAggVars(x.R, nonAggVars(x.L, dst))
	case UnaryExpr:
		return nonAggVars(x.E, dst)
	case InExpr:
		dst = nonAggVars(x.E, dst)
		for _, y := range x.List {
			dst = nonAggVars(y, dst)
		}
		return dst
	case FuncExpr:
		for _, y := range x.Args {
			dst = nonAggVars(y, dst)
		}
		return dst
	case ExistsExpr:
		return exprVars(x, dst)
	}
	return dst
}

// distPartial is the merged cross-shard state of one aggregate within
// one group.
type distPartial struct {
	n    int64   // COUNT, AVG count
	sum  float64 // SUM / AVG
	best Value   // MIN / MAX / SAMPLE
}

// distGroup is one cross-shard group under merge.
type distGroup struct {
	key   []rdf.Term // GROUP BY key terms
	canon string
	parts []distPartial
}

// Merge combines per-shard partial-aggregate results (one *Results
// per shard, in shard order; nil entries — failed shards in degraded
// mode — are skipped) into the final result rows: groups are united
// by key, partial states merged, aggregates finalized, HAVING applied,
// and the projection evaluated. Group order is canonical (by key
// serialization); the caller applies MergeFinalize for ORDER BY /
// DISTINCT / LIMIT.
func (p *PartialAggPlan) Merge(shardResults []*Results) (*Results, error) {
	groups := map[string]*distGroup{}
	for _, sr := range shardResults {
		if sr == nil {
			continue
		}
		cols, err := p.shardColumns(sr)
		if err != nil {
			return nil, err
		}
		for _, r := range sr.Rows {
			key := make([]rdf.Term, len(p.keyVars))
			for i, c := range cols.key {
				key[i] = r[c]
			}
			ck := CanonicalRowKey(key)
			g, ok := groups[ck]
			if !ok {
				g = &distGroup{key: key, canon: ck, parts: make([]distPartial, len(p.daggs))}
				groups[ck] = g
			}
			for ai, d := range p.daggs {
				if err := mergeDistPartial(&g.parts[ai], d.kind, r, cols.col[ai], cols.col2[ai]); err != nil {
					return nil, err
				}
			}
		}
	}
	// A global aggregate (no GROUP BY) over an all-empty federation
	// still yields one group so COUNT finalizes to 0 — each shard
	// already emits its empty-group row, but every entry may have been
	// nil in degraded mode.
	if len(groups) == 0 && len(p.keyVars) == 0 {
		groups[""] = &distGroup{parts: make([]distPartial, len(p.daggs))}
	}
	order := make([]string, 0, len(groups))
	for k := range groups {
		order = append(order, k)
	}
	sort.Strings(order)

	res := &Results{}
	for _, it := range p.orig.Select {
		res.Vars = append(res.Vars, it.Var)
	}
	for _, ck := range order {
		g := groups[ck]
		vals := make([]Value, len(p.daggs))
		for ai, d := range p.daggs {
			vals[ai] = finalizeDistPartial(g.parts[ai], d)
		}
		b := distBinding{keyVars: p.keyVars, key: g.key, aggVals: vals, aggIdx: p.aggIdx}
		keep := true
		for _, h := range p.orig.Having {
			ok, err := evalBool(substituteAggValues(h, p.aggIdx, vals), b)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		line := make([]rdf.Term, len(p.orig.Select))
		for i, it := range p.orig.Select {
			var v Value
			if it.Expr == nil {
				v = b.value(it.Var)
			} else {
				var err error
				v, err = evalExpr(substituteAggValues(it.Expr, p.aggIdx, vals), b)
				if err != nil {
					v = Value{}
				}
			}
			if v.Bound {
				line[i] = v.Term
			}
		}
		res.Rows = append(res.Rows, line)
	}
	return res, nil
}

// shardCols maps the plan's columns into one shard result's layout.
type shardCols struct {
	key  []int
	col  []int // per dagg: primary column
	col2 []int // per dagg: AVG count column (-1 otherwise)
}

func (p *PartialAggPlan) shardColumns(sr *Results) (shardCols, error) {
	var c shardCols
	find := func(name string) (int, error) {
		i := sr.Column(name)
		if i < 0 {
			return 0, fmt.Errorf("sparql: shard result missing column ?%s", name)
		}
		return i, nil
	}
	for _, v := range p.keyVars {
		i, err := find(v)
		if err != nil {
			return c, err
		}
		c.key = append(c.key, i)
	}
	for _, d := range p.daggs {
		i, err := find(d.col)
		if err != nil {
			return c, err
		}
		c.col = append(c.col, i)
		j := -1
		if d.col2 != "" {
			if j, err = find(d.col2); err != nil {
				return c, err
			}
		}
		c.col2 = append(c.col2, j)
	}
	return c, nil
}

// mergeDistPartial folds one shard row's partial state for one
// aggregate into the cross-shard state. col/col2 index the row's
// partial columns (col2 only for AVG's count).
func mergeDistPartial(dst *distPartial, kind distAggKind, r []rdf.Term, col, col2 int) error {
	t := r[col]
	switch kind {
	case distCount:
		n, err := termInt(t)
		if err != nil {
			return err
		}
		dst.n += n
	case distSum:
		f, err := termFloat(t)
		if err != nil {
			return err
		}
		dst.sum += f
	case distAvg:
		f, err := termFloat(t)
		if err != nil {
			return err
		}
		n, err := termInt(r[col2])
		if err != nil {
			return err
		}
		// A shard whose group had no valid values reports SUM 0,
		// COUNT 0 — adding both is the identity.
		dst.sum += f
		dst.n += n
	case distMin, distSample:
		if !Bound(t) {
			return nil
		}
		v := boundValue(t)
		if !dst.best.Bound || orderLess(v, dst.best) {
			dst.best = v
		}
	case distMax:
		if !Bound(t) {
			return nil
		}
		v := boundValue(t)
		if !dst.best.Bound || orderLess(dst.best, v) {
			dst.best = v
		}
	}
	return nil
}

// finalizeDistPartial turns a merged state into the aggregate's value
// using the same numValue rules as the sequential fold.
func finalizeDistPartial(p distPartial, d distAgg) Value {
	switch d.kind {
	case distCount:
		return numValue(float64(p.n))
	case distSum:
		return numValue(p.sum)
	case distAvg:
		if p.n == 0 {
			return Value{}
		}
		return numValue(p.sum / float64(p.n))
	default:
		return p.best
	}
}

func termInt(t rdf.Term) (int64, error) {
	if !Bound(t) {
		return 0, fmt.Errorf("sparql: unbound partial count")
	}
	n, err := strconv.ParseInt(t.Value, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sparql: partial count %q: %w", t.Value, err)
	}
	return n, nil
}

func termFloat(t rdf.Term) (float64, error) {
	if !Bound(t) {
		// An unbound SUM cannot happen (SUM over nothing is 0), but an
		// endpoint is free to omit it; treat as the additive identity.
		return 0, nil
	}
	f, ok := t.Numeric()
	if !ok {
		return 0, fmt.Errorf("sparql: partial sum %q is not numeric", t.Value)
	}
	return f, nil
}

// distBinding resolves GROUP BY key variables against a merged group.
type distBinding struct {
	keyVars []string
	key     []rdf.Term
	aggVals []Value
	aggIdx  map[string]int
}

func (b distBinding) value(name string) Value {
	for i, v := range b.keyVars {
		if v == name && i < len(b.key) && Bound(b.key[i]) {
			return boundValue(b.key[i])
		}
	}
	return Value{}
}

// substituteAggValues replaces AggExpr nodes with the merged group's
// finalized constants, mirroring substituteAggregates for the
// coordinator-side binding.
func substituteAggValues(e Expr, aggIdx map[string]int, vals []Value) Expr {
	switch x := e.(type) {
	case AggExpr:
		idx, ok := aggIdx[x.String()]
		if !ok || !vals[idx].Bound {
			return VarExpr{Name: internalVarPrefix + "_unboundagg"}
		}
		return ConstExpr{Term: vals[idx].Term}
	case BinaryExpr:
		return BinaryExpr{Op: x.Op, L: substituteAggValues(x.L, aggIdx, vals), R: substituteAggValues(x.R, aggIdx, vals)}
	case UnaryExpr:
		return UnaryExpr{Op: x.Op, E: substituteAggValues(x.E, aggIdx, vals)}
	case InExpr:
		list := make([]Expr, len(x.List))
		for i, y := range x.List {
			list[i] = substituteAggValues(y, aggIdx, vals)
		}
		return InExpr{E: substituteAggValues(x.E, aggIdx, vals), List: list, Not: x.Not}
	case FuncExpr:
		args := make([]Expr, len(x.Args))
		for i, y := range x.Args {
			args[i] = substituteAggValues(y, aggIdx, vals)
		}
		return FuncExpr{Name: x.Name, Args: args}
	}
	return e
}

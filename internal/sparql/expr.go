package sparql

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
)

// Expr is a SPARQL expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

// ConstExpr is a constant RDF term.
type ConstExpr struct{ Term rdf.Term }

// BinaryExpr applies a binary operator. Op is one of
// "||", "&&", "=", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/".
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies "!" or "-".
type UnaryExpr struct {
	Op string
	E  Expr
}

// InExpr tests membership: E [NOT] IN (list...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// FuncExpr is a builtin function call (STR, LCASE, CONTAINS, REGEX, ...).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

// ExistsExpr is FILTER [NOT] EXISTS { patterns }: it holds when the
// inner group has at least one solution under the current bindings.
type ExistsExpr struct {
	Patterns []TriplePattern
	Filters  []Expr
	Not      bool
}

// AggExpr is an aggregate function application.
type AggExpr struct {
	Fn       string // COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT
	Distinct bool
	// Arg is nil for COUNT(*).
	Arg Expr
	// Sep is the GROUP_CONCAT separator (default " ").
	Sep string
}

func (VarExpr) expr()    {}
func (ExistsExpr) expr() {}
func (ConstExpr) expr()  {}
func (BinaryExpr) expr() {}
func (UnaryExpr) expr()  {}
func (InExpr) expr()     {}
func (FuncExpr) expr()   {}
func (AggExpr) expr()    {}

func (e VarExpr) String() string   { return "?" + e.Name }
func (e ConstExpr) String() string { return e.Term.String() }

func (e BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e UnaryExpr) String() string { return e.Op + e.E.String() }

func (e InExpr) String() string {
	var parts []string
	for _, x := range e.List {
		parts = append(parts, x.String())
	}
	not := ""
	if e.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", e.E, not, strings.Join(parts, ", "))
}

func (e FuncExpr) String() string {
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.String())
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

func (e ExistsExpr) String() string {
	var b strings.Builder
	if e.Not {
		b.WriteString("NOT ")
	}
	b.WriteString("EXISTS {")
	for _, tp := range e.Patterns {
		b.WriteByte(' ')
		b.WriteString(tp.String())
	}
	for _, f := range e.Filters {
		fmt.Fprintf(&b, " FILTER (%s)", f)
	}
	b.WriteString(" }")
	return b.String()
}

func (e AggExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Fn)
	b.WriteByte('(')
	if e.Distinct {
		b.WriteString("DISTINCT ")
	}
	if e.Arg == nil {
		b.WriteByte('*')
	} else {
		b.WriteString(e.Arg.String())
	}
	if e.Fn == "GROUP_CONCAT" && e.Sep != "" {
		fmt.Fprintf(&b, "; SEPARATOR=%q", e.Sep)
	}
	b.WriteByte(')')
	return b.String()
}

// containsAggregate reports whether any AggExpr occurs in e.
func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case AggExpr:
		return true
	case BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case UnaryExpr:
		return containsAggregate(x.E)
	case InExpr:
		if containsAggregate(x.E) {
			return true
		}
		for _, y := range x.List {
			if containsAggregate(y) {
				return true
			}
		}
	case FuncExpr:
		for _, y := range x.Args {
			if containsAggregate(y) {
				return true
			}
		}
	case ExistsExpr:
		for _, y := range x.Filters {
			if containsAggregate(y) {
				return true
			}
		}
	}
	return false
}

// exprVars appends the names of all variables referenced by e
// (excluding those inside aggregates, which are evaluated per group
// member) to dst and returns it.
func exprVars(e Expr, dst []string) []string {
	switch x := e.(type) {
	case VarExpr:
		dst = append(dst, x.Name)
	case BinaryExpr:
		dst = exprVars(x.L, dst)
		dst = exprVars(x.R, dst)
	case UnaryExpr:
		dst = exprVars(x.E, dst)
	case InExpr:
		dst = exprVars(x.E, dst)
		for _, y := range x.List {
			dst = exprVars(y, dst)
		}
	case FuncExpr:
		for _, y := range x.Args {
			dst = exprVars(y, dst)
		}
	case AggExpr:
		if x.Arg != nil {
			dst = exprVars(x.Arg, dst)
		}
	case ExistsExpr:
		// Report every inner variable. Purely-existential inner
		// variables are never bound by the outer query, so scheduling
		// defers the filter to the end of the join — after all shared
		// variables are bound, which keeps the correlation correct.
		for _, tp := range x.Patterns {
			for _, n := range []Node{tp.S, tp.P, tp.O} {
				if n.IsVar {
					dst = append(dst, n.Var)
				}
			}
		}
		for _, f := range x.Filters {
			dst = exprVars(f, dst)
		}
	}
	return dst
}

package sparql

import (
	"strings"
	"sync"

	"re2xolap/internal/par"
	"re2xolap/internal/rdf"
)

// Sharded partial aggregation (Path A of the parallel GROUP BY plan):
// input rows are split into contiguous shards, each shard folds its
// rows into per-group partial states, and the shard tables merge in
// shard order. Only aggregates whose partial states merge exactly take
// this path — any DISTINCT aggregate needs a global dedup set and
// falls back to sharded grouping with per-group sequential evaluation.
//
// Merge exactness: COUNT partials add; SUM/AVG carry (sum, count)
// pairs that add; MIN/MAX compare with the same orderLess rule the
// sequential fold uses, keeping the earlier shard's value on ties;
// SAMPLE keeps the first bound value in shard order; GROUP_CONCAT
// concatenates part lists in shard order. Because shards are
// contiguous row ranges merged in order, every one of these reproduces
// the sequential left-to-right fold. The one caveat is floating-point
// SUM/AVG: addition is reassociated across shards, which can differ
// from the sequential sum in the last bits for non-integer data (the
// paper's measures are integers, where addition is exact).

// mergeableAggs reports whether every aggregate can be computed by
// merging per-shard partial states.
func mergeableAggs(aggs []AggExpr) bool {
	for _, a := range aggs {
		if a.Distinct {
			return false
		}
		switch a.Fn {
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		default:
			return false
		}
	}
	return true
}

// aggPartial is the partial state of one aggregate over one group
// within one shard. Only the fields for the aggregate's function are
// used.
type aggPartial struct {
	n      int     // COUNT
	sum    float64 // SUM / AVG
	cnt    int     // AVG (and SUM's valid-value count)
	best   Value   // MIN / MAX
	sample Value   // SAMPLE: first bound value
	parts  []string
}

// partialGroup is one group's representative row plus one partial
// state per aggregate.
type partialGroup struct {
	rep   row
	parts []aggPartial
}

// updatePartial folds one row into a partial state, mirroring one
// iteration of computeAggregate's per-row loop.
func (ex *executor) updatePartial(p *aggPartial, a AggExpr, r row) {
	switch a.Fn {
	case "COUNT":
		if a.Arg == nil {
			p.n++
			return
		}
		v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
		if err != nil || !v.Bound {
			return
		}
		p.n++
	case "SUM", "AVG":
		v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
		if err != nil || !v.Bound {
			return
		}
		n, err := v.numeric()
		if err != nil {
			return
		}
		p.sum += n
		p.cnt++
	case "MIN", "MAX":
		v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
		if err != nil || !v.Bound {
			return
		}
		if !p.best.Bound {
			p.best = v
			return
		}
		if a.Fn == "MIN" && orderLess(v, p.best) || a.Fn == "MAX" && orderLess(p.best, v) {
			p.best = v
		}
	case "SAMPLE":
		if p.sample.Bound {
			return
		}
		v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
		if err == nil && v.Bound {
			p.sample = v
		}
	case "GROUP_CONCAT":
		v, err := evalExpr(a.Arg, rowBinding{ex: ex, r: r})
		if err != nil || !v.Bound {
			return
		}
		p.parts = append(p.parts, v.Term.Value)
	}
}

// mergePartial folds src (the later shard) into dst (the earlier
// shard); ties and first-value rules keep the earlier shard's state,
// matching the sequential fold.
func mergePartial(dst, src *aggPartial, a AggExpr) {
	switch a.Fn {
	case "COUNT":
		dst.n += src.n
	case "SUM", "AVG":
		dst.sum += src.sum
		dst.cnt += src.cnt
	case "MIN", "MAX":
		if !src.best.Bound {
			return
		}
		if !dst.best.Bound {
			dst.best = src.best
			return
		}
		if a.Fn == "MIN" && orderLess(src.best, dst.best) || a.Fn == "MAX" && orderLess(dst.best, src.best) {
			dst.best = src.best
		}
	case "SAMPLE":
		if !dst.sample.Bound {
			dst.sample = src.sample
		}
	case "GROUP_CONCAT":
		dst.parts = append(dst.parts, src.parts...)
	}
}

// finalizePartial turns a merged partial state into the aggregate's
// value, matching computeAggregate's result for every case including
// empty groups (COUNT → 0, SUM → 0, AVG/MIN/MAX/SAMPLE → unbound,
// GROUP_CONCAT → bound empty string).
func finalizePartial(p *aggPartial, a AggExpr) Value {
	switch a.Fn {
	case "COUNT":
		return numValue(float64(p.n))
	case "SUM":
		return numValue(p.sum)
	case "AVG":
		if p.cnt == 0 {
			return Value{}
		}
		return numValue(p.sum / float64(p.cnt))
	case "MIN", "MAX":
		return p.best
	case "SAMPLE":
		return p.sample
	case "GROUP_CONCAT":
		sep := a.Sep
		if sep == "" {
			sep = " "
		}
		return boundValue(rdf.NewString(strings.Join(p.parts, sep)))
	}
	return Value{}
}

// aggregateSharded runs sharded partial aggregation over rows. Shard
// count comes from ExecOptions.AggShards (default: worker count).
func (ex *executor) aggregateSharded(rows []row, keySlots []int, aggs []AggExpr) ([]aggGroup, error) {
	type shard struct {
		order  []string
		groups map[string]*partialGroup
	}
	chunks := par.Chunks(len(rows), ex.eng.Exec.shards())
	shards := make([]shard, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for i, c := range chunks {
		go func(i, lo, hi int) {
			defer wg.Done()
			w := ex.clone()
			sh := shard{groups: map[string]*partialGroup{}}
			for _, r := range rows[lo:hi] {
				if w.cancelled() {
					break
				}
				k := groupKey(r, keySlots)
				pg, ok := sh.groups[k]
				if !ok {
					pg = &partialGroup{rep: r, parts: make([]aggPartial, len(aggs))}
					sh.groups[k] = pg
					sh.order = append(sh.order, k)
				}
				for ai := range aggs {
					w.updatePartial(&pg.parts[ai], aggs[ai], r)
				}
			}
			shards[i] = sh
		}(i, c[0], c[1])
	}
	wg.Wait()
	if err := ex.ctxErr(); err != nil {
		return nil, err
	}
	merged := map[string]*partialGroup{}
	var order []string
	for _, sh := range shards {
		for _, k := range sh.order {
			src := sh.groups[k]
			dst, ok := merged[k]
			if !ok {
				merged[k] = src
				order = append(order, k)
				continue
			}
			for ai := range aggs {
				mergePartial(&dst.parts[ai], &src.parts[ai], aggs[ai])
			}
		}
	}
	out := make([]aggGroup, len(order))
	for i, k := range order {
		pg := merged[k]
		vals := make([]Value, len(aggs))
		for ai := range aggs {
			vals[ai] = finalizePartial(&pg.parts[ai], aggs[ai])
		}
		out[i] = aggGroup{rep: pg.rep, vals: vals}
	}
	return out, nil
}

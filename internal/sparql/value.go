package sparql

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"re2xolap/internal/rdf"
)

// Value is the runtime value of an expression: an RDF term or unbound.
type Value struct {
	Term  rdf.Term
	Bound bool
}

// errExprError marks an expression evaluation error; per SPARQL
// semantics a FILTER whose constraint errors removes the row.
var errExprError = errors.New("sparql: expression error")

func boundValue(t rdf.Term) Value { return Value{Term: t, Bound: true} }

func numValue(f float64) Value {
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return boundValue(rdf.NewInteger(int64(f)))
	}
	return boundValue(rdf.NewDouble(f))
}

func boolValue(b bool) Value { return boundValue(rdf.NewBoolean(b)) }

// ebv computes the SPARQL effective boolean value.
func (v Value) ebv() (bool, error) {
	if !v.Bound {
		return false, errExprError
	}
	t := v.Term
	if t.Kind != rdf.TermLiteral {
		return false, errExprError
	}
	if t.Datatype == rdf.XSDBoolean {
		return t.Value == "true" || t.Value == "1", nil
	}
	if n, ok := t.Numeric(); ok {
		return n != 0, nil
	}
	if t.Datatype == "" || t.Datatype == rdf.XSDString {
		return t.Value != "", nil
	}
	return false, errExprError
}

func (v Value) numeric() (float64, error) {
	if !v.Bound {
		return 0, errExprError
	}
	if n, ok := v.Term.Numeric(); ok {
		return n, nil
	}
	return 0, errExprError
}

func (v Value) str() (string, error) {
	if !v.Bound {
		return "", errExprError
	}
	return v.Term.Value, nil
}

// equalValues implements SPARQL '=' with numeric coercion.
func equalValues(a, b Value) (bool, error) {
	if !a.Bound || !b.Bound {
		return false, errExprError
	}
	if an, aok := a.Term.Numeric(); aok {
		if bn, bok := b.Term.Numeric(); bok {
			return an == bn, nil
		}
	}
	return a.Term == b.Term, nil
}

// compareValues returns -1, 0, or 1. Numeric comparison applies when
// both sides are numeric; otherwise string-valued literals and IRIs
// compare lexically.
func compareValues(a, b Value) (int, error) {
	if !a.Bound || !b.Bound {
		return 0, errExprError
	}
	if an, aok := a.Term.Numeric(); aok {
		if bn, bok := b.Term.Numeric(); bok {
			switch {
			case an < bn:
				return -1, nil
			case an > bn:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return strings.Compare(a.Term.Value, b.Term.Value), nil
}

// orderLess is a total order used by ORDER BY and MIN/MAX over mixed
// terms: unbound < blanks < IRIs < literals; numerics by value;
// otherwise lexical.
func orderLess(a, b Value) bool {
	rank := func(v Value) int {
		if !v.Bound {
			return 0
		}
		switch v.Term.Kind {
		case rdf.TermBlank:
			return 1
		case rdf.TermIRI:
			return 2
		default:
			return 3
		}
	}
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra < rb
	}
	if ra == 3 {
		an, aok := a.Term.Numeric()
		bn, bok := b.Term.Numeric()
		if aok && bok {
			return an < bn
		}
		if aok != bok {
			return aok // numerics sort before strings
		}
	}
	return a.Term.Value < b.Term.Value
}

// binding provides variable values during expression evaluation.
type binding interface {
	value(name string) Value
}

// existsEvaluator is implemented by bindings that can evaluate
// EXISTS sub-patterns (row bindings during query execution).
type existsEvaluator interface {
	exists(e ExistsExpr) bool
}

// evalExpr evaluates e under b. Aggregates must have been substituted
// before calling (see exec.go); hitting one here is an internal error.
func evalExpr(e Expr, b binding) (Value, error) {
	switch x := e.(type) {
	case VarExpr:
		return b.value(x.Name), nil
	case ConstExpr:
		return boundValue(x.Term), nil
	case UnaryExpr:
		v, err := evalExpr(x.E, b)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "!":
			t, err := v.ebv()
			if err != nil {
				return Value{}, err
			}
			return boolValue(!t), nil
		case "-":
			n, err := v.numeric()
			if err != nil {
				return Value{}, err
			}
			return numValue(-n), nil
		}
		return Value{}, fmt.Errorf("%w: unknown unary %q", errExprError, x.Op)
	case BinaryExpr:
		return evalBinary(x, b)
	case InExpr:
		v, err := evalExpr(x.E, b)
		if err != nil {
			return Value{}, err
		}
		found := false
		for _, item := range x.List {
			iv, err := evalExpr(item, b)
			if err != nil {
				continue
			}
			if eq, err := equalValues(v, iv); err == nil && eq {
				found = true
				break
			}
		}
		return boolValue(found != x.Not), nil
	case FuncExpr:
		return evalFunc(x, b)
	case ExistsExpr:
		ev, ok := b.(existsEvaluator)
		if !ok {
			return Value{}, fmt.Errorf("%w: EXISTS outside pattern context", errExprError)
		}
		return boolValue(ev.exists(x) != x.Not), nil
	case AggExpr:
		return Value{}, fmt.Errorf("%w: aggregate outside grouping context", errExprError)
	}
	return Value{}, fmt.Errorf("%w: unknown expression %T", errExprError, e)
}

func evalBinary(x BinaryExpr, b binding) (Value, error) {
	switch x.Op {
	case "||":
		l, lerr := evalBool(x.L, b)
		r, rerr := evalBool(x.R, b)
		// SPARQL: true || error = true
		if lerr == nil && l || rerr == nil && r {
			return boolValue(true), nil
		}
		if lerr != nil || rerr != nil {
			return Value{}, errExprError
		}
		return boolValue(false), nil
	case "&&":
		l, lerr := evalBool(x.L, b)
		r, rerr := evalBool(x.R, b)
		if lerr == nil && !l || rerr == nil && !r {
			return boolValue(false), nil
		}
		if lerr != nil || rerr != nil {
			return Value{}, errExprError
		}
		return boolValue(true), nil
	}
	l, err := evalExpr(x.L, b)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(x.R, b)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=":
		eq, err := equalValues(l, r)
		if err != nil {
			return Value{}, err
		}
		return boolValue(eq), nil
	case "!=":
		eq, err := equalValues(l, r)
		if err != nil {
			return Value{}, err
		}
		return boolValue(!eq), nil
	case "<", ">", "<=", ">=":
		c, err := compareValues(l, r)
		if err != nil {
			return Value{}, err
		}
		var res bool
		switch x.Op {
		case "<":
			res = c < 0
		case ">":
			res = c > 0
		case "<=":
			res = c <= 0
		default:
			res = c >= 0
		}
		return boolValue(res), nil
	case "+", "-", "*", "/":
		ln, err := l.numeric()
		if err != nil {
			return Value{}, err
		}
		rn, err := r.numeric()
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "+":
			return numValue(ln + rn), nil
		case "-":
			return numValue(ln - rn), nil
		case "*":
			return numValue(ln * rn), nil
		default:
			if rn == 0 {
				return Value{}, fmt.Errorf("%w: division by zero", errExprError)
			}
			return numValue(ln / rn), nil
		}
	}
	return Value{}, fmt.Errorf("%w: unknown operator %q", errExprError, x.Op)
}

func evalBool(e Expr, b binding) (bool, error) {
	v, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	return v.ebv()
}

func evalFunc(x FuncExpr, b binding) (Value, error) {
	// BOUND and COALESCE/IF need special unbound handling.
	switch x.Name {
	case "BOUND":
		v, ok := x.Args[0].(VarExpr)
		if !ok {
			return Value{}, fmt.Errorf("%w: BOUND requires a variable", errExprError)
		}
		return boolValue(b.value(v.Name).Bound), nil
	case "COALESCE":
		for _, a := range x.Args {
			v, err := evalExpr(a, b)
			if err == nil && v.Bound {
				return v, nil
			}
		}
		return Value{}, errExprError
	case "IF":
		c, err := evalBool(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		if c {
			return evalExpr(x.Args[1], b)
		}
		return evalExpr(x.Args[2], b)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(a, b)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "STR":
		if !args[0].Bound {
			return Value{}, errExprError
		}
		return boundValue(rdf.NewString(args[0].Term.Value)), nil
	case "LCASE":
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		return boundValue(rdf.NewString(strings.ToLower(s))), nil
	case "UCASE":
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		return boundValue(rdf.NewString(strings.ToUpper(s))), nil
	case "STRLEN":
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		return numValue(float64(len([]rune(s)))), nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		sub, err := args[1].str()
		if err != nil {
			return Value{}, err
		}
		var res bool
		switch x.Name {
		case "CONTAINS":
			res = strings.Contains(s, sub)
		case "STRSTARTS":
			res = strings.HasPrefix(s, sub)
		default:
			res = strings.HasSuffix(s, sub)
		}
		return boolValue(res), nil
	case "REGEX":
		if len(args) < 2 || len(args) > 3 {
			return Value{}, fmt.Errorf("%w: REGEX arity", errExprError)
		}
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		pat, err := args[1].str()
		if err != nil {
			return Value{}, err
		}
		if len(args) == 3 {
			flags, _ := args[2].str()
			if strings.Contains(flags, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad regex: %v", errExprError, err)
		}
		return boolValue(re.MatchString(s)), nil
	case "ABS", "ROUND", "FLOOR", "CEIL":
		n, err := args[0].numeric()
		if err != nil {
			return Value{}, err
		}
		switch x.Name {
		case "ABS":
			if n < 0 {
				n = -n
			}
		case "ROUND":
			if n >= 0 {
				n = float64(int64(n + 0.5))
			} else {
				n = float64(int64(n - 0.5))
			}
		case "FLOOR":
			f := float64(int64(n))
			if n < 0 && f != n {
				f--
			}
			n = f
		default: // CEIL
			f := float64(int64(n))
			if n > 0 && f != n {
				f++
			}
			n = f
		}
		return numValue(n), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			s, err := a.str()
			if err != nil {
				return Value{}, err
			}
			b.WriteString(s)
		}
		return boundValue(rdf.NewString(b.String())), nil
	case "STRBEFORE", "STRAFTER":
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		sub, err := args[1].str()
		if err != nil {
			return Value{}, err
		}
		i := strings.Index(s, sub)
		if i < 0 {
			return boundValue(rdf.NewString("")), nil
		}
		if x.Name == "STRBEFORE" {
			return boundValue(rdf.NewString(s[:i])), nil
		}
		return boundValue(rdf.NewString(s[i+len(sub):])), nil
	case "REPLACE":
		if len(args) != 3 {
			return Value{}, fmt.Errorf("%w: REPLACE arity", errExprError)
		}
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		pat, err := args[1].str()
		if err != nil {
			return Value{}, err
		}
		repl, err := args[2].str()
		if err != nil {
			return Value{}, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad regex: %v", errExprError, err)
		}
		return boundValue(rdf.NewString(re.ReplaceAllString(s, repl))), nil
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return Value{}, fmt.Errorf("%w: SUBSTR arity", errExprError)
		}
		s, err := args[0].str()
		if err != nil {
			return Value{}, err
		}
		startF, err := args[1].numeric()
		if err != nil {
			return Value{}, err
		}
		runes := []rune(s)
		// SPARQL SUBSTR is 1-based.
		start := int(startF) - 1
		if start < 0 {
			start = 0
		}
		if start > len(runes) {
			start = len(runes)
		}
		end := len(runes)
		if len(args) == 3 {
			lengthF, err := args[2].numeric()
			if err != nil {
				return Value{}, err
			}
			if e := start + int(lengthF); e < end {
				end = e
			}
			if end < start {
				end = start
			}
		}
		return boundValue(rdf.NewString(string(runes[start:end]))), nil
	case "ISIRI", "ISURI":
		if !args[0].Bound {
			return Value{}, errExprError
		}
		return boolValue(args[0].Term.IsIRI()), nil
	case "ISLITERAL":
		if !args[0].Bound {
			return Value{}, errExprError
		}
		return boolValue(args[0].Term.IsLiteral()), nil
	case "ISBLANK":
		if !args[0].Bound {
			return Value{}, errExprError
		}
		return boolValue(args[0].Term.IsBlank()), nil
	case "ISNUMERIC":
		if !args[0].Bound {
			return Value{}, errExprError
		}
		return boolValue(args[0].Term.IsNumeric()), nil
	case "LANG":
		if !args[0].Bound || !args[0].Term.IsLiteral() {
			return Value{}, errExprError
		}
		return boundValue(rdf.NewString(args[0].Term.Lang)), nil
	case "DATATYPE":
		if !args[0].Bound || !args[0].Term.IsLiteral() {
			return Value{}, errExprError
		}
		dt := args[0].Term.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return boundValue(rdf.NewIRI(dt)), nil
	}
	return Value{}, fmt.Errorf("%w: unknown function %s", errExprError, x.Name)
}

// Package sparql implements a lexer, parser, and executor for the
// SPARQL fragment that RE2xOLAP generates and the bootstrap crawler
// needs: basic graph patterns with sequence/inverse property paths,
// FILTER expressions, VALUES, OPTIONAL, GROUP BY with the standard
// aggregates, HAVING, ORDER BY, DISTINCT, LIMIT/OFFSET, and ASK.
//
// Queries execute directly against internal/store with greedy,
// selectivity-based join ordering; keyword filters of the form
// CONTAINS(LCASE(STR(?x)), "kw") are rewritten into full-text index
// scans.
package sparql

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
)

// Node is a subject, predicate, or object position in a triple pattern:
// either a concrete RDF term or a variable.
type Node struct {
	// Var holds the variable name (without '?') when IsVar is true;
	// otherwise Term holds a concrete RDF term.
	Var   string
	Term  rdf.Term
	IsVar bool
}

// NewVarNode returns a variable node.
func NewVarNode(name string) Node { return Node{Var: name, IsVar: true} }

// NewTermNode returns a concrete-term node.
func NewTermNode(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in SPARQL syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is a single BGP pattern. Sequence property paths are
// expanded by the parser into chains of TriplePatterns over fresh
// internal variables, so P here is always a single IRI or variable.
type TriplePattern struct {
	S, P, O Node
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// PatternElement is one element of a group graph pattern.
type PatternElement interface{ patternElement() }

// FilterElement wraps a FILTER constraint.
type FilterElement struct{ Expr Expr }

// ValuesElement is an inline VALUES data block. Each row assigns one
// term per variable; a nil term is the SPARQL UNDEF placeholder.
type ValuesElement struct {
	Vars []string
	Rows [][]*rdf.Term
}

// OptionalElement is an OPTIONAL { ... } block containing triple
// patterns and filters (no nesting).
type OptionalElement struct {
	Patterns []TriplePattern
	Filters  []Expr
}

// UnionElement is { branch } UNION { branch } ...; each branch is a
// flat group of triple patterns and filters.
type UnionElement struct {
	Branches [][]PatternElement
}

// BindElement is BIND (expr AS ?var): it computes a value per solution
// and binds it to a fresh variable.
type BindElement struct {
	Expr Expr
	Var  string
}

// SubSelectElement is a nested { SELECT ... } group: the inner query
// runs first and its solutions join with the outer pattern.
type SubSelectElement struct {
	Query *Query
}

// ClosurePattern is a transitive property-path pattern: S <p>+ O (one
// or more steps) or S <p>* O (zero or more steps).
type ClosurePattern struct {
	S, O Node
	// Pred is the closed-over predicate IRI.
	Pred rdf.Term
	// MinZero is true for '*' (zero steps allowed).
	MinZero bool
}

// String renders the closure pattern in SPARQL syntax.
func (cp ClosurePattern) String() string {
	mod := "+"
	if cp.MinZero {
		mod = "*"
	}
	return fmt.Sprintf("%s %s%s %s .", cp.S, cp.Pred, mod, cp.O)
}

func (TriplePattern) patternElement()    {}
func (ClosurePattern) patternElement()   {}
func (SubSelectElement) patternElement() {}
func (BindElement) patternElement()      {}
func (FilterElement) patternElement()    {}
func (ValuesElement) patternElement()    {}
func (OptionalElement) patternElement()  {}
func (UnionElement) patternElement()     {}

// SelectItem is one projection entry: a plain variable, or an
// expression with an alias (expr AS ?name).
type SelectItem struct {
	Var  string // result column name
	Expr Expr   // nil for a plain variable projection
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SPARQL query.
type Query struct {
	// Ask is true for ASK queries; Select items are then empty.
	Ask bool
	// Construct holds the template of a CONSTRUCT query; nil otherwise.
	Construct []TriplePattern

	Distinct bool
	// Star is true for SELECT *.
	Star   bool
	Select []SelectItem

	Where []PatternElement

	GroupBy []string
	Having  []Expr
	OrderBy []OrderKey

	// Limit < 0 means no limit; Offset 0 means none.
	Limit  int
	Offset int

	// Prefixes records the prologue for serialization.
	Prefixes map[string]string
}

// IsAggregate reports whether the query needs grouping: it has a GROUP
// BY clause or any aggregate in projection or HAVING.
func (q *Query) IsAggregate() bool {
	if len(q.GroupBy) > 0 || len(q.Having) > 0 {
		return true
	}
	for _, s := range q.Select {
		if s.Expr != nil && containsAggregate(s.Expr) {
			return true
		}
	}
	return false
}

// internalVarPrefix marks variables generated during property-path
// expansion; they are excluded from SELECT * projection.
const internalVarPrefix = "_path"

// String serializes the query back to SPARQL text.
func (q *Query) String() string {
	var b strings.Builder
	if q.Construct != nil {
		b.WriteString("CONSTRUCT {\n")
		for _, tp := range q.Construct {
			b.WriteString("  " + tp.String() + "\n")
		}
		b.WriteString("}")
	} else if q.Ask {
		b.WriteString("ASK")
	} else {
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if q.Star {
			b.WriteString("*")
		} else {
			for i, s := range q.Select {
				if i > 0 {
					b.WriteByte(' ')
				}
				if s.Expr == nil {
					b.WriteString("?" + s.Var)
				} else {
					fmt.Fprintf(&b, "(%s AS ?%s)", s.Expr, s.Var)
				}
			}
		}
	}
	b.WriteString(" WHERE {\n")
	writePatternElements(&b, q.Where, "  ")
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" ?" + v)
		}
	}
	for i, h := range q.Having {
		if i == 0 {
			b.WriteString(" HAVING")
		}
		fmt.Fprintf(&b, " (%s)", h)
	}
	for i, o := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY")
		}
		if o.Desc {
			fmt.Fprintf(&b, " DESC(%s)", o.Expr)
		} else {
			fmt.Fprintf(&b, " ASC(%s)", o.Expr)
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

func writePatternElements(b *strings.Builder, elems []PatternElement, indent string) {
	for _, e := range elems {
		switch el := e.(type) {
		case TriplePattern:
			b.WriteString(indent)
			b.WriteString(el.String())
			b.WriteByte('\n')
		case ClosurePattern:
			b.WriteString(indent)
			b.WriteString(el.String())
			b.WriteByte('\n')
		case FilterElement:
			fmt.Fprintf(b, "%sFILTER (%s)\n", indent, el.Expr)
		case ValuesElement:
			b.WriteString(indent)
			b.WriteString("VALUES (")
			for i, v := range el.Vars {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString("?" + v)
			}
			b.WriteString(") {")
			for _, row := range el.Rows {
				b.WriteString(" (")
				for i, t := range row {
					if i > 0 {
						b.WriteByte(' ')
					}
					if t == nil {
						b.WriteString("UNDEF")
					} else {
						b.WriteString(t.String())
					}
				}
				b.WriteString(")")
			}
			b.WriteString(" }\n")
		case UnionElement:
			for i, br := range el.Branches {
				if i > 0 {
					b.WriteString(indent)
					b.WriteString("UNION\n")
				}
				b.WriteString(indent)
				b.WriteString("{\n")
				writePatternElements(b, br, indent+"  ")
				b.WriteString(indent + "}\n")
			}
		case BindElement:
			fmt.Fprintf(b, "%sBIND (%s AS ?%s)\n", indent, el.Expr, el.Var)
		case SubSelectElement:
			b.WriteString(indent)
			b.WriteString("{ ")
			b.WriteString(el.Query.String())
			b.WriteString(" }\n")
		case OptionalElement:
			b.WriteString(indent)
			b.WriteString("OPTIONAL {\n")
			for _, tp := range el.Patterns {
				b.WriteString(indent + "  ")
				b.WriteString(tp.String())
				b.WriteByte('\n')
			}
			for _, f := range el.Filters {
				fmt.Fprintf(b, "%s  FILTER (%s)\n", indent, f)
			}
			b.WriteString(indent + "}\n")
		}
	}
}

package sparql

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/datagen"
	"re2xolap/internal/rdf"
)

// parQueries builds the mixed query workload for a datagen spec: BGP
// joins, short-circuit LIMIT scans, mergeable and DISTINCT aggregates,
// UNION, OPTIONAL, FILTER, and ASK — every shape the parallel executor
// forks on.
func parQueries(spec datagen.Spec) []string {
	ns := spec.NS
	obs := spec.ObservationClass()
	dim := ns + spec.Dimensions[0].Pred
	dim2 := ns + spec.Dimensions[1].Pred
	meas := ns + spec.Measures[0].Pred
	qs := []string{
		// multi-pattern join, deterministic order
		fmt.Sprintf(`SELECT ?o ?m ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?v . } ORDER BY ?o ?m ?v LIMIT 200`, obs, dim, meas),
		// plain LIMIT: exercises the parallel DFS frontier
		fmt.Sprintf(`SELECT ?o ?m WHERE { ?o a <%s> . ?o <%s> ?m . } LIMIT 137`, obs, dim),
		// mergeable aggregate battery (sharded partial aggregation)
		fmt.Sprintf(`SELECT ?m (COUNT(?o) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY DESC(?n) ?m`, dim, meas),
		// DISTINCT aggregate (per-group sequential fallback)
		fmt.Sprintf(`SELECT ?m (COUNT(DISTINCT ?g) AS ?n) WHERE { ?o <%s> ?m . ?o <%s> ?g . } GROUP BY ?m ORDER BY ?m`, dim, dim2),
		// HAVING over a mergeable aggregate
		fmt.Sprintf(`SELECT ?m (COUNT(?o) AS ?n) WHERE { ?o <%s> ?m . } GROUP BY ?m HAVING (COUNT(?o) > 3) ORDER BY ?m`, dim),
		// UNION branches run concurrently
		fmt.Sprintf(`SELECT DISTINCT ?x WHERE { { ?o <%s> ?x . } UNION { ?o <%s> ?x . } } ORDER BY ?x LIMIT 80`, dim, dim2),
		// OPTIONAL + FILTER
		fmt.Sprintf(`SELECT ?o ?v WHERE { ?o a <%s> . ?o <%s> ?v . FILTER(?v > 10) OPTIONAL { ?o <%s> ?m . } } ORDER BY ?v ?o LIMIT 60`, obs, meas, dim),
		// aggregate without GROUP BY
		fmt.Sprintf(`SELECT (COUNT(?o) AS ?n) (SUM(?v) AS ?total) WHERE { ?o <%s> ?v . }`, meas),
		// ASK stays sequential (budget 1) under any worker count
		fmt.Sprintf(`ASK { ?o a <%s> . ?o <%s> ?m . }`, obs, dim),
	}
	return qs
}

// TestParallelMatchesSequential asserts that the parallel executor
// produces byte-identical Results to the sequential one on randomized
// datagen graphs, across the query shapes the executor forks on —
// including ORDER BY and LIMIT, where merge order is load-bearing.
func TestParallelMatchesSequential(t *testing.T) {
	specs := []datagen.Spec{
		datagen.EurostatLike(1500),
		datagen.ProductionLike(1000),
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			st, err := spec.BuildStore()
			if err != nil {
				t.Fatal(err)
			}
			seq := NewEngine(st)
			seq.Exec.Workers = 1
			// Low threshold + more workers than cores so the parallel
			// code paths engage regardless of the host's CPU count.
			par := NewEngine(st)
			par.Exec = ExecOptions{Workers: 4, ParallelThreshold: 2, AggShards: 3}
			for qi, q := range parQueries(spec) {
				want, err := seq.QueryString(q)
				if err != nil {
					t.Fatalf("query %d sequential: %v\n%s", qi, err, q)
				}
				got, err := par.QueryString(q)
				if err != nil {
					t.Fatalf("query %d parallel: %v\n%s", qi, err, q)
				}
				if want.IsAsk != got.IsAsk || want.Boolean != got.Boolean {
					t.Fatalf("query %d: ASK mismatch: seq %v par %v", qi, want.Boolean, got.Boolean)
				}
				if ws, gs := want.String(), got.String(); ws != gs {
					t.Errorf("query %d: parallel result differs from sequential\nquery: %s\n--- sequential ---\n%s\n--- parallel ---\n%s", qi, q, ws, gs)
				}
			}
		})
	}
}

// TestParallelSubqueryAndClosure covers the remaining fork-adjacent
// shapes (subselect seeding, transitive closure) on the hand-built
// store.
func TestParallelSubqueryAndClosure(t *testing.T) {
	st := testStore(t)
	seq := NewEngine(st)
	seq.Exec.Workers = 1
	par := NewEngine(st)
	par.Exec = ExecOptions{Workers: 4, ParallelThreshold: 1}
	queries := []string{
		`SELECT ?c ?l WHERE { { SELECT ?c WHERE { ?x <http://ex.org/inContinent> ?c . } } ?c <http://ex.org/label> ?l . } ORDER BY ?l`,
		`SELECT ?s ?t WHERE { ?s <http://ex.org/inContinent>+ ?t . } ORDER BY ?s ?t`,
	}
	for qi, q := range queries {
		want, err := seq.QueryString(q)
		if err != nil {
			t.Fatalf("query %d sequential: %v", qi, err)
		}
		got, err := par.QueryString(q)
		if err != nil {
			t.Fatalf("query %d parallel: %v", qi, err)
		}
		if want.String() != got.String() {
			t.Errorf("query %d: mismatch\n--- sequential ---\n%s\n--- parallel ---\n%s", qi, want.String(), got.String())
		}
	}
}

// TestEngineConcurrentMixedQueries hammers one shared Engine from many
// goroutines with mixed SELECT/ASK/GROUP BY queries while a writer
// keeps inserting triples — the -race regression test for the
// snapshot-isolated read path and the per-query executor state.
func TestEngineConcurrentMixedQueries(t *testing.T) {
	spec := datagen.EurostatLike(600)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	eng.Exec = ExecOptions{Workers: 4, ParallelThreshold: 2}
	queries := parQueries(spec)

	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = st.Add(rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("%sextra/%d", spec.NS, i)),
				rdf.NewIRI(spec.NS+"note"),
				rdf.NewString(fmt.Sprintf("note %d", i))))
			if i%64 == 0 {
				st.Compact()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(queries); i++ {
				q := queries[(g+i)%len(queries)]
				if _, err := eng.QueryString(q); err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}

// TestExplainReportsParallelism checks the plan line for both modes.
func TestExplainReportsParallelism(t *testing.T) {
	st := testStore(t)
	eng := NewEngine(st)
	eng.Exec = ExecOptions{Workers: 4, ParallelThreshold: 10, AggShards: 8}
	plan, err := eng.ExplainString(`SELECT ?m (COUNT(?o) AS ?n) WHERE { ?o <http://ex.org/origin> ?m . } GROUP BY ?m`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4 workers", ">=10 rows", "8 aggregation shards"} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain plan missing %q:\n%s", want, plan)
		}
	}
	eng.Exec = ExecOptions{Workers: 1}
	plan, err = eng.ExplainString(`SELECT ?o WHERE { ?o <http://ex.org/origin> ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "parallel: off") {
		t.Errorf("explain plan missing sequential marker:\n%s", plan)
	}
}

package sparql

import (
	"fmt"
	"sort"
	"sync"

	"re2xolap/internal/rdf"
)

// Bound-join planning: decompose a cross-shard BGP into per-shard
// star subplans joined at the coordinator. Under subject-hash
// partitioning every triple of a subject lives on one shard, so a
// group of patterns sharing one subject node evaluates exactly on a
// scatter + union — each solution is computed wholly on the shard
// that owns its subject, and appears exactly once in the union. A
// query whose WHERE splits into two or more such groups joined on
// shared variables can therefore run as a sequence of scatters: fetch
// the statically most selective group first, then constrain each
// subsequent group's fetch with the distinct bindings accumulated so
// far, shipped as an inline VALUES block (the bound/semijoin
// technique of federated SPARQL engines). FILTERs whose variables a
// group covers are pushed into that group's fetch query; the rest
// evaluate at the coordinator after the join.

// BoundGroup is one subject star group of a bound-join plan: the
// patterns sharing a subject node, the filters pushed down into its
// fetch query, and the variables it binds in first-appearance order.
type BoundGroup struct {
	Patterns []TriplePattern
	Filters  []Expr
	Vars     []string
}

// PatternCardinalityHint scores a pattern's static selectivity from
// its constant positions — lower means fewer expected matches. The
// scale mirrors the triple-store access paths: a constant subject
// touches one subject's star, a constant predicate+object one
// relation cell, a constant object a reverse slice, a constant
// predicate a whole relation, and an all-variable pattern the store.
func PatternCardinalityHint(tp TriplePattern) int {
	sConst, pConst, oConst := !tp.S.IsVar, !tp.P.IsVar, !tp.O.IsVar
	switch {
	case sConst:
		return 2
	case pConst && oConst:
		return 8
	case oConst:
		return 12
	case pConst:
		return 32
	default:
		return 64
	}
}

// CardinalityHint scores the group: its most selective pattern,
// discounted for every extra pattern and pushed filter (each is a
// further constraint on the same star). Lower is more selective; the
// bound-join planner fetches lower-hint groups first so the bindings
// shipped to later groups come from the smaller side.
func (g *BoundGroup) CardinalityHint() int {
	h := 0
	for i, tp := range g.Patterns {
		w := PatternCardinalityHint(tp)
		if i == 0 || w < h {
			h = w
		}
	}
	h -= 2*(len(g.Patterns)-1) + len(g.Filters)
	if h < 1 {
		h = 1
	}
	return h
}

// BoundJoinPlan is a compiled bound-join execution: subject star
// groups in fetch order, the per-step join variables, and the
// residual filters left for the coordinator. The plan is a pure
// function of the query text and holds no execution state, so it is
// safe to cache and share across concurrent queries (NewExec builds
// the per-query state).
type BoundJoinPlan struct {
	orig     *Query
	groups   []BoundGroup
	joinVars [][]string // per step; step 0 is nil (unconstrained fetch)
	newVars  [][]string // vars each step appends to the accumulated layout
	residual []Expr
}

// Groups returns the star groups in execution order.
func (p *BoundJoinPlan) Groups() []BoundGroup { return p.groups }

// Steps returns the number of scatter rounds.
func (p *BoundJoinPlan) Steps() int { return len(p.groups) }

// JoinVars returns the variables step i joins on (nil for step 0).
func (p *BoundJoinPlan) JoinVars(i int) []string { return p.joinVars[i] }

// Residual returns the filters evaluated at the coordinator after
// the join (those spanning more than one group).
func (p *BoundJoinPlan) Residual() []Expr { return p.residual }

// containsExists reports whether any [NOT] EXISTS occurs in e.
func containsExists(e Expr) bool {
	found := false
	walkExprExists(e, func(ExistsExpr) { found = true })
	return found
}

// walkExprExists visits every EXISTS block nested in e.
func walkExprExists(e Expr, fn func(ExistsExpr)) {
	switch x := e.(type) {
	case ExistsExpr:
		fn(x)
	case BinaryExpr:
		walkExprExists(x.L, fn)
		walkExprExists(x.R, fn)
	case UnaryExpr:
		walkExprExists(x.E, fn)
	case InExpr:
		walkExprExists(x.E, fn)
		for _, y := range x.List {
			walkExprExists(y, fn)
		}
	case FuncExpr:
		for _, y := range x.Args {
			walkExprExists(y, fn)
		}
	case AggExpr:
		if x.Arg != nil {
			walkExprExists(x.Arg, fn)
		}
	}
}

// PlanBoundJoin compiles q into a bound-join plan, or reports that
// the query is outside the class. The class: a SELECT or ASK whose
// WHERE is triple patterns and FILTERs only (no OPTIONAL, UNION,
// VALUES, BIND, closures, subselects), no aggregation, no EXISTS
// anywhere, and whose patterns form two or more subject star groups
// connected by shared variables. Disconnected groups (a cartesian
// product) are rejected — constraining a fetch with bindings that
// share no variable is impossible, and the gather fallback is exact.
func PlanBoundJoin(q *Query) (*BoundJoinPlan, bool) {
	if q.Construct != nil || q.Star || q.IsAggregate() {
		return nil, false
	}
	var filters []Expr
	type rawGroup struct {
		key  string
		g    BoundGroup
		pos  int // first-appearance index, the deterministic tie-break
		hint int
	}
	var raws []*rawGroup
	byKey := map[string]*rawGroup{}
	subjectKey := func(n Node) string {
		if n.IsVar {
			return "v\x00" + n.Var
		}
		return "t\x00" + n.Term.String()
	}
	for _, e := range q.Where {
		switch el := e.(type) {
		case TriplePattern:
			k := subjectKey(el.S)
			r := byKey[k]
			if r == nil {
				r = &rawGroup{key: k, pos: len(raws)}
				byKey[k] = r
				raws = append(raws, r)
			}
			r.g.Patterns = append(r.g.Patterns, el)
		case FilterElement:
			if containsExists(el.Expr) || containsAggregate(el.Expr) {
				return nil, false
			}
			filters = append(filters, el.Expr)
		default:
			return nil, false
		}
	}
	if len(raws) < 2 {
		return nil, false
	}
	// EXISTS in projection or ORDER BY expressions needs row-time
	// pattern evaluation the coordinator cannot do.
	for _, it := range q.Select {
		if it.Expr != nil && containsExists(it.Expr) {
			return nil, false
		}
	}
	for _, o := range q.OrderBy {
		if containsExists(o.Expr) {
			return nil, false
		}
	}

	for _, r := range raws {
		seen := map[string]bool{}
		for _, tp := range r.g.Patterns {
			for _, n := range []Node{tp.S, tp.P, tp.O} {
				if n.IsVar && !seen[n.Var] {
					seen[n.Var] = true
					r.g.Vars = append(r.g.Vars, n.Var)
				}
			}
		}
	}

	// Push each filter into every group that binds all its variables;
	// filters no single group covers join at the coordinator. A filter
	// referencing a variable no pattern binds stays residual too, where
	// its unbound evaluation drops every row — same as the engine.
	p := &BoundJoinPlan{orig: q}
	for _, f := range filters {
		vars := exprVars(f, nil)
		pushed := false
		for _, r := range raws {
			covered := true
			for _, v := range vars {
				found := false
				for _, gv := range r.g.Vars {
					if gv == v {
						found = true
						break
					}
				}
				if !found {
					covered = false
					break
				}
			}
			if covered {
				r.g.Filters = append(r.g.Filters, f)
				pushed = true
			}
		}
		if !pushed {
			p.residual = append(p.residual, f)
		}
	}
	for _, r := range raws {
		r.hint = r.g.CardinalityHint()
	}

	// Greedy selectivity order under a connectivity constraint: start
	// from the most selective group, then repeatedly take the most
	// selective group sharing a variable with what is already bound.
	// Ties break on first appearance, keeping the order — and so every
	// generated fetch query — a deterministic function of the text.
	bound := map[string]bool{}
	used := make([]bool, len(raws))
	pick := func(connected bool) *rawGroup {
		var best *rawGroup
		for _, r := range raws {
			if used[r.pos] {
				continue
			}
			if connected {
				shares := false
				for _, v := range r.g.Vars {
					if bound[v] {
						shares = true
						break
					}
				}
				if !shares {
					continue
				}
			}
			if best == nil || r.hint < best.hint {
				best = r
			}
		}
		return best
	}
	for len(p.groups) < len(raws) {
		r := pick(len(p.groups) > 0)
		if r == nil {
			return nil, false // disconnected join graph
		}
		used[r.pos] = true
		var jv, nv []string
		for _, v := range r.g.Vars {
			if bound[v] {
				jv = append(jv, v)
			} else {
				nv = append(nv, v)
				bound[v] = true
			}
		}
		p.groups = append(p.groups, r.g)
		p.joinVars = append(p.joinVars, jv)
		p.newVars = append(p.newVars, nv)
	}
	return p, true
}

// stepQuery builds the fetch query for one step: the group's
// patterns and pushed filters, preceded by a VALUES block over the
// join variables when bindings constrain the fetch. Solution
// modifiers never push down — they apply to the global join result.
func (p *BoundJoinPlan) stepQuery(step int, bindings [][]rdf.Term) *Query {
	g := p.groups[step]
	q := &Query{Limit: -1}
	for _, v := range g.Vars {
		q.Select = append(q.Select, SelectItem{Var: v})
	}
	if len(bindings) > 0 {
		rows := make([][]*rdf.Term, len(bindings))
		for i, b := range bindings {
			row := make([]*rdf.Term, len(b))
			for j := range b {
				t := b[j]
				row[j] = &t
			}
			rows[i] = row
		}
		q.Where = append(q.Where, ValuesElement{Vars: p.joinVars[step], Rows: rows})
	}
	for _, tp := range g.Patterns {
		q.Where = append(q.Where, tp)
	}
	for _, f := range g.Filters {
		q.Where = append(q.Where, FilterElement{Expr: f})
	}
	return q
}

// BoundJoinExec is the per-query execution state of a bound-join
// plan: the accumulated join relation and the hash table of the step
// in progress. Feed is safe for concurrent use — the coordinator
// streams shard responses into it as they arrive, so probe rows join
// while other shards are still answering.
type BoundJoinExec struct {
	plan *BoundJoinPlan

	mu      sync.Mutex
	step    int
	vars    []string     // accumulated layout after completed steps
	rows    [][]rdf.Term // accumulated join relation
	shipped int          // distinct bindings shipped in VALUES blocks

	// In-progress step state, set by StepQueries.
	hash     map[string][]int // join-key → accumulated row indices
	probeKey []int            // join-var positions in the probe layout
	probeNew []int            // new-var positions in the probe layout
	next     [][]rdf.Term
}

// NewExec returns fresh execution state for one query.
func (p *BoundJoinPlan) NewExec() *BoundJoinExec {
	return &BoundJoinExec{plan: p}
}

// Steps returns the number of scatter rounds.
func (e *BoundJoinExec) Steps() int { return len(e.plan.groups) }

// BindingsShipped returns the distinct binding rows shipped to the
// shards so far across all VALUES-constrained steps.
func (e *BoundJoinExec) BindingsShipped() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shipped
}

// Empty reports whether the accumulated relation is empty — callers
// can short-circuit the remaining steps (the join result stays empty).
func (e *BoundJoinExec) Empty() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.step > 0 && len(e.rows) == 0
}

// joinKey renders the join-variable projection of a row as a hash key.
func joinKey(row []rdf.Term, idx []int) (string, bool) {
	var b []byte
	for _, i := range idx {
		if !Bound(row[i]) {
			return "", false
		}
		b = append(b, row[i].String()...)
		b = append(b, 0)
	}
	return string(b), true
}

// StepQueries prepares the current step and returns its fetch-query
// texts: one unconstrained query for step 0, otherwise the group
// query repeated once per chunk of at most chunk distinct bindings
// (chunk <= 0 means a single unchunked VALUES block). The binding
// rows are deduplicated and canonically sorted first, so the texts —
// and the chunk boundaries — are a function of the accumulated
// solution set alone, independent of topology and arrival order. An
// empty return means the relation is already empty and the step (and
// all remaining ones) can be skipped.
func (e *BoundJoinExec) StepQueries(chunk int) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	g := e.plan.groups[e.step]
	e.next = nil
	e.probeKey = nil
	e.probeNew = nil
	jv := e.plan.joinVars[e.step]
	// The probe layout is the group's variable order; split it into
	// join positions (hash key) and new positions (appended columns).
	for i, v := range g.Vars {
		isJoin := false
		for _, j := range jv {
			if v == j {
				isJoin = true
				break
			}
		}
		if isJoin {
			e.probeKey = append(e.probeKey, i)
		} else {
			e.probeNew = append(e.probeNew, i)
		}
	}
	if e.step == 0 {
		return []string{e.plan.stepQuery(0, nil).String()}
	}

	jIdx := make([]int, len(jv))
	for i, v := range jv {
		jIdx[i] = e.columnOf(v)
	}
	e.hash = make(map[string][]int, len(e.rows))
	type keyedBinding struct {
		key string
		row []rdf.Term
	}
	var distinct []keyedBinding
	for ri, row := range e.rows {
		k, ok := joinKey(row, jIdx)
		if !ok {
			continue
		}
		if _, dup := e.hash[k]; !dup {
			b := make([]rdf.Term, len(jIdx))
			for i, c := range jIdx {
				b[i] = row[c]
			}
			distinct = append(distinct, keyedBinding{key: k, row: b})
		}
		e.hash[k] = append(e.hash[k], ri)
	}
	if len(distinct) == 0 {
		return nil
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i].key < distinct[j].key })
	e.shipped += len(distinct)
	if chunk <= 0 {
		chunk = len(distinct)
	}
	var texts []string
	for lo := 0; lo < len(distinct); lo += chunk {
		hi := lo + chunk
		if hi > len(distinct) {
			hi = len(distinct)
		}
		bindings := make([][]rdf.Term, 0, hi-lo)
		for _, kb := range distinct[lo:hi] {
			bindings = append(bindings, kb.row)
		}
		texts = append(texts, e.plan.stepQuery(e.step, bindings).String())
	}
	return texts
}

// columnOf returns a variable's position in the accumulated layout,
// or -1. Caller holds e.mu.
func (e *BoundJoinExec) columnOf(v string) int {
	for i, n := range e.vars {
		if n == v {
			return i
		}
	}
	return -1
}

// Feed streams one shard response of the current step into the join.
// For step 0 the rows accumulate directly; afterwards each probe row
// joins against the hash-table side, multiplying multiplicities —
// exact bag semantics, because every group solution is computed on
// exactly one shard (subject colocation) and matches exactly one
// distinct VALUES row (its own join projection), so the union over
// shards and chunks sees each solution exactly once.
func (e *BoundJoinExec) Feed(res *Results) error {
	if res == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	g := e.plan.groups[e.step]
	if len(res.Vars) != len(g.Vars) {
		return fmt.Errorf("sparql: bound join step %d: shard returned %d columns, want %d", e.step, len(res.Vars), len(g.Vars))
	}
	if e.step == 0 {
		e.next = append(e.next, res.Rows...)
		return nil
	}
	for _, row := range res.Rows {
		k, ok := joinKey(row, e.probeKey)
		if !ok {
			continue
		}
		for _, ri := range e.hash[k] {
			acc := e.rows[ri]
			out := make([]rdf.Term, 0, len(acc)+len(e.probeNew))
			out = append(out, acc...)
			for _, c := range e.probeNew {
				out = append(out, row[c])
			}
			e.next = append(e.next, out)
		}
	}
	return nil
}

// EndStep commits the step in progress: the joined rows become the
// accumulated relation and the layout grows by the step's new
// variables.
func (e *BoundJoinExec) EndStep() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rows = e.next
	e.vars = append(e.vars, e.plan.newVars[e.step]...)
	e.next, e.hash, e.probeKey, e.probeNew = nil, nil, nil, nil
	e.step++
}

// Finalize applies the residual filters, evaluates the projection,
// and canonically finalizes with the original query's modifiers. For
// ASK the boolean is whether any row survived. Filter errors drop
// the row and projection errors leave the cell unbound, matching the
// engine's semantics.
func (e *BoundJoinExec) Finalize() (*Results, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rows := e.rows
	if len(e.plan.residual) > 0 {
		kept := rows[:0:0]
		for _, row := range rows {
			b := outBinding{vars: e.vars, row: row}
			ok := true
			for _, f := range e.plan.residual {
				keep, err := evalBool(f, b)
				if err != nil || !keep {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	q := e.plan.orig
	if q.Ask {
		return &Results{IsAsk: true, Boolean: len(rows) > 0}, nil
	}
	res := &Results{}
	cols := make([]int, len(q.Select))
	for i, it := range q.Select {
		res.Vars = append(res.Vars, it.Var)
		cols[i] = -1
		if it.Expr == nil {
			for c, v := range e.vars {
				if v == it.Var {
					cols[i] = c
					break
				}
			}
		}
	}
	res.Rows = make([][]rdf.Term, len(rows))
	for ri, row := range rows {
		line := make([]rdf.Term, len(q.Select))
		b := outBinding{vars: e.vars, row: row}
		for i, it := range q.Select {
			if it.Expr == nil {
				if cols[i] >= 0 {
					line[i] = row[cols[i]]
				}
			} else if v, err := evalExpr(it.Expr, b); err == nil && v.Bound {
				line[i] = v.Term
			}
		}
		res.Rows[ri] = line
	}
	MergeFinalize(q, res)
	return res, nil
}

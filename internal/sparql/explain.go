package sparql

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Explain renders the plan the executor would follow for a query
// without running it: the greedy join order with per-pattern index
// cardinality estimates, the point where each filter becomes
// applicable, and the post-join stages. Intended for debugging slow
// analytical queries and for teaching what the planner does.
func (e *Engine) Explain(q *Query) string {
	ex := &executor{
		eng: e, view: e.st.View(), dict: e.st.Dict(),
		slots: map[string]int{}, dead: new(atomic.Bool),
		workers: e.Exec.workers(), threshold: e.Exec.threshold(),
	}
	var b strings.Builder
	switch {
	case q.Ask:
		b.WriteString("ASK (short-circuit at first solution)\n")
	case q.Construct != nil:
		fmt.Fprintf(&b, "CONSTRUCT (%d template triples)\n", len(q.Construct))
	case q.IsAggregate():
		fmt.Fprintf(&b, "SELECT with grouping (GROUP BY %s)\n", strings.Join(q.GroupBy, ", "))
	default:
		b.WriteString("SELECT\n")
	}

	// Parallelism plan: how the executor would spread this query over
	// the worker pool.
	if ex.workers > 1 {
		fmt.Fprintf(&b, "  parallel: %d workers, stages chunk at >=%d rows", ex.workers, ex.threshold)
		if q.IsAggregate() {
			fmt.Fprintf(&b, ", %d aggregation shards", e.Exec.shards())
		}
		if q.Ask {
			b.WriteString(" (ASK runs sequentially: budget 1)")
		}
		b.WriteByte('\n')
	} else {
		b.WriteString("  parallel: off (1 worker)\n")
	}

	var patterns []TriplePattern
	var filters []Expr
	var extras []string
	for _, el := range q.Where {
		switch x := el.(type) {
		case TriplePattern:
			patterns = append(patterns, x)
		case FilterElement:
			filters = append(filters, x.Expr)
		case ValuesElement:
			extras = append(extras, fmt.Sprintf("VALUES seed: %d rows over %s", len(x.Rows), strings.Join(x.Vars, ", ")))
		case OptionalElement:
			extras = append(extras, fmt.Sprintf("OPTIONAL left-join: %d patterns", len(x.Patterns)))
		case UnionElement:
			extras = append(extras, fmt.Sprintf("UNION: %d branches", len(x.Branches)))
		case ClosurePattern:
			extras = append(extras, "transitive closure: "+x.String())
		case SubSelectElement:
			extras = append(extras, "subquery seed: "+x.Query.String())
		}
	}
	for _, line := range extras {
		b.WriteString("  " + line + "\n")
	}

	// Full-text rewrites.
	if !e.DisableTextIndex {
		for _, f := range filters {
			if v, kw, ok := textConstraint(f); ok {
				n := len(e.st.TextSearch(kw))
				fmt.Fprintf(&b, "  full-text seed ?%s: %d candidates for %q\n", v, n, kw)
			}
		}
	}

	// Simulate the greedy order.
	bound := map[string]bool{}
	remaining := append([]TriplePattern(nil), patterns...)
	step := 1
	for len(remaining) > 0 {
		idx := 0
		if !e.DisableJoinOrdering {
			idx = ex.cheapestPattern(remaining, bound)
		}
		tp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		est := e.st.MatchCount(ex.constID(tp.S), ex.constID(tp.P), ex.constID(tp.O))
		connected := "seed scan"
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar && bound[n.Var] {
				connected = "index join"
				break
			}
		}
		fmt.Fprintf(&b, "  %d. %s  [%s, ~%d index entries]\n", step, tp, connected, est)
		step++
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar {
				bound[n.Var] = true
			}
		}
		for fi, f := range filters {
			if f == nil {
				continue
			}
			if _, _, isText := textConstraint(f); isText && !e.DisableTextIndex {
				filters[fi] = nil
				continue
			}
			ready := true
			for _, v := range exprVars(f, nil) {
				if !bound[v] {
					ready = false
					break
				}
			}
			if ready {
				fmt.Fprintf(&b, "     filter: %s\n", f)
				filters[fi] = nil
			}
		}
	}
	for _, f := range filters {
		if f != nil {
			fmt.Fprintf(&b, "  post-join filter: %s\n", f)
		}
	}
	for i, h := range q.Having {
		if i == 0 {
			b.WriteString("  HAVING after aggregation\n")
		}
		fmt.Fprintf(&b, "     %s\n", h)
	}
	if len(q.OrderBy) > 0 {
		fmt.Fprintf(&b, "  ORDER BY (%d keys)\n", len(q.OrderBy))
	}
	if q.Distinct {
		b.WriteString("  DISTINCT\n")
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "  LIMIT %d", q.Limit)
		if q.Offset > 0 {
			fmt.Fprintf(&b, " OFFSET %d", q.Offset)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ExplainString parses and explains a query.
func (e *Engine) ExplainString(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	return e.Explain(q), nil
}

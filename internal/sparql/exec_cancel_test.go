package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// chainStore builds a linear hierarchy a0 -> a1 -> ... -> aN plus fan,
// so transitive-closure queries have real work to do.
func chainStore(t testing.TB, n int) *store.Store {
	t.Helper()
	st := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.NewTriple(ex(fmt.Sprintf("a%d", i)), ex("up"), ex(fmt.Sprintf("a%d", i+1))))
		// side branches give the BFS a frontier wider than one
		ts = append(ts, rdf.NewTriple(ex(fmt.Sprintf("b%d", i)), ex("up"), ex(fmt.Sprintf("a%d", i))))
	}
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestExecCancelledClosure: a cancelled context stops transitive
// closure expansion with an error instead of returning a partial
// (silently wrong) closure.
func TestExecCancelledClosure(t *testing.T) {
	st := chainStore(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewEngine(st).QueryStringContext(ctx,
		`SELECT ?x WHERE { <http://ex.org/a0> <http://ex.org/up>+ ?x . }`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecCancelledAggregation: GROUP BY must not emit rows computed
// under a dead context.
func TestExecCancelledAggregation(t *testing.T) {
	st := testStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewEngine(st).QueryStringContext(ctx,
		`SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <http://ex.org/dest> ?d . ?o <http://ex.org/value> ?v . } GROUP BY ?d`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecDeadlineStopsClosurePromptly: an expired deadline on a large
// closure query surfaces DeadlineExceeded without walking the rest of
// the graph.
func TestExecDeadlineStopsClosurePromptly(t *testing.T) {
	st := chainStore(t, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // let the deadline pass before work starts
	t0 := time.Now()
	_, err := NewEngine(st).QueryStringContext(ctx,
		`SELECT ?x ?y WHERE { ?x <http://ex.org/up>+ ?y . }`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("query ran %s after its deadline expired", elapsed)
	}
}

// TestExecCancelStopsCartesianJoin: cancelling mid-query must abort
// the row loop inside a pattern join — on a cartesian product that
// loop alone can run for minutes after the client is gone. Found by
// driving sparqld: killed clients left their in-flight slots occupied.
func TestExecCancelStopsCartesianJoin(t *testing.T) {
	st := chainStore(t, 400) // 800 triples → 800³ product rows
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := NewEngine(st).QueryStringContext(ctx,
			`SELECT (COUNT(?a) AS ?n) WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f . }`)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the join get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cartesian join ignored cancellation")
	}
}

// TestExecCancelStopsDFS: the ASK/LIMIT depth-first join must honour
// cancellation inside its recursion, not only at pattern boundaries.
func TestExecCancelStopsDFS(t *testing.T) {
	st := chainStore(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// ASK with an unsatisfiable filter explores the whole product
	// space through joinDFS before giving up.
	_, err := NewEngine(st).QueryStringContext(ctx,
		`ASK { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f . FILTER (?a = ?f && ?a != ?a) }`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecContextNilSafe: queries without a context still work (the
// executor treats a nil context as "never cancelled").
func TestExecContextNilSafe(t *testing.T) {
	st := chainStore(t, 10)
	res, err := NewEngine(st).QueryString(
		`SELECT ?x WHERE { <http://ex.org/a0> <http://ex.org/up>+ ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Errorf("closure size = %d, want 10", res.Len())
	}
}

package sparql

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"re2xolap/internal/datagen"
	"re2xolap/internal/obs"
)

func TestQueryStringTimed(t *testing.T) {
	spec := datagen.EurostatLike(500)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	if !eng.Instrumented() {
		t.Fatal("Instrument did not install metrics")
	}

	q := fmt.Sprintf(
		`SELECT ?m (COUNT(?o) AS ?n) WHERE { ?o a <%s> . ?o <%s> ?m . } GROUP BY ?m ORDER BY ?m`,
		spec.ObservationClass(), spec.NS+spec.Dimensions[0].Pred)
	res, pt, err := eng.QueryStringTimed(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rows != res.Len() || pt.Rows == 0 {
		t.Fatalf("Rows = %d, result rows = %d", pt.Rows, res.Len())
	}
	if pt.Parse <= 0 || pt.Join <= 0 || pt.Aggregate <= 0 {
		t.Fatalf("phases not measured: %+v", pt)
	}
	if pt.Total() < pt.Join {
		t.Fatalf("Total %v < Join %v", pt.Total(), pt.Join)
	}
	m := pt.Map()
	if _, ok := m["join"]; !ok {
		t.Fatalf("Map missing join: %v", m)
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"re2xolap_sparql_queries_total 1",
		`re2xolap_sparql_phase_seconds_bucket{phase="join"`,
		"re2xolap_sparql_rows_total",
		"re2xolap_sparql_query_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A syntax error counts as query + error.
	if _, _, err := eng.QueryStringTimed(context.Background(), "SELECT nonsense"); err == nil {
		t.Fatal("syntax error did not error")
	}
	buf.Reset()
	_ = reg.WriteProm(&buf)
	if !strings.Contains(buf.String(), "re2xolap_sparql_query_errors_total 1") {
		t.Errorf("error not counted:\n%s", buf.String())
	}
}

// TestQueryStringContextRoutesThroughTrace checks the trace-driven
// path: an uninstrumented engine still produces phase spans when the
// context carries one.
func TestQueryStringContextRoutesThroughTrace(t *testing.T) {
	spec := datagen.EurostatLike(200)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	tr := obs.NewTrace("test")
	ctx := obs.ContextWith(context.Background(), tr.Root())
	q := fmt.Sprintf(`SELECT ?o WHERE { ?o a <%s> . } LIMIT 5`, spec.ObservationClass())
	if _, err := eng.QueryStringContext(ctx, q); err != nil {
		t.Fatal(err)
	}
	tr.End()
	names := map[string]bool{}
	for _, c := range tr.Root().Children() {
		names[c.Name()] = true
	}
	if !names["parse"] || !names["join"] {
		t.Fatalf("trace missing engine phases, got %v in:\n%s", names, tr)
	}
}

// TestInstrumentedResultsIdentical guards the refactor: the timed path
// must return byte-identical results to the bare path.
func TestInstrumentedResultsIdentical(t *testing.T) {
	spec := datagen.EurostatLike(300)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	plain := NewEngine(st)
	timed := NewEngine(st)
	timed.Instrument(obs.NewRegistry())
	for _, q := range []string{
		fmt.Sprintf(`SELECT ?m (SUM(?v) AS ?s) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY ?m`,
			spec.NS+spec.Dimensions[0].Pred, spec.NS+spec.Measures[0].Pred),
		fmt.Sprintf(`ASK { ?o a <%s> . }`, spec.ObservationClass()),
		fmt.Sprintf(`SELECT ?o WHERE { ?o a <%s> . } ORDER BY ?o LIMIT 7 OFFSET 2`, spec.ObservationClass()),
	} {
		a, err := plain.QueryStringContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := timed.QueryStringContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("instrumented results differ for %s:\n%s\nvs\n%s", q, a, b)
		}
	}
}

package sparql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
)

// Runtime query profiler: a per-operator tree mirroring the Explain
// plan, filled during execution with observed cardinalities and wall
// times. The profiler follows the package's nil-safe instrumentation
// pattern — a nil *profiler on the executor is the disabled state and
// costs one pointer check per operator, so the bare query path stays
// byte-identical and within noise of the unprofiled engine. Worker
// clones never profile (clone() leaves prof nil): fan-out is recorded
// as the Workers attribute on the operator that fanned out, which
// keeps the tree deterministic across worker counts.

// ProfileNode is one operator of a profiled execution: what ran, how
// many rows went in and came out, the planner's cardinality estimate
// where one existed, and the operator's wall time.
type ProfileNode struct {
	// Op names the operator: "query", "scan", "index join", "filter",
	// "dfs", "values", "text-seed", "subquery", "closure", "union",
	// "optional", "bind", "aggregate", "project", "construct",
	// "modifiers".
	Op string
	// Detail is the operator-specific description (the triple pattern,
	// filter expression, keyword, ...).
	Detail string
	// RowsIn/RowsOut are the observed input and output cardinalities.
	RowsIn  int
	RowsOut int
	// Est is the planner's cardinality estimate for this operator
	// (index entry count for pattern joins, candidate count for text
	// seeds); -1 when the planner had no estimate.
	Est int64
	// Workers is the fan-out width when the operator ran on the worker
	// pool; 0 or 1 means it ran sequentially.
	Workers int
	// Wall is the operator's elapsed wall time.
	Wall     time.Duration
	Children []*ProfileNode

	start time.Time
}

// profiler collects ProfileNodes during one query execution. It is
// single-goroutine by construction: only the root executor carries a
// profiler, worker clones run bare.
type profiler struct {
	root  *ProfileNode
	stack []*ProfileNode
}

func newProfiler() *profiler {
	root := &ProfileNode{Op: "query", Est: -1, start: time.Now()}
	return &profiler{root: root, stack: []*ProfileNode{root}}
}

// open appends a child under the current node and makes it current.
func (p *profiler) open(op, detail string, rowsIn int) *ProfileNode {
	n := &ProfileNode{Op: op, Detail: detail, RowsIn: rowsIn, Est: -1, start: time.Now()}
	top := p.stack[len(p.stack)-1]
	top.Children = append(top.Children, n)
	p.stack = append(p.stack, n)
	return n
}

// close finalizes n and pops the stack down to n's parent. Searching
// from the top makes close robust to error paths that abandoned
// deeper nodes without closing them.
func (p *profiler) close(n *ProfileNode, rowsOut int) {
	n.RowsOut = rowsOut
	n.Wall = time.Since(n.start)
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i] == n {
			p.stack = p.stack[:i]
			return
		}
	}
}

// finish closes the root with the final result cardinality.
func (p *profiler) finish(rows int) {
	p.root.RowsOut = rows
	p.root.Wall = time.Since(p.root.start)
	p.stack = p.stack[:1]
}

// profClose finalizes a node opened by an `if ex.prof != nil` site.
// Nil-safe on both the node and the profiler (the profiler may have
// been temporarily suppressed between open and close).
func (ex *executor) profClose(n *ProfileNode, rowsOut int) {
	if n == nil || ex.prof == nil {
		return
	}
	ex.prof.close(n, rowsOut)
}

// Profile is the result of a profiled execution: the phase breakdown
// plus the per-operator tree.
type Profile struct {
	Query  string
	Phases PhaseTimings
	Root   *ProfileNode
}

// String renders the profile as an EXPLAIN ANALYZE-style indented
// tree with estimates, observed cardinalities, and wall times.
func (p *Profile) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE  rows=%d total=%s\n", p.Phases.Rows, p.Phases.Total().Round(time.Microsecond))
	fmt.Fprintf(&b, "phases: parse=%s plan=%s join=%s aggregate=%s sort=%s\n",
		p.Phases.Parse.Round(time.Microsecond), p.Phases.Plan.Round(time.Microsecond),
		p.Phases.Join.Round(time.Microsecond), p.Phases.Aggregate.Round(time.Microsecond),
		p.Phases.Sort.Round(time.Microsecond))
	if p.Root != nil {
		writeProfileNode(&b, p.Root, 0)
	}
	return b.String()
}

func writeProfileNode(b *strings.Builder, n *ProfileNode, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	b.WriteString("  [")
	if n.Est >= 0 {
		fmt.Fprintf(b, "est=%d ", n.Est)
	}
	fmt.Fprintf(b, "in=%d out=%d wall=%s", n.RowsIn, n.RowsOut, n.Wall.Round(time.Microsecond))
	if n.Workers > 1 {
		fmt.Fprintf(b, " workers=%d", n.Workers)
	}
	b.WriteString("]\n")
	for _, c := range n.Children {
		writeProfileNode(b, c, depth+1)
	}
}

// aggregateDetail summarizes the grouping an aggregate node performs.
func aggregateDetail(q *Query) string {
	if len(q.GroupBy) == 0 {
		return "no GROUP BY"
	}
	return "GROUP BY " + strings.Join(q.GroupBy, ", ")
}

// modifierDetail summarizes the ORDER BY/DISTINCT/LIMIT stage.
func modifierDetail(q *Query) string {
	var parts []string
	if len(q.OrderBy) > 0 {
		parts = append(parts, fmt.Sprintf("ORDER BY (%d keys)", len(q.OrderBy)))
	}
	if q.Distinct {
		parts = append(parts, "DISTINCT")
	}
	if q.Offset > 0 {
		parts = append(parts, fmt.Sprintf("OFFSET %d", q.Offset))
	}
	if q.Limit >= 0 {
		parts = append(parts, fmt.Sprintf("LIMIT %d", q.Limit))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// CardDelta is one estimated-vs-actual cardinality pair from a
// profiled execution — the feedback signal a cost-based planner
// consumes.
type CardDelta struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	Est    int64  `json:"est"`
	Actual int64  `json:"actual"`
}

// Deltas returns the estimate-vs-actual pairs for every operator the
// planner estimated (pattern joins, text seeds), in execution order.
func (p *Profile) Deltas() []CardDelta {
	if p == nil || p.Root == nil {
		return nil
	}
	var out []CardDelta
	var walk func(n *ProfileNode)
	walk = func(n *ProfileNode) {
		if n.Est >= 0 {
			out = append(out, CardDelta{Op: n.Op, Detail: n.Detail, Est: n.Est, Actual: int64(n.RowsOut)})
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// Profile parses and executes src with the runtime profiler enabled,
// returning the results and the per-operator profile. The results are
// byte-identical to QueryString — profiling only observes. Metrics
// (if instrumented) and trace spans (if ctx carries one) are recorded
// like QueryStringTimed. On execution errors the partial profile is
// still returned alongside the error.
func (e *Engine) Profile(ctx context.Context, src string) (*Results, *Profile, error) {
	var pt PhaseTimings
	start := time.Now()
	q, err := Parse(src)
	pt.Parse = time.Since(start)
	if err != nil {
		e.recordQuery(pt, obs.SpanFrom(ctx), err)
		return nil, nil, err
	}
	prof := newProfiler()
	res, err := e.queryPhased(ctx, q, e.st.View(), &pt, prof)
	if res != nil {
		pt.Rows = res.Len()
	}
	prof.finish(pt.Rows)
	p := &Profile{Query: src, Phases: pt, Root: prof.root}
	e.recordQuery(pt, obs.SpanFrom(ctx), err)
	return res, p, err
}

// explainPrefix recognizes the EXPLAIN / EXPLAIN ANALYZE query prefix
// (case-insensitive) and returns the query text after it. No legal
// SPARQL form starts with EXPLAIN, so the prefix cannot shadow a real
// query.
func explainPrefix(src string) (rest string, analyze, ok bool) {
	s := strings.TrimSpace(src)
	const kw = "EXPLAIN"
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) || !isSpaceByte(s[len(kw)]) {
		return "", false, false
	}
	rest = strings.TrimSpace(s[len(kw):])
	const kw2 = "ANALYZE"
	if len(rest) > len(kw2) && strings.EqualFold(rest[:len(kw2)], kw2) && isSpaceByte(rest[len(kw2)]) {
		return strings.TrimSpace(rest[len(kw2):]), true, true
	}
	return rest, false, true
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// runExplain serves an EXPLAIN[-ANALYZE]-prefixed query as a result
// set with one "plan" column and one row per output line, so the plan
// travels through every client and serialization unchanged.
func (e *Engine) runExplain(ctx context.Context, src string, analyze bool) (*Results, error) {
	var text string
	if analyze {
		_, p, err := e.Profile(ctx, src)
		if err != nil {
			return nil, err
		}
		text = p.String()
	} else {
		t, err := e.ExplainString(src)
		if err != nil {
			return nil, err
		}
		text = t
	}
	res := &Results{Vars: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []rdf.Term{rdf.NewString(line)})
	}
	return res, nil
}

package sparql

import (
	"strings"
	"testing"

	"re2xolap/internal/rdf"
)

func mustPlanBound(t *testing.T, text string) *BoundJoinPlan {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := PlanBoundJoin(q)
	if !ok {
		t.Fatalf("PlanBoundJoin rejected %s", text)
	}
	return p
}

// TestPlanBoundJoinRejections pins the class boundary: every shape
// the bound join cannot execute exactly must be rejected (the caller
// falls back to gather, which is always exact).
func TestPlanBoundJoinRejections(t *testing.T) {
	for _, c := range []struct{ name, query string }{
		{"single-group", `SELECT ?s WHERE { ?s <http://t/a> ?x . ?s <http://t/b> ?y }`},
		{"disconnected", `SELECT ?a ?b WHERE { ?a <http://t/p> ?x . ?b <http://t/q> ?y }`},
		{"optional", `SELECT ?s WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c . OPTIONAL { ?s <http://t/v> ?v } }`},
		{"union", `SELECT ?s WHERE { { ?s <http://t/a> ?r . ?r <http://t/b> ?c } UNION { ?s <http://t/d> ?e } }`},
		{"values", `SELECT ?s WHERE { VALUES ?r { <http://t/x> } ?s <http://t/a> ?r . ?r <http://t/b> ?c }`},
		{"bind", `SELECT ?s WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c . BIND(STR(?c) AS ?cs) }`},
		{"closure", `SELECT ?s WHERE { ?s <http://t/a> ?r . ?r <http://t/b>+ ?c }`},
		{"subselect", `SELECT ?s WHERE { { SELECT ?r WHERE { ?r <http://t/b> ?c } } ?s <http://t/a> ?r }`},
		{"exists-filter", `SELECT ?s WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c . FILTER EXISTS { ?s <http://t/v> ?v } }`},
		{"aggregate", `SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c } GROUP BY ?c`},
		{"construct", `CONSTRUCT { ?s <http://t/p> ?c } WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c }`},
		{"select-star", `SELECT * WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c }`},
	} {
		t.Run(c.name, func(t *testing.T) {
			q, err := Parse(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := PlanBoundJoin(q); ok {
				t.Fatalf("PlanBoundJoin accepted out-of-class query %s", c.query)
			}
		})
	}
}

// TestPlanBoundJoinOrdering checks the bound side runs first: the
// statically more selective group is fetched unconstrained and its
// bindings constrain the other side, regardless of pattern order in
// the text.
func TestPlanBoundJoinOrdering(t *testing.T) {
	// Group ?a: constant predicate (hint 32). Group <c>: constant
	// subject (hint 2) — must be step 0 even though it appears second.
	p := mustPlanBound(t, `SELECT ?r WHERE { ?a <http://t/p> ?r . <http://t/c> <http://t/q> ?a }`)
	if p.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", p.Steps())
	}
	if g := p.Groups()[0]; g.Patterns[0].S.IsVar {
		t.Fatalf("step 0 fetches the variable-subject group; want the constant-subject one")
	}
	if jv := p.JoinVars(1); len(jv) != 1 || jv[0] != "a" {
		t.Fatalf("step 1 join vars = %v, want [a]", jv)
	}

	// Pushed filters count as extra constraints and win ties: the
	// filtered group goes first.
	p = mustPlanBound(t, `SELECT ?s ?c WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c . FILTER(?c = <http://t/x>) }`)
	if g := p.Groups()[0]; g.Patterns[0].S.Var != "r" {
		t.Fatalf("filtered group should fetch first, got subject %v", g.Patterns[0].S)
	}
	if len(p.Groups()[0].Filters) != 1 || len(p.Residual()) != 0 {
		t.Fatalf("filter not pushed into its covering group")
	}

	// A filter spanning groups stays residual.
	p = mustPlanBound(t, `SELECT ?s ?c WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c . FILTER(?s != ?c) }`)
	if len(p.Residual()) != 1 {
		t.Fatalf("cross-group filter should be residual, got %d residuals", len(p.Residual()))
	}
}

// TestBoundJoinStepQueryDeterminism checks the generated fetch texts
// are a function of the accumulated solution set alone: arrival
// order, duplication, and shard split must not change a byte, and
// chunking partitions the sorted distinct bindings.
func TestBoundJoinStepQueryDeterminism(t *testing.T) {
	text := `SELECT ?s ?c WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c }`
	term := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	row := func(names ...string) []rdf.Term {
		out := make([]rdf.Term, len(names))
		for i, n := range names {
			out[i] = term(n)
		}
		return out
	}
	step0 := func(rows ...[]rdf.Term) *Results {
		return &Results{Vars: []string{"s", "r"}, Rows: rows}
	}

	run := func(batches []*Results, chunk int) []string {
		p := mustPlanBound(t, text)
		e := p.NewExec()
		if got := e.StepQueries(chunk); len(got) != 1 || strings.Contains(got[0], "VALUES") {
			t.Fatalf("step 0 queries = %v, want one unconstrained query", got)
		}
		for _, b := range batches {
			if err := e.Feed(b); err != nil {
				t.Fatal(err)
			}
		}
		e.EndStep()
		return e.StepQueries(chunk)
	}

	// Same solution set, three arrival shapes: one batch in order, one
	// batch shuffled with a duplicate binding, split across "shards".
	a := run([]*Results{step0(row("s1", "r1"), row("s2", "r2"), row("s3", "r1"))}, 0)
	b := run([]*Results{step0(row("s3", "r1"), row("s1", "r1"), row("s2", "r2"))}, 0)
	c := run([]*Results{step0(row("s2", "r2")), step0(row("s1", "r1"), row("s3", "r1"))}, 0)
	if len(a) != 1 {
		t.Fatalf("unchunked step 1 produced %d queries, want 1", len(a))
	}
	for i, other := range [][]string{b, c} {
		if a[0] != other[0] {
			t.Fatalf("arrival shape %d changed the fetch text:\n%s\nvs\n%s", i, other[0], a[0])
		}
	}
	// 2 distinct ?r bindings at chunk=1: two texts, each with a VALUES
	// block, in sorted order.
	chunked := run([]*Results{step0(row("s1", "r1"), row("s2", "r2"), row("s3", "r1"))}, 1)
	if len(chunked) != 2 {
		t.Fatalf("chunk=1 over 2 distinct bindings produced %d queries, want 2", len(chunked))
	}
	for _, q := range chunked {
		if !strings.Contains(q, "VALUES") {
			t.Fatalf("chunked fetch lacks VALUES block: %s", q)
		}
	}
	if !strings.Contains(chunked[0], "r1") || !strings.Contains(chunked[1], "r2") {
		t.Fatalf("chunks not in canonical binding order: %v", chunked)
	}
}

// TestBoundJoinExecBagSemantics checks the streamed hash join keeps
// exact bag multiplicities: duplicate accumulated rows each join with
// every matching probe row.
func TestBoundJoinExecBagSemantics(t *testing.T) {
	p := mustPlanBound(t, `SELECT ?s ?c WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c } ORDER BY ?s ?c`)
	e := p.NewExec()
	term := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

	e.StepQueries(0)
	// Two different subjects bound to the same ?r: the r1 binding ships
	// once but both rows must multiply with its probe matches.
	if err := e.Feed(&Results{Vars: []string{"s", "r"}, Rows: [][]rdf.Term{
		{term("s1"), term("r1")},
		{term("s2"), term("r1")},
	}}); err != nil {
		t.Fatal(err)
	}
	e.EndStep()

	if got := e.StepQueries(0); len(got) != 1 {
		t.Fatalf("step 1: %d queries, want 1", len(got))
	}
	if e.BindingsShipped() != 1 {
		t.Fatalf("shipped %d bindings, want 1 distinct", e.BindingsShipped())
	}
	// The probe side answers two ?c values for r1.
	if err := e.Feed(&Results{Vars: []string{"r", "c"}, Rows: [][]rdf.Term{
		{term("r1"), term("c1")},
		{term("r1"), term("c2")},
	}}); err != nil {
		t.Fatal(err)
	}
	e.EndStep()

	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("join produced %d rows, want 2x2 = 4", res.Len())
	}
	want := [][2]string{
		{"http://t/s1", "http://t/c1"}, {"http://t/s1", "http://t/c2"},
		{"http://t/s2", "http://t/c1"}, {"http://t/s2", "http://t/c2"},
	}
	for i, w := range want {
		if res.Rows[i][0].Value != w[0] || res.Rows[i][1].Value != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}

	// Empty() short-circuits once a committed step leaves no rows.
	p2 := mustPlanBound(t, `SELECT ?s ?c WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c }`)
	e2 := p2.NewExec()
	e2.StepQueries(0)
	e2.EndStep()
	if !e2.Empty() {
		t.Fatal("empty step 0 relation not reported")
	}
	if qs := e2.StepQueries(0); qs != nil {
		t.Fatalf("empty relation still produced %d step queries", len(qs))
	}
}

package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// This file cross-checks the executor against a brute-force reference
// evaluator on randomly generated graphs and BGP queries: same
// solutions, same aggregates, independent of join order, index
// selection, or the DFS short-circuit path.

// refBinding is a variable assignment in the reference evaluator.
type refBinding map[string]rdf.Term

// refSolve enumerates all solutions of the patterns over the triples
// by naive backtracking in syntactic order.
func refSolve(triples []rdf.Triple, patterns []TriplePattern) []refBinding {
	var out []refBinding
	var rec func(b refBinding, i int)
	match := func(n Node, t rdf.Term, b refBinding) (refBinding, bool) {
		if !n.IsVar {
			if n.Term == t {
				return b, true
			}
			return nil, false
		}
		if cur, ok := b[n.Var]; ok {
			if cur == t {
				return b, true
			}
			return nil, false
		}
		nb := refBinding{}
		for k, v := range b {
			nb[k] = v
		}
		nb[n.Var] = t
		return nb, true
	}
	rec = func(b refBinding, i int) {
		if i == len(patterns) {
			out = append(out, b)
			return
		}
		tp := patterns[i]
		for _, tr := range triples {
			b1, ok := match(tp.S, tr.S, b)
			if !ok {
				continue
			}
			b2, ok := match(tp.P, tr.P, b1)
			if !ok {
				continue
			}
			b3, ok := match(tp.O, tr.O, b2)
			if !ok {
				continue
			}
			rec(b3, i+1)
		}
	}
	rec(refBinding{}, 0)
	return out
}

// canonical renders a solution multiset deterministically.
func canonical(vars []string, sols []refBinding) []string {
	out := make([]string, len(sols))
	for i, s := range sols {
		var b strings.Builder
		for _, v := range vars {
			if t, ok := s[v]; ok {
				b.WriteString(t.String())
			}
			b.WriteByte('\x00')
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// randomGraph builds a small random graph mixing IRIs and numeric
// literals.
func randomGraph(rng *rand.Rand, n int) []rdf.Triple {
	var ts []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for len(ts) < n {
		var obj rdf.Term
		if rng.Intn(3) == 0 {
			obj = rdf.NewInteger(int64(rng.Intn(20)))
		} else {
			obj = rdf.NewIRI(fmt.Sprintf("http://r/n%d", rng.Intn(8)))
		}
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://r/n%d", rng.Intn(8))),
			rdf.NewIRI(fmt.Sprintf("http://r/p%d", rng.Intn(4))),
			obj,
		)
		if !seen[tr] {
			seen[tr] = true
			ts = append(ts, tr)
		}
	}
	return ts
}

// randomPatterns builds 1–3 patterns over a shared variable pool so
// joins actually connect.
func randomPatterns(rng *rand.Rand) []TriplePattern {
	vars := []string{"a", "b", "c", "d"}
	node := func(allowLiteral bool) Node {
		switch rng.Intn(3) {
		case 0:
			return NewVarNode(vars[rng.Intn(len(vars))])
		case 1:
			return NewTermNode(rdf.NewIRI(fmt.Sprintf("http://r/n%d", rng.Intn(8))))
		default:
			if allowLiteral && rng.Intn(2) == 0 {
				return NewTermNode(rdf.NewInteger(int64(rng.Intn(20))))
			}
			return NewVarNode(vars[rng.Intn(len(vars))])
		}
	}
	n := 1 + rng.Intn(3)
	ps := make([]TriplePattern, n)
	for i := range ps {
		pred := NewTermNode(rdf.NewIRI(fmt.Sprintf("http://r/p%d", rng.Intn(4))))
		if rng.Intn(4) == 0 {
			pred = NewVarNode(vars[rng.Intn(len(vars))])
		}
		ps[i] = TriplePattern{S: node(false), P: pred, O: node(true)}
	}
	return ps
}

func patternVars(ps []TriplePattern) []string {
	seen := map[string]bool{}
	var out []string
	for _, tp := range ps {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if n.IsVar && !seen[n.Var] {
				seen[n.Var] = true
				out = append(out, n.Var)
			}
		}
	}
	sort.Strings(out)
	return out
}

func buildQuerySrc(ps []TriplePattern, vars []string, limit int) string {
	var b strings.Builder
	b.WriteString("SELECT")
	for _, v := range vars {
		b.WriteString(" ?" + v)
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range ps {
		b.WriteString("  " + tp.String() + "\n")
	}
	b.WriteString("}")
	if limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", limit)
	}
	return b.String()
}

func TestExecutorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		triples := randomGraph(rng, 5+rng.Intn(40))
		ps := randomPatterns(rng)
		vars := patternVars(ps)
		if len(vars) == 0 {
			continue
		}
		st := store.New()
		if err := st.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		src := buildQuerySrc(ps, vars, -1)
		res, err := NewEngine(st).QueryString(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ref := refSolve(triples, ps)

		gotSols := make([]refBinding, len(res.Rows))
		for i, row := range res.Rows {
			b := refBinding{}
			for j, v := range res.Vars {
				if Bound(row[j]) {
					b[v] = row[j]
				}
			}
			gotSols[i] = b
		}
		got := canonical(vars, gotSols)
		want := canonical(vars, ref)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d solutions, reference %d\n%s", trial, len(got), len(want), src)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: solution %d differs\n got %q\nwant %q\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

func TestExecutorLimitMatchesReferenceCount(t *testing.T) {
	// The DFS short-circuit path must return exactly min(limit, total)
	// solutions.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		triples := randomGraph(rng, 5+rng.Intn(40))
		ps := randomPatterns(rng)
		vars := patternVars(ps)
		if len(vars) == 0 {
			continue
		}
		st := store.New()
		if err := st.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		total := len(refSolve(triples, ps))
		limit := rng.Intn(5)
		src := buildQuerySrc(ps, vars, limit)
		res, err := NewEngine(st).QueryString(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		want := total
		if limit < want {
			want = limit
		}
		if res.Len() != want {
			t.Fatalf("trial %d: rows = %d, want %d (total %d, limit %d)\n%s",
				trial, res.Len(), want, total, limit, src)
		}
	}
}

func TestExecutorAggregatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		triples := randomGraph(rng, 10+rng.Intn(40))
		st := store.New()
		if err := st.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		pred := fmt.Sprintf("http://r/p%d", rng.Intn(4))
		ps := []TriplePattern{{
			S: NewVarNode("s"),
			P: NewTermNode(rdf.NewIRI(pred)),
			O: NewVarNode("v"),
		}}
		src := fmt.Sprintf(`SELECT ?s (SUM(?v) AS ?sum) (COUNT(?v) AS ?n) WHERE { ?s <%s> ?v . } GROUP BY ?s`, pred)
		res, err := NewEngine(st).QueryString(src)
		if err != nil {
			t.Fatal(err)
		}
		// Reference aggregation.
		sums := map[rdf.Term]float64{}
		counts := map[rdf.Term]int{}
		groups := map[rdf.Term]bool{}
		for _, b := range refSolve(triples, ps) {
			s := b["s"]
			groups[s] = true
			counts[s]++ // COUNT counts bound values, numeric or not
			if n, ok := b["v"].Numeric(); ok {
				sums[s] += n
			}
		}
		if res.Len() != len(groups) {
			t.Fatalf("trial %d: groups = %d, want %d", trial, res.Len(), len(groups))
		}
		si, sumi, ni := res.Column("s"), res.Column("sum"), res.Column("n")
		for _, row := range res.Rows {
			s := row[si]
			gotSum, _ := row[sumi].Numeric()
			gotN, _ := row[ni].Numeric()
			if gotSum != sums[s] {
				t.Fatalf("trial %d: SUM(%v) = %v, want %v", trial, s, gotSum, sums[s])
			}
			if int(gotN) != counts[s] {
				t.Fatalf("trial %d: COUNT(%v) = %v, want %d", trial, s, gotN, counts[s])
			}
		}
	}
}

// refSolveOptional computes the left join of base solutions with an
// optional pattern group, per SPARQL OPTIONAL semantics.
func refSolveOptional(triples []rdf.Triple, base []refBinding, optional []TriplePattern) []refBinding {
	var out []refBinding
	for _, b := range base {
		// Substitute bound vars into the optional patterns, then solve.
		ext := refSolve(triples, substitute(optional, b))
		if len(ext) == 0 {
			out = append(out, b)
			continue
		}
		for _, e := range ext {
			merged := refBinding{}
			for k, v := range b {
				merged[k] = v
			}
			for k, v := range e {
				merged[k] = v
			}
			out = append(out, merged)
		}
	}
	return out
}

func substitute(ps []TriplePattern, b refBinding) []TriplePattern {
	out := make([]TriplePattern, len(ps))
	for i, tp := range ps {
		sub := func(n Node) Node {
			if n.IsVar {
				if t, ok := b[n.Var]; ok {
					return NewTermNode(t)
				}
			}
			return n
		}
		out[i] = TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
	}
	return out
}

func TestExecutorOptionalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 150; trial++ {
		triples := randomGraph(rng, 5+rng.Intn(30))
		base := randomPatterns(rng)[:1]
		opt := randomPatterns(rng)[:1]
		vars := patternVars(append(append([]TriplePattern(nil), base...), opt...))
		if len(vars) == 0 {
			continue
		}
		st := store.New()
		if err := st.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString("SELECT")
		for _, v := range vars {
			b.WriteString(" ?" + v)
		}
		b.WriteString(" WHERE {\n  " + base[0].String() + "\n  OPTIONAL { " + opt[0].String() + " }\n}")
		src := b.String()
		res, err := NewEngine(st).QueryString(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ref := refSolveOptional(triples, refSolve(triples, base), opt)

		gotSols := make([]refBinding, len(res.Rows))
		for i, row := range res.Rows {
			rb := refBinding{}
			for j, v := range res.Vars {
				if Bound(row[j]) {
					rb[v] = row[j]
				}
			}
			gotSols[i] = rb
		}
		got := canonical(vars, gotSols)
		want := canonical(vars, ref)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d solutions, reference %d\n%s", trial, len(got), len(want), src)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: solution %d differs\n got %q\nwant %q\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

func TestExecutorUnionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 150; trial++ {
		triples := randomGraph(rng, 5+rng.Intn(30))
		left := randomPatterns(rng)[:1]
		right := randomPatterns(rng)[:1]
		vars := patternVars(append(append([]TriplePattern(nil), left...), right...))
		if len(vars) == 0 {
			continue
		}
		st := store.New()
		if err := st.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString("SELECT")
		for _, v := range vars {
			b.WriteString(" ?" + v)
		}
		b.WriteString(" WHERE {\n  { " + left[0].String() + " } UNION { " + right[0].String() + " }\n}")
		src := b.String()
		res, err := NewEngine(st).QueryString(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ref := append(refSolve(triples, left), refSolve(triples, right)...)

		gotSols := make([]refBinding, len(res.Rows))
		for i, row := range res.Rows {
			rb := refBinding{}
			for j, v := range res.Vars {
				if Bound(row[j]) {
					rb[v] = row[j]
				}
			}
			gotSols[i] = rb
		}
		got := canonical(vars, gotSols)
		want := canonical(vars, ref)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d solutions, reference %d\n%s", trial, len(got), len(want), src)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: solution %d differs\n got %q\nwant %q\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

package sparql

import (
	"testing"
	"testing/quick"

	"re2xolap/internal/rdf"
)

// mapBinding is a test binding backed by a map.
type mapBinding map[string]rdf.Term

func (m mapBinding) value(name string) Value {
	if t, ok := m[name]; ok {
		return boundValue(t)
	}
	return Value{}
}

func evalString(t *testing.T, src string, b binding) (Value, error) {
	t.Helper()
	full := "SELECT ?x WHERE { ?x <http://p> ?y . FILTER (" + src + ") }"
	q, err := Parse(full)
	if err != nil {
		t.Fatalf("parse filter %q: %v", src, err)
	}
	var f Expr
	for _, el := range q.Where {
		if fe, ok := el.(FilterElement); ok {
			f = fe.Expr
		}
	}
	return evalExpr(f, b)
}

func TestEvalArithmetic(t *testing.T) {
	b := mapBinding{"v": rdf.NewInteger(10)}
	tests := []struct {
		src  string
		want float64
	}{
		{"?v + 5", 15},
		{"?v - 5", 5},
		{"?v * 3", 30},
		{"?v / 4", 2.5},
		{"-?v", -10},
		{"?v + 0.5", 10.5},
		{"ABS(-3)", 3},
		{"FLOOR(2.7)", 2},
		{"CEIL(2.1)", 3},
		{"ROUND(2.5)", 3},
		{"STRLEN(\"abcd\")", 4},
	}
	for _, tt := range tests {
		v, err := evalString(t, tt.src, b)
		if err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		n, ok := v.Term.Numeric()
		if !ok || n != tt.want {
			t.Errorf("%s = %v, want %v", tt.src, v.Term, tt.want)
		}
	}
}

func TestEvalBooleans(t *testing.T) {
	b := mapBinding{
		"v": rdf.NewInteger(10),
		"s": rdf.NewString("Hello World"),
		"i": rdf.NewIRI("http://ex.org/x"),
	}
	tests := []struct {
		src  string
		want bool
	}{
		{"?v = 10", true},
		{"?v = 10.0", true}, // numeric coercion
		{"?v != 11", true},
		{"?v < 11 && ?v > 9", true},
		{"?v < 9 || ?v > 9", true},
		{"!(?v = 10)", false},
		{"CONTAINS(?s, \"World\")", true},
		{"CONTAINS(LCASE(?s), \"world\")", true},
		{"STRSTARTS(?s, \"Hello\")", true},
		{"STRENDS(?s, \"World\")", true},
		{"REGEX(?s, \"^hello\", \"i\")", true},
		{"REGEX(?s, \"^hello\")", false},
		{"?v IN (5, 10, 15)", true},
		{"?v NOT IN (5, 15)", true},
		{"BOUND(?v)", true},
		{"BOUND(?missing)", false},
		{"ISIRI(?i)", true},
		{"ISIRI(?s)", false},
		{"ISLITERAL(?s)", true},
		{"ISNUMERIC(?v)", true},
		{"ISNUMERIC(?s)", false},
		{"IF(?v > 5, true, false)", true},
		{"COALESCE(?missing, ?v) = 10", true},
		{"\"b\" > \"a\"", true}, // string comparison
		{"?i = <http://ex.org/x>", true},
	}
	for _, tt := range tests {
		v, err := evalString(t, tt.src, b)
		if err != nil {
			t.Errorf("%s: error %v", tt.src, err)
			continue
		}
		got, err := v.ebv()
		if err != nil {
			t.Errorf("%s: ebv error %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	b := mapBinding{"s": rdf.NewString("x")}
	bad := []string{
		"?missing = 1", // unbound
		"?s + 1",       // non-numeric arithmetic
		"1 / 0",        // division by zero
		"LANG(5)",      // LANG of numeric literal is fine actually; keep others
	}
	for _, src := range bad[:3] {
		if v, err := evalString(t, src, b); err == nil {
			if ok, eerr := v.ebv(); eerr == nil && ok {
				t.Errorf("%s evaluated to true, want error", src)
			}
		}
	}
}

func TestEvalErrorPropagationInOr(t *testing.T) {
	// SPARQL: true || error = true; false && error = false
	b := mapBinding{"v": rdf.NewInteger(1)}
	v, err := evalString(t, "?v = 1 || ?missing = 2", b)
	if err != nil {
		t.Fatalf("true||error should not error: %v", err)
	}
	if ok, _ := v.ebv(); !ok {
		t.Error("true||error = false")
	}
	v, err = evalString(t, "?v = 2 && ?missing = 2", b)
	if err != nil {
		t.Fatalf("false&&error should not error: %v", err)
	}
	if ok, _ := v.ebv(); ok {
		t.Error("false&&error = true")
	}
}

func TestEvalLangAndDatatype(t *testing.T) {
	b := mapBinding{
		"l": rdf.NewLangString("ciao", "it"),
		"n": rdf.NewInteger(5),
	}
	v, err := evalString(t, "LANG(?l) = \"it\"", b)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := v.ebv(); !ok {
		t.Error("LANG mismatch")
	}
	v, err = evalString(t, "DATATYPE(?n) = <"+rdf.XSDInteger+">", b)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := v.ebv(); !ok {
		t.Error("DATATYPE mismatch")
	}
}

func TestOrderLess(t *testing.T) {
	unb := Value{}
	iri := boundValue(rdf.NewIRI("http://a"))
	s1 := boundValue(rdf.NewString("a"))
	n5 := boundValue(rdf.NewInteger(5))
	n10 := boundValue(rdf.NewInteger(10))
	tests := []struct {
		a, b Value
		want bool
	}{
		{unb, iri, true},
		{iri, s1, true},
		{n5, n10, true},
		{n10, n5, false},
		{n5, s1, true}, // numerics before plain strings
		{s1, n5, false},
	}
	for i, tt := range tests {
		if got := orderLess(tt.a, tt.b); got != tt.want {
			t.Errorf("case %d: orderLess = %v, want %v", i, got, tt.want)
		}
	}
}

// Property: numValue produces terms whose Numeric round-trips.
func TestQuickNumValueRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		v := numValue(float64(n))
		got, ok := v.Term.Numeric()
		return ok && got == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compareValues is antisymmetric for integers.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int16) bool {
		va := boundValue(rdf.NewInteger(int64(a)))
		vb := boundValue(rdf.NewInteger(int64(b)))
		c1, err1 := compareValues(va, vb)
		c2, err2 := compareValues(vb, va)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

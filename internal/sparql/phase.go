package sparql

import (
	"context"
	"strconv"
	"time"

	"re2xolap/internal/obs"
)

// PhaseTimings is the per-query wall-time breakdown the instrumented
// engine reports: parse (text → AST), plan (executor setup and
// short-circuit analysis; join-order selection itself happens inside
// the join phase, per BGP block), join (pattern matching, filters,
// closures — the bulk), aggregate (grouping/projection), and sort
// (ORDER BY/DISTINCT/LIMIT modifiers). Serialization happens above
// the engine, in the protocol layer, which accounts for it
// separately.
type PhaseTimings struct {
	Parse     time.Duration
	Plan      time.Duration
	Join      time.Duration
	Aggregate time.Duration
	Sort      time.Duration
	// Rows is the result row count (0 for ASK).
	Rows int
}

// Total sums the measured phases (engine-side time; the caller's wall
// clock may add queueing and serialization on top).
func (p PhaseTimings) Total() time.Duration {
	return p.Parse + p.Plan + p.Join + p.Aggregate + p.Sort
}

// Map returns the non-zero phases by name, for slow-query logging.
func (p PhaseTimings) Map() map[string]time.Duration {
	m := make(map[string]time.Duration, 5)
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"parse", p.Parse}, {"plan", p.Plan}, {"join", p.Join},
		{"aggregate", p.Aggregate}, {"sort", p.Sort},
	} {
		if ph.d > 0 {
			m[ph.name] = ph.d
		}
	}
	return m
}

// engineMetrics caches the engine's registry series so the per-query
// cost of metrics is a handful of atomic adds — no registry lookups
// on the hot path.
type engineMetrics struct {
	queries *obs.Counter
	errors  *obs.Counter
	rows    *obs.Counter
	total   *obs.Histogram
	phase   [5]*obs.Histogram // parse, plan, join, aggregate, sort
}

var phaseNames = [5]string{"parse", "plan", "join", "aggregate", "sort"}

// Instrument registers the engine's query metrics in reg and routes
// string-entry queries (QueryStringContext and the protocol layer
// above it) through the timed path. Call it at construction time,
// before the engine serves queries; a nil reg disables metrics again.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		e.metrics = nil
		return
	}
	m := &engineMetrics{
		queries: reg.Counter("re2xolap_sparql_queries_total", "Queries executed by the SPARQL engine."),
		errors:  reg.Counter("re2xolap_sparql_query_errors_total", "Queries that failed (syntax or execution)."),
		rows:    reg.Counter("re2xolap_sparql_rows_total", "Result rows produced."),
		total:   reg.Histogram("re2xolap_sparql_query_seconds", "End-to-end engine latency per query.", nil),
	}
	for i, name := range phaseNames {
		m.phase[i] = reg.Histogram("re2xolap_sparql_phase_seconds",
			"Engine wall time per execution phase.", nil, obs.L("phase", name))
	}
	e.metrics = m
}

// Instrumented reports whether Instrument installed a registry.
func (e *Engine) Instrumented() bool { return e.metrics != nil }

// QueryStringTimed parses and executes src like QueryStringContext,
// additionally reporting the per-phase wall-time breakdown. Metrics
// (if instrumented) and trace spans (if ctx carries one) are recorded
// as a side effect. The protocol layer uses this to fill QueryMeta
// and feed the slow-query log.
func (e *Engine) QueryStringTimed(ctx context.Context, src string) (*Results, PhaseTimings, error) {
	if rest, analyze, ok := explainPrefix(src); ok {
		var pt PhaseTimings
		start := time.Now()
		res, err := e.runExplain(ctx, rest, analyze)
		pt.Plan = time.Since(start)
		if res != nil {
			pt.Rows = res.Len()
		}
		return res, pt, err
	}
	var pt PhaseTimings
	start := time.Now()
	q, err := Parse(src)
	pt.Parse = time.Since(start)
	if err != nil {
		e.recordQuery(pt, obs.SpanFrom(ctx), err)
		return nil, pt, err
	}
	res, err := e.queryPhased(ctx, q, e.st.View(), &pt, nil)
	if res != nil {
		pt.Rows = res.Len()
	}
	e.recordQuery(pt, obs.SpanFrom(ctx), err)
	return res, pt, err
}

// recordQuery publishes one query's timings to the registry and the
// active trace span.
func (e *Engine) recordQuery(pt PhaseTimings, span *obs.Span, err error) {
	if m := e.metrics; m != nil {
		m.queries.Inc()
		if err != nil {
			m.errors.Inc()
		}
		m.rows.Add(int64(pt.Rows))
		m.total.ObserveDuration(pt.Total())
		for i, d := range [5]time.Duration{pt.Parse, pt.Plan, pt.Join, pt.Aggregate, pt.Sort} {
			m.phase[i].ObserveDuration(d)
		}
	}
	if span != nil {
		for i, d := range [5]time.Duration{pt.Parse, pt.Plan, pt.Join, pt.Aggregate, pt.Sort} {
			if d > 0 {
				span.Record(phaseNames[i], d)
			}
		}
		span.SetAttr("rows", strconv.Itoa(pt.Rows))
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"re2xolap/internal/rdf"
)

// This file implements the extensions the paper lists as future work
// (Section 8): synthesis with negative examples, and contrasting the
// measure values of two different example sets.

// SynthesizeWithNegatives runs ReOLAP synthesis over the positive
// tuples and then discards every candidate whose result would also
// cover one of the negative tuples: an interpretation is rejected when
// a negative tuple is witnessed by some observation at the candidate's
// levels. The paper's example use case: "countries like Germany but
// not like Hungary".
func (e *Engine) SynthesizeWithNegatives(ctx context.Context, positives []ExampleTuple, negatives []ExampleTuple) ([]Candidate, error) {
	cands, err := e.SynthesizeAll(ctx, positives)
	if err != nil {
		return nil, err
	}
	if len(negatives) == 0 {
		return cands, nil
	}
	var out []Candidate
	for _, cand := range cands {
		rejected := false
		for _, neg := range negatives {
			hit, err := e.negativeWitnessed(ctx, cand, neg)
			if err != nil {
				return nil, err
			}
			if hit {
				rejected = true
				break
			}
		}
		if !rejected {
			out = append(out, cand)
		}
	}
	return out, nil
}

// negativeWitnessed reports whether the negative tuple is witnessed by
// the data at the candidate's levels. Negative tuples shorter than the
// candidate's dimensionality apply to the first len(neg) dimensions.
func (e *Engine) negativeWitnessed(ctx context.Context, cand Candidate, neg ExampleTuple) (bool, error) {
	if len(neg) == 0 || len(neg) > len(cand.Query.Dims) {
		return false, nil
	}
	// Resolve each negative item to members at the corresponding level.
	var memberLists [][]rdf.Term
	for i, item := range neg {
		ms, err := e.MatchItem(ctx, item)
		if err != nil {
			return false, err
		}
		level := cand.Query.Dims[i].Level
		var members []rdf.Term
		for _, m := range ms {
			if m.Level.Key() == level.Key() {
				members = append(members, m.Member)
			}
		}
		if len(members) == 0 {
			return false, nil // negative item not at this level: no hit
		}
		memberLists = append(memberLists, members)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ASK { ?o a <%s> . ", e.Config.ObservationClass)
	for i, members := range memberLists {
		level := cand.Query.Dims[i].Level
		fmt.Fprintf(&b, "?o %s ?n%d . VALUES ?n%d {", pathExpr(level.Path), i, i)
		for _, m := range members {
			b.WriteByte(' ')
			b.WriteString(m.String())
		}
		b.WriteString(" } ")
	}
	b.WriteString("}")
	res, err := e.query(ctx, "negative-check", b.String())
	if err != nil {
		return false, fmt.Errorf("core: checking negative example: %w", err)
	}
	return res.Boolean, nil
}

// ContrastRow is one measure comparison between the two example
// anchors of a contrast query.
type ContrastRow struct {
	// Column is the aggregate output column compared.
	Column string
	// A and B are the aggregated values for the first and second
	// example anchors.
	A, B float64
	// Ratio is A/B (0 when B is 0).
	Ratio float64
}

// Contrast is the result of comparing two example sets under one
// shared interpretation.
type Contrast struct {
	// Query is the shared-interpretation query (grouping both
	// anchors' dimensions).
	Query *OLAPQuery
	// AnchorA and AnchorB are the resolved member combinations.
	AnchorA, AnchorB []rdf.Term
	// Rows holds one comparison per aggregate column.
	Rows []ContrastRow
}

// ContrastSets implements the "contrasting the measure values of two
// different sets of examples" use case: it synthesizes the
// interpretations shared by both example tuples (same levels), runs
// each query once, and reports the aggregated measures of the two
// anchors side by side. One Contrast is returned per shared
// interpretation.
func (e *Engine) ContrastSets(ctx context.Context, a, b ExampleTuple) ([]Contrast, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("core: contrast tuples must have the same arity (%d vs %d)", len(a), len(b))
	}
	// Shared interpretations: synthesize with both tuples as input;
	// SynthesizeAll already forces item i of both to the same level.
	cands, err := e.SynthesizeAll(ctx, []ExampleTuple{a, b})
	if err != nil {
		return nil, err
	}
	var out []Contrast
	for _, cand := range cands {
		levels := make([]string, len(cand.Query.Dims))
		for i, d := range cand.Query.Dims {
			levels[i] = d.Level.Key()
		}
		anchorA := make([]rdf.Term, len(cand.Query.Dims))
		for i, d := range cand.Query.Dims {
			if d.Example == nil {
				return nil, fmt.Errorf("core: contrast candidate lacks example anchor")
			}
			anchorA[i] = *d.Example
		}
		anchorB, err := e.resolveAnchor(ctx, cand, b)
		if err != nil {
			return nil, err
		}
		if anchorB == nil {
			continue
		}
		rs, err := e.Execute(ctx, cand.Query)
		if err != nil {
			return nil, err
		}
		ta := findTuple(rs, anchorA)
		tb := findTuple(rs, anchorB)
		if ta == nil || tb == nil {
			continue
		}
		c := Contrast{Query: cand.Query, AnchorA: anchorA, AnchorB: anchorB}
		var cols []string
		for _, agg := range cand.Query.Aggregates {
			cols = append(cols, agg.OutVar)
		}
		sort.Strings(cols)
		for _, col := range cols {
			va, vb := ta.Measures[col], tb.Measures[col]
			ratio := 0.0
			if vb != 0 {
				ratio = va / vb
			}
			c.Rows = append(c.Rows, ContrastRow{Column: col, A: va, B: vb, Ratio: ratio})
		}
		out = append(out, c)
	}
	return out, nil
}

// resolveAnchor finds the member combination of tuple t at the
// candidate's levels, witnessed by one observation.
func (e *Engine) resolveAnchor(ctx context.Context, cand Candidate, t ExampleTuple) ([]rdf.Term, error) {
	var b strings.Builder
	b.WriteString("SELECT")
	for i := range cand.Query.Dims {
		fmt.Fprintf(&b, " ?x%d", i)
	}
	fmt.Fprintf(&b, " WHERE { ?o a <%s> . ", e.Config.ObservationClass)
	for i, d := range cand.Query.Dims {
		ms, err := e.MatchItem(ctx, t[i])
		if err != nil {
			return nil, err
		}
		var members []rdf.Term
		for _, m := range ms {
			if m.Level.Key() == d.Level.Key() {
				members = append(members, m.Member)
			}
		}
		if len(members) == 0 {
			return nil, nil
		}
		fmt.Fprintf(&b, "?o %s ?x%d . VALUES ?x%d {", pathExpr(d.Level.Path), i, i)
		for _, m := range members {
			b.WriteByte(' ')
			b.WriteString(m.String())
		}
		b.WriteString(" } ")
	}
	b.WriteString("} LIMIT 1")
	res, err := e.query(ctx, "contrast-anchor", b.String())
	if err != nil {
		return nil, fmt.Errorf("core: resolving contrast anchor: %w", err)
	}
	if res.Len() == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// findTuple locates the result tuple whose dimension members equal the
// anchor.
func findTuple(rs *ResultSet, anchor []rdf.Term) *Tuple {
	for i := range rs.Tuples {
		t := &rs.Tuples[i]
		if len(t.Dims) != len(anchor) {
			continue
		}
		match := true
		for j := range anchor {
			if t.Dims[j] != anchor[j] {
				match = false
				break
			}
		}
		if match {
			return t
		}
	}
	return nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/par"
	"re2xolap/internal/qb"
	"re2xolap/internal/rdf"
	"re2xolap/internal/vgraph"
)

// Engine runs ReOLAP query synthesis against a SPARQL endpoint, using a
// bootstrapped virtual schema graph for all structural decisions.
type Engine struct {
	Client endpoint.Client
	Graph  *vgraph.Graph
	Config qb.Config

	// MaxCandidates caps how many members a single keyword may resolve
	// to before the search is truncated (defaults to 1000).
	MaxCandidates int
	// MaxCombinations caps the interpretation combinations explored
	// (defaults to 5000).
	MaxCombinations int
	// ValuesChunk is the VALUES block size for membership queries
	// (defaults to 500).
	ValuesChunk int
	// DisableMatchCache turns off the keyword-match LRU (used by the
	// ablation benchmarks).
	DisableMatchCache bool
	// Workers bounds the concurrent endpoint queries SynthesizeAll may
	// have in flight for matching and combination validation. 0 means
	// GOMAXPROCS; 1 selects the sequential baseline. The pool composes
	// with a resilient client's MaxInFlight limiter without deadlock:
	// the limiter slot is acquired per query and released when the
	// query returns, so a pool larger than the limiter merely queues.
	Workers int

	cache *matchCache
	steps *stepMetrics // per-step query series; nil without Instrument

	// skipped counts interpretation combinations dropped because their
	// validation query failed transiently (see SkippedCombinations).
	skipped atomic.Int64
}

// NewEngine returns a synthesis engine over the given endpoint and
// virtual graph.
func NewEngine(c endpoint.Client, g *vgraph.Graph, cfg qb.Config) *Engine {
	return &Engine{
		Client:          c,
		Graph:           g,
		Config:          cfg.WithDefaults(),
		MaxCandidates:   1000,
		MaxCombinations: 5000,
		ValuesChunk:     500,
		cache:           newMatchCache(256),
	}
}

// SkippedCombinations returns how many interpretation combinations
// were dropped across all Synthesize calls because their validation
// query failed transiently (endpoint flaking mid-synthesis). A
// non-zero value means candidate lists may be incomplete.
func (e *Engine) SkippedCombinations() int64 { return e.skipped.Load() }

// InvalidateCache drops cached keyword matches; call after the
// underlying data changes (e.g. together with vgraph.Refresh).
func (e *Engine) InvalidateCache() {
	if e.cache != nil {
		e.cache.purge()
	}
}

// MatchItem resolves one example item to its possible interpretations
// (Algorithm 1, lines 2–5): dimension members at specific levels.
// Results are cached per item (LRU), since exploratory sessions
// re-resolve the same keywords repeatedly. Concurrent misses for the
// same key coalesce into a single endpoint resolution (single-flight):
// followers wait for the leader's result instead of issuing duplicate
// keyword searches.
func (e *Engine) MatchItem(ctx context.Context, item ExampleItem) ([]Match, error) {
	if e.DisableMatchCache || e.cache == nil {
		return e.matchItemUncached(ctx, item)
	}
	cacheKey := item.Keyword + "\x00" + item.IRI
	for {
		ms, hit, f, leader := e.cache.lookupOrStart(cacheKey)
		if hit {
			return ms, nil
		}
		if leader {
			ms, err := e.matchItemUncached(ctx, item)
			if err == nil {
				e.cache.put(cacheKey, ms)
			}
			e.cache.endFlight(cacheKey, f, ms, err)
			return ms, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-f.done:
		}
		if f.err == nil {
			return f.ms, nil
		}
		// The leader failed — possibly transiently, possibly because its
		// own context was cancelled. Retry as leader rather than
		// propagating an error that was scoped to another caller.
	}
}

func (e *Engine) matchItemUncached(ctx context.Context, item ExampleItem) ([]Match, error) {
	type candidate struct {
		attribute, text string
	}
	cands := map[rdf.Term]candidate{}
	if item.IRI != "" {
		cands[rdf.NewIRI(item.IRI)] = candidate{}
	} else {
		kw := strings.ToLower(item.Keyword)
		if strings.TrimSpace(kw) == "" {
			return nil, fmt.Errorf("core: empty keyword in example item")
		}
		// Keyword resolution via the endpoint's full-text facilities
		// (the CONTAINS filter is index-accelerated by the store).
		q := fmt.Sprintf(
			`SELECT DISTINCT ?m ?q ?lit WHERE { ?m ?q ?lit . FILTER (ISLITERAL(?lit)) FILTER (CONTAINS(LCASE(STR(?lit)), %s)) FILTER (ISIRI(?m)) }`,
			rdf.NewString(kw))
		res, err := e.query(ctx, "keyword-search", q)
		if err != nil {
			return nil, fmt.Errorf("core: keyword search for %s: %w", item, err)
		}
		// Prefer exact (case-insensitive) matches: if the keyword equals
		// some attribute value verbatim, partial matches are noise
		// (e.g. "2014" must not also match the month "2014-01").
		exact := false
		for _, row := range res.Rows {
			if strings.EqualFold(row[2].Value, kw) {
				exact = true
				break
			}
		}
		for _, row := range res.Rows {
			if len(cands) >= e.MaxCandidates {
				break
			}
			if exact && !strings.EqualFold(row[2].Value, kw) {
				continue
			}
			m := row[0]
			if _, dup := cands[m]; dup {
				continue
			}
			cands[m] = candidate{attribute: row[1].Value, text: row[2].Value}
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	terms := make([]rdf.Term, 0, len(cands))
	for m := range cands {
		terms = append(terms, m)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Value < terms[j].Value })

	var out []Match
	for _, l := range e.Graph.Levels {
		members, err := e.levelMembership(ctx, l, terms)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			c := cands[m]
			out = append(out, Match{Member: m, Level: l, Attribute: c.attribute, MatchedText: c.text})
		}
	}
	return out, nil
}

// levelMembership filters candidate terms down to those that are
// members of level l. Small candidate sets use one early-exiting ASK
// per term (cost independent of the observation count); large sets
// fall back to chunked VALUES queries.
func (e *Engine) levelMembership(ctx context.Context, l *vgraph.Level, terms []rdf.Term) ([]rdf.Term, error) {
	var out []rdf.Term
	if len(terms) <= 32 {
		for _, t := range terms {
			q := fmt.Sprintf(`ASK { ?o a <%s> . ?o %s %s . }`,
				e.Config.ObservationClass, pathExpr(l.Path), t)
			res, err := e.query(ctx, "membership-ask", q)
			if err != nil {
				return nil, fmt.Errorf("core: membership check on level %s: %w", l, err)
			}
			if res.Boolean {
				out = append(out, t)
			}
		}
		return out, nil
	}
	chunk := e.ValuesChunk
	if chunk <= 0 {
		chunk = 500
	}
	for start := 0; start < len(terms); start += chunk {
		end := start + chunk
		if end > len(terms) {
			end = len(terms)
		}
		var vals strings.Builder
		for _, t := range terms[start:end] {
			vals.WriteString(t.String())
			vals.WriteByte(' ')
		}
		q := fmt.Sprintf(
			`SELECT DISTINCT ?m WHERE { VALUES ?m { %s} ?o a <%s> . ?o %s ?m . }`,
			vals.String(), e.Config.ObservationClass, pathExpr(l.Path))
		res, err := e.query(ctx, "membership-values", q)
		if err != nil {
			return nil, fmt.Errorf("core: membership check on level %s: %w", l, err)
		}
		for _, row := range res.Rows {
			out = append(out, row[0])
		}
	}
	return out, nil
}

// Candidate pairs a synthesized query with the interpretation that
// produced it, for presentation to the user.
type Candidate struct {
	Query *OLAPQuery
	// Matches holds, per example item, the interpretation used.
	Matches []Match
}

// Synthesize implements Algorithm 1 for a single example tuple: it
// interprets each item, combines interpretations, builds a query per
// valid combination, and validates each against the endpoint.
func (e *Engine) Synthesize(ctx context.Context, t ExampleTuple) ([]Candidate, error) {
	return e.SynthesizeAll(ctx, []ExampleTuple{t})
}

// SynthesizeAll generalizes Synthesize to several example tuples: item
// i of every tuple must resolve at the same level, and every tuple must
// be witnessed by at least one observation.
func (e *Engine) SynthesizeAll(ctx context.Context, tuples []ExampleTuple) ([]Candidate, error) {
	if len(tuples) == 0 || len(tuples[0]) == 0 {
		return nil, fmt.Errorf("core: empty example")
	}
	k := len(tuples[0])
	for _, t := range tuples {
		if len(t) != k {
			return nil, fmt.Errorf("core: example tuples have differing arity")
		}
	}

	// interps[i] lists the levels item i can take, with the matched
	// members per tuple.
	interps := make([][]interpretation, k)
	for i := 0; i < k; i++ {
		// Resolve item i of every tuple. Resolutions are independent
		// endpoint queries, so they run concurrently; the single-flight
		// match cache coalesces tuples sharing a keyword into one query.
		perTuple := make([][]Match, len(tuples))
		if err := par.Do(e.workers(), len(tuples), func(ti int) error {
			ms, err := e.MatchItem(ctx, tuples[ti][i])
			perTuple[ti] = ms
			return err
		}); err != nil {
			return nil, err
		}
		// level key → per-tuple matches
		byLevel := map[string][]([]Match){}
		levels := map[string]*vgraph.Level{}
		for ti := range tuples {
			for _, m := range perTuple[ti] {
				key := m.Level.Key()
				if _, ok := byLevel[key]; !ok {
					byLevel[key] = make([][]Match, len(tuples))
					levels[key] = m.Level
				}
				byLevel[key][ti] = append(byLevel[key][ti], m)
			}
		}
		var keys []string
		for key := range byLevel {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ms := byLevel[key]
			complete := true
			for _, tm := range ms {
				if len(tm) == 0 {
					complete = false // some tuple's item has no member at this level
					break
				}
			}
			if complete {
				interps[i] = append(interps[i], interpretation{level: levels[key], members: ms})
			}
		}
		if len(interps[i]) == 0 {
			return nil, nil // an item with no interpretation: no queries
		}
	}

	// Cartesian combination (Algorithm 1, lines 6–9) with a safety cap.
	// Enumeration runs first — the per-combination checks (distinct
	// dimensions, dedupe by level set) are cheap and order-dependent —
	// and the surviving combinations then validate against the endpoint
	// concurrently.
	type comboTask struct {
		levels  []*vgraph.Level
		members [][][]Match
	}
	var tasks []comboTask
	seen := map[string]bool{}
	idx := make([]int, k)
	combos := 0
	for {
		combos++
		if combos > e.MaxCombinations {
			break
		}
		combo := make([]interpretation, k)
		for i := range idx {
			combo[i] = interps[i][idx[i]]
		}
		levels := combo2levels(combo)
		if dedupeCombination(levels, seen) {
			tasks = append(tasks, comboTask{levels: levels, members: combo2members(combo)})
		}
		// advance the odometer
		pos := k - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < len(interps[pos]) {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			break
		}
	}

	// Validate concurrently over the worker pool. A worker observing a
	// prior abort decision does not start new endpoint queries; since
	// par.Do dispatches tasks in index order, every unstarted task has
	// a higher index than the first aborting one, so the ordered scan
	// below reproduces the sequential semantics exactly: candidates in
	// enumeration order, transient skips counted up to the first abort,
	// and the first abort error (by enumeration order) returned.
	type comboResult struct {
		cand Candidate
		ok   bool
		err  error
		skip bool // transient failure: degrade instead of aborting
	}
	results := make([]comboResult, len(tasks))
	var aborted atomic.Bool
	par.Do(e.workers(), len(tasks), func(i int) error {
		if aborted.Load() {
			return nil
		}
		cand, ok, err := e.validateCombination(ctx, tuples, tasks[i].levels, tasks[i].members)
		r := comboResult{cand: cand, ok: ok, err: err}
		if err != nil {
			// Classify now, not at scan time: the degrade conditions
			// (circuit state, context liveness) must reflect the moment
			// the validation failed, as they do sequentially.
			r.skip = endpoint.Transient(err) && !errors.Is(err, endpoint.ErrCircuitOpen) && ctx.Err() == nil
			if !r.skip {
				// Permanent failures mean the generated SPARQL is wrong
				// (a bug), and an open circuit means every remaining
				// validation would fail too: abort either way.
				aborted.Store(true)
			}
		}
		results[i] = r
		return nil
	})
	var out []Candidate
	for _, r := range results {
		switch {
		case r.err == nil:
			if r.ok {
				out = append(out, r.cand)
			}
		case r.skip:
			// One validation query failed transiently even after the
			// client's retries. Degrade: skip this combination and keep
			// synthesizing — partial candidates beat losing the whole
			// run. The skip is observable via SkippedCombinations.
			e.skipped.Add(1)
		default:
			return nil, r.err
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Query.Description < out[j].Query.Description
	})
	return out, nil
}

// workers resolves the engine's validation concurrency.
func (e *Engine) workers() int { return par.Workers(e.Workers) }

func combo2levels(combo []interpretation) []*vgraph.Level {
	ls := make([]*vgraph.Level, len(combo))
	for i, c := range combo {
		ls[i] = c.level
	}
	return ls
}

func combo2members(combo []interpretation) [][][]Match {
	ms := make([][][]Match, len(combo))
	for i, c := range combo {
		ms[i] = c.members
	}
	return ms
}

// interpretation is one way an example item can be read: a level plus
// the members matching each example tuple's item at that level.
type interpretation struct {
	level   *vgraph.Level
	members [][]Match
}

// dedupeCombination enforces the minimality criteria (distinct
// dimensions) and deduplicates by level set, recording new level sets
// in seen. It is the cheap, order-dependent half of what used to be
// tryCombination and must run sequentially in enumeration order.
func dedupeCombination(levels []*vgraph.Level, seen map[string]bool) bool {
	dims := map[string]bool{}
	for _, l := range levels {
		if dims[l.Dimension] {
			return false // duplicate dimension
		}
		dims[l.Dimension] = true
	}
	keys := make([]string, len(levels))
	for i, l := range levels {
		keys[i] = l.Key()
	}
	sort.Strings(keys)
	comboKey := strings.Join(keys, "\x01")
	if seen[comboKey] {
		return false
	}
	seen[comboKey] = true
	return true
}

// validateCombination validates one deduplicated combination against
// the data and assembles the candidate query. It touches no shared
// engine state, so combinations validate concurrently.
func (e *Engine) validateCombination(ctx context.Context, tuples []ExampleTuple, levels []*vgraph.Level, members [][][]Match) (Candidate, bool, error) {
	// Validate: every tuple must be witnessed by an observation linking
	// all its members simultaneously (correctness, Section 5.3). The
	// first tuple's witnessing members anchor the query example.
	var anchor []rdf.Term
	for ti := range tuples {
		witness, err := e.witness(ctx, levels, members, ti)
		if err != nil {
			return Candidate{}, false, err
		}
		if witness == nil {
			return Candidate{}, false, nil
		}
		if ti == 0 {
			anchor = witness
		}
	}

	examples := make([]*rdf.Term, len(levels))
	matches := make([]Match, len(levels))
	for i := range levels {
		m := anchor[i]
		examples[i] = &m
		// Recover the match metadata for presentation.
		for _, cand := range members[i][0] {
			if cand.Member == m {
				matches[i] = cand
				break
			}
		}
	}
	q := NewOLAPQuery(e.Config.ObservationClass, levels, examples, e.Graph.Measures)
	q.Description = q.Describe()
	return Candidate{Query: q, Matches: matches}, true, nil
}

// witness finds one observation linking a member choice for every item
// of tuple ti, returning the chosen members (aligned with levels), or
// nil if none exists.
func (e *Engine) witness(ctx context.Context, levels []*vgraph.Level, members [][][]Match, ti int) ([]rdf.Term, error) {
	var b strings.Builder
	b.WriteString("SELECT")
	for i := range levels {
		fmt.Fprintf(&b, " ?x%d", i)
	}
	b.WriteString(fmt.Sprintf(" WHERE { ?o a <%s> . ", e.Config.ObservationClass))
	for i, l := range levels {
		fmt.Fprintf(&b, "?o %s ?x%d . VALUES ?x%d {", pathExpr(l.Path), i, i)
		for _, m := range members[i][ti] {
			b.WriteByte(' ')
			b.WriteString(m.Member.String())
		}
		b.WriteString(" } ")
	}
	b.WriteString("} LIMIT 1")
	res, err := e.query(ctx, "witness", b.String())
	if err != nil {
		return nil, fmt.Errorf("core: validating combination: %w", err)
	}
	if res.Len() == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// Execute runs a structured OLAP query and decodes its results.
func (e *Engine) Execute(ctx context.Context, q *OLAPQuery) (*ResultSet, error) {
	return e.ExecuteTagged(ctx, q, "execute")
}

// ExecuteTagged is Execute with an explicit step tag, so callers that
// know why the query runs (session start, a refinement) can say so in
// traces and metrics.
func (e *Engine) ExecuteTagged(ctx context.Context, q *OLAPQuery, step string) (*ResultSet, error) {
	res, err := e.query(ctx, step, q.ToSPARQL())
	if err != nil {
		return nil, fmt.Errorf("core: executing query: %w", err)
	}
	return DecodeResults(q, res)
}

package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
	"re2xolap/internal/testkg"
)

// parFixture builds an engine over the standard fixture with the given
// worker count, exposing the counting in-process client.
func parFixture(t *testing.T, workers int) (*Engine, *endpoint.InProcess) {
	t.Helper()
	_, c, g := testkg.BootstrapFixture(t, nil)
	e := NewEngine(c, g, testkg.Config())
	e.Workers = workers
	return e, c
}

func descriptions(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Query.Description
	}
	return out
}

// TestSynthesizeAllParallelMatchesSequential asserts the parallel
// validation path reproduces the sequential candidate set exactly,
// including order, for single- and multi-item examples.
func TestSynthesizeAllParallelMatchesSequential(t *testing.T) {
	inputs := [][]ExampleTuple{
		{Keywords("Germany")},
		{Keywords("Germany", "2014")},
		{Keywords("Germany", "2014"), Keywords("France", "2015")},
		{Keywords("Asia")},
	}
	for _, tuples := range inputs {
		seq, _ := parFixture(t, 1)
		par, _ := parFixture(t, 4)
		want, err := seq.SynthesizeAll(context.Background(), tuples)
		if err != nil {
			t.Fatalf("sequential %v: %v", tuples, err)
		}
		got, err := par.SynthesizeAll(context.Background(), tuples)
		if err != nil {
			t.Fatalf("parallel %v: %v", tuples, err)
		}
		wd, gd := descriptions(want), descriptions(got)
		if len(wd) != len(gd) {
			t.Fatalf("%v: candidates %d (par) vs %d (seq):\npar: %v\nseq: %v", tuples, len(gd), len(wd), gd, wd)
		}
		for i := range wd {
			if wd[i] != gd[i] {
				t.Errorf("%v: candidate %d: %q (par) vs %q (seq)", tuples, i, gd[i], wd[i])
			}
		}
		if s, p := seq.SkippedCombinations(), par.SkippedCombinations(); s != p {
			t.Errorf("%v: skipped %d (par) vs %d (seq)", tuples, p, s)
		}
	}
}

// gateClient wraps a client and blocks the first query until released,
// so a test can guarantee followers pile up behind an in-flight leader.
type gateClient struct {
	inner endpoint.Client
	gate  chan struct{}
	once  sync.Once
}

func (c *gateClient) Query(ctx context.Context, q string) (*sparql.Results, error) {
	c.once.Do(func() {
		select {
		case <-c.gate:
		case <-ctx.Done():
		}
	})
	return c.inner.Query(ctx, q)
}

// TestMatchItemSingleFlight asserts that N concurrent MatchItem calls
// for the same keyword issue the queries of exactly one resolution:
// followers wait on the leader's flight instead of duplicating the
// endpoint work.
func TestMatchItemSingleFlight(t *testing.T) {
	// Baseline: how many endpoint queries does one cold resolution cost?
	e1, c1 := parFixture(t, 1)
	if _, err := e1.MatchItem(context.Background(), NewKeyword("Germany")); err != nil {
		t.Fatal(err)
	}
	baseline := c1.QueryCount()
	if baseline == 0 {
		t.Fatal("baseline resolution issued no queries")
	}

	// Concurrent: 8 callers race on a cold cache; the gate holds the
	// leader's first query until everyone has had time to register as a
	// follower on the flight.
	e2, c2 := parFixture(t, 4)
	gc := &gateClient{inner: e2.Client, gate: make(chan struct{})}
	e2.Client = gc
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	lens := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms, err := e2.MatchItem(context.Background(), NewKeyword("Germany"))
			errs[i], lens[i] = err, len(ms)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the flight
	close(gc.gate)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if lens[i] != lens[0] {
			t.Errorf("caller %d saw %d matches, caller 0 saw %d", i, lens[i], lens[0])
		}
	}
	if got := c2.QueryCount(); got != baseline {
		t.Errorf("concurrent resolutions issued %d queries, want %d (single-flight)", got, baseline)
	}
}

// failDestWitness injects a permanent-looking transient failure into
// every witness query that touches the dest dimension, independent of
// call order — a deterministic way to force degraded mode under both
// sequential and parallel validation.
type failDestWitness struct {
	inner endpoint.Client
}

func (c *failDestWitness) Query(ctx context.Context, q string) (*sparql.Results, error) {
	if strings.HasPrefix(q, "SELECT ?x0") && strings.Contains(q, "<"+testkg.NS+"dest>") {
		return nil, endpoint.MarkRetryable(context.DeadlineExceeded)
	}
	return c.inner.Query(ctx, q)
}

// TestSynthesizeAllDegradedModeParallel asserts the PR-1 degraded-mode
// semantics survive parallel validation: a transiently failing
// combination is skipped (and counted), the rest still synthesize, and
// sequential and parallel agree.
func TestSynthesizeAllDegradedModeParallel(t *testing.T) {
	run := func(workers int) ([]string, int64) {
		e, _ := parFixture(t, workers)
		e.Client = &failDestWitness{inner: e.Client}
		cands, err := e.SynthesizeAll(context.Background(), []ExampleTuple{Keywords("Germany")})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return descriptions(cands), e.SkippedCombinations()
	}
	seqDesc, seqSkip := run(1)
	parDesc, parSkip := run(4)
	if seqSkip != 1 || parSkip != 1 {
		t.Errorf("skipped: seq=%d par=%d, want 1 each", seqSkip, parSkip)
	}
	if len(seqDesc) != len(parDesc) {
		t.Fatalf("candidates: seq=%v par=%v", seqDesc, parDesc)
	}
	for i := range seqDesc {
		if seqDesc[i] != parDesc[i] {
			t.Errorf("candidate %d: seq=%q par=%q", i, seqDesc[i], parDesc[i])
		}
	}
	for _, d := range seqDesc {
		if strings.Contains(d, "Dest") || strings.Contains(d, "dest") {
			t.Errorf("dest combination should have been skipped, got %q", d)
		}
	}
}

// TestSynthesizeAllPoolLargerThanLimiter drives a worker pool through a
// resilient client whose MaxInFlight is far smaller than the pool:
// excess workers must queue on the limiter, not deadlock.
func TestSynthesizeAllPoolLargerThanLimiter(t *testing.T) {
	_, c, g := testkg.BootstrapFixture(t, nil)
	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	rc := endpoint.NewResilient(c, endpoint.WithPolicy(endpoint.Policy{MaxRetries: 2, MaxInFlight: 2, Sleep: noSleep}))
	e := NewEngine(rc, g, testkg.Config())
	e.Workers = 8

	done := make(chan struct{})
	var cands []Candidate
	var err error
	go func() {
		defer close(done)
		cands, err = e.SynthesizeAll(context.Background(),
			[]ExampleTuple{Keywords("Germany", "2014"), Keywords("France", "2015")})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SynthesizeAll deadlocked with Workers=8 over MaxInFlight=2")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates synthesized")
	}
}

// TestSynthesizeAllConcurrentEngines hammers one shared engine from
// several goroutines (the -race check for the cache, single-flight
// table, and skip counter).
func TestSynthesizeAllConcurrentEngines(t *testing.T) {
	e, _ := parFixture(t, 4)
	inputs := []ExampleTuple{
		Keywords("Germany"),
		Keywords("Asia"),
		Keywords("Germany", "2014"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := e.SynthesizeAll(context.Background(), []ExampleTuple{inputs[(g+i)%len(inputs)]}); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

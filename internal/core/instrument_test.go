package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"re2xolap/internal/obs"
)

func TestInstrumentStepMetrics(t *testing.T) {
	e := fixtureEngine(t)
	reg := obs.NewRegistry()
	e.Instrument(reg)
	if _, err := e.MatchItem(context.Background(), NewKeyword("Germany")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Keyword resolution issues one search plus membership checks; the
	// exact split varies, but both step families must be present.
	for _, want := range []string{
		`re2xolap_core_step_queries_total{step="keyword-search"} 1`,
		`re2xolap_core_step_query_seconds_count{step="keyword-search"} 1`,
		`step="membership-`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "step_query_errors_total") {
		errLines := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "step_query_errors_total{") && !strings.HasSuffix(line, " 0") {
				errLines++
			}
		}
		if errLines != 0 {
			t.Errorf("unexpected step errors:\n%s", out)
		}
	}
}

func TestExecuteTagged(t *testing.T) {
	e := fixtureEngine(t)
	reg := obs.NewRegistry()
	e.Instrument(reg)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany", "2014"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if _, err := e.ExecuteTagged(context.Background(), cands[0].Query, "refine:topk"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `re2xolap_core_step_queries_total{step="refine:topk"} 1`) {
		t.Errorf("missing refine:topk series:\n%s", buf.String())
	}
}

package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// stepMetrics publishes per-step query series, created lazily because
// the step vocabulary is open-ended (refinements produce "refine:…"
// tags at runtime).
type stepMetrics struct {
	reg *obs.Registry

	mu      sync.Mutex
	queries map[string]*obs.Counter
	errors  map[string]*obs.Counter
	seconds map[string]*obs.Histogram
}

// Instrument attaches a metrics registry: every synthesis step's
// endpoint queries get counted and timed under
// re2xolap_core_step_queries_total / step_query_errors_total /
// step_query_seconds with a step label. Call before the first query.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.steps = &stepMetrics{
		reg:     reg,
		queries: make(map[string]*obs.Counter),
		errors:  make(map[string]*obs.Counter),
		seconds: make(map[string]*obs.Histogram),
	}
}

// record is nil-safe per-step accounting.
func (m *stepMetrics) record(step string, wall time.Duration, err error) {
	if m == nil {
		return
	}
	m.mu.Lock()
	q, ok := m.queries[step]
	if !ok {
		l := obs.L("step", step)
		q = m.reg.Counter("re2xolap_core_step_queries_total",
			"Endpoint queries issued per synthesis step.", l)
		m.queries[step] = q
		m.errors[step] = m.reg.Counter("re2xolap_core_step_query_errors_total",
			"Failed endpoint queries per synthesis step.", l)
		m.seconds[step] = m.reg.Histogram("re2xolap_core_step_query_seconds",
			"Endpoint query latency per synthesis step.", nil, l)
	}
	errc, sec := m.errors[step], m.seconds[step]
	m.mu.Unlock()
	q.Inc()
	sec.ObserveDuration(wall)
	if err != nil {
		errc.Inc()
	}
}

// StepStat is the per-step timing summary StepStats reports: query
// and error counts, total endpoint time, and latency quantiles
// estimated from the step's histogram.
type StepStat struct {
	Step         string
	Queries      int64
	Errors       int64
	TotalSeconds float64
	P50, P95     float64
	P99          float64
}

// StepStats summarizes the per-step query accounting since Instrument,
// sorted by step name. Nil (engine not instrumented) yields nil, so
// report printers need no separate branch.
func (e *Engine) StepStats() []StepStat {
	m := e.steps
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StepStat, 0, len(m.queries))
	for step, q := range m.queries {
		h := m.seconds[step]
		out = append(out, StepStat{
			Step:         step,
			Queries:      q.Value(),
			Errors:       m.errors[step].Value(),
			TotalSeconds: h.Sum(),
			P50:          h.Quantile(0.5),
			P95:          h.Quantile(0.95),
			P99:          h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// query issues one endpoint query tagged with the synthesis step that
// needs it, so traces, metrics, and the slow-query log can explain why
// the query ran. All Engine query paths go through here.
func (e *Engine) query(ctx context.Context, step, q string) (*sparql.Results, error) {
	res, meta, err := endpoint.QueryX(ctx, e.Client, endpoint.Request{
		Query: q,
		Opts:  endpoint.QueryOpts{Step: step},
	})
	e.steps.record(step, meta.Wall, err)
	return res, err
}

package core

import (
	"context"
	"fmt"
	"strings"

	"re2xolap/internal/vgraph"
)

// MeasureProfile summarizes the value distribution of one measure.
type MeasureProfile struct {
	Predicate string
	Label     string
	Count     int
	Min, Max  float64
	Avg       float64
}

// Profile is the data-profiling summary the paper's preliminary
// prototype offered (Section 7.2): "general information and statistics
// about the dataset (e.g., listing the available dimension and the
// number of distinct members)", here extended with measure value
// statistics.
type Profile struct {
	Observations int
	Schema       vgraph.Stats
	Measures     []MeasureProfile
}

// Profile computes the dataset profile: schema statistics come from
// the virtual graph, measure statistics from one aggregate query per
// measure.
func (e *Engine) Profile(ctx context.Context) (*Profile, error) {
	p := &Profile{
		Observations: e.Graph.ObservationCount,
		Schema:       e.Graph.Stats(),
	}
	for _, m := range e.Graph.Measures {
		q := fmt.Sprintf(
			`SELECT (COUNT(?v) AS ?c) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (AVG(?v) AS ?av) WHERE { ?o a <%s> . ?o <%s> ?v . }`,
			e.Config.ObservationClass, m.Predicate)
		res, err := e.query(ctx, "profile-measure", q)
		if err != nil {
			return nil, fmt.Errorf("core: profiling measure %s: %w", m.Label, err)
		}
		mp := MeasureProfile{Predicate: m.Predicate, Label: m.Label}
		if res.Len() > 0 {
			get := func(col string) float64 {
				i := res.Column(col)
				if i < 0 {
					return 0
				}
				n, _ := res.Rows[0][i].Numeric()
				return n
			}
			mp.Count = int(get("c"))
			mp.Min = get("mn")
			mp.Max = get("mx")
			mp.Avg = get("av")
		}
		p.Measures = append(p.Measures, mp)
	}
	return p, nil
}

// String renders the profile for display.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observations: %d\n", p.Observations)
	fmt.Fprintf(&b, "schema: %d dimensions, %d hierarchies, %d levels, %d members\n",
		p.Schema.Dimensions, p.Schema.Hierarchies, p.Schema.Levels, p.Schema.Members)
	for _, m := range p.Measures {
		fmt.Fprintf(&b, "measure %s: count=%d min=%.1f max=%.1f avg=%.1f\n",
			m.Label, m.Count, m.Min, m.Max, m.Avg)
	}
	return b.String()
}

package core

import (
	"container/list"
	"sync"
)

// matchCache is a small LRU over MatchItem results, one of the
// "optimizations for core operations" the paper's system implements:
// exploratory sessions re-resolve the same keywords constantly
// (synthesis retries, contrast, negatives), and member matching is the
// only synthesis step that touches the full-text machinery.
type matchCache struct {
	mu   sync.Mutex
	max  int
	ll   *list.List
	byKV map[string]*list.Element
	// inflight holds one flight per key currently being resolved, so
	// concurrent misses coalesce into a single endpoint query
	// (single-flight). Entries are removed when the leader finishes.
	inflight map[string]*flight
}

type cacheEntry struct {
	key     string
	matches []Match
}

// flight is one in-progress resolution: the leader closes done after
// publishing ms/err, and followers read them only after done.
type flight struct {
	done chan struct{}
	ms   []Match
	err  error
}

func newMatchCache(max int) *matchCache {
	return &matchCache{
		max:      max,
		ll:       list.New(),
		byKV:     map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// lookupOrStart atomically checks the cache and the in-flight table:
// a hit returns the cached matches; a miss with a resolution already
// in flight returns that flight to wait on; otherwise the caller
// becomes the leader of a new flight (last result true) and must call
// endFlight when done.
func (c *matchCache) lookupOrStart(key string) ([]Match, bool, *flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKV[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).matches, true, nil, false
	}
	if f, ok := c.inflight[key]; ok {
		return nil, false, f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return nil, false, f, true
}

// endFlight publishes the leader's outcome and wakes the followers.
func (c *matchCache) endFlight(key string, f *flight, ms []Match, err error) {
	c.mu.Lock()
	f.ms, f.err = ms, err
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// get returns the cached matches and whether the key was present.
func (c *matchCache) get(key string) ([]Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKV[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).matches, true
}

// put stores matches for key, evicting the least recently used entry
// beyond capacity.
func (c *matchCache) put(key string, matches []Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKV[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).matches = matches
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, matches: matches})
	c.byKV[key] = el
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKV, last.Value.(*cacheEntry).key)
	}
}

// purge empties the cache (called when the data may have changed).
func (c *matchCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKV = map[string]*list.Element{}
}

// len returns the number of cached keys.
func (c *matchCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package core

import (
	"sort"

	"re2xolap/internal/rdf"
)

// The paper leaves "the problem of ranking interpretations to future
// work" (Section 4.1). RankCandidates implements a deterministic
// heuristic ordering of synthesized candidates:
//
//  1. Interpretations whose matches came from rdfs:label attributes
//     rank above matches on other attributes (labels are the intended
//     human names).
//  2. Interpretations grouping at finer levels rank above coarser ones
//     (the user named a concrete member; start specific, roll up via
//     refinement).
//  3. Smaller total member counts win ties (more selective view).
//
// The ordering is stable, so equally-scored candidates keep the
// synthesis order (alphabetical by description).
func RankCandidates(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := scoreCandidate(out[i]), scoreCandidate(out[j])
		if a.labelMatches != b.labelMatches {
			return a.labelMatches > b.labelMatches
		}
		if a.depthSum != b.depthSum {
			return a.depthSum < b.depthSum
		}
		return a.memberSum < b.memberSum
	})
	return out
}

type candidateScore struct {
	labelMatches int
	depthSum     int
	memberSum    int
}

func scoreCandidate(c Candidate) candidateScore {
	var s candidateScore
	for _, m := range c.Matches {
		if m.Attribute == rdf.RDFSLabel {
			s.labelMatches++
		}
	}
	for _, d := range c.Query.Dims {
		s.depthSum += d.Level.Depth
		s.memberSum += d.Level.MemberCount
	}
	return s
}

package core

import (
	"strings"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/vgraph"
)

// buildTestQuery assembles an OLAPQuery by hand over a two-level
// schema, without a store.
func buildTestQuery() (*OLAPQuery, *vgraph.Level, *vgraph.Level) {
	country := &vgraph.Level{Dimension: "http://x/dest", Path: []string{"http://x/dest"}, Depth: 1, Label: "Country"}
	continent := &vgraph.Level{Dimension: "http://x/dest", Path: []string{"http://x/dest", "http://x/inCont"}, Depth: 2, Parent: country, Label: "Continent"}
	country.Children = []*vgraph.Level{continent}
	anchor := rdf.NewIRI("http://x/de")
	q := NewOLAPQuery("http://x/Obs", []*vgraph.Level{country}, []*rdf.Term{&anchor},
		[]vgraph.Measure{{Predicate: "http://x/num", Label: "Num"}})
	return q, country, continent
}

func TestOLAPQueryAccessors(t *testing.T) {
	q, country, continent := buildTestQuery()
	if !q.HasLevel(country) {
		t.Error("HasLevel(country) = false")
	}
	if q.HasLevel(continent) {
		t.Error("HasLevel(continent) = true")
	}
	if q.DimOfDimension("http://x/dest") != 0 {
		t.Error("DimOfDimension(dest) != 0")
	}
	if q.DimOfDimension("http://x/other") != -1 {
		t.Error("DimOfDimension(other) != -1")
	}
	if c := q.AggColumnFor("SUM", 0); c == nil || c.OutVar != "sum_num" {
		t.Errorf("AggColumnFor(SUM) = %+v", c)
	}
	if q.AggColumnFor("SUM", 9) != nil {
		t.Error("AggColumnFor out of range not nil")
	}
	if q.AggColumnFor("MEDIAN", 0) != nil {
		t.Error("unknown func not nil")
	}
}

func TestOLAPQueryAddDimUnique(t *testing.T) {
	q, _, continent := buildTestQuery()
	i := q.AddDim(continent)
	if i != 1 || q.Dims[1].Var == q.Dims[0].Var {
		t.Errorf("AddDim = %d, var %q", i, q.Dims[1].Var)
	}
	// Adding the same level again still yields a unique variable.
	j := q.AddDim(continent)
	if q.Dims[j].Var == q.Dims[i].Var {
		t.Errorf("duplicate var %q", q.Dims[j].Var)
	}
}

func TestOLAPQueryToSPARQLFull(t *testing.T) {
	q, _, continent := buildTestQuery()
	q.AddDim(continent)
	q.Having = append(q.Having, MeasureFilter{Col: "sum_num", Op: ">", Value: 10.5, Why: "test"})
	q.DimFilters = append(q.DimFilters, DimValuesFilter{
		DimIdx: []int{0},
		Rows:   [][]rdf.Term{{rdf.NewIRI("http://x/de")}, {rdf.NewIRI("http://x/fr")}},
		Why:    "test",
	})
	text := q.ToSPARQL()
	for _, want := range []string{
		"?obs a <http://x/Obs>",
		"<http://x/dest>/<http://x/inCont>",
		"VALUES (?dest)",
		"HAVING (SUM(?m_num) > 10.5)",
		"GROUP BY",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("ToSPARQL missing %q:\n%s", want, text)
		}
	}
	// The generated text must parse.
	if _, err := sparql.Parse(text); err != nil {
		t.Fatalf("generated SPARQL does not parse: %v\n%s", err, text)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {-7, "-7"}, {2.5, "2.5"}, {0, "0"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.in); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestExampleItemAndTupleString(t *testing.T) {
	if got := NewKeyword("Asia").String(); got != `"Asia"` {
		t.Errorf("keyword = %s", got)
	}
	if got := NewMemberIRI("http://x/de").String(); got != "<http://x/de>" {
		t.Errorf("iri = %s", got)
	}
	tup := Keywords("Asia", "Germany")
	if got := tup.String(); got != `⟨"Asia", "Germany"⟩` {
		t.Errorf("tuple = %s", got)
	}
}

func TestLocalNameFallbacks(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://x/a#b", "b"},
		{"http://x/a/b", "b"},
		{"noslash", "noslash"},
	}
	for _, tt := range tests {
		if got := localName(tt.in); got != tt.want {
			t.Errorf("localName(%q) = %q", tt.in, got)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	q, _, _ := buildTestQuery()
	q.DimFilters = []DimValuesFilter{{
		DimIdx: []int{0},
		Rows:   [][]rdf.Term{{rdf.NewIRI("http://x/de")}},
	}}
	c := q.Clone()
	c.DimFilters[0].Rows[0][0] = rdf.NewIRI("http://x/changed")
	c.DimFilters[0].DimIdx[0] = 7
	if q.DimFilters[0].Rows[0][0].Value != "http://x/de" {
		t.Error("Clone shares DimFilters rows")
	}
	if q.DimFilters[0].DimIdx[0] != 0 {
		t.Error("Clone shares DimIdx")
	}
}

func TestDecodeResultsMissingColumns(t *testing.T) {
	q, _, _ := buildTestQuery()
	res := &sparql.Results{Vars: []string{"unrelated"}}
	if _, err := DecodeResults(q, res); err == nil {
		t.Error("missing dim column accepted")
	}
	res2 := &sparql.Results{Vars: []string{"dest"}}
	if _, err := DecodeResults(q, res2); err == nil {
		t.Error("missing aggregate column accepted")
	}
}

package core

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
	"re2xolap/internal/vgraph"
)

// AggFuncs are the aggregation functions ReOLAP instantiates for every
// measure, per Section 5.1.
var AggFuncs = []string{"SUM", "MIN", "MAX", "AVG"}

// DimRef is one grouped dimension of an OLAP query: a hierarchy level
// whose members form a GROUP BY column.
type DimRef struct {
	// Level identifies the dimension, hierarchy path, and granularity.
	Level *vgraph.Level
	// Var is the SPARQL variable name of the column.
	Var string
	// Example is the member from the user example that anchored this
	// dimension, if any (used by subsumption checks and refinements).
	Example *rdf.Term
}

// MeasureRef is one measure bound in the query body.
type MeasureRef struct {
	Predicate string
	Label     string
	// Var is the raw per-observation value variable.
	Var string
}

// AggColumn is one aggregated output column.
type AggColumn struct {
	// Func is SUM, MIN, MAX, or AVG.
	Func string
	// Measure indexes into OLAPQuery.Measures.
	Measure int
	// OutVar is the output column name, e.g. "sum_numApplicants".
	OutVar string
}

// MeasureFilter is a HAVING-style condition on an aggregate column,
// produced by the subset refinements.
type MeasureFilter struct {
	// Col is the OutVar of the filtered aggregate column.
	Col string
	// Op is one of "<", "<=", ">", ">=", "=".
	Op string
	// Value is the threshold.
	Value float64
	// Why explains the filter to the user (paper: explainability),
	// e.g. "top-3 by sum_numApplicants (descending)".
	Why string
}

// DimValuesFilter restricts a set of dimension columns to specific
// member combinations via a VALUES block, produced by the similarity
// refinement.
type DimValuesFilter struct {
	// DimIdx are indices into OLAPQuery.Dims.
	DimIdx []int
	// Rows are the allowed member combinations, aligned with DimIdx.
	Rows [][]rdf.Term
	// Why explains the restriction to the user.
	Why string
}

// OLAPQuery is the structured form of a reverse-engineered analytical
// query: a SELECT...WHERE...GROUP BY over observations, as produced by
// GetQuery and refined by the ExRef suite. The SPARQL text is derived,
// never stored, so refinements manipulate structure rather than
// strings.
type OLAPQuery struct {
	// ObsClass is the observation class IRI.
	ObsClass string
	// Dims are the grouped dimensions, in output order.
	Dims []DimRef
	// Measures are the bound measure predicates.
	Measures []MeasureRef
	// Aggregates are the aggregated output columns.
	Aggregates []AggColumn
	// Having are aggregate-value conditions (dice on measures).
	Having []MeasureFilter
	// DimFilters are member-combination restrictions (dice on members).
	DimFilters []DimValuesFilter
	// Description is a natural-language rendering (see Describe).
	Description string
}

// Clone returns a deep copy; refinements clone before mutating so the
// exploration history stays intact (backtracking, Figure 3).
func (q *OLAPQuery) Clone() *OLAPQuery {
	c := *q
	c.Dims = append([]DimRef(nil), q.Dims...)
	c.Measures = append([]MeasureRef(nil), q.Measures...)
	c.Aggregates = append([]AggColumn(nil), q.Aggregates...)
	c.Having = append([]MeasureFilter(nil), q.Having...)
	c.DimFilters = make([]DimValuesFilter, len(q.DimFilters))
	for i, f := range q.DimFilters {
		nf := f
		nf.DimIdx = append([]int(nil), f.DimIdx...)
		nf.Rows = make([][]rdf.Term, len(f.Rows))
		for j, r := range f.Rows {
			nf.Rows[j] = append([]rdf.Term(nil), r...)
		}
		c.DimFilters[i] = nf
	}
	return &c
}

// HasLevel reports whether the query already groups by the given level.
func (q *OLAPQuery) HasLevel(l *vgraph.Level) bool {
	for _, d := range q.Dims {
		if d.Level.Key() == l.Key() {
			return true
		}
	}
	return false
}

// DimOfDimension returns the index of the dimension grouped on the
// given dimension predicate, or -1.
func (q *OLAPQuery) DimOfDimension(dimension string) int {
	for i, d := range q.Dims {
		if d.Level.Dimension == dimension {
			return i
		}
	}
	return -1
}

// AggColumnFor returns the output column for (func, measure index), or
// nil.
func (q *OLAPQuery) AggColumnFor(fn string, measure int) *AggColumn {
	for i := range q.Aggregates {
		a := &q.Aggregates[i]
		if a.Func == fn && a.Measure == measure {
			return a
		}
	}
	return nil
}

// varName sanitizes an IRI local-name sequence into a SPARQL variable
// name.
func varName(parts ...string) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('_')
		}
		for _, r := range p {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
				b.WriteRune(r)
			}
		}
	}
	s := b.String()
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		s = "v_" + s
	}
	return s
}

func localName(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// NewOLAPQuery assembles a query over the given levels and measures,
// instantiating every aggregation function for every measure and
// assigning unique variable names.
func NewOLAPQuery(obsClass string, levels []*vgraph.Level, examples []*rdf.Term, measures []vgraph.Measure) *OLAPQuery {
	q := &OLAPQuery{ObsClass: obsClass}
	used := map[string]int{}
	uniq := func(name string) string {
		n := used[name]
		used[name]++
		if n == 0 {
			return name
		}
		return fmt.Sprintf("%s_%d", name, n)
	}
	for i, l := range levels {
		parts := make([]string, len(l.Path))
		for j, p := range l.Path {
			parts[j] = localName(p)
		}
		d := DimRef{Level: l, Var: uniq(varName(parts...))}
		if examples != nil && examples[i] != nil {
			d.Example = examples[i]
		}
		q.Dims = append(q.Dims, d)
	}
	for i, m := range measures {
		mv := uniq(varName("m", localName(m.Predicate)))
		q.Measures = append(q.Measures, MeasureRef{Predicate: m.Predicate, Label: m.Label, Var: mv})
		for _, fn := range AggFuncs {
			q.Aggregates = append(q.Aggregates, AggColumn{
				Func:    fn,
				Measure: i,
				OutVar:  uniq(varName(strings.ToLower(fn), localName(m.Predicate))),
			})
		}
	}
	return q
}

// AddDim appends a grouped dimension for the given level, assigning a
// variable name unique within the query, and returns its index.
func (q *OLAPQuery) AddDim(l *vgraph.Level) int {
	parts := make([]string, len(l.Path))
	for j, p := range l.Path {
		parts[j] = localName(p)
	}
	name := varName(parts...)
	taken := func(v string) bool {
		for _, d := range q.Dims {
			if d.Var == v {
				return true
			}
		}
		for _, m := range q.Measures {
			if m.Var == v {
				return true
			}
		}
		for _, a := range q.Aggregates {
			if a.OutVar == v {
				return true
			}
		}
		return false
	}
	v := name
	for i := 1; taken(v); i++ {
		v = fmt.Sprintf("%s_%d", name, i)
	}
	q.Dims = append(q.Dims, DimRef{Level: l, Var: v})
	return len(q.Dims) - 1
}

// ToSPARQL renders the query as executable SPARQL text.
func (q *OLAPQuery) ToSPARQL() string {
	var b strings.Builder
	b.WriteString("SELECT")
	for _, d := range q.Dims {
		b.WriteString(" ?" + d.Var)
	}
	for _, a := range q.Aggregates {
		m := q.Measures[a.Measure]
		fmt.Fprintf(&b, " (%s(?%s) AS ?%s)", a.Func, m.Var, a.OutVar)
	}
	b.WriteString(" WHERE {\n")
	fmt.Fprintf(&b, "  ?obs a <%s> .\n", q.ObsClass)
	for _, d := range q.Dims {
		fmt.Fprintf(&b, "  ?obs %s ?%s .\n", pathExpr(d.Level.Path), d.Var)
	}
	for _, m := range q.Measures {
		fmt.Fprintf(&b, "  ?obs <%s> ?%s .\n", m.Predicate, m.Var)
	}
	for _, f := range q.DimFilters {
		b.WriteString("  VALUES (")
		for i, di := range f.DimIdx {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + q.Dims[di].Var)
		}
		b.WriteString(") {")
		for _, row := range f.Rows {
			b.WriteString(" (")
			for i, t := range row {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t.String())
			}
			b.WriteString(")")
		}
		b.WriteString(" }\n")
	}
	b.WriteString("}")
	if len(q.Dims) > 0 {
		b.WriteString(" GROUP BY")
		for _, d := range q.Dims {
			b.WriteString(" ?" + d.Var)
		}
	}
	for i, h := range q.Having {
		if i == 0 {
			b.WriteString(" HAVING")
		}
		col := q.aggByOutVar(h.Col)
		m := q.Measures[col.Measure]
		fmt.Fprintf(&b, " (%s(?%s) %s %s)", col.Func, m.Var, h.Op, formatFloat(h.Value))
	}
	return b.String()
}

func (q *OLAPQuery) aggByOutVar(out string) *AggColumn {
	for i := range q.Aggregates {
		if q.Aggregates[i].OutVar == out {
			return &q.Aggregates[i]
		}
	}
	return nil
}

func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

func pathExpr(path []string) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = "<" + p + ">"
	}
	return strings.Join(parts, "/")
}

// Describe renders the natural-language description of the query in
// the templated style of Section 5.1, e.g.
//
//	Return SUM(Num Applicants) grouped by "Country Origin / In
//	Continent" and "Country Destination" where sum_numApplicants > 100.
func (q *OLAPQuery) Describe() string {
	var b strings.Builder
	b.WriteString("Return ")
	for i, m := range q.Measures {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "SUM/MIN/MAX/AVG(%s)", m.Label)
	}
	if len(q.Dims) > 0 {
		b.WriteString(" grouped by ")
		for i, d := range q.Dims {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%q", levelDescription(d.Level))
		}
	}
	for _, h := range q.Having {
		fmt.Fprintf(&b, ", keeping %s", h.Why)
	}
	for _, f := range q.DimFilters {
		fmt.Fprintf(&b, ", restricted to %s", f.Why)
	}
	return b.String()
}

// levelDescription renders a level as "Dimension / Sub Level" using the
// labels collected at bootstrap.
func levelDescription(l *vgraph.Level) string {
	var labels []string
	for cur := l; cur != nil; cur = cur.Parent {
		labels = append([]string{cur.Label}, labels...)
	}
	return strings.Join(labels, " / ")
}

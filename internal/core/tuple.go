// Package core implements ReOLAP, the paper's query synthesis
// algorithm (Section 5): it reverse-engineers SPARQL OLAP queries from
// example tuples of dimension-member attribute values, using the
// virtual schema graph to avoid touching the triplestore for structure
// and the endpoint's full-text facilities to resolve keywords to
// members. It also defines the structured OLAP query representation
// that the refinement suite in internal/refine manipulates.
package core

import (
	"fmt"
	"strings"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/vgraph"
)

// ExampleItem is one component a_i of an example tuple: either a
// keyword to be resolved against member attributes ("Germany", "2014")
// or a concrete member IRI the user already knows.
type ExampleItem struct {
	Keyword string
	IRI     string // set instead of Keyword for direct member references
}

// NewKeyword returns a keyword example item.
func NewKeyword(kw string) ExampleItem { return ExampleItem{Keyword: kw} }

// NewMemberIRI returns a direct-IRI example item.
func NewMemberIRI(iri string) ExampleItem { return ExampleItem{IRI: iri} }

// String renders the item for display.
func (e ExampleItem) String() string {
	if e.IRI != "" {
		return "<" + e.IRI + ">"
	}
	return fmt.Sprintf("%q", e.Keyword)
}

// ExampleTuple is one example tuple t_E: ⟨a_1, ..., a_k⟩.
type ExampleTuple []ExampleItem

// Keywords builds an example tuple from keyword strings.
func Keywords(kws ...string) ExampleTuple {
	t := make(ExampleTuple, len(kws))
	for i, kw := range kws {
		t[i] = NewKeyword(kw)
	}
	return t
}

// String renders the tuple as ⟨"a", "b"⟩.
func (t ExampleTuple) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = e.String()
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Match records one interpretation of an example item: a dimension
// member at a specific level, together with the attribute that matched.
type Match struct {
	// Member is the dimension member IRI.
	Member rdf.Term
	// Level is the virtual-graph level the member belongs to.
	Level *vgraph.Level
	// Attribute is the predicate whose literal matched the keyword
	// (empty for direct IRI items).
	Attribute string
	// MatchedText is the literal value that matched.
	MatchedText string
}

// Tuple is one answer tuple of an OLAP query: dimension member values
// aligned with the query's dimensions, plus the aggregated measures
// keyed by output column name.
type Tuple struct {
	Dims     []rdf.Term
	Measures map[string]float64
}

// ResultSet is the decoded output of executing an OLAPQuery.
type ResultSet struct {
	// Query is the query that produced the results.
	Query *OLAPQuery
	// Tuples holds one entry per GROUP BY group.
	Tuples []Tuple
}

// Len returns the number of tuples.
func (rs *ResultSet) Len() int { return len(rs.Tuples) }

// MatchesExample reports whether the tuple contains every example
// member of the query in its corresponding dimension position — the
// per-tuple subsumption check T_E ⊑ t used throughout the refinement
// methods.
func (rs *ResultSet) MatchesExample(t Tuple) bool {
	for di, d := range rs.Query.Dims {
		if d.Example == nil {
			continue
		}
		if di >= len(t.Dims) || t.Dims[di] != *d.Example {
			return false
		}
	}
	return true
}

// ExampleTuples returns the indices of tuples matching the example.
func (rs *ResultSet) ExampleTuples() []int {
	var out []int
	for i, t := range rs.Tuples {
		if rs.MatchesExample(t) {
			out = append(out, i)
		}
	}
	return out
}

// DecodeResults converts raw SPARQL results into a ResultSet for q. The
// result columns must be the ones produced by q.ToSPARQL.
func DecodeResults(q *OLAPQuery, res *sparql.Results) (*ResultSet, error) {
	rs := &ResultSet{Query: q}
	dimCols := make([]int, len(q.Dims))
	for i, d := range q.Dims {
		c := res.Column(d.Var)
		if c < 0 {
			return nil, fmt.Errorf("core: result column ?%s missing", d.Var)
		}
		dimCols[i] = c
	}
	aggCols := make([]int, len(q.Aggregates))
	for i, a := range q.Aggregates {
		c := res.Column(a.OutVar)
		if c < 0 {
			return nil, fmt.Errorf("core: result column ?%s missing", a.OutVar)
		}
		aggCols[i] = c
	}
	for _, row := range res.Rows {
		t := Tuple{Dims: make([]rdf.Term, len(dimCols)), Measures: map[string]float64{}}
		for i, c := range dimCols {
			t.Dims[i] = row[c]
		}
		for i, c := range aggCols {
			if n, ok := row[c].Numeric(); ok {
				t.Measures[q.Aggregates[i].OutVar] = n
			}
		}
		rs.Tuples = append(rs.Tuples, t)
	}
	return rs, nil
}

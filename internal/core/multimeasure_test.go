package core

import (
	"context"
	"testing"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/vgraph"
)

// TestMultiMeasurePipeline exercises synthesis and execution over a KG
// with two measures: every aggregation function is instantiated for
// both, per Section 5.1.
func TestMultiMeasurePipeline(t *testing.T) {
	spec := datagen.Spec{
		Name: "trade",
		NS:   "http://ex.org/trade/",
		Dimensions: []datagen.DimSpec{
			{Pred: "country", Label: "Country", Members: 10},
			{Pred: "year", Label: "Year", Members: 5},
		},
		Measures: []datagen.MeasureSpec{
			{Pred: "imports", Label: "Imports", Scale: 100},
			{Pred: "exports", Label: "Exports", Scale: 200},
		},
		Observations: 200,
		Seed:         11,
	}
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	c := endpoint.NewInProcess(st)
	g, err := vgraph.Bootstrap(context.Background(), c, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Measures) != 2 {
		t.Fatalf("measures = %d, want 2", len(g.Measures))
	}
	e := NewEngine(c, g, spec.Config())
	ctx := context.Background()
	cands, err := e.Synthesize(ctx, Keywords("Country 3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	q := cands[0].Query
	if len(q.Measures) != 2 {
		t.Fatalf("query measures = %d, want 2", len(q.Measures))
	}
	if len(q.Aggregates) != 8 { // 4 functions × 2 measures
		t.Fatalf("aggregate columns = %d, want 8", len(q.Aggregates))
	}
	rs, err := e.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 10 {
		t.Errorf("groups = %d, want 10", rs.Len())
	}
	for _, tp := range rs.Tuples {
		if len(tp.Measures) != 8 {
			t.Fatalf("tuple measures = %d, want 8: %v", len(tp.Measures), tp.Measures)
		}
	}
	// Distinct columns must hold distinct sums (imports != exports scale).
	var sumImports, sumExports string
	for _, a := range q.Aggregates {
		if a.Func == "SUM" {
			if q.Measures[a.Measure].Label == "Imports" {
				sumImports = a.OutVar
			} else {
				sumExports = a.OutVar
			}
		}
	}
	diff := false
	for _, tp := range rs.Tuples {
		if tp.Measures[sumImports] != tp.Measures[sumExports] {
			diff = true
		}
	}
	if !diff {
		t.Error("imports and exports columns identical; measures conflated")
	}
}

package core

import (
	"context"
	"strings"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/testkg"
	"re2xolap/internal/vgraph"
)

func fixtureEngine(t *testing.T) *Engine {
	t.Helper()
	_, c, g := testkg.BootstrapFixture(t, nil)
	return NewEngine(c, g, testkg.Config())
}

func TestMatchItemKeyword(t *testing.T) {
	e := fixtureEngine(t)
	ms, err := e.MatchItem(context.Background(), NewKeyword("Germany"))
	if err != nil {
		t.Fatal(err)
	}
	// "Germany" is a country used both as origin and destination.
	var levels []string
	for _, m := range ms {
		if m.Member != testkg.IRI("de") {
			t.Errorf("unexpected member %v", m.Member)
		}
		levels = append(levels, m.Level.String())
		if m.Attribute != rdf.RDFSLabel {
			t.Errorf("attribute = %q", m.Attribute)
		}
	}
	want := map[string]bool{"origin": true, "dest": true}
	if len(levels) != 2 {
		t.Fatalf("levels = %v, want origin+dest", levels)
	}
	for _, l := range levels {
		if !want[l] {
			t.Errorf("unexpected level %s", l)
		}
	}
}

func TestMatchItemContinent(t *testing.T) {
	e := fixtureEngine(t)
	ms, err := e.MatchItem(context.Background(), NewKeyword("Asia"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 { // origin/inContinent and dest/inContinent? dest has no asian destinations
		// Destinations are all European in the fixture, so Asia matches
		// only origin/inContinent.
		t.Logf("matches: %d", len(ms))
	}
	foundOrigin := false
	for _, m := range ms {
		if m.Level.String() == "origin/inContinent" {
			foundOrigin = true
		}
		if m.Level.String() == "dest/inContinent" {
			t.Error("Asia matched as destination continent, but no asian destinations exist")
		}
	}
	if !foundOrigin {
		t.Error("Asia not matched at origin/inContinent")
	}
}

func TestMatchItemIRI(t *testing.T) {
	e := fixtureEngine(t)
	ms, err := e.MatchItem(context.Background(), NewMemberIRI(testkg.NS+"de"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("IRI matches = %d, want 2 (origin+dest)", len(ms))
	}
}

func TestMatchItemNoHit(t *testing.T) {
	e := fixtureEngine(t)
	ms, err := e.MatchItem(context.Background(), NewKeyword("atlantis"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("matches = %v, want none", ms)
	}
}

func TestSynthesizeSingleItem(t *testing.T) {
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany"))
	if err != nil {
		t.Fatal(err)
	}
	// Germany interpreted as origin country or destination country.
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	for _, c := range cands {
		q := c.Query
		if len(q.Dims) != 1 {
			t.Errorf("dims = %d, want 1", len(q.Dims))
		}
		if len(q.Measures) != 1 || len(q.Aggregates) != 4 {
			t.Errorf("measures/aggs = %d/%d", len(q.Measures), len(q.Aggregates))
		}
		if q.Dims[0].Example == nil || *q.Dims[0].Example != testkg.IRI("de") {
			t.Errorf("example anchor = %v", q.Dims[0].Example)
		}
		if q.Description == "" {
			t.Error("missing description")
		}
	}
}

func TestSynthesizePaperExample(t *testing.T) {
	// Paper Section 5: input ⟨"Germany", "2014"⟩ produces exactly 2
	// queries: {origin,dest} country × refPeriod year.
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany", "2014"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		for _, c := range cands {
			t.Logf("got: %s", c.Query.Description)
		}
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	for _, c := range cands {
		q := c.Query
		if len(q.Dims) != 2 {
			t.Fatalf("dims = %d, want 2", len(q.Dims))
		}
		var hasYear, hasCountry bool
		for _, d := range q.Dims {
			switch d.Level.String() {
			case "refPeriod/inYear":
				hasYear = true
			case "origin", "dest":
				hasCountry = true
			default:
				t.Errorf("unexpected level %s", d.Level)
			}
		}
		if !hasYear || !hasCountry {
			t.Errorf("levels wrong: %s", q.Description)
		}
	}
}

func TestSynthesizeValidationRejectsUnwitnessed(t *testing.T) {
	// "Sweden" never appears as an origin in the fixture, so the
	// combination ⟨Sweden as origin⟩ must be rejected; only the
	// destination interpretation survives.
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Sweden"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1 (dest only)", len(cands))
	}
	if got := cands[0].Query.Dims[0].Level.String(); got != "dest" {
		t.Errorf("level = %s, want dest", got)
	}
}

func TestSynthesizeDistinctDimensionsOnly(t *testing.T) {
	// ⟨"Germany", "France"⟩: both can be origin or destination, but a
	// query cannot group the same dimension twice; valid combos are
	// (origin,dest) and (dest,origin) → deduplicated by level set →
	// plus validation. de→fr and fr→de both exist.
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany", "France"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		for _, c := range cands {
			t.Logf("got: %s", c.Query.Description)
		}
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	dims := map[string]bool{}
	for _, d := range cands[0].Query.Dims {
		dims[d.Level.Dimension] = true
	}
	if len(dims) != 2 {
		t.Errorf("duplicate dimension in %s", cands[0].Query.Description)
	}
}

func TestSynthesizeMultiTuple(t *testing.T) {
	// Two example tuples: ⟨Germany⟩ and ⟨Sweden⟩. Sweden is only a
	// destination, so the shared interpretation must be destination.
	e := fixtureEngine(t)
	cands, err := e.SynthesizeAll(context.Background(), []ExampleTuple{
		Keywords("Germany"), Keywords("Sweden"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if got := cands[0].Query.Dims[0].Level.String(); got != "dest" {
		t.Errorf("level = %s, want dest", got)
	}
}

func TestSynthesizeEmptyInput(t *testing.T) {
	e := fixtureEngine(t)
	if _, err := e.Synthesize(context.Background(), ExampleTuple{}); err == nil {
		t.Error("empty tuple accepted")
	}
	if _, err := e.SynthesizeAll(context.Background(), []ExampleTuple{
		Keywords("a"), Keywords("a", "b"),
	}); err == nil {
		t.Error("ragged tuples accepted")
	}
}

func TestExecutePaperTable2(t *testing.T) {
	// Reproduces the shape of Table 2: ("Germany", "2014") as
	// destination × year, summing applicants per destination and year.
	e := fixtureEngine(t)
	ctx := context.Background()
	cands, err := e.Synthesize(ctx, Keywords("Germany", "2014"))
	if err != nil {
		t.Fatal(err)
	}
	var destQ *OLAPQuery
	for _, c := range cands {
		for _, d := range c.Query.Dims {
			if d.Level.String() == "dest" {
				destQ = c.Query
			}
		}
	}
	if destQ == nil {
		t.Fatal("destination interpretation missing")
	}
	rs, err := e.Execute(ctx, destQ)
	if err != nil {
		t.Fatal(err)
	}
	// groups: (de,2014)=258 (100+150+8), (fr,2014)=70, (se,2014)=70,
	// (de,2015)=230, (fr,2015)=5, (se,2015)=60
	if rs.Len() != 6 {
		t.Fatalf("groups = %d, want 6", rs.Len())
	}
	sums := map[string]float64{}
	var sumCol string
	for _, a := range destQ.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	var di, yi int
	for i, d := range destQ.Dims {
		if d.Level.String() == "dest" {
			di = i
		} else {
			yi = i
		}
	}
	for _, tp := range rs.Tuples {
		sums[tp.Dims[di].Value+"|"+tp.Dims[yi].Value] = tp.Measures[sumCol]
	}
	if sums[testkg.NS+"de|"+testkg.NS+"y2014"] != 258 {
		t.Errorf("de/2014 = %v, want 258 (map: %v)", sums[testkg.NS+"de|"+testkg.NS+"y2014"], sums)
	}
	if sums[testkg.NS+"fr|"+testkg.NS+"y2015"] != 5 {
		t.Errorf("fr/2015 = %v, want 5", sums[testkg.NS+"fr|"+testkg.NS+"y2015"])
	}
	// Example subsumption: the (de, 2014) tuple matches the example.
	matched := rs.ExampleTuples()
	if len(matched) != 1 {
		t.Fatalf("example tuples = %v, want exactly 1", matched)
	}
	mt := rs.Tuples[matched[0]]
	if mt.Dims[di] != testkg.IRI("de") || mt.Dims[yi] != testkg.IRI("y2014") {
		t.Errorf("matched tuple = %v", mt.Dims)
	}
}

func TestToSPARQLParsesAndDescribes(t *testing.T) {
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Asia", "2014"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		text := c.Query.ToSPARQL()
		if !strings.Contains(text, "GROUP BY") {
			t.Errorf("missing GROUP BY: %s", text)
		}
		if !strings.Contains(text, "SUM(") {
			t.Errorf("missing SUM: %s", text)
		}
		// The description uses the predicate labels from the data.
		if !strings.Contains(c.Query.Description, "Num Applicants") {
			t.Errorf("description lacks measure label: %s", c.Query.Description)
		}
	}
}

func TestOLAPQueryClone(t *testing.T) {
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany"))
	if err != nil || len(cands) == 0 {
		t.Fatal(err)
	}
	q := cands[0].Query
	c := q.Clone()
	c.Having = append(c.Having, MeasureFilter{Col: q.Aggregates[0].OutVar, Op: ">", Value: 1})
	c.Dims[0].Var = "renamed"
	if len(q.Having) != 0 {
		t.Error("clone shares Having")
	}
	if q.Dims[0].Var == "renamed" {
		t.Error("clone shares Dims")
	}
}

func TestVarNameSanitization(t *testing.T) {
	tests := []struct{ in, want string }{
		{"abc", "abc"},
		{"a-b c", "abc"},
		{"9lives", "v_9lives"},
		{"", "v_"},
	}
	for _, tt := range tests {
		if got := varName(tt.in); got != tt.want {
			t.Errorf("varName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLevelDescription(t *testing.T) {
	base := &vgraph.Level{Label: "Country of Origin"}
	coarse := &vgraph.Level{Label: "In Continent", Parent: base}
	if got := levelDescription(coarse); got != "Country of Origin / In Continent" {
		t.Errorf("levelDescription = %q", got)
	}
}

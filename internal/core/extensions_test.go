package core

import (
	"context"
	"strings"
	"testing"

	"re2xolap/internal/testkg"
)

func TestSynthesizeWithNegatives(t *testing.T) {
	e := fixtureEngine(t)
	ctx := context.Background()

	// Positive "Germany" alone yields both origin and destination
	// interpretations.
	pos := []ExampleTuple{Keywords("Germany")}
	base, err := e.SynthesizeWithNegatives(ctx, pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("without negatives = %d, want 2", len(base))
	}

	// Negative "China": China appears as an origin but never as a
	// destination, so the origin interpretation is rejected and only
	// destination survives.
	cands, err := e.SynthesizeWithNegatives(ctx, pos, []ExampleTuple{Keywords("China")})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		for _, c := range cands {
			t.Logf("got: %s", c.Query.Description)
		}
		t.Fatalf("with negative = %d, want 1", len(cands))
	}
	if got := cands[0].Query.Dims[0].Level.String(); got != "dest" {
		t.Errorf("surviving level = %s, want dest", got)
	}
}

func TestSynthesizeWithNegativesNoMatchIsNoOp(t *testing.T) {
	e := fixtureEngine(t)
	ctx := context.Background()
	pos := []ExampleTuple{Keywords("Germany")}
	cands, err := e.SynthesizeWithNegatives(ctx, pos, []ExampleTuple{Keywords("atlantis")})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Errorf("unmatched negative rejected candidates: %d", len(cands))
	}
}

func TestNegativeWitnessedArityMismatch(t *testing.T) {
	e := fixtureEngine(t)
	ctx := context.Background()
	cands, err := e.Synthesize(ctx, Keywords("Germany"))
	if err != nil || len(cands) == 0 {
		t.Fatal(err)
	}
	// A negative longer than the candidate's dimensionality never hits.
	hit, err := e.negativeWitnessed(ctx, cands[0], Keywords("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("oversized negative reported as witnessed")
	}
}

func TestContrastSets(t *testing.T) {
	e := fixtureEngine(t)
	ctx := context.Background()
	// Germany vs France as example sets: shared interpretations are
	// origin-country and destination-country.
	cs, err := e.ContrastSets(ctx, Keywords("Germany"), Keywords("France"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("no contrasts")
	}
	var destContrast *Contrast
	for i := range cs {
		if cs[i].Query.Dims[0].Level.String() == "dest" {
			destContrast = &cs[i]
		}
	}
	if destContrast == nil {
		t.Fatal("destination contrast missing")
	}
	if destContrast.AnchorA[0] != testkg.IRI("de") || destContrast.AnchorB[0] != testkg.IRI("fr") {
		t.Errorf("anchors = %v vs %v", destContrast.AnchorA, destContrast.AnchorB)
	}
	// Fixture sums: destination de = 488, destination fr = 75.
	var sumRow *ContrastRow
	for i := range destContrast.Rows {
		if destContrast.Rows[i].Column == "sum_numApplicants" {
			sumRow = &destContrast.Rows[i]
		}
	}
	if sumRow == nil {
		t.Fatalf("sum row missing: %+v", destContrast.Rows)
	}
	if sumRow.A != 488 || sumRow.B != 75 {
		t.Errorf("contrast sums = %v vs %v, want 488 vs 75", sumRow.A, sumRow.B)
	}
	if sumRow.Ratio < 6.5 || sumRow.Ratio > 6.51 {
		t.Errorf("ratio = %v", sumRow.Ratio)
	}
}

func TestContrastSetsArityMismatch(t *testing.T) {
	e := fixtureEngine(t)
	if _, err := e.ContrastSets(context.Background(), Keywords("a"), Keywords("a", "b")); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestContrastSetsUnmatchedSide(t *testing.T) {
	e := fixtureEngine(t)
	cs, err := e.ContrastSets(context.Background(), Keywords("Germany"), Keywords("atlantis"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Errorf("contrasts with unmatched side = %d, want 0", len(cs))
	}
}

func TestProfile(t *testing.T) {
	e := fixtureEngine(t)
	p, err := e.Profile(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Observations != 11 {
		t.Errorf("observations = %d, want 11", p.Observations)
	}
	if p.Schema.Dimensions != 4 || p.Schema.Levels != 7 {
		t.Errorf("schema = %+v", p.Schema)
	}
	if len(p.Measures) != 1 {
		t.Fatalf("measures = %d", len(p.Measures))
	}
	m := p.Measures[0]
	if m.Count != 11 || m.Min != 3 || m.Max != 200 {
		t.Errorf("measure profile = %+v", m)
	}
	if m.Avg <= 0 {
		t.Errorf("avg = %v", m.Avg)
	}
	if !strings.Contains(p.String(), "Num Applicants") {
		t.Errorf("String() = %s", p.String())
	}
}

func TestRankCandidates(t *testing.T) {
	e := fixtureEngine(t)
	cands, err := e.Synthesize(context.Background(), Keywords("Germany"))
	if err != nil || len(cands) != 2 {
		t.Fatalf("cands = %d, err %v", len(cands), err)
	}
	ranked := RankCandidates(cands)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	// Both are depth-1 country levels with rdfs:label matches; the tie
	// breaks on member count: origin has 4 witnessed members, dest 3 →
	// dest first.
	if ranked[0].Query.Dims[0].Level.String() != "dest" {
		t.Errorf("first = %s", ranked[0].Query.Dims[0].Level)
	}
	// Determinism under permutation.
	swapped := []Candidate{cands[1], cands[0]}
	ranked2 := RankCandidates(swapped)
	for i := range ranked {
		if ranked[i].Query.Description != ranked2[i].Query.Description {
			t.Errorf("rank %d differs under permutation", i)
		}
	}
}

func TestMatchCache(t *testing.T) {
	e := fixtureEngine(t)
	ctx := context.Background()
	ip := e.Client.(interface{ QueryCount() int64 })

	before := ip.QueryCount()
	if _, err := e.MatchItem(ctx, NewKeyword("Germany")); err != nil {
		t.Fatal(err)
	}
	afterFirst := ip.QueryCount()
	if afterFirst == before {
		t.Fatal("first match issued no queries")
	}
	if _, err := e.MatchItem(ctx, NewKeyword("Germany")); err != nil {
		t.Fatal(err)
	}
	if ip.QueryCount() != afterFirst {
		t.Errorf("cached match issued queries: %d → %d", afterFirst, ip.QueryCount())
	}
	// Invalidation forces re-resolution.
	e.InvalidateCache()
	if _, err := e.MatchItem(ctx, NewKeyword("Germany")); err != nil {
		t.Fatal(err)
	}
	if ip.QueryCount() == afterFirst {
		t.Error("invalidated cache did not re-query")
	}
	// Disabled cache always queries.
	e.DisableMatchCache = true
	n1 := ip.QueryCount()
	_, _ = e.MatchItem(ctx, NewKeyword("Germany"))
	_, _ = e.MatchItem(ctx, NewKeyword("Germany"))
	if ip.QueryCount()-n1 < 2 {
		t.Error("disabled cache served from cache")
	}
}

func TestMatchCacheLRUEviction(t *testing.T) {
	c := newMatchCache(2)
	c.put("a", nil)
	c.put("b", nil)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", nil) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a wrongly evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Overwrite refreshes.
	c.put("a", []Match{{}})
	if ms, ok := c.get("a"); !ok || len(ms) != 1 {
		t.Errorf("overwrite lost: %v %v", ms, ok)
	}
}

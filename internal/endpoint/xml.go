package endpoint

import (
	"encoding/xml"
	"fmt"
	"io"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
)

// XMLResultsContentType is the media type of SPARQL XML results.
const XMLResultsContentType = "application/sparql-results+xml"

// xmlResults mirrors the SPARQL Query Results XML Format.
type xmlResults struct {
	XMLName xml.Name        `xml:"sparql"`
	Xmlns   string          `xml:"xmlns,attr"`
	Head    xmlHead         `xml:"head"`
	Boolean *bool           `xml:"boolean,omitempty"`
	Results *xmlResultsElem `xml:"results,omitempty"`
}

type xmlHead struct {
	Variables []xmlVariable `xml:"variable"`
}

type xmlVariable struct {
	Name string `xml:"name,attr"`
}

type xmlResultsElem struct {
	Results []xmlResult `xml:"result"`
}

type xmlResult struct {
	Bindings []xmlBinding `xml:"binding"`
}

type xmlBinding struct {
	Name    string      `xml:"name,attr"`
	URI     *string     `xml:"uri,omitempty"`
	BNode   *string     `xml:"bnode,omitempty"`
	Literal *xmlLiteral `xml:"literal,omitempty"`
}

type xmlLiteral struct {
	Lang     string `xml:"http://www.w3.org/XML/1998/namespace lang,attr,omitempty"`
	Datatype string `xml:"datatype,attr,omitempty"`
	Value    string `xml:",chardata"`
}

const sparqlResultsNS = "http://www.w3.org/2005/sparql-results#"

// EncodeResultsXML writes res in the SPARQL Query Results XML Format.
func EncodeResultsXML(w io.Writer, res *sparql.Results) error {
	out := xmlResults{Xmlns: sparqlResultsNS}
	if res.IsAsk {
		b := res.Boolean
		out.Boolean = &b
	} else {
		for _, v := range res.Vars {
			out.Head.Variables = append(out.Head.Variables, xmlVariable{Name: v})
		}
		out.Results = &xmlResultsElem{}
		for _, row := range res.Rows {
			var xr xmlResult
			for i, t := range row {
				if !sparql.Bound(t) {
					continue
				}
				b := xmlBinding{Name: res.Vars[i]}
				switch t.Kind {
				case rdf.TermIRI:
					v := t.Value
					b.URI = &v
				case rdf.TermBlank:
					v := t.Value
					b.BNode = &v
				default:
					b.Literal = &xmlLiteral{Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
				}
				xr.Bindings = append(xr.Bindings, b)
			}
			out.Results.Results = append(out.Results.Results, xr)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("endpoint: encode xml results: %w", err)
	}
	return enc.Close()
}

// DecodeResultsXML parses the SPARQL Query Results XML Format.
func DecodeResultsXML(r io.Reader) (*sparql.Results, error) {
	var in xmlResults
	if err := xml.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("endpoint: decode xml results: %w", err)
	}
	if in.Boolean != nil {
		return &sparql.Results{IsAsk: true, Boolean: *in.Boolean}, nil
	}
	res := &sparql.Results{}
	for _, v := range in.Head.Variables {
		res.Vars = append(res.Vars, v.Name)
	}
	col := map[string]int{}
	for i, v := range res.Vars {
		col[v] = i
	}
	if in.Results == nil {
		return res, nil
	}
	for _, xr := range in.Results.Results {
		row := make([]rdf.Term, len(res.Vars))
		for _, b := range xr.Bindings {
			i, ok := col[b.Name]
			if !ok {
				return nil, fmt.Errorf("endpoint: binding for undeclared variable %q", b.Name)
			}
			switch {
			case b.URI != nil:
				row[i] = rdf.NewIRI(*b.URI)
			case b.BNode != nil:
				row[i] = rdf.NewBlank(*b.BNode)
			case b.Literal != nil:
				switch {
				case b.Literal.Lang != "":
					row[i] = rdf.NewLangString(b.Literal.Value, b.Literal.Lang)
				case b.Literal.Datatype != "":
					row[i] = rdf.NewTyped(b.Literal.Value, b.Literal.Datatype)
				default:
					row[i] = rdf.NewString(b.Literal.Value)
				}
			default:
				return nil, fmt.Errorf("endpoint: empty binding for %q", b.Name)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

package endpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/obs"
)

const testSelect = `SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`

func TestInProcessQueryX(t *testing.T) {
	c := NewInProcess(testStore(t))
	res, meta, err := c.QueryX(context.Background(), Request{
		Query: testSelect,
		Opts:  QueryOpts{Step: "witness"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	if meta.Source != "inprocess" || meta.Step != "witness" {
		t.Errorf("meta = %+v", meta)
	}
	if !meta.HasPhases {
		t.Error("in-process client should report phase timings")
	}
	if meta.Rows != 2 || meta.Attempts != 1 {
		t.Errorf("rows/attempts = %d/%d", meta.Rows, meta.Attempts)
	}
	if meta.Wall <= 0 {
		t.Errorf("wall = %v", meta.Wall)
	}
	if c.QueryCount() != 1 {
		t.Errorf("QueryCount = %d", c.QueryCount())
	}
}

func TestHTTPClientQueryX(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, WithTimeout(5*time.Second))
	res, meta, err := c.QueryX(context.Background(), Request{Query: testSelect})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != "http" || meta.Rows != res.Len() || meta.HasPhases {
		t.Errorf("meta = %+v", meta)
	}
}

func TestResilientQueryXRetryMetadata(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fault := NewFault(inner, FaultConfig{FailFirst: 2})
	noSleep := func(context.Context, time.Duration) error { return nil }
	c := NewResilient(fault, WithPolicy(Policy{MaxRetries: 3, Sleep: noSleep, BaseBackoff: time.Nanosecond}))
	res, meta, err := c.QueryX(context.Background(), Request{Query: testSelect, Opts: QueryOpts{Step: "refine"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if meta.Source != "resilient" || meta.Step != "refine" {
		t.Errorf("meta = %+v", meta)
	}
	if meta.Attempts != 3 || meta.Retries != 2 {
		t.Errorf("attempts/retries = %d/%d, want 3/2", meta.Attempts, meta.Retries)
	}
	if !meta.HasPhases {
		t.Error("phase breakdown should propagate from the in-process inner client")
	}
}

func TestQueryXForeignClientFallback(t *testing.T) {
	// clientFunc (from resilient_test.go) is a foreign Client that does
	// not implement QuerierX, so QueryX takes the degraded path.
	inner := NewInProcess(testStore(t))
	var foreign Client = clientFunc(inner.Query)
	res, meta, err := QueryX(context.Background(), foreign, Request{Query: testSelect, Opts: QueryOpts{Step: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != "client" || meta.Step != "s" || meta.Rows != res.Len() {
		t.Errorf("meta = %+v", meta)
	}
	if meta.HasPhases {
		t.Error("fallback path cannot report phases")
	}
}

func TestQueryStep(t *testing.T) {
	c := NewInProcess(testStore(t))
	res, err := QueryStep(context.Background(), c, "bootstrap", testSelect)
	if err != nil || res.Len() != 2 {
		t.Fatalf("res = %v, err = %v", res, err)
	}
}

func TestClientMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewInProcess(testStore(t), WithRegistry(reg))
	ctx := context.Background()
	if _, err := c.Query(ctx, testSelect); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT syntax error"); err == nil {
		t.Fatal("want syntax error")
	}
	if c.QueryCount() != 2 {
		t.Errorf("QueryCount = %d, want 2 (registry-backed)", c.QueryCount())
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`re2xolap_endpoint_queries_total{client="inprocess"} 2`,
		`re2xolap_endpoint_query_errors_total{client="inprocess",kind="permanent"} 1`,
		`re2xolap_endpoint_query_seconds_count{client="inprocess"} 2`,
		`re2xolap_sparql_queries_total 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestResilientMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	inner := NewInProcess(testStore(t))
	fault := NewFault(inner, FaultConfig{FailFirst: 1})
	noSleep := func(context.Context, time.Duration) error { return nil }
	c := NewResilient(fault, WithPolicy(Policy{MaxRetries: 2, Sleep: noSleep, BaseBackoff: time.Nanosecond}), WithRegistry(reg))
	if _, err := c.Query(context.Background(), testSelect); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`re2xolap_resilient_retries_total 1`,
		`re2xolap_resilient_breaker_open 0`,
		`re2xolap_endpoint_queries_total{client="resilient"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestQueryXTraceSpans(t *testing.T) {
	inner := NewInProcess(testStore(t))
	noSleep := func(context.Context, time.Duration) error { return nil }
	c := NewResilient(NewFault(inner, FaultConfig{FailFirst: 1}),
		WithPolicy(Policy{MaxRetries: 2, Sleep: noSleep, BaseBackoff: time.Nanosecond}))
	tr := obs.NewTrace("query")
	ctx := obs.ContextWith(context.Background(), tr.Root())
	if _, _, err := c.QueryX(ctx, Request{Query: testSelect, Opts: QueryOpts{Step: "witness"}}); err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	dump := tr.String()
	for _, want := range []string{"resilient-query", "retry 1", "sparql", "join"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace missing %q:\n%s", want, dump)
		}
	}
	// The engine spans must nest under resilient-query, not fork a
	// second root: the root has exactly one child.
	if n := len(tr.Root().Children()); n != 1 {
		t.Errorf("root children = %d, want 1:\n%s", n, dump)
	}
}

func TestServerRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	var slowBuf bytes.Buffer
	s := NewServer(testStore(t), WithRegistry(reg), WithSlowQueryLog(obs.NewSlowLog(&slowBuf, 0)))
	srv := httptest.NewServer(s.Routes(RoutesConfig{}))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, `"triples":6`) {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body, _ := get("/livez"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("livez = %d %q", code, body)
	}
	if code, _, _ := get("/debug/pprof/"); code != 404 {
		t.Errorf("pprof should be gated off by default, got %d", code)
	}
	if code, _, _ := get("/sparql?query=" + strings.ReplaceAll(testSelect, " ", "+")); code != 200 {
		t.Errorf("sparql = %d", code)
	}
	code, body, ct := get("/metrics")
	if code != 200 || ct != obs.PromContentType {
		t.Fatalf("metrics = %d, content-type %q", code, ct)
	}
	for _, want := range []string{
		`re2xolap_server_requests_total{outcome="ok"} 1`,
		"re2xolap_server_request_seconds_bucket",
		"re2xolap_store_triples 6",
		"re2xolap_par_active_workers",
		"re2xolap_sparql_phase_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Threshold 0 logs every query, with the engine phase breakdown
	// plus the serialize component.
	var entry map[string]any
	if err := json.Unmarshal(slowBuf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, slowBuf.String())
	}
	phases, ok := entry["phase_ms"].(map[string]any)
	if !ok {
		t.Fatalf("slow log entry lacks phase_ms: %v", entry)
	}
	for _, p := range []string{"join", "serialize"} {
		if _, ok := phases[p]; !ok {
			t.Errorf("phase_ms missing %q: %v", p, phases)
		}
	}
	if entry["source"] != "server" || entry["rows"] != float64(2) {
		t.Errorf("entry = %v", entry)
	}
}

func TestServerRoutesPprofEnabled(t *testing.T) {
	s := NewServer(testStore(t))
	srv := httptest.NewServer(s.Routes(RoutesConfig{Pprof: true}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline = %d, want 200", resp.StatusCode)
	}
	// Without a registry /metrics is a 404, not an empty page.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("metrics without registry = %d, want 404", resp.StatusCode)
	}
}

func TestServerDirectPostBody(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/sparql-query",
		strings.NewReader("ASK { ?s ?p ?o . }"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), `"boolean":true`) {
		t.Errorf("ASK body = %s", b)
	}
}

func TestServerBadQueryOutcome(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testStore(t), WithRegistry(reg))
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, map[string][]string{"query": {"SELECT nonsense"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `re2xolap_server_requests_total{outcome="bad_query"} 1`) {
		t.Errorf("missing bad_query outcome:\n%s", buf.String())
	}
}

func TestHTTPClientSlowLog(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	var buf bytes.Buffer
	c := NewHTTPClient(srv.URL, WithSlowQueryLog(obs.NewSlowLog(&buf, 0)))
	if _, err := c.Query(context.Background(), testSelect); err != nil {
		t.Fatal(err)
	}
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log not JSON: %v", err)
	}
	if entry["source"] != "http" || entry["query"] != testSelect {
		t.Errorf("entry = %v", entry)
	}
}

package endpoint

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	src := `@prefix ex: <http://ex.org/> .
ex:obs1 ex:dim ex:de ; ex:value 10 .
ex:obs2 ex:dim ex:fr ; ex:value 20 .
ex:de ex:label "Germany" .
ex:fr ex:label "France"@fr .
`
	if _, err := st.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJSONRoundTrip(t *testing.T) {
	res := &sparql.Results{
		Vars: []string{"a", "b", "c"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://x"), rdf.NewString("plain"), rdf.NewInteger(5)},
			{rdf.NewBlank("b0"), rdf.NewLangString("ciao", "it"), {}}, // unbound c
		},
	}
	var buf bytes.Buffer
	if err := EncodeResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vars) != 3 || len(got.Rows) != 2 {
		t.Fatalf("shape = %v / %d rows", got.Vars, len(got.Rows))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if got.Rows[i][j] != res.Rows[i][j] {
				t.Errorf("cell [%d][%d] = %v, want %v", i, j, got.Rows[i][j], res.Rows[i][j])
			}
		}
	}
}

func TestJSONAsk(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResults(&buf, &sparql.Results{IsAsk: true, Boolean: true}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsAsk || !got.Boolean {
		t.Errorf("ask round trip = %+v", got)
	}
}

func TestInProcessClient(t *testing.T) {
	c := NewInProcess(testStore(t))
	res, err := c.Query(context.Background(), `SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d", res.Len())
	}
	if c.QueryCount() != 1 {
		t.Errorf("QueryCount = %d", c.QueryCount())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, "SELECT ?v WHERE { ?o <http://p> ?v . }"); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestHTTPServerAndClient(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	ctx := context.Background()

	res, err := c.Query(ctx, `SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <http://ex.org/dim> ?d . ?o <http://ex.org/value> ?v . } GROUP BY ?d`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	ti := res.Column("total")
	sum := 0.0
	for _, r := range res.Rows {
		n, ok := r[ti].Numeric()
		if !ok {
			t.Fatalf("total not numeric: %v", r[ti])
		}
		sum += n
	}
	if sum != 30 {
		t.Errorf("sum of sums = %v, want 30", sum)
	}

	ask, err := c.Query(ctx, `ASK { <http://ex.org/obs1> <http://ex.org/dim> <http://ex.org/de> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !ask.IsAsk || !ask.Boolean {
		t.Errorf("ask = %+v", ask)
	}

	// lang-tagged literal survives the protocol
	lres, err := c.Query(ctx, `SELECT ?l WHERE { <http://ex.org/fr> <http://ex.org/label> ?l . }`)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Rows[0][0] != rdf.NewLangString("France", "fr") {
		t.Errorf("lang literal = %v", lres.Rows[0][0])
	}
}

func TestHTTPServerGet(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ResultsContentType {
		t.Errorf("content type = %q", ct)
	}
	res, err := DecodeResults(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestHTTPServerErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()

	tests := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"missing query", func() (*http.Response, error) {
			return http.Get(srv.URL)
		}, http.StatusBadRequest},
		{"bad syntax", func() (*http.Response, error) {
			return http.Get(srv.URL + "?query=" + url.QueryEscape("SELECT WHERE"))
		}, http.StatusBadRequest},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := tt.do()
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tt.status)
			}
		})
	}
}

func TestHTTPClientErrorFromServer(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	if _, err := c.Query(context.Background(), "NOT SPARQL"); err == nil {
		t.Error("syntax error not propagated to client")
	}
}

// TestConcurrentHTTPQueries exercises parallel SPARQL requests against
// the server.
func TestConcurrentHTTPQueries(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Query(ctx, `SELECT (SUM(?v) AS ?s) WHERE { ?o <http://ex.org/value> ?v . }`)
			if err != nil {
				errs <- err
				return
			}
			if n, _ := res.Rows[0][0].Numeric(); n != 30 {
				errs <- fmt.Errorf("sum = %v", n)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	res := &sparql.Results{
		Vars: []string{"a", "b", "c"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://x"), rdf.NewString("plain"), rdf.NewInteger(5)},
			{rdf.NewBlank("b0"), rdf.NewLangString("ciao", "it"), {}},
		},
	}
	var buf bytes.Buffer
	if err := EncodeResultsXML(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResultsXML(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(got.Vars) != 3 || len(got.Rows) != 2 {
		t.Fatalf("shape = %v / %d rows", got.Vars, len(got.Rows))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if got.Rows[i][j] != res.Rows[i][j] {
				t.Errorf("cell [%d][%d] = %#v, want %#v", i, j, got.Rows[i][j], res.Rows[i][j])
			}
		}
	}
}

func TestXMLAsk(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResultsXML(&buf, &sparql.Results{IsAsk: true, Boolean: true}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResultsXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsAsk || !got.Boolean {
		t.Errorf("ask round trip = %+v", got)
	}
}

func TestServerContentNegotiation(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	q := url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+q, nil)
	req.Header.Set("Accept", XMLResultsContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != XMLResultsContentType {
		t.Fatalf("content type = %q", ct)
	}
	res, err := DecodeResultsXML(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d", res.Len())
	}

	// JSON preferred when listed first.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+q, nil)
	req2.Header.Set("Accept", ResultsContentType+", "+XMLResultsContentType)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != ResultsContentType {
		t.Errorf("content type = %q, want JSON", ct)
	}
}

func TestCSVResults(t *testing.T) {
	res := &sparql.Results{
		Vars: []string{"a", "b"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://x"), rdf.NewString("plain, with comma")},
			{rdf.NewInteger(5), {}},
		},
	}
	var buf bytes.Buffer
	if err := EncodeResultsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header = %q", out)
	}
	if !strings.Contains(out, `"plain, with comma"`) {
		t.Errorf("comma not quoted:\n%s", out)
	}

	var ask bytes.Buffer
	if err := EncodeResultsCSV(&ask, &sparql.Results{IsAsk: true, Boolean: true}); err != nil {
		t.Fatal(err)
	}
	if ask.String() != "boolean\ntrue\n" {
		t.Errorf("ask csv = %q", ask.String())
	}
}

func TestServerCSVNegotiation(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet,
		srv.URL+"?query="+url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`), nil)
	req.Header.Set("Accept", CSVResultsContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != CSVResultsContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(body), "v\n") {
		t.Errorf("csv body = %q", body)
	}
}

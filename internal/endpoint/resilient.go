package endpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// Policy configures the ResilientClient. The zero value disables every
// mechanism; DefaultPolicy returns sensible production settings.
type Policy struct {
	// Timeout bounds one Query call end to end, across all retries.
	// 0 means no client-imposed deadline.
	Timeout time.Duration
	// AttemptTimeout bounds a single attempt; 0 means attempts share
	// the overall deadline only.
	AttemptTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (so the
	// worst case issues MaxRetries+1 requests). Only retryable failures
	// are retried; permanent ones return immediately.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. 0 means 30s.
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized away (0..1) to
	// decorrelate concurrent retriers. 0 means full deterministic
	// backoff; DefaultPolicy uses 0.5.
	Jitter float64
	// BreakerThreshold trips the circuit after that many consecutive
	// transient failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// half-opening to let one probe through. 0 means 5s.
	BreakerCooldown time.Duration
	// MaxInFlight bounds concurrent queries through this client;
	// excess callers block until a slot frees or their context ends.
	// 0 means unlimited.
	MaxInFlight int
	// Sleep, when non-nil, replaces the real backoff sleep. It must
	// honour ctx cancellation. Tests inject a no-op here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy returns the production defaults: 2-minute query
// deadline, 4 retries from 100ms with 50% jitter, breaker tripping
// after 5 consecutive failures with a 5s cooldown, 16 in-flight.
func DefaultPolicy() Policy {
	return Policy{
		Timeout:          2 * time.Minute,
		MaxRetries:       4,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       10 * time.Second,
		Jitter:           0.5,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
		MaxInFlight:      16,
	}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// ResilientStats is a snapshot of the client's counters.
type ResilientStats struct {
	Queries      int64 // Query calls accepted
	Attempts     int64 // requests issued to the inner client
	Retries      int64 // attempts beyond the first
	Timeouts     int64 // queries that died on the overall deadline
	BreakerTrips int64 // closed/half-open → open transitions
	Rejected     int64 // queries rejected by the open breaker
}

// ResilientClient decorates a Client with per-query deadlines, bounded
// exponential backoff with jitter on retryable failures, a circuit
// breaker, and an in-flight limiter. It is safe for concurrent use.
//
// Failure handling follows the package error taxonomy: permanent
// failures (4xx, syntax errors) return immediately and do not count
// against the breaker; retryable failures (network errors, 429/5xx,
// truncated bodies) are retried and, when consecutive, trip the
// breaker, after which queries fail fast with ErrCircuitOpen until a
// half-open probe succeeds.
type ResilientClient struct {
	inner Client
	p     Policy
	sem   chan struct{}

	mu        sync.Mutex
	state     int
	consec    int       // consecutive transient failures while closed
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
	rng       *rand.Rand
	now       func() time.Time // injectable clock (tests)
	stats     ResilientStats
	statsLock sync.Mutex

	// Registry series (nil without WithRegistry; nil obs metrics
	// no-op).
	m        *clientMetrics
	mRetries *obs.Counter
	mTrips   *obs.Counter
	mReject  *obs.Counter
	slow     *obs.SlowLog
}

// NewResilient wraps inner with resilience mechanisms. Supported
// options: WithPolicy (default DefaultPolicy), WithRegistry (retry,
// breaker-trip, and rejection counters plus a breaker-state gauge),
// WithSlowQueryLog.
func NewResilient(inner Client, opts ...Option) *ResilientClient {
	o := applyOptions(opts)
	p := DefaultPolicy()
	if o.policy != nil {
		p = *o.policy
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	c := &ResilientClient{
		inner: inner,
		p:     p,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		now:   time.Now,
		slow:  o.slow,
	}
	if p.MaxInFlight > 0 {
		c.sem = make(chan struct{}, p.MaxInFlight)
	}
	if reg := o.registry; reg != nil {
		c.m = newClientMetrics(reg, "resilient")
		c.mRetries = reg.Counter("re2xolap_resilient_retries_total", "Attempts beyond the first.")
		c.mTrips = reg.Counter("re2xolap_resilient_breaker_trips_total", "Breaker transitions to open.")
		c.mReject = reg.Counter("re2xolap_resilient_rejected_total", "Queries rejected by the open breaker.")
		reg.GaugeFunc("re2xolap_resilient_breaker_open", "1 while the breaker is open or half-open.",
			func() float64 {
				if c.State() == "closed" {
					return 0
				}
				return 1
			})
	}
	return c
}

// Unwrap returns the decorated client, so callers can reach features
// of a concrete client (e.g. InProcess.Engine for explain plans).
func (c *ResilientClient) Unwrap() Client { return c.inner }

// Stats returns a snapshot of the client's counters.
func (c *ResilientClient) Stats() ResilientStats {
	c.statsLock.Lock()
	defer c.statsLock.Unlock()
	return c.stats
}

func (c *ResilientClient) count(f func(*ResilientStats)) {
	c.statsLock.Lock()
	f(&c.stats)
	c.statsLock.Unlock()
}

// State returns the breaker state as a string: "closed", "open", or
// "half-open" (for logs and health endpoints).
func (c *ResilientClient) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Query implements Client as a thin adapter over QueryX.
func (c *ResilientClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

// QueryX implements QuerierX: wall time spans the whole retry loop
// (backoffs included), Retries/Attempts report the loop's work, and
// the engine phase breakdown from an in-process inner client
// propagates from the successful attempt. Retry and breaker decisions
// are recorded as events on the active trace span.
func (c *ResilientClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	c.count(func(s *ResilientStats) { s.Queries++ })
	meta := QueryMeta{Source: "resilient", Step: req.Opts.Step}
	start := time.Now()
	ctx, span := querySpan(ctx, req, "resilient-query")
	// The span now rides the context; clearing the explicit one keeps
	// the inner client from double-parenting its spans.
	innerReq := req
	innerReq.Opts.Span = nil
	finish := func(res *sparql.Results, err error) (*sparql.Results, QueryMeta, error) {
		meta.Wall = time.Since(start)
		if res != nil {
			meta.Rows = res.Len()
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		c.m.record(meta.Wall, err)
		recordSlow(c.slow, req.Query, meta, err)
		return res, meta, err
	}

	// In-flight limiter: block for a slot, but never past the caller's
	// context.
	if c.sem != nil {
		select {
		case c.sem <- struct{}{}:
			defer func() { <-c.sem }()
		case <-ctx.Done():
			return finish(nil, classifyCtx(ctx, fmt.Errorf("endpoint: waiting for query slot: %w", ctx.Err())))
		}
	}

	if c.p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.p.Timeout)
		defer cancel()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.admit(); err != nil {
			span.Event("breaker rejected")
			return finish(nil, err)
		}
		meta.Attempts++
		res, im, err := c.attempt(ctx, innerReq)
		if err == nil {
			c.recordSuccess()
			meta.Phases, meta.HasPhases = im.Phases, im.HasPhases
			meta.Generation = im.Generation
			meta.CacheHit, meta.Coalesced, meta.QueueWait = im.CacheHit, im.Coalesced, im.QueueWait
			return finish(res, nil)
		}
		err = classifyCtx(ctx, err)
		lastErr = err

		if errors.Is(err, ErrPermanent) {
			// The query itself is bad; the endpoint is healthy. Neither
			// retry nor count against the breaker.
			c.recordSuccess()
			return finish(nil, err)
		}
		c.recordFailure()

		// The overall deadline is gone (or the caller cancelled):
		// stop regardless of the retry budget.
		if ctx.Err() != nil {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				c.count(func(s *ResilientStats) { s.Timeouts++ })
			}
			return finish(nil, err)
		}
		if attempt >= c.p.MaxRetries || !Retryable(err) {
			return finish(nil, err)
		}
		meta.Retries++
		c.mRetries.Inc()
		span.Event(fmt.Sprintf("retry %d after: %v", attempt+1, err))
		c.count(func(s *ResilientStats) { s.Retries++ })
		if err := c.backoff(ctx, attempt); err != nil {
			c.count(func(s *ResilientStats) { s.Timeouts++ })
			return finish(nil, classifyCtx(ctx, fmt.Errorf("endpoint: backoff interrupted before retry %d: %w (last failure: %v)", attempt+1, err, lastErr)))
		}
	}
}

// attempt issues one request to the inner client under the per-attempt
// deadline.
func (c *ResilientClient) attempt(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	c.count(func(s *ResilientStats) { s.Attempts++ })
	if c.p.AttemptTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, c.p.AttemptTimeout)
		defer cancel()
		res, im, err := QueryX(actx, c.inner, req)
		// A per-attempt deadline expiring is retryable: the next attempt
		// gets a fresh one (unless the overall deadline is also gone,
		// which the caller checks).
		if err != nil && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return nil, im, MarkRetryable(fmt.Errorf("endpoint: attempt timed out after %s: %w", c.p.AttemptTimeout, err))
		}
		return res, im, err
	}
	return QueryX(ctx, c.inner, req)
}

// admit consults the breaker: closed admits everything, open rejects
// until the cooldown has passed, half-open admits exactly one probe.
func (c *ResilientClient) admit() error {
	if c.p.BreakerThreshold <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if c.now().Sub(c.openedAt) < c.p.BreakerCooldown {
			c.count(func(s *ResilientStats) { s.Rejected++ })
			c.mReject.Inc()
			return fmt.Errorf("%w (cooling down, %s of %s elapsed)",
				ErrCircuitOpen, c.now().Sub(c.openedAt).Round(time.Millisecond), c.p.BreakerCooldown)
		}
		// Cooldown over: half-open and let this caller probe.
		c.state = breakerHalfOpen
		c.probing = true
		return nil
	default: // half-open
		if c.probing {
			c.count(func(s *ResilientStats) { s.Rejected++ })
			c.mReject.Inc()
			return fmt.Errorf("%w (probe in flight)", ErrCircuitOpen)
		}
		c.probing = true
		return nil
	}
}

// recordSuccess closes the breaker and resets the failure streak.
func (c *ResilientClient) recordSuccess() {
	if c.p.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = breakerClosed
	c.consec = 0
	c.probing = false
}

// recordFailure advances the failure streak, tripping the breaker at
// the threshold; a failed half-open probe re-opens immediately.
func (c *ResilientClient) recordFailure() {
	if c.p.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == breakerHalfOpen {
		c.state = breakerOpen
		c.openedAt = c.now()
		c.probing = false
		c.count(func(s *ResilientStats) { s.BreakerTrips++ })
		c.mTrips.Inc()
		return
	}
	c.consec++
	if c.state == breakerClosed && c.consec >= c.p.BreakerThreshold {
		c.state = breakerOpen
		c.openedAt = c.now()
		c.count(func(s *ResilientStats) { s.BreakerTrips++ })
		c.mTrips.Inc()
	}
}

// backoff sleeps before retry number attempt+1: base·2^attempt capped
// at MaxBackoff, minus up to Jitter of itself.
func (c *ResilientClient) backoff(ctx context.Context, attempt int) error {
	d := c.p.BaseBackoff
	if d <= 0 {
		return ctx.Err()
	}
	for i := 0; i < attempt && d < c.p.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.p.MaxBackoff {
		d = c.p.MaxBackoff
	}
	if c.p.Jitter > 0 {
		c.mu.Lock()
		f := c.rng.Float64()
		c.mu.Unlock()
		d -= time.Duration(f * c.p.Jitter * float64(d))
	}
	if c.p.Sleep != nil {
		return c.p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// Client is a SPARQL query interface. Everything above the protocol
// boundary (virtual-graph bootstrap, ReOLAP, the refinements) talks to
// the triplestore exclusively through this interface, mirroring the
// paper's claim that the system "operates on standard SPARQL
// interfaces (with non-specialized RDF stores)".
type Client interface {
	// Query runs one SPARQL SELECT or ASK query.
	Query(ctx context.Context, query string) (*sparql.Results, error)
}

// InProcess is a Client that executes queries directly against a local
// store, bypassing HTTP. It also counts queries, which the experiment
// harness reports.
type InProcess struct {
	Engine *sparql.Engine
	n      atomic.Int64
}

// NewInProcess returns an in-process client over st.
func NewInProcess(st *store.Store) *InProcess {
	return &InProcess{Engine: sparql.NewEngine(st)}
}

// Query implements Client. The context cancels long-running joins.
func (c *InProcess) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.n.Add(1)
	return c.Engine.QueryStringContext(ctx, query)
}

// QueryCount returns the number of queries issued so far.
func (c *InProcess) QueryCount() int64 { return c.n.Load() }

// HTTPClient speaks the SPARQL protocol with a remote endpoint.
type HTTPClient struct {
	// Endpoint is the query URL, e.g. "http://localhost:8080/sparql".
	Endpoint string
	// HTTP is the underlying client; http.DefaultClient if nil.
	HTTP *http.Client
}

// NewHTTPClient returns a client for the given endpoint URL.
func NewHTTPClient(endpoint string) *HTTPClient {
	return &HTTPClient{Endpoint: endpoint, HTTP: &http.Client{Timeout: 15 * time.Minute}}
}

// Query implements Client by POSTing an
// application/x-www-form-urlencoded query, per the SPARQL 1.1 protocol.
func (c *HTTPClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("endpoint: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", ResultsContentType)
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport-level failures (refused, reset, DNS) are worth
		// retrying — unless the caller's deadline is what killed them.
		return nil, classifyCtx(ctx, MarkRetryable(fmt.Errorf("endpoint: query: %w", err)))
	}
	// Drain before close so the keep-alive connection is returned to
	// the pool instead of torn down; bounded in case of a huge error
	// body after a partial read.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(body))}
	}
	res, err := DecodeResults(resp.Body)
	if err != nil {
		// A malformed or truncated body on a 200 is a delivery failure
		// (connection cut mid-response, broken proxy), not a bad query.
		return nil, classifyCtx(ctx, MarkRetryable(err))
	}
	return res, nil
}

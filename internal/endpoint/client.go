package endpoint

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// Client is a SPARQL query interface. Everything above the protocol
// boundary (virtual-graph bootstrap, ReOLAP, the refinements) talks to
// the triplestore exclusively through this interface, mirroring the
// paper's claim that the system "operates on standard SPARQL
// interfaces (with non-specialized RDF stores)". Clients that report
// per-query metadata additionally implement QuerierX.
type Client interface {
	// Query runs one SPARQL SELECT or ASK query.
	Query(ctx context.Context, query string) (*sparql.Results, error)
}

// InProcess is a Client that executes queries directly against a local
// store, bypassing HTTP.
type InProcess struct {
	Engine *sparql.Engine

	queries *obs.Counter // total queries; the QueryCount source
	m       *clientMetrics
	slow    *obs.SlowLog
}

// NewInProcess returns an in-process client over st. Supported
// options: WithRegistry (publishes client and engine metrics),
// WithSlowQueryLog, WithWorkers.
func NewInProcess(st *store.Store, opts ...Option) *InProcess {
	o := applyOptions(opts)
	c := &InProcess{Engine: sparql.NewEngine(st), slow: o.slow}
	if o.workers != nil {
		c.Engine.Exec.Workers = *o.workers
	}
	if o.registry != nil {
		c.m = newClientMetrics(o.registry, "inprocess")
		c.queries = c.m.queries
		c.Engine.Instrument(o.registry)
	} else {
		// The query count survives without a registry: it delegates to
		// a standalone counter, so QueryCount keeps working unchanged.
		c.queries = new(obs.Counter)
	}
	return c
}

// Query implements Client as a thin adapter over QueryX. The context
// cancels long-running joins.
func (c *InProcess) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

// QueryX implements QuerierX: it executes the query and reports wall
// time, the engine phase breakdown, and the result row count.
func (c *InProcess) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	meta := QueryMeta{Source: "inprocess", Step: req.Opts.Step, Attempts: 1}
	if err := ctx.Err(); err != nil {
		return nil, meta, err
	}
	meta.Generation = c.Generation()
	ctx, span := querySpan(ctx, req, "sparql")
	start := time.Now()
	var res *sparql.Results
	var err error
	if req.Opts.Profile {
		var prof *sparql.Profile
		res, prof, err = c.Engine.Profile(ctx, req.Query)
		if prof != nil {
			meta.Profile = prof
			meta.Phases = prof.Phases
			meta.Rows = prof.Phases.Rows
		}
	} else {
		var pt sparql.PhaseTimings
		res, pt, err = c.Engine.QueryStringTimed(ctx, req.Query)
		meta.Phases = pt
		meta.Rows = pt.Rows
	}
	if err != nil {
		err = classifyLocal(ctx, err)
	}
	meta.Wall = time.Since(start)
	meta.HasPhases = true
	span.End()
	// c.m.record would double-count queries: c.queries IS c.m.queries
	// when a registry is attached, so count once and add latency/errors
	// separately.
	c.queries.Inc()
	if m := c.m; m != nil {
		m.latency.ObserveDuration(meta.Wall)
		if err != nil {
			m.errors[errorKind(err)].Inc()
		}
	}
	recordSlow(c.slow, req.Query, meta, err)
	return res, meta, err
}

// QueryCount returns the number of queries issued so far. It now
// delegates to the registry-backed counter (the experiment harness
// still reports it).
func (c *InProcess) QueryCount() int64 { return c.queries.Value() }

// Generation implements GenerationSource: the backing store's mutation
// counter.
func (c *InProcess) Generation() uint64 { return c.Engine.Store().Generation() }

// classifyLocal tags in-process engine errors with the package
// taxonomy: a syntax error is permanent (retrying cannot help);
// everything else falls back to context classification.
func classifyLocal(ctx context.Context, err error) error {
	var se *sparql.SyntaxError
	if errors.As(err, &se) {
		return MarkPermanent(err)
	}
	return classifyCtx(ctx, err)
}

// HTTPClient speaks the SPARQL protocol with a remote endpoint.
type HTTPClient struct {
	// Endpoint is the query URL, e.g. "http://localhost:8080/sparql".
	Endpoint string
	// HTTP is the underlying client; http.DefaultClient if nil.
	//
	// Deprecated: set it via WithHTTPClient/WithTimeout at
	// construction instead of mutating the field afterwards.
	HTTP *http.Client

	m    *clientMetrics
	slow *obs.SlowLog
}

// NewHTTPClient returns a client for the given endpoint URL.
// Supported options: WithTimeout (default 15 minutes),
// WithHTTPClient, WithRegistry, WithSlowQueryLog.
func NewHTTPClient(endpoint string, opts ...Option) *HTTPClient {
	o := applyOptions(opts)
	hc := o.httpClient
	if hc == nil {
		timeout := o.timeout
		if timeout <= 0 {
			timeout = 15 * time.Minute
		}
		hc = &http.Client{Timeout: timeout}
	}
	return &HTTPClient{
		Endpoint: endpoint,
		HTTP:     hc,
		m:        newClientMetrics(o.registry, "http"),
		slow:     o.slow,
	}
}

// Query implements Client as a thin adapter over QueryX.
func (c *HTTPClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

// QueryX implements QuerierX: wall time and row count; a remote
// endpoint reports no phase breakdown.
func (c *HTTPClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	meta := QueryMeta{Source: "http", Step: req.Opts.Step, Attempts: 1}
	ctx, span := querySpan(ctx, req, "http-query")
	span.SetAttr("endpoint", c.Endpoint)
	start := time.Now()
	res, gen, err := c.do(ctx, req.Query)
	meta.Wall = time.Since(start)
	meta.Generation = gen
	if res != nil {
		meta.Rows = res.Len()
	}
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	c.m.record(meta.Wall, err)
	recordSlow(c.slow, req.Query, meta, err)
	return res, meta, err
}

// do POSTs an application/x-www-form-urlencoded query, per the SPARQL
// 1.1 protocol. The second return is the serving store's generation
// token parsed from the X-Re2xolap-Generation response header (zero
// when the endpoint does not send one).
func (c *HTTPClient) do(ctx context.Context, query string) (*sparql.Results, uint64, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, 0, fmt.Errorf("endpoint: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", ResultsContentType)
	// Propagate the ambient trace across the process boundary: the
	// serving side continues the same trace ID (W3C Trace Context), so
	// coordinator fan-out spans and shard-side engine spans stitch into
	// one trace in the OTLP export.
	if sp := obs.SpanFrom(ctx); sp != nil {
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set("traceparent", tp)
		}
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport-level failures (refused, reset, DNS) are worth
		// retrying — unless the caller's deadline is what killed them.
		return nil, 0, classifyCtx(ctx, MarkRetryable(fmt.Errorf("endpoint: query: %w", err)))
	}
	// Drain before close so the keep-alive connection is returned to
	// the pool instead of torn down; bounded in case of a huge error
	// body after a partial read.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, 0, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(body))}
	}
	gen, _ := strconv.ParseUint(resp.Header.Get(GenerationHeader), 10, 64)
	res, err := DecodeResults(resp.Body)
	if err != nil {
		// A malformed or truncated body on a 200 is a delivery failure
		// (connection cut mid-response, broken proxy), not a bad query.
		return nil, 0, classifyCtx(ctx, MarkRetryable(err))
	}
	return res, gen, nil
}

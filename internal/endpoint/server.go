package endpoint

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// Server is an http.Handler implementing the SPARQL 1.1 protocol query
// operation over a local store: GET with ?query= or POST with a form
// body, returning application/sparql-results+json.
type Server struct {
	engine *sparql.Engine
	// MaxQueryLen bounds accepted query text; defaults to 1 MiB.
	MaxQueryLen int
}

// NewServer returns a SPARQL protocol handler over st.
func NewServer(st *store.Store) *Server {
	return &Server{engine: sparql.NewEngine(st), MaxQueryLen: 1 << 20}
}

// Engine exposes the server's query engine so callers can tune its
// execution options (e.g. worker count) before serving.
func (s *Server) Engine() *sparql.Engine { return s.engine }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var query string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, "malformed form body", http.StatusBadRequest)
			return
		}
		query = r.PostForm.Get("query")
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if query == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	if len(query) > s.MaxQueryLen {
		http.Error(w, "query too long", http.StatusRequestEntityTooLarge)
		return
	}
	res, err := s.engine.QueryStringContext(r.Context(), query)
	if err != nil {
		var se *sparql.SyntaxError
		switch {
		case errors.As(err, &se):
			http.Error(w, fmt.Sprintf("malformed query: %v", err), http.StatusBadRequest)
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request execution deadline expired: 503 tells
			// well-behaved clients (and our ResilientClient) this is a
			// load condition worth retrying, not a broken query.
			w.Header().Set("Retry-After", "1")
			http.Error(w, "query timed out", http.StatusServiceUnavailable)
		case errors.Is(err, context.Canceled):
			// The client went away; nobody is reading the response.
		default:
			http.Error(w, fmt.Sprintf("query execution failed: %v", err), http.StatusInternalServerError)
		}
		return
	}
	if res.IsConstruct {
		// CONSTRUCT results are an RDF graph, served as N-Triples.
		w.Header().Set("Content-Type", "application/n-triples")
		enc := rdf.NewEncoder(w)
		for _, t := range res.Triples {
			if err := enc.Encode(t); err != nil {
				return
			}
		}
		_ = enc.Flush()
		return
	}
	// Content negotiation: XML or CSV when the client asks for them,
	// JSON otherwise (the SPARQL protocol default here).
	accept := r.Header.Get("Accept")
	if wantsXML(accept) {
		w.Header().Set("Content-Type", XMLResultsContentType)
		_ = EncodeResultsXML(w, res)
		return
	}
	if strings.Contains(accept, CSVResultsContentType) && !strings.Contains(accept, ResultsContentType) {
		w.Header().Set("Content-Type", CSVResultsContentType)
		_ = EncodeResultsCSV(w, res)
		return
	}
	w.Header().Set("Content-Type", ResultsContentType)
	if err := EncodeResults(w, res); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

// wantsXML reports whether the Accept header prefers the XML results
// format: it lists the XML media type and does not list the JSON one
// earlier.
func wantsXML(accept string) bool {
	xmlPos := strings.Index(accept, XMLResultsContentType)
	if xmlPos < 0 {
		return false
	}
	jsonPos := strings.Index(accept, ResultsContentType)
	return jsonPos < 0 || xmlPos < jsonPos
}

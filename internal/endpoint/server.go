package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// Server is an http.Handler implementing the SPARQL 1.1 protocol query
// operation over a local store: GET with ?query=, POST with a form
// body, or POST with an application/sparql-query body, returning
// application/sparql-results+json by default. With WithRegistry
// it publishes request metrics and can expose /metrics, /healthz, and
// pprof through Routes.
type Server struct {
	engine *sparql.Engine
	st     *store.Store
	// client, when non-nil, replaces the local engine: the server is a
	// protocol front end over an arbitrary Client (a scatter-gather
	// coordinator, a resilient remote). See NewClientServer.
	client Client
	// MaxQueryLen bounds accepted query text; defaults to 1 MiB.
	//
	// Deprecated: set it via WithMaxQueryLen at construction instead
	// of mutating the field afterwards.
	MaxQueryLen int

	reg     *obs.Registry
	m       *serverMetrics
	slow    *obs.SlowLog
	traces  *obs.OTLPSink
	queries *obs.QueryRing
	// ready reports readiness for /healthz (nil error = ready); set via
	// WithReadiness. nil means ready as soon as the server exists — the
	// store-backed constructors take a fully-loaded store, so that is
	// correct for them by construction.
	ready func() error
	// tenantHeader, when set via WithTenantHeader, names the request
	// header whose value becomes the admission-control tenant identity
	// (ContextWithTenant) for the delegated client.
	tenantHeader string
	// routes are caller-supplied handlers (WithRoute) mounted by Routes
	// alongside the built-in operational endpoints.
	routes []extraRoute
}

// serverMetrics caches the server's registry series.
type serverMetrics struct {
	requests  map[string]*obs.Counter // by outcome
	latency   *obs.Histogram
	serialize *obs.Histogram
}

// requestOutcomes is the label vocabulary of the request counter.
var requestOutcomes = [...]string{"ok", "bad_request", "bad_query", "timeout", "canceled", "rejected", "error"}

// GenerationHeader carries the serving store's mutation-generation
// token on query responses. HTTPClient parses it into
// QueryMeta.Generation so a shard coordinator can compose remote shard
// generations into its own cache-invalidation token.
const GenerationHeader = "X-Re2xolap-Generation"

// CacheHeader reports how the serve layer answered: "hit" (result
// cache) or "coalesced" (deduplicated onto a concurrent identical
// execution). Absent on plain executions.
const CacheHeader = "X-Re2xolap-Cache"

// NewServer returns a SPARQL protocol handler over st. Supported
// options: WithRegistry (request counters, latency histograms, engine
// phase metrics, store and worker-pool gauges), WithSlowQueryLog,
// WithMaxQueryLen, WithWorkers.
func NewServer(st *store.Store, opts ...Option) *Server {
	o := applyOptions(opts)
	s := &Server{engine: sparql.NewEngine(st), st: st, MaxQueryLen: 1 << 20, slow: o.slow, traces: o.traceSink, queries: o.queryLog, ready: o.ready, routes: o.routes}
	if o.maxQueryLen > 0 {
		s.MaxQueryLen = o.maxQueryLen
	}
	if o.workers != nil {
		s.engine.Exec.Workers = *o.workers
	}
	if reg := o.registry; reg != nil {
		s.reg = reg
		s.engine.Instrument(reg)
		s.m = newServerMetrics(reg)
		reg.GaugeFunc("re2xolap_store_triples", "Triples in the served store.",
			func() float64 { return float64(st.Len()) })
		reg.GaugeFunc("re2xolap_par_active_workers", "Worker-pool goroutines currently running.",
			func() float64 { return float64(par.Active()) })
	}
	return s
}

// NewClientServer returns a SPARQL protocol handler that delegates
// query execution to c instead of a local store — the front end a
// scatter-gather coordinator (internal/shard) serves through. The
// same option vocabulary applies; WithWorkers is meaningless here
// (execution lives behind the client) and is ignored. A degraded
// partial answer (QueryMeta.Incomplete) is flagged to HTTP callers
// via the X-Re2xolap-Incomplete response header.
func NewClientServer(c Client, opts ...Option) *Server {
	o := applyOptions(opts)
	s := &Server{client: c, MaxQueryLen: 1 << 20, slow: o.slow, traces: o.traceSink, queries: o.queryLog, ready: o.ready, tenantHeader: o.tenantHeader, routes: o.routes}
	if o.maxQueryLen > 0 {
		s.MaxQueryLen = o.maxQueryLen
	}
	if reg := o.registry; reg != nil {
		s.reg = reg
		s.m = newServerMetrics(reg)
		reg.GaugeFunc("re2xolap_par_active_workers", "Worker-pool goroutines currently running.",
			func() float64 { return float64(par.Active()) })
	}
	return s
}

// newServerMetrics registers the request-level server series.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: make(map[string]*obs.Counter, len(requestOutcomes)),
		latency: reg.Histogram("re2xolap_server_request_seconds",
			"SPARQL request latency, serialization included.", nil),
		serialize: reg.Histogram("re2xolap_server_serialize_seconds",
			"Result serialization time.", nil),
	}
	for _, oc := range requestOutcomes {
		m.requests[oc] = reg.Counter("re2xolap_server_requests_total",
			"SPARQL protocol requests by outcome.", obs.L("outcome", oc))
	}
	return m
}

// Engine exposes the server's query engine so callers can tune its
// execution options (e.g. worker count) before serving.
//
// Deprecated: prefer WithWorkers/WithRegistry at construction; poking
// engine fields after the server starts serving races live queries.
func (s *Server) Engine() *sparql.Engine { return s.engine }

// outcome buckets an execution error for the request counter.
func requestOutcome(err error) string {
	var se *sparql.SyntaxError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &se):
		return "bad_query"
	case errors.Is(err, ErrOverloaded):
		return "rejected"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// countRequest is nil-safe outcome accounting.
func (m *serverMetrics) countRequest(outcome string, wall time.Duration) {
	if m == nil {
		return
	}
	m.requests[outcome].Inc()
	m.latency.ObserveDuration(wall)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var query string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if ct == "application/sparql-query" || strings.HasPrefix(ct, "application/sparql-query;") {
			// SPARQL 1.1 protocol "query via POST directly": the body
			// IS the query, so cap the read at the same length bound.
			body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.MaxQueryLen)+1))
			if err != nil {
				http.Error(w, "malformed request body", http.StatusBadRequest)
				s.m.countRequest("bad_request", time.Since(start))
				return
			}
			query = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, "malformed form body", http.StatusBadRequest)
				s.m.countRequest("bad_request", time.Since(start))
				return
			}
			query = r.PostForm.Get("query")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		s.m.countRequest("bad_request", time.Since(start))
		return
	}
	if query == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		s.m.countRequest("bad_request", time.Since(start))
		return
	}
	if len(query) > s.MaxQueryLen {
		http.Error(w, "query too long", http.StatusRequestEntityTooLarge)
		s.m.countRequest("bad_request", time.Since(start))
		return
	}

	ctx := r.Context()
	var trace *obs.Trace
	if s.traces != nil {
		// A W3C traceparent header stitches this request into the
		// caller's trace: same trace ID, the caller's span as the root's
		// parent. Without one the request starts a fresh trace.
		if tid, sid, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			trace = obs.NewTraceWithRemoteParent("sparql-request", tid, sid)
		} else {
			trace = obs.NewTrace("sparql-request")
		}
		ctx = obs.ContextWith(ctx, trace.Root())
		defer func() {
			trace.End()
			_ = s.traces.Export(trace)
		}()
	}

	var res *sparql.Results
	var pt sparql.PhaseTimings
	var meta QueryMeta
	var err error
	timed := s.m != nil || s.slow != nil || s.queries != nil
	switch {
	case s.client != nil:
		if s.tenantHeader != "" {
			ctx = ContextWithTenant(ctx, r.Header.Get(s.tenantHeader))
		}
		res, meta, err = QueryX(ctx, s.client, Request{Query: query})
		if meta.HasPhases {
			pt = meta.Phases
		}
		if err == nil {
			if meta.Generation != 0 {
				w.Header().Set(GenerationHeader, strconv.FormatUint(meta.Generation, 10))
			}
			switch {
			case meta.CacheHit:
				w.Header().Set(CacheHeader, "hit")
			case meta.Coalesced:
				w.Header().Set(CacheHeader, "coalesced")
			}
		}
		if meta.Incomplete && err == nil {
			// Header, not an error status: the answer is valid, just
			// degraded. Clients that care can check it — and see which
			// partitions are missing, not just that one is.
			w.Header().Set("X-Re2xolap-Incomplete", "true")
			if len(meta.SkippedShards) > 0 {
				w.Header().Set("X-Re2xolap-Skipped-Shards", joinInts(meta.SkippedShards))
			}
		}
	case timed:
		res, pt, err = s.engine.QueryStringTimed(ctx, query)
	default:
		res, err = s.engine.QueryStringContext(ctx, query)
	}
	if err != nil {
		switch requestOutcome(err) {
		case "bad_query":
			http.Error(w, fmt.Sprintf("malformed query: %v", err), http.StatusBadRequest)
		case "rejected":
			// Admission control shed the request before executing it:
			// 429 + Retry-After, the standard back-off contract (our
			// StatusError taxonomy already treats 429 as retryable).
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("overloaded: %v", err), http.StatusTooManyRequests)
		case "timeout":
			// The per-request execution deadline expired: 503 tells
			// well-behaved clients (and our ResilientClient) this is a
			// load condition worth retrying, not a broken query.
			w.Header().Set("Retry-After", "1")
			http.Error(w, "query timed out", http.StatusServiceUnavailable)
		case "canceled":
			// The client went away; nobody is reading the response.
		default:
			http.Error(w, fmt.Sprintf("query execution failed: %v", err), http.StatusInternalServerError)
		}
		wall := time.Since(start)
		s.m.countRequest(requestOutcome(err), wall)
		s.recordSlow(query, wall, pt, 0, meta, err)
		s.recordRing(query, wall, pt, meta, 0, err)
		return
	}

	var serStart time.Time
	if timed {
		serStart = time.Now()
	}
	s.serialize(w, r, res)
	if timed {
		ser := time.Since(serStart)
		wall := time.Since(start)
		s.m.countRequest("ok", wall)
		if s.m != nil {
			s.m.serialize.ObserveDuration(ser)
		}
		s.recordSlowWithSerialize(query, wall, pt, res.Len(), meta, ser)
		s.recordRing(query, wall, pt, meta, res.Len(), nil)
	}
}

// recordRing appends one served query's profile summary to the
// /debug/queries ring. nil-safe (ring absent).
func (s *Server) recordRing(query string, wall time.Duration, pt sparql.PhaseTimings, meta QueryMeta, rows int, err error) {
	if s.queries == nil {
		return
	}
	rec := obs.QueryRecord{
		Source:     "server",
		Step:       meta.Step,
		Plan:       meta.Plan,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Rows:       rows,
		PhaseMS:    obs.PhaseMS(pt.Map()),
		Shards:        meta.Shards,
		Incomplete:    meta.Incomplete,
		SkippedShards: meta.SkippedShards,
		CacheHit:      meta.CacheHit,
		Coalesced:     meta.Coalesced,
		QueueWaitMS:   float64(meta.QueueWait) / float64(time.Millisecond),
		Query:         query,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.queries.Record(rec)
}

// recordSlow feeds the structured slow-query log from the server side
// (phase breakdown, no serialize component).
func (s *Server) recordSlow(query string, wall time.Duration, pt sparql.PhaseTimings, rows int, meta QueryMeta, err error) {
	if !s.slow.Slow(wall) {
		return
	}
	entry := obs.SlowQuery{
		Source:        "server",
		Step:          meta.Step,
		WallMS:        float64(wall) / float64(time.Millisecond),
		PhaseMS:       obs.PhaseMS(pt.Map()),
		Rows:          rows,
		Retries:       meta.Retries,
		Plan:          meta.Plan,
		Shards:        meta.Shards,
		SkippedShards: meta.SkippedShards,
		CacheHit:      meta.CacheHit,
		Coalesced:     meta.Coalesced,
		QueueWaitMS:   float64(meta.QueueWait) / float64(time.Millisecond),
		Query:         query,
	}
	if err != nil {
		entry.Error = err.Error()
	}
	s.slow.Record(entry)
}

// recordSlowWithSerialize adds the serialization phase to the
// breakdown.
func (s *Server) recordSlowWithSerialize(query string, wall time.Duration, pt sparql.PhaseTimings, rows int, meta QueryMeta, ser time.Duration) {
	if !s.slow.Slow(wall) {
		return
	}
	phases := pt.Map()
	if ser > 0 {
		phases["serialize"] = ser
	}
	s.slow.Record(obs.SlowQuery{
		Source:        "server",
		Step:          meta.Step,
		WallMS:        float64(wall) / float64(time.Millisecond),
		PhaseMS:       obs.PhaseMS(phases),
		Rows:          rows,
		Retries:       meta.Retries,
		Plan:          meta.Plan,
		Shards:        meta.Shards,
		SkippedShards: meta.SkippedShards,
		CacheHit:      meta.CacheHit,
		Coalesced:     meta.Coalesced,
		QueueWaitMS:   float64(meta.QueueWait) / float64(time.Millisecond),
		Query:         query,
	})
}

// serialize writes res in the negotiated format.
func (s *Server) serialize(w http.ResponseWriter, r *http.Request, res *sparql.Results) {
	if res.IsConstruct {
		// CONSTRUCT results are an RDF graph, served as N-Triples.
		w.Header().Set("Content-Type", "application/n-triples")
		enc := rdf.NewEncoder(w)
		for _, t := range res.Triples {
			if err := enc.Encode(t); err != nil {
				return
			}
		}
		_ = enc.Flush()
		return
	}
	// Content negotiation: XML or CSV when the client asks for them,
	// JSON otherwise (the SPARQL protocol default here).
	accept := r.Header.Get("Accept")
	if wantsXML(accept) {
		w.Header().Set("Content-Type", XMLResultsContentType)
		_ = EncodeResultsXML(w, res)
		return
	}
	if strings.Contains(accept, CSVResultsContentType) && !strings.Contains(accept, ResultsContentType) {
		w.Header().Set("Content-Type", CSVResultsContentType)
		_ = EncodeResultsCSV(w, res)
		return
	}
	w.Header().Set("Content-Type", ResultsContentType)
	if err := EncodeResults(w, res); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

// RoutesConfig configures the full serving mux around a Server.
type RoutesConfig struct {
	// Harden is applied to the /sparql handler only (shedding, panic
	// recovery, per-request deadline); the observability endpoints
	// stay reachable under load so operators can see why.
	Harden HardenConfig
	// Pprof gates the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints on an open port are a DoS
	// and information-leak vector.
	Pprof bool
}

// Routes assembles the operational mux: /sparql (hardened), /metrics
// (Prometheus text format; 404 unless the server was built
// WithRegistry), /livez (liveness), /healthz and /readyz (readiness),
// /debug/queries (when built WithQueryLog), caller-supplied routes
// (WithRoute), and — when cfg.Pprof — /debug/pprof/.
//
// Liveness and readiness are distinct probes: /livez answers 200 for
// as long as the process serves HTTP, while /healthz answers 503 with
// a JSON body until the server is ready to give correct answers (the
// WithReadiness hook — a loading store, a coordinator waiting for its
// first healthy replica per shard). Probers and load balancers should
// route on /healthz so cold processes take no traffic.
func (s *Server) Routes(cfg RoutesConfig) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/sparql", Harden(s, cfg.Harden))
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/healthz", s.serveHealth)
	mux.HandleFunc("/readyz", s.serveHealth)
	if s.queries != nil {
		mux.Handle("/debug/queries", s.queries.Handler())
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for _, rt := range s.routes {
		mux.Handle(rt.pattern, rt.handler)
	}
	return mux
}

// serveHealth implements the readiness side of the probe pair
// (/healthz, /readyz): 200 with a JSON status once ready, 503 with
// the blocking reason until then.
func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.ready != nil {
		if err := s.ready(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"status": "unavailable",
				"reason": err.Error(),
			})
			return
		}
	}
	body := map[string]any{"status": "ok"}
	if s.st != nil {
		body["triples"] = s.st.Len()
	}
	_ = json.NewEncoder(w).Encode(body)
}

// joinInts renders shard indices for the skipped-shards header.
func joinInts(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// wantsXML reports whether the Accept header prefers the XML results
// format: it lists the XML media type and does not list the JSON one
// earlier.
func wantsXML(accept string) bool {
	xmlPos := strings.Index(accept, XMLResultsContentType)
	if xmlPos < 0 {
		return false
	}
	jsonPos := strings.Index(accept, ResultsContentType)
	return jsonPos < 0 || xmlPos < jsonPos
}

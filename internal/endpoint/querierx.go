package endpoint

import (
	"context"
	"errors"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// Request is the extended protocol-boundary input: the query text
// plus per-query options. It exists so new per-query knobs never
// change the QuerierX signature again.
type Request struct {
	Query string
	Opts  QueryOpts
}

// QueryOpts carries per-query options across the protocol boundary.
type QueryOpts struct {
	// Step tags the query with the synthesis/refinement step that
	// issued it ("keyword-search", "witness", "refine:topk", ...), so
	// traces and the slow-query log explain *why* a query ran.
	Step string
	// Span, when non-nil, overrides the trace span from the context as
	// the parent for this query's spans.
	Span *obs.Span
	// Profile asks the executing engine for a per-operator runtime
	// profile (EXPLAIN ANALYZE data: rows in/out, wall time, estimated
	// vs actual cardinality). Only the in-process client can honor it;
	// remote clients ignore the flag and leave QueryMeta.Profile nil.
	Profile bool
}

// QueryMeta is the per-query execution metadata QuerierX reports
// alongside the results.
type QueryMeta struct {
	// Source identifies the executing client: "inprocess", "http",
	// "resilient", "fault".
	Source string
	// Step echoes the issuing-step tag from the request.
	Step string
	// Wall is the end-to-end time this client spent on the query,
	// including (for the resilient client) backoff and retries.
	Wall time.Duration
	// Phases is the engine-side phase breakdown; only the in-process
	// client can fill it (a remote endpoint does not report one).
	Phases sparql.PhaseTimings
	// HasPhases reports whether Phases is meaningful.
	HasPhases bool
	// Rows is the result row count.
	Rows int
	// Attempts is how many requests were issued (resilient client);
	// Retries is Attempts beyond the first.
	Attempts int
	Retries  int
	// Incomplete reports that the results cover only part of the data:
	// a degraded-mode scatter-gather coordinator answered without one
	// or more failed shards. Complete single-backend clients never set
	// it.
	Incomplete bool
	// SkippedShards names the shard indices an incomplete answer was
	// served without, so callers see *which* partitions are missing,
	// not just that one is. Empty when Incomplete is false.
	SkippedShards []int
	// Plan is the federation plan class (colocated, partial_agg,
	// bound_join, or gather) when a shard coordinator executed the
	// query; empty otherwise.
	Plan string
	// Shards is the per-shard accounting (rows, wall time,
	// attempts/retries) a coordinator reports for federated queries.
	Shards []obs.ShardCall
	// Profile is the per-operator runtime profile, filled only when the
	// request set QueryOpts.Profile and the executing client is
	// in-process. Profile.Deltas() gives estimated-vs-actual
	// cardinality per operator.
	Profile *sparql.Profile
	// Generation is the data-version token of the store(s) that
	// answered: the store's mutation counter for a single backend, a
	// composed token for a shard coordinator. Zero when the executing
	// client does not report one. The serve-layer result cache keys on
	// it so mutations invalidate cached answers.
	Generation uint64
	// CacheHit reports that the serve layer answered from its result
	// cache without executing the query.
	CacheHit bool
	// Coalesced reports that this request was deduplicated onto a
	// concurrent identical in-flight execution (single-flight) and
	// shares that execution's results.
	Coalesced bool
	// QueueWait is the time the request spent queued in admission
	// control before executing, so a slow query that waited is
	// distinguishable from one that was slow to join.
	QueueWait time.Duration
}

// QuerierX is the extension interface of the protocol boundary: a
// Client that also reports per-query execution metadata. All four
// package clients (InProcess, HTTPClient, ResilientClient,
// FaultClient) implement it; Client.Query remains the compatible thin
// adapter. Callers that need metadata use the package-level QueryX
// helper, which degrades gracefully for foreign Client
// implementations.
type QuerierX interface {
	Client
	QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error)
}

// QueryX routes req through c, using the QuerierX fast path when c
// implements it and falling back to wall-clock-only metadata around
// plain Client.Query otherwise.
func QueryX(ctx context.Context, c Client, req Request) (*sparql.Results, QueryMeta, error) {
	if qx, ok := c.(QuerierX); ok {
		return qx.QueryX(ctx, req)
	}
	start := time.Now()
	res, err := c.Query(ctx, req.Query)
	meta := QueryMeta{Source: "client", Step: req.Opts.Step, Wall: time.Since(start)}
	if res != nil {
		meta.Rows = res.Len()
	}
	return res, meta, err
}

// QueryStep is the one-liner for tagged queries that do not need the
// metadata: it threads the step tag (and the ambient trace span)
// through QueryX and returns just results and error.
func QueryStep(ctx context.Context, c Client, step, query string) (*sparql.Results, error) {
	res, _, err := QueryX(ctx, c, Request{Query: query, Opts: QueryOpts{Step: step}})
	return res, err
}

// errorKinds is the label vocabulary of the error-taxonomy counters.
var errorKinds = [...]string{"retryable", "permanent", "timeout", "circuit_open", "canceled", "other"}

// errorKind maps an error to its taxonomy label.
func errorKind(err error) string {
	switch {
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrRetryable):
		return "retryable"
	case errors.Is(err, ErrPermanent):
		return "permanent"
	default:
		return "other"
	}
}

// clientMetrics is the per-client registry series, pre-created at
// construction so the query path is a few atomic adds. nil (registry
// absent) disables everything via the obs nil fast path.
type clientMetrics struct {
	queries *obs.Counter
	latency *obs.Histogram
	errors  map[string]*obs.Counter // by taxonomy kind
}

// newClientMetrics registers the standard client series under the
// given client label.
func newClientMetrics(reg *obs.Registry, client string) *clientMetrics {
	if reg == nil {
		return nil
	}
	m := &clientMetrics{
		queries: reg.Counter("re2xolap_endpoint_queries_total",
			"Queries issued through the protocol boundary.", obs.L("client", client)),
		latency: reg.Histogram("re2xolap_endpoint_query_seconds",
			"End-to-end query latency at the protocol boundary.", nil, obs.L("client", client)),
		errors: make(map[string]*obs.Counter, len(errorKinds)),
	}
	for _, kind := range errorKinds {
		m.errors[kind] = reg.Counter("re2xolap_endpoint_query_errors_total",
			"Query failures by error-taxonomy kind.", obs.L("client", client), obs.L("kind", kind))
	}
	return m
}

// record publishes one query outcome. Safe on a nil receiver.
func (m *clientMetrics) record(wall time.Duration, err error) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.latency.ObserveDuration(wall)
	if err != nil {
		m.errors[errorKind(err)].Inc()
	}
}

// recordSlow feeds the slow-query log from QueryMeta. Safe on a nil
// log.
func recordSlow(l *obs.SlowLog, query string, meta QueryMeta, err error) {
	if !l.Slow(meta.Wall) {
		return
	}
	entry := obs.SlowQuery{
		Source:        meta.Source,
		Step:          meta.Step,
		WallMS:        float64(meta.Wall) / float64(time.Millisecond),
		Rows:          meta.Rows,
		Retries:       meta.Retries,
		Plan:          meta.Plan,
		Shards:        meta.Shards,
		SkippedShards: meta.SkippedShards,
		CacheHit:      meta.CacheHit,
		Coalesced:     meta.Coalesced,
		QueueWaitMS:   float64(meta.QueueWait) / float64(time.Millisecond),
		Query:         query,
	}
	if meta.HasPhases {
		entry.PhaseMS = obs.PhaseMS(meta.Phases.Map())
	}
	if err != nil {
		entry.Error = err.Error()
	}
	l.Record(entry)
}

// querySpan opens the per-query trace span: the explicit span from
// the request wins, the ambient context span otherwise. Returns the
// (possibly re-derived) context and the span to end, both untouched
// when tracing is off.
func querySpan(ctx context.Context, req Request, name string) (context.Context, *obs.Span) {
	parent := req.Opts.Span
	if parent == nil {
		parent = obs.SpanFrom(ctx)
	}
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Start(name)
	if req.Opts.Step != "" {
		sp.SetAttr("step", req.Opts.Step)
	}
	return obs.ContextWith(ctx, sp), sp
}

package endpoint

import (
	"net/http"
	"time"

	"re2xolap/internal/obs"
)

// Option configures a client or server at construction time. One
// option vocabulary covers all constructors (NewInProcess,
// NewHTTPClient, NewResilient, NewServer); each constructor applies
// the options it understands and ignores the rest, so a deployment
// can thread the same observability options through every layer:
//
//	reg := obs.NewRegistry()
//	slow := obs.NewSlowLog(os.Stderr, 500*time.Millisecond)
//	c := endpoint.NewResilient(
//	        endpoint.NewHTTPClient(url, endpoint.WithTimeout(time.Minute),
//	                endpoint.WithRegistry(reg), endpoint.WithSlowQueryLog(slow)),
//	        endpoint.WithPolicy(policy), endpoint.WithRegistry(reg))
//
// Options replace the old post-construction field pokes; the struct
// fields they shadow remain exported for compatibility but are
// deprecated (see the field doc comments).
type Option func(*options)

// options is the merged settings bag the constructors read.
type options struct {
	timeout     time.Duration
	httpClient  *http.Client
	policy      *Policy
	registry    *obs.Registry
	slow        *obs.SlowLog
	maxQueryLen int
	workers     *int
	traceSink    *obs.OTLPSink
	queryLog     *obs.QueryRing
	ready        func() error
	tenantHeader string
	routes       []extraRoute
}

// extraRoute is one caller-supplied handler Routes mounts alongside
// the built-in endpoints.
type extraRoute struct {
	pattern string
	handler http.Handler
}

// applyOptions folds opts into a settings bag.
func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithTimeout bounds one HTTP request end to end (HTTPClient; default
// 15 minutes). Resilient per-query deadlines belong in WithPolicy.
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithHTTPClient replaces the underlying *http.Client (HTTPClient),
// overriding WithTimeout.
func WithHTTPClient(c *http.Client) Option {
	return func(o *options) { o.httpClient = c }
}

// WithPolicy sets the resilience policy (NewResilient; default
// DefaultPolicy).
func WithPolicy(p Policy) Option {
	return func(o *options) { o.policy = &p }
}

// WithRegistry publishes the component's metrics (query counts,
// latency histograms, error-taxonomy counters, retry/breaker
// counters, pool gauges) into reg. Without it, metrics are off and
// the query path pays only nil checks.
func WithRegistry(r *obs.Registry) Option {
	return func(o *options) { o.registry = r }
}

// WithSlowQueryLog records queries at or above the log's threshold,
// with their phase breakdown where available.
func WithSlowQueryLog(l *obs.SlowLog) Option {
	return func(o *options) { o.slow = l }
}

// WithMaxQueryLen bounds accepted query text (NewServer; default
// 1 MiB).
func WithMaxQueryLen(n int) Option {
	return func(o *options) { o.maxQueryLen = n }
}

// WithWorkers sets the executor's per-query worker count (NewServer,
// NewInProcess): 0 means GOMAXPROCS, 1 the sequential baseline.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = &n }
}

// WithTraceExport turns on per-request tracing in the server: each
// /sparql request runs under a fresh trace whose span tree is
// exported to the sink (OTLP/JSON lines) when the request completes.
// A request carrying a W3C traceparent header continues the caller's
// trace instead of starting a fresh one.
func WithTraceExport(s *obs.OTLPSink) Option {
	return func(o *options) { o.traceSink = s }
}

// WithReadiness makes /healthz (and /readyz) a readiness probe
// (NewServer, NewClientServer): while fn returns a non-nil error the
// endpoint answers 503 with a JSON body naming the reason, so load
// balancers and shard health probers route around a process that is
// alive but not yet able to answer — still loading its store, or a
// coordinator with an entirely-down shard. Liveness stays on /livez,
// which is 200 for as long as the process serves HTTP at all.
func WithReadiness(fn func() error) Option {
	return func(o *options) { o.ready = fn }
}

// WithTenantHeader names the request header whose value becomes the
// admission-control tenant identity (NewClientServer): the server
// copies it into the request context via ContextWithTenant before
// delegating to the client, so a serve stack with per-tenant limits
// partitions load by caller. Requests without the header fall into the
// default tenant bucket.
func WithTenantHeader(name string) Option {
	return func(o *options) { o.tenantHeader = name }
}

// WithRoute mounts handler at pattern on the mux Routes builds, next
// to the built-in operational endpoints — how a deployment exposes
// federation and SLO views (/metrics/fleet, /debug/slo, /fleet)
// without owning the mux. Patterns must not collide with the built-in
// routes (/sparql, /metrics, /livez, /healthz, /readyz) or each
// other; http.ServeMux panics on duplicates. nil handlers are
// ignored.
func WithRoute(pattern string, handler http.Handler) Option {
	return func(o *options) {
		if handler != nil {
			o.routes = append(o.routes, extraRoute{pattern: pattern, handler: handler})
		}
	}
}

// WithQueryLog records every served query's profile summary (wall
// time, rows, phase breakdown, federation plan and per-shard
// accounting) into the ring, and makes Routes expose it as
// /debug/queries (last-N, JSON, newest-first).
func WithQueryLog(r *obs.QueryRing) Option {
	return func(o *options) { o.queryLog = r }
}

// Package endpoint implements the SPARQL protocol boundary that the
// paper's architecture relies on: RE2xOLAP is "a server application
// [that] sends SPARQL queries to a standard RDF triplestore". The
// Client interface abstracts that triplestore; InProcess wraps a local
// store directly, while Server/HTTPClient speak the SPARQL protocol
// with application/sparql-results+json bodies over HTTP.
package endpoint

import (
	"encoding/json"
	"fmt"
	"io"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
)

// ResultsContentType is the media type of SPARQL JSON results.
const ResultsContentType = "application/sparql-results+json"

type jsonResults struct {
	Head struct {
		Vars []string `json:"vars,omitempty"`
	} `json:"head"`
	Boolean *bool `json:"boolean,omitempty"`
	Results *struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results,omitempty"`
}

type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// EncodeResults writes res as application/sparql-results+json.
func EncodeResults(w io.Writer, res *sparql.Results) error {
	var out jsonResults
	if res.IsAsk {
		b := res.Boolean
		out.Boolean = &b
		return json.NewEncoder(w).Encode(&out)
	}
	out.Head.Vars = res.Vars
	out.Results = &struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}{Bindings: make([]map[string]jsonTerm, 0, len(res.Rows))}
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for i, t := range row {
			if !sparql.Bound(t) {
				continue
			}
			b[res.Vars[i]] = termToJSON(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	return json.NewEncoder(w).Encode(&out)
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.TermIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.TermBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// DecodeResults parses application/sparql-results+json.
func DecodeResults(r io.Reader) (*sparql.Results, error) {
	var in jsonResults
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("endpoint: decode results: %w", err)
	}
	if in.Boolean != nil {
		return &sparql.Results{IsAsk: true, Boolean: *in.Boolean}, nil
	}
	res := &sparql.Results{Vars: in.Head.Vars}
	if in.Results == nil {
		return res, nil
	}
	for _, b := range in.Results.Bindings {
		row := make([]rdf.Term, len(res.Vars))
		for i, v := range res.Vars {
			jt, ok := b[v]
			if !ok {
				continue
			}
			switch jt.Type {
			case "uri":
				row[i] = rdf.NewIRI(jt.Value)
			case "bnode":
				row[i] = rdf.NewBlank(jt.Value)
			case "literal", "typed-literal":
				switch {
				case jt.Lang != "":
					row[i] = rdf.NewLangString(jt.Value, jt.Lang)
				case jt.Datatype != "":
					row[i] = rdf.NewTyped(jt.Value, jt.Datatype)
				default:
					row[i] = rdf.NewString(jt.Value)
				}
			default:
				return nil, fmt.Errorf("endpoint: unknown term type %q", jt.Type)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

package endpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

func clientServerStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i, name := range []string{"a", "b", "c"} {
		err := st.Add(rdf.Triple{
			S: rdf.NewIRI("http://t/" + name),
			P: rdf.NewIRI("http://t/v"),
			O: rdf.NewInteger(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestClientServerProxies checks a client-backed server speaks the
// same protocol as a store-backed one.
func TestClientServerProxies(t *testing.T) {
	st := clientServerStore(t)
	direct := httptest.NewServer(NewServer(st))
	defer direct.Close()
	proxy := httptest.NewServer(NewClientServer(NewInProcess(st)))
	defer proxy.Close()

	query := `SELECT ?s ?v WHERE { ?s <http://t/v> ?v } ORDER BY ?v`
	fetch := func(base string) []byte {
		resp, err := http.PostForm(base, url.Values{"query": {query}})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	if d, p := fetch(direct.URL), fetch(proxy.URL); !bytes.Equal(d, p) {
		t.Fatalf("proxy body diverges:\n%s\nvs\n%s", p, d)
	}

	// Bad query surfaces as 400 through the client path too.
	resp, err := http.PostForm(proxy.URL, url.Values{"query": {"SELECT nonsense"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query through proxy: status %d, want 400", resp.StatusCode)
	}
}

// incompleteClient reports a degraded partial answer.
type incompleteClient struct{ inner *InProcess }

func (c incompleteClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

func (c incompleteClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	res, meta, err := c.inner.QueryX(ctx, req)
	meta.Incomplete = true
	return res, meta, err
}

func TestClientServerIncompleteHeader(t *testing.T) {
	st := clientServerStore(t)
	srv := httptest.NewServer(NewClientServer(incompleteClient{inner: NewInProcess(st)}))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, url.Values{"query": {`SELECT ?s WHERE { ?s <http://t/v> ?o }`}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Re2xolap-Incomplete"); got != "true" {
		t.Fatalf("X-Re2xolap-Incomplete = %q, want true", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the export sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerTraceExport checks WithTraceExport emits one OTLP/JSON
// line per request, on the store-backed server.
func TestServerTraceExport(t *testing.T) {
	st := clientServerStore(t)
	var buf syncBuffer
	sink := obs.NewOTLPSink(&buf, "sparqld")
	srv := httptest.NewServer(NewServer(st, WithTraceExport(sink)))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.PostForm(srv.URL, url.Values{"query": {`SELECT ?s WHERE { ?s <http://t/v> ?o }`}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trace lines, got %d:\n%s", len(lines), buf.String())
	}
	var req struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct{ Name string }
			}
		}
	}
	if err := json.Unmarshal([]byte(lines[0]), &req); err != nil {
		t.Fatal(err)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 || spans[0].Name != "sparql-request" {
		t.Fatalf("unexpected span tree: %+v", spans)
	}
}

package endpoint

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

func clientServerStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i, name := range []string{"a", "b", "c"} {
		err := st.Add(rdf.Triple{
			S: rdf.NewIRI("http://t/" + name),
			P: rdf.NewIRI("http://t/v"),
			O: rdf.NewInteger(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestClientServerProxies checks a client-backed server speaks the
// same protocol as a store-backed one.
func TestClientServerProxies(t *testing.T) {
	st := clientServerStore(t)
	direct := httptest.NewServer(NewServer(st))
	defer direct.Close()
	proxy := httptest.NewServer(NewClientServer(NewInProcess(st)))
	defer proxy.Close()

	query := `SELECT ?s ?v WHERE { ?s <http://t/v> ?v } ORDER BY ?v`
	fetch := func(base string) []byte {
		resp, err := http.PostForm(base, url.Values{"query": {query}})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	if d, p := fetch(direct.URL), fetch(proxy.URL); !bytes.Equal(d, p) {
		t.Fatalf("proxy body diverges:\n%s\nvs\n%s", p, d)
	}

	// Bad query surfaces as 400 through the client path too.
	resp, err := http.PostForm(proxy.URL, url.Values{"query": {"SELECT nonsense"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query through proxy: status %d, want 400", resp.StatusCode)
	}
}

// incompleteClient reports a degraded partial answer.
type incompleteClient struct{ inner *InProcess }

func (c incompleteClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

func (c incompleteClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	res, meta, err := c.inner.QueryX(ctx, req)
	meta.Incomplete = true
	return res, meta, err
}

func TestClientServerIncompleteHeader(t *testing.T) {
	st := clientServerStore(t)
	srv := httptest.NewServer(NewClientServer(incompleteClient{inner: NewInProcess(st)}))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, url.Values{"query": {`SELECT ?s WHERE { ?s <http://t/v> ?o }`}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Re2xolap-Incomplete"); got != "true" {
		t.Fatalf("X-Re2xolap-Incomplete = %q, want true", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the export sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerTraceExport checks WithTraceExport emits one OTLP/JSON
// line per request, on the store-backed server.
func TestServerTraceExport(t *testing.T) {
	st := clientServerStore(t)
	var buf syncBuffer
	sink := obs.NewOTLPSink(&buf, "sparqld")
	srv := httptest.NewServer(NewServer(st, WithTraceExport(sink)))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.PostForm(srv.URL, url.Values{"query": {`SELECT ?s WHERE { ?s <http://t/v> ?o }`}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trace lines, got %d:\n%s", len(lines), buf.String())
	}
	var req struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct{ Name string }
			}
		}
	}
	if err := json.Unmarshal([]byte(lines[0]), &req); err != nil {
		t.Fatal(err)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 || spans[0].Name != "sparql-request" {
		t.Fatalf("unexpected span tree: %+v", spans)
	}
}

// TestTraceparentPropagation checks the cross-process stitching end to
// end at the protocol layer: HTTPClient injects the W3C traceparent
// header from the ambient span, and a WithTraceExport server continues
// that trace — the exported span tree carries the caller's trace ID
// with the caller's span as the root's parent.
func TestTraceparentPropagation(t *testing.T) {
	st := clientServerStore(t)
	var buf syncBuffer
	sink := obs.NewOTLPSink(&buf, "shard")
	inner := NewServer(st, WithTraceExport(sink))
	var gotHeader string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get("traceparent")
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	tr := obs.NewTrace("coordinator")
	ctx := obs.ContextWith(context.Background(), tr.Root())
	c := NewHTTPClient(srv.URL)
	if _, _, err := c.QueryX(ctx, Request{Query: `SELECT ?s WHERE { ?s <http://t/v> ?o }`}); err != nil {
		t.Fatal(err)
	}
	tr.End()

	tid, sid, ok := obs.ParseTraceparent(gotHeader)
	if !ok {
		t.Fatalf("server saw no valid traceparent header: %q", gotHeader)
	}
	wantTID, _, ok := obs.ParseTraceparent(tr.Root().Traceparent())
	if !ok || tid != wantTID {
		t.Fatalf("header trace ID = %x, want coordinator's %x", tid, wantTID)
	}

	var req struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string
					SpanID       string
					ParentSpanID string
					Name         string
				}
			}
		}
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &req); err != nil {
		t.Fatal(err)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if spans[0].TraceID != hex.EncodeToString(tid[:]) {
		t.Errorf("exported trace ID %s, want %s", spans[0].TraceID, hex.EncodeToString(tid[:]))
	}
	if spans[0].ParentSpanID != hex.EncodeToString(sid[:]) {
		t.Errorf("exported root parent %s, want caller span %s", spans[0].ParentSpanID, hex.EncodeToString(sid[:]))
	}
}

// TestServerQueryLog checks WithQueryLog records served queries and
// Routes exposes them as /debug/queries.
func TestServerQueryLog(t *testing.T) {
	st := clientServerStore(t)
	ring := obs.NewQueryRing(8)
	s := NewServer(st, WithQueryLog(ring))
	srv := httptest.NewServer(s.Routes(RoutesConfig{}))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {`SELECT ?s WHERE { ?s <http://t/v> ?o }`}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status %d", resp.StatusCode)
	}
	var recs []obs.QueryRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Rows != 3 || recs[0].Source != "server" {
		t.Fatalf("unexpected query log: %+v", recs)
	}
	if len(recs[0].PhaseMS) == 0 {
		t.Error("query log entry missing phase breakdown")
	}
}

// TestInProcessProfileOption checks the opt-in QueryX profile: the
// meta carries a per-operator tree whose root row count matches the
// result, with estimated-vs-actual deltas for the scans.
func TestInProcessProfileOption(t *testing.T) {
	st := clientServerStore(t)
	c := NewInProcess(st)
	res, meta, err := c.QueryX(context.Background(),
		Request{Query: `SELECT ?s ?v WHERE { ?s <http://t/v> ?v } ORDER BY ?v`, Opts: QueryOpts{Profile: true}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Profile == nil {
		t.Fatal("Opts.Profile set but meta.Profile nil")
	}
	if got := meta.Profile.Root.RowsOut; got != res.Len() {
		t.Errorf("profile root rows = %d, result rows = %d", got, res.Len())
	}
	if len(meta.Profile.Deltas()) == 0 {
		t.Error("no cardinality deltas in profile")
	}
	// Without the option the profile stays nil and results match.
	bare, meta2, err := c.QueryX(context.Background(),
		Request{Query: `SELECT ?s ?v WHERE { ?s <http://t/v> ?v } ORDER BY ?v`})
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Profile != nil {
		t.Error("profile filled without Opts.Profile")
	}
	if res.String() != bare.String() {
		t.Errorf("profiled results diverge from bare:\n%s\nvs\n%s", res, bare)
	}
}

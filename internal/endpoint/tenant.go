package endpoint

import "context"

// GenerationSource is implemented by clients that can report the
// current data version of their backing store(s) *before* executing a
// query: store.Store (the counter itself), InProcess, and the shard
// Coordinator (a composed token). The serve-layer result cache reads
// it on every lookup so a mutation invalidates cached answers.
type GenerationSource interface {
	Generation() uint64
}

// Unwrapper is implemented by decorating clients (ResilientClient,
// FaultClient, the serve stack) so capability probes like
// GenerationOf can reach the innermost client.
type Unwrapper interface {
	Unwrap() Client
}

// GenerationOf walks the Unwrap chain from c and returns the first
// GenerationSource's current generation. ok is false when no client in
// the chain reports one (e.g. a plain HTTP client to a foreign
// endpoint).
func GenerationOf(c Client) (uint64, bool) {
	for c != nil {
		if gs, ok := c.(GenerationSource); ok {
			return gs.Generation(), true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return 0, false
		}
		c = u.Unwrap()
	}
	return 0, false
}

// tenantKey is the context key carrying the requesting tenant's
// identity across the Client boundary.
type tenantKey struct{}

// ContextWithTenant returns ctx tagged with the tenant identity
// admission control partitions by. The HTTP server derives it from the
// configured tenant header; in-process callers may set it directly.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant identity from ctx, or "" when the
// request is untagged (admission control buckets those under its
// default tenant).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

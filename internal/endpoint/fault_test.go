package endpoint

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		inner := NewInProcess(testStore(t))
		fc := NewFault(inner, FaultConfig{Seed: 42, FailureRate: 0.5})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: same seed must replay the same faults", i)
		}
	}
	var fails int
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("failure mix = %d/%d, want a proper mix at rate 0.5", fails, len(a))
	}
}

func TestFaultTransientErrorsAreRetryable(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 1, FailFirst: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
		if err == nil {
			t.Fatalf("call %d: FailFirst not honoured", i+1)
		}
		if !Retryable(err) {
			t.Errorf("injected fault not retryable: %v", err)
		}
	}
	if _, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatalf("call after FailFirst window failed: %v", err)
	}
	if fc.Injected() != 2 || fc.Calls() != 3 {
		t.Errorf("injected/calls = %d/%d, want 2/3", fc.Injected(), fc.Calls())
	}
}

func TestFaultHardDown(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Down: true})
	for i := 0; i < 5; i++ {
		if _, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`); err == nil || !Retryable(err) {
			t.Fatalf("hard-down endpoint returned %v", err)
		}
	}
	if inner.QueryCount() != 0 {
		t.Errorf("inner client reached %d times while down", inner.QueryCount())
	}
}

func TestFaultTruncatedBody(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 3, TruncateRate: 1.0})
	_, err := fc.Query(context.Background(), `SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)
	if err == nil {
		t.Fatal("truncated body decoded")
	}
	if !Retryable(err) {
		t.Errorf("truncated body not retryable: %v", err)
	}
}

func TestFaultGarbageBody(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 3, GarbageRate: 1.0})
	_, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`)
	if err == nil || !Retryable(err) {
		t.Fatalf("garbage body returned %v", err)
	}
}

func TestFaultLatencyHonoursContext(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
	if err == nil {
		t.Fatal("latency injection ignored the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Error("injected latency did not respect cancellation")
	}
}

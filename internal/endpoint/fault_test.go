package endpoint

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		inner := NewInProcess(testStore(t))
		fc := NewFault(inner, FaultConfig{Seed: 42, FailureRate: 0.5})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: same seed must replay the same faults", i)
		}
	}
	var fails int
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("failure mix = %d/%d, want a proper mix at rate 0.5", fails, len(a))
	}
}

func TestFaultTransientErrorsAreRetryable(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 1, FailFirst: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
		if err == nil {
			t.Fatalf("call %d: FailFirst not honoured", i+1)
		}
		if !Retryable(err) {
			t.Errorf("injected fault not retryable: %v", err)
		}
	}
	if _, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatalf("call after FailFirst window failed: %v", err)
	}
	if fc.Injected() != 2 || fc.Calls() != 3 {
		t.Errorf("injected/calls = %d/%d, want 2/3", fc.Injected(), fc.Calls())
	}
}

func TestFaultHardDown(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Down: true})
	for i := 0; i < 5; i++ {
		if _, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`); err == nil || !Retryable(err) {
			t.Fatalf("hard-down endpoint returned %v", err)
		}
	}
	if inner.QueryCount() != 0 {
		t.Errorf("inner client reached %d times while down", inner.QueryCount())
	}
}

func TestFaultTruncatedBody(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 3, TruncateRate: 1.0})
	_, err := fc.Query(context.Background(), `SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)
	if err == nil {
		t.Fatal("truncated body decoded")
	}
	if !Retryable(err) {
		t.Errorf("truncated body not retryable: %v", err)
	}
}

func TestFaultGarbageBody(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Seed: 3, GarbageRate: 1.0})
	_, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`)
	if err == nil || !Retryable(err) {
		t.Fatalf("garbage body returned %v", err)
	}
}

func TestFaultLatencyHonoursContext(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
	if err == nil {
		t.Fatal("latency injection ignored the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Error("injected latency did not respect cancellation")
	}
}

func TestFaultSetLatency(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{})
	ctx := context.Background()

	fc.SetLatency(60 * time.Millisecond)
	t0 := time.Now()
	if _, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 60*time.Millisecond {
		t.Errorf("query with SetLatency(60ms) returned in %v", d)
	}

	// Restoring the config value (zero here) removes the delay.
	fc.SetLatency(-1)
	t0 = time.Now()
	if _, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 30*time.Millisecond {
		t.Errorf("query after latency reset took %v", d)
	}
}

func TestFaultBlackhole(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
	if err == nil {
		t.Fatal("blackholed call returned")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("blackhole past a deadline should classify as timeout: %v", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Error("blackhole ignored cancellation")
	}
	if inner.QueryCount() != 0 {
		t.Errorf("inner client reached %d times while blackholed", inner.QueryCount())
	}
	// Heal at runtime.
	fc.SetBlackhole(false)
	if _, err := fc.Query(context.Background(), `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatalf("healed blackhole still failing: %v", err)
	}
}

func TestFaultFlappy(t *testing.T) {
	inner := NewInProcess(testStore(t))
	// Cycle: down 2, up 3.
	fc := NewFault(inner, FaultConfig{FlapDown: 2, FlapUp: 3})
	ctx := context.Background()
	var got []bool
	for i := 0; i < 10; i++ {
		_, err := fc.Query(ctx, `ASK { ?s ?p ?o . }`)
		got = append(got, err == nil)
		if err != nil && !Retryable(err) {
			t.Fatalf("call %d: flap fault not retryable: %v", i+1, err)
		}
	}
	want := []bool{false, false, true, true, true, false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap schedule = %v, want %v", got, want)
		}
	}
	// FlapUp defaults to FlapDown.
	fc2 := NewFault(NewInProcess(testStore(t)), FaultConfig{FlapDown: 1})
	var got2 []bool
	for i := 0; i < 4; i++ {
		_, err := fc2.Query(ctx, `ASK { ?s ?p ?o . }`)
		got2 = append(got2, err == nil)
	}
	want2 := []bool{false, true, false, true}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("default-FlapUp schedule = %v, want %v", got2, want2)
		}
	}
}

func TestFaultPing(t *testing.T) {
	inner := NewInProcess(testStore(t))
	fc := NewFault(inner, FaultConfig{})
	ctx := context.Background()
	if err := fc.Ping(ctx); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	fc.SetDown(true)
	if err := fc.Ping(ctx); err == nil || !Retryable(err) {
		t.Fatalf("down ping = %v, want retryable error", err)
	}
	fc.SetDown(false)
	fc.SetBlackhole(true)
	pctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := fc.Ping(pctx); err == nil {
		t.Fatal("blackholed ping returned nil")
	}
	// Probes never advance the call counter: the query fault schedule
	// is independent of probe frequency.
	if fc.Calls() != 0 {
		t.Errorf("pings advanced the call counter to %d", fc.Calls())
	}
}

package endpoint

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
)

// Satellite: DecodeResults must reject malformed and truncated bodies
// with an error rather than returning a silently-partial result set.
// The ResilientClient relies on this to detect a connection cut
// mid-response.
func TestDecodeResultsMalformed(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"empty body", ""},
		{"html error page", "<html><body>502 Bad Gateway</body></html>"},
		{"truncated object", `{"head":{"vars":["a"]},"results":{"bindings":[{"a":{"ty`},
		{"bare garbage", "definitely not json"},
		{"unknown term type", `{"head":{"vars":["a"]},"results":{"bindings":[{"a":{"type":"quantum","value":"x"}}]}}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := DecodeResults(strings.NewReader(tt.body))
			if err == nil {
				t.Fatalf("decoded %q into %+v, want error", tt.body, res)
			}
		})
	}
}

// TestDecodeResultsTruncatedEncoding cuts a real encoded result set at
// every byte offset: no prefix may decode into a full-length result.
func TestDecodeResultsTruncatedEncoding(t *testing.T) {
	res := &sparql.Results{
		Vars: []string{"s", "v"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://ex.org/obs1"), rdf.NewInteger(10)},
			{rdf.NewIRI("http://ex.org/obs2"), rdf.NewInteger(20)},
		},
	}
	var buf bytes.Buffer
	if err := EncodeResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full)-1; cut++ {
		got, err := DecodeResults(bytes.NewReader(full[:cut]))
		if err == nil && got.Len() == res.Len() {
			t.Fatalf("prefix of %d/%d bytes decoded to a complete result", cut, len(full))
		}
	}
	if _, err := DecodeResults(bytes.NewReader(full)); err != nil {
		t.Fatalf("full body failed to decode: %v", err)
	}
}

func TestDecodeResultsUnboundAndEmptyBindings(t *testing.T) {
	body := `{"head":{"vars":["a","b"]},"results":{"bindings":[{},{"b":{"type":"literal","value":"x"}}]}}`
	res, err := DecodeResults(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if sparql.Bound(res.Rows[0][0]) || sparql.Bound(res.Rows[0][1]) {
		t.Error("empty binding produced bound terms")
	}
	if res.Rows[1][1] != rdf.NewString("x") {
		t.Errorf("cell = %v", res.Rows[1][1])
	}
}

func TestWantsXMLOrdering(t *testing.T) {
	tests := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{XMLResultsContentType, true},
		{ResultsContentType, false},
		{XMLResultsContentType + ", " + ResultsContentType, true},
		{ResultsContentType + ", " + XMLResultsContentType, false},
		{"text/html, " + XMLResultsContentType, true},
	}
	for _, tt := range tests {
		if got := wantsXML(tt.accept); got != tt.want {
			t.Errorf("wantsXML(%q) = %v, want %v", tt.accept, got, tt.want)
		}
	}
}

// TestServerNegotiationPrecedence pins the server's tie-breaking rules:
// JSON wins over CSV whenever both are acceptable, and over XML when
// listed first.
func TestServerNegotiationPrecedence(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore(t)))
	defer srv.Close()
	q := url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)

	tests := []struct {
		accept string
		wantCT string
	}{
		{"", ResultsContentType},
		{"*/*", ResultsContentType},
		{CSVResultsContentType, CSVResultsContentType},
		{CSVResultsContentType + ", " + ResultsContentType, ResultsContentType},
		{ResultsContentType + ", " + CSVResultsContentType, ResultsContentType},
		{ResultsContentType + ", " + XMLResultsContentType, ResultsContentType},
		{XMLResultsContentType + ", " + ResultsContentType, XMLResultsContentType},
	}
	for _, tt := range tests {
		t.Run("accept="+tt.accept, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+q, nil)
			if tt.accept != "" {
				req.Header.Set("Accept", tt.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != tt.wantCT {
				t.Errorf("content type = %q, want %q", ct, tt.wantCT)
			}
		})
	}
}

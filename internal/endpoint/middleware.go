package endpoint

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// Server-side hardening middleware. cmd/sparqld composes these around
// the SPARQL handler so one bad query cannot take the process down:
// panics become 500s, every request carries a deadline, and excess
// load is shed with 503 instead of queueing without bound.

// Recover converts handler panics into 500 responses (with a logged
// stack trace) instead of killing the serving goroutine's connection
// or, for panics during header writes, the whole process.
func Recover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("endpoint: panic serving %s: %v\n%s", r.URL.Path, v, debug.Stack())
				// Best effort: if the handler already wrote headers this
				// is a no-op on the status line.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// WithQueryTimeout enforces a per-request deadline through the request
// context. The SPARQL executor checks its context inside long joins,
// closures, and aggregations, so expiry actually stops work rather
// than just abandoning the response.
func WithQueryTimeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// LimitInFlight admits at most n concurrent requests; the rest are
// shed immediately with 503 and a Retry-After hint, which the
// ResilientClient treats as retryable. Shedding beats queueing: a
// saturated analytical endpoint that queues silently turns client
// deadlines into cascading timeouts.
func LimitInFlight(h http.Handler, n int) http.Handler {
	if n <= 0 {
		return h
	}
	var inFlight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inFlight.Add(1) > int64(n) {
			inFlight.Add(-1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
			return
		}
		defer inFlight.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// HardenConfig bundles the server-side protections.
type HardenConfig struct {
	// QueryTimeout is the per-request execution deadline; 0 disables.
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrent requests; 0 disables shedding.
	MaxInFlight int
}

// Harden wraps h in the full protection stack: shedding outermost
// (cheap rejection before any work), then panic recovery, then the
// per-request deadline.
func Harden(h http.Handler, cfg HardenConfig) http.Handler {
	h = WithQueryTimeout(h, cfg.QueryTimeout)
	h = Recover(h)
	h = LimitInFlight(h, cfg.MaxInFlight)
	return h
}

// RetryAfter formats a Retry-After value for d (helper for handlers
// that shed with a custom hint).
func RetryAfter(d time.Duration) string {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

package endpoint

import (
	"encoding/csv"
	"io"

	"re2xolap/internal/sparql"
)

// CSVResultsContentType is the media type of SPARQL CSV results.
const CSVResultsContentType = "text/csv"

// EncodeResultsCSV writes res in the SPARQL 1.1 Query Results CSV
// Format: a header row of variable names, then one row per solution
// with plain lexical values (IRIs bare, literals unquoted by the CSV
// layer itself). ASK results become a single boolean cell.
func EncodeResultsCSV(w io.Writer, res *sparql.Results) error {
	cw := csv.NewWriter(w)
	if res.IsAsk {
		if err := cw.Write([]string{"boolean"}); err != nil {
			return err
		}
		v := "false"
		if res.Boolean {
			v = "true"
		}
		if err := cw.Write([]string{v}); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	if err := cw.Write(res.Vars); err != nil {
		return err
	}
	record := make([]string, len(res.Vars))
	for _, row := range res.Rows {
		for i, t := range row {
			if sparql.Bound(t) {
				record[i] = t.Value
			} else {
				record[i] = ""
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

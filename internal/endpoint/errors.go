package endpoint

import (
	"context"
	"errors"
	"fmt"
)

// Error taxonomy of the protocol layer. Callers above the Client
// boundary (internal/core, internal/bench, the REPL) branch on these
// with errors.Is instead of string-matching:
//
//   - ErrTimeout: the per-query deadline expired (client side) or the
//     endpoint reported a timeout. Retrying with a larger budget may
//     succeed; retrying within the same deadline will not.
//   - ErrRetryable: a transient failure — network error, connection
//     reset, 429/5xx status, or a truncated/garbled response body.
//     The ResilientClient retries these automatically.
//   - ErrPermanent: the request itself is bad (4xx other than 429,
//     SPARQL syntax errors). Retrying the identical query is pointless.
//   - ErrCircuitOpen: the circuit breaker is rejecting queries because
//     the endpoint has failed repeatedly. Back off and try again after
//     the cooldown; the breaker half-opens on its own.
//   - ErrOverloaded: admission control shed the request — the tenant's
//     queue is full or the predicted queue wait exceeds the request
//     deadline. Retryable after backing off (the HTTP server maps it
//     to 429 + Retry-After).
var (
	ErrTimeout     = errors.New("endpoint: query timeout")
	ErrRetryable   = errors.New("endpoint: retryable failure")
	ErrPermanent   = errors.New("endpoint: permanent failure")
	ErrCircuitOpen = errors.New("endpoint: circuit open")
	ErrOverloaded  = errors.New("endpoint: overloaded")
)

// MarkOverloaded tags err as an admission-control rejection:
// errors.Is(err, ErrOverloaded) and errors.Is(err, ErrRetryable) both
// become true (the caller may retry after Retry-After). A nil err
// stays nil.
func MarkOverloaded(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: &classified{err: err, class: ErrOverloaded}, class: ErrRetryable}
}

// classified wraps an error so that errors.Is(err, class) holds while
// the original error remains reachable through Unwrap.
type classified struct {
	err   error
	class error
}

func (c *classified) Error() string { return c.err.Error() }

func (c *classified) Unwrap() error { return c.err }

func (c *classified) Is(target error) bool { return target == c.class }

// MarkRetryable tags err as transient: errors.Is(err, ErrRetryable)
// becomes true. A nil err stays nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrRetryable}
}

// MarkPermanent tags err as non-retryable: errors.Is(err, ErrPermanent)
// becomes true. A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrPermanent}
}

// Retryable reports whether err is worth retrying with the same
// deadline budget: tagged transient failures and raw network-level
// context errors from a cancelled attempt do not qualify, but
// ErrRetryable does.
func Retryable(err error) bool { return errors.Is(err, ErrRetryable) }

// Transient reports whether err is a delivery failure rather than a
// defect in the query itself: retryable failures and timeouts. Circuit
// rejections are NOT transient in this sense — they signal the whole
// endpoint is down, so bulk callers should abort rather than grind
// through every remaining query.
func Transient(err error) bool {
	return errors.Is(err, ErrRetryable) || errors.Is(err, ErrTimeout)
}

// StatusError is a non-200 SPARQL protocol response. Its class follows
// the HTTP semantics: 429 and 5xx are retryable, other 4xx permanent.
type StatusError struct {
	Code int
	// Body holds a bounded prefix of the response body, for messages.
	Body string
}

func (e *StatusError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("endpoint: HTTP %d", e.Code)
	}
	return fmt.Sprintf("endpoint: HTTP %d: %s", e.Code, e.Body)
}

// Is classifies the status code into the taxonomy.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrRetryable:
		return e.Code == 429 || e.Code >= 500
	case ErrPermanent:
		return e.Code >= 400 && e.Code < 500 && e.Code != 429
	}
	return false
}

// classifyCtx maps a failed attempt's error through its context: if
// the attempt died because its deadline expired, the caller sees
// ErrTimeout; plain cancellation passes through untouched so callers
// can distinguish "the user gave up" from "the endpoint is slow".
func classifyCtx(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return &classified{err: err, class: ErrTimeout}
	}
	return err
}

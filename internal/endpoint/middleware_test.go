package endpoint

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecoverMiddleware(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(nil)
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("query of death")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sparql", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
}

func TestWithQueryTimeoutSetsDeadline(t *testing.T) {
	var had bool
	h := WithQueryTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, had = r.Context().Deadline()
	}), time.Minute)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if !had {
		t.Error("request context carries no deadline")
	}
	// 0 disables: the handler is returned as-is.
	inner := http.NewServeMux()
	if got := WithQueryTimeout(inner, 0); got != http.Handler(inner) {
		t.Error("zero timeout should be a no-op wrapper")
	}
}

func TestLimitInFlightSheds(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	h := LimitInFlight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
	}), 2)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-entered
	<-entered
	// Both slots held: the next request is shed with 503.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	close(block)
	wg.Wait()
	// Slots free again: admitted.
	resp2, err := http.Get(srv.URL + "?x=1")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusServiceUnavailable {
		t.Error("request shed after load dropped")
	}
	// blocked handler admits the late request; drain it
	select {
	case <-entered:
	default:
	}
}

// TestServerQueryTimeoutReturns503 wires the real SPARQL server behind
// WithQueryTimeout with a microscopic deadline and checks the protocol
// answer is a retryable 503, which the HTTPClient then classifies.
func TestServerQueryTimeoutReturns503(t *testing.T) {
	h := Harden(NewServer(testStore(t)), HardenConfig{QueryTimeout: time.Nanosecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	q := url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o . }`)
	resp, err := http.Get(srv.URL + "?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	// And through the client: the error must be retryable, so the
	// resilient layer would try again.
	c := NewHTTPClient(srv.URL)
	_, qerr := c.Query(context.Background(), `SELECT ?s WHERE { ?s ?p ?o . }`)
	if qerr == nil {
		t.Fatal("503 swallowed")
	}
	if !Retryable(qerr) {
		t.Errorf("server timeout not retryable at the client: %v", qerr)
	}
}

func TestHardenStackOrder(t *testing.T) {
	// A panicking handler behind the full stack: the shed limiter must
	// not leak slots when the handler panics.
	log.SetOutput(io.Discard)
	defer log.SetOutput(nil)
	h := Harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), HardenConfig{MaxInFlight: 1, QueryTimeout: time.Minute})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500 (slot leaked?)", i, rec.Code)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	if got := RetryAfter(0); got != "1" {
		t.Errorf("RetryAfter(0) = %s", got)
	}
	if got := RetryAfter(90 * time.Second); got != "90" {
		t.Errorf("RetryAfter(90s) = %s", got)
	}
}

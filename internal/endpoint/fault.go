package endpoint

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"re2xolap/internal/sparql"
)

// FaultConfig configures deterministic fault injection. Rates are
// probabilities in [0,1] drawn from a seeded generator, so a given
// (seed, query sequence) always produces the same faults — the
// repeatability that benchmarking and regression tests need.
type FaultConfig struct {
	// Seed drives the fault schedule; the same seed replays the same
	// faults for the same call sequence.
	Seed int64
	// FailureRate injects transient (retryable) errors before the
	// inner client is consulted.
	FailureRate float64
	// TruncateRate serves the real result re-encoded as SPARQL JSON
	// and cut off mid-body, exercising the decoder's failure path.
	TruncateRate float64
	// GarbageRate serves a non-JSON body instead of results.
	GarbageRate float64
	// Latency is added to every query before anything else happens.
	Latency time.Duration
	// FailFirst deterministically fails the first N queries with
	// transient errors (independent of the rates).
	FailFirst int
	// Down makes every query fail with a transient error: a hard-down
	// endpoint, for breaker tests. SetDown toggles the same state at
	// runtime (killing and reviving a replica mid-test).
	Down bool
	// Blackhole makes every query hang until the caller's context
	// expires — a network partition rather than a fast failure, for
	// testing timeout-driven failover. SetBlackhole toggles it at
	// runtime.
	Blackhole bool
	// FlapDown/FlapUp make the endpoint flap deterministically: each
	// cycle it is down (transient errors) for the first FlapDown calls,
	// then up for the next FlapUp calls. FlapDown <= 0 disables
	// flapping; FlapUp <= 0 defaults to FlapDown.
	FlapDown int
	FlapUp   int
}

// FaultClient decorates a Client with injectable faults: latency,
// transient errors, and truncated or garbage response bodies. It is
// safe for concurrent use; the fault schedule is serialized so runs
// are reproducible under a fixed call order.
type FaultClient struct {
	inner Client
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	calls    atomic.Int64
	injected atomic.Int64
	down     atomic.Bool
	blackh   atomic.Bool
	// latency overrides cfg.Latency when set (nanoseconds; negative
	// means "use the config value"). SetLatency writes it at runtime.
	latency atomic.Int64
}

// NewFault wraps inner with the given fault schedule.
func NewFault(inner Client, cfg FaultConfig) *FaultClient {
	c := &FaultClient{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	c.down.Store(cfg.Down)
	c.blackh.Store(cfg.Blackhole)
	c.latency.Store(-1)
	return c
}

// SetDown flips the hard-down state at runtime: true makes every
// subsequent call fail transiently (the replica was killed), false
// revives it. Safe for concurrent use.
func (c *FaultClient) SetDown(down bool) { c.down.Store(down) }

// SetBlackhole flips the blackhole state at runtime: true makes every
// subsequent call hang until its context expires (a partition), false
// heals it.
func (c *FaultClient) SetBlackhole(on bool) { c.blackh.Store(on) }

// SetLatency changes the injected per-request delay at runtime,
// overriding FaultConfig.Latency for subsequent calls. It makes a
// backend slow without making it fail — the knob admission-control
// and queue tests turn to simulate load without real work. A negative
// d restores the config value.
func (c *FaultClient) SetLatency(d time.Duration) { c.latency.Store(int64(d)) }

// currentLatency resolves the effective injected delay.
func (c *FaultClient) currentLatency() time.Duration {
	if v := c.latency.Load(); v >= 0 {
		return time.Duration(v)
	}
	return c.cfg.Latency
}

// Unwrap returns the decorated client.
func (c *FaultClient) Unwrap() Client { return c.inner }

// Calls returns how many queries were attempted through this client.
func (c *FaultClient) Calls() int64 { return c.calls.Load() }

// Injected returns how many faults were injected so far.
func (c *FaultClient) Injected() int64 { return c.injected.Load() }

// faultKind is one draw of the fault schedule.
type faultKind int

const (
	faultNone faultKind = iota
	faultTransient
	faultTruncate
	faultGarbage
)

// draw picks the fault for the next call.
func (c *FaultClient) draw(call int64) faultKind {
	if c.down.Load() || call <= int64(c.cfg.FailFirst) {
		return faultTransient
	}
	if c.cfg.FlapDown > 0 {
		up := c.cfg.FlapUp
		if up <= 0 {
			up = c.cfg.FlapDown
		}
		if (call-1)%int64(c.cfg.FlapDown+up) < int64(c.cfg.FlapDown) {
			return faultTransient
		}
	}
	c.mu.Lock()
	r := c.rng.Float64()
	c.mu.Unlock()
	switch {
	case r < c.cfg.FailureRate:
		return faultTransient
	case r < c.cfg.FailureRate+c.cfg.TruncateRate:
		return faultTruncate
	case r < c.cfg.FailureRate+c.cfg.TruncateRate+c.cfg.GarbageRate:
		return faultGarbage
	}
	return faultNone
}

// Query implements Client as a thin adapter over QueryX.
func (c *FaultClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, Request{Query: query})
	return res, err
}

// QueryX implements QuerierX: injected faults report wall time only;
// pass-through queries propagate the inner client's metadata.
func (c *FaultClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	meta := QueryMeta{Source: "fault", Step: req.Opts.Step, Attempts: 1}
	call := c.calls.Add(1)
	start := time.Now()
	if c.blackh.Load() {
		// A partitioned endpoint: nothing comes back, ever. The caller's
		// deadline is the only way out.
		c.injected.Add(1)
		<-ctx.Done()
		meta.Wall = time.Since(start)
		return nil, meta, classifyCtx(ctx, MarkRetryable(fmt.Errorf("endpoint: fault: blackholed (call %d): %w", call, ctx.Err())))
	}
	if d := c.currentLatency(); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			meta.Wall = time.Since(start)
			return nil, meta, ctx.Err()
		}
	}
	switch c.draw(call) {
	case faultTransient:
		c.injected.Add(1)
		meta.Wall = time.Since(start)
		return nil, meta, MarkRetryable(fmt.Errorf("endpoint: fault: injected transient failure (call %d)", call))
	case faultTruncate:
		c.injected.Add(1)
		res, im, err := QueryX(ctx, c.inner, req)
		if err != nil {
			im.Wall = time.Since(start)
			return nil, im, err
		}
		res, err = c.truncated(res, call)
		im.Wall = time.Since(start)
		im.Source = "fault"
		return res, im, err
	case faultGarbage:
		c.injected.Add(1)
		_, err := DecodeResults(strings.NewReader("<html><body>502 Bad Gateway</body></html>"))
		meta.Wall = time.Since(start)
		return nil, meta, MarkRetryable(fmt.Errorf("endpoint: fault: garbage body (call %d): %w", call, err))
	}
	res, im, err := QueryX(ctx, c.inner, req)
	im.Source = "fault"
	return res, im, err
}

// Ping implements Pinger so health probers see the injected state:
// a blackholed client hangs until the context expires, a down client
// fails, and everything else delegates to the inner client. Probes do
// NOT advance the call counter or the rate schedule — flap and rate
// faults are driven by query traffic alone, so probe frequency cannot
// perturb a deterministic fault replay.
func (c *FaultClient) Ping(ctx context.Context) error {
	if c.blackh.Load() {
		<-ctx.Done()
		return classifyCtx(ctx, MarkRetryable(fmt.Errorf("endpoint: fault: blackholed probe: %w", ctx.Err())))
	}
	if c.down.Load() {
		return MarkRetryable(fmt.Errorf("endpoint: fault: injected down state"))
	}
	return Ping(ctx, c.inner)
}

// truncated re-encodes res as SPARQL JSON, cuts the body in half, and
// decodes it again — producing exactly the error a dropped connection
// mid-response produces, through the real decoder.
func (c *FaultClient) truncated(res *sparql.Results, call int64) (*sparql.Results, error) {
	var buf bytes.Buffer
	if err := EncodeResults(&buf, res); err != nil {
		return nil, err
	}
	cut := buf.Len() / 2
	if _, err := DecodeResults(bytes.NewReader(buf.Bytes()[:cut])); err != nil {
		return nil, MarkRetryable(fmt.Errorf("endpoint: fault: truncated body (call %d): %w", call, err))
	}
	// A tiny result can decode even when halved; treat it as a
	// transient failure so the schedule stays deterministic.
	return nil, MarkRetryable(fmt.Errorf("endpoint: fault: truncated body (call %d)", call))
}

package endpoint

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"re2xolap/internal/sparql"
)

func TestHealthURL(t *testing.T) {
	cases := map[string]string{
		"http://h:1/sparql":  "http://h:1/healthz",
		"http://h:1/sparql/": "http://h:1/healthz",
		"http://h:1":         "http://h:1/healthz",
		"http://h:1/":        "http://h:1/healthz",
	}
	for in, want := range cases {
		if got := healthURL(in); got != want {
			t.Errorf("healthURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPingFastPaths covers the Pinger implementations: in-process is
// alive with the process, the resilient wrapper delegates straight to
// its inner client (no breaker interaction), and plain clients fall
// back to the ASK probe.
func TestPingFastPaths(t *testing.T) {
	ctx := context.Background()
	ip := NewInProcess(testStore(t))
	if err := Ping(ctx, ip); err != nil {
		t.Fatalf("in-process ping: %v", err)
	}
	if ip.QueryCount() != 0 {
		t.Error("in-process ping ran a query")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := Ping(cctx, ip); err == nil {
		t.Error("cancelled ping must fail")
	}

	// Resilient wrapper: a down inner client fails the probe even when
	// the breaker would still be closed.
	fc := NewFault(NewInProcess(testStore(t)), FaultConfig{Down: true})
	rc := NewResilient(fc)
	if err := Ping(ctx, rc); err == nil {
		t.Error("resilient ping must see the down backend")
	}

	// A client without Ping: probe via ASK.
	plain := plainClient{inner: NewInProcess(testStore(t))}
	if err := Ping(ctx, plain); err != nil {
		t.Fatalf("ASK fallback ping: %v", err)
	}
}

// plainClient hides every optional facet of the inner client.
type plainClient struct{ inner *InProcess }

func (c plainClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	return c.inner.Query(ctx, query)
}

// TestHTTPClientPing checks the GET /healthz fast path: 200 means
// healthy, 503 means not, and a server without the route falls back
// to the ASK probe.
func TestHTTPClientPing(t *testing.T) {
	st := testStore(t)
	srv := httptest.NewServer(NewServer(st).Routes(RoutesConfig{}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL + "/sparql")
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("healthy server ping: %v", err)
	}

	// A 503 readiness answer fails the probe.
	notReady := httptest.NewServer(NewServer(st, WithReadiness(func() error {
		return context.DeadlineExceeded
	})).Routes(RoutesConfig{}))
	defer notReady.Close()
	if err := NewHTTPClient(notReady.URL + "/sparql").Ping(context.Background()); err == nil {
		t.Fatal("503 readiness must fail the probe")
	}

	// No /healthz route at all: fall back to the ASK probe on /sparql.
	var asks atomic.Int64
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sparql" {
			http.NotFound(w, r)
			return
		}
		asks.Add(1)
		NewServer(st).ServeHTTP(w, r)
	}))
	defer bare.Close()
	if err := NewHTTPClient(bare.URL + "/sparql").Ping(context.Background()); err != nil {
		t.Fatalf("ASK fallback against bare endpoint: %v", err)
	}
	if asks.Load() != 1 {
		t.Errorf("ASK fallback queries = %d, want 1", asks.Load())
	}
}

// TestServerReadinessGating checks the liveness/readiness split on the
// serving mux: /livez is always 200, /healthz and /readyz flip from
// 503 (JSON reason) to 200 with the readiness hook.
func TestServerReadinessGating(t *testing.T) {
	var ready atomic.Bool
	s := NewServer(testStore(t), WithReadiness(func() error {
		if ready.Load() {
			return nil
		}
		return context.DeadlineExceeded
	}))
	srv := httptest.NewServer(s.Routes(RoutesConfig{}))
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: body not JSON: %v", path, err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/livez"); code != 200 || body["status"] != "ok" {
		t.Fatalf("/livez = %d %v", code, body)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body := get(path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s before ready = %d, want 503", path, code)
		}
		if body["status"] != "unavailable" || body["reason"] == "" {
			t.Fatalf("%s body = %v, want unavailable with a reason", path, body)
		}
	}

	ready.Store(true)
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body := get(path)
		if code != 200 || body["status"] != "ok" {
			t.Fatalf("%s after ready = %d %v", path, code, body)
		}
	}
	// The store-backed server also reports its triple count once ready.
	if _, body := get("/healthz"); body["triples"] == nil {
		t.Error("ready healthz missing triples count")
	}
}

// skippingClient reports a degraded answer missing shards 1 and 3.
type skippingClient struct{ inner *InProcess }

func (c skippingClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	r, _, err := c.QueryX(ctx, Request{Query: query})
	return r, err
}

func (c skippingClient) QueryX(ctx context.Context, req Request) (*sparql.Results, QueryMeta, error) {
	res, meta, err := c.inner.QueryX(ctx, req)
	meta.Incomplete = true
	meta.SkippedShards = []int{1, 3}
	return res, meta, err
}

// TestSkippedShardsHeader checks a degraded coordinator answer names
// the skipped shard indices on the wire.
func TestSkippedShardsHeader(t *testing.T) {
	srv := httptest.NewServer(NewClientServer(skippingClient{inner: NewInProcess(testStore(t))}))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, url.Values{"query": {`SELECT ?s WHERE { ?s ?p ?o }`}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Re2xolap-Incomplete"); got != "true" {
		t.Fatalf("X-Re2xolap-Incomplete = %q", got)
	}
	if got := resp.Header.Get("X-Re2xolap-Skipped-Shards"); got != "1,3" {
		t.Fatalf("X-Re2xolap-Skipped-Shards = %q, want \"1,3\"", got)
	}
}

// TestPingDoesNotTripBreaker: probes bypass the resilience layer, so
// a failing probe must not consume breaker state and a healthy query
// must still pass immediately after failed probes.
func TestPingDoesNotTripBreaker(t *testing.T) {
	fc := NewFault(NewInProcess(testStore(t)), FaultConfig{})
	rc := NewResilient(fc)
	ctx := context.Background()
	fc.SetDown(true)
	for i := 0; i < 20; i++ {
		if err := Ping(ctx, rc); err == nil {
			t.Fatal("down backend ping succeeded")
		}
	}
	fc.SetDown(false)
	start := time.Now()
	if _, err := rc.Query(ctx, `ASK { ?s ?p ?o . }`); err != nil {
		t.Fatalf("query after failed probes: %v (breaker tripped by probes?)", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("query delayed after probes")
	}
}

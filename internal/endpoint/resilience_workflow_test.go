// Acceptance test for the resilience layer (ISSUE: tentpole): a full
// ReOLAP workflow — bootstrap, synthesis, execution — runs over an
// endpoint that drops 30% of requests, and completes purely through
// the ResilientClient's retries; against a hard-down endpoint the
// circuit breaker trips and surfaces ErrCircuitOpen well within the
// configured deadline instead of grinding through timeouts.
//
// Lives in package endpoint_test so it can drive the real
// datagen → vgraph → core stack through the decorated clients.
package endpoint_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/bench"
	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
	"re2xolap/internal/vgraph"
)

// fastPolicy retries aggressively with no real sleeping, so the test
// exercises the full retry machinery in milliseconds.
func fastPolicy() endpoint.Policy {
	return endpoint.Policy{
		Timeout:     30 * time.Second,
		MaxRetries:  8,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Jitter:      0.5,
		// Threshold high enough that an unlucky streak of independent
		// 30% faults cannot trip it (0.3^20 ≈ 3e-11 per position).
		BreakerThreshold: 20,
		BreakerCooldown:  time.Second,
		Sleep:            func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

func TestWorkflowSurvivesFaultyEndpoint(t *testing.T) {
	spec := datagen.EurostatLike(500)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	inner := endpoint.NewInProcess(st)
	fault := endpoint.NewFault(inner, endpoint.FaultConfig{Seed: 1, FailureRate: 0.3})
	rc := endpoint.NewResilient(fault, endpoint.WithPolicy(fastPolicy()))
	ctx := context.Background()

	// Bootstrap crawls the schema with dozens of queries — every one
	// subject to the 30% fault rate.
	g, err := vgraph.Bootstrap(ctx, rc, spec.Config())
	if err != nil {
		t.Fatalf("bootstrap over faulty endpoint: %v", err)
	}
	if g.Stats().Dimensions != 4 {
		t.Fatalf("dimensions = %d, want 4 (faults corrupted the bootstrap?)", g.Stats().Dimensions)
	}

	eng := core.NewEngine(rc, g, spec.Config())
	d := &bench.Dataset{Spec: spec, Store: st, Client: inner, Graph: g, Engine: eng}
	rng := rand.New(rand.NewSource(7))
	ex, ok := d.SampleExample(rng, 2)
	if !ok {
		t.Fatal("could not sample an example")
	}

	cands, err := eng.Synthesize(ctx, core.Keywords(ex...))
	if err != nil {
		t.Fatalf("synthesis over faulty endpoint: %v", err)
	}
	if len(cands) == 0 {
		t.Fatalf("no interpretation for %v", ex)
	}
	rs, err := eng.Execute(ctx, cands[0].Query)
	if err != nil {
		t.Fatalf("execution over faulty endpoint: %v", err)
	}
	if rs.Len() == 0 {
		t.Error("query returned no tuples")
	}

	if fault.Injected() == 0 {
		t.Error("fault injector never fired; the test proved nothing")
	}
	stats := rc.Stats()
	if stats.Retries == 0 {
		t.Errorf("workflow finished without a single retry despite %d injected faults", fault.Injected())
	}
	if stats.BreakerTrips != 0 {
		t.Errorf("breaker tripped %d times under independent 30%% faults", stats.BreakerTrips)
	}
	t.Logf("workflow done: %d queries, %d attempts, %d retries, %d faults injected",
		stats.Queries, stats.Attempts, stats.Retries, fault.Injected())
}

func TestHardDownEndpointTripsBreakerWithinDeadline(t *testing.T) {
	st, err := datagen.EurostatLike(50).BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	down := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{Down: true})
	p := fastPolicy()
	p.Timeout = 2 * time.Second
	p.MaxRetries = 2
	p.BreakerThreshold = 3
	p.BreakerCooldown = time.Minute
	rc := endpoint.NewResilient(down, endpoint.WithPolicy(p))

	ctx := context.Background()
	t0 := time.Now()
	// First query burns its retry budget (3 attempts = 3 consecutive
	// failures = threshold) and trips the breaker.
	if _, err := rc.Query(ctx, `ASK { ?s ?p ?o . }`); err == nil {
		t.Fatal("hard-down endpoint answered")
	}
	// Subsequent queries must fail fast with ErrCircuitOpen.
	_, err = rc.Query(ctx, `ASK { ?s ?p ?o . }`)
	if !errors.Is(err, endpoint.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if elapsed := time.Since(t0); elapsed > p.Timeout {
		t.Errorf("breaker took %s to trip, deadline was %s", elapsed, p.Timeout)
	}
	if rc.State() != "open" {
		t.Errorf("breaker state = %q, want open", rc.State())
	}
	if trips := rc.Stats().BreakerTrips; trips != 1 {
		t.Errorf("trips = %d, want 1", trips)
	}

	// The bulk callers treat an open circuit as fatal, not skippable:
	// Transient must be false so core/bench abort instead of grinding
	// through every remaining combination.
	if endpoint.Transient(err) {
		t.Error("ErrCircuitOpen classified transient; bulk callers would spin")
	}
}

// failMatching wraps a client and fails every query containing a
// marker substring with a fixed error. Only the witness/validation
// queries of the synthesis contain "LIMIT 1", so targeting that marker
// exercises SynthesizeAll's combination loop deterministically.
type failMatching struct {
	inner  endpoint.Client
	marker string
	err    error
	hits   int
}

func (f *failMatching) Query(ctx context.Context, q string) (*sparql.Results, error) {
	if strings.Contains(q, f.marker) {
		f.hits++
		return nil, f.err
	}
	return f.inner.Query(ctx, q)
}

// TestSynthesisSkipsTransientAbortsOnCircuitOpen pins the degraded-mode
// contract of core.Engine.SynthesizeAll: a transient validation failure
// skips just that combination, an open circuit aborts the synthesis.
func TestSynthesisSkipsTransientAbortsOnCircuitOpen(t *testing.T) {
	spec := datagen.EurostatLike(300)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	inner := endpoint.NewInProcess(st)
	g, err := vgraph.Bootstrap(context.Background(), inner, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	d := &bench.Dataset{Spec: spec, Store: st, Client: inner, Graph: g}
	ex, ok := d.SampleExample(rand.New(rand.NewSource(3)), 2)
	if !ok {
		t.Fatal("could not sample an example")
	}
	tuple := core.Keywords(ex...)

	// Transient failures on every witness query: each combination is
	// skipped, synthesis itself succeeds (with zero candidates).
	flaky := &failMatching{inner: inner, marker: "LIMIT 1",
		err: endpoint.MarkRetryable(errors.New("injected transient"))}
	eng := core.NewEngine(flaky, g, spec.Config())
	cands, err := eng.Synthesize(context.Background(), tuple)
	if err != nil {
		t.Fatalf("transient validation failure aborted synthesis: %v", err)
	}
	if len(cands) != 0 {
		t.Errorf("candidates = %d with every witness query failing", len(cands))
	}
	if flaky.hits == 0 {
		t.Fatal("no witness query issued; marker went stale")
	}
	if eng.SkippedCombinations() == 0 {
		t.Error("skips not recorded in SkippedCombinations")
	}

	// An open circuit aborts: everything after it would fail anyway.
	downstream := &failMatching{inner: inner, marker: "LIMIT 1",
		err: fmt.Errorf("endpoint: %w", endpoint.ErrCircuitOpen)}
	eng2 := core.NewEngine(downstream, g, spec.Config())
	if _, err := eng2.Synthesize(context.Background(), tuple); !errors.Is(err, endpoint.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen to abort synthesis", err)
	}
}

package endpoint

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"re2xolap/internal/sparql"
)

// scriptClient fails according to a script of errors, then succeeds.
type scriptClient struct {
	mu     sync.Mutex
	script []error // consumed front to back; nil entry = success
	calls  int
	block  chan struct{} // when non-nil, Query waits here (limiter tests)
}

func (c *scriptClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.mu.Lock()
	c.calls++
	var err error
	if len(c.script) > 0 {
		err = c.script[0]
		c.script = c.script[1:]
	}
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &sparql.Results{Vars: []string{"x"}}, nil
}

func (c *scriptClient) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// noSleep is injected so retry tests run instantly.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func testPolicy() Policy {
	return Policy{
		MaxRetries:       3,
		BaseBackoff:      time.Millisecond,
		BreakerThreshold: 0,
		Sleep:            noSleep,
	}
}

func TestResilientRetriesTransient(t *testing.T) {
	inner := &scriptClient{script: []error{
		MarkRetryable(errors.New("reset")),
		&StatusError{Code: 503},
		nil,
	}}
	c := NewResilient(inner, WithPolicy(testPolicy()))
	res, err := c.Query(context.Background(), "SELECT * WHERE {}")
	if err != nil {
		t.Fatalf("retryable failures not retried: %v", err)
	}
	if res == nil || inner.callCount() != 3 {
		t.Errorf("calls = %d, want 3", inner.callCount())
	}
	st := c.Stats()
	if st.Retries != 2 || st.Attempts != 3 || st.Queries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResilientNoRetryOnPermanent(t *testing.T) {
	inner := &scriptClient{script: []error{
		&StatusError{Code: 400, Body: "syntax error"},
		nil,
	}}
	c := NewResilient(inner, WithPolicy(testPolicy()))
	_, err := c.Query(context.Background(), "NOT SPARQL")
	if err == nil {
		t.Fatal("permanent failure swallowed")
	}
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("err = %v, not ErrPermanent", err)
	}
	if errors.Is(err, ErrRetryable) {
		t.Errorf("400 classified retryable")
	}
	if inner.callCount() != 1 {
		t.Errorf("calls = %d, want 1 (no retry on 400)", inner.callCount())
	}
}

func TestResilientRetryBudgetExhausted(t *testing.T) {
	var script []error
	for i := 0; i < 10; i++ {
		script = append(script, MarkRetryable(fmt.Errorf("flake %d", i)))
	}
	inner := &scriptClient{script: script}
	p := testPolicy()
	p.MaxRetries = 2
	c := NewResilient(inner, WithPolicy(p))
	_, err := c.Query(context.Background(), "SELECT * WHERE {}")
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !Retryable(err) {
		t.Errorf("err lost its classification: %v", err)
	}
	if inner.callCount() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", inner.callCount())
	}
}

func TestResilientOverallDeadline(t *testing.T) {
	// The inner client blocks forever; the policy deadline must cut it
	// off and surface ErrTimeout.
	inner := &scriptClient{block: make(chan struct{})}
	p := testPolicy()
	p.Timeout = 30 * time.Millisecond
	c := NewResilient(inner, WithPolicy(p))
	t0 := time.Now()
	_, err := c.Query(context.Background(), "SELECT * WHERE {}")
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, not ErrTimeout", err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Errorf("took %s, deadline not enforced", el)
	}
	if !Transient(err) {
		t.Errorf("timeout not Transient")
	}
}

func TestResilientAttemptTimeoutIsRetryable(t *testing.T) {
	// First attempt hangs past the attempt deadline, second succeeds.
	var first atomic.Bool
	inner := clientFunc(func(ctx context.Context, q string) (*sparql.Results, error) {
		if first.CompareAndSwap(false, true) {
			<-ctx.Done() // hang until the attempt deadline
			return nil, ctx.Err()
		}
		return &sparql.Results{}, nil
	})
	p := testPolicy()
	p.AttemptTimeout = 20 * time.Millisecond
	c := NewResilient(inner, WithPolicy(p))
	if _, err := c.Query(context.Background(), "SELECT * WHERE {}"); err != nil {
		t.Fatalf("attempt timeout not retried: %v", err)
	}
}

// clientFunc adapts a function to the Client interface.
type clientFunc func(ctx context.Context, query string) (*sparql.Results, error)

func (f clientFunc) Query(ctx context.Context, query string) (*sparql.Results, error) {
	return f(ctx, query)
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	inner := clientFunc(func(ctx context.Context, q string) (*sparql.Results, error) {
		if healthy.Load() {
			return &sparql.Results{}, nil
		}
		return nil, MarkRetryable(errors.New("down"))
	})
	p := Policy{
		MaxRetries:       0,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // only the fake clock moves it
		Sleep:            noSleep,
	}
	c := NewResilient(inner, WithPolicy(p))
	now := time.Now()
	c.now = func() time.Time { return now }

	ctx := context.Background()
	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, "q"); err == nil {
			t.Fatal("down endpoint succeeded")
		}
	}
	if got := c.State(); got != "open" {
		t.Fatalf("state after threshold = %s, want open", got)
	}
	// While open, queries fail fast with ErrCircuitOpen.
	_, err := c.Query(ctx, "q")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker err = %v, want ErrCircuitOpen", err)
	}
	if Transient(err) {
		t.Error("ErrCircuitOpen must not be Transient (bulk callers abort)")
	}
	// Cooldown passes; the endpoint is still down: the half-open probe
	// fails and the breaker re-opens.
	now = now.Add(2 * time.Hour)
	if _, err := c.Query(ctx, "q"); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe err = %v, want the real failure", err)
	}
	if got := c.State(); got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	// Endpoint recovers; after another cooldown the probe succeeds and
	// the breaker closes.
	healthy.Store(true)
	now = now.Add(2 * time.Hour)
	if _, err := c.Query(ctx, "q"); err != nil {
		t.Fatalf("successful probe rejected: %v", err)
	}
	if got := c.State(); got != "closed" {
		t.Fatalf("state after recovery = %s, want closed", got)
	}
	if trips := c.Stats().BreakerTrips; trips != 2 {
		t.Errorf("trips = %d, want 2", trips)
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	inner := clientFunc(func(ctx context.Context, q string) (*sparql.Results, error) {
		close(started)
		<-release
		return &sparql.Results{}, nil
	})
	p := Policy{BreakerThreshold: 1, BreakerCooldown: time.Hour, Sleep: noSleep}
	c := NewResilient(inner, WithPolicy(p))
	now := time.Now()
	c.now = func() time.Time { return now }

	// Trip it with a direct failure record.
	c.recordFailure()
	if c.State() != "open" {
		t.Fatal("threshold 1 did not trip")
	}
	now = now.Add(2 * time.Hour)

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), "probe")
		done <- err
	}()
	<-started
	// A second query while the probe is in flight is rejected.
	if _, err := c.Query(context.Background(), "q"); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("concurrent query during probe: %v, want ErrCircuitOpen", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if c.State() != "closed" {
		t.Errorf("state = %s after successful probe", c.State())
	}
}

func TestResilientInFlightLimit(t *testing.T) {
	block := make(chan struct{})
	inner := &scriptClient{block: block}
	p := Policy{MaxInFlight: 2, Sleep: noSleep}
	c := NewResilient(inner, WithPolicy(p))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Query(context.Background(), "q")
		}()
	}
	// Give both goroutines time to take their slots and park in the
	// blocked inner client.
	time.Sleep(20 * time.Millisecond)
	// Third caller cannot get a slot before its context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Query(ctx, "q")
	if err == nil {
		t.Fatal("limiter admitted a third query")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("blocked caller err = %v, want ErrTimeout", err)
	}
	close(block)
	wg.Wait()
}

// TestResilientConcurrent hammers one client from many goroutines over
// a flaky inner client; run with -race to check the breaker and stats
// locking.
func TestResilientConcurrent(t *testing.T) {
	var n atomic.Int64
	inner := clientFunc(func(ctx context.Context, q string) (*sparql.Results, error) {
		if n.Add(1)%3 == 0 {
			return nil, MarkRetryable(errors.New("flake"))
		}
		return &sparql.Results{}, nil
	})
	// Failures are positional (every 3rd global call), so under
	// interleaving one query can draw several failing attempts in a
	// row; a deep retry budget keeps exhaustion out of the picture —
	// this test is about locking, not retry limits.
	p := Policy{
		MaxRetries:       20,
		BaseBackoff:      time.Microsecond,
		BreakerThreshold: 50,
		MaxInFlight:      8,
		Jitter:           0.5,
	}
	c := NewResilient(inner, WithPolicy(p))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Query(context.Background(), "q"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query failed despite retries: %v", err)
	}
	if got := c.Stats().Queries; got != 64 {
		t.Errorf("queries = %d, want 64", got)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
		permanent bool
		transient bool
	}{
		{"429", &StatusError{Code: 429}, true, false, true},
		{"500", &StatusError{Code: 500}, true, false, true},
		{"503", &StatusError{Code: 503}, true, false, true},
		{"400", &StatusError{Code: 400}, false, true, false},
		{"404", &StatusError{Code: 404}, false, true, false},
		{"marked retryable", MarkRetryable(errors.New("x")), true, false, true},
		{"marked permanent", MarkPermanent(errors.New("x")), false, true, false},
		{"wrapped retryable", fmt.Errorf("outer: %w", MarkRetryable(errors.New("x"))), true, false, true},
		{"plain", errors.New("x"), false, false, false},
	}
	for _, tt := range cases {
		if got := Retryable(tt.err); got != tt.retryable {
			t.Errorf("%s: Retryable = %v", tt.name, got)
		}
		if got := errors.Is(tt.err, ErrPermanent); got != tt.permanent {
			t.Errorf("%s: permanent = %v", tt.name, got)
		}
		if got := Transient(tt.err); got != tt.transient {
			t.Errorf("%s: Transient = %v", tt.name, got)
		}
	}
	if MarkRetryable(nil) != nil || MarkPermanent(nil) != nil {
		t.Error("marking nil must stay nil")
	}
}

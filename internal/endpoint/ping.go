package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Pinger is the optional health-check facet of a Client: Ping reports
// whether the backend can currently answer queries. Unlike Query it
// is cheap (no result decoding on the happy path where the transport
// offers a dedicated health endpoint) and single-shot — no retries,
// no breaker interaction — so health probers see the backend's true
// state instead of the resilience layer's smoothed view.
type Pinger interface {
	Ping(ctx context.Context) error
}

// healthProbeQuery is the fallback probe for clients without a
// cheaper channel: an ASK that any SPARQL backend answers from its
// first index hit (or an instant false on an empty store — still a
// healthy answer).
const healthProbeQuery = `ASK { ?s ?p ?o }`

// Ping health-checks c: the Pinger fast path when c implements it, a
// cheap ASK query otherwise. A nil error means the backend answered.
func Ping(ctx context.Context, c Client) error {
	if p, ok := c.(Pinger); ok {
		return p.Ping(ctx)
	}
	_, err := c.Query(ctx, healthProbeQuery)
	return err
}

// Ping implements Pinger: an in-process store is healthy as long as
// the process runs, so only context expiry can fail it.
func (c *InProcess) Ping(ctx context.Context) error { return ctx.Err() }

// Ping implements Pinger over the remote server's health endpoint:
// GET <base>/healthz (derived from the /sparql query URL), treating
// any non-2xx as unhealthy — a 503 from a loading or replica-starved
// server keeps traffic away until it turns ready. Servers without a
// /healthz route (404/405) fall back to the cheap ASK probe so
// foreign SPARQL endpoints remain probeable.
func (c *HTTPClient) Ping(ctx context.Context) error {
	url := healthURL(c.Endpoint)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("endpoint: build health request: %w", err)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return classifyCtx(ctx, MarkRetryable(fmt.Errorf("endpoint: health probe: %w", err)))
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
		// No health route on this server; ask the query endpoint.
		_, qerr := c.Query(ctx, healthProbeQuery)
		return qerr
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(body))}
	}
}

// healthURL derives the health endpoint from a /sparql query URL:
// the sibling /healthz path on the same host.
func healthURL(endpoint string) string {
	base := strings.TrimSuffix(strings.TrimSuffix(endpoint, "/"), "/sparql")
	return base + "/healthz"
}

// Ping implements Pinger by delegating straight to the inner client,
// bypassing retries, backoff, and the breaker: a probe wants the
// backend's immediate state, and probing must not consume half-open
// probe slots that real queries are waiting on.
func (c *ResilientClient) Ping(ctx context.Context) error {
	return Ping(ctx, c.inner)
}

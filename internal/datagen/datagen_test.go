package datagen

import (
	"bytes"
	"context"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/vgraph"
)

func TestSpecStatistics(t *testing.T) {
	tests := []struct {
		spec    Spec
		dims    int
		levels  int
		members int
	}{
		{EurostatLike(100), 4, 9, 373},
		{ProductionLike(100), 7, 9, 6444},
		{DBpediaLike(100), 5, 23, 87160},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			if got := len(tt.spec.Dimensions); got != tt.dims {
				t.Errorf("|D| = %d, want %d", got, tt.dims)
			}
			if got := tt.spec.LevelTotal(); got != tt.levels {
				t.Errorf("|L| = %d, want %d", got, tt.levels)
			}
			if got := tt.spec.MemberTotal(); got != tt.members {
				t.Errorf("|N_D| = %d, want %d", got, tt.members)
			}
			if len(tt.spec.Measures) != 1 {
				t.Errorf("|M| = %d, want 1", len(tt.spec.Measures))
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := EurostatLike(50)
	var a, b bytes.Buffer
	if err := spec.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := spec.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("generation is not deterministic")
	}
}

// TestSeedControlsOutput pins the seeding contract the benchmarks and
// the sharded determinism suite rely on: every preset is byte-stable
// across runs (fixed Seed), and changing the seed actually changes
// the generated values rather than being ignored.
func TestSeedControlsOutput(t *testing.T) {
	presets := map[string]Spec{
		"eurostat":   EurostatLike(60),
		"production": ProductionLike(60),
		"dbpedia":    DBpediaLike(60),
	}
	for name, spec := range presets {
		if spec.Seed == 0 {
			t.Errorf("%s: preset seed is 0; presets must pin a non-zero seed", name)
		}
		var a, b bytes.Buffer
		if err := spec.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := spec.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two runs with the same seed differ", name)
		}
		reseeded := spec
		reseeded.Seed = spec.Seed + 1000
		var c bytes.Buffer
		if err := reseeded.Write(&c); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a.Bytes(), c.Bytes()) {
			t.Errorf("%s: changing the seed did not change the output", name)
		}
	}
}

func TestBuildStoreAndBootstrap(t *testing.T) {
	spec := EurostatLike(400)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	g, err := vgraph.Bootstrap(context.Background(), endpoint.NewInProcess(st), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	if stats.Dimensions != 4 {
		t.Errorf("bootstrapped dimensions = %d, want 4", stats.Dimensions)
	}
	if stats.Levels != 9 {
		t.Errorf("bootstrapped levels = %d, want 9\n%s", stats.Levels, g)
	}
	if stats.Measures != 1 {
		t.Errorf("bootstrapped measures = %d", stats.Measures)
	}
	if g.ObservationCount != 400 {
		t.Errorf("observations = %d, want 400", g.ObservationCount)
	}
	// With 400 observations every base member of every dimension is
	// covered (the largest base level has 120 members).
	base := g.LevelByPath([]string{spec.NS + "citizen"})
	if base == nil || base.MemberCount != 120 {
		t.Errorf("citizen members = %v, want 120", base)
	}
	// Predicate labels from the data drive the level labels.
	if base.Label != "Country of Origin" {
		t.Errorf("citizen label = %q", base.Label)
	}
}

func TestDBpediaManyToMany(t *testing.T) {
	spec := DBpediaLike(300)
	// Shrink the artist dimension so the test is fast but keep the
	// M-to-N structure.
	spec.Dimensions[0].Members = 300
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	g, err := vgraph.Bootstrap(context.Background(), endpoint.NewInProcess(st), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	l := g.LevelByPath([]string{spec.NS + "artist", spec.NS + "artistGenre"})
	if l == nil {
		t.Fatal("artistGenre level missing")
	}
	if !l.ManyToMany {
		t.Error("M-to-N hierarchy step not present/detected")
	}
}

func TestGenerateTripleShape(t *testing.T) {
	spec := EurostatLike(10)
	typeCount, measureCount := 0, 0
	labelSeen := false
	spec.Generate(func(tr rdf.Triple) {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid triple %v: %v", tr, err)
		}
		switch {
		case tr.P.Value == rdf.RDFType && tr.O.Value == spec.ObservationClass():
			typeCount++
		case tr.P.Value == spec.NS+"numApplicants":
			measureCount++
			if !tr.O.IsNumeric() {
				t.Errorf("measure value not numeric: %v", tr.O)
			}
			if n, _ := tr.O.Numeric(); n < 1 {
				t.Errorf("measure value %v < 1", tr.O)
			}
		case tr.P.Value == rdf.RDFSLabel:
			labelSeen = true
		}
	})
	if typeCount != 10 || measureCount != 10 {
		t.Errorf("type/measure triples = %d/%d, want 10/10", typeCount, measureCount)
	}
	if !labelSeen {
		t.Error("no labels generated")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(10, 20, 30)
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	if ps[0].Observations != 10 || ps[1].Observations != 20 || ps[2].Observations != 30 {
		t.Error("observation scales not applied")
	}
	names := []string{"eurostat", "production", "dbpedia"}
	for i, p := range ps {
		if p.Name != names[i] {
			t.Errorf("preset %d = %s, want %s", i, p.Name, names[i])
		}
	}
}

func TestMissingRateSparsity(t *testing.T) {
	spec := EurostatLike(2000)
	spec.MissingRate = 0.3
	dense := EurostatLike(2000)

	countDim := func(s Spec) int {
		n := 0
		pred := s.NS + "citizen"
		s.Generate(func(tr rdf.Triple) {
			if tr.P.Value == pred {
				n++
			}
		})
		return n
	}
	sparse := countDim(spec)
	full := countDim(dense)
	if sparse >= full {
		t.Errorf("sparse = %d, dense = %d", sparse, full)
	}
	// Roughly 30% missing (round-robin coverage keeps the first 120).
	if float64(sparse) > float64(full)*0.8 {
		t.Errorf("sparsity too low: %d of %d", sparse, full)
	}

	// The pipeline still bootstraps and synthesizes over sparse data.
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	g, err := vgraph.Bootstrap(context.Background(), endpoint.NewInProcess(st), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Levels != 9 {
		t.Errorf("levels = %d", g.Stats().Levels)
	}
}

// Package datagen generates synthetic statistical knowledge graphs
// whose schema statistics match the paper's three evaluation datasets
// (Table 3): Eurostat (asylum applications), Production
// (macro-economic production), and DBpedia (creative works with
// M-to-N hierarchies). The real dumps are gigabytes and not
// redistributable in this offline environment; these generators
// preserve what the algorithms are sensitive to — the number of
// dimensions, hierarchies, levels, and members, plus hierarchy shape —
// while the observation count is a parameter so experiments can sweep
// scale (the paper's own claim is that synthesis cost is independent
// of it).
package datagen

import (
	"fmt"
	"io"
	"math/rand"

	"re2xolap/internal/qb"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

// LevelSpec describes one hierarchy level above the base.
type LevelSpec struct {
	// Pred is the predicate local name linking the finer level to this
	// one (e.g. "inContinent").
	Pred string
	// Label is the human-readable predicate label.
	Label string
	// Members is the number of distinct members at this level.
	Members int
	// Display overrides the member label prefix. Dimensions and levels
	// that share a Display produce colliding member labels ("Country
	// 5" both as origin and destination), reproducing the member
	// ambiguity of real KGs that drives the number of interpretations
	// ReOLAP must consider (Section 7.1).
	Display string
	// ManyToMany makes ~1/3 of finer members link to two members here.
	ManyToMany bool
	// Children are coarser levels reachable from this one.
	Children []LevelSpec
}

// DimSpec describes one dimension: its base level and hierarchy tree.
type DimSpec struct {
	// Pred is the dimension predicate local name (e.g. "citizen").
	Pred string
	// Label is the predicate label.
	Label string
	// Members is the number of base-level members.
	Members int
	// Display overrides the member label prefix (see LevelSpec.Display).
	Display string
	// Children are the hierarchy levels above the base.
	Children []LevelSpec
}

// MeasureSpec describes one measure predicate.
type MeasureSpec struct {
	Pred  string
	Label string
	// Scale is the mean of the exponential value distribution.
	Scale float64
}

// Spec fully describes a synthetic dataset.
type Spec struct {
	// Name identifies the dataset in reports.
	Name string
	// NS is the IRI namespace; must end with '/' or '#'.
	NS string
	// Dimensions, Measures, and Observations define the cube.
	Dimensions   []DimSpec
	Measures     []MeasureSpec
	Observations int
	// Seed makes generation deterministic.
	Seed int64
	// MissingRate is the probability that an observation omits a
	// dimension link, producing the heterogeneous, sparse observations
	// of real KGs (the paper: "Eurostat has a richer set of observation
	// attributes" than Production). 0 disables sparsity.
	MissingRate float64
}

// ObservationClass returns the observation class IRI of the dataset.
func (s Spec) ObservationClass() string { return s.NS + "Observation" }

// Config returns the qb.Config for bootstrapping over this dataset.
func (s Spec) Config() qb.Config {
	return qb.Config{ObservationClass: s.ObservationClass()}
}

// MemberTotal returns the total members across all levels (the
// |N_D| statistic the spec is tuned to).
func (s Spec) MemberTotal() int {
	n := 0
	var walk func(ls []LevelSpec)
	walk = func(ls []LevelSpec) {
		for _, l := range ls {
			n += l.Members
			walk(l.Children)
		}
	}
	for _, d := range s.Dimensions {
		n += d.Members
		walk(d.Children)
	}
	return n
}

// LevelTotal returns the total number of levels (|L̄|).
func (s Spec) LevelTotal() int {
	n := 0
	var walk func(ls []LevelSpec)
	walk = func(ls []LevelSpec) {
		for _, l := range ls {
			n++
			walk(l.Children)
		}
	}
	for _, d := range s.Dimensions {
		n++
		walk(d.Children)
	}
	return n
}

// Generate streams every triple of the dataset to emit. Members are
// created first (with labels and hierarchy links), then observations;
// base members are assigned round-robin first so every member is
// covered when Observations >= Members, then randomly.
func (s Spec) Generate(emit func(rdf.Triple)) {
	rng := rand.New(rand.NewSource(s.Seed))
	iri := func(local string) rdf.Term { return rdf.NewIRI(s.NS + local) }
	label := func(subject rdf.Term, text string) {
		emit(rdf.NewTriple(subject, rdf.NewIRI(rdf.RDFSLabel), rdf.NewString(text)))
	}

	// Predicate labels.
	for _, d := range s.Dimensions {
		label(iri(d.Pred), d.Label)
		var walk func(ls []LevelSpec)
		walk = func(ls []LevelSpec) {
			for _, l := range ls {
				label(iri(l.Pred), l.Label)
				walk(l.Children)
			}
		}
		walk(d.Children)
	}
	for _, m := range s.Measures {
		label(iri(m.Pred), m.Label)
	}

	// memberIRI names the j-th member of a level identified by its
	// path of predicate local names.
	memberIRI := func(path string, j int) rdf.Term {
		return iri(fmt.Sprintf("%s/m%d", path, j))
	}

	// Emit members level by level, linking finer to coarser.
	var emitLevels func(path, display string, members int, children []LevelSpec)
	emitLevels = func(path, display string, members int, children []LevelSpec) {
		for j := 0; j < members; j++ {
			label(memberIRI(path, j), fmt.Sprintf("%s %d", display, j))
		}
		for _, ch := range children {
			chPath := path + "/" + ch.Pred
			for j := 0; j < members; j++ {
				parent := (j*31 + 7) % ch.Members
				emit(rdf.NewTriple(memberIRI(path, j), iri(ch.Pred), memberIRI(chPath, parent)))
				if ch.ManyToMany && j%3 == 0 && ch.Members > 1 {
					second := (j*17 + 3) % ch.Members
					if second == parent {
						second = (second + 1) % ch.Members
					}
					emit(rdf.NewTriple(memberIRI(path, j), iri(ch.Pred), memberIRI(chPath, second)))
				}
			}
			chDisplay := ch.Display
			if chDisplay == "" {
				chDisplay = ch.Label
			}
			emitLevels(chPath, chDisplay, ch.Members, ch.Children)
		}
	}
	for _, d := range s.Dimensions {
		display := d.Display
		if display == "" {
			display = d.Label
		}
		emitLevels(d.Pred, display, d.Members, d.Children)
	}

	// Observations.
	obsClass := rdf.NewIRI(s.ObservationClass())
	typePred := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < s.Observations; i++ {
		obs := iri(fmt.Sprintf("obs/%d", i))
		emit(rdf.NewTriple(obs, typePred, obsClass))
		for _, d := range s.Dimensions {
			j := i % d.Members
			if i >= d.Members {
				j = rng.Intn(d.Members)
				if s.MissingRate > 0 && rng.Float64() < s.MissingRate {
					continue // sparse observation: dimension omitted
				}
			}
			emit(rdf.NewTriple(obs, iri(d.Pred), memberIRI(d.Pred, j)))
		}
		for _, m := range s.Measures {
			v := int64(rng.ExpFloat64()*m.Scale) + 1
			emit(rdf.NewTriple(obs, iri(m.Pred), rdf.NewInteger(v)))
		}
	}
}

// BuildStore generates the dataset into a fresh store.
func (s Spec) BuildStore() (*store.Store, error) {
	st := store.New()
	var err error
	s.Generate(func(t rdf.Triple) {
		if err == nil {
			err = st.Add(t)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	st.Compact()
	return st, nil
}

// Write streams the dataset as N-Triples.
func (s Spec) Write(w io.Writer) error {
	enc := rdf.NewEncoder(w)
	var err error
	s.Generate(func(t rdf.Triple) {
		if err == nil {
			err = enc.Encode(t)
		}
	})
	if err != nil {
		return err
	}
	return enc.Flush()
}

package datagen

// EurostatLike mirrors the paper's Eurostat asylum-applications KG
// (Table 3: |D|=4, |M|=1, |L̄|=9, |N_D|=373): origin and destination
// countries rolling up to continents, a reference period with
// month→quarter→year and month→semester hierarchies, and a flat sex
// dimension, measured by the number of applicants. The paper's dataset
// has ~15M observations; pass the scale you can afford.
func EurostatLike(observations int) Spec {
	return Spec{
		Name: "eurostat",
		NS:   "http://data.example.org/eurostat/",
		Dimensions: []DimSpec{
			{
				Pred: "citizen", Label: "Country of Origin", Members: 120, Display: "Country",
				Children: []LevelSpec{{Pred: "inContinent", Label: "In Continent", Members: 7, Display: "Continent"}},
			},
			{
				Pred: "geo", Label: "Country of Destination", Members: 48, Display: "Country",
				Children: []LevelSpec{{Pred: "inContinent", Label: "In Continent", Members: 5, Display: "Continent"}},
			},
			{
				Pred: "refPeriod", Label: "Reference Period", Members: 120, Display: "Period",
				Children: []LevelSpec{
					{
						Pred: "inQuarter", Label: "In Quarter", Members: 40, Display: "Period",
						Children: []LevelSpec{{Pred: "inYear", Label: "In Year", Members: 10, Display: "Period"}},
					},
					{Pred: "inSemester", Label: "In Semester", Members: 20, Display: "Period"},
				},
			},
			{Pred: "sex", Label: "Sex", Members: 3},
		},
		Measures:     []MeasureSpec{{Pred: "numApplicants", Label: "Num Applicants", Scale: 250}},
		Observations: observations,
		Seed:         1,
	}
}

// ProductionLike mirrors the paper's Production KG (Table 3: |D|=7,
// |M|=1, |L̄|=9, |N_D|=6444): macro-economic production across
// countries, partner countries, industries (→ sectors), products
// (→ categories), years, flow types, and units.
func ProductionLike(observations int) Spec {
	return Spec{
		Name: "production",
		NS:   "http://data.example.org/production/",
		Dimensions: []DimSpec{
			{Pred: "country", Label: "Country", Members: 43, Display: "Country"},
			{Pred: "partner", Label: "Partner Country", Members: 43, Display: "Country"},
			{
				Pred: "industry", Label: "Industry", Members: 2000, Display: "Activity",
				Children: []LevelSpec{{Pred: "inSector", Label: "In Sector", Members: 150, Display: "Group"}},
			},
			{
				Pred: "product", Label: "Product", Members: 3900, Display: "Activity",
				Children: []LevelSpec{{Pred: "inCategory", Label: "In Category", Members: 250, Display: "Group"}},
			},
			{Pred: "year", Label: "Year", Members: 48},
			{Pred: "flowType", Label: "Flow Type", Members: 4},
			{Pred: "unit", Label: "Unit", Members: 6},
		},
		Measures:     []MeasureSpec{{Pred: "amount", Label: "Amount", Scale: 100000}},
		Observations: observations,
		Seed:         2,
	}
}

// DBpediaLike mirrors the paper's DBpedia creative-works view
// (Table 3: |D|=5, |M|=1, |L̄|=23, |N_D|=87160): songs described by
// artist, genre, label, instrument, and director, with deep and
// M-to-N hierarchies (a genre has several parent genres), which the
// paper identifies as the worst-case, most heterogeneous schema.
func DBpediaLike(observations int) Spec {
	return Spec{
		Name: "dbpedia",
		NS:   "http://data.example.org/dbpedia/",
		Dimensions: []DimSpec{
			{
				Pred: "artist", Label: "Artist", Members: 71865,
				Children: []LevelSpec{
					{
						Pred: "artistGenre", Label: "Artist Genre", Members: 800, Display: "Genre", ManyToMany: true,
						Children: []LevelSpec{{Pred: "inMovement", Label: "In Movement", Members: 50}},
					},
					{
						Pred: "fromCountry", Label: "From Country", Members: 100, Display: "Country",
						Children: []LevelSpec{{Pred: "inContinent", Label: "In Continent", Members: 7, Display: "Continent"}},
					},
					{
						Pred: "inEra", Label: "In Era", Members: 20,
						Children: []LevelSpec{{Pred: "inEraGroup", Label: "In Era Group", Members: 5}},
					},
				},
			},
			{
				Pred: "genre", Label: "Genre", Members: 900, Display: "Genre",
				Children: []LevelSpec{
					{
						Pred: "parentGenre", Label: "Parent Genre", Members: 150, ManyToMany: true,
						Children: []LevelSpec{
							{
								Pred: "rootGenre", Label: "Root Genre", Members: 20,
								Children: []LevelSpec{{Pred: "inDomain", Label: "In Domain", Members: 4}},
							},
						},
					},
				},
			},
			{
				Pred: "recordLabel", Label: "Record Label", Members: 5000,
				Children: []LevelSpec{
					{
						Pred: "labelCountry", Label: "Label Country", Members: 80, Display: "Country",
						Children: []LevelSpec{{Pred: "inContinent", Label: "In Continent", Members: 7, Display: "Continent"}},
					},
					{Pred: "parentCompany", Label: "Parent Company", Members: 500},
				},
			},
			{
				Pred: "instrument", Label: "Instrument", Members: 300,
				Children: []LevelSpec{
					{
						Pred: "inFamily", Label: "In Family", Members: 40,
						Children: []LevelSpec{
							{
								Pred: "inClass", Label: "In Class", Members: 10,
								Children: []LevelSpec{{Pred: "ofOrigin", Label: "Of Origin", Members: 5}},
							},
						},
					},
				},
			},
			{
				Pred: "director", Label: "Director", Members: 7000,
				Children: []LevelSpec{
					{
						Pred: "fromCountry", Label: "From Country", Members: 90, Display: "Country",
						Children: []LevelSpec{{Pred: "inContinent", Label: "In Continent", Members: 7, Display: "Continent"}},
					},
					{Pred: "ofSchool", Label: "Of School", Members: 200},
				},
			},
		},
		Measures:     []MeasureSpec{{Pred: "playCount", Label: "Play Count", Scale: 5000}},
		Observations: observations,
		Seed:         3,
	}
}

// Presets returns the three paper datasets at the given observation
// scales, in Table 3 order.
func Presets(eurostatObs, productionObs, dbpediaObs int) []Spec {
	return []Spec{
		EurostatLike(eurostatObs),
		ProductionLike(productionObs),
		DBpediaLike(dbpediaObs),
	}
}

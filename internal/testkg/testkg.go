// Package testkg builds small, fully-known statistical knowledge graphs
// used by tests across the repository. The fixture mirrors the paper's
// Figure 1: asylum-request observations with origin and destination
// (country → continent), reference period (month → year), sex, and a
// numApplicants measure, with labels on every member and predicate.
package testkg

import (
	"context"
	"fmt"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/qb"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
)

// NS is the IRI namespace of the fixture.
const NS = "http://ex.org/"

// ObservationClass is the fixture's observation class IRI.
const ObservationClass = NS + "Observation"

// IRI builds a fixture IRI term.
func IRI(local string) rdf.Term { return rdf.NewIRI(NS + local) }

// Obs is one observation row of the fixture.
type Obs struct {
	Origin, Dest, Month, Sex string
	Value                    int64
}

// DefaultObservations is the canonical observation set. Origins and
// destinations are country codes; months are "m<year>-<mm>".
var DefaultObservations = []Obs{
	{"sy", "de", "m2014-01", "male", 100},
	{"sy", "de", "m2014-02", "female", 150},
	{"sy", "fr", "m2014-01", "male", 50},
	{"sy", "se", "m2014-01", "female", 70},
	{"cn", "de", "m2015-01", "male", 30},
	{"cn", "fr", "m2014-01", "female", 20},
	{"cn", "se", "m2015-01", "male", 60},
	{"de", "fr", "m2015-01", "male", 5},
	{"de", "se", "m2014-02", "female", 3},
	{"fr", "de", "m2014-02", "female", 8},
	{"sy", "de", "m2015-01", "male", 200},
}

// Countries maps country code to continent code.
var Countries = map[string]string{
	"de": "europe", "fr": "europe", "se": "europe",
	"sy": "asia", "cn": "asia",
}

// CountryLabels maps country code to label.
var CountryLabels = map[string]string{
	"de": "Germany", "fr": "France", "se": "Sweden",
	"sy": "Syria", "cn": "China",
}

// Build constructs the fixture store from the given observations (pass
// nil for DefaultObservations).
func Build(tb testing.TB, observations []Obs) *store.Store {
	tb.Helper()
	if observations == nil {
		observations = DefaultObservations
	}
	st := store.New()
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(IRI(s), IRI(p), o))
	}
	label := func(n, l string) {
		ts = append(ts, rdf.NewTriple(IRI(n), rdf.NewIRI(rdf.RDFSLabel), rdf.NewString(l)))
	}
	years := map[string]bool{}
	months := map[string]bool{}
	for _, o := range observations {
		months[o.Month] = true
		years["y"+o.Month[1:5]] = true
	}
	for c, cont := range Countries {
		add(c, "inContinent", IRI(cont))
		label(c, CountryLabels[c])
	}
	label("europe", "Europe")
	label("asia", "Asia")
	for m := range months {
		add(m, "inYear", IRI("y"+m[1:5]))
		label(m, m[1:])
	}
	for y := range years {
		label(y, y[1:])
	}
	label("male", "male")
	label("female", "female")
	// Predicate labels, used by the NL descriptions.
	label("origin", "Country of Origin")
	label("dest", "Country of Destination")
	label("inContinent", "In Continent")
	label("refPeriod", "Reference Period")
	label("inYear", "In Year")
	label("sex", "Sex")
	label("numApplicants", "Num Applicants")
	for i, o := range observations {
		n := fmt.Sprintf("obs%d", i)
		ts = append(ts, rdf.NewTriple(IRI(n), rdf.NewIRI(rdf.RDFType), IRI("Observation")))
		add(n, "origin", IRI(o.Origin))
		add(n, "dest", IRI(o.Dest))
		add(n, "refPeriod", IRI(o.Month))
		add(n, "sex", IRI(o.Sex))
		add(n, "numApplicants", rdf.NewInteger(o.Value))
	}
	if err := st.AddAll(ts); err != nil {
		tb.Fatal(err)
	}
	return st
}

// Config returns the qb.Config for the fixture.
func Config() qb.Config {
	return qb.Config{ObservationClass: ObservationClass}
}

// BootstrapFixture builds the store, an in-process client, and the
// bootstrapped virtual graph in one call.
func BootstrapFixture(tb testing.TB, observations []Obs) (*store.Store, *endpoint.InProcess, *vgraph.Graph) {
	tb.Helper()
	st := Build(tb, observations)
	c := endpoint.NewInProcess(st)
	g, err := vgraph.Bootstrap(context.Background(), c, Config())
	if err != nil {
		tb.Fatal(err)
	}
	return st, c, g
}

// Package session implements the interactive loop of Algorithm 2
// (RE2xOLAP): the user picks a synthesized query, inspects its results,
// chooses a refinement method, picks one of the proposed refinements,
// and iterates — with backtracking to earlier queries to explore a
// different path. The session also accounts for the exploration paths
// and tuples made accessible at each interaction, which Figure 8c
// reports.
package session

import (
	"context"
	"errors"
	"fmt"

	"re2xolap/internal/core"
	"re2xolap/internal/refine"
	"re2xolap/internal/vgraph"
)

// ErrNoCurrentQuery is returned by operations that need an active query
// before Start succeeded.
var ErrNoCurrentQuery = errors.New("session: no current query; call Start first")

// Step is one point of the exploration: a query, its results, and the
// refinement that produced it (empty for the initial query).
type Step struct {
	Query   *core.OLAPQuery
	Results *core.ResultSet
	// Via is the refinement that led here; zero-valued for the first
	// step.
	Via refine.Refinement
	// Offered counts the refinement options presented at this step,
	// per kind, filled in as the user asks for them.
	Offered map[refine.Kind]int
}

// Session drives one exploratory workflow.
type Session struct {
	Engine *core.Engine
	Graph  *vgraph.Graph
	// SimilarK is the k for similarity refinements (default
	// refine.DefaultSimilarK).
	SimilarK int

	steps []*Step
}

// New returns a session over the given synthesis engine and virtual
// graph.
func New(e *core.Engine, g *vgraph.Graph) *Session {
	return &Session{Engine: e, Graph: g, SimilarK: refine.DefaultSimilarK}
}

// Start executes the chosen initial query (from ReOLAP synthesis) and
// begins the exploration history.
func (s *Session) Start(ctx context.Context, q *core.OLAPQuery) (*core.ResultSet, error) {
	rs, err := s.Engine.ExecuteTagged(ctx, q, "start")
	if err != nil {
		return nil, fmt.Errorf("session: executing initial query: %w", err)
	}
	s.steps = []*Step{{Query: q, Results: rs, Offered: map[refine.Kind]int{}}}
	return rs, nil
}

// Current returns the active step, or nil before Start.
func (s *Session) Current() *Step {
	if len(s.steps) == 0 {
		return nil
	}
	return s.steps[len(s.steps)-1]
}

// Depth returns the number of steps taken (1 after Start).
func (s *Session) Depth() int { return len(s.steps) }

// History returns the full step history, oldest first.
func (s *Session) History() []*Step { return s.steps }

// Options computes the refinements the given method offers for the
// current query and results (Algorithm 2, line 10).
func (s *Session) Options(ctx context.Context, kind refine.Kind) ([]refine.Refinement, error) {
	cur := s.Current()
	if cur == nil {
		return nil, ErrNoCurrentQuery
	}
	var refs []refine.Refinement
	switch kind {
	case refine.KindDisaggregate:
		refs = refine.Disaggregate(s.Graph, cur.Query)
	case refine.KindTopK:
		refs = refine.TopK(cur.Results)
	case refine.KindPercentile:
		refs = refine.Percentile(cur.Results)
	case refine.KindSimilarity:
		refs = refine.Similarity(cur.Results, s.SimilarK)
	case refine.KindCluster:
		refs = refine.Cluster(cur.Results, 3)
	case refine.KindRollUp:
		refs = refine.RollUp(s.Graph, cur.Query)
	default:
		return nil, fmt.Errorf("session: unknown refinement kind %q", kind)
	}
	cur.Offered[kind] = len(refs)
	_ = ctx
	return refs, nil
}

// Apply executes the chosen refinement and pushes it onto the history.
func (s *Session) Apply(ctx context.Context, r refine.Refinement) (*core.ResultSet, error) {
	if s.Current() == nil {
		return nil, ErrNoCurrentQuery
	}
	rs, err := s.Engine.ExecuteTagged(ctx, r.Query, "refine:"+string(r.Kind))
	if err != nil {
		return nil, fmt.Errorf("session: executing refinement: %w", err)
	}
	s.steps = append(s.steps, &Step{Query: r.Query, Results: rs, Via: r, Offered: map[refine.Kind]int{}})
	return rs, nil
}

// Backtrack drops the current step and returns to the previous query,
// reporting whether a step was removed (the first step is never
// removed).
func (s *Session) Backtrack() bool {
	if len(s.steps) <= 1 {
		return false
	}
	s.steps = s.steps[:len(s.steps)-1]
	return true
}

// PathStats is the Figure 8c accounting after a sequence of
// interactions: how many distinct exploration paths the offered
// options give access to (the product of the branching factors along
// the walked prefix) and how many result tuples the walked queries
// exposed in total.
type PathStats struct {
	Interactions int
	// Paths is the cumulative number of distinct exploration paths
	// reachable with the choices offered so far.
	Paths int
	// Tuples is the cumulative number of result tuples returned along
	// the walked path.
	Tuples int
}

// Tracker accumulates PathStats across a scripted workflow.
type Tracker struct {
	stats []PathStats
	paths int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{paths: 1} }

// maxPaths saturates the path product so long sessions cannot
// overflow.
const maxPaths = 1 << 50

// Record logs one interaction: the number of options the system
// offered and the size of the result set the user obtained.
func (t *Tracker) Record(options, tuples int) {
	if options > 0 {
		if t.paths > maxPaths/options {
			t.paths = maxPaths
		} else {
			t.paths *= options
		}
	}
	prevTuples := 0
	if len(t.stats) > 0 {
		prevTuples = t.stats[len(t.stats)-1].Tuples
	}
	t.stats = append(t.stats, PathStats{
		Interactions: len(t.stats) + 1,
		Paths:        t.paths,
		Tuples:       prevTuples + tuples,
	})
}

// Stats returns the per-interaction cumulative statistics.
func (t *Tracker) Stats() []PathStats { return t.stats }

package session

import (
	"encoding/json"
	"io"

	"re2xolap/internal/refine"
)

// ExportedStep is one step of a serialized exploration history.
type ExportedStep struct {
	// Step is the 1-based position in the walked path.
	Step int `json:"step"`
	// Kind is the refinement that led here ("" for the initial query).
	Kind refine.Kind `json:"kind,omitempty"`
	// Why is the refinement's explanation.
	Why string `json:"why,omitempty"`
	// Description is the natural-language query description.
	Description string `json:"description"`
	// SPARQL is the executable query text.
	SPARQL string `json:"sparql"`
	// Tuples is the result cardinality observed.
	Tuples int `json:"tuples"`
	// ExampleTuples is how many results matched the user example.
	ExampleTuples int `json:"example_tuples"`
	// Offered records the refinement fan-out the user saw, per method.
	Offered map[refine.Kind]int `json:"offered,omitempty"`
}

// Export is a serialized exploration session: enough to audit, share,
// or replay the walked path (each step carries its executable SPARQL).
type Export struct {
	Steps []ExportedStep `json:"steps"`
}

// Export captures the session history.
func (s *Session) Export() Export {
	var out Export
	for i, step := range s.steps {
		es := ExportedStep{
			Step:          i + 1,
			Kind:          step.Via.Kind,
			Why:           step.Via.Why,
			Description:   step.Query.Description,
			SPARQL:        step.Query.ToSPARQL(),
			Tuples:        step.Results.Len(),
			ExampleTuples: len(step.Results.ExampleTuples()),
		}
		if len(step.Offered) > 0 {
			es.Offered = step.Offered
		}
		out.Steps = append(out.Steps, es)
	}
	return out
}

// WriteJSON writes the exported session as indented JSON.
func (s *Session) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// ReadExport parses a previously exported session.
func ReadExport(r io.Reader) (Export, error) {
	var out Export
	err := json.NewDecoder(r).Decode(&out)
	return out, err
}

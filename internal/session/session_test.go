package session

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"re2xolap/internal/core"
	"re2xolap/internal/refine"
	"re2xolap/internal/testkg"
)

func newSession(t *testing.T) (*Session, *core.OLAPQuery) {
	t.Helper()
	_, c, g := testkg.BootstrapFixture(t, nil)
	e := core.NewEngine(c, g, testkg.Config())
	cands, err := e.Synthesize(context.Background(), core.Keywords("Germany"))
	if err != nil {
		t.Fatal(err)
	}
	var q *core.OLAPQuery
	for _, cand := range cands {
		if cand.Query.Dims[0].Level.String() == "dest" {
			q = cand.Query
		}
	}
	if q == nil {
		t.Fatal("destination interpretation missing")
	}
	return New(e, g), q
}

func TestSessionLifecycle(t *testing.T) {
	s, q := newSession(t)
	ctx := context.Background()

	if s.Current() != nil || s.Depth() != 0 {
		t.Error("fresh session not empty")
	}
	if _, err := s.Options(ctx, refine.KindTopK); err != ErrNoCurrentQuery {
		t.Errorf("Options before Start = %v", err)
	}

	rs, err := s.Start(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 { // de, fr, se destinations
		t.Errorf("initial results = %d, want 3", rs.Len())
	}
	if s.Depth() != 1 || s.Current().Query != q {
		t.Error("history wrong after Start")
	}

	// Full workflow: Disaggregate → Similarity → TopK.
	dis, err := s.Options(ctx, refine.KindDisaggregate)
	if err != nil {
		t.Fatal(err)
	}
	if len(dis) != 5 {
		t.Fatalf("disaggregate options = %d, want 5", len(dis))
	}
	if s.Current().Offered[refine.KindDisaggregate] != 5 {
		t.Error("offered count not recorded")
	}
	var yearRef *refine.Refinement
	for i := range dis {
		for _, d := range dis[i].Query.Dims {
			if d.Level.String() == "refPeriod/inYear" {
				yearRef = &dis[i]
			}
		}
	}
	if yearRef == nil {
		t.Fatal("year refinement missing")
	}
	rs2, err := s.Apply(ctx, *yearRef)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 2 {
		t.Errorf("depth = %d", s.Depth())
	}
	if rs2.Len() != 6 {
		t.Errorf("disaggregated results = %d, want 6", rs2.Len())
	}

	sim, err := s.Options(ctx, refine.KindSimilarity)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) == 0 {
		t.Fatal("no similarity options")
	}
	if _, err := s.Apply(ctx, sim[0]); err != nil {
		t.Fatal(err)
	}

	topk, err := s.Options(ctx, refine.KindTopK)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk) > 0 {
		if _, err := s.Apply(ctx, topk[0]); err != nil {
			t.Fatal(err)
		}
	}

	// Every step's results still contain the example (Problem 2's
	// invariant).
	for i, step := range s.History() {
		if len(step.Results.ExampleTuples()) == 0 {
			t.Errorf("step %d lost the example (%s)", i, step.Via.Why)
		}
	}
}

func TestSessionBacktrack(t *testing.T) {
	s, q := newSession(t)
	ctx := context.Background()
	if s.Backtrack() {
		t.Error("backtrack on empty session")
	}
	if _, err := s.Start(ctx, q); err != nil {
		t.Fatal(err)
	}
	if s.Backtrack() {
		t.Error("backtrack past the first step")
	}
	dis, _ := s.Options(ctx, refine.KindDisaggregate)
	if _, err := s.Apply(ctx, dis[0]); err != nil {
		t.Fatal(err)
	}
	if !s.Backtrack() {
		t.Error("backtrack failed")
	}
	if s.Depth() != 1 || s.Current().Query != q {
		t.Error("backtrack did not restore the initial query")
	}
	// A different branch can now be taken.
	if _, err := s.Apply(ctx, dis[1]); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 2 {
		t.Errorf("depth after re-apply = %d", s.Depth())
	}
}

func TestSessionUnknownKind(t *testing.T) {
	s, q := newSession(t)
	ctx := context.Background()
	if _, err := s.Start(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Options(ctx, refine.Kind("nope")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	tr.Record(4, 3)  // ReOLAP offered 4 queries, chosen one returned 3 tuples
	tr.Record(5, 18) // Disaggregate offered 5, result had 18 tuples
	tr.Record(0, 18) // a method offering nothing keeps the path count
	stats := tr.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Paths != 4 || stats[0].Tuples != 3 {
		t.Errorf("step 1 = %+v", stats[0])
	}
	if stats[1].Paths != 20 || stats[1].Tuples != 21 {
		t.Errorf("step 2 = %+v", stats[1])
	}
	if stats[2].Paths != 20 || stats[2].Tuples != 39 {
		t.Errorf("step 3 = %+v", stats[2])
	}
	if stats[2].Interactions != 3 {
		t.Errorf("interactions = %d", stats[2].Interactions)
	}
}

func TestSessionExport(t *testing.T) {
	s, q := newSession(t)
	ctx := context.Background()
	if _, err := s.Start(ctx, q); err != nil {
		t.Fatal(err)
	}
	dis, err := s.Options(ctx, refine.KindDisaggregate)
	if err != nil || len(dis) == 0 {
		t.Fatal(err)
	}
	if _, err := s.Apply(ctx, dis[0]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(exp.Steps))
	}
	first, second := exp.Steps[0], exp.Steps[1]
	if first.Step != 1 || first.Kind != "" || first.Tuples != 3 {
		t.Errorf("first step = %+v", first)
	}
	if first.Offered[refine.KindDisaggregate] != 5 {
		t.Errorf("offered = %v", first.Offered)
	}
	if second.Kind != refine.KindDisaggregate || second.Why == "" {
		t.Errorf("second step = %+v", second)
	}
	if !strings.Contains(second.SPARQL, "GROUP BY") {
		t.Errorf("exported SPARQL = %s", second.SPARQL)
	}
	// Each exported step's SPARQL is independently executable.
	for _, st := range exp.Steps {
		res, err := s.Engine.Client.Query(ctx, st.SPARQL)
		if err != nil {
			t.Fatalf("step %d SPARQL does not execute: %v", st.Step, err)
		}
		if res.Len() != st.Tuples {
			t.Errorf("step %d replay = %d tuples, recorded %d", st.Step, res.Len(), st.Tuples)
		}
	}
}

func TestTrackerSaturation(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 100; i++ {
		tr.Record(1000000, 1)
	}
	stats := tr.Stats()
	last := stats[len(stats)-1]
	if last.Paths <= 0 || last.Paths > maxPaths {
		t.Errorf("paths overflowed: %d", last.Paths)
	}
}

package bench

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"re2xolap/internal/datagen"
)

// tinyDataset prepares a small Eurostat-like dataset once per test
// binary.
func tinyDataset(t testing.TB) *Dataset {
	t.Helper()
	d, err := Prepare(datagen.EurostatLike(600))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPrepare(t *testing.T) {
	d := tinyDataset(t)
	if d.Graph.Stats().Levels != 9 {
		t.Errorf("levels = %d", d.Graph.Stats().Levels)
	}
	if d.BootstrapTime <= 0 || d.LoadTime <= 0 {
		t.Error("timings not recorded")
	}
}

func TestSampleExample(t *testing.T) {
	d := tinyDataset(t)
	rng := rand.New(rand.NewSource(5))
	for size := 1; size <= 4; size++ {
		ok := false
		for tries := 0; tries < 20 && !ok; tries++ {
			ex, got := d.SampleExample(rng, size)
			if got {
				ok = true
				if len(ex) != size {
					t.Errorf("example size = %d, want %d", len(ex), size)
				}
				for _, kw := range ex {
					if kw == "" {
						t.Error("empty keyword sampled")
					}
				}
			}
		}
		if !ok {
			t.Errorf("no example of size %d", size)
		}
	}
	if _, ok := d.SampleExample(rng, 99); ok {
		t.Error("oversized example accepted")
	}
}

func TestSampleExamplesCount(t *testing.T) {
	d := tinyDataset(t)
	inputs := d.SampleExamples(7, []int{1, 2}, 3)
	if len(inputs[1]) != 3 || len(inputs[2]) != 3 {
		t.Errorf("inputs = %d/%d, want 3/3", len(inputs[1]), len(inputs[2]))
	}
}

func TestRunTable2(t *testing.T) {
	d := tinyDataset(t)
	var buf bytes.Buffer
	if err := RunTable2(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") || !strings.Contains(buf.String(), "SUM(") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunTable3AndFig6(t *testing.T) {
	d := tinyDataset(t)
	var buf bytes.Buffer
	if err := RunTable3(&buf, []*Dataset{d}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eurostat") {
		t.Errorf("table3 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunFig6(&buf, []*Dataset{d}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bootstrap") {
		t.Errorf("fig6 output:\n%s", buf.String())
	}
}

func TestCollectFig7(t *testing.T) {
	d := tinyDataset(t)
	rows, err := CollectFig7([]*Dataset{d}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // sizes 1..4
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.AvgTime <= 0 {
			t.Errorf("size %d: no time measured", r.Size)
		}
		if r.AvgQueries <= 0 {
			t.Errorf("size %d: no queries synthesized", r.Size)
		}
	}
	var buf bytes.Buffer
	if err := RunFig7(&buf, []*Dataset{d}, 11); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7a") {
		t.Error("fig7 header missing")
	}
}

func TestCollectWorkflowAndFigs89(t *testing.T) {
	d := tinyDataset(t)
	metrics, err := CollectWorkflow([]*Dataset{d}, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) == 0 {
		t.Fatal("no metrics")
	}
	stages := map[WorkflowStage]bool{}
	for _, m := range metrics {
		stages[m.Stage] = true
	}
	if !stages[StageOrig] || !stages[StageDis1] {
		t.Errorf("stages covered = %v", stages)
	}
	var buf bytes.Buffer
	RunFig8(&buf, metrics)
	RunFig9(&buf, metrics)
	out := buf.String()
	for _, want := range []string{"Figure 8a", "Figure 8b", "Figure 9a", "Figure 9b"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunFig8c(t *testing.T) {
	d := tinyDataset(t)
	var buf bytes.Buffer
	if err := RunFig8c(&buf, d, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ReOLAP") || !strings.Contains(out, "cum. paths") {
		t.Errorf("fig8c output:\n%s", out)
	}
}

func TestRunFig10(t *testing.T) {
	d := tinyDataset(t)
	var buf bytes.Buffer
	if err := RunFig10(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SELECT * WHERE") {
		t.Errorf("baseline query missing:\n%s", out)
	}
	if !strings.Contains(out, "GROUP BY") {
		t.Errorf("ReOLAP query missing:\n%s", out)
	}
}

func TestWorkflowStageString(t *testing.T) {
	if StageOrig.String() != "Orig." || StageDis1.String() != "Dis.1" || StageDis2.String() != "Dis.2" {
		t.Error("stage names wrong")
	}
}

func TestCSVExports(t *testing.T) {
	d := tinyDataset(t)
	dir := t.TempDir()
	if err := ExportTable3CSV(dir, []*Dataset{d}); err != nil {
		t.Fatal(err)
	}
	if err := ExportFig6CSV(dir, []*Dataset{d}); err != nil {
		t.Fatal(err)
	}
	rows, err := CollectFig7([]*Dataset{d}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportFig7CSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	metrics, err := CollectWorkflow([]*Dataset{d}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportFig89CSV(dir, metrics); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has %d lines", name, len(lines))
		}
	}
}

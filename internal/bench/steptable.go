package bench

import (
	"fmt"
	"io"
	"time"
)

// WriteStepTable prints the per-step endpoint-query timing table for
// one prepared dataset: how many queries each synthesis/refinement
// step (keyword-search, membership-*, witness, refine:*, ...) issued,
// how much endpoint time it cost in total, and its latency quantiles.
// The stats accumulate in the dataset's registry across every
// experiment section, so the table printed at the end of a run
// attributes the whole run's query cost to workflow steps.
func WriteStepTable(w io.Writer, d *Dataset) {
	stats := d.Engine.StepStats()
	if len(stats) == 0 {
		fmt.Fprintln(w, "  (no step timings recorded)")
		return
	}
	fmt.Fprintf(w, "  %-24s %8s %7s %12s %10s %10s %10s\n",
		"step", "queries", "errors", "total", "p50", "p95", "p99")
	var queries, errors int64
	var total float64
	for _, s := range stats {
		fmt.Fprintf(w, "  %-24s %8d %7d %12s %10s %10s %10s\n",
			s.Step, s.Queries, s.Errors,
			fmtSeconds(s.TotalSeconds), fmtSeconds(s.P50), fmtSeconds(s.P95), fmtSeconds(s.P99))
		queries += s.Queries
		errors += s.Errors
		total += s.TotalSeconds
	}
	fmt.Fprintf(w, "  %-24s %8d %7d %12s\n", "TOTAL", queries, errors, fmtSeconds(total))
}

// WriteStepTables prints one step table per dataset under a header.
func WriteStepTables(w io.Writer, datasets []*Dataset) {
	fmt.Fprintln(w, "== Per-step query timings ==")
	for _, d := range datasets {
		fmt.Fprintf(w, "%s:\n", d.Spec.Name)
		WriteStepTable(w, d)
	}
}

// fmtSeconds renders a duration measured in float seconds compactly.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

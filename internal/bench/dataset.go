// Package bench is the experiment harness: it prepares the synthetic
// datasets, generates the randomized example workloads of Section 7,
// and regenerates every table and figure of the paper's evaluation as
// text reports (see cmd/experiments and the root bench_test.go).
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
)

// Dataset is a prepared benchmark dataset: generated triples, a
// store, an in-process endpoint, and the bootstrapped virtual graph.
type Dataset struct {
	Spec          datagen.Spec
	Store         *store.Store
	Client        *endpoint.InProcess
	Graph         *vgraph.Graph
	Engine        *core.Engine
	Registry      *obs.Registry
	LoadTime      time.Duration
	BootstrapTime time.Duration
}

// Prepare generates, loads, and bootstraps one dataset.
func Prepare(spec datagen.Spec) (*Dataset, error) {
	return PrepareWithPolicy(spec, nil)
}

// PrepareWithPolicy is Prepare with a resilience policy around the
// query path: when p is non-nil, the bootstrap crawl and the synthesis
// engine issue every query through an endpoint.ResilientClient with
// that policy (per-query deadlines, retries, circuit breaking), so the
// experiment harness degrades the same way production callers do.
// Dataset.Client still exposes the raw in-process client for query
// counting.
func PrepareWithPolicy(spec datagen.Spec, p *endpoint.Policy) (*Dataset, error) {
	t0 := time.Now()
	st, err := spec.BuildStore()
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(t0)
	// A per-dataset registry collects per-step query timings; the
	// experiment reports print them as step tables (StepStats).
	reg := obs.NewRegistry()
	c := endpoint.NewInProcess(st, endpoint.WithRegistry(reg))
	var qc endpoint.Client = c
	if p != nil {
		qc = endpoint.NewResilient(c, endpoint.WithPolicy(*p))
	}
	t1 := time.Now()
	g, err := vgraph.Bootstrap(context.Background(), qc, spec.Config())
	if err != nil {
		return nil, fmt.Errorf("bench: bootstrap %s: %w", spec.Name, err)
	}
	eng := core.NewEngine(qc, g, spec.Config())
	eng.Instrument(reg)
	return &Dataset{
		Spec:          spec,
		Store:         st,
		Client:        c,
		Graph:         g,
		Engine:        eng,
		Registry:      reg,
		LoadTime:      loadTime,
		BootstrapTime: time.Since(t1),
	}, nil
}

// SampleExample draws one example tuple of the given size from the
// data: it picks a random observation, selects `size` of its
// dimensions, optionally rolls each member up to a random coarser
// level, and returns the member labels as keywords. Sampling from an
// observation guarantees the combination is witnessed, which is what
// the paper's randomly-combined members effectively are at its 15M
// observation scale.
func (d *Dataset) SampleExample(rng *rand.Rand, size int) ([]string, bool) {
	dims := d.Graph.Dimensions()
	if size > len(dims) {
		return nil, false
	}
	dict := d.Store.Dict()
	obsIdx := rng.Intn(d.Graph.ObservationCount)
	obsID, ok := dict.Lookup(rdf.NewIRI(fmt.Sprintf("%sobs/%d", d.Spec.NS, obsIdx)))
	if !ok {
		return nil, false
	}
	// Choose `size` distinct dimensions.
	perm := rng.Perm(len(dims))[:size]
	labelID, ok := dict.Lookup(rdf.NewIRI(rdf.RDFSLabel))
	if !ok {
		return nil, false
	}
	var out []string
	for _, di := range perm {
		dim := dims[di]
		levels := d.Graph.LevelsOf(dim)
		level := levels[rng.Intn(len(levels))]
		// Walk from the observation along the level's path.
		cur := obsID
		okWalk := true
		for _, p := range level.Path {
			pid, ok := dict.Lookup(rdf.NewIRI(p))
			if !ok {
				okWalk = false
				break
			}
			next := store.ID(0)
			d.Store.Match(cur, pid, 0, func(_, _, o store.ID) bool {
				next = o
				return false
			})
			if next == 0 {
				okWalk = false
				break
			}
			cur = next
		}
		if !okWalk {
			return nil, false
		}
		// Fetch the member's label.
		var label string
		d.Store.Match(cur, labelID, 0, func(_, _, o store.ID) bool {
			label = dict.Decode(o).Value
			return false
		})
		if label == "" {
			return nil, false
		}
		out = append(out, label)
	}
	return out, true
}

// SampleExamples draws `count` examples of each requested size,
// retrying failed draws.
func (d *Dataset) SampleExamples(seed int64, sizes []int, count int) map[int][][]string {
	rng := rand.New(rand.NewSource(seed))
	out := map[int][][]string{}
	for _, size := range sizes {
		for len(out[size]) < count {
			ex, ok := d.SampleExample(rng, size)
			if ok {
				out[size] = append(out[size], ex)
			}
		}
	}
	return out
}

// Scale bundles the observation counts for the three presets.
type Scale struct {
	Eurostat, Production, DBpedia int
}

// Predefined scales. The paper's originals are 15M/15M/541K
// observations; these are laptop-sized while preserving the schema
// statistics that drive the algorithms.
var (
	ScaleSmall  = Scale{Eurostat: 2000, Production: 2000, DBpedia: 2000}
	ScaleMedium = Scale{Eurostat: 50000, Production: 50000, DBpedia: 20000}
	ScaleLarge  = Scale{Eurostat: 500000, Production: 500000, DBpedia: 100000}
)

// Specs returns the three preset specs at this scale.
func (s Scale) Specs() []datagen.Spec {
	return datagen.Presets(s.Eurostat, s.Production, s.DBpedia)
}

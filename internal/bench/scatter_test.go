package bench

import (
	"testing"

	"re2xolap/internal/datagen"
)

// TestRunScatterBench checks the coordinator benchmark produces one
// result per workload x shard count, with matching row counts between
// topologies (the run itself fails on a mismatch).
func TestRunScatterBench(t *testing.T) {
	d, err := Prepare(datagen.EurostatLike(300))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunScatterBench(d, []int{2, 3}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("want 3 workloads x 2 shard counts = 6 results, got %d", len(rs))
	}
	plans := map[string]bool{}
	for _, r := range rs {
		plans[r.Plan] = true
		if r.Rows <= 0 {
			t.Errorf("%s over %d shards: no rows", r.Name, r.Shards)
		}
		if r.SingleMS <= 0 || r.ScatterMS <= 0 {
			t.Errorf("%s over %d shards: non-positive timing", r.Name, r.Shards)
		}
	}
	for _, p := range []string{"colocated", "partial_agg", "gather"} {
		if !plans[p] {
			t.Errorf("plan class %q not exercised", p)
		}
	}
}

package bench

import (
	"testing"

	"re2xolap/internal/datagen"
)

// TestRunScatterBench checks the coordinator benchmark produces one
// result per workload x shard count, with matching row counts between
// topologies (the run itself fails on a mismatch).
func TestRunScatterBench(t *testing.T) {
	d, err := Prepare(datagen.EurostatLike(300))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunScatterBench(d, []int{2, 3}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("want 5 workloads x 2 shard counts = 10 results, got %d", len(rs))
	}
	plans := map[string]bool{}
	for _, r := range rs {
		plans[r.Plan] = true
		if r.Rows <= 0 {
			t.Errorf("%s over %d shards: no rows", r.Name, r.Shards)
		}
		if r.SingleMS <= 0 || r.ScatterMS <= 0 {
			t.Errorf("%s over %d shards: non-positive timing", r.Name, r.Shards)
		}
	}
	for _, p := range []string{"colocated", "partial_agg", "bound_join", "gather"} {
		if !plans[p] {
			t.Errorf("plan class %q not exercised", p)
		}
	}
}

// TestCheckOverhead pins the gate's key precedence: a workload-name
// ceiling overrides the plan-class ceiling, and unmatched workloads
// are not checked.
func TestCheckOverhead(t *testing.T) {
	rep := &ScatterReport{Results: []ScatterResult{
		{Name: "bound_join", Plan: "bound_join", Shards: 2, Dataset: "d", Overhead: 1.5},
		{Name: "bound_join_wide", Plan: "bound_join", Shards: 2, Dataset: "d", Overhead: 6.0},
		{Name: "gather_closure", Plan: "gather", Shards: 2, Dataset: "d", Overhead: 30.0},
	}}
	// Plan ceiling alone: the wide variant breaches it.
	if err := rep.CheckOverhead(map[string]float64{"bound_join": 2}); err == nil {
		t.Fatal("plan ceiling 2x should fail on the 6x wide workload")
	}
	// Name key loosens just the wide variant; gather stays unchecked.
	if err := rep.CheckOverhead(map[string]float64{"bound_join": 2, "bound_join_wide": 8}); err != nil {
		t.Fatalf("name override should pass: %v", err)
	}
	// Name key can also tighten past the plan default.
	if err := rep.CheckOverhead(map[string]float64{"bound_join": 8, "bound_join_wide": 4}); err == nil {
		t.Fatal("name ceiling 4x should fail on the 6x wide workload")
	}
	if err := rep.CheckOverhead(map[string]float64{"gather": 40}); err != nil {
		t.Fatalf("gather under its ceiling should pass: %v", err)
	}
}

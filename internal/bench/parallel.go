package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/sparql"
)

// ParallelResult is one sequential-vs-parallel timing comparison.
type ParallelResult struct {
	// Name identifies the workload: bgp_join, group_by, synthesize_all.
	Name string `json:"name"`
	// Dataset is the datagen preset the workload ran on.
	Dataset string `json:"dataset"`
	// SequentialMS / ParallelMS are best-of-N wall times.
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	// Speedup is SequentialMS / ParallelMS (>1 means parallel won; on
	// a single-core host expect ~1x or slightly below from overhead).
	Speedup float64 `json:"speedup"`
}

// ParallelReport is the machine-readable output of the PR-2 benchmark
// run (written to BENCH_PR2.json by cmd/bench).
type ParallelReport struct {
	Scale      string `json:"scale"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       int    `json:"runs"`
	// Note records the measurement caveat that makes the numbers
	// interpretable off this machine.
	Note    string           `json:"note"`
	Results []ParallelResult `json:"results"`
}

// parallelQueries returns the two query workloads: a multi-pattern BGP
// join and a sharded GROUP BY aggregate, phrased against a preset.
func parallelQueries(spec datagen.Spec) (bgp, groupBy string) {
	obs := spec.ObservationClass()
	dim := spec.NS + spec.Dimensions[0].Pred
	dim2 := spec.NS + spec.Dimensions[1].Pred
	meas := spec.NS + spec.Measures[0].Pred
	bgp = fmt.Sprintf(
		`SELECT ?o ?m ?g ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?g . ?o <%s> ?v . } ORDER BY ?o LIMIT 1000`,
		obs, dim, dim2, meas)
	groupBy = fmt.Sprintf(
		`SELECT ?m (COUNT(?o) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY ?m`,
		dim, meas)
	return bgp, groupBy
}

// bestOf runs fn `runs` times and returns the fastest wall time: the
// standard way to suppress scheduler noise in coarse benchmarks.
func bestOf(runs int, fn func() error) (time.Duration, error) {
	best := time.Duration(-1)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(seq, par time.Duration) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// RunParallelBench measures the sequential-vs-parallel executor on one
// prepared dataset: the BGP join and GROUP BY workloads through the
// SPARQL engine, and end-to-end synthesis through the core engine.
// workers <= 0 means GOMAXPROCS.
func RunParallelBench(d *Dataset, workers, runs int) ([]ParallelResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runs <= 0 {
		runs = 3
	}
	bgp, groupBy := parallelQueries(d.Spec)

	seqEng := sparql.NewEngine(d.Store)
	seqEng.Exec.Workers = 1
	parEng := sparql.NewEngine(d.Store)
	parEng.Exec.Workers = workers

	var out []ParallelResult
	for _, w := range []struct{ name, query string }{
		{"bgp_join", bgp},
		{"group_by", groupBy},
	} {
		seq, err := bestOf(runs, func() error { _, err := seqEng.QueryString(w.query); return err })
		if err != nil {
			return nil, fmt.Errorf("bench: %s sequential: %w", w.name, err)
		}
		par, err := bestOf(runs, func() error { _, err := parEng.QueryString(w.query); return err })
		if err != nil {
			return nil, fmt.Errorf("bench: %s parallel: %w", w.name, err)
		}
		out = append(out, ParallelResult{
			Name: w.name, Dataset: d.Spec.Name,
			SequentialMS: millis(seq), ParallelMS: millis(par), Speedup: ratio(seq, par),
		})
	}

	// End-to-end synthesis: sample a 2-item example from the data and
	// synthesize with the match cache off, so every run pays the full
	// endpoint cost and the candidate-validation pool is what varies.
	examples := d.SampleExamples(7, []int{2}, 1)[2]
	if len(examples) == 0 {
		return out, nil
	}
	tuple := core.Keywords(examples[0]...)
	synth := func(w int) (time.Duration, error) {
		e := core.NewEngine(d.Engine.Client, d.Graph, d.Spec.Config())
		e.DisableMatchCache = true
		e.Workers = w
		return bestOf(runs, func() error {
			_, err := e.SynthesizeAll(context.Background(), []core.ExampleTuple{tuple})
			return err
		})
	}
	seq, err := synth(1)
	if err != nil {
		return nil, fmt.Errorf("bench: synthesize_all sequential: %w", err)
	}
	par, err := synth(workers)
	if err != nil {
		return nil, fmt.Errorf("bench: synthesize_all parallel: %w", err)
	}
	out = append(out, ParallelResult{
		Name: "synthesize_all", Dataset: d.Spec.Name,
		SequentialMS: millis(seq), ParallelMS: millis(par), Speedup: ratio(seq, par),
	})
	return out, nil
}

// RunParallelReport runs the parallel benchmark over every preset at
// the given scale and assembles the report.
func RunParallelReport(scaleName string, scale Scale, workers, runs int) (*ParallelReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &ParallelReport{
		Scale:      scaleName,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       runs,
		Note: "best-of-N wall times; speedup = sequential/parallel. " +
			"Parallel gains require GOMAXPROCS > 1; on a single-core host " +
			"expect ~1x with small scheduling overhead.",
	}
	for _, spec := range scale.Specs() {
		d, err := Prepare(spec)
		if err != nil {
			return nil, err
		}
		rs, err := RunParallelBench(d, workers, runs)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rs...)
	}
	return rep, nil
}

package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/refine"
	"re2xolap/internal/serve"
	"re2xolap/internal/session"
)

// ServeOptions parameterizes the serving-stack load benchmark.
type ServeOptions struct {
	// Shards lists the topologies to measure (1 = single node).
	Shards []int
	// LoadWorkers lists the closed-loop client counts.
	LoadWorkers []int
	// QueriesPerWorker is the closed-loop replay length per client.
	QueriesPerWorker int
	// Sessions / SessionSteps shape the replayed workload: how many
	// distinct exploration sessions are walked at prepare time and how
	// many steps each contributes.
	Sessions     int
	SessionSteps int
	// Overlap is the probability that a client's next query comes from
	// the shared session rather than its own — the knob that controls
	// how much the result cache and single-flight can help. 1 means
	// every client replays the same exploration; 0 means all-distinct.
	Overlap float64
	// OpenLoopDuration bounds the 2x-saturation open-loop phase.
	OpenLoopDuration time.Duration
	// Seed drives session sampling and replay interleaving.
	Seed int64
}

// withDefaults fills unset knobs.
func (o ServeOptions) withDefaults() ServeOptions {
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 3}
	}
	if len(o.LoadWorkers) == 0 {
		o.LoadWorkers = []int{4, 16}
	}
	if o.QueriesPerWorker <= 0 {
		o.QueriesPerWorker = 200
	}
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.SessionSteps <= 0 {
		o.SessionSteps = 4
	}
	if o.Overlap == 0 {
		o.Overlap = 0.75
	}
	if o.OpenLoopDuration <= 0 {
		o.OpenLoopDuration = 1500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// ServeMeasurement is one (topology, client count, cache mode) cell of
// the closed-loop matrix.
type ServeMeasurement struct {
	// Config identifies the cell, e.g. "3shard/16w/cached".
	Config string `json:"config"`
	// Shards / Workers / Cached decompose it.
	Shards  int  `json:"shards"`
	Workers int  `json:"workers"`
	Cached  bool `json:"cached"`
	// QPS is total completed queries over wall time.
	QPS float64 `json:"qps"`
	// Latency quantiles over all completed queries, in milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// Queries is the completed-query count behind the quantiles.
	Queries int `json:"queries"`
	// CacheHits / Coalesced / Executions account for where answers came
	// from (executions is what actually reached the engine).
	CacheHits  int64 `json:"cache_hits"`
	Coalesced  int64 `json:"coalesced"`
	Executions int64 `json:"executions"`
}

// ServeRank is one row of the PAPyA-style configuration ranking: each
// config is ranked per dimension (1 = best throughput, 1 = best tail
// latency) and ordered by the mean of its single-dimension ranks, so
// a config that trades a little throughput for a much better tail
// still surfaces near the top.
type ServeRank struct {
	Config         string  `json:"config"`
	ThroughputRank int     `json:"throughput_rank"`
	P99Rank        int     `json:"p99_rank"`
	Score          float64 `json:"score"` // mean rank; lower is better
}

// OpenLoopResult is the admission proof: requests offered at twice the
// measured saturation throughput, with admission control on. The queue
// bound keeps the admitted tail flat (P99MS stays within a small
// multiple of the unloaded closed-loop tail) while the excess is shed
// as fast 429s instead of queueing toward timeout.
type OpenLoopResult struct {
	Shards      int     `json:"shards"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Timeouts    int     `json:"timeouts"`
	Errors      int     `json:"errors"`
	// Quantiles of admitted (completed) requests, in milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// BaselineP99MS is the same topology's unloaded closed-loop p99 —
	// the yardstick for "bounded".
	BaselineP99MS float64 `json:"baseline_p99_ms"`
}

// ServeReport is the machine-readable output of the serving-stack load
// benchmark (BENCH_PR9.json).
type ServeReport struct {
	Scale            string  `json:"scale"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Dataset          string  `json:"dataset"`
	Sessions         int     `json:"sessions"`
	SessionSteps     int     `json:"session_steps"`
	Overlap          float64 `json:"overlap"`
	QueriesPerWorker int     `json:"queries_per_worker"`
	Note             string  `json:"note"`

	Results  []ServeMeasurement `json:"results"`
	Ranking  []ServeRank        `json:"ranking"`
	OpenLoop []OpenLoopResult   `json:"open_loop"`
}

// sessionTraces walks `n` exploration sessions (synthesize from a
// sampled example, then refine: the Dis/TopK/Sim loop of the paper's
// workflow) and returns each session's step queries as executable
// SPARQL — the replay workload. Walking happens at prepare time
// against the dataset's own engine; the benchmark only replays the
// recorded texts.
func sessionTraces(d *Dataset, seed int64, n, steps int) ([][]string, error) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	kinds := []refine.Kind{refine.KindDisaggregate, refine.KindTopK, refine.KindSimilarity, refine.KindPercentile}
	var traces [][]string
	for tries := 0; len(traces) < n && tries < n*20; tries++ {
		ex, ok := d.SampleExample(rng, 2)
		if !ok {
			continue
		}
		cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
		if err != nil {
			return nil, fmt.Errorf("bench: synthesize: %w", err)
		}
		if len(cands) == 0 {
			continue
		}
		sess := session.New(d.Engine, d.Graph)
		if _, err := sess.Start(ctx, cands[rng.Intn(len(cands))].Query); err != nil {
			continue
		}
		for sess.Depth() < steps {
			progressed := false
			first := rng.Intn(len(kinds))
			for j := 0; j < len(kinds) && !progressed; j++ {
				opts, err := sess.Options(ctx, kinds[(first+j)%len(kinds)])
				if err != nil || len(opts) == 0 {
					continue
				}
				if _, err := sess.Apply(ctx, opts[rng.Intn(len(opts))]); err == nil {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		var qs []string
		for _, st := range sess.Export().Steps {
			qs = append(qs, st.SPARQL)
		}
		if len(qs) > 0 {
			traces = append(traces, qs)
		}
	}
	if len(traces) < 2 {
		return nil, fmt.Errorf("bench: only %d replayable sessions sampled, need >= 2", len(traces))
	}
	return traces, nil
}

// serveBackend builds the topology's raw client: the single store or a
// coordinator over its subject-hash partitions.
func serveBackend(d *Dataset, shards int) (endpoint.Client, error) {
	if shards <= 1 {
		return endpoint.NewInProcess(d.Store), nil
	}
	return shardCoordinator(d.Store, shards, 0)
}

// pickQuery draws a worker's next replay query: from the shared
// session with probability overlap, from the worker's own otherwise.
func pickQuery(rng *rand.Rand, traces [][]string, overlap float64, worker, i int) string {
	tr := traces[1+worker%(len(traces)-1)]
	if rng.Float64() < overlap {
		tr = traces[0]
	}
	return tr[i%len(tr)]
}

// quantiles sorts durations in place and reads p50/p95/p99 in ms.
func quantiles(ds []time.Duration) (p50, p95, p99 float64) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return millis(ds[i])
	}
	return at(0.50), at(0.95), at(0.99)
}

// closedLoop runs `workers` clients, each replaying `perWorker`
// session-step queries back to back, and measures throughput and
// latency quantiles.
func closedLoop(c endpoint.Client, traces [][]string, overlap float64, workers, perWorker int, seed int64) (ServeMeasurement, error) {
	ctx := context.Background()
	lat := make([][]time.Duration, workers)
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			lat[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				q := pickQuery(rng, traces, overlap, w, i)
				t0 := time.Now()
				if _, _, err := endpoint.QueryX(ctx, c, endpoint.Request{Query: q}); err != nil {
					errs[w] = fmt.Errorf("bench: worker %d query %d: %w", w, i, err)
					return
				}
				lat[w] = append(lat[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeMeasurement{}, err
		}
	}
	var all []time.Duration
	for _, ds := range lat {
		all = append(all, ds...)
	}
	m := ServeMeasurement{Workers: workers, Queries: len(all)}
	m.QPS = float64(len(all)) / wall.Seconds()
	m.P50MS, m.P95MS, m.P99MS = quantiles(all)
	return m, nil
}

// openLoop offers requests at a fixed rate regardless of completions
// (the arrival process of real clients), against a stack with
// admission control on, and reports what was admitted, what was shed,
// and the admitted tail.
func openLoop(c endpoint.Client, traces [][]string, overlap float64, rate float64, dur, deadline time.Duration, seed int64) OpenLoopResult {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	// Batch the arrivals on a coarse tick: a per-request ticker cannot
	// keep up beyond ~10k/s, a 5ms batch can.
	const tick = 5 * time.Millisecond
	perTick := int(rate * tick.Seconds())
	if perTick < 1 {
		perTick = 1
	}

	var mu sync.Mutex
	var lat []time.Duration
	var sent, ok, shed, timeouts, errsN int
	var wg sync.WaitGroup

	start := time.Now()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for time.Since(start) < dur {
		<-ticker.C
		queries := make([]string, perTick)
		for j := range queries {
			queries[j] = pickQuery(rng, traces, overlap, rng.Intn(1<<16), sent+j)
		}
		sent += perTick
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				qctx, cancel := context.WithTimeout(ctx, deadline)
				defer cancel()
				t0 := time.Now()
				_, _, err := endpoint.QueryX(qctx, c, endpoint.Request{Query: q})
				d := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					ok++
					lat = append(lat, d)
				case errors.Is(err, endpoint.ErrOverloaded):
					shed++
				case errors.Is(err, context.DeadlineExceeded):
					timeouts++
				default:
					errsN++
				}
			}(q)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	r := OpenLoopResult{
		OfferedQPS:  rate,
		AchievedQPS: float64(ok) / wall.Seconds(),
		Sent:        sent, OK: ok, Shed: shed, Timeouts: timeouts, Errors: errsN,
	}
	r.P50MS, r.P95MS, r.P99MS = quantiles(lat)
	return r
}

// rankConfigs produces the PAPyA-style ranking: rank each config per
// dimension, order by mean rank.
func rankConfigs(results []ServeMeasurement) []ServeRank {
	idx := make([]int, len(results))
	for i := range idx {
		idx[i] = i
	}
	ranks := make([]ServeRank, len(results))
	for i, r := range results {
		ranks[i].Config = r.Config
	}
	// Throughput: higher is better.
	sort.Slice(idx, func(a, b int) bool { return results[idx[a]].QPS > results[idx[b]].QPS })
	for pos, i := range idx {
		ranks[i].ThroughputRank = pos + 1
	}
	// Tail latency: lower is better.
	sort.Slice(idx, func(a, b int) bool { return results[idx[a]].P99MS < results[idx[b]].P99MS })
	for pos, i := range idx {
		ranks[i].P99Rank = pos + 1
	}
	for i := range ranks {
		ranks[i].Score = float64(ranks[i].ThroughputRank+ranks[i].P99Rank) / 2
	}
	sort.Slice(ranks, func(a, b int) bool {
		if ranks[a].Score != ranks[b].Score {
			return ranks[a].Score < ranks[b].Score
		}
		return ranks[a].Config < ranks[b].Config
	})
	return ranks
}

// RunServeReport measures the serving stack: a closed-loop
// (workers × shards × cache-mode) matrix over replayed exploration
// sessions, a PAPyA-style ranking of the configurations, and an
// open-loop phase at twice each topology's measured saturation
// throughput with admission control on.
func RunServeReport(scaleName string, scale Scale, opt ServeOptions) (*ServeReport, error) {
	opt = opt.withDefaults()
	spec := scale.Specs()[0] // eurostat-like: the paper's primary dataset
	d, err := Prepare(spec)
	if err != nil {
		return nil, err
	}
	traces, err := sessionTraces(d, opt.Seed, opt.Sessions, opt.SessionSteps)
	if err != nil {
		return nil, err
	}

	rep := &ServeReport{
		Scale:            scaleName,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Dataset:          spec.Name,
		Sessions:         len(traces),
		SessionSteps:     opt.SessionSteps,
		Overlap:          opt.Overlap,
		QueriesPerWorker: opt.QueriesPerWorker,
		Note: "closed loop replays recorded exploration sessions (overlap = share of queries " +
			"drawn from the session all clients have in common). cached = result cache + " +
			"single-flight; uncached = bare backend. open loop offers 2x the uncached saturation " +
			"QPS with admission on: bounded p99 for admitted requests, excess shed as fast rejections.",
	}

	// uncachedQPS / baselineP99 feed the open-loop phase per topology.
	uncachedQPS := map[int]float64{}
	baselineP99 := map[int]float64{}

	for _, shards := range opt.Shards {
		raw, err := serveBackend(d, shards)
		if err != nil {
			return nil, err
		}
		for _, cached := range []bool{false, true} {
			for _, workers := range opt.LoadWorkers {
				// Each cell gets its own stack + registry so the cache
				// starts cold and the counters cover exactly this run.
				var c endpoint.Client = raw
				var reg *obs.Registry
				mode := "uncached"
				if cached {
					mode = "cached"
					reg = obs.NewRegistry()
					c = serve.New(raw, serve.WithResultCache(256), serve.WithRegistry(reg))
				}
				m, err := closedLoop(c, traces, opt.Overlap, workers, opt.QueriesPerWorker, opt.Seed)
				if err != nil {
					return nil, err
				}
				m.Shards, m.Cached = shards, cached
				m.Config = fmt.Sprintf("%dshard/%dw/%s", shards, workers, mode)
				if reg != nil {
					m.CacheHits, m.Coalesced, m.Executions = cacheCounters(reg)
				} else {
					m.Executions = int64(m.Queries)
				}
				rep.Results = append(rep.Results, m)
				if !cached && m.QPS > uncachedQPS[shards] {
					uncachedQPS[shards] = m.QPS
					baselineP99[shards] = m.P99MS
				}
			}
		}
	}
	rep.Ranking = rankConfigs(rep.Results)

	for _, shards := range opt.Shards {
		raw, err := serveBackend(d, shards)
		if err != nil {
			return nil, err
		}
		stack := serve.New(raw,
			serve.WithResultCache(256),
			serve.WithAdmission(serve.AdmissionConfig{
				MaxConcurrent: runtime.GOMAXPROCS(0),
				QueueBudget:   4 * runtime.GOMAXPROCS(0),
			}))
		offered := 2 * uncachedQPS[shards]
		if offered > 20000 {
			offered = 20000 // arrival batching gets coarse beyond this
		}
		// Per-request deadline: generous against the topology's own
		// unloaded tail, so only queueing (the thing admission bounds)
		// can miss it, not a normal execution.
		deadline := time.Duration(4 * baselineP99[shards] * float64(time.Millisecond))
		if deadline < 250*time.Millisecond {
			deadline = 250 * time.Millisecond
		}
		r := openLoop(stack, traces, opt.Overlap, offered, opt.OpenLoopDuration, deadline, opt.Seed)
		r.Shards = shards
		r.BaselineP99MS = baselineP99[shards]
		rep.OpenLoop = append(rep.OpenLoop, r)
	}
	return rep, nil
}

// cacheCounters reads the hit/coalesce/execution counters back out of
// a measured stack's registry.
func cacheCounters(reg *obs.Registry) (hits, coalesced, executions int64) {
	return reg.Counter("re2xolap_result_cache_hits_total", "").Value(),
		reg.Counter("re2xolap_serve_coalesced_total", "").Value(),
		reg.Counter("re2xolap_serve_executions_total", "").Value()
}

// CheckServe is the CI regression gate: for every (shards, workers)
// pair the cached configuration must beat the uncached one by at least
// minWarmSpeedup on throughput, and every open-loop run must hold the
// admitted p99 within maxP99Ratio of its topology's unloaded baseline
// while shedding (not erroring) the excess. Non-positive limits skip
// that check.
func (r *ServeReport) CheckServe(minWarmSpeedup, maxP99Ratio float64) error {
	if minWarmSpeedup > 0 {
		uncached := map[string]ServeMeasurement{}
		for _, m := range r.Results {
			if !m.Cached {
				uncached[fmt.Sprintf("%d/%d", m.Shards, m.Workers)] = m
			}
		}
		for _, m := range r.Results {
			if !m.Cached {
				continue
			}
			base, ok := uncached[fmt.Sprintf("%d/%d", m.Shards, m.Workers)]
			if !ok {
				continue
			}
			if speedup := m.QPS / base.QPS; speedup < minWarmSpeedup {
				return fmt.Errorf("bench: %s: warm speedup %.2fx below %.2fx (cached %.0f qps vs uncached %.0f qps)",
					m.Config, speedup, minWarmSpeedup, m.QPS, base.QPS)
			}
		}
	}
	if maxP99Ratio > 0 {
		for _, o := range r.OpenLoop {
			if o.OK == 0 {
				return fmt.Errorf("bench: open loop (%d shards): no request admitted", o.Shards)
			}
			if o.Errors > o.Sent/10 {
				return fmt.Errorf("bench: open loop (%d shards): %d/%d requests errored (shedding should be 429s, not failures)",
					o.Shards, o.Errors, o.Sent)
			}
			if o.BaselineP99MS > 0 && o.P99MS > maxP99Ratio*o.BaselineP99MS {
				return fmt.Errorf("bench: open loop (%d shards): admitted p99 %.2fms exceeds %.1fx unloaded baseline %.2fms",
					o.Shards, o.P99MS, maxP99Ratio, o.BaselineP99MS)
			}
		}
	}
	return nil
}

package bench

import (
	"context"
	"testing"

	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
)

// BenchmarkSynthesizeAll measures end-to-end synthesis (match →
// combine → validate) sequentially and through the worker pool, with
// the match cache disabled so every iteration pays the full endpoint
// cost.
func BenchmarkSynthesizeAll(b *testing.B) {
	d, err := Prepare(datagen.EurostatLike(2000))
	if err != nil {
		b.Fatal(err)
	}
	examples := d.SampleExamples(7, []int{2}, 1)[2]
	if len(examples) == 0 {
		b.Fatal("no example sampled")
	}
	tuple := core.Keywords(examples[0]...)
	run := func(b *testing.B, workers int) {
		e := core.NewEngine(d.Engine.Client, d.Graph, d.Spec.Config())
		e.DisableMatchCache = true
		e.Workers = workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.SynthesizeAll(context.Background(), []core.ExampleTuple{tuple}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 1) })
	b.Run("par", func(b *testing.B) { run(b, 0) })
}

// BenchmarkParallelReport exercises the cmd/bench measurement path at
// the small scale (the CI smoke target).
func BenchmarkParallelReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunParallelReport("small", Scale{Eurostat: 1000, Production: 1000, DBpedia: 1000}, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

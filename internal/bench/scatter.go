package bench

import (
	"context"
	"fmt"
	"runtime"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/shard"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// ScatterResult is one single-node vs N-shard coordinator comparison
// for a workload.
type ScatterResult struct {
	// Name identifies the workload: colocated_star, partial_agg,
	// bound_join, bound_join_wide, gather_closure — at least one per
	// scatter-gather plan class.
	Name string `json:"name"`
	// Dataset is the datagen preset the workload ran on.
	Dataset string `json:"dataset"`
	// Plan is the coordinator plan class the workload exercises.
	Plan string `json:"plan"`
	// Shards is the coordinator fan-out (0 rows never appear; the
	// single-node baseline is SingleMS on every row).
	Shards int `json:"shards"`
	// SingleMS / ScatterMS are best-of-N wall times: the same query on
	// one in-process endpoint over the whole dataset, and through the
	// coordinator over the subject-hash partitions.
	SingleMS  float64 `json:"single_ms"`
	ScatterMS float64 `json:"scatter_ms"`
	// Overhead is ScatterMS / SingleMS (>1 means the coordinator paid
	// for the fan-out + merge; <1 means shard parallelism won).
	Overhead float64 `json:"overhead"`
	// Rows sanity-checks the comparison: both sides returned this many.
	Rows int `json:"rows"`
}

// ScatterReport is the machine-readable output of the PR-4 benchmark
// run (written to BENCH_PR4.json by cmd/bench).
type ScatterReport struct {
	Scale      string `json:"scale"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       int    `json:"runs"`
	Shards     []int  `json:"shards"`
	// Note records the measurement caveat that makes the numbers
	// interpretable off this machine.
	Note    string          `json:"note"`
	Results []ScatterResult `json:"results"`
}

// scatterWorkloads phrases one query per coordinator plan class
// against a preset: a colocated observation star with ORDER BY/LIMIT,
// a decomposable GROUP BY that takes the partial-aggregation pushdown,
// two cross-subject joins that run as bound joins (the accumulated
// side's distinct bindings ship as VALUES constraints instead of the
// whole label relation), and a transitive closure over the member
// hierarchy that still needs the gather fallback. The two bound-join
// variants bracket the plan class: bound_join joins through the
// smallest dimension (few distinct bindings ship — the representative
// semijoin win), bound_join_wide through the first dimension (the
// exact query the pre-bound-join benchmark ran as gather_join, whose
// member count makes it the worst-case binding ship).
func scatterWorkloads(d *Dataset) []struct{ name, plan, query string } {
	spec := d.Spec
	obs := spec.ObservationClass()
	dim := spec.NS + spec.Dimensions[0].Pred
	dim2 := spec.NS + spec.Dimensions[1].Pred
	meas := spec.NS + spec.Measures[0].Pred
	// Smallest dimension by member count: the cheap side to ship.
	narrow := spec.Dimensions[0]
	for _, d := range spec.Dimensions[1:] {
		if d.Members < narrow.Members {
			narrow = d
		}
	}
	// Rollup link of the first hierarchical dimension (presets differ
	// in which dimensions carry a hierarchy).
	var rollup string
	for _, d := range spec.Dimensions {
		if len(d.Children) > 0 {
			rollup = spec.NS + d.Children[0].Pred
			break
		}
	}
	return []struct{ name, plan, query string }{
		{"colocated_star", "colocated", fmt.Sprintf(
			`SELECT ?o ?m ?g ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?g . ?o <%s> ?v . } ORDER BY ?o LIMIT 1000`,
			obs, dim, dim2, meas)},
		{"partial_agg", "partial_agg", fmt.Sprintf(
			`SELECT ?m (COUNT(?o) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY ?m`,
			dim, meas)},
		{"bound_join", "bound_join", fmt.Sprintf(
			`SELECT ?o ?lbl WHERE { ?o <%s> ?m . ?m <%s> ?lbl } ORDER BY ?o ?lbl LIMIT 500`,
			spec.NS+narrow.Pred, rdf.RDFSLabel)},
		{"bound_join_wide", "bound_join", fmt.Sprintf(
			`SELECT ?o ?lbl WHERE { ?o <%s> ?m . ?m <%s> ?lbl } ORDER BY ?o ?lbl LIMIT 500`,
			dim, rdf.RDFSLabel)},
		{"gather_closure", "gather", fmt.Sprintf(
			`SELECT ?a ?lbl WHERE { ?a <%s>+ ?c . ?c <%s> ?lbl } ORDER BY ?a ?lbl LIMIT 500`,
			rollup, rdf.RDFSLabel)},
	}
}

// shardCoordinator partitions the dataset by subject hash and stands
// up an in-process coordinator over n shard backends, mirroring what
// `sparqld -shards n` builds.
func shardCoordinator(st *store.Store, n, workers int) (*shard.Coordinator, error) {
	parts := shard.Partitioner{N: n}.Split(st.Triples())
	backends := make([]endpoint.Client, n)
	for i, ts := range parts {
		s := store.New()
		if err := s.AddAll(ts); err != nil {
			return nil, fmt.Errorf("bench: shard %d: %w", i, err)
		}
		s.Compact()
		backends[i] = endpoint.NewInProcess(s, endpoint.WithWorkers(workers))
	}
	// WithoutResilience: the retry/breaker wrapper is not what this
	// benchmark measures, and in-process shards cannot flake.
	return shard.New(backends, shard.WithWorkers(workers), shard.WithoutResilience())
}

// RunScatterBench measures the coordinator against the single-node
// engine on one prepared dataset, for each shard count. workers <= 0
// means one goroutine per shard (the coordinator default) and
// GOMAXPROCS inside each shard's executor.
func RunScatterBench(d *Dataset, shardCounts []int, workers, runs int) ([]ScatterResult, error) {
	if runs <= 0 {
		runs = 3
	}
	ctx := context.Background()
	single := endpoint.NewInProcess(d.Store, endpoint.WithWorkers(workers))

	coords := make(map[int]*shard.Coordinator, len(shardCounts))
	for _, n := range shardCounts {
		c, err := shardCoordinator(d.Store, n, workers)
		if err != nil {
			return nil, err
		}
		coords[n] = c
	}

	var out []ScatterResult
	for _, w := range scatterWorkloads(d) {
		var singleRes *sparql.Results
		singleT, err := bestOf(runs, func() error {
			res, err := single.Query(ctx, w.query)
			singleRes = res
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s single: %w", w.name, err)
		}
		for _, n := range shardCounts {
			coord := coords[n]
			var coordRes *sparql.Results
			var gotPlan string
			coordT, err := bestOf(runs, func() error {
				res, meta, err := coord.QueryX(ctx, endpoint.Request{Query: w.query})
				coordRes, gotPlan = res, meta.Plan
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s over %d shards: %w", w.name, n, err)
			}
			if gotPlan != w.plan {
				return nil, fmt.Errorf("bench: %s over %d shards: classified %s, want %s",
					w.name, n, gotPlan, w.plan)
			}
			if coordRes.Len() != singleRes.Len() {
				return nil, fmt.Errorf("bench: %s over %d shards: %d rows, single node has %d",
					w.name, n, coordRes.Len(), singleRes.Len())
			}
			out = append(out, ScatterResult{
				Name: w.name, Dataset: d.Spec.Name, Plan: w.plan, Shards: n,
				SingleMS: millis(singleT), ScatterMS: millis(coordT),
				Overhead: ratio(coordT, singleT), Rows: singleRes.Len(),
			})
		}
	}
	return out, nil
}

// RunScatterReport runs the scatter benchmark over every preset at the
// given scale and assembles the report.
func RunScatterReport(scaleName string, scale Scale, shardCounts []int, workers, runs int) (*ScatterReport, error) {
	rep := &ScatterReport{
		Scale:      scaleName,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       runs,
		Shards:     shardCounts,
		Note: "best-of-N wall times; overhead = scatter/single. In-process shards on one host " +
			"measure partitioning + merge cost, not network; overhead near 1x means the " +
			"coordinator is cheap, below 1x means shard parallelism won (needs spare cores).",
	}
	for _, spec := range scale.Specs() {
		d, err := Prepare(spec)
		if err != nil {
			return nil, err
		}
		rs, err := RunScatterBench(d, shardCounts, workers, runs)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rs...)
	}
	return rep, nil
}

// CheckOverhead verifies every result against an overhead ceiling
// (scatter/single wall-time ratio) and returns an error naming the
// first violation. Limits are keyed by workload name or, as a
// fallback, by plan class — a name key overrides the plan key for
// that workload (so bound_join_wide can carry a looser ceiling than
// the bound_join plan default). Workloads matching no key are not
// checked. This is the CI regression gate: a plan class sliding back
// toward the gather cliff fails the build instead of landing quietly.
func (r *ScatterReport) CheckOverhead(limits map[string]float64) error {
	for _, res := range r.Results {
		limit, ok := limits[res.Name]
		if !ok {
			limit, ok = limits[res.Plan]
		}
		if !ok {
			continue
		}
		if res.Overhead > limit {
			return fmt.Errorf("bench: %s (%s, %d shards, %s): overhead %.2fx exceeds %.2fx",
				res.Name, res.Plan, res.Shards, res.Dataset, res.Overhead, limit)
		}
	}
	return nil
}

package bench

import (
	"context"
	"fmt"
	"runtime"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/shard"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// ScatterResult is one single-node vs N-shard coordinator comparison
// for a workload.
type ScatterResult struct {
	// Name identifies the workload: colocated_star, partial_agg,
	// gather_join — one per scatter-gather plan class.
	Name string `json:"name"`
	// Dataset is the datagen preset the workload ran on.
	Dataset string `json:"dataset"`
	// Plan is the coordinator plan class the workload exercises.
	Plan string `json:"plan"`
	// Shards is the coordinator fan-out (0 rows never appear; the
	// single-node baseline is SingleMS on every row).
	Shards int `json:"shards"`
	// SingleMS / ScatterMS are best-of-N wall times: the same query on
	// one in-process endpoint over the whole dataset, and through the
	// coordinator over the subject-hash partitions.
	SingleMS  float64 `json:"single_ms"`
	ScatterMS float64 `json:"scatter_ms"`
	// Overhead is ScatterMS / SingleMS (>1 means the coordinator paid
	// for the fan-out + merge; <1 means shard parallelism won).
	Overhead float64 `json:"overhead"`
	// Rows sanity-checks the comparison: both sides returned this many.
	Rows int `json:"rows"`
}

// ScatterReport is the machine-readable output of the PR-4 benchmark
// run (written to BENCH_PR4.json by cmd/bench).
type ScatterReport struct {
	Scale      string `json:"scale"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       int    `json:"runs"`
	Shards     []int  `json:"shards"`
	// Note records the measurement caveat that makes the numbers
	// interpretable off this machine.
	Note    string          `json:"note"`
	Results []ScatterResult `json:"results"`
}

// scatterWorkloads phrases one query per coordinator plan class
// against a preset: a colocated observation star with ORDER BY/LIMIT,
// a decomposable GROUP BY that takes the partial-aggregation pushdown,
// and a cross-subject join that forces the gather fallback.
func scatterWorkloads(d *Dataset) []struct{ name, plan, query string } {
	spec := d.Spec
	obs := spec.ObservationClass()
	dim := spec.NS + spec.Dimensions[0].Pred
	dim2 := spec.NS + spec.Dimensions[1].Pred
	meas := spec.NS + spec.Measures[0].Pred
	return []struct{ name, plan, query string }{
		{"colocated_star", "colocated", fmt.Sprintf(
			`SELECT ?o ?m ?g ?v WHERE { ?o a <%s> . ?o <%s> ?m . ?o <%s> ?g . ?o <%s> ?v . } ORDER BY ?o LIMIT 1000`,
			obs, dim, dim2, meas)},
		{"partial_agg", "partial_agg", fmt.Sprintf(
			`SELECT ?m (COUNT(?o) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?o <%s> ?m . ?o <%s> ?v . } GROUP BY ?m ORDER BY ?m`,
			dim, meas)},
		{"gather_join", "gather", fmt.Sprintf(
			`SELECT ?o ?lbl WHERE { ?o <%s> ?m . ?m <%s> ?lbl } ORDER BY ?o ?lbl LIMIT 500`,
			dim, rdf.RDFSLabel)},
	}
}

// shardCoordinator partitions the dataset by subject hash and stands
// up an in-process coordinator over n shard backends, mirroring what
// `sparqld -shards n` builds.
func shardCoordinator(st *store.Store, n, workers int) (*shard.Coordinator, error) {
	parts := shard.Partitioner{N: n}.Split(st.Triples())
	backends := make([]endpoint.Client, n)
	for i, ts := range parts {
		s := store.New()
		if err := s.AddAll(ts); err != nil {
			return nil, fmt.Errorf("bench: shard %d: %w", i, err)
		}
		s.Compact()
		backends[i] = endpoint.NewInProcess(s, endpoint.WithWorkers(workers))
	}
	// NoResilience: the retry/breaker wrapper is not what this
	// benchmark measures, and in-process shards cannot flake.
	return shard.New(backends, shard.Config{Workers: workers, NoResilience: true})
}

// RunScatterBench measures the coordinator against the single-node
// engine on one prepared dataset, for each shard count. workers <= 0
// means one goroutine per shard (the coordinator default) and
// GOMAXPROCS inside each shard's executor.
func RunScatterBench(d *Dataset, shardCounts []int, workers, runs int) ([]ScatterResult, error) {
	if runs <= 0 {
		runs = 3
	}
	ctx := context.Background()
	single := endpoint.NewInProcess(d.Store, endpoint.WithWorkers(workers))

	coords := make(map[int]*shard.Coordinator, len(shardCounts))
	for _, n := range shardCounts {
		c, err := shardCoordinator(d.Store, n, workers)
		if err != nil {
			return nil, err
		}
		coords[n] = c
	}

	var out []ScatterResult
	for _, w := range scatterWorkloads(d) {
		var singleRes *sparql.Results
		singleT, err := bestOf(runs, func() error {
			res, err := single.Query(ctx, w.query)
			singleRes = res
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s single: %w", w.name, err)
		}
		for _, n := range shardCounts {
			coord := coords[n]
			var coordRes *sparql.Results
			coordT, err := bestOf(runs, func() error {
				res, err := coord.Query(ctx, w.query)
				coordRes = res
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s over %d shards: %w", w.name, n, err)
			}
			if coordRes.Len() != singleRes.Len() {
				return nil, fmt.Errorf("bench: %s over %d shards: %d rows, single node has %d",
					w.name, n, coordRes.Len(), singleRes.Len())
			}
			out = append(out, ScatterResult{
				Name: w.name, Dataset: d.Spec.Name, Plan: w.plan, Shards: n,
				SingleMS: millis(singleT), ScatterMS: millis(coordT),
				Overhead: ratio(coordT, singleT), Rows: singleRes.Len(),
			})
		}
	}
	return out, nil
}

// RunScatterReport runs the scatter benchmark over every preset at the
// given scale and assembles the report.
func RunScatterReport(scaleName string, scale Scale, shardCounts []int, workers, runs int) (*ScatterReport, error) {
	rep := &ScatterReport{
		Scale:      scaleName,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       runs,
		Shards:     shardCounts,
		Note: "best-of-N wall times; overhead = scatter/single. In-process shards on one host " +
			"measure partitioning + merge cost, not network; overhead near 1x means the " +
			"coordinator is cheap, below 1x means shard parallelism won (needs spare cores).",
	}
	for _, spec := range scale.Specs() {
		d, err := Prepare(spec)
		if err != nil {
			return nil, err
		}
		rs, err := RunScatterBench(d, shardCounts, workers, runs)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rs...)
	}
	return rep, nil
}

package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CSV export: every figure's data series as a plottable file, so the
// paper's plots can be regenerated with any charting tool.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// ExportTable3CSV writes table3.csv.
func ExportTable3CSV(dir string, datasets []*Dataset) error {
	var rows [][]string
	for _, d := range datasets {
		st := d.Graph.Stats()
		rows = append(rows, []string{
			d.Spec.Name,
			fmt.Sprint(st.Dimensions), fmt.Sprint(st.Measures), fmt.Sprint(st.Hierarchies),
			fmt.Sprint(st.Levels), fmt.Sprint(st.Members),
			fmt.Sprint(d.Store.Len()),
			fmt.Sprint(d.Store.EstimatedBytes()), fmt.Sprint(d.Graph.EstimatedBytes()),
		})
	}
	return writeCSV(dir, "table3.csv",
		[]string{"dataset", "dims", "measures", "hierarchies", "levels", "members", "triples", "store_bytes", "vgraph_bytes"},
		rows)
}

// ExportFig6CSV writes fig6.csv (sizes and bootstrap times).
func ExportFig6CSV(dir string, datasets []*Dataset) error {
	var rows [][]string
	for _, d := range datasets {
		rows = append(rows, []string{
			d.Spec.Name,
			fmt.Sprint(d.Graph.ObservationCount), fmt.Sprint(d.Store.Len()),
			ms(d.LoadTime), ms(d.BootstrapTime), fmt.Sprint(d.Client.QueryCount()),
		})
	}
	return writeCSV(dir, "fig6.csv",
		[]string{"dataset", "observations", "triples", "load_ms", "bootstrap_ms", "queries"},
		rows)
}

// ExportFig7CSV writes fig7.csv from the synthesis workload rows.
func ExportFig7CSV(dir string, rows []Fig7Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, fmt.Sprint(r.Size),
			ms(r.AvgTime), ms(r.MinTime), ms(r.MaxTime),
			fmt.Sprintf("%.2f", r.AvgQueries),
		})
	}
	return writeCSV(dir, "fig7.csv",
		[]string{"dataset", "size", "avg_ms", "min_ms", "max_ms", "avg_queries"},
		out)
}

// ExportFig89CSV writes fig8.csv and fig9.csv from the refinement
// workflow metrics.
func ExportFig89CSV(dir string, metrics []*RefinementMetrics) error {
	var fig8, fig9 [][]string
	for _, m := range metrics {
		fig8 = append(fig8, []string{
			m.Dataset, fmt.Sprint(m.Size), m.Stage.String(),
			ms(m.ExecTime), ms(m.DisGenTime), fmt.Sprint(m.Results),
		})
		fig9 = append(fig9, []string{
			m.Dataset, fmt.Sprint(m.Size), m.Stage.String(),
			ms(m.TopKTime), ms(m.PercTime), ms(m.SimTime),
			fmt.Sprint(m.TopKCount), fmt.Sprint(m.PercCount), fmt.Sprint(m.SimCount),
		})
	}
	if err := writeCSV(dir, "fig8.csv",
		[]string{"dataset", "size", "stage", "exec_ms", "disagg_gen_ms", "result_tuples"}, fig8); err != nil {
		return err
	}
	return writeCSV(dir, "fig9.csv",
		[]string{"dataset", "size", "stage", "topk_ms", "perc_ms", "sim_ms", "topk_count", "perc_count", "sim_count"}, fig9)
}

package bench

import (
	"strings"
	"testing"
	"time"
)

// TestServeReportSmoke runs the full serve pipeline at a tiny scale:
// session replay traces, the closed-loop matrix, ranking, and the
// open-loop admission phase.
func TestServeReportSmoke(t *testing.T) {
	rep, err := RunServeReport("small", ScaleSmall, ServeOptions{
		Shards:           []int{1},
		LoadWorkers:      []int{4},
		QueriesPerWorker: 30,
		Sessions:         2,
		SessionSteps:     2,
		Overlap:          1.0,
		OpenLoopDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2 (uncached + cached)", len(rep.Results))
	}
	var cached, uncached *ServeMeasurement
	for i := range rep.Results {
		if rep.Results[i].Cached {
			cached = &rep.Results[i]
		} else {
			uncached = &rep.Results[i]
		}
	}
	if cached == nil || uncached == nil {
		t.Fatal("matrix missing a cache mode")
	}
	if cached.CacheHits == 0 {
		t.Error("cached run recorded no cache hits")
	}
	if cached.Executions >= int64(cached.Queries) {
		t.Errorf("cached run executed %d of %d queries — cache did nothing", cached.Executions, cached.Queries)
	}
	if cached.QPS <= uncached.QPS {
		t.Errorf("cached QPS %.0f not above uncached %.0f", cached.QPS, uncached.QPS)
	}
	if len(rep.Ranking) != 2 {
		t.Fatalf("got %d ranking rows, want 2", len(rep.Ranking))
	}
	if rep.Ranking[0].Score > rep.Ranking[1].Score {
		t.Error("ranking not ordered by score")
	}
	if len(rep.OpenLoop) != 1 {
		t.Fatalf("got %d open-loop rows, want 1", len(rep.OpenLoop))
	}
	if ol := rep.OpenLoop[0]; ol.OK == 0 {
		t.Error("open loop admitted nothing")
	}
}

// TestCheckServeGate exercises the regression gate on synthetic
// reports.
func TestCheckServeGate(t *testing.T) {
	rep := &ServeReport{
		Results: []ServeMeasurement{
			{Config: "1shard/4w/uncached", Shards: 1, Workers: 4, QPS: 100, P99MS: 50},
			{Config: "1shard/4w/cached", Shards: 1, Workers: 4, Cached: true, QPS: 900, P99MS: 5},
		},
		OpenLoop: []OpenLoopResult{
			{Shards: 1, Sent: 100, OK: 60, Shed: 40, P99MS: 80, BaselineP99MS: 50},
		},
	}
	if err := rep.CheckServe(5, 10); err != nil {
		t.Errorf("healthy report failed the gate: %v", err)
	}
	if err := rep.CheckServe(20, 0); err == nil || !strings.Contains(err.Error(), "warm speedup") {
		t.Errorf("9x speedup passed a 20x gate: %v", err)
	}
	rep.OpenLoop[0].P99MS = 5000
	if err := rep.CheckServe(0, 10); err == nil || !strings.Contains(err.Error(), "admitted p99") {
		t.Errorf("unbounded tail passed the p99 gate: %v", err)
	}
	rep.OpenLoop[0].P99MS = 80
	rep.OpenLoop[0].OK = 0
	if err := rep.CheckServe(0, 10); err == nil || !strings.Contains(err.Error(), "no request admitted") {
		t.Errorf("zero admissions passed the gate: %v", err)
	}
}

package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"re2xolap/internal/baseline"
	"re2xolap/internal/core"
)

// Sizes are the example-tuple sizes of the Section 7 workloads.
var Sizes = []int{1, 2, 3, 4}

// InputsPerSize is the number of example tuples per size, as in the
// paper ("We created 10 input queries ... for each size").
const InputsPerSize = 10

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// RunTable2 regenerates Table 2: the resultset for an example
// interpreted as destination country × year on the Eurostat-like
// dataset, ordered by the summed measure.
func RunTable2(w io.Writer, d *Dataset) error {
	ctx := context.Background()
	fmt.Fprintf(w, "== Table 2: resultset for an example ⟨destination, year⟩ on %s ==\n", d.Spec.Name)
	ex, ok := d.SampleExample(rand.New(rand.NewSource(42)), 2)
	if !ok {
		return fmt.Errorf("bench: could not sample example")
	}
	fmt.Fprintf(w, "example: %q, %q\n", ex[0], ex[1])
	cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		return fmt.Errorf("bench: no interpretation for %v", ex)
	}
	q := cands[0].Query
	fmt.Fprintf(w, "interpretation: %s\n", q.Description)
	rs, err := d.Engine.Execute(ctx, q)
	if err != nil {
		return err
	}
	var sumCol string
	for _, a := range q.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	sort.Slice(rs.Tuples, func(i, j int) bool {
		return rs.Tuples[i].Measures[sumCol] > rs.Tuples[j].Measures[sumCol]
	})
	for _, dim := range q.Dims {
		fmt.Fprintf(w, "%-28s | ", dim.Level.String())
	}
	fmt.Fprintf(w, "SUM(%s)\n", q.Measures[0].Label)
	limit := 8
	for i, t := range rs.Tuples {
		if i >= limit {
			fmt.Fprintf(w, "... (%d more rows)\n", rs.Len()-limit)
			break
		}
		for _, m := range t.Dims {
			fmt.Fprintf(w, "%-28s | ", shortIRI(m.Value))
		}
		fmt.Fprintf(w, "%.0f\n", t.Measures[sumCol])
	}
	return nil
}

func shortIRI(v string) string {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

// RunTable3 regenerates Table 3: the dataset characteristics as
// actually bootstrapped from the generated data.
func RunTable3(w io.Writer, datasets []*Dataset) error {
	fmt.Fprintln(w, "== Table 3: dataset characteristics ==")
	fmt.Fprintf(w, "%-12s %4s %4s %4s %4s %8s %10s %12s %12s\n",
		"dataset", "|D|", "|M|", "|H|", "|L|", "|N_D|", "triples", "store(MB)", "vgraph(KB)")
	for _, d := range datasets {
		st := d.Graph.Stats()
		fmt.Fprintf(w, "%-12s %4d %4d %4d %4d %8d %10d %12.1f %12.1f\n",
			d.Spec.Name, st.Dimensions, st.Measures, st.Hierarchies, st.Levels,
			st.Members, d.Store.Len(),
			float64(d.Store.EstimatedBytes())/(1<<20), float64(d.Graph.EstimatedBytes())/(1<<10))
	}
	fmt.Fprintln(w, "(paper: eurostat 4/1/8/9/373, production 7/1/5/9/6444, dbpedia 5/1/14/23/87160;")
	fmt.Fprintln(w, " |N_D| here counts members witnessed by the scaled observation sample)")
	return nil
}

// RunFig6 regenerates Figure 6: observation and triple counts per
// dataset (a, b) and the bootstrap time (c).
func RunFig6(w io.Writer, datasets []*Dataset) error {
	fmt.Fprintln(w, "== Figure 6: dataset size and bootstrap time ==")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %14s %10s\n",
		"dataset", "obs (a)", "triples (b)", "load", "bootstrap (c)", "queries")
	for _, d := range datasets {
		fmt.Fprintf(w, "%-12s %12d %12d %14s %14s %10d\n",
			d.Spec.Name, d.Graph.ObservationCount, d.Store.Len(),
			d.LoadTime.Round(time.Millisecond), d.BootstrapTime.Round(time.Millisecond),
			d.Client.QueryCount())
	}
	fmt.Fprintln(w, "(paper: bootstrap 25–60 min against Virtuoso at full scale; dominated by endpoint speed)")
	return nil
}

// Fig7Row is one measurement of the synthesis experiment.
type Fig7Row struct {
	Dataset    string
	Size       int
	AvgTime    time.Duration
	MinTime    time.Duration
	MaxTime    time.Duration
	AvgQueries float64
}

// CollectFig7 runs the ReOLAP synthesis workload: for each dataset and
// input size, InputsPerSize random examples, measuring synthesis time
// and the number of queries produced.
func CollectFig7(datasets []*Dataset, seed int64) ([]Fig7Row, error) {
	ctx := context.Background()
	var rows []Fig7Row
	for _, d := range datasets {
		inputs := d.SampleExamples(seed, Sizes, InputsPerSize)
		for _, size := range Sizes {
			if size > len(d.Graph.Dimensions()) {
				continue
			}
			var total, min, max time.Duration
			var queries int
			for i, ex := range inputs[size] {
				t0 := time.Now()
				cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
				if err != nil {
					return nil, fmt.Errorf("bench: fig7 %s size %d: %w", d.Spec.Name, size, err)
				}
				el := time.Since(t0)
				total += el
				if i == 0 || el < min {
					min = el
				}
				if el > max {
					max = el
				}
				queries += len(cands)
			}
			n := len(inputs[size])
			rows = append(rows, Fig7Row{
				Dataset: d.Spec.Name, Size: size,
				AvgTime: total / time.Duration(n), MinTime: min, MaxTime: max,
				AvgQueries: float64(queries) / float64(n),
			})
		}
	}
	return rows, nil
}

// RunFig7 regenerates Figure 7: (a) synthesis time and (b) number of
// synthesized queries, by input size.
func RunFig7(w io.Writer, datasets []*Dataset, seed int64) error {
	rows, err := CollectFig7(datasets, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 7a: ReOLAP synthesis time (ms) ==")
	fmt.Fprintf(w, "%-12s %6s %10s %10s %10s\n", "dataset", "size", "avg", "min", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %10s %10s %10s\n",
			r.Dataset, r.Size, fmtMS(r.AvgTime), fmtMS(r.MinTime), fmtMS(r.MaxTime))
	}
	fmt.Fprintln(w, "(paper: 100–400ms at size 1 up to 2–6s at size 4; grows with input size and |N_D|, not observations)")
	fmt.Fprintln(w, "\n== Figure 7b: number of synthesized queries ==")
	fmt.Fprintf(w, "%-12s %6s %12s\n", "dataset", "size", "avg queries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %12.1f\n", r.Dataset, r.Size, r.AvgQueries)
	}
	fmt.Fprintln(w, "(paper: largely below 10 for sizes 1–2)")
	return nil
}

// RunFig10 regenerates Figure 10: the SPARQLByE-style baseline versus
// ReOLAP on the same two-item example.
func RunFig10(w io.Writer, d *Dataset) error {
	ctx := context.Background()
	fmt.Fprintf(w, "== Figure 10: baseline vs ReOLAP on %s ==\n", d.Spec.Name)
	rng := rand.New(rand.NewSource(10))
	var ex []string
	for tries := 0; tries < 50; tries++ {
		cand, ok := d.SampleExample(rng, 2)
		if ok {
			ex = cand
			break
		}
	}
	if ex == nil {
		return fmt.Errorf("bench: could not sample example")
	}
	fmt.Fprintf(w, "example: ⟨%q, %q⟩\n\n", ex[0], ex[1])
	base, err := baseline.ReverseEngineer(ctx, d.Client, ex)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "(a) SPARQLByE-style baseline (minimal BGP, no aggregation, disconnected):")
	fmt.Fprintln(w, base.Query)
	cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(b) ReOLAP (observation-centered analytical query):")
	if len(cands) == 0 {
		fmt.Fprintln(w, "  (no valid interpretation)")
		return nil
	}
	fmt.Fprintln(w, cands[0].Query.ToSPARQL())
	fmt.Fprintf(w, "\ndescription: %s\n", cands[0].Query.Description)
	return nil
}

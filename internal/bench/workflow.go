package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/refine"
	"re2xolap/internal/session"
)

// WorkflowStage identifies a point in the Orig → Dis.1 → Dis.2 query
// evolution of Figures 8 and 9.
type WorkflowStage int

// The three measured stages.
const (
	StageOrig WorkflowStage = iota
	StageDis1
	StageDis2
)

func (s WorkflowStage) String() string {
	switch s {
	case StageOrig:
		return "Orig."
	case StageDis1:
		return "Dis.1"
	default:
		return "Dis.2"
	}
}

// RefinementMetrics aggregates one (dataset, size, stage) cell of
// Figures 8 and 9.
type RefinementMetrics struct {
	Dataset string
	Size    int
	Stage   WorkflowStage

	// Figure 8a/8b: executing the stage's query.
	ExecTime time.Duration
	Results  int

	// Disaggregate generation time (Section 7: "below 100ms").
	DisGenTime time.Duration

	// Figure 9a: refinement generation times.
	TopKTime time.Duration
	PercTime time.Duration
	SimTime  time.Duration

	// Figure 9b: refinements produced.
	TopKCount int
	PercCount int
	SimCount  int

	// Skipped counts samples dropped because the stage's query failed
	// transiently (timeout or retry exhaustion against a flaky
	// endpoint); the cell's averages cover the remaining samples.
	Skipped int

	samples int
}

// CollectWorkflow runs the refinement workload: for each dataset and
// input size, it synthesizes a query from a random example, executes
// it, applies two Disaggregate steps, and at each stage measures query
// execution plus the generation time and fan-out of every refinement
// method. `perSize` examples are averaged per cell.
func CollectWorkflow(datasets []*Dataset, seed int64, perSize int) ([]*RefinementMetrics, error) {
	ctx := context.Background()
	var out []*RefinementMetrics
	for _, d := range datasets {
		inputs := d.SampleExamples(seed, Sizes, perSize)
		cells := map[[2]int]*RefinementMetrics{}
		for _, size := range Sizes {
			if size > len(d.Graph.Dimensions()) {
				continue
			}
			for _, ex := range inputs[size] {
				cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
				if err != nil {
					return nil, err
				}
				if len(cands) == 0 {
					continue
				}
				rng := rand.New(rand.NewSource(seed + int64(size)))
				q := cands[rng.Intn(len(cands))].Query
				for stage := StageOrig; stage <= StageDis2; stage++ {
					key := [2]int{size, int(stage)}
					m := cells[key]
					if m == nil {
						m = &RefinementMetrics{Dataset: d.Spec.Name, Size: size, Stage: stage}
						cells[key] = m
						out = append(out, m)
					}
					t0 := time.Now()
					rs, err := d.Engine.Execute(ctx, q)
					if err != nil {
						// A transient failure (timeout, retry exhaustion)
						// loses one sample, not the whole run; an open
						// circuit or a permanent error aborts, since every
						// following query would fail the same way.
						if endpoint.Transient(err) && !errors.Is(err, endpoint.ErrCircuitOpen) {
							m.Skipped++
							break
						}
						return nil, fmt.Errorf("bench: executing %s stage %s: %w", d.Spec.Name, stage, err)
					}
					m.ExecTime += time.Since(t0)
					m.Results += rs.Len()

					t0 = time.Now()
					dis := refine.Disaggregate(d.Graph, q)
					m.DisGenTime += time.Since(t0)

					t0 = time.Now()
					topk := refine.TopK(rs)
					m.TopKTime += time.Since(t0)
					m.TopKCount += len(topk)

					t0 = time.Now()
					perc := refine.Percentile(rs)
					m.PercTime += time.Since(t0)
					m.PercCount += len(perc)

					t0 = time.Now()
					sim := refine.Similarity(rs, refine.DefaultSimilarK)
					m.SimTime += time.Since(t0)
					m.SimCount += len(sim)

					m.samples++
					if stage == StageDis2 || len(dis) == 0 {
						break
					}
					q = dis[rng.Intn(len(dis))].Query
				}
			}
		}
	}
	// Average the accumulated sums.
	for _, m := range out {
		if m.samples == 0 {
			continue
		}
		n := time.Duration(m.samples)
		m.ExecTime /= n
		m.DisGenTime /= n
		m.TopKTime /= n
		m.PercTime /= n
		m.SimTime /= n
		m.Results /= m.samples
		m.TopKCount /= m.samples
		m.PercCount /= m.samples
		m.SimCount /= m.samples
	}
	return out, nil
}

// RunFig8 regenerates Figure 8a/8b: query execution time and result
// counts for the original and disaggregated queries.
func RunFig8(w io.Writer, metrics []*RefinementMetrics) {
	fmt.Fprintln(w, "== Figure 8a: query execution time (ms) by stage ==")
	fmt.Fprintf(w, "%-12s %6s %8s %12s %12s\n", "dataset", "size", "stage", "exec", "disagg-gen")
	for _, m := range metrics {
		fmt.Fprintf(w, "%-12s %6d %8s %12s %12s\n",
			m.Dataset, m.Size, m.Stage, fmtMS(m.ExecTime), fmtMS(m.DisGenTime))
	}
	fmt.Fprintln(w, "(paper: disaggregate generation below 100ms; execution grows after each Dis step)")
	fmt.Fprintln(w, "\n== Figure 8b: average result tuples by stage ==")
	fmt.Fprintf(w, "%-12s %6s %8s %10s\n", "dataset", "size", "stage", "tuples")
	for _, m := range metrics {
		fmt.Fprintf(w, "%-12s %6d %8s %10d\n", m.Dataset, m.Size, m.Stage, m.Results)
	}
}

// RunFig9 regenerates Figure 9a/9b: refinement generation time and the
// number of refinements produced per method.
func RunFig9(w io.Writer, metrics []*RefinementMetrics) {
	fmt.Fprintln(w, "== Figure 9a: refinement generation time (ms) ==")
	fmt.Fprintf(w, "%-12s %6s %8s %10s %10s %10s\n", "dataset", "size", "stage", "top-k", "perc", "sim")
	for _, m := range metrics {
		fmt.Fprintf(w, "%-12s %6d %8s %10s %10s %10s\n",
			m.Dataset, m.Size, m.Stage, fmtMS(m.TopKTime), fmtMS(m.PercTime), fmtMS(m.SimTime))
	}
	fmt.Fprintln(w, "(paper: generally below 1s; similarity is the most expensive, degrading on dbpedia's M-to-N schema)")
	fmt.Fprintln(w, "\n== Figure 9b: refinements produced ==")
	fmt.Fprintf(w, "%-12s %6s %8s %10s %10s %10s\n", "dataset", "size", "stage", "top-k", "perc", "sim")
	for _, m := range metrics {
		fmt.Fprintf(w, "%-12s %6d %8s %10d %10d %10d\n",
			m.Dataset, m.Size, m.Stage, m.TopKCount, m.PercCount, m.SimCount)
	}
	fmt.Fprintln(w, "(paper: top-k fixed at 2 per measure×aggregate when the example separates; percentile varies; sim fixed)")
}

// RunFig8c regenerates Figure 8c: the cumulative exploration paths and
// tuples across the scripted workflow ReOLAP → Dis → Dis → Sim → TopK.
func RunFig8c(w io.Writer, d *Dataset, seed int64) error {
	ctx := context.Background()
	fmt.Fprintf(w, "== Figure 8c: exploration workflow on %s ==\n", d.Spec.Name)
	rng := rand.New(rand.NewSource(seed))
	var ex []string
	for tries := 0; tries < 50 && ex == nil; tries++ {
		if cand, ok := d.SampleExample(rng, 1); ok {
			ex = cand
		}
	}
	if ex == nil {
		return fmt.Errorf("bench: could not sample example")
	}
	fmt.Fprintf(w, "example: %q\n", ex[0])
	cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		return fmt.Errorf("bench: no interpretation")
	}
	tracker := session.NewTracker()
	sess := session.New(d.Engine, d.Graph)
	rs, err := sess.Start(ctx, cands[0].Query)
	if err != nil {
		return err
	}
	tracker.Record(len(cands), rs.Len())

	script := []refine.Kind{refine.KindDisaggregate, refine.KindDisaggregate, refine.KindSimilarity, refine.KindTopK}
	for _, kind := range script {
		opts, err := sess.Options(ctx, kind)
		if err != nil {
			return err
		}
		if len(opts) == 0 {
			tracker.Record(0, rs.Len())
			continue
		}
		rs, err = sess.Apply(ctx, opts[rng.Intn(len(opts))])
		if err != nil {
			return err
		}
		tracker.Record(len(opts), rs.Len())
	}
	fmt.Fprintf(w, "%-12s %-14s %12s %12s\n", "interaction", "operation", "cum. paths", "cum. tuples")
	ops := []string{"ReOLAP", "Disaggregate", "Disaggregate", "Similarity", "TopK"}
	for i, st := range tracker.Stats() {
		fmt.Fprintf(w, "%-12d %-14s %12d %12d\n", st.Interactions, ops[i], st.Paths, st.Tuples)
	}
	fmt.Fprintln(w, "(paper: ~12,000 distinct paths and ~8,000 tuples accessible after 4 interactions)")
	return nil
}

package store

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"re2xolap/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func tr(s, p, o string) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), iri(o))
}

func TestAddContainsLen(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("empty store Len = %d", s.Len())
	}
	t1 := tr("s1", "p1", "o1")
	if err := s.Add(t1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(t1); err != nil { // duplicate
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after duplicate add = %d, want 1", s.Len())
	}
	if !s.Contains(t1) {
		t.Error("Contains(t1) = false")
	}
	if s.Contains(tr("s1", "p1", "o2")) {
		t.Error("Contains(absent) = true")
	}
	s.Compact()
	if s.Len() != 1 || !s.Contains(t1) {
		t.Error("compaction lost the triple")
	}
	if err := s.Add(t1); err != nil { // duplicate against compacted base
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after post-compact duplicate = %d, want 1", s.Len())
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	s := New()
	bad := rdf.NewTriple(rdf.NewString("lit"), iri("p"), iri("o"))
	if err := s.Add(bad); err == nil {
		t.Error("literal subject accepted")
	}
}

func collectMatch(s *Store, sub, pred, obj ID) []spoTriple {
	var out []spoTriple
	s.Match(sub, pred, obj, func(ts, tp, to ID) bool {
		out = append(out, spoTriple{ts, tp, to})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return tripleLess(out[i], out[j]) })
	return out
}

func TestMatchPatterns(t *testing.T) {
	s := New()
	data := []rdf.Triple{
		tr("s1", "p1", "o1"), tr("s1", "p1", "o2"), tr("s1", "p2", "o1"),
		tr("s2", "p1", "o1"), tr("s2", "p2", "o3"),
	}
	if err := s.AddAll(data); err != nil {
		t.Fatal(err)
	}
	d := s.Dict()
	id := func(name string) ID {
		v, ok := d.Lookup(iri(name))
		if !ok {
			t.Fatalf("unknown term %s", name)
		}
		return v
	}
	tests := []struct {
		name    string
		s, p, o ID
		want    int
	}{
		{"all", 0, 0, 0, 5},
		{"s", id("s1"), 0, 0, 3},
		{"p", 0, id("p1"), 0, 3},
		{"o", 0, 0, id("o1"), 3},
		{"sp", id("s1"), id("p1"), 0, 2},
		{"po", 0, id("p1"), id("o1"), 2},
		{"so", id("s1"), 0, id("o1"), 2},
		{"spo", id("s2"), id("p2"), id("o3"), 1},
		{"none", id("s2"), id("p2"), id("o1"), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := collectMatch(s, tt.s, tt.p, tt.o)
			if len(got) != tt.want {
				t.Errorf("Match(%v,%v,%v) returned %d, want %d", tt.s, tt.p, tt.o, len(got), tt.want)
			}
			if n := s.MatchCount(tt.s, tt.p, tt.o); n != tt.want {
				t.Errorf("MatchCount = %d, want %d", n, tt.want)
			}
		})
	}
}

func TestMatchSeesDelta(t *testing.T) {
	s := New()
	s.autoCompact = 0 // keep everything in the delta
	if err := s.Add(tr("s", "p", "o")); err != nil {
		t.Fatal(err)
	}
	d := s.Dict()
	pid, _ := d.Lookup(iri("p"))
	if got := collectMatch(s, 0, pid, 0); len(got) != 1 {
		t.Fatalf("delta triple not visible to Match: %v", got)
	}
	if st := s.Stats(); st.DeltaSize != 1 {
		t.Errorf("DeltaSize = %d, want 1", st.DeltaSize)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		if err := s.Add(tr(fmt.Sprintf("s%d", i), "p", "o")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	s.Match(0, 0, 0, func(ID, ID, ID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []rdf.Term{
		rdf.NewIRI("http://a"), rdf.NewString("a"), rdf.NewLangString("a", "en"),
		rdf.NewTyped("a", rdf.XSDString), rdf.NewBlank("a"), rdf.NewInteger(1),
	}
	ids := map[ID]bool{}
	for _, tm := range terms {
		id := d.Encode(tm)
		if ids[id] {
			t.Errorf("duplicate id %d for %v", id, tm)
		}
		ids[id] = true
		if got := d.Decode(id); got != tm {
			t.Errorf("Decode(Encode(%v)) = %v", tm, got)
		}
		if id2 := d.Encode(tm); id2 != id {
			t.Errorf("re-Encode(%v) = %d, want %d", tm, id2, id)
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
	if n, ok := d.Numeric(d.Encode(rdf.NewInteger(1))); !ok || n != 1 {
		t.Errorf("Numeric cache = %v,%v", n, ok)
	}
	if _, ok := d.Numeric(d.Encode(rdf.NewString("a"))); ok {
		t.Error("string literal reported numeric")
	}
}

// Property: a randomly generated triple set is fully recoverable
// regardless of interleaved Add/Compact operations.
func TestQuickStoreRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		s.autoCompact = 8 // force frequent compactions
		want := map[rdf.Triple]bool{}
		for i := 0; i < int(n); i++ {
			tri := tr(
				fmt.Sprintf("s%d", rng.Intn(10)),
				fmt.Sprintf("p%d", rng.Intn(4)),
				fmt.Sprintf("o%d", rng.Intn(10)),
			)
			want[tri] = true
			if s.Add(tri) != nil {
				return false
			}
		}
		if s.Len() != len(want) {
			return false
		}
		got := s.Triples()
		if len(got) != len(want) {
			return false
		}
		for _, tri := range got {
			if !want[tri] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MatchCount equals the length of Match output for random
// patterns.
func TestQuickMatchCountConsistent(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		_ = s.Add(tr(
			fmt.Sprintf("s%d", rng.Intn(20)),
			fmt.Sprintf("p%d", rng.Intn(5)),
			fmt.Sprintf("o%d", rng.Intn(20)),
		))
	}
	f := func(sx, px, ox uint8) bool {
		var sub, pred, obj ID
		if sx%3 == 0 {
			sub, _ = s.Dict().Lookup(iri(fmt.Sprintf("s%d", sx%20)))
		}
		if px%2 == 0 {
			pred, _ = s.Dict().Lookup(iri(fmt.Sprintf("p%d", px%5)))
		}
		if ox%3 == 0 {
			obj, _ = s.Dict().Lookup(iri(fmt.Sprintf("o%d", ox%20)))
		}
		return s.MatchCount(sub, pred, obj) == len(collectMatch(s, sub, pred, obj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoad(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o ; ex:q "v" .
`
	s := New()
	n, err := s.Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 2 {
		t.Errorf("Load = %d triples, Len = %d, want 2", n, s.Len())
	}
	if _, err := s.Load(strings.NewReader("garbage here now .")); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestStats(t *testing.T) {
	s := New()
	_ = s.AddAll([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s1", "p2", "o2"),
		tr("s2", "p1", "o1"),
		rdf.NewTriple(iri("s2"), iri("p3"), rdf.NewString("hello world")),
	})
	st := s.Stats()
	if st.Triples != 4 {
		t.Errorf("Triples = %d, want 4", st.Triples)
	}
	if st.Predicates != 3 {
		t.Errorf("Predicates = %d, want 3", st.Predicates)
	}
	if st.Subjects != 2 {
		t.Errorf("Subjects = %d, want 2", st.Subjects)
	}
	if st.TextIndexTerms == 0 {
		t.Error("text index empty after literal insert")
	}
}

func TestTextSearch(t *testing.T) {
	s := New()
	label := iri("label")
	add := func(name, text string) {
		_ = s.Add(rdf.NewTriple(iri(name), label, rdf.NewString(text)))
	}
	add("de", "Germany")
	add("fr", "France")
	add("de2", "East Germany")
	add("y", "2014")
	add("ny", "New York City")

	tests := []struct {
		kw   string
		want []string
	}{
		{"germany", []string{"Germany", "East Germany"}},
		{"GERMANY", []string{"Germany", "East Germany"}},
		{"german", []string{"Germany", "East Germany"}},
		{"france", []string{"France"}},
		{"2014", []string{"2014"}},
		{"east germany", []string{"East Germany"}},
		{"new york", []string{"New York City"}},
		{"york city", []string{"New York City"}},
		{"nowhere", nil},
		{"", nil},
		{"new jersey", nil},
	}
	for _, tt := range tests {
		t.Run(tt.kw, func(t *testing.T) {
			ids := s.TextSearch(tt.kw)
			var got []string
			for _, id := range ids {
				got = append(got, s.Dict().Decode(id).Value)
			}
			sort.Strings(got)
			want := append([]string(nil), tt.want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("TextSearch(%q) = %v, want %v", tt.kw, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("TextSearch(%q) = %v, want %v", tt.kw, got, want)
				}
			}
		})
	}
}

func TestIndexPermutations(t *testing.T) {
	for _, p := range []perm{permSPO, permPOS, permOSP} {
		orig := spoTriple{1, 2, 3}
		if got := p.restore(p.reorder(orig)); got != orig {
			t.Errorf("perm %d: restore(reorder(%v)) = %v", p, orig, got)
		}
	}
}

func TestIndexMerge(t *testing.T) {
	ix := index{p: permSPO, entries: []spoTriple{{1, 1, 1}, {3, 3, 3}}}
	ix.merge([]spoTriple{{2, 2, 2}, {3, 3, 3}, {4, 4, 4}})
	want := []spoTriple{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}}
	if len(ix.entries) != len(want) {
		t.Fatalf("merged = %v", ix.entries)
	}
	for i := range want {
		if ix.entries[i] != want[i] {
			t.Fatalf("merged = %v, want %v", ix.entries, want)
		}
	}
}

// TestConcurrentReadWrite exercises parallel queries during inserts
// under the race detector.
func TestConcurrentReadWrite(t *testing.T) {
	s := New()
	s.autoCompact = 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			_ = s.Add(tr(fmt.Sprintf("s%d", i%100), fmt.Sprintf("p%d", i%5), fmt.Sprintf("o%d", i)))
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 0
				s.Match(0, 0, 0, func(_, _, _ ID) bool {
					n++
					return n < 50
				})
				_ = s.Len()
				_ = s.TextSearch("o1")
			}
		}()
	}
	<-done
	wg.Wait()
	if s.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", s.Len())
	}
}

func TestEstimatedBytes(t *testing.T) {
	s := New()
	if s.EstimatedBytes() != 0 {
		t.Errorf("empty store bytes = %d", s.EstimatedBytes())
	}
	_ = s.AddAll([]rdf.Triple{tr("s", "p", "o")})
	if s.EstimatedBytes() <= 0 {
		t.Error("non-empty store reports zero bytes")
	}
}

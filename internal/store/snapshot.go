package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"re2xolap/internal/rdf"
)

// Snapshot format: a compact binary serialization of the store that
// loads an order of magnitude faster than re-parsing N-Triples (see
// BenchmarkSnapshot). Layout, all integers varint-encoded:
//
//	magic "R2XS" | version u8
//	term count | per term: kind u8, value, [datatype, lang for literals]
//	triple count | per triple: s, p, o as dictionary IDs
//
// Strings are length-prefixed. The snapshot stores the compacted
// triple set; the delta is flushed by Compact before writing.

const (
	snapshotMagic   = "R2XS"
	snapshotVersion = 1
)

// WriteSnapshot serializes the store. The store is compacted first.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.Compact()
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	d := s.dict
	writeUvarint(bw, uint64(len(d.terms)))
	for _, t := range d.terms {
		if err := writeTerm(bw, t); err != nil {
			return err
		}
	}
	entries := s.base[0].entries
	writeUvarint(bw, uint64(len(entries)))
	for _, e := range entries {
		writeUvarint(bw, uint64(e[0]))
		writeUvarint(bw, uint64(e[1]))
		writeUvarint(bw, uint64(e[2]))
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot into a
// fresh store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot (magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	s := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: term count: %w", err)
	}
	terms := make([]rdf.Term, nTerms)
	for i := range terms {
		t, err := readTerm(br)
		if err != nil {
			return nil, fmt.Errorf("store: term %d: %w", i, err)
		}
		terms[i] = t
		if id := s.dict.Encode(t); id != ID(i+1) {
			return nil, fmt.Errorf("store: duplicate term %v in snapshot", t)
		}
	}
	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: triple count: %w", err)
	}
	entries := make([]spoTriple, nTriples)
	for i := range entries {
		for j := 0; j < 3; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("store: triple %d: %w", i, err)
			}
			if v == 0 || v > nTerms {
				return nil, fmt.Errorf("store: triple %d references unknown term %d", i, v)
			}
			entries[i][j] = ID(v)
		}
		// Rebuild the full-text index for literal objects.
		obj := terms[entries[i][2]-1]
		if obj.IsLiteral() {
			s.text.add(entries[i][2], obj.Value)
		}
	}
	// The snapshot preserved SPO order; rebuild the other permutations.
	s.base[0].entries = entries
	s.base[0].sortEntries()
	for i := 1; i < 3; i++ {
		perm := s.base[i].p
		batch := make([]spoTriple, len(entries))
		for j, t := range entries {
			batch[j] = perm.reorder(t)
		}
		s.base[i].entries = batch
		s.base[i].sortEntries()
	}
	return s, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) error {
	writeUvarint(w, uint64(len(s)))
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// term kind encoding: low 2 bits = TermKind; bit 2 = has datatype,
// bit 3 = has lang.
func writeTerm(w *bufio.Writer, t rdf.Term) error {
	kind := byte(t.Kind)
	if t.Datatype != "" {
		kind |= 1 << 2
	}
	if t.Lang != "" {
		kind |= 1 << 3
	}
	if err := w.WriteByte(kind); err != nil {
		return err
	}
	if err := writeString(w, t.Value); err != nil {
		return err
	}
	if t.Datatype != "" {
		if err := writeString(w, t.Datatype); err != nil {
			return err
		}
	}
	if t.Lang != "" {
		if err := writeString(w, t.Lang); err != nil {
			return err
		}
	}
	return nil
}

func readTerm(r *bufio.Reader) (rdf.Term, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return rdf.Term{}, err
	}
	k := rdf.TermKind(kind & 3)
	if k > rdf.TermLiteral {
		return rdf.Term{}, fmt.Errorf("bad term kind %d", k)
	}
	t := rdf.Term{Kind: k}
	if t.Value, err = readString(r); err != nil {
		return rdf.Term{}, err
	}
	if kind&(1<<2) != 0 {
		if t.Datatype, err = readString(r); err != nil {
			return rdf.Term{}, err
		}
	}
	if kind&(1<<3) != 0 {
		if t.Lang, err = readString(r); err != nil {
			return rdf.Term{}, err
		}
	}
	if (t.Datatype != "" || t.Lang != "") && t.Kind != rdf.TermLiteral {
		return rdf.Term{}, fmt.Errorf("non-literal term with datatype/lang")
	}
	return t, nil
}

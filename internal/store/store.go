package store

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"re2xolap/internal/rdf"
)

// Store is an in-memory RDF triple store. Reads may proceed
// concurrently; writes are serialized. Incremental Adds accumulate in a
// delta buffer that Compact (or a sufficiently large delta) merges into
// the sorted base indexes.
//
// Concurrency contract: every exported method is safe for concurrent
// use. Read methods (Match, MatchCount, Contains, TextSearch, Stats)
// take the read lock per call; writers (Add, AddAll, Load, Compact)
// take the write lock. Base index entry slices are never mutated in
// place once published — Compact builds freshly merged slices — which
// is what makes the lock-free View read path sound. Query engines that
// issue many lookups per query should take a View once at query start
// instead of calling Match per lookup: a View is immune to both lock
// contention and mid-query compaction (snapshot isolation).
type Store struct {
	mu   sync.RWMutex
	dict *Dict

	base  [3]index // sorted permutations of the compacted triple set
	delta []spoTriple
	// deltaSet dedupes the delta in O(1); it is discarded on Compact.
	deltaSet map[spoTriple]struct{}

	text *fullText

	// autoCompact is the delta size that triggers an automatic Compact
	// during Add. Zero disables automatic compaction.
	autoCompact int

	// gen counts content-changing events: every actual triple insert
	// and every non-empty compaction bumps it. Result caches key on it
	// so a mutation invalidates cached answers without coordination.
	// Duplicate inserts do not bump it — the answer set is unchanged.
	gen atomic.Uint64
}

// DefaultAutoCompact is the delta size at which Add compacts
// automatically.
const DefaultAutoCompact = 1 << 16

// New returns an empty store with automatic compaction enabled.
func New() *Store {
	s := &Store{
		dict:        NewDict(),
		deltaSet:    map[spoTriple]struct{}{},
		text:        newFullText(),
		autoCompact: DefaultAutoCompact,
	}
	s.base[0].p = permSPO
	s.base[1].p = permPOS
	s.base[2].p = permOSP
	return s
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// Add inserts one triple. Duplicate inserts are ignored. It returns an
// error only for invalid triples.
func (s *Store) Add(t rdf.Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := spoTriple{s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(enc, t.O)
	return nil
}

// AddAll bulk-inserts triples and compacts once at the end, which is the
// fast path for loading a dataset.
func (s *Store) AddAll(ts []rdf.Triple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
		enc := spoTriple{s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)}
		s.addLocked(enc, t.O)
	}
	s.compactLocked()
	return nil
}

func (s *Store) addLocked(enc spoTriple, obj rdf.Term) {
	if _, dup := s.deltaSet[enc]; dup {
		return
	}
	if s.base[0].contains(enc) {
		return
	}
	s.deltaSet[enc] = struct{}{}
	s.delta = append(s.delta, enc)
	s.gen.Add(1)
	if obj.IsLiteral() {
		s.text.add(enc[2], obj.Value)
	}
	if s.autoCompact > 0 && len(s.delta) >= s.autoCompact {
		s.compactLocked()
	}
}

// Load reads triples from r (N-Triples or the supported Turtle subset)
// until EOF and bulk-inserts them.
func (s *Store) Load(r io.Reader) (int, error) {
	dec := rdf.NewDecoder(r)
	n := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("store: load: %w", err)
		}
		if verr := t.Validate(); verr != nil {
			return n, fmt.Errorf("store: load: %w", verr)
		}
		enc := spoTriple{s.dict.Encode(t.S), s.dict.Encode(t.P), s.dict.Encode(t.O)}
		s.addLocked(enc, t.O)
		n++
	}
	s.compactLocked()
	return n, nil
}

// Compact merges the delta buffer into the sorted base indexes.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

func (s *Store) compactLocked() {
	if len(s.delta) == 0 {
		return
	}
	for i := range s.base {
		batch := make([]spoTriple, len(s.delta))
		for j, t := range s.delta {
			batch[j] = s.base[i].p.reorder(t)
		}
		tmp := index{p: s.base[i].p, entries: batch}
		tmp.sortEntries()
		s.base[i].merge(tmp.entries)
	}
	s.delta = s.delta[:0]
	s.deltaSet = map[spoTriple]struct{}{}
	s.gen.Add(1)
}

// Generation returns a monotonic counter that advances whenever the
// stored triple set changes (Add of a new triple, Load, AddAll) and on
// every non-empty Compact. Equal generations imply identical query
// answers, which is the invariant the serve-layer result cache keys on.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Len returns the number of distinct triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.base[0].entries) + len(s.delta)
}

// Contains reports whether the store holds the triple.
func (s *Store) Contains(t rdf.Triple) bool {
	sid, ok := s.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pid, ok := s.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oid, ok := s.dict.Lookup(t.O)
	if !ok {
		return false
	}
	enc := spoTriple{sid, pid, oid}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, dup := s.deltaSet[enc]; dup {
		return true
	}
	return s.base[0].contains(enc)
}

// Match streams every triple matching the pattern, where a zero ID is a
// wildcard, invoking fn with the triple's subject, predicate, and object
// IDs (in no particular order). fn returning false stops the iteration.
// The store lock is held for the duration, so fn must not call store
// write methods.
func (s *Store) Match(sub, pred, obj ID, fn func(s, p, o ID) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, k1, k2 := s.chooseIndex(sub, pred, obj)
	lo, hi := ix.scanRange(k1, k2)
	want := spoTriple{sub, pred, obj}
	for i := lo; i < hi; i++ {
		t := ix.p.restore(ix.entries[i])
		if matches(t, want) && !fn(t[0], t[1], t[2]) {
			return
		}
	}
	for _, t := range s.delta {
		if matches(t, want) && !fn(t[0], t[1], t[2]) {
			return
		}
	}
}

// MatchCount returns the number of triples matching the pattern, used by
// the query planner for selectivity estimation.
func (s *Store) MatchCount(sub, pred, obj ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, k1, k2 := s.chooseIndex(sub, pred, obj)
	lo, hi := ix.scanRange(k1, k2)
	want := spoTriple{sub, pred, obj}
	n := 0
	fullyKeyed := bound(sub)+bound(pred)+bound(obj) == keyedCount(k1, k2)
	if fullyKeyed {
		n = hi - lo
	} else {
		for i := lo; i < hi; i++ {
			if matches(ix.p.restore(ix.entries[i]), want) {
				n++
			}
		}
	}
	for _, t := range s.delta {
		if matches(t, want) {
			n++
		}
	}
	return n
}

func bound(id ID) int {
	if id != 0 {
		return 1
	}
	return 0
}

func keyedCount(k1, k2 ID) int { return bound(k1) + bound(k2) }

func matches(t, want spoTriple) bool {
	return (want[0] == 0 || t[0] == want[0]) &&
		(want[1] == 0 || t[1] == want[1]) &&
		(want[2] == 0 || t[2] == want[2])
}

// chooseIndex picks the permutation whose key prefix covers the most
// bound components, returning the index plus the one or two leading key
// values usable for the range scan.
func (s *Store) chooseIndex(sub, pred, obj ID) (*index, ID, ID) {
	return chooseIndex(&s.base, sub, pred, obj)
}

// chooseIndex is the lock-agnostic core shared by Store and View.
func chooseIndex(base *[3]index, sub, pred, obj ID) (*index, ID, ID) {
	switch {
	case sub != 0 && pred != 0:
		return &base[0], sub, pred // SPO
	case pred != 0 && obj != 0:
		return &base[1], pred, obj // POS
	case obj != 0 && sub != 0:
		return &base[2], obj, sub // OSP
	case sub != 0:
		return &base[0], sub, 0
	case pred != 0:
		return &base[1], pred, 0
	case obj != 0:
		return &base[2], obj, 0
	default:
		return &base[0], 0, 0
	}
}

// Triples returns every stored triple decoded. Intended for tests and
// small exports.
func (s *Store) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, s.Len())
	s.Match(0, 0, 0, func(sub, pred, obj ID) bool {
		out = append(out, rdf.Triple{S: s.dict.Decode(sub), P: s.dict.Decode(pred), O: s.dict.Decode(obj)})
		return true
	})
	return out
}

// TextSearch returns the IDs of literal terms whose value contains the
// keyword, case-insensitively, using the inverted full-text index.
func (s *Store) TextSearch(keyword string) []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.text.search(keyword, s.dict)
}

// Stats summarizes the store for planners and dataset reports.
type Stats struct {
	Triples        int
	Terms          int
	Predicates     int
	Subjects       int
	DeltaSize      int
	TextIndexTerms int
}

// Stats computes summary statistics. Predicate and subject counts scan
// the POS/SPO indexes and are O(triples).
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Triples:        len(s.base[0].entries) + len(s.delta),
		Terms:          s.dict.Len(),
		DeltaSize:      len(s.delta),
		TextIndexTerms: s.text.size(),
	}
	var last ID
	for _, e := range s.base[1].entries { // POS: first component is P
		if e[0] != last {
			st.Predicates++
			last = e[0]
		}
	}
	last = 0
	for _, e := range s.base[0].entries {
		if e[0] != last {
			st.Subjects++
			last = e[0]
		}
	}
	return st
}

// EstimatedBytes approximates the in-memory footprint of the store:
// three index permutations at 12 bytes per triple plus dictionary
// string storage. Reported by the Table 3 dataset-characteristics
// harness.
func (s *Store) EstimatedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	triples := int64(len(s.base[0].entries) + len(s.delta))
	var dictBytes int64
	s.dict.mu.RLock()
	for _, t := range s.dict.terms {
		dictBytes += int64(len(t.Value)+len(t.Datatype)+len(t.Lang)) + 48
	}
	s.dict.mu.RUnlock()
	return triples*3*12 + dictBytes
}

package store

import "sort"

// spoTriple is a dictionary-encoded triple in subject/predicate/object
// order. Index permutations reorder the components.
type spoTriple [3]ID

// perm identifies one of the three index permutations.
type perm uint8

const (
	permSPO perm = iota
	permPOS
	permOSP
)

// reorder maps an SPO-ordered triple into the permutation's key order.
func (p perm) reorder(t spoTriple) spoTriple {
	switch p {
	case permSPO:
		return t
	case permPOS:
		return spoTriple{t[1], t[2], t[0]}
	default: // permOSP
		return spoTriple{t[2], t[0], t[1]}
	}
}

// restore maps a permutation-ordered triple back to SPO order.
func (p perm) restore(t spoTriple) spoTriple {
	switch p {
	case permSPO:
		return t
	case permPOS:
		return spoTriple{t[2], t[0], t[1]}
	default: // permOSP
		return spoTriple{t[1], t[2], t[0]}
	}
}

func tripleLess(a, b spoTriple) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// index is one sorted permutation of the triple set. Entries are stored
// in the permutation's key order.
type index struct {
	p       perm
	entries []spoTriple
}

// sortEntries sorts and deduplicates the entries.
func (ix *index) sortEntries() {
	sort.Slice(ix.entries, func(i, j int) bool { return tripleLess(ix.entries[i], ix.entries[j]) })
	ix.entries = dedupSorted(ix.entries)
}

func dedupSorted(ts []spoTriple) []spoTriple {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// scanRange returns the half-open [lo, hi) range of entries matching the
// bound prefix (k1 and optionally k2; 0 means unbound). Binding k2
// without k1 is not a valid prefix and must be handled by the caller
// through a different permutation or a scan.
func (ix *index) scanRange(k1, k2 ID) (int, int) {
	n := len(ix.entries)
	if k1 == 0 {
		return 0, n
	}
	lo := sort.Search(n, func(i int) bool {
		e := ix.entries[i]
		if e[0] != k1 {
			return e[0] > k1
		}
		return k2 == 0 || e[1] >= k2
	})
	hi := sort.Search(n, func(i int) bool {
		e := ix.entries[i]
		if e[0] != k1 {
			return e[0] > k1
		}
		return k2 != 0 && e[1] > k2
	})
	return lo, hi
}

// contains reports whether the fully-bound triple (in permutation key
// order) is present.
func (ix *index) contains(t spoTriple) bool {
	n := len(ix.entries)
	i := sort.Search(n, func(i int) bool { return !tripleLess(ix.entries[i], t) })
	return i < n && ix.entries[i] == t
}

// merge inserts the (sorted, deduplicated) batch into the index,
// preserving order.
func (ix *index) merge(batch []spoTriple) {
	if len(batch) == 0 {
		return
	}
	if len(ix.entries) == 0 {
		ix.entries = append(ix.entries, batch...)
		return
	}
	merged := make([]spoTriple, 0, len(ix.entries)+len(batch))
	i, j := 0, 0
	for i < len(ix.entries) && j < len(batch) {
		a, b := ix.entries[i], batch[j]
		switch {
		case a == b:
			merged = append(merged, a)
			i++
			j++
		case tripleLess(a, b):
			merged = append(merged, a)
			i++
		default:
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, ix.entries[i:]...)
	merged = append(merged, batch[j:]...)
	ix.entries = merged
}

package store

// View is a consistent, immutable read-only view of the store, taken at
// a point in time by Store.View. It exists for the parallel query
// pipeline: Store.Match takes the store's read lock on every call,
// which is correct but makes concurrent scan workers contend on one
// RWMutex cache line per lookup. A View captures the base index slice
// headers (whose backing arrays are never mutated in place after
// publication — Compact builds fresh merged slices) plus a copy of the
// small delta buffer, so Match/MatchCount on a View touch no locks at
// all and many workers can scan simultaneously at memory speed.
//
// Writes that happen after View is taken are simply not visible to it,
// which is exactly the snapshot-isolation contract the SPARQL executor
// wants: one query sees one version of the data.
type View struct {
	st    *Store
	base  [3]index
	delta []spoTriple
}

// View returns a consistent read-only view of the store's current
// contents. The returned view is safe for concurrent use by any number
// of goroutines, concurrently with writes to the store.
func (s *Store) View() *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := &View{st: s, base: s.base}
	// The delta backing array is recycled by Compact (s.delta[:0]), so
	// a live slice header into it would observe overwrites; copy it.
	// The delta is bounded by autoCompact and is empty after any bulk
	// load, so this is cheap on the query path.
	if len(s.delta) > 0 {
		v.delta = append([]spoTriple(nil), s.delta...)
	}
	return v
}

// Dict returns the term dictionary. The dictionary is shared with the
// store (terms are append-only), so IDs resolved through the view stay
// valid forever.
func (v *View) Dict() *Dict { return v.st.dict }

// Match streams every triple in the view matching the pattern, where a
// zero ID is a wildcard, exactly like Store.Match — but without taking
// any lock, so concurrent workers never serialize. fn returning false
// stops the iteration.
func (v *View) Match(sub, pred, obj ID, fn func(s, p, o ID) bool) {
	ix, k1, k2 := chooseIndex(&v.base, sub, pred, obj)
	lo, hi := ix.scanRange(k1, k2)
	want := spoTriple{sub, pred, obj}
	for i := lo; i < hi; i++ {
		t := ix.p.restore(ix.entries[i])
		if matches(t, want) && !fn(t[0], t[1], t[2]) {
			return
		}
	}
	for _, t := range v.delta {
		if matches(t, want) && !fn(t[0], t[1], t[2]) {
			return
		}
	}
}

// MatchCount returns the number of triples in the view matching the
// pattern, lock-free (see Store.MatchCount).
func (v *View) MatchCount(sub, pred, obj ID) int {
	ix, k1, k2 := chooseIndex(&v.base, sub, pred, obj)
	lo, hi := ix.scanRange(k1, k2)
	want := spoTriple{sub, pred, obj}
	n := 0
	if bound(sub)+bound(pred)+bound(obj) == keyedCount(k1, k2) {
		n = hi - lo
	} else {
		for i := lo; i < hi; i++ {
			if matches(ix.p.restore(ix.entries[i]), want) {
				n++
			}
		}
	}
	for _, t := range v.delta {
		if matches(t, want) {
			n++
		}
	}
	return n
}

// Len returns the number of distinct triples visible in the view.
func (v *View) Len() int { return len(v.base[0].entries) + len(v.delta) }

// TextSearch resolves a full-text keyword against the store's inverted
// index. The text index has no snapshot (it is a set of mutable
// posting maps), so this delegates to the locked store path; it runs
// once per keyword filter during query rewrite, not per row, so the
// lock is off the hot path.
func (v *View) TextSearch(keyword string) []ID { return v.st.TextSearch(keyword) }

package store

import (
	"fmt"
	"io"

	"re2xolap/internal/rdf"
)

// LoadPartitioned streams N-Triples from r into n fresh stores,
// routing each triple by shardOf(subject) — the shard-aware bulk-load
// path a scatter-gather coordinator uses to split one dataset across
// in-process shard stores in a single pass. Each store compacts once
// at the end, like AddAll. shardOf must return a value in [0, n);
// internal/shard.Partitioner.Shard is the standard choice (injected
// as a function so this package does not depend on the shard layer).
// Returns the stores and the total triple count.
func LoadPartitioned(r io.Reader, n int, shardOf func(subject rdf.Term) int) ([]*Store, int, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("store: load partitioned: shard count %d < 1", n)
	}
	stores := make([]*Store, n)
	for i := range stores {
		stores[i] = New()
	}
	dec := rdf.NewDecoder(r)
	total := 0
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, total, fmt.Errorf("store: load partitioned: %w", err)
		}
		if verr := t.Validate(); verr != nil {
			return nil, total, fmt.Errorf("store: load partitioned: %w", verr)
		}
		i := shardOf(t.S)
		if i < 0 || i >= n {
			return nil, total, fmt.Errorf("store: load partitioned: shard %d out of range [0,%d)", i, n)
		}
		if err := stores[i].Add(t); err != nil {
			return nil, total, err
		}
		total++
	}
	for _, st := range stores {
		st.mu.Lock()
		st.compactLocked()
		st.mu.Unlock()
	}
	return stores, total, nil
}

package store

import (
	"sort"
	"strings"
	"unicode"
)

// fullText is an inverted keyword index over literal terms: each
// lower-cased token of a literal maps to the IDs of the literals that
// contain it. Searches tokenize the keyword, intersect posting lists,
// and verify the full phrase with a substring check, mirroring the
// "traditional full-text index" the paper configures in the triplestore
// for keyword-to-IRI resolution.
type fullText struct {
	postings map[string][]ID
	indexed  map[ID]struct{}
}

func newFullText() *fullText {
	return &fullText{postings: map[string][]ID{}, indexed: map[ID]struct{}{}}
}

// tokenizeText splits a literal value into lower-cased alphanumeric
// tokens.
func tokenizeText(s string) []string {
	var toks []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, strings.ToLower(s[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, strings.ToLower(s[start:]))
	}
	return toks
}

func (ft *fullText) add(id ID, value string) {
	if _, done := ft.indexed[id]; done {
		return
	}
	ft.indexed[id] = struct{}{}
	seen := map[string]struct{}{}
	for _, tok := range tokenizeText(value) {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		ft.postings[tok] = append(ft.postings[tok], id)
	}
}

// search returns IDs of literals whose value contains the keyword
// case-insensitively. Posting lists narrow candidates; the dictionary
// verifies the actual substring match.
func (ft *fullText) search(keyword string, dict *Dict) []ID {
	kw := strings.ToLower(strings.TrimSpace(keyword))
	if kw == "" {
		return nil
	}
	toks := tokenizeText(kw)
	var candidates []ID
	switch len(toks) {
	case 0:
		return nil
	case 1:
		// Single token: accept literals holding any token that has the
		// keyword as a prefix or that contains it, so "german" finds
		// "Germany". Collect from every posting whose token contains kw.
		set := map[ID]struct{}{}
		for tok, ids := range ft.postings {
			if strings.Contains(tok, toks[0]) {
				for _, id := range ids {
					set[id] = struct{}{}
				}
			}
		}
		candidates = make([]ID, 0, len(set))
		for id := range set {
			candidates = append(candidates, id)
		}
	default:
		// Multi-token phrase: intersect exact posting lists, then verify
		// the phrase as a substring.
		lists := make([][]ID, 0, len(toks))
		for _, tok := range toks {
			ids, ok := ft.postings[tok]
			if !ok {
				return nil
			}
			lists = append(lists, ids)
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		counts := map[ID]int{}
		for _, id := range lists[0] {
			counts[id] = 1
		}
		for _, list := range lists[1:] {
			for _, id := range list {
				if c, ok := counts[id]; ok && c < len(lists) {
					counts[id] = c + 1
				}
			}
		}
		for id, c := range counts {
			if c == len(lists) {
				if strings.Contains(strings.ToLower(dict.Decode(id).Value), kw) {
					candidates = append(candidates, id)
				}
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return candidates
}

func (ft *fullText) size() int { return len(ft.postings) }

package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"re2xolap/internal/rdf"
)

func snapshotRoundTrip(t *testing.T, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	_ = s.AddAll([]rdf.Triple{
		tr("s1", "p1", "o1"),
		rdf.NewTriple(iri("s1"), iri("label"), rdf.NewString("Hello World")),
		rdf.NewTriple(iri("s2"), iri("label"), rdf.NewLangString("ciao", "it")),
		rdf.NewTriple(iri("s2"), iri("value"), rdf.NewInteger(42)),
		rdf.NewTriple(rdf.NewBlank("b1"), iri("p1"), rdf.NewDouble(2.5)),
	})
	got := snapshotRoundTrip(t, s)
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	want := map[rdf.Triple]bool{}
	for _, tri := range s.Triples() {
		want[tri] = true
	}
	for _, tri := range got.Triples() {
		if !want[tri] {
			t.Errorf("unexpected triple %v", tri)
		}
	}
	// Full-text index is rebuilt.
	if ids := got.TextSearch("hello"); len(ids) != 1 {
		t.Errorf("text search after load = %v", ids)
	}
	// Numeric cache is rebuilt.
	vid, ok := got.Dict().Lookup(rdf.NewInteger(42))
	if !ok {
		t.Fatal("integer term missing")
	}
	if n, isNum := got.Dict().Numeric(vid); !isNum || n != 42 {
		t.Errorf("numeric cache = %v/%v", n, isNum)
	}
}

func TestSnapshotFlushesDelta(t *testing.T) {
	s := New()
	s.autoCompact = 0
	_ = s.Add(tr("s", "p", "o"))
	got := snapshotRoundTrip(t, s)
	if got.Len() != 1 {
		t.Errorf("delta triple lost: Len = %d", got.Len())
	}
}

func TestSnapshotErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("R2XS\xff"),     // bad version
		[]byte("R2XS\x01\x02"), // truncated terms
		append([]byte("R2XS\x01\x01\x00\x03abc\x01\x01"), 9, 9, 9), // triple refs unknown term
	}
	for i, b := range bad {
		if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: bad snapshot accepted", i)
		}
	}
}

// Property: a randomly populated store survives a snapshot round trip
// with identical query behaviour.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		for i := 0; i < int(n); i++ {
			var obj rdf.Term
			switch rng.Intn(3) {
			case 0:
				obj = iri(fmt.Sprintf("o%d", rng.Intn(10)))
			case 1:
				obj = rdf.NewString(fmt.Sprintf("label %d", rng.Intn(10)))
			default:
				obj = rdf.NewInteger(int64(rng.Intn(100)))
			}
			if s.Add(rdf.NewTriple(iri(fmt.Sprintf("s%d", rng.Intn(10))), iri(fmt.Sprintf("p%d", rng.Intn(4))), obj)) != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if s.WriteSnapshot(&buf) != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil || got.Len() != s.Len() {
			return false
		}
		want := map[rdf.Triple]bool{}
		for _, tri := range s.Triples() {
			want[tri] = true
		}
		for _, tri := range got.Triples() {
			if !want[tri] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotVersusNTriples(t *testing.T) {
	// The snapshot and N-Triples export of the same store must load to
	// equivalent stores.
	s := New()
	_ = s.AddAll([]rdf.Triple{
		tr("a", "p", "b"),
		rdf.NewTriple(iri("a"), iri("l"), rdf.NewString("tricky \"x\"\nnewline")),
	})
	var nt strings.Builder
	for _, tri := range s.Triples() {
		nt.WriteString(tri.String())
		nt.WriteByte('\n')
	}
	fromNT := New()
	if _, err := fromNT.Load(strings.NewReader(nt.String())); err != nil {
		t.Fatal(err)
	}
	fromSnap := snapshotRoundTrip(t, s)
	if fromNT.Len() != fromSnap.Len() {
		t.Errorf("NT = %d triples, snapshot = %d", fromNT.Len(), fromSnap.Len())
	}
}

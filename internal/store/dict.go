// Package store implements an in-memory, dictionary-encoded RDF triple
// store with three sorted index permutations (SPO, POS, OSP), an
// LSM-style delta buffer for incremental inserts, cardinality statistics
// for join ordering, and an inverted full-text index over literals.
//
// It plays the role of the external triplestore (Virtuoso in the paper):
// the SPARQL engine in internal/sparql executes against it, and
// internal/endpoint exposes it over the SPARQL protocol.
package store

import (
	"strconv"
	"sync"
	"sync/atomic"

	"re2xolap/internal/rdf"
)

// ID is a dictionary-assigned term identifier. 0 is reserved and never
// denotes a term.
type ID uint32

// Dict maps RDF terms to dense integer IDs and back. It is safe for
// concurrent use.
//
// Concurrency contract: the dictionary is append-only — a term, once
// interned, keeps its ID forever and is never removed. Encode takes the
// read lock on its fast path (already-interned terms) and upgrades to
// the write lock only for genuinely new terms, so concurrent query
// workers encoding known terms do not serialize on the mutex. Decode
// and Numeric are lock-free for every term that existed when the
// current snapshot was published (i.e. all but terms interned
// nanoseconds ago), falling back to the read lock only for brand-new
// IDs; this keeps the projection hot path (one Decode per output cell)
// off the mutex entirely.
type Dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[id-1]
	// nums caches the parsed numeric value of numeric literals so
	// aggregation never re-parses lexical forms.
	nums []float64
	isN  []bool
	// snap is the atomically published read view backing the lock-free
	// Decode/Numeric fast path. It holds slice headers over the same
	// append-only backing arrays; readers only index below the
	// snapshot's length, which append never overwrites.
	snap atomic.Pointer[dictSnap]
}

// dictSnap is an immutable view of the dictionary's term storage.
type dictSnap struct {
	terms []rdf.Term
	nums  []float64
	isN   []bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{ids: make(map[rdf.Term]ID, 1024)}
	d.snap.Store(&dictSnap{})
	return d
}

// Encode returns the ID for t, assigning a fresh one if t is new. The
// interned case (every call after the first for a given term) takes
// only the read lock, so concurrent encoders of known terms proceed in
// parallel.
func (d *Dict) Encode(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	n, isNum := t.Numeric()
	d.nums = append(d.nums, n)
	d.isN = append(d.isN, isNum)
	id = ID(len(d.terms))
	d.ids[t] = id
	d.snap.Store(&dictSnap{terms: d.terms, nums: d.nums, isN: d.isN})
	return id
}

// Lookup returns the ID for t without assigning one. The second result
// reports whether t is known.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// Decode returns the term for id. It panics on an unknown id, which
// indicates a programming error (IDs only come from this dictionary).
// The common case is lock-free (see the Dict concurrency contract).
func (d *Dict) Decode(id ID) rdf.Term {
	if s := d.snap.Load(); int(id) <= len(s.terms) {
		return s.terms[id-1]
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id-1]
}

// Numeric returns the cached numeric value of the term with the given
// id. The second result reports whether the term is a numeric literal.
// Like Decode, the common case is lock-free.
func (d *Dict) Numeric(id ID) (float64, bool) {
	if s := d.snap.Load(); int(id) <= len(s.nums) {
		return s.nums[id-1], s.isN[id-1]
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nums[id-1], d.isN[id-1]
}

// Len returns the number of distinct terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// String renders a summary, useful in logs.
func (d *Dict) String() string {
	return "dict(" + strconv.Itoa(d.Len()) + " terms)"
}

// Package store implements an in-memory, dictionary-encoded RDF triple
// store with three sorted index permutations (SPO, POS, OSP), an
// LSM-style delta buffer for incremental inserts, cardinality statistics
// for join ordering, and an inverted full-text index over literals.
//
// It plays the role of the external triplestore (Virtuoso in the paper):
// the SPARQL engine in internal/sparql executes against it, and
// internal/endpoint exposes it over the SPARQL protocol.
package store

import (
	"strconv"
	"sync"

	"re2xolap/internal/rdf"
)

// ID is a dictionary-assigned term identifier. 0 is reserved and never
// denotes a term.
type ID uint32

// Dict maps RDF terms to dense integer IDs and back. It is safe for
// concurrent use.
type Dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[id-1]
	// nums caches the parsed numeric value of numeric literals so
	// aggregation never re-parses lexical forms.
	nums []float64
	isN  []bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[rdf.Term]ID, 1024)}
}

// Encode returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Encode(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	n, isNum := t.Numeric()
	d.nums = append(d.nums, n)
	d.isN = append(d.isN, isNum)
	id = ID(len(d.terms))
	d.ids[t] = id
	return id
}

// Lookup returns the ID for t without assigning one. The second result
// reports whether t is known.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// Decode returns the term for id. It panics on an unknown id, which
// indicates a programming error (IDs only come from this dictionary).
func (d *Dict) Decode(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id-1]
}

// Numeric returns the cached numeric value of the term with the given
// id. The second result reports whether the term is a numeric literal.
func (d *Dict) Numeric(id ID) (float64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nums[id-1], d.isN[id-1]
}

// Len returns the number of distinct terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// String renders a summary, useful in logs.
func (d *Dict) String() string {
	return "dict(" + strconv.Itoa(d.Len()) + " terms)"
}

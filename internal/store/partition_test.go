package store

import (
	"strings"
	"testing"

	"re2xolap/internal/rdf"
)

func TestLoadPartitioned(t *testing.T) {
	nt := `<http://t/a> <http://t/p> "1" .
<http://t/b> <http://t/p> "2" .
<http://t/a> <http://t/q> "3" .
<http://t/c> <http://t/p> "4" .
`
	// Route by last byte of the subject IRI: a→0, b→1, c→2.
	shardOf := func(s rdf.Term) int { return int(s.Value[len(s.Value)-1] - 'a') }
	stores, n, err := LoadPartitioned(strings.NewReader(nt), 3, shardOf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d triples, want 4", n)
	}
	for i, want := range []int{2, 1, 1} {
		if got := stores[i].Len(); got != want {
			t.Errorf("shard %d: %d triples, want %d", i, got, want)
		}
	}
	// All of subject a's triples are on shard 0.
	count := 0
	for _, tr := range stores[0].Triples() {
		if tr.S.Value == "http://t/a" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("shard 0 subject a: %d triples, want 2", count)
	}

	if _, _, err := LoadPartitioned(strings.NewReader(nt), 0, shardOf); err == nil {
		t.Error("shard count 0 must fail")
	}
	bad := func(rdf.Term) int { return 7 }
	if _, _, err := LoadPartitioned(strings.NewReader(nt), 3, bad); err == nil {
		t.Error("out-of-range shard must fail")
	}
}

package store

import (
	"testing"

	"re2xolap/internal/rdf"
)

func TestGenerationAdvancesOnMutation(t *testing.T) {
	s := New()
	g0 := s.Generation()

	if err := s.Add(tr("s1", "p1", "o1")); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 <= g0 {
		t.Fatalf("Generation after Add = %d, want > %d", g1, g0)
	}

	// Duplicate insert leaves the answer set unchanged and must not
	// invalidate caches.
	if err := s.Add(tr("s1", "p1", "o1")); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != g1 {
		t.Fatalf("Generation after duplicate Add = %d, want %d", g, g1)
	}

	s.Compact()
	g2 := s.Generation()
	if g2 <= g1 {
		t.Fatalf("Generation after non-empty Compact = %d, want > %d", g2, g1)
	}

	// Compacting an empty delta is a no-op.
	s.Compact()
	if g := s.Generation(); g != g2 {
		t.Fatalf("Generation after empty Compact = %d, want %d", g, g2)
	}
}

func TestGenerationAdvancesOnBulkLoad(t *testing.T) {
	s := New()
	if err := s.AddAll([]rdf.Triple{tr("a", "p", "b"), tr("b", "p", "c")}); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == 0 {
		t.Fatal("Generation after AddAll = 0, want > 0")
	}
}

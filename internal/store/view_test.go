package store

import (
	"fmt"
	"sync"
	"testing"

	"re2xolap/internal/rdf"
)

func viewTriple(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func TestViewMatchesStore(t *testing.T) {
	s := New()
	s.autoCompact = 4 // force compactions mid-load
	for i := 0; i < 30; i++ {
		if err := s.Add(viewTriple(
			fmt.Sprintf("http://ex/s%d", i%7),
			fmt.Sprintf("http://ex/p%d", i%3),
			fmt.Sprintf("http://ex/o%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v := s.View()
	if v.Len() != s.Len() {
		t.Fatalf("view Len %d != store Len %d", v.Len(), s.Len())
	}
	p1, _ := s.Dict().Lookup(rdf.NewIRI("http://ex/p1"))
	collect := func(match func(ID, ID, ID, func(ID, ID, ID) bool)) []spoTriple {
		var out []spoTriple
		match(0, p1, 0, func(a, b, c ID) bool {
			out = append(out, spoTriple{a, b, c})
			return true
		})
		return out
	}
	fromStore := collect(s.Match)
	fromView := collect(v.Match)
	if len(fromStore) == 0 || len(fromStore) != len(fromView) {
		t.Fatalf("store matched %d, view matched %d", len(fromStore), len(fromView))
	}
	for i := range fromStore {
		if fromStore[i] != fromView[i] {
			t.Fatalf("row %d: store %v view %v", i, fromStore[i], fromView[i])
		}
	}
	if got, want := v.MatchCount(0, p1, 0), s.MatchCount(0, p1, 0); got != want {
		t.Fatalf("view MatchCount %d, store %d", got, want)
	}
}

// TestViewSnapshotIsolation: writes (including a compaction that
// recycles the delta backing array) after View() must not leak into an
// existing view.
func TestViewSnapshotIsolation(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Add(viewTriple(fmt.Sprintf("http://ex/s%d", i), "http://ex/p", "http://ex/o"))
	}
	// Leave some triples in the delta so the view must copy it.
	if len(s.delta) == 0 {
		t.Fatal("test setup: expected a non-empty delta")
	}
	v := s.View()
	before := v.Len()
	for i := 10; i < 200; i++ {
		s.Add(viewTriple(fmt.Sprintf("http://ex/s%d", i), "http://ex/p", "http://ex/o"))
	}
	s.Compact()
	if v.Len() != before {
		t.Fatalf("view grew from %d to %d after post-view writes", before, v.Len())
	}
	n := 0
	v.Match(0, 0, 0, func(_, _, _ ID) bool { n++; return true })
	if n != before {
		t.Fatalf("view Match saw %d triples, want %d", n, before)
	}
}

// TestViewConcurrentWithWrites hammers view scans while a writer keeps
// adding and compacting; run under -race this is the regression test
// for the lock-free read path.
func TestViewConcurrentWithWrites(t *testing.T) {
	s := New()
	s.autoCompact = 64
	for i := 0; i < 500; i++ {
		s.Add(viewTriple(fmt.Sprintf("http://ex/s%d", i%50), "http://ex/p", fmt.Sprintf("http://ex/o%d", i)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 500; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Add(viewTriple(fmt.Sprintf("http://ex/s%d", i%50), "http://ex/p", fmt.Sprintf("http://ex/o%d", i)))
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := s.View()
				want := v.Len()
				n := 0
				v.Match(0, 0, 0, func(_, _, _ ID) bool { n++; return true })
				if n != want {
					t.Errorf("inconsistent view: Match saw %d, Len says %d", n, want)
					return
				}
			}
		}()
	}
	// Concurrent dictionary readers exercising the lock-free snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := s.Dict()
		for i := 0; i < 20000; i++ {
			n := ID(d.Len())
			if n == 0 {
				continue
			}
			id := ID(i)%n + 1
			_ = d.Decode(id)
			_, _ = d.Numeric(id)
			d.Encode(rdf.NewIRI("http://ex/p")) // interned: read-lock fast path
		}
	}()
	close(stop)
	wg.Wait()
}

// BenchmarkDictDecodeParallel measures the lock-free decode fast path
// under parallel load (the projection hot path of the query executor).
func BenchmarkDictDecodeParallel(b *testing.B) {
	d := NewDict()
	for i := 0; i < 10000; i++ {
		d.Encode(rdf.NewIRI(fmt.Sprintf("http://ex/term%d", i)))
	}
	n := ID(d.Len())
	b.RunParallel(func(pb *testing.PB) {
		var i ID
		for pb.Next() {
			i = i%n + 1
			_ = d.Decode(i)
		}
	})
}

// BenchmarkViewMatch measures the lock-free scan path against the
// locked Store.Match path on the same data.
func BenchmarkViewMatch(b *testing.B) {
	s := New()
	for i := 0; i < 5000; i++ {
		s.Add(viewTriple(fmt.Sprintf("http://ex/s%d", i%100), fmt.Sprintf("http://ex/p%d", i%5), fmt.Sprintf("http://ex/o%d", i)))
	}
	p, _ := s.Dict().Lookup(rdf.NewIRI("http://ex/p1"))
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			s.Match(0, p, 0, func(_, _, _ ID) bool { n++; return true })
		}
	})
	b.Run("view", func(b *testing.B) {
		v := s.View()
		for i := 0; i < b.N; i++ {
			n := 0
			v.Match(0, p, 0, func(_, _, _ ID) bool { n++; return true })
		}
	})
}

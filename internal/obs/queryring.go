package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// ShardCall summarizes one shard's part in a federated query: the
// rows it contributed, its wall time, and the resilience layer's
// attempt/retry counts against it. With replicated shards, Replica is
// the replica index that produced the answer and Failovers counts the
// replicas that were tried and failed before it; Skipped marks a
// shard whose answer was dropped from a degraded-mode result.
type ShardCall struct {
	Shard     int     `json:"shard"`
	Replica   int     `json:"replica,omitempty"`
	Rows      int     `json:"rows"`
	WallMS    float64 `json:"wall_ms"`
	Attempts  int     `json:"attempts,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Failovers int     `json:"failovers,omitempty"`
	Skipped   bool    `json:"skipped,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// QueryRecord is one entry of the query ring buffer: a structured
// profile summary of one served query, the JSON the /debug/queries
// endpoint returns.
type QueryRecord struct {
	Time   string `json:"time"`
	Source string `json:"source,omitempty"`
	Step   string `json:"step,omitempty"` // issuing workflow step tag
	// Plan is the federation plan class (colocated/partial_agg/gather)
	// when the query went through a shard coordinator.
	Plan       string             `json:"plan,omitempty"`
	WallMS     float64            `json:"wall_ms"`
	Rows       int                `json:"rows"`
	PhaseMS    map[string]float64 `json:"phase_ms,omitempty"`
	Shards     []ShardCall        `json:"shards,omitempty"`
	Incomplete bool               `json:"incomplete,omitempty"`
	// SkippedShards lists the shard indices a degraded-mode answer was
	// served without (Incomplete is then true).
	SkippedShards []int `json:"skipped_shards,omitempty"`
	// CacheHit and Coalesced report serve-layer handling; QueueWaitMS
	// is admission-control queue time (see SlowQuery for semantics).
	CacheHit    bool    `json:"cache_hit,omitempty"`
	Coalesced   bool    `json:"coalesced,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
	Query       string  `json:"query"`
}

// QueryRing keeps the last N query records in a fixed ring. A nil
// *QueryRing is the disabled state: Record no-ops and Snapshot
// returns nil, following the package's nil-safe pattern. Safe for
// concurrent use.
type QueryRing struct {
	mu   sync.Mutex
	buf  []QueryRecord
	next int
	full bool
	now  func() time.Time // injectable clock (tests)
}

// NewQueryRing returns a ring holding the last n records (n <= 0
// defaults to 128).
func NewQueryRing(n int) *QueryRing {
	if n <= 0 {
		n = 128
	}
	return &QueryRing{buf: make([]QueryRecord, n), now: time.Now}
}

// Record appends one entry, evicting the oldest when full. The
// timestamp is filled here and oversized query text is truncated like
// the slow-query log's.
func (r *QueryRing) Record(q QueryRecord) {
	if r == nil {
		return
	}
	q.Time = r.now().UTC().Format(time.RFC3339Nano)
	if len(q.Query) > maxSlowQueryLen {
		q.Query = q.Query[:maxSlowQueryLen] + "...(truncated)"
	}
	r.mu.Lock()
	r.buf[r.next] = q
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns how many records the ring currently holds.
func (r *QueryRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the held records newest-first.
func (r *QueryRing) Snapshot() []QueryRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]QueryRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Handler serves the ring as a JSON array, newest-first (the
// /debug/queries endpoint). A nil ring serves 404.
func (r *QueryRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "query log disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestParsePromRoundTrip: parse(WriteProm(registry)) re-serializes
// byte-identically — the core guarantee the fleet federation relies
// on (merging parsed snapshots must not distort what a process
// exposed).
func TestParsePromRoundTrip(t *testing.T) {
	var orig bytes.Buffer
	if err := goldenRegistry().WriteProm(&orig); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseProm(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, orig.String())
	}
	var rt bytes.Buffer
	if err := snap.WriteProm(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
		t.Errorf("round trip not byte-identical.\n--- original ---\n%s--- reserialized ---\n%s", orig.String(), rt.String())
	}
}

// Multi-instance histograms exercise the shard-style labeling the
// coordinator exposes (where quantile sample order is histogram-major,
// not sorted by full label set).
func TestParsePromRoundTripMultiInstance(t *testing.T) {
	r := NewRegistry()
	for _, shard := range []string{"0", "1", "2"} {
		h := r.Histogram("shard_query_seconds", "Per-shard latency.", []float64{0.01, 0.1, 1}, L("shard", shard))
		h.Observe(0.005)
		h.Observe(0.5)
	}
	r.Counter("requests_total", "Requests.", L("outcome", "ok")).Add(1000000)
	var orig bytes.Buffer
	if err := r.WriteProm(&orig); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseProm(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rt bytes.Buffer
	if err := snap.WriteProm(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
		t.Errorf("round trip not byte-identical.\n--- original ---\n%s--- reserialized ---\n%s", orig.String(), rt.String())
	}
	// Large integral counters must not re-render in exponent form.
	if !strings.Contains(rt.String(), `requests_total{outcome="ok"} 1e+06`) {
		// formatFloat('g') renders 1000000 as 1e+06 for scalars — and
		// the round trip must preserve exactly that.
		t.Errorf("counter formatting drifted:\n%s", rt.String())
	}
}

func TestParsePromValues(t *testing.T) {
	input := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{op="q",le="0.1"} 2
lat_seconds_bucket{op="q",le="1"} 5
lat_seconds_bucket{op="q",le="+Inf"} 7
lat_seconds_sum{op="q"} 12.5
lat_seconds_count{op="q"} 7
# TYPE odd gauge
odd{v="esc\"q\\b\nnl"} NaN
odd{v="inf"} +Inf
odd{v="ninf"} -Inf
# TYPE hits counter
hits 31 1712345678901
`
	snap, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	f := snap.Family("lat_seconds")
	if f == nil || f.Kind != "histogram" || len(f.Hists) != 1 {
		t.Fatalf("histogram family = %+v", f)
	}
	h := f.Hists[0]
	if len(h.Bounds) != 2 || h.Bounds[0] != 0.1 || h.Bounds[1] != 1 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	if h.Cum[0] != 2 || h.Cum[1] != 5 || h.Count != 7 || h.Sum != 12.5 {
		t.Fatalf("hist = %+v", h)
	}
	if len(h.Labels) != 1 || h.Labels[0] != L("op", "q") {
		t.Fatalf("labels = %v", h.Labels)
	}
	if v, ok := snap.Value("odd", L("v", "esc\"q\\b\nnl")); !ok || !math.IsNaN(v) {
		t.Fatalf("escaped NaN sample: v=%v ok=%v", v, ok)
	}
	if v, ok := snap.Value("odd", L("v", "inf")); !ok || !math.IsInf(v, 1) {
		t.Fatalf("+Inf sample: v=%v ok=%v", v, ok)
	}
	if v, ok := snap.Value("odd", L("v", "ninf")); !ok || !math.IsInf(v, -1) {
		t.Fatalf("-Inf sample: v=%v ok=%v", v, ok)
	}
	// Timestamp discarded, value kept.
	if v, ok := snap.Value("hits"); !ok || v != 31 {
		t.Fatalf("hits = %v ok=%v", v, ok)
	}
	// Quantile through parsed buckets matches direct computation.
	q, ok := snap.HistQuantile("lat_seconds", 0.5, L("op", "q"))
	if !ok {
		t.Fatal("HistQuantile miss")
	}
	want := bucketQuantile([]float64{0.1, 1}, []float64{2, 5}, 7, 0.5)
	if q != want {
		t.Fatalf("quantile = %v want %v", q, want)
	}
}

func TestParsePromPartialHistogram(t *testing.T) {
	// _count missing: synthesized from the +Inf bucket.
	input := "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\n"
	snap, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if h := snap.Family("h").Hists[0]; h.Count != 4 {
		t.Fatalf("Count = %v, want 4", h.Count)
	}
}

func TestParsePromErrors(t *testing.T) {
	for _, bad := range []string{
		"metric_no_value\n",
		"1leading_digit 3\n",
		"m{a=\"unterminated} 1\n",
		"m{a=} 1\n",
		"m{a=\"x\"} notafloat\n",
		"# TYPE m sometype\nm 1\n",
		"# TYPE m histogram\nm_bucket{x=\"1\"} 2\n", // bucket without le
		"# TYPE m histogram\nm 3\n",                 // bare sample in histogram family
		"m{a=\"dangling\\\n",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) = nil error, want failure", bad)
		}
	}
	// Lenient cases that must NOT fail.
	for _, ok := range []string{
		"",
		"\n\n# just a comment\n",
		"m{a=\"x\",} 1\n",          // trailing comma
		"m{a=\"x\"} 1 123456789\n", // timestamp
		"# TYPE m summary\nm 1\n",  // summaries parse as scalars
	} {
		if _, err := ParseProm(strings.NewReader(ok)); err != nil {
			t.Errorf("ParseProm(%q) = %v, want nil", ok, err)
		}
	}
}

func TestSnapshotLookups(t *testing.T) {
	input := "# TYPE shed counter\nshed{reason=\"queue_full\",tenant=\"a\"} 3\nshed{reason=\"deadline\",tenant=\"a\"} 2\nshed{reason=\"queue_full\",tenant=\"b\"} 5\n"
	snap, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.SumWhere("shed"); got != 10 {
		t.Errorf("SumWhere() = %v, want 10", got)
	}
	if got := snap.SumWhere("shed", L("tenant", "a")); got != 5 {
		t.Errorf("SumWhere(tenant=a) = %v, want 5", got)
	}
	if got := snap.SumWhere("shed", L("reason", "queue_full")); got != 8 {
		t.Errorf("SumWhere(reason=queue_full) = %v, want 8", got)
	}
	if got := snap.SumWhere("absent"); got != 0 {
		t.Errorf("SumWhere(absent) = %v, want 0", got)
	}
	if _, ok := snap.Value("shed", L("tenant", "a")); ok {
		t.Error("Value with partial labels should miss (exact match)")
	}
	// Order-insensitive exact match.
	if v, ok := snap.Value("shed", L("tenant", "b"), L("reason", "queue_full")); !ok || v != 5 {
		t.Errorf("Value = %v ok=%v", v, ok)
	}
}

// FuzzParseProm: the parser must never panic, and anything it accepts
// must re-serialize into something it accepts again (write→parse
// closure), which is what the fleet endpoint relies on when re-serving
// merged foreign input.
func FuzzParseProm(f *testing.F) {
	var golden bytes.Buffer
	_ = goldenRegistry().WriteProm(&golden)
	f.Add(golden.String())
	f.Add("# HELP m help \\\\ with \\n escapes\n# TYPE m counter\nm{a=\"\\\"x\\\\y\\n\"} 1\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n")
	f.Add("m NaN\nm2 +Inf\nm3 -Inf\n")
	f.Add("# TYPE g gauge\ng{} 5\n")
	f.Add("m 1 2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		snap, err := ParseProm(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := snap.WriteProm(&buf); err != nil {
			t.Fatalf("WriteProm after successful parse: %v", err)
		}
		if _, err := ParseProm(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reparse of own output failed: %v\n--- output ---\n%s", err, buf.String())
		}
	})
}

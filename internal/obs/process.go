package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterProcessMetrics registers runtime self-metrics on the
// registry, sampled lazily at exposition time via GaugeFunc:
//
//	go_goroutines             current goroutine count
//	go_heap_alloc_bytes       live heap bytes (runtime.MemStats.HeapAlloc)
//	go_gc_pause_seconds_total cumulative stop-the-world GC pause time
//	process_uptime_seconds    seconds since this call
//
// runtime.ReadMemStats stops the world briefly, so one sample is
// shared by all memory gauges and memoized for a second — scraping
// /metrics at any sane interval costs one ReadMemStats per scrape at
// most. Safe to call on a nil registry (no-op).
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	var (
		mu      sync.Mutex
		ms      runtime.MemStats
		sampled time.Time
	)
	sample := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if sampled.IsZero() || time.Since(sampled) >= time.Second {
			runtime.ReadMemStats(&ms)
			sampled = time.Now()
		}
		return ms
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(sample().HeapAlloc)
	})
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time in seconds.", func() float64 {
		return float64(sample().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("process_uptime_seconds", "Seconds since process metrics were registered.", func() float64 {
		return time.Since(start).Seconds()
	})
}

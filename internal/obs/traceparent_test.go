package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("request")
	h := tr.Root().Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent shape: %q", h)
	}
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", h)
	}
	if tid != tr.traceID || sid != tr.root.id {
		t.Error("round-trip lost IDs")
	}
	// Child spans carry the same trace ID but their own span ID.
	child := tr.Root().Start("phase")
	ctid, csid, ok := ParseTraceparent(child.Traceparent())
	if !ok || ctid != tid || csid == sid {
		t.Errorf("child traceparent: ok=%v sameTrace=%v sameSpan=%v", ok, ctid == tid, csid == sid)
	}
	// Nil and ID-less spans render empty.
	var nilSpan *Span
	if nilSpan.Traceparent() != "" {
		t.Error("nil span traceparent not empty")
	}
	if (&Span{tr: &Trace{}}).Traceparent() != "" {
		t.Error("ID-less span traceparent not empty")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"garbage",
		"00-zz-zz-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // invalid version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span ID
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",  // short span ID
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	tid, sid, ok := ParseTraceparent(" 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01 ")
	if !ok || tid == ([16]byte{}) || sid == ([8]byte{}) {
		t.Error("valid header with whitespace rejected")
	}
}

// TestRemoteParentStitching checks that a trace continued via
// NewTraceWithRemoteParent exports under the caller's trace ID with
// the remote span as the root's parent — the property the federation
// smoke asserts end to end.
func TestRemoteParentStitching(t *testing.T) {
	parent := NewTrace("coordinator")
	span := parent.Root().Start("shard-0")
	tid, sid, ok := ParseTraceparent(span.Traceparent())
	if !ok {
		t.Fatal("no traceparent on coordinator span")
	}
	remote := NewTraceWithRemoteParent("sparql-request", tid, sid)
	remote.Root().Start("parse").End()
	remote.End()

	decode := func(tr *Trace) (traceID string, spans []struct {
		SpanID       string
		ParentSpanID string
		Name         string
	}) {
		var buf bytes.Buffer
		if err := EncodeOTLP(&buf, tr, OTLPOptions{}); err != nil {
			t.Fatal(err)
		}
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []struct {
						TraceID      string
						SpanID       string
						ParentSpanID string
						Name         string
					}
				}
			}
		}
		if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
			t.Fatal(err)
		}
		all := req.ResourceSpans[0].ScopeSpans[0].Spans
		for _, s := range all {
			spans = append(spans, struct {
				SpanID       string
				ParentSpanID string
				Name         string
			}{s.SpanID, s.ParentSpanID, s.Name})
		}
		return all[0].TraceID, spans
	}

	coordTID, coordSpans := decode(parent)
	shardTID, shardSpans := decode(remote)
	if coordTID != shardTID {
		t.Errorf("trace IDs differ across processes: %s vs %s", coordTID, shardTID)
	}
	// The shard root's parent is the coordinator's shard-0 span.
	var shard0ID string
	for _, s := range coordSpans {
		if s.Name == "shard-0" {
			shard0ID = s.SpanID
		}
	}
	if shard0ID == "" || shardSpans[0].ParentSpanID != shard0ID {
		t.Errorf("shard root parent = %q, want coordinator span %q", shardSpans[0].ParentSpanID, shard0ID)
	}
	// Zero IDs fall back to a fresh local trace.
	fresh := NewTraceWithRemoteParent("x", [16]byte{}, [8]byte{})
	if fresh.traceID == ([16]byte{}) || fresh.parentSpan != ([8]byte{}) {
		t.Error("zero remote IDs should start a fresh local trace")
	}
}

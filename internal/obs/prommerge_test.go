package obs

import (
	"bytes"
	"strings"
	"testing"
)

func parseT(t *testing.T, s string) *PromSnapshot {
	t.Helper()
	snap, err := ParseProm(strings.NewReader(s))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	return snap
}

func writeT(t *testing.T, s *PromSnapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

const instA = `# TYPE queries_total counter
queries_total{outcome="ok"} 10
queries_total{outcome="error"} 1
# TYPE inflight gauge
inflight 3
# TYPE workers gauge
workers 4
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 5
lat_seconds_bucket{le="1"} 8
lat_seconds_bucket{le="+Inf"} 9
lat_seconds_sum 4.5
lat_seconds_count 9
# TYPE replica_up gauge
replica_up 1
`

const instB = `# TYPE queries_total counter
queries_total{outcome="ok"} 7
# TYPE inflight gauge
inflight 5
# TYPE workers gauge
workers 2
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 10.25
lat_seconds_count 4
# TYPE replica_up gauge
replica_up 0
`

func fleetInstances(t *testing.T) []PromInstance {
	return []PromInstance{
		{Instance: "s0/r0", Snapshot: parseT(t, instA), AgeSeconds: 1},
		{Instance: "s0/r1", Snapshot: parseT(t, instB), AgeSeconds: 2},
	}
}

func TestMergePromRules(t *testing.T) {
	merged := MergeProm(fleetInstances(t), MergeOptions{
		Passthrough: []string{"replica_up"},
		SumGauges:   []string{"workers"},
	})

	// Counters sum; a series present in only one instance passes
	// through at its value.
	if v, ok := merged.Value("queries_total", L("outcome", "ok")); !ok || v != 17 {
		t.Errorf("ok counter = %v ok=%v, want 17", v, ok)
	}
	if v, ok := merged.Value("queries_total", L("outcome", "error")); !ok || v != 1 {
		t.Errorf("error counter = %v ok=%v, want 1", v, ok)
	}
	// Gauges max by default; SumGauges sum.
	if v, _ := merged.Value("inflight"); v != 5 {
		t.Errorf("inflight = %v, want max 5", v)
	}
	if v, _ := merged.Value("workers"); v != 6 {
		t.Errorf("workers = %v, want sum 6", v)
	}
	// Histogram buckets sum exactly, cumulatively.
	h := merged.Family("lat_seconds").Hists[0]
	if len(h.Bounds) != 2 || h.Cum[0] != 6 || h.Cum[1] != 10 || h.Count != 13 || h.Sum != 14.75 {
		t.Errorf("merged hist = %+v", h)
	}
	// Quantiles recomputed from merged buckets.
	wantQ := bucketQuantile(h.Bounds, h.Cum, h.Count, 0.5)
	if v, ok := merged.Value("lat_seconds_quantile", L("quantile", "0.5")); !ok || v != wantQ {
		t.Errorf("merged p50 = %v ok=%v, want %v", v, ok, wantQ)
	}
	// Passthrough keeps one series per instance.
	if v, ok := merged.Value("replica_up", L("instance", "s0/r0")); !ok || v != 1 {
		t.Errorf("replica_up s0/r0 = %v ok=%v", v, ok)
	}
	if v, ok := merged.Value("replica_up", L("instance", "s0/r1")); !ok || v != 0 {
		t.Errorf("replica_up s0/r1 = %v ok=%v", v, ok)
	}
	// Staleness markers: both fresh.
	for _, inst := range []string{"s0/r0", "s0/r1"} {
		if v, ok := merged.Value("re2xolap_fleet_instance_up", L("instance", inst)); !ok || v != 1 {
			t.Errorf("instance_up{%s} = %v ok=%v, want 1", inst, v, ok)
		}
	}
	if v, _ := merged.Value("re2xolap_fleet_scrape_age_seconds", L("instance", "s0/r1")); v != 2 {
		t.Errorf("scrape_age s0/r1 = %v, want 2", v)
	}
}

// TestMergePromDeterminism: merge(A,B) and merge(B,A) serialize
// byte-identically, and merging is idempotent on a single instance
// modulo the synthesized meta families.
func TestMergePromDeterminism(t *testing.T) {
	opt := MergeOptions{Passthrough: []string{"replica_up"}, SumGauges: []string{"workers"}}
	ab := fleetInstances(t)
	ba := []PromInstance{ab[1], ab[0]}
	outAB := writeT(t, MergeProm(ab, opt))
	outBA := writeT(t, MergeProm(ba, opt))
	if outAB != outBA {
		t.Errorf("merge not commutative.\n--- A,B ---\n%s--- B,A ---\n%s", outAB, outBA)
	}
	// The merged exposition must itself parse (serving /metrics/fleet
	// re-uses the scrape content type).
	reparsed, err := ParseProm(strings.NewReader(outAB))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, outAB)
	}
	if writeT(t, reparsed) != outAB {
		t.Error("merged exposition not stable under parse→write")
	}
}

func TestMergePromStaleness(t *testing.T) {
	insts := fleetInstances(t)
	insts[1].Stale = true // last good snapshot still contributes
	insts = append(insts, PromInstance{Instance: "s1/r0", Stale: true, AgeSeconds: -1})
	merged := MergeProm(insts, MergeOptions{})

	if v, _ := merged.Value("queries_total", L("outcome", "ok")); v != 17 {
		t.Errorf("stale instance's last-good counters dropped: ok = %v, want 17", v)
	}
	if v, ok := merged.Value("re2xolap_fleet_instance_up", L("instance", "s0/r1")); !ok || v != 0 {
		t.Errorf("stale instance_up = %v ok=%v, want 0", v, ok)
	}
	if v, ok := merged.Value("re2xolap_fleet_instance_up", L("instance", "s1/r0")); !ok || v != 0 {
		t.Errorf("never-scraped instance_up = %v ok=%v, want 0", v, ok)
	}
	if v, ok := merged.Value("re2xolap_fleet_scrape_age_seconds", L("instance", "s1/r0")); !ok || v != -1 {
		t.Errorf("never-scraped age = %v ok=%v, want -1", v, ok)
	}
	if !FleetMetaFamily("re2xolap_fleet_instance_up") || FleetMetaFamily("queries_total") {
		t.Error("FleetMetaFamily misclassifies")
	}
}

// Different bucket layouts across instances merge over the union of
// bounds (cumulative counts stay consistent).
func TestMergePromBucketUnion(t *testing.T) {
	a := parseT(t, "# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n")
	b := parseT(t, "# TYPE h histogram\nh_bucket{le=\"0.5\"} 4\nh_bucket{le=\"+Inf\"} 5\nh_sum 2\nh_count 5\n")
	merged := MergeProm([]PromInstance{
		{Instance: "a", Snapshot: a},
		{Instance: "b", Snapshot: b},
	}, MergeOptions{})
	h := merged.Family("h").Hists[0]
	if len(h.Bounds) != 2 || h.Bounds[0] != 0.1 || h.Bounds[1] != 0.5 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	// a contributes 2@0.1 + 1 overflow; b contributes 4@0.5 + 1 overflow.
	if h.Cum[0] != 2 || h.Cum[1] != 6 || h.Count != 8 || h.Sum != 3 {
		t.Errorf("merged = %+v", h)
	}
}

func TestMergePromMetricsFederationGolden(t *testing.T) {
	// End-to-end over real registries: the merged exposition equals
	// what one registry having seen all observations would expose, for
	// the merged families.
	mk := func(obsv []float64, n int64) *PromSnapshot {
		r := NewRegistry()
		r.Counter("q_total", "Queries.").Add(n)
		h := r.Histogram("q_seconds", "Latency.", []float64{0.1, 1, 10})
		for _, v := range obsv {
			h.Observe(v)
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	combined := NewRegistry()
	combined.Counter("q_total", "Queries.").Add(12)
	ch := combined.Histogram("q_seconds", "Latency.", []float64{0.1, 1, 10})
	// Power-of-two observations keep float sums exact regardless of
	// accumulation order, so byte-identity is well-defined.
	for _, v := range []float64{0.0625, 0.5, 2, 20, 0.0078125, 5} {
		ch.Observe(v)
	}
	merged := MergeProm([]PromInstance{
		{Instance: "a", Snapshot: mk([]float64{0.0625, 0.5, 2, 20}, 5)},
		{Instance: "b", Snapshot: mk([]float64{0.0078125, 5}, 7)},
	}, MergeOptions{})

	var wantBuf bytes.Buffer
	if err := combined.WriteProm(&wantBuf); err != nil {
		t.Fatal(err)
	}
	wantSnap, err := ParseProm(bytes.NewReader(wantBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"q_total", "q_seconds", "q_seconds_quantile"} {
		got, want := merged.Family(fam), wantSnap.Family(fam)
		var gb, wb bytes.Buffer
		if err := (&PromSnapshot{Families: []*PromFamily{got}}).WriteProm(&gb); err != nil {
			t.Fatal(err)
		}
		if err := (&PromSnapshot{Families: []*PromFamily{want}}).WriteProm(&wb); err != nil {
			t.Fatal(err)
		}
		if gb.String() != wb.String() {
			t.Errorf("family %s differs from combined registry.\n--- merged ---\n%s--- combined ---\n%s", fam, gb.String(), wb.String())
		}
	}
}

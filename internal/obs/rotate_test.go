package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRotatingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	w, err := NewRotatingWriter(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	line := bytes.Repeat([]byte("x"), 39)
	line = append(line, '\n') // 40 bytes per line
	for i := 0; i < 4; i++ {  // 160 bytes total: one rotation at the 3rd write
		if _, err := w.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	if len(cur)+len(old) != 160 {
		t.Errorf("bytes across generations = %d + %d, want 160 total", len(cur), len(old))
	}
	if len(cur) > 100 || len(old) > 100 {
		t.Errorf("generation exceeds cap: cur=%d old=%d", len(cur), len(old))
	}
	// No torn lines at generation boundaries.
	for name, b := range map[string][]byte{"current": cur, "rotated": old} {
		if len(b)%40 != 0 {
			t.Errorf("%s generation has a torn line: %d bytes", name, len(b))
		}
	}

	// Further rotations replace .1 (dropping the oldest generation)
	// rather than accumulating .2, .3, ... — worst-case disk use stays
	// ~2x the cap.
	for i := 0; i < 6; i++ {
		if _, err := w.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".2"); !os.IsNotExist(err) {
		t.Errorf("unexpected second generation: %v", err)
	}
	for _, p := range []string{path, path + ".1"} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 100 {
			t.Errorf("%s exceeds cap: %d bytes", p, len(b))
		}
	}
}

func TestRotatingWriterOversizedEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.jsonl")
	w, err := NewRotatingWriter(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := []byte(strings.Repeat("y", 50) + "\n")
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != len(big) {
		t.Errorf("oversized entry split or dropped: %d bytes", len(cur))
	}
}

func TestNewRotatingSlowLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.jsonl")
	l, w, err := NewRotatingSlowLog(path, time.Millisecond, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	l.Record(SlowQuery{Source: "server", WallMS: 5, Query: "SELECT 1"})
	l.Record(SlowQuery{Source: "server", WallMS: 0.1, Query: "fast"}) // below threshold
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Logged(); got != 1 {
		t.Errorf("Logged = %d, want 1", got)
	}
	if !bytes.Contains(b, []byte(`"SELECT 1"`)) || bytes.Contains(b, []byte(`"fast"`)) {
		t.Errorf("log content wrong: %s", b)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenTrace builds a fixed span tree (white-box: exporter timestamps
// must be byte-stable, so the spans are assembled with literal times
// rather than Start/End).
func goldenTrace() *Trace {
	t0 := time.Unix(1700000000, 0).UTC()
	tr := &Trace{}
	root := &Span{
		tr: tr, name: "query", start: t0,
		dur: 100 * time.Millisecond, ended: true,
		attrs: []Label{{Key: "step", Value: "witness"}},
	}
	parse := &Span{
		tr: tr, name: "parse", start: t0.Add(time.Millisecond),
		dur: 2 * time.Millisecond, ended: true,
	}
	join := &Span{
		tr: tr, name: "join", start: t0.Add(3 * time.Millisecond),
		dur: 90 * time.Millisecond, ended: true,
		attrs:  []Label{{Key: "rows", Value: "42"}},
		events: []spanEvent{{name: "retry", at: 10 * time.Millisecond}},
	}
	root.children = []*Span{parse, join}
	tr.root = root
	return tr
}

func TestEncodeOTLPGolden(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeOTLP(&buf, goldenTrace(), OTLPOptions{
		Service: "sparqld-test",
		TraceID: [16]byte{0xde, 0xad, 0xbe, 0xef, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "otlp.golden.json")
	if *update { // shared with the exposition golden tests
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("OTLP encoding diverges from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestEncodeOTLPShape sanity-checks the structural invariants a
// collector depends on: parent links, ID uniqueness, string nanos.
func TestEncodeOTLPShape(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeOTLP(&buf, goldenTrace(), OTLPOptions{}); err != nil {
		t.Fatal(err)
	}
	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string
					Value struct{ StringValue string }
				}
			}
			ScopeSpans []struct {
				Spans []struct {
					TraceID           string
					SpanID            string
					ParentSpanID      string
					Name              string
					StartTimeUnixNano string
					EndTimeUnixNano   string
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		t.Fatal(err)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	if got := req.ResourceSpans[0].Resource.Attributes[0].Value.StringValue; got != "re2xolap" {
		t.Errorf("default service name: %q", got)
	}
	root := spans[0]
	if root.ParentSpanID != "" {
		t.Error("root span must have no parent")
	}
	ids := map[string]bool{}
	for _, s := range spans {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			t.Errorf("span %s: bad ID lengths %d/%d", s.Name, len(s.TraceID), len(s.SpanID))
		}
		if s.TraceID != root.TraceID {
			t.Errorf("span %s: trace ID differs from root", s.Name)
		}
		if ids[s.SpanID] {
			t.Errorf("duplicate span ID %s", s.SpanID)
		}
		ids[s.SpanID] = true
		if s.StartTimeUnixNano == "" || s.EndTimeUnixNano == "" {
			t.Errorf("span %s: missing timestamps", s.Name)
		}
	}
	for _, s := range spans[1:] {
		if s.ParentSpanID != root.SpanID {
			t.Errorf("span %s: parent %s, want root %s", s.Name, s.ParentSpanID, root.SpanID)
		}
	}
}

// TestOTLPSinkLines checks the sink writes one JSON object per line.
func TestOTLPSinkLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewOTLPSink(&buf, "svc")
	if err := sink.Export(goldenTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Export(goldenTrace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	for _, l := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("line is not standalone JSON: %v", err)
		}
	}
	// Nil receiver and nil trace are no-ops.
	var nilSink *OTLPSink
	if err := nilSink.Export(goldenTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Export(nil); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestQuantileUniform checks the estimates against a uniform
// distribution where the exact quantiles are known: 1000 observations
// evenly spread over (0, 1] with bounds every 0.1 give exact linear
// interpolation inside each bucket.
func TestQuantileUniform(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.5},
		{0.95, 0.95},
		{0.99, 0.99},
		{0.1, 0.1},
		{1.0, 1.0},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.011 {
			t.Errorf("Quantile(%g) = %g, want ~%g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSkewed pins the interpolation on a two-bucket
// distribution: 90 observations in (0, 1], 10 in (1, 2].
func TestQuantileSkewed(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	// p50 interpolates within the first bucket: rank 50 of 90 → 5/9.
	if got, want := h.Quantile(0.5), 50.0/90.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// p95 lands in the second bucket: rank 95, 5 of 10 into (1,2] → 1.5.
	if got := h.Quantile(0.95); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p95 = %g, want 1.5", got)
	}
}

// TestQuantileEdges covers nil, empty, clamping, and the +Inf bucket.
func TestQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g", got)
	}
	h := NewHistogram([]float64{1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g", got)
	}
	// All observations above the last bound: clamp to it, as
	// histogram_quantile does.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("+Inf-bucket quantile = %g, want 10 (last finite bound)", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %g, want 10", got)
	}
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %g", got)
	}
}

// TestQuantileExposition checks the synthetic <name>_quantile gauge
// family reaches the text format with its own TYPE line.
func TestQuantileExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE q_seconds_quantile gauge") {
		t.Errorf("missing quantile TYPE line:\n%s", out)
	}
	for _, q := range []string{`quantile="0.5"`, `quantile="0.95"`, `quantile="0.99"`} {
		if !strings.Contains(out, "q_seconds_quantile{"+q+"}") {
			t.Errorf("missing %s series:\n%s", q, out)
		}
	}
}

package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("query")
	root := tr.Root()
	join := root.Start("join")
	join.SetAttr("workers", "4")
	join.Event("chunk done")
	join.End()
	root.Record("aggregate", 5*time.Millisecond)
	tr.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "join" || kids[1].Name() != "aggregate" {
		t.Fatalf("children = %v", kids)
	}
	if d := kids[1].Duration(); d != 5*time.Millisecond {
		t.Fatalf("recorded duration = %v, want 5ms", d)
	}
	s := tr.String()
	for _, want := range []string{"query", "join", "workers=4", "chunk done", "aggregate 5ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "\n  join") {
		t.Errorf("join not indented under root:\n%s", s)
	}
}

// TestTraceConcurrentNesting exercises the span tree the way the
// parallel executor does: many goroutines starting, annotating, and
// ending children of a shared parent. Run under -race.
func TestTraceConcurrentNesting(t *testing.T) {
	tr := NewTrace("parallel-query")
	parent := tr.Root().Start("join")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := parent.Start("chunk")
				c.SetAttr("w", "x")
				c.Event("scan")
				c.End()
				parent.Record("merge", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	parent.End()
	tr.End()
	if got := len(parent.Children()); got != 2*workers*perWorker {
		t.Fatalf("children = %d, want %d", got, 2*workers*perWorker)
	}
	// Rendering a large concurrent tree must not race or crash.
	if s := tr.String(); !strings.Contains(s, "parallel-query") {
		t.Fatal("rendering lost the root")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context carried a span")
	}
	tr := NewTrace("root")
	ctx = ContextWith(ctx, tr.Root())
	if SpanFrom(ctx) != tr.Root() {
		t.Fatal("span did not round-trip through context")
	}
	ctx2, child := StartSpan(ctx, "phase")
	if child == nil || SpanFrom(ctx2) != child {
		t.Fatal("StartSpan did not install the child span")
	}
	child.End()
	if kids := tr.Root().Children(); len(kids) != 1 || kids[0] != child {
		t.Fatalf("child not attached to parent: %v", kids)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("x")
	s := tr.Root().Start("s")
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}

package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a per-query (or per-workflow) span tree: the root span
// covers the whole operation and children cover its phases — for a
// SPARQL query, parse → plan → join → aggregate → serialize, plus
// retry/circuit events from the resilient client. One mutex guards
// the whole tree, so spans may be started and ended from concurrent
// goroutines (the parallel executor does); span churn is a handful
// per query, far too low for the lock to contend.
//
// Every method is nil-safe: a nil *Trace or *Span ignores all
// operations, so instrumentation sites carry no "tracing off" branch.
type Trace struct {
	mu   sync.Mutex
	root *Span
	// traceID and parentSpan are immutable after construction: the
	// 16-byte W3C trace ID this tree belongs to, and the remote parent
	// span when the trace continues one started in another process
	// (zero for local roots). The OTLP exporter reads both so that
	// federation fan-out stitches into one trace.
	traceID    [16]byte
	parentSpan [8]byte
}

// Span is one timed node of a trace.
type Span struct {
	tr       *Trace
	id       [8]byte // W3C span ID, fixed at creation
	name     string
	start    time.Time
	dur      time.Duration // 0 until End
	ended    bool
	attrs    []Label
	events   []spanEvent
	children []*Span
}

type spanEvent struct {
	name string
	at   time.Duration // offset from span start
}

// idSeq feeds span- and trace-ID generation; combined with the start
// nanosecond it makes IDs unique per process without a RNG dependency.
var idSeq atomic.Uint64

// newSpanID returns a non-zero 8-byte span ID (splitmix64 over the
// sequence so IDs do not look sequential on the wire).
func newSpanID() [8]byte {
	z := idSeq.Add(1) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b289
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], z)
	return id
}

// newTraceID derives a 16-byte trace ID from the clock and the
// process-wide sequence.
func newTraceID() [16]byte {
	var id [16]byte
	binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
	binary.BigEndian.PutUint64(id[8:], idSeq.Add(1))
	return id
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{traceID: newTraceID()}
	t.root = &Span{tr: t, id: newSpanID(), name: name, start: time.Now()}
	return t
}

// NewTraceWithRemoteParent starts a trace that continues a trace from
// another process: it keeps the remote trace ID and records the remote
// span as the root's parent, so the exported spans stitch under the
// caller's trace (W3C trace-context semantics). Zero IDs fall back to
// a fresh local trace.
func NewTraceWithRemoteParent(name string, traceID [16]byte, parentSpan [8]byte) *Trace {
	if traceID == ([16]byte{}) || parentSpan == ([8]byte{}) {
		return NewTrace(name)
	}
	t := &Trace{traceID: traceID, parentSpan: parentSpan}
	t.root = &Span{tr: t, id: newSpanID(), name: name, start: time.Now()}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// End ends the root span.
func (t *Trace) End() { t.Root().End() }

// Start begins a child span. Returns nil on a nil receiver, so
// chained instrumentation degrades to no-ops.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, id: newSpanID(), name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End stops the span's clock (idempotent: the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Record appends an already-measured child span of the given duration
// (for phases timed inline, where Start/End call pairs would bracket
// the wrong interval). Returns the child for attribute setting.
func (s *Span) Record(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, id: newSpanID(), name: name, start: time.Now().Add(-d), dur: d, ended: true}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// SetAttr attaches a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// Event records a point-in-time marker within the span (retries,
// breaker transitions).
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.events = append(s.events, spanEvent{name: name, at: time.Since(s.start)})
	s.tr.mu.Unlock()
}

// Duration returns the span's measured duration: its final duration
// once ended, the running elapsed time before that (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns a snapshot of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// String renders the trace as an indented tree with durations,
// attributes, and events — the human-readable form the REPL prints.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.mu.Lock()
	writeSpan(&b, t.root, 0)
	t.mu.Unlock()
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	fmt.Fprintf(b, "%s %s", s.name, d.Round(time.Microsecond))
	for _, a := range s.attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, ev := range s.events {
		for i := 0; i < depth+1; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "@%s %s\n", ev.at.Round(time.Microsecond), ev.name)
	}
	for _, c := range s.children {
		writeSpan(b, c, depth+1)
	}
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWith returns a context carrying span as the active span.
func ContextWith(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFrom returns the active span in ctx, or nil. The nil case (no
// tracing) costs one context lookup and no allocation.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the active span in ctx, returning the
// derived context and the child. When ctx carries no span it returns
// (ctx, nil) without allocating — the disabled fast path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Start(name)
	return ContextWith(ctx, c), c
}

// Traceparent renders the span as a W3C trace-context header value
// (00-<trace-id>-<span-id>-01), or "" when the span carries no IDs (a
// nil span, or one built outside NewTrace). Sending this header lets
// the receiving process continue the trace via
// NewTraceWithRemoteParent.
func (s *Span) Traceparent() string {
	if s == nil || s.tr == nil || s.id == ([8]byte{}) || s.tr.traceID == ([16]byte{}) {
		return ""
	}
	return FormatTraceparent(s.tr.traceID, s.id)
}

// FormatTraceparent renders a W3C traceparent header value with the
// sampled flag set.
func FormatTraceparent(traceID [16]byte, spanID [8]byte) string {
	return "00-" + hex.EncodeToString(traceID[:]) + "-" + hex.EncodeToString(spanID[:]) + "-01"
}

// ParseTraceparent parses a W3C traceparent header value, accepting
// any version byte except the invalid ff, and rejecting zero trace or
// span IDs per the spec.
func ParseTraceparent(h string) (traceID [16]byte, spanID [8]byte, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return traceID, spanID, false
	}
	if strings.EqualFold(parts[0], "ff") {
		return traceID, spanID, false
	}
	if _, err := hex.Decode(traceID[:], []byte(parts[1])); err != nil {
		return [16]byte{}, spanID, false
	}
	if _, err := hex.Decode(spanID[:], []byte(parts[2])); err != nil {
		return [16]byte{}, [8]byte{}, false
	}
	if traceID == ([16]byte{}) || spanID == ([8]byte{}) {
		return [16]byte{}, [8]byte{}, false
	}
	return traceID, spanID, true
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one structured slow-query log entry, serialized as a
// single JSON line. Durations are milliseconds so the log is directly
// plottable; PhaseMS breaks the wall time into engine phases when the
// executing layer reports them.
type SlowQuery struct {
	Time    string             `json:"time"`
	Source  string             `json:"source"`         // "inprocess", "http", "resilient", "server"
	Step    string             `json:"step,omitempty"` // issuing workflow step tag
	WallMS  float64            `json:"wall_ms"`
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"` // parse/plan/join/aggregate/sort/serialize
	Rows    int                `json:"rows"`
	Retries int                `json:"retries,omitempty"`
	// Plan and Shards describe federated execution: the coordinator's
	// plan class (colocated/partial_agg/gather) and the per-shard
	// attempt/retry/row accounting.
	Plan   string      `json:"plan,omitempty"`
	Shards []ShardCall `json:"shards,omitempty"`
	// SkippedShards lists the shard indices a degraded-mode answer was
	// served without.
	SkippedShards []int `json:"skipped_shards,omitempty"`
	// CacheHit and Coalesced report serve-layer handling: answered
	// from the result cache, or deduplicated onto a concurrent
	// identical execution. QueueWaitMS is admission-control queue time
	// — a "slow" query that spent its wall time queued is then
	// distinguishable from one that was slow to join.
	CacheHit    bool    `json:"cache_hit,omitempty"`
	Coalesced   bool    `json:"coalesced,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
	Query       string  `json:"query"`
}

// maxSlowQueryLen bounds the logged query text so one enormous VALUES
// block cannot bloat the log.
const maxSlowQueryLen = 2048

// SlowLog writes queries slower than a threshold as JSON lines. A nil
// *SlowLog is the disabled state: Slow reports false and Record
// no-ops, so callers need no separate branch. Safe for concurrent use
// (one mutex serializes line writes).
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	logged    atomic.Int64
	now       func() time.Time // injectable clock (tests)
}

// NewSlowLog returns a slow-query log writing entries for queries at
// or above threshold to w.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold, now: time.Now}
}

// Slow reports whether a query of duration d should be logged.
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

// Logged returns how many entries were written.
func (l *SlowLog) Logged() int64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}

// Record writes one entry if q.WallMS meets the threshold, filling
// the timestamp and truncating oversized query text. Call it
// unconditionally after each query; the threshold check is inside.
func (l *SlowLog) Record(q SlowQuery) {
	if l == nil || time.Duration(q.WallMS*float64(time.Millisecond)) < l.threshold {
		return
	}
	q.Time = l.now().UTC().Format(time.RFC3339Nano)
	if len(q.Query) > maxSlowQueryLen {
		q.Query = q.Query[:maxSlowQueryLen] + "...(truncated)"
	}
	line, err := json.Marshal(q)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
	l.logged.Add(1)
}

// PhaseMS converts a set of named durations into the milliseconds map
// a SlowQuery carries, dropping zero phases.
func PhaseMS(phases map[string]time.Duration) map[string]float64 {
	var out map[string]float64
	for k, d := range phases {
		if d <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64, len(phases))
		}
		out[k] = float64(d) / float64(time.Millisecond)
	}
	return out
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the inverse of expose.go: a parser for the Prometheus
// text exposition format (version 0.0.4) producing a PromSnapshot that
// can be inspected, merged (prommerge.go), and re-serialized. The
// round-trip guarantee is scoped to expositions produced by
// Registry.WriteProm (or PromSnapshot.WriteProm): for those,
// parse-then-write is byte-identical. Foreign expositions parse too,
// but may normalize (missing _count synthesized from the +Inf bucket,
// buckets re-sorted by bound).

// PromSample is one scalar series: a label set (in exposition order)
// and its value.
type PromSample struct {
	Labels []Label
	Value  float64
}

// PromHist is one histogram series: cumulative counts per finite
// upper bound, the +Inf total, and the running sum. Labels exclude le.
type PromHist struct {
	Labels []Label
	Bounds []float64 // finite upper bounds, ascending
	Cum    []float64 // cumulative counts aligned with Bounds
	Count  float64   // +Inf cumulative count (== _count)
	Sum    float64
}

// PromFamily is every series sharing one metric name. Kind is the
// TYPE keyword: "counter", "gauge", "histogram", or "untyped" (no TYPE
// line seen). Scalar kinds fill Samples; histograms fill Hists.
type PromFamily struct {
	Name    string
	Help    string
	Kind    string
	Samples []PromSample
	Hists   []PromHist
}

// PromSnapshot is one parsed exposition: families in exposition order
// (name-sorted when produced by WriteProm or MergeProm).
type PromSnapshot struct {
	Families []*PromFamily
}

// Family returns the named family, or nil.
func (s *PromSnapshot) Family(name string) *PromFamily {
	if s == nil {
		return nil
	}
	for _, f := range s.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Value returns the scalar sample of the named family whose label set
// matches exactly (order-insensitive), and whether it was found.
func (s *PromSnapshot) Value(name string, labels ...Label) (float64, bool) {
	f := s.Family(name)
	if f == nil {
		return 0, false
	}
	want := labelKey(labels)
	for _, sm := range f.Samples {
		if labelKey(sm.Labels) == want {
			return sm.Value, true
		}
	}
	return 0, false
}

// SumWhere sums every scalar sample of the named family whose labels
// include all the given pairs (subset match; no pairs sums the whole
// family). Missing families sum to 0.
func (s *PromSnapshot) SumWhere(name string, labels ...Label) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	var sum float64
	for _, sm := range f.Samples {
		if labelsSuperset(sm.Labels, labels) {
			sum += sm.Value
		}
	}
	return sum
}

// HistQuantile estimates the q-quantile of the histogram series in the
// named family matching the label set exactly (order-insensitive).
func (s *PromSnapshot) HistQuantile(name string, q float64, labels ...Label) (float64, bool) {
	f := s.Family(name)
	if f == nil {
		return 0, false
	}
	want := labelKey(labels)
	for i := range f.Hists {
		h := &f.Hists[i]
		if labelKey(h.Labels) == want {
			return bucketQuantile(h.Bounds, h.Cum, h.Count, q), true
		}
	}
	return 0, false
}

func labelsSuperset(have, want []Label) bool {
outer:
	for _, w := range want {
		for _, h := range have {
			if h.Key == w.Key && h.Value == w.Value {
				continue outer
			}
		}
		return false
	}
	return true
}

// ParseProm parses a text exposition. It is two-pass (metadata then
// samples) so HELP/TYPE lines are honored regardless of position, and
// it never panics on malformed input — errors carry the offending line
// number.
func ParseProm(r io.Reader) (*PromSnapshot, error) {
	var lines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: parse exposition: %w", err)
	}

	type meta struct{ help, kind string }
	metas := map[string]*meta{}
	metaOf := func(name string) *meta {
		m := metas[name]
		if m == nil {
			m = &meta{}
			metas[name] = m
		}
		return m
	}
	// Pass 1: metadata.
	for i, line := range lines {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		rest := strings.TrimPrefix(line, "#")
		rest = strings.TrimPrefix(rest, " ")
		switch {
		case strings.HasPrefix(rest, "HELP "):
			body := strings.TrimPrefix(rest, "HELP ")
			name, help, _ := strings.Cut(body, " ")
			if name == "" {
				return nil, fmt.Errorf("obs: line %d: HELP without metric name", i+1)
			}
			metaOf(name).help = unescapeHelp(help)
		case strings.HasPrefix(rest, "TYPE "):
			body := strings.TrimPrefix(rest, "TYPE ")
			name, kind, ok := strings.Cut(body, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line", i+1)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
				metaOf(name).kind = kind
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", i+1, kind)
			}
		}
		// Other comments are ignored.
	}

	snap := &PromSnapshot{}
	fams := map[string]*PromFamily{}
	famOf := func(name string) *PromFamily {
		f := fams[name]
		if f == nil {
			f = &PromFamily{Name: name, Kind: "untyped"}
			if m := metas[name]; m != nil {
				f.Help = m.help
				if m.kind != "" {
					f.Kind = m.kind
				}
			}
			fams[name] = f
			snap.Families = append(snap.Families, f)
		}
		return f
	}
	// Histogram series under assembly, keyed by family then label set.
	type histAcc struct {
		labels []Label
		bucket map[float64]float64 // le bound -> cumulative count (+Inf under math.Inf)
		sum    float64
		count  float64
		hasCnt bool
		hasInf bool
		inf    float64
	}
	hists := map[string]map[string]*histAcc{} // family -> labelKey -> acc
	var histOrder []struct {
		fam, key string
	}

	// histFamily resolves which histogram family a sample name belongs
	// to, if any: name must be <fam>_bucket/_sum/_count with <fam>
	// declared as a histogram.
	histFamily := func(name string) (fam, suffix string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if m := metas[base]; m != nil && m.kind == "histogram" {
					return base, suf
				}
			}
		}
		return "", ""
	}

	// Pass 2: samples.
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", i+1, err)
		}
		if fam, suffix := histFamily(name); fam != "" {
			famOf(fam) // register in exposition order
			byKey := hists[fam]
			if byKey == nil {
				byKey = map[string]*histAcc{}
				hists[fam] = byKey
			}
			var le string
			bare := labels[:0:0]
			for _, l := range labels {
				if suffix == "_bucket" && l.Key == "le" {
					le = l.Value
					continue
				}
				bare = append(bare, l)
			}
			key := labelKey(bare)
			acc := byKey[key]
			if acc == nil {
				acc = &histAcc{labels: bare, bucket: map[float64]float64{}}
				byKey[key] = acc
				histOrder = append(histOrder, struct{ fam, key string }{fam, key})
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return nil, fmt.Errorf("obs: line %d: histogram bucket without le label", i+1)
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: line %d: bad le value %q", i+1, le)
				}
				if isInfPos(bound) {
					acc.hasInf, acc.inf = true, value
				} else {
					acc.bucket[bound] = value
				}
			case "_sum":
				acc.sum = value
			case "_count":
				acc.hasCnt, acc.count = true, value
			}
			continue
		}
		if m := metas[name]; m != nil && m.kind == "histogram" {
			return nil, fmt.Errorf("obs: line %d: sample %q in histogram family without _bucket/_sum/_count suffix", i+1, name)
		}
		f := famOf(name)
		f.Samples = append(f.Samples, PromSample{Labels: labels, Value: value})
	}

	// Assemble histogram families in first-seen series order.
	for _, ord := range histOrder {
		acc := hists[ord.fam][ord.key]
		f := famOf(ord.fam)
		h := PromHist{Labels: acc.labels, Sum: acc.sum}
		bounds := make([]float64, 0, len(acc.bucket))
		for b := range acc.bucket {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		h.Bounds = bounds
		h.Cum = make([]float64, len(bounds))
		for i, b := range bounds {
			h.Cum[i] = acc.bucket[b]
		}
		switch {
		case acc.hasCnt:
			h.Count = acc.count
		case acc.hasInf:
			h.Count = acc.inf
		case len(h.Cum) > 0:
			h.Count = h.Cum[len(h.Cum)-1]
		}
		f.Hists = append(f.Hists, h)
	}
	return snap, nil
}

func isInfPos(v float64) bool { return v > 1.7976931348623157e308 }

// parseSampleLine parses `name{k="v",...} value [timestamp]`; the
// optional timestamp is discarded.
func parseSampleLine(line string) (string, []Label, float64, error) {
	s := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(s, "{ \t")
	if end <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := s[:end]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	s = s[end:]
	var labels []Label
	if s[0] == '{' {
		var err error
		labels, s, err = parseLabels(s[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(s)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",...}` (the opening brace already
// stripped) and returns the labels plus the remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		value, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, Label{Key: key, Value: value})
		s = rest
		s = strings.TrimLeft(s, " \t")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// parseQuoted consumes an escaped label value up to the closing quote
// (reverse of escapeLabel: \\, \n, \" unescape; unknown escapes keep
// the backslash, matching Prometheus' lenient readers).
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// WriteProm re-serializes the snapshot in the same style as
// Registry.WriteProm: HELP (when non-empty) then TYPE per family,
// histograms as cumulative _bucket/_sum/_count with integral counts
// rendered as integers. Families and series are written in snapshot
// order; parsed snapshots preserve exposition order, so parse→write of
// a Registry exposition is byte-identical.
func (s *PromSnapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sm := range f.Samples {
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, labelString(sm.Labels, ""), formatFloat(sm.Value))
		}
		for i := range f.Hists {
			h := &f.Hists[i]
			for j, bound := range h.Bounds {
				fmt.Fprintf(bw, "%s_bucket%s %s\n", f.Name,
					labelString(h.Labels, formatFloat(bound)), formatCount(h.Cum[j]))
			}
			fmt.Fprintf(bw, "%s_bucket%s %s\n", f.Name, labelString(h.Labels, "+Inf"), formatCount(h.Count))
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name, labelString(h.Labels, ""), formatFloat(h.Sum))
			fmt.Fprintf(bw, "%s_count%s %s\n", f.Name, labelString(h.Labels, ""), formatCount(h.Count))
		}
	}
	return bw.Flush()
}

// formatCount renders histogram bucket/count values: integral values
// as plain integers (matching the %d the Registry writer uses), the
// rest like any sample value.
func formatCount(v float64) string {
	if v == float64(int64(v)) && v >= -9.007199254740992e15 && v <= 9.007199254740992e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatFloat(v)
}
